module Gpu = Hextime_gpu
module Attribution = Hextime_obs.Attribution

(* Search kernels for: resident >= 2, chunks >= 2, last round depth = 1,
   then compare priced_time vs attribute_priced sum. *)
let () =
  let arch = Gpu.Arch.gtx980 in
  let found = ref false in
  (try
    for bx = 1 to 400 do
      for chunks = 2 to 4 do
        let k = Gpu.Kernel.{
          label = Printf.sprintf "k%d-%d" bx chunks;
          grid = [| bx; 1; 1 |];
          threads_per_block = 256;
          regs_per_thread = 32;
          shared_words_per_block = 2048;
          io_words_per_block = 4096 * chunks;
          iter_points_per_block = 1024 * chunks;
          instr_per_point = 8;
        } in
        match Gpu.Simulator.price arch k with
        | Error _ -> ()
        | Ok p ->
          let resident = p.Gpu.Simulator.occ.Gpu.Occupancy.blocks_per_sm in
          let blocks = bx in
          let capacity = arch.Gpu.Arch.n_sm * resident in
          let remainder = blocks mod capacity in
          if resident >= 2 && remainder > 0 && remainder <= arch.Gpu.Arch.n_sm then begin
            let t = Gpu.Simulator.priced_time ~jitter:false ~salt:0 arch p in
            let comps = Gpu.Simulator.attribute_priced ~jitter:false ~salt:0 arch p in
            let sum = Attribution.total comps in
            let rel = Float.abs (sum -. t) /. t in
            if rel > 1e-9 then begin
              Printf.printf "MISMATCH %s: resident=%d blocks=%d remainder=%d priced=%.9g sum=%.9g rel=%.3e\n"
                k.Gpu.Kernel.label resident blocks remainder t sum rel;
              found := true;
              raise Exit
            end
          end
      done
    done
  with Exit -> ());
  if not !found then print_endline "no mismatch found in search space"
