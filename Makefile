# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-paper examples clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# regenerate every table and figure of the paper (quick scale)
bench:
	dune exec bench/main.exe

# the full 128-experiment grid of Section 5
bench-paper:
	HEXTIME_SCALE=paper dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/heat_diffusion.exe
	dune exec examples/image_pipeline.exe
	dune exec examples/custom_stencil.exe
	dune exec examples/diffusion3d.exe
	dune exec examples/scheme_comparison.exe

doc:
	dune build @doc

clean:
	dune clean
