(* hexserve: the precomputed arg-min index, the wire protocol, and the
   advisor service.  The load-bearing properties: an index survives a
   save/load round-trip with bit-identical answers, the cold path returns
   exactly the exhaustive-sweep arg-min on every accuracy-baseline
   experiment, and concurrent clients get deterministic answers.

   These tests spawn domains (the server runs in one), so this suite must
   be registered LAST: OCaml 5 forbids Unix.fork once domains exist, and
   every fork-backend pool test precedes us. *)

module Serve = Hextime_serve
module Advisor = Serve.Advisor
module Index = Serve.Index
module Proto = Serve.Proto
module Server = Serve.Server
module Client = Serve.Client
module Parsweep = Hextime_parsweep.Parsweep
module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Attribution = Hextime_obs.Attribution
module Optimizer = Hextime_tileopt.Optimizer
module Model = Hextime_core.Model
module Minijson = Hextime_prelude.Minijson
module H = Hextime_harness

let fresh_path =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hextime-serve-%d-%d%s" (Unix.getpid ()) !counter suffix)

let config_equal (a : Config.t) (b : Config.t) =
  a.Config.t_t = b.Config.t_t && a.Config.t_s = b.Config.t_s
  && a.Config.threads = b.Config.threads

let components_equal (a : Attribution.components) (b : Attribution.components)
    =
  a.Attribution.compute = b.Attribution.compute
  && a.Attribution.global_mem = b.Attribution.global_mem
  && a.Attribution.shared_mem = b.Attribution.shared_mem
  && a.Attribution.sync = b.Attribution.sync
  && a.Attribution.launch = b.Attribution.launch
  && a.Attribution.jitter = b.Attribution.jitter

let entry_of (e : H.Experiments.t) =
  match Advisor.solve e.H.Experiments.arch e.H.Experiments.problem with
  | Ok a ->
      Index.entry_of_answer e.H.Experiments.arch e.H.Experiments.problem a
  | Error msg -> Alcotest.failf "%s: %s" (H.Experiments.id e) msg

(* --- wire protocol ---------------------------------------------------------- *)

let test_proto_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  let requests =
    [
      Proto.Ask
        { arch = "gtx980"; stencil = "heat2d"; space = [| 512; 512 |]; time = 128 };
      Proto.Stats;
      Proto.Metrics;
      Proto.Shutdown;
    ]
  in
  List.iter (fun r -> Proto.write_frame a (Proto.request_to_json r)) requests;
  List.iter
    (fun r ->
      match Proto.read_frame b with
      | Ok (Some json) -> (
          match Proto.request_of_json json with
          | Ok r' ->
              Alcotest.(check bool) "request round-trips" true (r = r')
          | Error e -> Alcotest.fail e)
      | Ok None -> Alcotest.fail "unexpected end of stream"
      | Error e -> Alcotest.fail e)
    requests;
  (* a reply carrying a real index entry round-trips field-for-field,
     including the hexpulse extras (request id, server vitals) *)
  let entry = entry_of (List.hd (H.Experiments.all H.Experiments.Ci)) in
  let vitals =
    [ ("uptime_s", 12.25); ("index_entries", 3.0); ("requests_in_flight", 1.0) ]
  in
  let reply =
    Proto.Answer
      {
        source = Proto.Warm;
        entry;
        latency_us = 12.5;
        req_id = "r000042";
        server = vitals;
      }
  in
  Proto.write_frame a (Proto.reply_to_json reply);
  (match Proto.read_frame b with
  | Ok (Some json) -> (
      match Proto.reply_of_json json with
      | Ok (Proto.Answer { source; entry = e'; latency_us; req_id; server }) ->
          Alcotest.(check bool) "source" true (source = Proto.Warm);
          Alcotest.(check (float 0.0)) "latency" 12.5 latency_us;
          Alcotest.(check string) "req_id" "r000042" req_id;
          Alcotest.(check (list (pair string (float 0.0)))) "server vitals"
            vitals server;
          Alcotest.(check string) "key" entry.Index.e_key e'.Index.e_key;
          Alcotest.(check bool) "config" true
            (config_equal entry.Index.e_config e'.Index.e_config);
          Alcotest.(check (float 0.0)) "talg bit-identical" entry.Index.e_talg
            e'.Index.e_talg
      | Ok _ -> Alcotest.fail "reply decoded to the wrong arm"
      | Error e -> Alcotest.fail e)
  | Ok None -> Alcotest.fail "unexpected end of stream"
  | Error e -> Alcotest.fail e);
  (* the stats reply keeps its vitals, the metrics reply its exposition *)
  Proto.write_frame a
    (Proto.reply_to_json
       (Proto.Stats_reply
          { metrics = Minijson.Obj [ ("x", Minijson.Num 1.0) ]; server = vitals }));
  (match Proto.read_frame b with
  | Ok (Some json) -> (
      match Proto.reply_of_json json with
      | Ok (Proto.Stats_reply { metrics; server }) ->
          Alcotest.(check bool) "stats metrics kept" true
            (Minijson.member "x" metrics <> None);
          Alcotest.(check (list (pair string (float 0.0))))
            "stats vitals kept" vitals server
      | Ok _ -> Alcotest.fail "stats reply decoded to the wrong arm"
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "stats reply lost");
  let exposition = "# TYPE a counter\na_total 1\n# EOF\n" in
  Proto.write_frame a (Proto.reply_to_json (Proto.Metrics_reply exposition));
  (match Proto.read_frame b with
  | Ok (Some json) -> (
      match Proto.reply_of_json json with
      | Ok (Proto.Metrics_reply text) ->
          Alcotest.(check string) "exposition byte-identical" exposition text
      | Ok _ -> Alcotest.fail "metrics reply decoded to the wrong arm"
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "metrics reply lost");
  (* closing the writer is a clean EOF on the reader, not an error *)
  Unix.close a;
  match Proto.read_frame b with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "phantom frame after close"
  | Error e -> Alcotest.failf "clean close misread as %s" e

(* --- index round-trip ------------------------------------------------------- *)

let test_index_roundtrip () =
  let experiments = H.Experiments.all H.Experiments.Ci in
  let index = Index.create () in
  List.iter (fun e -> Index.add index (entry_of e)) experiments;
  Alcotest.(check int) "one entry per experiment" (List.length experiments)
    (Index.size index);
  let path = fresh_path ".json" in
  (match Index.save index ~path with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let loaded =
    match Index.load ~path with Ok t -> t | Error m -> Alcotest.fail m
  in
  Sys.remove path;
  Alcotest.(check int) "loaded size" (Index.size index) (Index.size loaded);
  List.iter
    (fun (e : Index.entry) ->
      match Index.find loaded e.Index.e_key with
      | None -> Alcotest.failf "entry %s lost in round-trip" e.Index.e_key
      | Some e' ->
          Alcotest.(check bool) "config identical" true
            (config_equal e.Index.e_config e'.Index.e_config);
          Alcotest.(check (float 0.0)) "talg bit-identical" e.Index.e_talg
            e'.Index.e_talg;
          Alcotest.(check bool) "attribution bit-identical" true
            (components_equal e.Index.e_components e'.Index.e_components))
    (Index.entries index)

let test_index_rejects_stale_code_version () =
  let index = Index.create () in
  Index.add index (entry_of (List.hd (H.Experiments.all H.Experiments.Ci)));
  let stale =
    match Index.to_json index with
    | Minijson.Obj fields ->
        Minijson.Obj
          (List.map
             (function
               | "code_version", _ ->
                   ("code_version", Minijson.Str "hextime-serve-v0")
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "index JSON is not an object"
  in
  match Index.of_json stale with
  | Error msg ->
      Alcotest.(check bool) "error names the stale version" true
        (Test_util.contains msg "hextime-serve-v0")
  | Ok _ -> Alcotest.fail "stale code_version accepted"

(* --- cold path: exact exhaustive arg-min ------------------------------------ *)

(* On every accuracy-baseline experiment, the advisor's certified-seed
   descent must land on the configuration the exhaustive model sweep picks
   — same tiles, bit-identical predicted Talg.  This is the guarantee that
   a cold miss served live agrees with `hextime tune`. *)
let test_cold_path_matches_exhaustive_argmin () =
  let experiments = H.Experiments.all H.Experiments.Ci in
  Alcotest.(check int) "accuracy-baseline experiment count" 12
    (List.length experiments);
  List.iter
    (fun (e : H.Experiments.t) ->
      let id = H.Experiments.id e in
      let arch = e.H.Experiments.arch in
      let problem = e.H.Experiments.problem in
      let params = H.Microbench.params arch in
      let citer = H.Microbench.citer arch problem.P.stencil in
      let space_eval = Optimizer.evaluate_space params ~citer problem in
      if space_eval = [] then Alcotest.failf "%s: empty feasible space" id;
      let best = Optimizer.best space_eval in
      let expected =
        match Advisor.config_of_shape best.Optimizer.shape with
        | Ok c -> c
        | Error m -> Alcotest.failf "%s: %s" id m
      in
      match Advisor.solve arch problem with
      | Error msg -> Alcotest.failf "%s: %s" id msg
      | Ok a ->
          Alcotest.(check bool)
            (id ^ ": config is the exhaustive arg-min")
            true
            (config_equal expected a.Advisor.a_config);
          Alcotest.(check (float 0.0))
            (id ^ ": Talg bit-exact")
            best.Optimizer.prediction.Model.talg a.Advisor.a_talg)
    experiments

(* --- the server ------------------------------------------------------------- *)

let connect socket_path =
  match Client.connect ~attempts:200 ~socket_path () with
  | Ok fd -> fd
  | Error m -> Alcotest.fail m

let ask fd (e : H.Experiments.t) =
  Client.ask fd
    ~arch:e.H.Experiments.arch.Gpu.Arch.name
    ~stencil:e.H.Experiments.problem.P.stencil.S.name
    ~space:e.H.Experiments.problem.P.space
    ~time:e.H.Experiments.problem.P.time

let test_serve_cold_warm_writeback_and_concurrency () =
  let socket_path = fresh_path ".sock" in
  let index_path = fresh_path ".json" in
  let experiments = H.Experiments.all H.Experiments.Ci in
  let e0 = List.hd experiments in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~index_path ~exec:Parsweep.serial ~socket_path ())
  in
  (* cold first — the server starts with no index file *)
  let fd = connect socket_path in
  let cold_entry =
    match ask fd e0 with
    | Ok { Proto.source = Proto.Cold; entry; req_id; server; _ } ->
        Alcotest.(check bool) "answers carry a request id" true (req_id <> "");
        Alcotest.(check bool) "answers carry server vitals" true
          (List.mem_assoc "uptime_s" server
          && List.mem_assoc "index_entries" server
          && List.mem_assoc "requests_in_flight" server);
        entry
    | Ok { Proto.source = Proto.Warm; _ } ->
        Alcotest.fail "first ask answered warm from an empty index"
    | Error msg -> Alcotest.failf "first ask failed: %s" msg
  in
  (* same connection, same question: warm now, same answer *)
  (match ask fd e0 with
  | Ok { Proto.source = Proto.Warm; entry; server; _ } ->
      Alcotest.(check bool) "warm answer identical to the cold one" true
        (config_equal cold_entry.Index.e_config entry.Index.e_config
        && cold_entry.Index.e_talg = entry.Index.e_talg);
      Alcotest.(check bool) "index_entries vital counts the write-back" true
        (List.assoc "index_entries" server >= 1.0)
  | Ok { Proto.source = Proto.Cold; _ } ->
      Alcotest.fail "repeat ask missed the index"
  | Error msg -> Alcotest.failf "repeat ask failed: %s" msg);
  (* a malformed ask is an error reply, not a dead server *)
  (match
     Client.ask fd ~arch:"gtx980" ~stencil:"no-such-stencil"
       ~space:[| 64; 64 |] ~time:8
   with
  | Error msg ->
      Alcotest.(check bool) "error names the unknown stencil" true
        (Test_util.contains msg "no-such-stencil")
  | Ok _ -> Alcotest.fail "unknown stencil answered");
  Client.close fd;
  (* concurrent clients, one per experiment: answers must be deterministic
     — every client gets exactly what the in-process advisor computes *)
  let clients =
    List.map
      (fun e ->
        Domain.spawn (fun () ->
            let fd = connect socket_path in
            let r = ask fd e in
            Client.close fd;
            r))
      experiments
  in
  let replies = List.map Domain.join clients in
  List.iter2
    (fun e reply ->
      let expected = entry_of e in
      match reply with
      | Ok { Proto.entry; _ } ->
          Alcotest.(check bool)
            (H.Experiments.id e ^ ": served = in-process advisor")
            true
            (config_equal expected.Index.e_config entry.Index.e_config
            && expected.Index.e_talg = entry.Index.e_talg)
      | Error msg -> Alcotest.failf "%s: %s" (H.Experiments.id e) msg)
    experiments replies;
  (* shutdown, then the write-back index must hold every asked problem *)
  let fd = connect socket_path in
  (match Client.shutdown fd with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Client.close fd;
  let summary = Domain.join srv in
  Alcotest.(check bool) "server saw warm hits" true
    (summary.Server.warm_hits >= 1);
  Alcotest.(check bool) "server saw cold misses" true
    (summary.Server.cold_misses >= 1);
  let written =
    match Index.load ~path:index_path with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "write-back persisted every distinct problem"
    (List.length experiments) (Index.size written);
  (* a fresh server over the written index answers warm immediately *)
  let srv2 =
    Domain.spawn (fun () ->
        Server.run ~index_path ~exec:Parsweep.serial ~max_requests:1
          ~socket_path ())
  in
  let fd = connect socket_path in
  (match ask fd e0 with
  | Ok { Proto.source = Proto.Warm; entry; _ } ->
      Alcotest.(check bool) "reloaded answer identical" true
        (config_equal cold_entry.Index.e_config entry.Index.e_config)
  | Ok { Proto.source = Proto.Cold; _ } ->
      Alcotest.fail "persisted index not used"
  | Error msg -> Alcotest.failf "ask against reloaded index failed: %s" msg);
  Client.close fd;
  let summary2 = Domain.join srv2 in
  Sys.remove index_path;
  Alcotest.(check int) "second server answered warm" 1
    summary2.Server.warm_hits

(* --- hexpulse: scrape endpoint, access log, drift monitor ------------------- *)

module Metrics = Hextime_obs.Metrics
module Openmetrics = Hextime_obs.Openmetrics
module Ledger = Hextime_obs.Ledger

(* Raw-TCP GET, same approach as `hextime metrics-verify --port`: the CI
   image has no curl, and the endpoint speaks just enough HTTP for this. *)
let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
      path
  in
  let (_ : int) = Unix.write_substring fd req 0 (String.length req) in
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  Buffer.contents buf

let split_http response =
  let sep = "\r\n\r\n" in
  let slen = String.length sep in
  let rec find i =
    if i + slen > String.length response then None
    else if String.sub response i slen = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "no header/body break in %S" response
  | Some i ->
      ( String.sub response 0 i,
        String.sub response (i + slen) (String.length response - i - slen) )

(* The metrics frame and GET /metrics serve a valid exposition whose
   [serve_warm_p50_us] gauge equals [Metrics.quantile] over the registry's
   own warm histogram — the server runs in a domain of this process, so
   both sides read the same registry. *)
let test_http_scrape_and_quantile_roundtrip () =
  let socket_path = fresh_path ".sock" in
  let e0 = List.hd (H.Experiments.all H.Experiments.Ci) in
  let http_port = Atomic.make 0 in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~exec:Parsweep.serial ~http_port:0
          ~on_http_port:(fun p -> Atomic.set http_port p)
          ~socket_path ())
  in
  let fd = connect socket_path in
  (match ask fd e0 with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "cold ask failed: %s" m);
  for _ = 1 to 4 do
    match ask fd e0 with
    | Ok { Proto.source = Proto.Warm; _ } -> ()
    | Ok _ -> Alcotest.fail "repeat ask missed the index"
    | Error m -> Alcotest.failf "warm ask failed: %s" m
  done;
  let frame_text =
    match Client.metrics fd with Ok t -> t | Error m -> Alcotest.fail m
  in
  let rec wait_port tries =
    let p = Atomic.get http_port in
    if p > 0 then p
    else if tries = 0 then Alcotest.fail "http port never reported"
    else (
      Unix.sleepf 0.01;
      wait_port (tries - 1))
  in
  let port = wait_port 500 in
  let headers, body = split_http (http_get ~port "/metrics") in
  Alcotest.(check bool) "scrape is 200" true
    (Test_util.contains headers "200 OK");
  Alcotest.(check bool) "openmetrics content type" true
    (Test_util.contains headers "application/openmetrics-text");
  let miss = http_get ~port "/nope" in
  Alcotest.(check bool) "unknown path is 404" true
    (Test_util.contains miss "404");
  let fd2 = connect socket_path in
  (match Client.shutdown fd2 with Ok () -> () | Error m -> Alcotest.fail m);
  Client.close fd2;
  Client.close fd;
  let summary = Domain.join srv in
  Alcotest.(check bool) "scrapes counted (404s excluded)" true
    (summary.Server.scrapes = 1);
  (* both expositions validate, with every family metrics-verify requires *)
  let require =
    [
      "serve_requests";
      "serve_warm_hits";
      "serve_cold_misses";
      "serve_errors";
      "serve_warm_seconds";
      "serve_cold_seconds";
      "serve_uptime_s";
      "serve_index_entries";
      "serve_drift_alarm";
    ]
  in
  List.iter
    (fun (what, text) ->
      match Openmetrics.validate ~require text with
      | Ok (s : Openmetrics.summary) ->
          Alcotest.(check bool)
            (what ^ ": non-trivial exposition")
            true
            (s.Openmetrics.families >= List.length require)
      | Error m -> Alcotest.failf "%s: %s" what m)
    [ ("frame", frame_text); ("http", body) ];
  (* the round-trip: scraped p50 == quantile over the same histogram *)
  let families =
    match Openmetrics.parse body with
    | Ok f -> f
    | Error m -> Alcotest.fail m
  in
  let scraped =
    match Openmetrics.value families "serve_warm_p50_us" with
    | Some v -> v
    | None -> Alcotest.fail "no serve_warm_p50_us in the scrape"
  in
  let hist =
    match
      List.assoc_opt "serve.warm_seconds"
        (Metrics.snapshot ()).Metrics.snap_histograms
    with
    | Some hs -> hs
    | None -> Alcotest.fail "warm histogram missing from the registry"
  in
  Alcotest.(check (float 0.0))
    "scraped p50 == Metrics.quantile (exact: %.17g round-trips)"
    (Metrics.quantile hist 0.5 *. 1e6)
    scraped;
  Alcotest.(check bool) "drift alarm gauge clean" true
    (List.assoc_opt "serve.drift_alarm"
       (Metrics.snapshot ()).Metrics.snap_gauges
    = Some 0.0)

let test_access_log_and_slow_attribution () =
  let socket_path = fresh_path ".sock" in
  let log_path = fresh_path ".jsonl" in
  let e0 = List.hd (H.Experiments.all H.Experiments.Ci) in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~exec:Parsweep.serial ~access_log_path:log_path
          ~slow_us:0.0 ~socket_path ())
  in
  let fd = connect socket_path in
  (match ask fd e0 with
  | Ok { Proto.source = Proto.Cold; _ } -> ()
  | Ok _ -> Alcotest.fail "first ask should be cold"
  | Error m -> Alcotest.fail m);
  (match ask fd e0 with
  | Ok { Proto.source = Proto.Warm; _ } -> ()
  | Ok _ -> Alcotest.fail "second ask should be warm"
  | Error m -> Alcotest.fail m);
  (match
     Client.ask fd ~arch:"gtx980" ~stencil:"no-such-stencil"
       ~space:[| 64; 64 |] ~time:8
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown stencil answered");
  (match Client.shutdown fd with Ok () -> () | Error m -> Alcotest.fail m);
  Client.close fd;
  let (_ : Server.summary) = Domain.join srv in
  let ic = open_in log_path in
  let rec lines acc =
    match input_line ic with
    | line -> lines (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let records =
    let ls = lines [] in
    close_in ic;
    List.map
      (fun l ->
        match Minijson.parse l with
        | Ok j -> j
        | Error m -> Alcotest.failf "unparseable access-log line %S: %s" l m)
      ls
  in
  Sys.remove log_path;
  Alcotest.(check int) "one record per answered request" 3
    (List.length records);
  let source_of r =
    match Minijson.member "source" r with
    | Some (Minijson.Str s) -> s
    | _ -> Alcotest.fail "access-log record without a source"
  in
  List.iter
    (fun r ->
      (match Minijson.member "req_id" r with
      | Some (Minijson.Str id) ->
          Alcotest.(check bool) "req_id non-empty" true (id <> "")
      | _ -> Alcotest.fail "access-log record without a req_id");
      match Minijson.member "latency_us" r with
      | Some (Minijson.Num _) -> ()
      | _ -> Alcotest.fail "access-log record without a latency")
    records;
  Alcotest.(check (list string)) "sources in request order"
    [ "cold"; "warm"; "error" ] (List.map source_of records);
  (* slow_us = 0 makes every cold solve a slow query: the cold record must
     carry the flag and the Section-5 attribution dump *)
  let cold = List.hd records in
  Alcotest.(check bool) "cold record flagged slow" true
    (Minijson.member "slow" cold = Some (Minijson.Bool true));
  (match Minijson.member "attribution" cold with
  | Some (Minijson.Obj fields) ->
      Alcotest.(check bool) "attribution names compute" true
        (List.mem_assoc "compute" fields)
  | _ -> Alcotest.fail "slow cold record without attribution");
  let error_r = List.nth records 2 in
  match Minijson.member "error" error_r with
  | Some (Minijson.Str msg) ->
      Alcotest.(check bool) "error record names the stencil" true
        (Test_util.contains msg "no-such-stencil")
  | _ -> Alcotest.fail "error record without an error field"

(* The drift monitor.  A clean index audits in-band and the alarm stays
   down; an index whose served Talg was perturbed away from the model's
   prediction trips the alarm, counts out-of-band audits and writes audit
   ledger records. *)
let run_audited ~index_path ~ledger_path ~asks =
  let socket_path = fresh_path ".sock" in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~index_path ~exec:Parsweep.serial ~audit_rate:1
          ~ledger_path ~socket_path ())
  in
  let fd = connect socket_path in
  List.iter
    (fun e ->
      match ask fd e with
      | Ok { Proto.source = Proto.Warm; _ } -> ()
      | Ok _ -> Alcotest.fail "audited ask missed the prebuilt index"
      | Error m -> Alcotest.failf "audited ask failed: %s" m)
    asks;
  (match Client.shutdown fd with Ok () -> () | Error m -> Alcotest.fail m);
  Client.close fd;
  Domain.join srv

let audit_records ~ledger_path =
  match Ledger.load ~path:ledger_path with
  | Error m -> Alcotest.fail m
  | Ok loaded ->
      Alcotest.(check int) "ledger intact" 0 loaded.Ledger.corrupt_lines;
      Ledger.filter ~kind:"audit" loaded.Ledger.entries

let test_drift_monitor_clean_and_injected () =
  let experiments = H.Experiments.all H.Experiments.Ci in
  let e0 = List.hd experiments in
  let entry = entry_of e0 in
  (* clean: the true arg-min entry audits in-band, the alarm stays down *)
  let index_path = fresh_path ".json" in
  let ledger_path = fresh_path ".jsonl" in
  let index = Index.create () in
  Index.add index entry;
  (match Index.save index ~path:index_path with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let clean = run_audited ~index_path ~ledger_path ~asks:[ e0; e0; e0 ] in
  Alcotest.(check bool) "clean run audited" true (clean.Server.audits >= 3);
  Alcotest.(check int) "clean run all in band" 0
    clean.Server.audits_out_of_band;
  Alcotest.(check bool) "clean run: no alarm" false clean.Server.drift_alarm;
  Alcotest.(check bool) "clean gauge down" true
    (List.assoc_opt "serve.drift_alarm"
       (Metrics.snapshot ()).Metrics.snap_gauges
    = Some 0.0);
  (* the drift monitor feeds the hexlens live alert gauge *)
  Alcotest.(check bool) "alert.firing down on a clean run" true
    (List.assoc_opt "alert.firing"
       (Metrics.snapshot ()).Metrics.snap_gauges
    = Some 0.0);
  let clean_audits = audit_records ~ledger_path in
  Alcotest.(check bool) "clean audit records written" true
    (List.length clean_audits >= 3);
  List.iter
    (fun r ->
      Alcotest.(check (option (float 0.0))) "in_band = 1" (Some 1.0)
        (Ledger.metric r "in_band"))
    clean_audits;
  Sys.remove index_path;
  Sys.remove ledger_path;
  (* injected drift: serve a Talg the model no longer predicts for that
     configuration — every audit lands out of band and latches the alarm *)
  let drifted_path = fresh_path ".json" in
  let drifted_ledger = fresh_path ".jsonl" in
  let drifted = Index.create () in
  Index.add drifted { entry with Index.e_talg = entry.Index.e_talg *. 2.0 };
  (match Index.save drifted ~path:drifted_path with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let summary =
    run_audited ~index_path:drifted_path ~ledger_path:drifted_ledger
      ~asks:[ e0; e0 ]
  in
  Alcotest.(check bool) "drift run audited" true (summary.Server.audits >= 2);
  Alcotest.(check bool) "audits fell out of band" true
    (summary.Server.audits_out_of_band >= 2);
  Alcotest.(check bool) "drift alarm latched" true summary.Server.drift_alarm;
  Alcotest.(check bool) "drift gauge up" true
    (List.assoc_opt "serve.drift_alarm"
       (Metrics.snapshot ()).Metrics.snap_gauges
    = Some 1.0);
  Alcotest.(check bool) "alert.firing up while drifting" true
    (List.assoc_opt "alert.firing"
       (Metrics.snapshot ()).Metrics.snap_gauges
    = Some 1.0);
  let audits = audit_records ~ledger_path:drifted_ledger in
  Alcotest.(check bool) "audit ledger records written" true
    (List.length audits >= 2);
  List.iter
    (fun r ->
      Alcotest.(check (option (float 0.0))) "in_band = 0" (Some 0.0)
        (Ledger.metric r "in_band");
      (match Ledger.metric r "rel_err" with
      | Some _ -> ()
      | None -> Alcotest.fail "audit record without rel_err");
      (* diffable offline: hexlens explain needs components + provenance *)
      (match (Ledger.metric r "attr.global_mem", Ledger.metric r "pred.talg")
       with
      | Some _, Some _ -> ()
      | _ -> Alcotest.fail "audit record without attribution metrics");
      (match
         ( List.assoc_opt "space" r.Ledger.labels,
           List.assoc_opt "time" r.Ledger.labels )
       with
      | Some _, Some _ -> ()
      | _ -> Alcotest.fail "audit record without space/time labels");
      match List.assoc_opt "req_id" r.Ledger.labels with
      | Some id -> Alcotest.(check bool) "audit labels req_id" true (id <> "")
      | None -> Alcotest.fail "audit record without a req_id label")
    audits;
  Sys.remove drifted_path;
  Sys.remove drifted_ledger;
  (* the advisor-level verdict agrees: the perturbed Talg is out of band,
     the pristine one is in band with zero relative error *)
  let arch = e0.H.Experiments.arch in
  let problem = e0.H.Experiments.problem in
  (match
     Advisor.audit arch problem ~config:entry.Index.e_config
       ~talg:entry.Index.e_talg
   with
  | Ok a ->
      Alcotest.(check bool) "pristine entry in band" true a.Advisor.au_in_band;
      Alcotest.(check bool) "pristine entry is the arg-min" true
        a.Advisor.au_argmin_match;
      Alcotest.(check (float 1e-12)) "zero relative error" 0.0
        a.Advisor.au_rel_err
  | Error m -> Alcotest.fail m);
  match
    Advisor.audit arch problem ~config:entry.Index.e_config
      ~talg:(entry.Index.e_talg *. 2.0)
  with
  | Ok a ->
      Alcotest.(check bool) "perturbed entry out of band" false
        a.Advisor.au_in_band
  | Error m -> Alcotest.fail m

(* --- graceful shutdown ------------------------------------------------------- *)

let test_graceful_shutdown_on_sigterm () =
  let e0 = List.hd (H.Experiments.all H.Experiments.Ci) in
  let index_path = fresh_path ".json" in
  let index = Index.create () in
  Index.add index (entry_of e0);
  (match Index.save index ~path:index_path with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let socket_path = fresh_path ".sock" in
  let ledger_path = fresh_path ".jsonl" in
  let access_log = fresh_path "-access.jsonl" in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~index_path ~exec:Parsweep.serial ~ledger_path
          ~access_log_path:access_log
          ~on_ready:(fun () -> Atomic.set ready true)
          ~socket_path ())
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let fd = connect socket_path in
  (match ask fd e0 with
  | Ok { Proto.source = Proto.Warm; _ } -> ()
  | Ok _ -> Alcotest.fail "prebuilt index answered cold"
  | Error m -> Alcotest.fail m);
  Client.close fd;
  (* SIGTERM instead of a shutdown frame: the loop must fall through to
     the same cleanup — flush the access log, stamp a final ledger
     record, unlink the socket *)
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  let summary = Domain.join srv in
  Alcotest.(check int) "the served request survived the signal" 1
    summary.Server.requests;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket_path);
  Alcotest.(check bool) "access log flushed on signal exit" true
    ((Unix.stat access_log).Unix.st_size > 0);
  (match Ledger.load ~path:ledger_path with
  | Error m -> Alcotest.fail m
  | Ok loaded -> (
      match Ledger.filter ~kind:"serve" loaded.Ledger.entries with
      | [ r ] ->
          Alcotest.(check (option string))
            "record names the signal" (Some "sigterm")
            (List.assoc_opt "shutdown" r.Ledger.labels);
          Alcotest.(check (option (float 0.0)))
            "final request count" (Some 1.0)
            (Ledger.metric r "requests");
          Alcotest.(check bool) "carries the full metrics snapshot" true
            (r.Ledger.snapshot <> None)
      | rs ->
          Alcotest.failf "expected 1 serve shutdown record, got %d"
            (List.length rs)));
  Sys.remove index_path;
  Sys.remove ledger_path;
  Sys.remove access_log

let suite =
  [
    Alcotest.test_case "proto frame round-trip" `Quick test_proto_roundtrip;
    Alcotest.test_case "index save/load round-trip" `Quick
      test_index_roundtrip;
    Alcotest.test_case "index rejects stale code version" `Quick
      test_index_rejects_stale_code_version;
    Alcotest.test_case "cold path = exhaustive arg-min (12 experiments)"
      `Quick test_cold_path_matches_exhaustive_argmin;
    Alcotest.test_case "serve: cold, warm, write-back, concurrent clients"
      `Quick test_serve_cold_warm_writeback_and_concurrency;
    Alcotest.test_case "hexpulse: scrape endpoint, quantile round-trip"
      `Quick test_http_scrape_and_quantile_roundtrip;
    Alcotest.test_case "hexpulse: access log and slow attribution" `Quick
      test_access_log_and_slow_attribution;
    Alcotest.test_case "hexpulse: drift monitor, clean and injected" `Quick
      test_drift_monitor_clean_and_injected;
    Alcotest.test_case "graceful shutdown on SIGTERM" `Quick
      test_graceful_shutdown_on_sigterm;
  ]
