(* hexserve: the precomputed arg-min index, the wire protocol, and the
   advisor service.  The load-bearing properties: an index survives a
   save/load round-trip with bit-identical answers, the cold path returns
   exactly the exhaustive-sweep arg-min on every accuracy-baseline
   experiment, and concurrent clients get deterministic answers.

   These tests spawn domains (the server runs in one), so this suite must
   be registered LAST: OCaml 5 forbids Unix.fork once domains exist, and
   every fork-backend pool test precedes us. *)

module Serve = Hextime_serve
module Advisor = Serve.Advisor
module Index = Serve.Index
module Proto = Serve.Proto
module Server = Serve.Server
module Client = Serve.Client
module Parsweep = Hextime_parsweep.Parsweep
module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Attribution = Hextime_obs.Attribution
module Optimizer = Hextime_tileopt.Optimizer
module Model = Hextime_core.Model
module Minijson = Hextime_prelude.Minijson
module H = Hextime_harness

let fresh_path =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hextime-serve-%d-%d%s" (Unix.getpid ()) !counter suffix)

let config_equal (a : Config.t) (b : Config.t) =
  a.Config.t_t = b.Config.t_t && a.Config.t_s = b.Config.t_s
  && a.Config.threads = b.Config.threads

let components_equal (a : Attribution.components) (b : Attribution.components)
    =
  a.Attribution.compute = b.Attribution.compute
  && a.Attribution.global_mem = b.Attribution.global_mem
  && a.Attribution.shared_mem = b.Attribution.shared_mem
  && a.Attribution.sync = b.Attribution.sync
  && a.Attribution.launch = b.Attribution.launch
  && a.Attribution.jitter = b.Attribution.jitter

let entry_of (e : H.Experiments.t) =
  match Advisor.solve e.H.Experiments.arch e.H.Experiments.problem with
  | Ok a ->
      Index.entry_of_answer e.H.Experiments.arch e.H.Experiments.problem a
  | Error msg -> Alcotest.failf "%s: %s" (H.Experiments.id e) msg

(* --- wire protocol ---------------------------------------------------------- *)

let test_proto_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  let requests =
    [
      Proto.Ask
        { arch = "gtx980"; stencil = "heat2d"; space = [| 512; 512 |]; time = 128 };
      Proto.Stats;
      Proto.Shutdown;
    ]
  in
  List.iter (fun r -> Proto.write_frame a (Proto.request_to_json r)) requests;
  List.iter
    (fun r ->
      match Proto.read_frame b with
      | Ok (Some json) -> (
          match Proto.request_of_json json with
          | Ok r' ->
              Alcotest.(check bool) "request round-trips" true (r = r')
          | Error e -> Alcotest.fail e)
      | Ok None -> Alcotest.fail "unexpected end of stream"
      | Error e -> Alcotest.fail e)
    requests;
  (* a reply carrying a real index entry round-trips field-for-field *)
  let entry = entry_of (List.hd (H.Experiments.all H.Experiments.Ci)) in
  let reply = Proto.Answer { source = Proto.Warm; entry; latency_us = 12.5 } in
  Proto.write_frame a (Proto.reply_to_json reply);
  (match Proto.read_frame b with
  | Ok (Some json) -> (
      match Proto.reply_of_json json with
      | Ok (Proto.Answer { source; entry = e'; latency_us }) ->
          Alcotest.(check bool) "source" true (source = Proto.Warm);
          Alcotest.(check (float 0.0)) "latency" 12.5 latency_us;
          Alcotest.(check string) "key" entry.Index.e_key e'.Index.e_key;
          Alcotest.(check bool) "config" true
            (config_equal entry.Index.e_config e'.Index.e_config);
          Alcotest.(check (float 0.0)) "talg bit-identical" entry.Index.e_talg
            e'.Index.e_talg
      | Ok _ -> Alcotest.fail "reply decoded to the wrong arm"
      | Error e -> Alcotest.fail e)
  | Ok None -> Alcotest.fail "unexpected end of stream"
  | Error e -> Alcotest.fail e);
  (* closing the writer is a clean EOF on the reader, not an error *)
  Unix.close a;
  match Proto.read_frame b with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "phantom frame after close"
  | Error e -> Alcotest.failf "clean close misread as %s" e

(* --- index round-trip ------------------------------------------------------- *)

let test_index_roundtrip () =
  let experiments = H.Experiments.all H.Experiments.Ci in
  let index = Index.create () in
  List.iter (fun e -> Index.add index (entry_of e)) experiments;
  Alcotest.(check int) "one entry per experiment" (List.length experiments)
    (Index.size index);
  let path = fresh_path ".json" in
  (match Index.save index ~path with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let loaded =
    match Index.load ~path with Ok t -> t | Error m -> Alcotest.fail m
  in
  Sys.remove path;
  Alcotest.(check int) "loaded size" (Index.size index) (Index.size loaded);
  List.iter
    (fun (e : Index.entry) ->
      match Index.find loaded e.Index.e_key with
      | None -> Alcotest.failf "entry %s lost in round-trip" e.Index.e_key
      | Some e' ->
          Alcotest.(check bool) "config identical" true
            (config_equal e.Index.e_config e'.Index.e_config);
          Alcotest.(check (float 0.0)) "talg bit-identical" e.Index.e_talg
            e'.Index.e_talg;
          Alcotest.(check bool) "attribution bit-identical" true
            (components_equal e.Index.e_components e'.Index.e_components))
    (Index.entries index)

let test_index_rejects_stale_code_version () =
  let index = Index.create () in
  Index.add index (entry_of (List.hd (H.Experiments.all H.Experiments.Ci)));
  let stale =
    match Index.to_json index with
    | Minijson.Obj fields ->
        Minijson.Obj
          (List.map
             (function
               | "code_version", _ ->
                   ("code_version", Minijson.Str "hextime-serve-v0")
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "index JSON is not an object"
  in
  match Index.of_json stale with
  | Error msg ->
      Alcotest.(check bool) "error names the stale version" true
        (Test_util.contains msg "hextime-serve-v0")
  | Ok _ -> Alcotest.fail "stale code_version accepted"

(* --- cold path: exact exhaustive arg-min ------------------------------------ *)

(* On every accuracy-baseline experiment, the advisor's certified-seed
   descent must land on the configuration the exhaustive model sweep picks
   — same tiles, bit-identical predicted Talg.  This is the guarantee that
   a cold miss served live agrees with `hextime tune`. *)
let test_cold_path_matches_exhaustive_argmin () =
  let experiments = H.Experiments.all H.Experiments.Ci in
  Alcotest.(check int) "accuracy-baseline experiment count" 12
    (List.length experiments);
  List.iter
    (fun (e : H.Experiments.t) ->
      let id = H.Experiments.id e in
      let arch = e.H.Experiments.arch in
      let problem = e.H.Experiments.problem in
      let params = H.Microbench.params arch in
      let citer = H.Microbench.citer arch problem.P.stencil in
      let space_eval = Optimizer.evaluate_space params ~citer problem in
      if space_eval = [] then Alcotest.failf "%s: empty feasible space" id;
      let best = Optimizer.best space_eval in
      let expected =
        match Advisor.config_of_shape best.Optimizer.shape with
        | Ok c -> c
        | Error m -> Alcotest.failf "%s: %s" id m
      in
      match Advisor.solve arch problem with
      | Error msg -> Alcotest.failf "%s: %s" id msg
      | Ok a ->
          Alcotest.(check bool)
            (id ^ ": config is the exhaustive arg-min")
            true
            (config_equal expected a.Advisor.a_config);
          Alcotest.(check (float 0.0))
            (id ^ ": Talg bit-exact")
            best.Optimizer.prediction.Model.talg a.Advisor.a_talg)
    experiments

(* --- the server ------------------------------------------------------------- *)

let connect socket_path =
  match Client.connect ~attempts:200 ~socket_path () with
  | Ok fd -> fd
  | Error m -> Alcotest.fail m

let ask fd (e : H.Experiments.t) =
  Client.ask fd
    ~arch:e.H.Experiments.arch.Gpu.Arch.name
    ~stencil:e.H.Experiments.problem.P.stencil.S.name
    ~space:e.H.Experiments.problem.P.space
    ~time:e.H.Experiments.problem.P.time

let test_serve_cold_warm_writeback_and_concurrency () =
  let socket_path = fresh_path ".sock" in
  let index_path = fresh_path ".json" in
  let experiments = H.Experiments.all H.Experiments.Ci in
  let e0 = List.hd experiments in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~index_path ~exec:Parsweep.serial ~socket_path ())
  in
  (* cold first — the server starts with no index file *)
  let fd = connect socket_path in
  let cold_entry =
    match ask fd e0 with
    | Ok (Proto.Cold, entry, _) -> entry
    | Ok (Proto.Warm, _, _) ->
        Alcotest.fail "first ask answered warm from an empty index"
    | Error msg -> Alcotest.failf "first ask failed: %s" msg
  in
  (* same connection, same question: warm now, same answer *)
  (match ask fd e0 with
  | Ok (Proto.Warm, entry, _) ->
      Alcotest.(check bool) "warm answer identical to the cold one" true
        (config_equal cold_entry.Index.e_config entry.Index.e_config
        && cold_entry.Index.e_talg = entry.Index.e_talg)
  | Ok (Proto.Cold, _, _) -> Alcotest.fail "repeat ask missed the index"
  | Error msg -> Alcotest.failf "repeat ask failed: %s" msg);
  (* a malformed ask is an error reply, not a dead server *)
  (match
     Client.ask fd ~arch:"gtx980" ~stencil:"no-such-stencil"
       ~space:[| 64; 64 |] ~time:8
   with
  | Error msg ->
      Alcotest.(check bool) "error names the unknown stencil" true
        (Test_util.contains msg "no-such-stencil")
  | Ok _ -> Alcotest.fail "unknown stencil answered");
  Client.close fd;
  (* concurrent clients, one per experiment: answers must be deterministic
     — every client gets exactly what the in-process advisor computes *)
  let clients =
    List.map
      (fun e ->
        Domain.spawn (fun () ->
            let fd = connect socket_path in
            let r = ask fd e in
            Client.close fd;
            r))
      experiments
  in
  let replies = List.map Domain.join clients in
  List.iter2
    (fun e reply ->
      let expected = entry_of e in
      match reply with
      | Ok ((_ : Proto.source), entry, _) ->
          Alcotest.(check bool)
            (H.Experiments.id e ^ ": served = in-process advisor")
            true
            (config_equal expected.Index.e_config entry.Index.e_config
            && expected.Index.e_talg = entry.Index.e_talg)
      | Error msg -> Alcotest.failf "%s: %s" (H.Experiments.id e) msg)
    experiments replies;
  (* shutdown, then the write-back index must hold every asked problem *)
  let fd = connect socket_path in
  (match Client.shutdown fd with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Client.close fd;
  let summary = Domain.join srv in
  Alcotest.(check bool) "server saw warm hits" true
    (summary.Server.warm_hits >= 1);
  Alcotest.(check bool) "server saw cold misses" true
    (summary.Server.cold_misses >= 1);
  let written =
    match Index.load ~path:index_path with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "write-back persisted every distinct problem"
    (List.length experiments) (Index.size written);
  (* a fresh server over the written index answers warm immediately *)
  let srv2 =
    Domain.spawn (fun () ->
        Server.run ~index_path ~exec:Parsweep.serial ~max_requests:1
          ~socket_path ())
  in
  let fd = connect socket_path in
  (match ask fd e0 with
  | Ok (Proto.Warm, entry, _) ->
      Alcotest.(check bool) "reloaded answer identical" true
        (config_equal cold_entry.Index.e_config entry.Index.e_config)
  | Ok (Proto.Cold, _, _) -> Alcotest.fail "persisted index not used"
  | Error msg -> Alcotest.failf "ask against reloaded index failed: %s" msg);
  Client.close fd;
  let summary2 = Domain.join srv2 in
  Sys.remove index_path;
  Alcotest.(check int) "second server answered warm" 1
    summary2.Server.warm_hits

let suite =
  [
    Alcotest.test_case "proto frame round-trip" `Quick test_proto_roundtrip;
    Alcotest.test_case "index save/load round-trip" `Quick
      test_index_roundtrip;
    Alcotest.test_case "index rejects stale code version" `Quick
      test_index_rejects_stale_code_version;
    Alcotest.test_case "cold path = exhaustive arg-min (12 experiments)"
      `Quick test_cold_path_matches_exhaustive_argmin;
    Alcotest.test_case "serve: cold, warm, write-back, concurrent clients"
      `Quick test_serve_cold_warm_writeback_and_concurrency;
  ]
