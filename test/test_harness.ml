(* Harness: micro-benchmarks (Tables 3/4 protocol), experiment grids, the
   baseline sweep, and the validation analysis — end-to-end at CI scale.
   These tests assert the paper's qualitative claims, not absolute numbers. *)

module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module Params = Hextime_core.Params
module H = Hextime_harness
module Runner = Hextime_tileopt.Runner

let arch = Gpu.Arch.gtx980

let test_microbench_ranges () =
  let p = H.Microbench.params arch in
  (* L in the paper's Table 3 regime: a few milliseconds per GB *)
  let l_gb = Params.l_per_gb p in
  Alcotest.(check bool)
    (Printf.sprintf "L = %.2e s/GB plausible" l_gb)
    true
    (l_gb > 1e-3 && l_gb < 5e-2);
  (* tau_sync around a nanosecond; T_sync around a microsecond *)
  Alcotest.(check bool) "tau_sync range" true
    (p.Params.tau_sync > 1e-10 && p.Params.tau_sync < 1e-8);
  Alcotest.(check bool) "T_sync range" true
    (p.Params.t_sync > 1e-7 && p.Params.t_sync < 1e-5)

let test_microbench_direction () =
  (* Titan X has more bandwidth: its L must be lower (Table 3) *)
  let g = H.Microbench.params Gpu.Arch.gtx980 in
  let t = H.Microbench.params Gpu.Arch.titanx in
  Alcotest.(check bool) "L(titanx) < L(gtx980)" true
    (t.Params.l_word < g.Params.l_word)

let test_citer_table4_shape () =
  let c st = H.Microbench.citer arch st in
  (* 2D first-order stencils: tens of nanoseconds *)
  Alcotest.(check bool) "jacobi2d range" true
    (c S.jacobi2d > 1e-8 && c S.jacobi2d < 1e-7);
  (* gradient's sqrt makes it markedly more expensive (Table 4: ~1.8x) *)
  Alcotest.(check bool) "gradient > 1.4x jacobi" true
    (c S.gradient2d > 1.4 *. c S.jacobi2d);
  (* 3D stencils are several times more expensive (Table 4: ~4x) *)
  Alcotest.(check bool) "heat3d >> heat2d" true
    (c S.heat3d > 2.5 *. c S.heat2d);
  (* Titan X's lower clock: slightly larger C_iter (Table 4) *)
  Alcotest.(check bool) "titanx citer larger" true
    (H.Microbench.citer Gpu.Arch.titanx S.jacobi2d > c S.jacobi2d)

let test_citer_deterministic () =
  let a = H.Microbench.citer arch S.laplacian2d in
  let b = H.Microbench.citer arch S.laplacian2d in
  Alcotest.(check (float 0.0)) "memoized and deterministic" a b

let test_experiment_grids () =
  Alcotest.(check int) "paper 2D experiments" 80
    (List.length (H.Experiments.all_2d H.Experiments.Paper));
  Alcotest.(check int) "paper 3D experiments" 48
    (List.length (H.Experiments.all_3d H.Experiments.Paper));
  Alcotest.(check int) "paper total" 128
    (List.length (H.Experiments.all H.Experiments.Paper));
  Alcotest.(check bool) "ci is small" true
    (List.length (H.Experiments.all H.Experiments.Ci) <= 16)

let test_scale_parsing () =
  (match H.Experiments.scale_of_string "paper" with
  | Ok H.Experiments.Paper -> ()
  | _ -> Alcotest.fail "paper scale");
  (match H.Experiments.scale_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus scale accepted");
  Alcotest.(check string) "roundtrip" "quick"
    (H.Experiments.scale_to_string H.Experiments.Quick)

let experiment =
  {
    H.Experiments.arch;
    problem = P.make S.heat2d ~space:[| 2048; 2048 |] ~time:512;
  }

let sweep = (H.Sweep.baseline experiment).H.Sweep.points

let test_sweep_population () =
  (* most of the 850 configurations both predict and simulate *)
  Alcotest.(check bool)
    (Printf.sprintf "%d points survive" (List.length sweep))
    true
    (List.length sweep > 700)

let test_sweep_limit () =
  let limited = (H.Sweep.baseline ~limit:50 experiment).H.Sweep.points in
  Alcotest.(check bool) "limit respected" true (List.length limited <= 50)

let test_sweep_cache_versioning () =
  (* the priced-kernel refactor changed what a cached point means (v2→v3),
     and the move to digest keys re-seeded the citer sampler (v3→v4), so
     the key namespace was bumped: older entries must miss, not resurface *)
  Alcotest.(check string) "namespace" "hextime-sweep-v4" H.Sweep.code_version;
  let module Parsweep = Hextime_parsweep.Parsweep in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hextime-test-cache-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  let cache = Parsweep.Cache.create ~dir () in
  let exec = { Parsweep.serial with Parsweep.cache = Some cache } in
  let e =
    { H.Experiments.arch; problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:128 }
  in
  (* cold run: populates the cache and prices kernels *)
  let inv0 = Gpu.Simulator.invocations () in
  let s1, st1 = H.Sweep.run ~limit:30 ~exec e in
  Alcotest.(check bool) "cold run prices" true
    (Gpu.Simulator.invocations () > inv0);
  Alcotest.(check int) "cold run misses" 0 st1.Parsweep.cache_hits;
  Alcotest.(check bool) "cold run writes" true
    (Parsweep.Cache.writes cache > 0);
  (* nothing was written under the old namespace: a v2-format key for a
     surviving config must be absent from the populated cache *)
  let cfg = (List.hd s1.H.Sweep.points).H.Sweep.config in
  let old_key =
    Printf.sprintf "point|hextime-sweep-v2|%s|%s" (H.Experiments.id e)
      (Hextime_tiling.Config.id cfg)
  in
  (match (Parsweep.Cache.get cache ~key:old_key : string option) with
  | None -> ()
  | Some _ -> Alcotest.fail "sweep still populates the v2 namespace");
  (* warm run: every point is answered from the cache without touching the
     simulator at all *)
  let inv1 = Gpu.Simulator.invocations () in
  let s2, st2 = H.Sweep.run ~limit:30 ~exec e in
  Alcotest.(check int) "warm run never prices" 0
    (Gpu.Simulator.invocations () - inv1);
  Alcotest.(check int) "warm run all hits" st2.Parsweep.total
    st2.Parsweep.cache_hits;
  Alcotest.(check int) "same survivors"
    (List.length s1.H.Sweep.points)
    (List.length s2.H.Sweep.points)

let test_top_performing () =
  let top = H.Sweep.top_performing ~within:0.2 sweep in
  let best = H.Sweep.best_gflops sweep in
  Alcotest.(check bool) "top subset non-empty" true (List.length top > 0);
  Alcotest.(check bool) "top is a subset" true
    (List.length top <= List.length sweep);
  List.iter
    (fun (p : H.Sweep.point) ->
      Alcotest.(check bool) "within 20% of best" true
        (p.measured.Runner.gflops >= 0.8 *. best))
    top

let test_validation_headline () =
  (* the paper's signature: poor RMSE overall, good RMSE in the top band *)
  let s = H.Validation.analyze sweep in
  Alcotest.(check bool)
    (Printf.sprintf "RMSE(all) = %.0f%% is large" (100.0 *. s.H.Validation.rmse_all))
    true
    (s.H.Validation.rmse_all > 0.25);
  Alcotest.(check bool)
    (Printf.sprintf "RMSE(top) = %.1f%% is small" (100.0 *. s.H.Validation.rmse_top))
    true
    (s.H.Validation.rmse_top < 0.20);
  Alcotest.(check bool) "top band much better than whole" true
    (s.H.Validation.rmse_top < 0.5 *. s.H.Validation.rmse_all)

let test_scatter () =
  let sc = H.Validation.scatter sweep in
  Alcotest.(check int) "one pair per point" (List.length sweep) (List.length sc);
  List.iter
    (fun (p, m) ->
      Alcotest.(check bool) "positive coordinates" true (p > 0.0 && m > 0.0))
    sc

let test_tables_render () =
  let t2 = Hextime_prelude.Tabulate.render (H.Tables.table2 ()) in
  Alcotest.(check bool) "table2 mentions nSM" true
    (String.length t2 > 0
    && List.exists
         (fun line -> String.length line >= 6 && String.sub line 0 6 = "| nSM ")
         (String.split_on_char '\n' t2));
  let data = H.Tables.table3_data () in
  Alcotest.(check int) "table3 covers both archs" 2 (List.length data);
  let t4 = H.Tables.table4_data () in
  Alcotest.(check int) "table4 covers six benchmarks" 6 (List.length t4)

let test_fig4_surface () =
  (* CI-sized surface: same code path as the paper-sized figure *)
  let f = H.Figures.fig4_data ~space:[| 512; 512 |] ~time:256 () in
  Alcotest.(check int) "slice at tS1 = 8" 8 f.H.Figures.t_s1;
  Alcotest.(check bool) "surface populated" true (List.length f.H.Figures.cells > 50);
  let _, _, minv = f.H.Figures.minimum in
  List.iter
    (fun (_, _, v) ->
      Alcotest.(check bool) "minimum is minimal" true (v >= minv))
    f.H.Figures.cells

let test_report_markdown () =
  let md = H.Report.markdown H.Experiments.Ci in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length md in
      let rec go i = i + n <= h && (String.sub md i n = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "report has %S" needle) true (go 0))
    [
      "# hextime reproduction report";
      "## Table 3";
      "## Table 4";
      "## Figure 3";
      "## Figure 5";
      "## Figure 6";
      "7.36e-03";
    ]

(* --- hexwatch: arg-min quality on hand-built sweeps -------------------------- *)

(* A synthetic sweep point: the model's opinion (talg) and the machine's
   (time_s/gflops) are set independently, so the arg-min metric can be
   checked against hand-computed values. *)
let mk_point ~talg ~time_s ~gflops =
  {
    H.Sweep.config =
      Hextime_tiling.Config.make_exn ~t_t:2 ~t_s:[| 4; 32 |] ~threads:[| 64 |];
    predicted =
      {
        Hextime_core.Model.talg;
        t_tile = talg;
        m_transfer = 0.0;
        c_compute = 0.0;
        k = 1;
        n_wavefronts = 1;
        wavefront_blocks = 1;
        sm_rounds = 1;
        shared_words = 0;
        io_words = 0;
        chunks = 1;
      };
    measured =
      {
        Runner.time_s;
        gflops;
        resident_blocks = 1;
        spilled_regs = 0;
        limiting = Gpu.Occupancy.Threads;
      };
  }

let test_argmin_quality () =
  (* the model's favourite (smallest talg) is also the measured winner *)
  let good =
    H.Validation.analyze
      [
        mk_point ~talg:1.0 ~time_s:1.0 ~gflops:100.0;
        mk_point ~talg:2.0 ~time_s:2.0 ~gflops:50.0;
        mk_point ~talg:3.0 ~time_s:4.0 ~gflops:25.0;
      ]
  in
  Alcotest.(check (float 1e-9)) "perfect pick" 1.0
    good.H.Validation.argmin_quality;
  Alcotest.(check bool) "perfect pick is in band" true
    good.H.Validation.argmin_in_band;
  (* the model's favourite measures at 40% of the sweep's best *)
  let bad =
    H.Validation.analyze
      [
        mk_point ~talg:1.0 ~time_s:2.5 ~gflops:40.0;
        mk_point ~talg:2.0 ~time_s:1.0 ~gflops:100.0;
        mk_point ~talg:3.0 ~time_s:4.0 ~gflops:25.0;
      ]
  in
  Alcotest.(check (float 1e-9)) "mediocre pick" 0.4
    bad.H.Validation.argmin_quality;
  Alcotest.(check bool) "mediocre pick is out of band" false
    bad.H.Validation.argmin_in_band;
  (* just inside the default 20% band *)
  let edge =
    H.Validation.analyze
      [
        mk_point ~talg:1.0 ~time_s:1.25 ~gflops:80.0;
        mk_point ~talg:2.0 ~time_s:1.0 ~gflops:100.0;
      ]
  in
  Alcotest.(check (float 1e-9)) "edge pick" 0.8
    edge.H.Validation.argmin_quality;
  Alcotest.(check bool) "80% of best is in the 20% band" true
    edge.H.Validation.argmin_in_band;
  (* a wider band flips the verdict for the mediocre pick *)
  let wide =
    H.Validation.analyze ~top_within:0.65
      [
        mk_point ~talg:1.0 ~time_s:2.5 ~gflops:40.0;
        mk_point ~talg:2.0 ~time_s:1.0 ~gflops:100.0;
      ]
  in
  Alcotest.(check bool) "in band once the band is wide enough" true
    wide.H.Validation.argmin_in_band

let test_validation_metrics_shape () =
  let s =
    H.Validation.analyze
      [
        mk_point ~talg:1.0 ~time_s:1.0 ~gflops:100.0;
        mk_point ~talg:2.0 ~time_s:2.0 ~gflops:50.0;
      ]
  in
  let m = H.Validation.metrics s in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("metrics carry " ^ name) true
        (List.mem_assoc name m))
    [
      "points"; "rmse_all"; "top_points"; "rmse_top"; "correlation_top";
      "best_gflops"; "argmin_quality"; "argmin_in_band";
    ];
  Alcotest.(check (float 0.0)) "argmin_in_band encodes as 1.0" 1.0
    (List.assoc "argmin_in_band" m)

(* --- hexwatch: the accuracy gate --------------------------------------------- *)

let acc_summary ?(rmse_all = 0.5) ?(rmse_top = 0.08) ?(correlation_top = 0.9)
    ?(argmin_quality = 0.95) ?(argmin_in_band = true) () =
  {
    H.Validation.points = 850;
    rmse_all;
    top_points = 10;
    rmse_top;
    correlation_top;
    best_gflops = 100.0;
    argmin_quality;
    argmin_in_band;
  }

let acc ?(scale = H.Experiments.Ci) rows =
  {
    H.Accuracy.scale;
    code_version = "test-v1";
    rows =
      List.map
        (fun (experiment, summary) -> { H.Accuracy.experiment; summary })
        rows;
  }

let test_accuracy_json_roundtrip () =
  let t =
    acc
      [
        ("gtx980/heat2d", acc_summary ());
        ("titanx/heat3d", acc_summary ~argmin_in_band:false ~rmse_top:0.31 ());
      ]
  in
  match H.Accuracy.of_json (H.Accuracy.to_json t) with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
      Alcotest.(check int) "rows survive" 2 (List.length t'.H.Accuracy.rows);
      Alcotest.(check string) "code version" "test-v1"
        t'.H.Accuracy.code_version;
      let r' = List.nth t'.H.Accuracy.rows 1 in
      Alcotest.(check string) "experiment name" "titanx/heat3d"
        r'.H.Accuracy.experiment;
      Alcotest.(check (float 0.0)) "rmse_top bit-exact" 0.31
        r'.H.Accuracy.summary.H.Validation.rmse_top;
      Alcotest.(check bool) "in-band flag survives" false
        r'.H.Accuracy.summary.H.Validation.argmin_in_band

let test_accuracy_compare () =
  let baseline = acc [ ("e1", acc_summary ()); ("e2", acc_summary ()) ] in
  (* identical figures: clean *)
  Alcotest.(check int) "identical: no drift" 0
    (List.length (H.Accuracy.compare ~baseline baseline));
  (* improvements never drift *)
  let better =
    acc [ ("e1", acc_summary ~rmse_top:0.01 ~argmin_quality:1.0 ());
          ("e2", acc_summary ()) ]
  in
  Alcotest.(check int) "improvement: no drift" 0
    (List.length (H.Accuracy.compare ~baseline better));
  (* a top-band RMSE regression beyond tolerance drifts *)
  let worse = acc [ ("e1", acc_summary ~rmse_top:0.15 ()); ("e2", acc_summary ()) ] in
  (match H.Accuracy.compare ~baseline worse with
  | [ d ] ->
      Alcotest.(check string) "drifting metric" "rmse_top" d.H.Accuracy.d_metric;
      Alcotest.(check string) "drifting experiment" "e1" d.H.Accuracy.d_experiment
  | ds -> Alcotest.failf "expected 1 drift, got %d" (List.length ds));
  (* within tolerance: clean *)
  let slightly =
    acc [ ("e1", acc_summary ~rmse_top:0.09 ()); ("e2", acc_summary ()) ]
  in
  Alcotest.(check int) "within tolerance: no drift" 0
    (List.length (H.Accuracy.compare ~baseline slightly));
  (* a missing experiment drifts *)
  let missing = acc [ ("e1", acc_summary ()) ] in
  (match H.Accuracy.compare ~baseline missing with
  | [ d ] -> Alcotest.(check string) "missing experiment" "e2" d.H.Accuracy.d_experiment
  | ds -> Alcotest.failf "expected 1 drift, got %d" (List.length ds));
  (* falling out of the band drifts regardless of tolerance *)
  let out_of_band =
    acc
      [
        ("e1", acc_summary ~argmin_quality:0.92 ~argmin_in_band:false ());
        ("e2", acc_summary ());
      ]
  in
  Alcotest.(check bool) "band exit drifts" true
    (List.exists
       (fun (d : H.Accuracy.drift) -> d.H.Accuracy.d_metric = "argmin_in_band")
       (H.Accuracy.compare ~baseline out_of_band))

(* --- hexwatch: history rendering --------------------------------------------- *)

let test_history_render () =
  let entry kind metrics =
    Hextime_obs.Ledger.make ~metrics ~kind ~code_version:"test-v1" ()
  in
  let entries =
    [
      entry "validate" [ ("rmse_top", 0.0835); ("points_per_sec", 61234.0) ];
      entry "bench" [ ("cold_sweep_points_per_sec", 152345.0) ];
    ]
  in
  Alcotest.(check (list string))
    "columns filtered to those present"
    [ "rmse_top"; "points_per_sec"; "cold_sweep_points_per_sec" ]
    (H.History.columns_of H.History.default_columns entries);
  let table = H.History.render entries in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length table in
      let rec go i = i + n <= h && (String.sub table i n = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "table has %S" needle) true (go 0))
    [ "when"; "kind"; "validate"; "bench"; "8.3%"; "-" ];
  let md = H.History.markdown entries in
  Alcotest.(check bool) "markdown is a pipe table" true
    (String.length md > 0 && md.[0] = '|');
  match H.History.json entries with
  | Hextime_prelude.Minijson.List [ _; _ ] -> ()
  | _ -> Alcotest.fail "json renders one element per entry"

let suite =
  [
    Alcotest.test_case "microbench ranges (Table 3)" `Quick test_microbench_ranges;
    Alcotest.test_case "microbench direction" `Quick test_microbench_direction;
    Alcotest.test_case "citer shape (Table 4)" `Quick test_citer_table4_shape;
    Alcotest.test_case "citer deterministic" `Quick test_citer_deterministic;
    Alcotest.test_case "experiment grids" `Quick test_experiment_grids;
    Alcotest.test_case "scale parsing" `Quick test_scale_parsing;
    Alcotest.test_case "sweep population" `Quick test_sweep_population;
    Alcotest.test_case "sweep limit" `Quick test_sweep_limit;
    Alcotest.test_case "sweep cache versioning" `Quick
      test_sweep_cache_versioning;
    Alcotest.test_case "top performing subset" `Quick test_top_performing;
    Alcotest.test_case "validation headline (Sec 5.3)" `Quick test_validation_headline;
    Alcotest.test_case "scatter (Fig 3)" `Quick test_scatter;
    Alcotest.test_case "tables render" `Quick test_tables_render;
    Alcotest.test_case "fig4 surface" `Quick test_fig4_surface;
    Alcotest.test_case "report markdown" `Slow test_report_markdown;
    Alcotest.test_case "argmin quality (hand-built sweeps)" `Quick
      test_argmin_quality;
    Alcotest.test_case "validation metrics shape" `Quick
      test_validation_metrics_shape;
    Alcotest.test_case "accuracy JSON round-trip" `Quick
      test_accuracy_json_roundtrip;
    Alcotest.test_case "accuracy compare gate" `Quick test_accuracy_compare;
    Alcotest.test_case "history render" `Quick test_history_render;
  ]
