(* Harness: micro-benchmarks (Tables 3/4 protocol), experiment grids, the
   baseline sweep, and the validation analysis — end-to-end at CI scale.
   These tests assert the paper's qualitative claims, not absolute numbers. *)

module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module Params = Hextime_core.Params
module H = Hextime_harness
module Runner = Hextime_tileopt.Runner

let arch = Gpu.Arch.gtx980

let test_microbench_ranges () =
  let p = H.Microbench.params arch in
  (* L in the paper's Table 3 regime: a few milliseconds per GB *)
  let l_gb = Params.l_per_gb p in
  Alcotest.(check bool)
    (Printf.sprintf "L = %.2e s/GB plausible" l_gb)
    true
    (l_gb > 1e-3 && l_gb < 5e-2);
  (* tau_sync around a nanosecond; T_sync around a microsecond *)
  Alcotest.(check bool) "tau_sync range" true
    (p.Params.tau_sync > 1e-10 && p.Params.tau_sync < 1e-8);
  Alcotest.(check bool) "T_sync range" true
    (p.Params.t_sync > 1e-7 && p.Params.t_sync < 1e-5)

let test_microbench_direction () =
  (* Titan X has more bandwidth: its L must be lower (Table 3) *)
  let g = H.Microbench.params Gpu.Arch.gtx980 in
  let t = H.Microbench.params Gpu.Arch.titanx in
  Alcotest.(check bool) "L(titanx) < L(gtx980)" true
    (t.Params.l_word < g.Params.l_word)

let test_citer_table4_shape () =
  let c st = H.Microbench.citer arch st in
  (* 2D first-order stencils: tens of nanoseconds *)
  Alcotest.(check bool) "jacobi2d range" true
    (c S.jacobi2d > 1e-8 && c S.jacobi2d < 1e-7);
  (* gradient's sqrt makes it markedly more expensive (Table 4: ~1.8x) *)
  Alcotest.(check bool) "gradient > 1.4x jacobi" true
    (c S.gradient2d > 1.4 *. c S.jacobi2d);
  (* 3D stencils are several times more expensive (Table 4: ~4x) *)
  Alcotest.(check bool) "heat3d >> heat2d" true
    (c S.heat3d > 2.5 *. c S.heat2d);
  (* Titan X's lower clock: slightly larger C_iter (Table 4) *)
  Alcotest.(check bool) "titanx citer larger" true
    (H.Microbench.citer Gpu.Arch.titanx S.jacobi2d > c S.jacobi2d)

let test_citer_deterministic () =
  let a = H.Microbench.citer arch S.laplacian2d in
  let b = H.Microbench.citer arch S.laplacian2d in
  Alcotest.(check (float 0.0)) "memoized and deterministic" a b

let test_experiment_grids () =
  Alcotest.(check int) "paper 2D experiments" 80
    (List.length (H.Experiments.all_2d H.Experiments.Paper));
  Alcotest.(check int) "paper 3D experiments" 48
    (List.length (H.Experiments.all_3d H.Experiments.Paper));
  Alcotest.(check int) "paper total" 128
    (List.length (H.Experiments.all H.Experiments.Paper));
  Alcotest.(check bool) "ci is small" true
    (List.length (H.Experiments.all H.Experiments.Ci) <= 16)

let test_scale_parsing () =
  (match H.Experiments.scale_of_string "paper" with
  | Ok H.Experiments.Paper -> ()
  | _ -> Alcotest.fail "paper scale");
  (match H.Experiments.scale_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus scale accepted");
  Alcotest.(check string) "roundtrip" "quick"
    (H.Experiments.scale_to_string H.Experiments.Quick)

let experiment =
  {
    H.Experiments.arch;
    problem = P.make S.heat2d ~space:[| 2048; 2048 |] ~time:512;
  }

let sweep = (H.Sweep.baseline experiment).H.Sweep.points

let test_sweep_population () =
  (* most of the 850 configurations both predict and simulate *)
  Alcotest.(check bool)
    (Printf.sprintf "%d points survive" (List.length sweep))
    true
    (List.length sweep > 700)

let test_sweep_limit () =
  let limited = (H.Sweep.baseline ~limit:50 experiment).H.Sweep.points in
  Alcotest.(check bool) "limit respected" true (List.length limited <= 50)

let test_sweep_cache_versioning () =
  (* the priced-kernel refactor changed what a cached point means (v2→v3),
     and the move to digest keys re-seeded the citer sampler (v3→v4), so
     the key namespace was bumped: older entries must miss, not resurface *)
  Alcotest.(check string) "namespace" "hextime-sweep-v4" H.Sweep.code_version;
  let module Parsweep = Hextime_parsweep.Parsweep in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hextime-test-cache-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  let cache = Parsweep.Cache.create ~dir () in
  let exec = { Parsweep.serial with Parsweep.cache = Some cache } in
  let e =
    { H.Experiments.arch; problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:128 }
  in
  (* cold run: populates the cache and prices kernels *)
  let inv0 = Gpu.Simulator.invocations () in
  let s1, st1 = H.Sweep.run ~limit:30 ~exec e in
  Alcotest.(check bool) "cold run prices" true
    (Gpu.Simulator.invocations () > inv0);
  Alcotest.(check int) "cold run misses" 0 st1.Parsweep.cache_hits;
  Alcotest.(check bool) "cold run writes" true
    (Parsweep.Cache.writes cache > 0);
  (* nothing was written under the old namespace: a v2-format key for a
     surviving config must be absent from the populated cache *)
  let cfg = (List.hd s1.H.Sweep.points).H.Sweep.config in
  let old_key =
    Printf.sprintf "point|hextime-sweep-v2|%s|%s" (H.Experiments.id e)
      (Hextime_tiling.Config.id cfg)
  in
  (match (Parsweep.Cache.get cache ~key:old_key : string option) with
  | None -> ()
  | Some _ -> Alcotest.fail "sweep still populates the v2 namespace");
  (* warm run: every point is answered from the cache without touching the
     simulator at all *)
  let inv1 = Gpu.Simulator.invocations () in
  let s2, st2 = H.Sweep.run ~limit:30 ~exec e in
  Alcotest.(check int) "warm run never prices" 0
    (Gpu.Simulator.invocations () - inv1);
  Alcotest.(check int) "warm run all hits" st2.Parsweep.total
    st2.Parsweep.cache_hits;
  Alcotest.(check int) "same survivors"
    (List.length s1.H.Sweep.points)
    (List.length s2.H.Sweep.points)

let test_top_performing () =
  let top = H.Sweep.top_performing ~within:0.2 sweep in
  let best = H.Sweep.best_gflops sweep in
  Alcotest.(check bool) "top subset non-empty" true (List.length top > 0);
  Alcotest.(check bool) "top is a subset" true
    (List.length top <= List.length sweep);
  List.iter
    (fun (p : H.Sweep.point) ->
      Alcotest.(check bool) "within 20% of best" true
        (p.measured.Runner.gflops >= 0.8 *. best))
    top

let test_validation_headline () =
  (* the paper's signature: poor RMSE overall, good RMSE in the top band *)
  let s = H.Validation.analyze sweep in
  Alcotest.(check bool)
    (Printf.sprintf "RMSE(all) = %.0f%% is large" (100.0 *. s.H.Validation.rmse_all))
    true
    (s.H.Validation.rmse_all > 0.25);
  Alcotest.(check bool)
    (Printf.sprintf "RMSE(top) = %.1f%% is small" (100.0 *. s.H.Validation.rmse_top))
    true
    (s.H.Validation.rmse_top < 0.20);
  Alcotest.(check bool) "top band much better than whole" true
    (s.H.Validation.rmse_top < 0.5 *. s.H.Validation.rmse_all)

let test_scatter () =
  let sc = H.Validation.scatter sweep in
  Alcotest.(check int) "one pair per point" (List.length sweep) (List.length sc);
  List.iter
    (fun (p, m) ->
      Alcotest.(check bool) "positive coordinates" true (p > 0.0 && m > 0.0))
    sc

let test_tables_render () =
  let t2 = Hextime_prelude.Tabulate.render (H.Tables.table2 ()) in
  Alcotest.(check bool) "table2 mentions nSM" true
    (String.length t2 > 0
    && List.exists
         (fun line -> String.length line >= 6 && String.sub line 0 6 = "| nSM ")
         (String.split_on_char '\n' t2));
  let data = H.Tables.table3_data () in
  Alcotest.(check int) "table3 covers both archs" 2 (List.length data);
  let t4 = H.Tables.table4_data () in
  Alcotest.(check int) "table4 covers six benchmarks" 6 (List.length t4)

let test_fig4_surface () =
  (* CI-sized surface: same code path as the paper-sized figure *)
  let f = H.Figures.fig4_data ~space:[| 512; 512 |] ~time:256 () in
  Alcotest.(check int) "slice at tS1 = 8" 8 f.H.Figures.t_s1;
  Alcotest.(check bool) "surface populated" true (List.length f.H.Figures.cells > 50);
  let _, _, minv = f.H.Figures.minimum in
  List.iter
    (fun (_, _, v) ->
      Alcotest.(check bool) "minimum is minimal" true (v >= minv))
    f.H.Figures.cells

let test_report_markdown () =
  let md = H.Report.markdown H.Experiments.Ci in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length md in
      let rec go i = i + n <= h && (String.sub md i n = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "report has %S" needle) true (go 0))
    [
      "# hextime reproduction report";
      "## Table 3";
      "## Table 4";
      "## Figure 3";
      "## Figure 5";
      "## Figure 6";
      "7.36e-03";
    ]

(* --- hexwatch: arg-min quality on hand-built sweeps -------------------------- *)

(* A synthetic sweep point: the model's opinion (talg) and the machine's
   (time_s/gflops) are set independently, so the arg-min metric can be
   checked against hand-computed values. *)
let mk_point ~talg ~time_s ~gflops =
  {
    H.Sweep.config =
      Hextime_tiling.Config.make_exn ~t_t:2 ~t_s:[| 4; 32 |] ~threads:[| 64 |];
    predicted =
      {
        Hextime_core.Model.talg;
        t_tile = talg;
        m_transfer = 0.0;
        c_compute = 0.0;
        k = 1;
        n_wavefronts = 1;
        wavefront_blocks = 1;
        sm_rounds = 1;
        shared_words = 0;
        io_words = 0;
        chunks = 1;
      };
    measured =
      {
        Runner.time_s;
        gflops;
        resident_blocks = 1;
        spilled_regs = 0;
        limiting = Gpu.Occupancy.Threads;
      };
  }

let test_argmin_quality () =
  (* the model's favourite (smallest talg) is also the measured winner *)
  let good =
    H.Validation.analyze
      [
        mk_point ~talg:1.0 ~time_s:1.0 ~gflops:100.0;
        mk_point ~talg:2.0 ~time_s:2.0 ~gflops:50.0;
        mk_point ~talg:3.0 ~time_s:4.0 ~gflops:25.0;
      ]
  in
  Alcotest.(check (float 1e-9)) "perfect pick" 1.0
    good.H.Validation.argmin_quality;
  Alcotest.(check bool) "perfect pick is in band" true
    good.H.Validation.argmin_in_band;
  (* the model's favourite measures at 40% of the sweep's best *)
  let bad =
    H.Validation.analyze
      [
        mk_point ~talg:1.0 ~time_s:2.5 ~gflops:40.0;
        mk_point ~talg:2.0 ~time_s:1.0 ~gflops:100.0;
        mk_point ~talg:3.0 ~time_s:4.0 ~gflops:25.0;
      ]
  in
  Alcotest.(check (float 1e-9)) "mediocre pick" 0.4
    bad.H.Validation.argmin_quality;
  Alcotest.(check bool) "mediocre pick is out of band" false
    bad.H.Validation.argmin_in_band;
  (* just inside the default 20% band *)
  let edge =
    H.Validation.analyze
      [
        mk_point ~talg:1.0 ~time_s:1.25 ~gflops:80.0;
        mk_point ~talg:2.0 ~time_s:1.0 ~gflops:100.0;
      ]
  in
  Alcotest.(check (float 1e-9)) "edge pick" 0.8
    edge.H.Validation.argmin_quality;
  Alcotest.(check bool) "80% of best is in the 20% band" true
    edge.H.Validation.argmin_in_band;
  (* a wider band flips the verdict for the mediocre pick *)
  let wide =
    H.Validation.analyze ~top_within:0.65
      [
        mk_point ~talg:1.0 ~time_s:2.5 ~gflops:40.0;
        mk_point ~talg:2.0 ~time_s:1.0 ~gflops:100.0;
      ]
  in
  Alcotest.(check bool) "in band once the band is wide enough" true
    wide.H.Validation.argmin_in_band

let test_validation_metrics_shape () =
  let s =
    H.Validation.analyze
      [
        mk_point ~talg:1.0 ~time_s:1.0 ~gflops:100.0;
        mk_point ~talg:2.0 ~time_s:2.0 ~gflops:50.0;
      ]
  in
  let m = H.Validation.metrics s in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("metrics carry " ^ name) true
        (List.mem_assoc name m))
    [
      "points"; "rmse_all"; "top_points"; "rmse_top"; "correlation_top";
      "best_gflops"; "argmin_quality"; "argmin_in_band";
    ];
  Alcotest.(check (float 0.0)) "argmin_in_band encodes as 1.0" 1.0
    (List.assoc "argmin_in_band" m)

(* --- hexwatch: the accuracy gate --------------------------------------------- *)

let acc_summary ?(rmse_all = 0.5) ?(rmse_top = 0.08) ?(correlation_top = 0.9)
    ?(argmin_quality = 0.95) ?(argmin_in_band = true) () =
  {
    H.Validation.points = 850;
    rmse_all;
    top_points = 10;
    rmse_top;
    correlation_top;
    best_gflops = 100.0;
    argmin_quality;
    argmin_in_band;
  }

let acc ?(scale = H.Experiments.Ci) rows =
  {
    H.Accuracy.scale;
    code_version = "test-v1";
    rows =
      List.map
        (fun (experiment, summary) -> { H.Accuracy.experiment; summary })
        rows;
  }

let test_accuracy_json_roundtrip () =
  let t =
    acc
      [
        ("gtx980/heat2d", acc_summary ());
        ("titanx/heat3d", acc_summary ~argmin_in_band:false ~rmse_top:0.31 ());
      ]
  in
  match H.Accuracy.of_json (H.Accuracy.to_json t) with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
      Alcotest.(check int) "rows survive" 2 (List.length t'.H.Accuracy.rows);
      Alcotest.(check string) "code version" "test-v1"
        t'.H.Accuracy.code_version;
      let r' = List.nth t'.H.Accuracy.rows 1 in
      Alcotest.(check string) "experiment name" "titanx/heat3d"
        r'.H.Accuracy.experiment;
      Alcotest.(check (float 0.0)) "rmse_top bit-exact" 0.31
        r'.H.Accuracy.summary.H.Validation.rmse_top;
      Alcotest.(check bool) "in-band flag survives" false
        r'.H.Accuracy.summary.H.Validation.argmin_in_band

let test_accuracy_compare () =
  let baseline = acc [ ("e1", acc_summary ()); ("e2", acc_summary ()) ] in
  (* identical figures: clean *)
  Alcotest.(check int) "identical: no drift" 0
    (List.length (H.Accuracy.compare ~baseline baseline));
  (* improvements never drift *)
  let better =
    acc [ ("e1", acc_summary ~rmse_top:0.01 ~argmin_quality:1.0 ());
          ("e2", acc_summary ()) ]
  in
  Alcotest.(check int) "improvement: no drift" 0
    (List.length (H.Accuracy.compare ~baseline better));
  (* a top-band RMSE regression beyond tolerance drifts *)
  let worse = acc [ ("e1", acc_summary ~rmse_top:0.15 ()); ("e2", acc_summary ()) ] in
  (match H.Accuracy.compare ~baseline worse with
  | [ d ] ->
      Alcotest.(check string) "drifting metric" "rmse_top" d.H.Accuracy.d_metric;
      Alcotest.(check string) "drifting experiment" "e1" d.H.Accuracy.d_experiment
  | ds -> Alcotest.failf "expected 1 drift, got %d" (List.length ds));
  (* within tolerance: clean *)
  let slightly =
    acc [ ("e1", acc_summary ~rmse_top:0.09 ()); ("e2", acc_summary ()) ]
  in
  Alcotest.(check int) "within tolerance: no drift" 0
    (List.length (H.Accuracy.compare ~baseline slightly));
  (* a missing experiment drifts *)
  let missing = acc [ ("e1", acc_summary ()) ] in
  (match H.Accuracy.compare ~baseline missing with
  | [ d ] -> Alcotest.(check string) "missing experiment" "e2" d.H.Accuracy.d_experiment
  | ds -> Alcotest.failf "expected 1 drift, got %d" (List.length ds));
  (* falling out of the band drifts regardless of tolerance *)
  let out_of_band =
    acc
      [
        ("e1", acc_summary ~argmin_quality:0.92 ~argmin_in_band:false ());
        ("e2", acc_summary ());
      ]
  in
  Alcotest.(check bool) "band exit drifts" true
    (List.exists
       (fun (d : H.Accuracy.drift) -> d.H.Accuracy.d_metric = "argmin_in_band")
       (H.Accuracy.compare ~baseline out_of_band))

(* --- hexwatch: history rendering --------------------------------------------- *)

let test_history_render () =
  let entry kind metrics =
    Hextime_obs.Ledger.make ~metrics ~kind ~code_version:"test-v1" ()
  in
  let entries =
    [
      entry "validate" [ ("rmse_top", 0.0835); ("points_per_sec", 61234.0) ];
      entry "bench" [ ("cold_sweep_points_per_sec", 152345.0) ];
    ]
  in
  Alcotest.(check (list string))
    "columns filtered to those present"
    [ "rmse_top"; "points_per_sec"; "cold_sweep_points_per_sec" ]
    (H.History.columns_of H.History.default_columns entries);
  let table = H.History.render entries in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length table in
      let rec go i = i + n <= h && (String.sub table i n = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "table has %S" needle) true (go 0))
    [ "when"; "kind"; "validate"; "bench"; "8.3%"; "-" ];
  let md = H.History.markdown entries in
  Alcotest.(check bool) "markdown is a pipe table" true
    (String.length md > 0 && md.[0] = '|');
  match H.History.json entries with
  | Hextime_prelude.Minijson.List [ _; _ ] -> ()
  | _ -> Alcotest.fail "json renders one element per entry"

(* --- hexlens: history csv / --since ----------------------------------------- *)

module Ledger = Hextime_obs.Ledger

let stamped ?(kind = "validate") ?(labels = []) ?(metrics = []) ~time ~rev () =
  {
    (Ledger.make ~labels ~metrics ~kind ~code_version:"test-v1" ()) with
    Ledger.time_unix = time;
    git_rev = rev;
  }

let test_history_csv () =
  let entries =
    [
      stamped ~metrics:[ ("rmse_top", 0.5) ] ~time:0.0 ~rev:"abc1234" ();
      stamped ~kind:"bench"
        ~metrics:[ ("cold_sweep_points_per_sec", 152345.0625) ]
        ~time:90061.0 ~rev:"" ();
    ]
  in
  match String.split_on_char '\n' (String.trim (H.History.csv entries)) with
  | [ header; r1; r2 ] ->
      Alcotest.(check string)
        "header row" "when,kind,rev,code,rmse_top,cold_sweep_points_per_sec"
        header;
      (* ISO8601 full-second timestamps, raw (unscaled) numbers, empty
         cells for missing metrics *)
      Alcotest.(check string)
        "first row" "1970-01-01T00:00:00Z,validate,abc1234,test-v1,0.5," r1;
      Alcotest.(check string)
        "second row" "1970-01-02T01:01:01Z,bench,,test-v1,,152345.0625" r2
  | lines -> Alcotest.failf "expected 3 csv lines, got %d" (List.length lines)

let test_history_since () =
  let entries =
    [
      stamped ~time:100.0 ~rev:"aaaa111" ();
      stamped ~time:200.0 ~rev:"bbbb222" ();
      stamped ~time:1754000000.0 ~rev:"cccc333" ();
    ]
  in
  (* an ISO8601 date keeps entries stamped at or after it *)
  (match H.History.since "2025-01-01" entries with
  | Ok [ e ] ->
      Alcotest.(check string) "date spec keeps the recent entry" "cccc333"
        e.Ledger.git_rev
  | Ok es -> Alcotest.failf "date spec kept %d entries" (List.length es)
  | Error msg -> Alcotest.fail msg);
  (* the epoch date keeps everything *)
  (match H.History.since "1970-01-01" entries with
  | Ok es -> Alcotest.(check int) "epoch keeps all" 3 (List.length es)
  | Error msg -> Alcotest.fail msg);
  (* a git rev prefix keeps from its first entry onward *)
  (match H.History.since "bbbb" entries with
  | Ok es ->
      Alcotest.(check (list string))
        "rev spec keeps the tail" [ "bbbb222"; "cccc333" ]
        (List.map (fun (e : Ledger.entry) -> e.Ledger.git_rev) es)
  | Error msg -> Alcotest.fail msg);
  (* neither a date nor a known rev: an error, not silence *)
  match H.History.since "zzz" entries with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense --since spec accepted"

(* --- hexlens: attribution diffing (hextime explain) -------------------------- *)

module Model = Hextime_core.Model
module Config = Hextime_tiling.Config

(* The acceptance experiment: the same problem and tile priced under the
   production constants and under a copy with L (seconds per word of
   global traffic) doubled.  The explain diff must name the paper's
   global-memory term as the dominant mover, and its delta must equal the
   direct Model.attribution delta to 1e-9 relative. *)
let explain_problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:128

let explain_config =
  match Config.make ~t_t:8 ~t_s:[| 32; 32 |] ~threads:[| 256 |] with
  | Ok c -> c
  | Error msg -> failwith ("explain test config: " ^ msg)

let explain_entry params =
  let citer = H.Microbench.citer arch S.heat2d in
  match Model.attribution params ~citer explain_problem explain_config with
  | Error msg -> failwith ("explain test attribution: " ^ msg)
  | Ok (pr, comps) ->
      ( (pr, comps),
        Ledger.make
          ~labels:
            [
              ("arch", "gtx980");
              ("stencil", "heat2d");
              ("space", "512x512");
              ("time", "128");
              ("config", Config.id explain_config);
            ]
          ~metrics:(H.Explain.attribution_metrics pr comps)
          ~kind:"audit" ~code_version:"test-v1" () )

let perturbed_params () =
  let p = H.Microbench.params arch in
  Hextime_core.Params.of_microbenchmarks arch
    ~l_word:(2.0 *. p.Params.l_word)
    ~tau_sync:p.Params.tau_sync ~t_sync:p.Params.t_sync

let test_explain_dominant_term () =
  let (_, comps_a), entry_a = explain_entry (H.Microbench.params arch) in
  let (_, comps_b), entry_b = explain_entry (perturbed_params ()) in
  let deltas =
    H.Explain.diff
      ~a:(H.Explain.stored_components entry_a)
      ~b:(H.Explain.stored_components entry_b)
  in
  (match H.Explain.dominant deltas with
  | None -> Alcotest.fail "doubling L moved no term"
  | Some d ->
      Alcotest.(check string)
        "dominant term is the global-memory transfer" "global_mem" d.H.Explain.t_name;
      (* the diffed delta is exactly the Model.attribution delta *)
      let direct =
        (Hextime_obs.Attribution.to_list comps_b
        |> List.assoc "global_mem")
        -. (Hextime_obs.Attribution.to_list comps_a
           |> List.assoc "global_mem")
      in
      Alcotest.(check bool)
        (Printf.sprintf "delta matches Model.attribution to 1e-9 rel (%g vs %g)"
           d.H.Explain.t_delta direct)
        true
        (Float.abs (d.H.Explain.t_delta -. direct)
        <= 1e-9 *. Float.max (Float.abs direct) 1e-300));
  (* the report renders and names the term *)
  match H.Explain.render ~a:entry_a ~b:entry_b with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "report names the dominant term" true
        (contains "dominant term: global_mem" report)

let test_explain_recompute_verifies_stored () =
  (* an audit-style record carrying both stored attr.* metrics and full
     provenance labels: the recomputation must agree to 1e-9 *)
  let _, entry = explain_entry (H.Microbench.params arch) in
  Alcotest.(check bool) "record is eligible" true (H.Explain.eligible entry);
  (match H.Explain.verify entry with
  | None -> Alcotest.fail "verify found nothing to cross-check"
  | Some rel ->
      Alcotest.(check bool)
        (Printf.sprintf "stored vs recomputed max rel err %g <= 1e-9" rel)
        true (rel <= 1e-9));
  (* a record with labels only (no stored components) recomputes *)
  let labels_only =
    Ledger.make ~labels:entry.Ledger.labels ~kind:"audit"
      ~code_version:"test-v1" ()
  in
  Alcotest.(check bool) "labels-only record is eligible" true
    (H.Explain.eligible labels_only);
  (match H.Explain.recompute labels_only with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("labels-only recompute: " ^ msg));
  (* a bare record is not *)
  let bare = Ledger.make ~kind:"bench" ~code_version:"test-v1" () in
  Alcotest.(check bool) "bare record is not eligible" false
    (H.Explain.eligible bare)

let test_explain_decision_flips () =
  let entry m c k =
    Ledger.make
      ~labels:[ ("config", "tT8-tS32x32-thr256") ]
      ~metrics:
        [
          ("pred.m_transfer", m);
          ("pred.c_compute", c);
          ("pred.k", float_of_int k);
        ]
      ~kind:"audit" ~code_version:"test-v1" ()
  in
  (* memory-bound -> compute-bound plus a k change *)
  let flips =
    H.Explain.decision_flips ~a:(entry 2.0e-3 1.0e-3 4) ~b:(entry 1.0e-3 2.0e-3 5)
  in
  Alcotest.(check int) "two discrete decisions moved" 2 (List.length flips);
  let joined = String.concat "\n" flips in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "bound flip reported" true
    (contains "max(m', c) decision flipped" joined);
  Alcotest.(check bool) "k change reported" true (contains "k changed" joined);
  (* identical records: nothing discrete moved *)
  Alcotest.(check int) "no flips on identical records" 0
    (List.length
       (H.Explain.decision_flips ~a:(entry 2.0e-3 1.0e-3 4)
          ~b:(entry 2.0e-3 1.0e-3 4)))

let suite =
  [
    Alcotest.test_case "microbench ranges (Table 3)" `Quick test_microbench_ranges;
    Alcotest.test_case "microbench direction" `Quick test_microbench_direction;
    Alcotest.test_case "citer shape (Table 4)" `Quick test_citer_table4_shape;
    Alcotest.test_case "citer deterministic" `Quick test_citer_deterministic;
    Alcotest.test_case "experiment grids" `Quick test_experiment_grids;
    Alcotest.test_case "scale parsing" `Quick test_scale_parsing;
    Alcotest.test_case "sweep population" `Quick test_sweep_population;
    Alcotest.test_case "sweep limit" `Quick test_sweep_limit;
    Alcotest.test_case "sweep cache versioning" `Quick
      test_sweep_cache_versioning;
    Alcotest.test_case "top performing subset" `Quick test_top_performing;
    Alcotest.test_case "validation headline (Sec 5.3)" `Quick test_validation_headline;
    Alcotest.test_case "scatter (Fig 3)" `Quick test_scatter;
    Alcotest.test_case "tables render" `Quick test_tables_render;
    Alcotest.test_case "fig4 surface" `Quick test_fig4_surface;
    Alcotest.test_case "report markdown" `Slow test_report_markdown;
    Alcotest.test_case "argmin quality (hand-built sweeps)" `Quick
      test_argmin_quality;
    Alcotest.test_case "validation metrics shape" `Quick
      test_validation_metrics_shape;
    Alcotest.test_case "accuracy JSON round-trip" `Quick
      test_accuracy_json_roundtrip;
    Alcotest.test_case "accuracy compare gate" `Quick test_accuracy_compare;
    Alcotest.test_case "history render" `Quick test_history_render;
    Alcotest.test_case "history csv" `Quick test_history_csv;
    Alcotest.test_case "history --since selection" `Quick test_history_since;
    Alcotest.test_case "explain: perturbed L names global_mem" `Quick
      test_explain_dominant_term;
    Alcotest.test_case "explain: recompute cross-checks stored" `Quick
      test_explain_recompute_verifies_stored;
    Alcotest.test_case "explain: discrete decision flips" `Quick
      test_explain_decision_flips;
  ]
