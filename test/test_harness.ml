(* Harness: micro-benchmarks (Tables 3/4 protocol), experiment grids, the
   baseline sweep, and the validation analysis — end-to-end at CI scale.
   These tests assert the paper's qualitative claims, not absolute numbers. *)

module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module Params = Hextime_core.Params
module H = Hextime_harness
module Runner = Hextime_tileopt.Runner

let arch = Gpu.Arch.gtx980

let test_microbench_ranges () =
  let p = H.Microbench.params arch in
  (* L in the paper's Table 3 regime: a few milliseconds per GB *)
  let l_gb = Params.l_per_gb p in
  Alcotest.(check bool)
    (Printf.sprintf "L = %.2e s/GB plausible" l_gb)
    true
    (l_gb > 1e-3 && l_gb < 5e-2);
  (* tau_sync around a nanosecond; T_sync around a microsecond *)
  Alcotest.(check bool) "tau_sync range" true
    (p.Params.tau_sync > 1e-10 && p.Params.tau_sync < 1e-8);
  Alcotest.(check bool) "T_sync range" true
    (p.Params.t_sync > 1e-7 && p.Params.t_sync < 1e-5)

let test_microbench_direction () =
  (* Titan X has more bandwidth: its L must be lower (Table 3) *)
  let g = H.Microbench.params Gpu.Arch.gtx980 in
  let t = H.Microbench.params Gpu.Arch.titanx in
  Alcotest.(check bool) "L(titanx) < L(gtx980)" true
    (t.Params.l_word < g.Params.l_word)

let test_citer_table4_shape () =
  let c st = H.Microbench.citer arch st in
  (* 2D first-order stencils: tens of nanoseconds *)
  Alcotest.(check bool) "jacobi2d range" true
    (c S.jacobi2d > 1e-8 && c S.jacobi2d < 1e-7);
  (* gradient's sqrt makes it markedly more expensive (Table 4: ~1.8x) *)
  Alcotest.(check bool) "gradient > 1.4x jacobi" true
    (c S.gradient2d > 1.4 *. c S.jacobi2d);
  (* 3D stencils are several times more expensive (Table 4: ~4x) *)
  Alcotest.(check bool) "heat3d >> heat2d" true
    (c S.heat3d > 2.5 *. c S.heat2d);
  (* Titan X's lower clock: slightly larger C_iter (Table 4) *)
  Alcotest.(check bool) "titanx citer larger" true
    (H.Microbench.citer Gpu.Arch.titanx S.jacobi2d > c S.jacobi2d)

let test_citer_deterministic () =
  let a = H.Microbench.citer arch S.laplacian2d in
  let b = H.Microbench.citer arch S.laplacian2d in
  Alcotest.(check (float 0.0)) "memoized and deterministic" a b

let test_experiment_grids () =
  Alcotest.(check int) "paper 2D experiments" 80
    (List.length (H.Experiments.all_2d H.Experiments.Paper));
  Alcotest.(check int) "paper 3D experiments" 48
    (List.length (H.Experiments.all_3d H.Experiments.Paper));
  Alcotest.(check int) "paper total" 128
    (List.length (H.Experiments.all H.Experiments.Paper));
  Alcotest.(check bool) "ci is small" true
    (List.length (H.Experiments.all H.Experiments.Ci) <= 16)

let test_scale_parsing () =
  (match H.Experiments.scale_of_string "paper" with
  | Ok H.Experiments.Paper -> ()
  | _ -> Alcotest.fail "paper scale");
  (match H.Experiments.scale_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus scale accepted");
  Alcotest.(check string) "roundtrip" "quick"
    (H.Experiments.scale_to_string H.Experiments.Quick)

let experiment =
  {
    H.Experiments.arch;
    problem = P.make S.heat2d ~space:[| 2048; 2048 |] ~time:512;
  }

let sweep = (H.Sweep.baseline experiment).H.Sweep.points

let test_sweep_population () =
  (* most of the 850 configurations both predict and simulate *)
  Alcotest.(check bool)
    (Printf.sprintf "%d points survive" (List.length sweep))
    true
    (List.length sweep > 700)

let test_sweep_limit () =
  let limited = (H.Sweep.baseline ~limit:50 experiment).H.Sweep.points in
  Alcotest.(check bool) "limit respected" true (List.length limited <= 50)

let test_sweep_cache_versioning () =
  (* the priced-kernel refactor changed what a cached point means, so the
     key namespace was bumped: v2 entries must miss, not resurface *)
  Alcotest.(check string) "namespace" "hextime-sweep-v3" H.Sweep.code_version;
  let module Parsweep = Hextime_parsweep.Parsweep in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hextime-test-cache-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  let cache = Parsweep.Cache.create ~dir () in
  let exec = { Parsweep.serial with Parsweep.cache = Some cache } in
  let e =
    { H.Experiments.arch; problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:128 }
  in
  (* cold run: populates the cache and prices kernels *)
  let inv0 = Gpu.Simulator.invocations () in
  let s1, st1 = H.Sweep.run ~limit:30 ~exec e in
  Alcotest.(check bool) "cold run prices" true
    (Gpu.Simulator.invocations () > inv0);
  Alcotest.(check int) "cold run misses" 0 st1.Parsweep.cache_hits;
  Alcotest.(check bool) "cold run writes" true
    (Parsweep.Cache.writes cache > 0);
  (* nothing was written under the old namespace: a v2-format key for a
     surviving config must be absent from the populated cache *)
  let cfg = (List.hd s1.H.Sweep.points).H.Sweep.config in
  let old_key =
    Printf.sprintf "point|hextime-sweep-v2|%s|%s" (H.Experiments.id e)
      (Hextime_tiling.Config.id cfg)
  in
  (match (Parsweep.Cache.get cache ~key:old_key : string option) with
  | None -> ()
  | Some _ -> Alcotest.fail "sweep still populates the v2 namespace");
  (* warm run: every point is answered from the cache without touching the
     simulator at all *)
  let inv1 = Gpu.Simulator.invocations () in
  let s2, st2 = H.Sweep.run ~limit:30 ~exec e in
  Alcotest.(check int) "warm run never prices" 0
    (Gpu.Simulator.invocations () - inv1);
  Alcotest.(check int) "warm run all hits" st2.Parsweep.total
    st2.Parsweep.cache_hits;
  Alcotest.(check int) "same survivors"
    (List.length s1.H.Sweep.points)
    (List.length s2.H.Sweep.points)

let test_top_performing () =
  let top = H.Sweep.top_performing ~within:0.2 sweep in
  let best = H.Sweep.best_gflops sweep in
  Alcotest.(check bool) "top subset non-empty" true (List.length top > 0);
  Alcotest.(check bool) "top is a subset" true
    (List.length top <= List.length sweep);
  List.iter
    (fun (p : H.Sweep.point) ->
      Alcotest.(check bool) "within 20% of best" true
        (p.measured.Runner.gflops >= 0.8 *. best))
    top

let test_validation_headline () =
  (* the paper's signature: poor RMSE overall, good RMSE in the top band *)
  let s = H.Validation.analyze sweep in
  Alcotest.(check bool)
    (Printf.sprintf "RMSE(all) = %.0f%% is large" (100.0 *. s.H.Validation.rmse_all))
    true
    (s.H.Validation.rmse_all > 0.25);
  Alcotest.(check bool)
    (Printf.sprintf "RMSE(top) = %.1f%% is small" (100.0 *. s.H.Validation.rmse_top))
    true
    (s.H.Validation.rmse_top < 0.20);
  Alcotest.(check bool) "top band much better than whole" true
    (s.H.Validation.rmse_top < 0.5 *. s.H.Validation.rmse_all)

let test_scatter () =
  let sc = H.Validation.scatter sweep in
  Alcotest.(check int) "one pair per point" (List.length sweep) (List.length sc);
  List.iter
    (fun (p, m) ->
      Alcotest.(check bool) "positive coordinates" true (p > 0.0 && m > 0.0))
    sc

let test_tables_render () =
  let t2 = Hextime_prelude.Tabulate.render (H.Tables.table2 ()) in
  Alcotest.(check bool) "table2 mentions nSM" true
    (String.length t2 > 0
    && List.exists
         (fun line -> String.length line >= 6 && String.sub line 0 6 = "| nSM ")
         (String.split_on_char '\n' t2));
  let data = H.Tables.table3_data () in
  Alcotest.(check int) "table3 covers both archs" 2 (List.length data);
  let t4 = H.Tables.table4_data () in
  Alcotest.(check int) "table4 covers six benchmarks" 6 (List.length t4)

let test_fig4_surface () =
  (* CI-sized surface: same code path as the paper-sized figure *)
  let f = H.Figures.fig4_data ~space:[| 512; 512 |] ~time:256 () in
  Alcotest.(check int) "slice at tS1 = 8" 8 f.H.Figures.t_s1;
  Alcotest.(check bool) "surface populated" true (List.length f.H.Figures.cells > 50);
  let _, _, minv = f.H.Figures.minimum in
  List.iter
    (fun (_, _, v) ->
      Alcotest.(check bool) "minimum is minimal" true (v >= minv))
    f.H.Figures.cells

let test_report_markdown () =
  let md = H.Report.markdown H.Experiments.Ci in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length md in
      let rec go i = i + n <= h && (String.sub md i n = needle || go (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "report has %S" needle) true (go 0))
    [
      "# hextime reproduction report";
      "## Table 3";
      "## Table 4";
      "## Figure 3";
      "## Figure 5";
      "## Figure 6";
      "7.36e-03";
    ]

let suite =
  [
    Alcotest.test_case "microbench ranges (Table 3)" `Quick test_microbench_ranges;
    Alcotest.test_case "microbench direction" `Quick test_microbench_direction;
    Alcotest.test_case "citer shape (Table 4)" `Quick test_citer_table4_shape;
    Alcotest.test_case "citer deterministic" `Quick test_citer_deterministic;
    Alcotest.test_case "experiment grids" `Quick test_experiment_grids;
    Alcotest.test_case "scale parsing" `Quick test_scale_parsing;
    Alcotest.test_case "sweep population" `Quick test_sweep_population;
    Alcotest.test_case "sweep limit" `Quick test_sweep_limit;
    Alcotest.test_case "sweep cache versioning" `Quick
      test_sweep_cache_versioning;
    Alcotest.test_case "top performing subset" `Quick test_top_performing;
    Alcotest.test_case "validation headline (Sec 5.3)" `Quick test_validation_headline;
    Alcotest.test_case "scatter (Fig 3)" `Quick test_scatter;
    Alcotest.test_case "tables render" `Quick test_tables_render;
    Alcotest.test_case "fig4 surface" `Quick test_fig4_surface;
    Alcotest.test_case "report markdown" `Slow test_report_markdown;
  ]
