(* Grid storage and accessors. *)

module Grid = Hextime_stencil.Grid

let test_create_dims () =
  let g = Grid.create [| 3; 4 |] in
  Alcotest.(check (array int)) "dims" [| 3; 4 |] (Grid.dims g);
  Alcotest.(check int) "rank" 2 (Grid.rank g);
  Alcotest.(check int) "size" 12 (Grid.size g);
  Alcotest.(check (float 0.0)) "zero init" 0.0 (Grid.get2 g 1 2)

let test_create_invalid () =
  Alcotest.check_raises "rank 0" (Invalid_argument "Grid.create: rank must be 1..3")
    (fun () -> ignore (Grid.create [||]));
  Alcotest.check_raises "rank 4" (Invalid_argument "Grid.create: rank must be 1..3")
    (fun () -> ignore (Grid.create [| 1; 1; 1; 1 |]));
  Alcotest.check_raises "zero extent"
    (Invalid_argument "Grid.create: non-positive extent") (fun () ->
      ignore (Grid.create [| 3; 0 |]))

let test_get_set_roundtrip () =
  let g = Grid.create [| 2; 3; 4 |] in
  Grid.set3 g 1 2 3 7.5;
  Alcotest.(check (float 0.0)) "set3/get3" 7.5 (Grid.get3 g 1 2 3);
  Grid.set g [| 0; 1; 2 |] (-1.0);
  Alcotest.(check (float 0.0)) "set/get array" (-1.0) (Grid.get g [| 0; 1; 2 |]);
  Alcotest.(check (float 0.0)) "distinct cells" 7.5 (Grid.get g [| 1; 2; 3 |])

let test_bounds_checked () =
  let g = Grid.create [| 4 |] in
  Alcotest.check_raises "oob get" (Invalid_argument "Grid: index out of bounds")
    (fun () -> ignore (Grid.get g [| 4 |]));
  let g2 = Grid.create [| 2; 2 |] in
  Alcotest.check_raises "oob get2" (Invalid_argument "Grid.get2: out of bounds")
    (fun () -> ignore (Grid.get2 g2 2 0))

let test_rank_guard () =
  let g = Grid.create [| 2; 2 |] in
  Alcotest.check_raises "get1 on 2D" (Invalid_argument "Grid.get1: grid has rank 2")
    (fun () -> ignore (Grid.get1 g 0))

let test_row_major_layout () =
  (* get2 must agree with the flat layout: last dimension contiguous *)
  let g = Grid.create [| 2; 3 |] in
  Grid.fill g (fun idx -> float_of_int ((idx.(0) * 10) + idx.(1)));
  let data = Grid.unsafe_data g in
  Alcotest.(check (float 0.0)) "flat order" 12.0 data.(5);
  Alcotest.(check (float 0.0)) "accessor" 12.0 (Grid.get2 g 1 2)

let test_copy_blit () =
  let a = Grid.create [| 3 |] in
  Grid.set1 a 0 1.0;
  let b = Grid.copy a in
  Grid.set1 a 0 2.0;
  Alcotest.(check (float 0.0)) "copy is deep" 1.0 (Grid.get1 b 0);
  Grid.blit ~src:a ~dst:b;
  Alcotest.(check (float 0.0)) "blit" 2.0 (Grid.get1 b 0)

let test_map2_diff_equal () =
  let a = Grid.create [| 2; 2 |] and b = Grid.create [| 2; 2 |] in
  Grid.set2 a 0 0 1.0;
  Grid.set2 b 0 0 1.5;
  let s = Grid.map2 ( +. ) a b in
  Alcotest.(check (float 0.0)) "map2" 2.5 (Grid.get2 s 0 0);
  Alcotest.(check (float 1e-12)) "max diff" 0.5 (Grid.max_abs_diff a b);
  Alcotest.(check bool) "not equal" false (Grid.equal a b);
  Alcotest.(check bool) "equal with eps" true (Grid.equal ~eps:0.6 a b);
  let c = Grid.create [| 3 |] in
  Alcotest.check_raises "extent mismatch"
    (Invalid_argument "Grid.max_abs_diff: extent mismatch") (fun () ->
      ignore (Grid.max_abs_diff a c))

let prop_fill_get =
  QCheck.Test.make ~name:"fill then get returns filled value" ~count:100
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 1 6))
    (fun (n0, n1, n2) ->
      let g = Grid.create [| n0; n1; n2 |] in
      Grid.fill g (fun idx ->
          float_of_int ((idx.(0) * 100) + (idx.(1) * 10) + idx.(2)));
      let ok = ref true in
      for i = 0 to n0 - 1 do
        for j = 0 to n1 - 1 do
          for k = 0 to n2 - 1 do
            if Grid.get3 g i j k <> float_of_int ((i * 100) + (j * 10) + k)
            then ok := false
          done
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "create/dims" `Quick test_create_dims;
    Alcotest.test_case "create invalid" `Quick test_create_invalid;
    Alcotest.test_case "get/set roundtrip" `Quick test_get_set_roundtrip;
    Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
    Alcotest.test_case "rank guard" `Quick test_rank_guard;
    Alcotest.test_case "row-major layout" `Quick test_row_major_layout;
    Alcotest.test_case "copy/blit" `Quick test_copy_blit;
    Alcotest.test_case "map2/diff/equal" `Quick test_map2_diff_equal;
    QCheck_alcotest.to_alcotest prop_fill_get;
  ]
