(* Hexagonal lattice geometry: closed-form quantities against the paper's
   equations, and exact-coverage properties of the lattice. *)

module H = Hextime_tiling.Hexgeom
module E = Hextime_tiling.Exec_cpu

let test_paper_formulas_order1 () =
  (* Equation 4: wtile = tS + tT - 2 *)
  Alcotest.(check int) "wtile" (24 + 8 - 2) (H.width_of_tile ~order:1 ~t_s:24 ~t_t:8);
  (* Equation 5 pitch: 2 tS + tT *)
  Alcotest.(check int) "pitch" ((2 * 24) + 8) (H.pitch ~order:1 ~t_s:24 ~t_t:8);
  (* Equation 3: Nw = 2 ceil(T/tT) *)
  Alcotest.(check int) "Nw exact" 8 (H.num_wavefronts ~t_t:4 ~time:16);
  Alcotest.(check int) "Nw ragged" 10 (H.num_wavefronts ~t_t:4 ~time:17);
  (* Equation 5: w = ceil(S / pitch) *)
  Alcotest.(check int) "w" 147 (H.wavefront_width ~order:1 ~t_s:24 ~t_t:8 ~space:8192)

let test_row_widths () =
  (* widths are tS, tS+2, ..., wtile each twice (Equation 9's sum) *)
  Alcotest.(check (list int)) "tT=6"
    [ 4; 6; 8; 8; 6; 4 ]
    (H.row_widths ~order:1 ~t_s:4 ~t_t:6);
  Alcotest.(check (list int)) "order 2"
    [ 4; 8; 8; 4 ]
    (H.row_widths ~order:2 ~t_s:4 ~t_t:4);
  Alcotest.(check int) "count is tT" 12
    (List.length (H.row_widths ~order:1 ~t_s:3 ~t_t:12))

let test_rows_shape () =
  let rows = H.rows ~order:1 ~t_s:4 ~t_t:4 { H.family = H.Green; band = 0; index = 0 } in
  Alcotest.(check int) "row count" 4 (List.length rows);
  (* bottom row: time 1, width 4 anchored at 0 *)
  (match rows with
  | (t, lo, hi) :: _ ->
      Alcotest.(check int) "t" 1 t;
      Alcotest.(check int) "lo" 0 lo;
      Alcotest.(check int) "hi" 3 hi
  | [] -> Alcotest.fail "no rows");
  (* widths match row_widths *)
  let widths = List.map (fun (_, lo, hi) -> hi - lo + 1) rows in
  Alcotest.(check (list int)) "widths" (H.row_widths ~order:1 ~t_s:4 ~t_t:4) widths

let test_yellow_offset () =
  let rows = H.rows ~order:1 ~t_s:4 ~t_t:4 { H.family = H.Yellow; band = 1; index = 0 } in
  (match rows with
  | (t, lo, hi) :: _ ->
      (* yellow band 1 starts half a band lower: t = tT - tT/2 + 1 = 3 *)
      Alcotest.(check int) "t" 3 t;
      (* base is 2*order wider than green's *)
      Alcotest.(check int) "base width" 6 (hi - lo + 1)
  | [] -> Alcotest.fail "no rows")

let test_clipping () =
  let tile = { H.family = H.Green; band = 0; index = 0 } in
  let rows = H.rows_clipped ~order:1 ~t_s:4 ~t_t:8 ~space:6 ~time:3 tile in
  List.iter
    (fun (t, lo, hi) ->
      Alcotest.(check bool) "t in domain" true (t >= 1 && t <= 3);
      Alcotest.(check bool) "s in domain" true (lo >= 0 && hi < 6 && lo <= hi))
    rows;
  Alcotest.(check int) "only 3 time levels" 3 (List.length rows)

let test_wavefront_order () =
  (* yellow(a) precedes green(a); tiles within a wavefront share the family *)
  let wfs = H.wavefronts ~order:1 ~t_s:4 ~t_t:4 ~space:40 ~time:12 in
  Alcotest.(check bool) "nonempty" true (List.length wfs > 0);
  List.iter
    (fun wf ->
      match wf with
      | [] -> Alcotest.fail "empty wavefront"
      | first :: rest ->
          List.iter
            (fun (tile : H.tile) ->
              Alcotest.(check bool) "uniform family" true
                (tile.family = first.H.family))
            rest)
    wfs

let test_coverage_exact_cases () =
  List.iter
    (fun (o, ts, tt, sp, tm) ->
      match E.coverage_check ~order:o ~t_s:ts ~t_t:tt ~space:sp ~time:tm with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "coverage o=%d ts=%d tt=%d S=%d T=%d: %s" o ts tt sp
            tm e)
    [
      (1, 3, 4, 40, 10);
      (1, 1, 2, 17, 5);
      (1, 8, 6, 100, 23);
      (2, 5, 4, 60, 9);
      (1, 4, 8, 33, 16);
      (2, 2, 2, 25, 7);
      (1, 32, 2, 64, 3);
      (3, 4, 4, 50, 8);
    ]

let prop_coverage =
  QCheck.Test.make ~name:"lattice partitions the iteration domain" ~count:60
    QCheck.(
      quad (int_range 1 2) (int_range 1 9)
        (int_range 1 5 (* tT half *))
        (pair (int_range 5 60) (int_range 1 14)))
    (fun (order, t_s, tth, (space, time)) ->
      let t_t = 2 * tth in
      match E.coverage_check ~order ~t_s ~t_t ~space ~time with
      | Ok () -> true
      | Error _ -> false)

let test_validation_errors () =
  Alcotest.check_raises "odd tT"
    (Invalid_argument "Hexgeom: t_t must be even and >= 2") (fun () ->
      ignore (H.width_of_tile ~order:1 ~t_s:4 ~t_t:3));
  Alcotest.check_raises "bad order"
    (Invalid_argument "Hexgeom: order must be >= 1") (fun () ->
      ignore (H.pitch ~order:0 ~t_s:4 ~t_t:4))

let suite =
  [
    Alcotest.test_case "paper formulas (order 1)" `Quick test_paper_formulas_order1;
    Alcotest.test_case "row widths" `Quick test_row_widths;
    Alcotest.test_case "rows shape" `Quick test_rows_shape;
    Alcotest.test_case "yellow offset" `Quick test_yellow_offset;
    Alcotest.test_case "clipping" `Quick test_clipping;
    Alcotest.test_case "wavefront order" `Quick test_wavefront_order;
    Alcotest.test_case "coverage exact cases" `Quick test_coverage_exact_cases;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    QCheck_alcotest.to_alcotest prop_coverage;
  ]
