(* The GPU simulator substrate: architecture presets, occupancy, memory
   timing, compute timing, kernels and the simulator's two paths. *)

module Gpu = Hextime_gpu
module Arch = Gpu.Arch
module Occ = Gpu.Occupancy
module Mem = Gpu.Memory
module Cmp = Gpu.Compute
module W = Gpu.Workload
module K = Gpu.Kernel
module Sim = Gpu.Simulator

let arch = Arch.gtx980

let test_presets () =
  (* Table 2 *)
  Alcotest.(check int) "gtx980 SMs" 16 Arch.gtx980.Arch.n_sm;
  Alcotest.(check int) "titanx SMs" 24 Arch.titanx.Arch.n_sm;
  Alcotest.(check int) "nV" 128 Arch.gtx980.Arch.n_vector;
  Alcotest.(check int) "MSM words (96KB)" 24576 Arch.gtx980.Arch.shared_mem_per_sm;
  Alcotest.(check int) "RSM" 65536 Arch.gtx980.Arch.registers_per_sm;
  Alcotest.(check int) "banks" 32 Arch.gtx980.Arch.shared_banks;
  Alcotest.(check int) "MTBSM" 32 Arch.gtx980.Arch.max_blocks_per_sm;
  Alcotest.(check string) "find" "titanx" (Arch.find "titanx").Arch.name;
  Alcotest.check_raises "unknown arch" Not_found (fun () ->
      ignore (Arch.find "volta"))

let test_arch_derived () =
  let c = Arch.cycle_s arch in
  Alcotest.(check bool) "cycle ~0.89ns" true (c > 8.8e-10 && c < 9.0e-10);
  let w = Arch.word_transfer_s arch in
  (* 4 bytes at 60% of 224 GB/s *)
  Alcotest.(check bool) "word cost" true (w > 2.9e-11 && w < 3.1e-11)

let test_pointcost () =
  let b2 = { Gpu.Pointcost.flops = 9; loads = 5; transcendentals = 0; rank = 2; double = false } in
  let b3 = { b2 with Gpu.Pointcost.rank = 3 } in
  Alcotest.(check bool) "3D addressing dominates" true
    (Gpu.Pointcost.cycles b3 > Gpu.Pointcost.cycles b2 +. 90.0);
  let grad = { Gpu.Pointcost.flops = 16; loads = 4; transcendentals = 1; rank = 2; double = false } in
  Alcotest.(check bool) "transcendental costs extra" true
    (Gpu.Pointcost.cycles grad > Gpu.Pointcost.cycles b2);
  Alcotest.check_raises "negative flops rejected"
    (Invalid_argument "Pointcost.cycles: negative operation count") (fun () ->
      ignore (Gpu.Pointcost.cycles { b2 with Gpu.Pointcost.flops = -1 }))

let occ_req threads shared regs =
  { Occ.threads; shared_words = shared; regs_per_thread = regs }

let test_occupancy_limits () =
  (* shared-memory limited: 48KB block -> 2 per SM *)
  let r = Occ.calculate arch (occ_req 256 12288 32) in
  Alcotest.(check int) "smem k=2" 2 r.Occ.blocks_per_sm;
  Alcotest.(check bool) "limited by smem" true (r.Occ.limiting = Occ.Shared_memory);
  (* thread limited: 1024 threads -> 2 per SM *)
  let r = Occ.calculate arch (occ_req 1024 128 32) in
  Alcotest.(check int) "thread k=2" 2 r.Occ.blocks_per_sm;
  Alcotest.(check bool) "limited by threads" true (r.Occ.limiting = Occ.Threads);
  (* register limited: 128 regs x 512 threads = 64k *)
  let r = Occ.calculate arch (occ_req 512 128 128) in
  Alcotest.(check int) "regs k=1" 1 r.Occ.blocks_per_sm;
  Alcotest.(check bool) "limited by regs" true (r.Occ.limiting = Occ.Registers);
  (* block-slot limited *)
  let r = Occ.calculate arch (occ_req 32 16 8) in
  Alcotest.(check int) "slots k=32" 32 r.Occ.blocks_per_sm

let test_occupancy_infeasible_and_spill () =
  let r = Occ.calculate arch (occ_req 2048 128 16) in
  Alcotest.(check int) "too many threads" 0 r.Occ.blocks_per_sm;
  let r = Occ.calculate arch (occ_req 256 20000 16) in
  Alcotest.(check int) "block exceeds 48KB" 0 r.Occ.blocks_per_sm;
  let r = Occ.calculate arch (occ_req 128 128 300) in
  Alcotest.(check int) "spill beyond cap" 45 r.Occ.regs_spilled_per_thread;
  Alcotest.(check bool) "still schedulable" true (r.Occ.blocks_per_sm >= 1)

let test_memory_coalescing () =
  Alcotest.(check (float 1e-9)) "warp multiple is perfect" 1.0
    (Mem.coalescing_factor arch ~run_length:64);
  Alcotest.(check bool) "short runs waste" true
    (Mem.coalescing_factor arch ~run_length:4 > 2.0);
  Alcotest.(check bool) "ragged tail" true
    (Mem.coalescing_factor arch ~run_length:48 > 1.0)

let test_memory_transfer () =
  let t words = Mem.block_transfer_s arch ~concurrent_blocks:1 { Mem.words; run_length = 64 } in
  Alcotest.(check (float 0.0)) "zero words free" 0.0 (t 0);
  Alcotest.(check bool) "latency floor" true (t 1 > 2.5e-7);
  (* doubling large transfers roughly doubles the streaming part *)
  let big = t 100_000 and huge = t 200_000 in
  Alcotest.(check bool) "linear in words" true
    (huge /. big > 1.9 && huge /. big < 2.1);
  Alcotest.(check bool) "congestion slows" true
    (Mem.block_transfer_s arch ~concurrent_blocks:4 { Mem.words = 1000; run_length = 64 }
     > t 1000)

let body = { Gpu.Pointcost.flops = 9; loads = 5; transcendentals = 0; rank = 2; double = false }

let workload ?(threads = 256) ?(shared = 4000) ?(regs = 32) ?(chunks = 4)
    ?(io = 2048) ?(rows = [ { W.points = 1024; repeats = 4 } ]) () =
  W.v ~label:"test" ~threads ~shared_words:shared ~regs_per_thread:regs ~body
    ~rows
    ~input:{ Mem.words = io; run_length = 64 }
    ~output:{ Mem.words = io; run_length = 64 }
    ~row_stride:73 ~chunks

let test_smem_conflicts () =
  Alcotest.(check (float 1e-9)) "odd stride conflict-free" 1.0
    (Gpu.Smem.conflict_factor arch ~row_stride:65);
  Alcotest.(check bool) "bank-multiple stride conflicts" true
    (Gpu.Smem.conflict_factor arch ~row_stride:64 > 1.0);
  Alcotest.(check bool) "degree grows with gcd" true
    (Gpu.Smem.conflict_factor arch ~row_stride:32
    > Gpu.Smem.conflict_factor arch ~row_stride:16);
  Alcotest.check_raises "bad stride"
    (Invalid_argument "Smem.conflict_factor: stride <= 0") (fun () ->
      ignore (Gpu.Smem.conflict_factor arch ~row_stride:0))

let test_workload_accessors () =
  let w = workload () in
  Alcotest.(check int) "points per chunk" 4096 (W.points_per_chunk w);
  Alcotest.(check int) "total points" 16384 (W.total_points w);
  Alcotest.(check int) "row count" 4 (W.row_count w);
  let req = W.occupancy_request w in
  Alcotest.(check int) "request threads" 256 req.Occ.threads

let test_workload_validation () =
  Alcotest.check_raises "no rows" (Invalid_argument "Workload.v: no rows")
    (fun () -> ignore (workload ~rows:[] ()))

let test_compute_lane_iterations () =
  Alcotest.(check int) "full block" 8
    (Cmp.lane_iterations arch ~threads:256 ~points:1024);
  (* a 64-thread block can only use 64 lanes *)
  Alcotest.(check int) "narrow block" 16
    (Cmp.lane_iterations arch ~threads:64 ~points:1024);
  Alcotest.(check int) "tiny row still one round" 1
    (Cmp.lane_iterations arch ~threads:256 ~points:3)

let test_compute_penalties () =
  Alcotest.(check (float 1e-9)) "8 warps hide fully" 1.0
    (Cmp.latency_hiding_factor arch ~threads:256);
  Alcotest.(check bool) "few warps stall" true
    (Cmp.latency_hiding_factor arch ~threads:64 > 1.0);
  (* resident blocks absorb barrier drain: k=4 rows cost less than k=1 *)
  let w = workload () in
  let r1 = Cmp.row_seconds arch w ~spilled_regs:0 ~resident:1 ~points:1024 in
  let r4 = Cmp.row_seconds arch w ~spilled_regs:0 ~resident:4 ~points:1024 in
  Alcotest.(check bool) "drain amortised" true (r4 < r1);
  (* spills add cost *)
  let s = Cmp.row_seconds arch w ~spilled_regs:16 ~resident:1 ~points:1024 in
  Alcotest.(check bool) "spills slow" true (s > r1)

let test_kernel_accessors () =
  let w = workload () in
  let k = K.v ~label:"k" ~blocks:[ (w, 10) ] in
  Alcotest.(check int) "blocks" 10 (K.total_blocks k);
  Alcotest.(check int) "points" (10 * 16384) (K.total_points k);
  Alcotest.check_raises "empty kernel" (Invalid_argument "Kernel.v: no blocks")
    (fun () -> ignore (K.v ~label:"e" ~blocks:[]))

let run_ok r =
  match r with Ok x -> x | Error e -> Alcotest.failf "simulator error: %s" e

let test_simulator_basics () =
  let w = workload () in
  let k = K.v ~label:"k" ~blocks:[ (w, 64) ] in
  let st = run_ok (Sim.run_kernel ~jitter:false arch k) in
  Alcotest.(check bool) "positive time" true (st.Sim.time_s > 0.0);
  Alcotest.(check int) "blocks" 64 st.Sim.blocks;
  Alcotest.(check bool) "k >= 1" true (st.Sim.resident_blocks >= 1);
  (* more blocks, more time *)
  let k2 = K.v ~label:"k" ~blocks:[ (w, 128) ] in
  let st2 = run_ok (Sim.run_kernel ~jitter:false arch k2) in
  Alcotest.(check bool) "monotone in blocks" true (st2.Sim.time_s > st.Sim.time_s)

let test_simulator_infeasible () =
  let w = workload ~threads:2048 () in
  let k = K.v ~label:"k" ~blocks:[ (w, 4) ] in
  match Sim.run_kernel arch k with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "infeasible kernel accepted"

let test_simulator_determinism () =
  let w = workload () in
  let k = K.v ~label:"det" ~blocks:[ (w, 64) ] in
  let a = run_ok (Sim.run_kernel arch k) in
  let b = run_ok (Sim.run_kernel arch k) in
  Alcotest.(check (float 0.0)) "same jittered time" a.Sim.time_s b.Sim.time_s

let test_exact_matches_fast () =
  (* on uniform blocks the closed form and the list scheduler agree *)
  List.iter
    (fun blocks ->
      let w = workload () in
      let k = K.v ~label:"x" ~blocks:[ (w, blocks) ] in
      let fast = run_ok (Sim.run_kernel ~jitter:false arch k) in
      let exact = run_ok (Sim.run_kernel_exact ~jitter:false arch k) in
      let ratio = fast.Sim.time_s /. exact.Sim.time_s in
      Alcotest.(check bool)
        (Printf.sprintf "blocks=%d ratio %.3f in [0.8, 1.35]" blocks ratio)
        true
        (ratio > 0.8 && ratio < 1.35))
    [ 16; 32; 64; 100; 256 ]

let test_run_sequence () =
  let w = workload () in
  let k = K.v ~label:"s" ~blocks:[ (w, 32) ] in
  let one = run_ok (Sim.run_sequence ~jitter:false arch [ (k, 1) ]) in
  let ten = run_ok (Sim.run_sequence ~jitter:false arch [ (k, 10) ]) in
  Alcotest.(check (float 1e-12)) "repeats scale linearly"
    (10.0 *. one.Sim.total_s) ten.Sim.total_s;
  Alcotest.(check int) "launches" 10 ten.Sim.kernel_launches;
  match Sim.run_sequence arch [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty sequence accepted"

let test_measure_min_of_runs () =
  let w = workload () in
  let k = K.v ~label:"m" ~blocks:[ (w, 32) ] in
  let m = run_ok (Sim.measure ~runs:5 arch [ (k, 4) ]) in
  let nojitter = run_ok (Sim.run_sequence ~jitter:false arch [ (k, 4) ]) in
  (* min of jittered runs sits within the jitter amplitude of the clean time *)
  Alcotest.(check bool) "within jitter band" true
    (m > nojitter.Sim.total_s *. 0.97 && m < nojitter.Sim.total_s *. 1.03);
  let single = run_ok (Sim.measure ~runs:1 arch [ (k, 4) ]) in
  Alcotest.(check bool) "min over more runs is <=" true (m <= single)

let test_hyperthreading_overlap () =
  (* with k = 2 resident, IO overlaps compute: time < serial sum *)
  let w = workload ~shared:12288 ~io:20000 () in
  let k = K.v ~label:"ht" ~blocks:[ (w, 32) ] in
  let st = run_ok (Sim.run_kernel ~jitter:false arch k) in
  Alcotest.(check int) "k=2" 2 st.Sim.resident_blocks;
  let io, comp =
    Sim.block_cost arch ~resident:2 w ~spilled_regs:0
  in
  let serial = 2.0 *. 4.0 *. (io +. comp) (* 2 blocks/SM x 4 chunks *) in
  Alcotest.(check bool) "overlap beats serial" true (st.Sim.time_s < serial)

let eventsim_workload ?(threads = 256) points repeats =
  W.v ~label:"ev" ~threads ~shared_words:4000 ~regs_per_thread:32 ~body
    ~rows:[ { W.points; repeats } ]
    ~input:{ Mem.words = 0; run_length = 32 }
    ~output:{ Mem.words = 0; run_length = 32 }
    ~row_stride:73 ~chunks:1

let test_eventsim_agreement () =
  (* the warp-level event simulation independently confirms the closed-form
     compute model across thread counts and row sizes *)
  List.iter
    (fun (threads, points, repeats) ->
      let w = eventsim_workload ~threads points repeats in
      let ratio = Gpu.Eventsim.agreement arch w in
      Alcotest.(check bool)
        (Printf.sprintf "thr=%d pts=%d: ratio %.2f in [0.7, 1.5]" threads
           points ratio)
        true
        (ratio > 0.7 && ratio < 1.5))
    [ (256, 1024, 8); (256, 4096, 4); (128, 1024, 8); (64, 1024, 8);
      (512, 2048, 8); (32, 512, 6) ]

let test_eventsim_latency_emerges () =
  (* few warps leave schedulers idle; many warps saturate them *)
  let starved = Gpu.Eventsim.chunk_stats arch (eventsim_workload ~threads:32 1024 4) in
  let saturated = Gpu.Eventsim.chunk_stats arch (eventsim_workload ~threads:512 1024 4) in
  Alcotest.(check bool) "starved stalls" true
    (starved.Gpu.Eventsim.stall_fraction > 0.5);
  Alcotest.(check bool) "saturated flows" true
    (saturated.Gpu.Eventsim.stall_fraction < 0.1);
  Alcotest.(check bool) "stalls cost time" true
    (starved.Gpu.Eventsim.cycles > saturated.Gpu.Eventsim.cycles)

let test_eventsim_work_conservation () =
  (* issued instructions = warp-iterations * instructions per point batch *)
  let w = eventsim_workload ~threads:256 1024 3 in
  let st = Gpu.Eventsim.chunk_stats arch w in
  let instrs_per_point =
    int_of_float (Float.round (Gpu.Pointcost.cycles body))
  in
  Alcotest.(check int) "issued"
    (3 * (1024 / 32) * instrs_per_point)
    st.Gpu.Eventsim.issued

let test_priced_replay_identity () =
  (* the priced representation is an exact factoring: replaying a salt
     must be bit-identical to pricing the whole sequence at that salt *)
  let k1 = K.v ~label:"a" ~blocks:[ (workload (), 32) ] in
  let k2 =
    K.v ~label:"b" ~blocks:[ (workload ~threads:128 ~io:8192 (), 48) ]
  in
  let seq = [ (k1, 4); (k2, 2) ] in
  let priced =
    match Sim.price_sequence arch seq with
    | Ok p -> p
    | Error e -> Alcotest.failf "price_sequence: %s" e
  in
  for salt = 0 to 9 do
    let fresh = run_ok (Sim.run_sequence_salted ~salt arch seq) in
    let replayed = Sim.replay ~salt arch priced in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "salt %d total" salt)
      fresh.Sim.total_s replayed.Sim.total_s;
    List.iter2
      (fun (a : Sim.kernel_stats) (b : Sim.kernel_stats) ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "salt %d kernel time" salt)
          a.Sim.time_s b.Sim.time_s;
        Alcotest.(check int) "resident" a.Sim.resident_blocks
          b.Sim.resident_blocks)
      fresh.Sim.kernels replayed.Sim.kernels
  done;
  (* the measurement protocol is exactly the min over the salted runs *)
  let m = run_ok (Sim.measure ~runs:5 arch seq) in
  let explicit =
    List.fold_left
      (fun best salt ->
        min best (run_ok (Sim.run_sequence_salted ~salt arch seq)).Sim.total_s)
      infinity [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check (float 0.0)) "measure = min of salted runs" explicit m

let test_priced_counts_once () =
  (* pricing is per kernel, not per run: a 5-run measurement of a 2-kernel
     sequence performs exactly 2 pricings *)
  let k1 = K.v ~label:"c1" ~blocks:[ (workload (), 16) ] in
  let k2 = K.v ~label:"c2" ~blocks:[ (workload ~threads:64 (), 16) ] in
  let before = Sim.invocations () in
  ignore (run_ok (Sim.measure ~runs:5 arch [ (k1, 3); (k2, 7) ]));
  Alcotest.(check int) "one pricing per kernel" 2 (Sim.invocations () - before)

let eventsim_check_fast_eq_slow w =
  let f = Gpu.Eventsim.chunk_stats arch w in
  let s = Gpu.Eventsim.chunk_stats_slow arch w in
  let tag = Format.asprintf "%a" W.pp w in
  Alcotest.(check (float 0.0)) ("cycles " ^ tag) s.Gpu.Eventsim.cycles
    f.Gpu.Eventsim.cycles;
  Alcotest.(check int) ("issued " ^ tag) s.Gpu.Eventsim.issued
    f.Gpu.Eventsim.issued;
  Alcotest.(check (float 0.0)) ("stall " ^ tag) s.Gpu.Eventsim.stall_fraction
    f.Gpu.Eventsim.stall_fraction

let test_eventsim_fast_slow_degenerate () =
  (* hand-picked corners: fewer warps than schedulers, single-point rows,
     long rows that trigger the steady-state jump, repeated and mixed rows *)
  List.iter eventsim_check_fast_eq_slow
    [
      eventsim_workload ~threads:32 1 1 (* 1 warp vs 4 schedulers *);
      eventsim_workload ~threads:32 1 17;
      eventsim_workload ~threads:64 3 5;
      eventsim_workload ~threads:256 1 1;
      eventsim_workload ~threads:256 65536 1 (* long row: jump path *);
      eventsim_workload ~threads:512 16384 4;
      eventsim_workload ~threads:96 4096 3 (* partial warp *);
      workload ~rows:
        [
          { W.points = 1; repeats = 1 };
          { W.points = 4096; repeats = 7 };
          { W.points = 33; repeats = 2 };
          { W.points = 4096; repeats = 7 } (* repeated row: memo path *);
        ]
        ();
    ]

let prop_eventsim_fast_eq_slow =
  (* the steady-state fast-forward and the row memo are exact shortcuts:
     on any valid workload both paths produce bit-identical stats *)
  let gen =
    QCheck.Gen.(
      let* threads = oneofl [ 32; 48; 64; 96; 128; 256; 512 ] in
      let* n_rows = int_range 1 4 in
      let* rows =
        list_repeat n_rows
          (let* points = oneofl [ 1; 2; 33; 512; 4096; 20000 ] in
           let* repeats = int_range 1 12 in
           return { W.points; repeats })
      in
      return (threads, rows))
  in
  let print (threads, rows) =
    Printf.sprintf "threads=%d rows=[%s]" threads
      (String.concat "; "
         (List.map
            (fun r -> Printf.sprintf "%dx%d" r.W.points r.W.repeats)
            rows))
  in
  QCheck.Test.make ~name:"eventsim fast path is bit-identical to slow"
    ~count:60
    (QCheck.make ~print gen)
    (fun (threads, rows) ->
      let w = workload ~threads ~rows () in
      let f = Gpu.Eventsim.chunk_stats arch w in
      let s = Gpu.Eventsim.chunk_stats_slow arch w in
      f.Gpu.Eventsim.cycles = s.Gpu.Eventsim.cycles
      && f.Gpu.Eventsim.issued = s.Gpu.Eventsim.issued
      && f.Gpu.Eventsim.stall_fraction = s.Gpu.Eventsim.stall_fraction)

let prop_simulator_monotone_in_io =
  QCheck.Test.make ~name:"kernel time is monotone in io volume" ~count:50
    QCheck.(int_range 1 50)
    (fun scale ->
      let t io =
        let w = workload ~io () in
        let k = K.v ~label:"mono" ~blocks:[ (w, 64) ] in
        (run_ok (Sim.run_kernel ~jitter:false arch k)).Sim.time_s
      in
      t (1024 * scale) <= t (1024 * (scale + 1)))

let suite =
  [
    Alcotest.test_case "presets (Table 2)" `Quick test_presets;
    Alcotest.test_case "derived arch" `Quick test_arch_derived;
    Alcotest.test_case "pointcost" `Quick test_pointcost;
    Alcotest.test_case "occupancy limits" `Quick test_occupancy_limits;
    Alcotest.test_case "occupancy infeasible/spill" `Quick test_occupancy_infeasible_and_spill;
    Alcotest.test_case "coalescing" `Quick test_memory_coalescing;
    Alcotest.test_case "transfer timing" `Quick test_memory_transfer;
    Alcotest.test_case "smem conflicts" `Quick test_smem_conflicts;
    Alcotest.test_case "workload accessors" `Quick test_workload_accessors;
    Alcotest.test_case "workload validation" `Quick test_workload_validation;
    Alcotest.test_case "lane iterations" `Quick test_compute_lane_iterations;
    Alcotest.test_case "compute penalties" `Quick test_compute_penalties;
    Alcotest.test_case "kernel accessors" `Quick test_kernel_accessors;
    Alcotest.test_case "simulator basics" `Quick test_simulator_basics;
    Alcotest.test_case "simulator infeasible" `Quick test_simulator_infeasible;
    Alcotest.test_case "simulator determinism" `Quick test_simulator_determinism;
    Alcotest.test_case "exact vs fast" `Quick test_exact_matches_fast;
    Alcotest.test_case "run sequence" `Quick test_run_sequence;
    Alcotest.test_case "measure protocol" `Quick test_measure_min_of_runs;
    Alcotest.test_case "hyperthreading overlap" `Quick test_hyperthreading_overlap;
    Alcotest.test_case "eventsim agreement" `Quick test_eventsim_agreement;
    Alcotest.test_case "eventsim latency" `Quick test_eventsim_latency_emerges;
    Alcotest.test_case "eventsim conservation" `Quick test_eventsim_work_conservation;
    Alcotest.test_case "priced replay identity" `Quick test_priced_replay_identity;
    Alcotest.test_case "priced counts once" `Quick test_priced_counts_once;
    Alcotest.test_case "eventsim fast/slow corners" `Quick
      test_eventsim_fast_slow_degenerate;
    QCheck_alcotest.to_alcotest prop_eventsim_fast_eq_slow;
    QCheck_alcotest.to_alcotest prop_simulator_monotone_in_io;
  ]
