(* The tiled CPU executor: legality (dependence checking) and semantic
   equality with the naive reference, across ranks, stencils and tile
   sizes.  This is the correctness argument for the whole tiling engine. *)

module E = Hextime_tiling.Exec_cpu
module C = Hextime_tiling.Config
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module G = Hextime_stencil.Grid
module R = Hextime_stencil.Reference

let verify_ok name stencil space time cfg =
  Alcotest.test_case name `Quick (fun () ->
      let problem = P.make stencil ~space ~time in
      let init = R.default_init problem in
      match E.verify problem cfg ~init with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)

let cfg = C.make_exn

let test_rank_mismatch () =
  let problem = P.make S.jacobi2d ~space:[| 16; 32 |] ~time:2 in
  let init = R.default_init problem in
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Exec_cpu.run: rank mismatch") (fun () ->
      ignore
        (E.run problem (cfg ~t_t:2 ~t_s:[| 4 |] ~threads:[| 32 |]) ~init))

let test_init_mismatch () =
  let problem = P.make S.jacobi1d ~space:[| 16 |] ~time:2 in
  let init = G.create [| 8 |] in
  Alcotest.check_raises "init mismatch"
    (Invalid_argument "Exec_cpu.run: init extents mismatch") (fun () ->
      ignore (E.run problem (cfg ~t_t:2 ~t_s:[| 4 |] ~threads:[| 32 |]) ~init))

let test_illegal_schedule_detected () =
  (* executing green before yellow breaks dependences; simulate that by
     running coverage on a lattice and manually checking the checker: we
     instead check that reading an uncomputed point raises, by running a
     problem whose time tile exceeds double the time extent — the geometry
     still works, so this should NOT raise; the real negative test is the
     dependence checker inside run, exercised by every verify case.  Here we
     assert the exception type is catchable and carries a message. *)
  Alcotest.(check bool) "exception exists" true
    (try
       raise (E.Dependence_violation "probe")
     with E.Dependence_violation m -> m = "probe")

let prop_tiled_equals_reference_1d =
  QCheck.Test.make ~name:"1D tiled == reference" ~count:40
    QCheck.(
      quad (int_range 1 8)
        (int_range 1 6 (* half tT *))
        (int_range 8 48)
        (int_range 1 12))
    (fun (t_s, tth, space, time) ->
      let t_t = 2 * tth in
      let problem = P.make S.jacobi1d ~space:[| space |] ~time in
      let init = R.default_init problem in
      match
        E.verify problem (cfg ~t_t ~t_s:[| t_s |] ~threads:[| 32 |]) ~init
      with
      | Ok () -> true
      | Error _ -> false)

let prop_tiled_equals_reference_2d =
  QCheck.Test.make ~name:"2D tiled == reference" ~count:15
    QCheck.(
      quad (int_range 1 6)
        (int_range 1 3 (* half tT *))
        (int_range 1 2 (* tS2 mult of 32 *))
        (int_range 1 6))
    (fun (t_s1, tth, ts2m, time) ->
      let t_t = 2 * tth in
      let t_s2 = 32 * ts2m in
      let problem = P.make S.heat2d ~space:[| 20; 2 * t_s2 |] ~time in
      let init = R.default_init problem in
      match
        E.verify problem
          (cfg ~t_t ~t_s:[| t_s1; t_s2 |] ~threads:[| 64 |])
          ~init
      with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    verify_ok "jacobi1d small tiles" S.jacobi1d [| 40 |] 10
      (cfg ~t_t:4 ~t_s:[| 3 |] ~threads:[| 32 |]);
    verify_ok "jacobi1d tile larger than T" S.jacobi1d [| 24 |] 3
      (cfg ~t_t:6 ~t_s:[| 5 |] ~threads:[| 32 |]);
    verify_ok "jacobi2d" S.jacobi2d [| 24; 64 |] 8
      (cfg ~t_t:4 ~t_s:[| 5; 32 |] ~threads:[| 64 |]);
    verify_ok "heat2d minimal tT" S.heat2d [| 20; 32 |] 6
      (cfg ~t_t:2 ~t_s:[| 4; 32 |] ~threads:[| 32 |]);
    verify_ok "laplacian2d" S.laplacian2d [| 18; 32 |] 5
      (cfg ~t_t:4 ~t_s:[| 6; 32 |] ~threads:[| 32 |]);
    verify_ok "gradient2d (nonlinear)" S.gradient2d [| 24; 32 |] 7
      (cfg ~t_t:6 ~t_s:[| 3; 32 |] ~threads:[| 32 |]);
    verify_ok "jacobi3d" S.jacobi3d [| 10; 12; 32 |] 4
      (cfg ~t_t:2 ~t_s:[| 3; 4; 32 |] ~threads:[| 32 |]);
    verify_ok "heat3d" S.heat3d [| 12; 32; 32 |] 5
      (cfg ~t_t:4 ~t_s:[| 4; 32; 32 |] ~threads:[| 64 |]);
    verify_ok "laplacian3d" S.laplacian3d [| 9; 10; 32 |] 6
      (cfg ~t_t:2 ~t_s:[| 2; 5; 32 |] ~threads:[| 32 |]);
    verify_ok "asymmetric upwind advection" S.advection2d [| 20; 32 |] 7
      (cfg ~t_t:4 ~t_s:[| 4; 32 |] ~threads:[| 32 |]);
    verify_ok "order-2 stencil" S.jacobi2d_order2 [| 24; 32 |] 6
      (cfg ~t_t:4 ~t_s:[| 6; 32 |] ~threads:[| 32 |]);
    verify_ok "order-2 3D stencil" S.heat3d_order2 [| 14; 12; 32 |] 3
      (cfg ~t_t:2 ~t_s:[| 4; 6; 32 |] ~threads:[| 32 |]);
    Alcotest.test_case "rank mismatch" `Quick test_rank_mismatch;
    Alcotest.test_case "init mismatch" `Quick test_init_mismatch;
    Alcotest.test_case "dependence exception" `Quick test_illegal_schedule_detected;
    QCheck_alcotest.to_alcotest prop_tiled_equals_reference_1d;
    QCheck_alcotest.to_alcotest prop_tiled_equals_reference_2d;
  ]
