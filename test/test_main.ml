let () =
  Alcotest.run "hextime"
    [
      ("prelude", Test_prelude.suite);
      ("grid", Test_grid.suite);
      ("stencil", Test_stencil.suite);
      ("hexgeom", Test_hexgeom.suite);
      ("exec_cpu", Test_exec_cpu.suite);
      ("tiling", Test_tiling.suite);
      ("gpu", Test_gpu.suite);
      ("model", Test_model.suite);
      ("tileopt", Test_tileopt.suite);
      ("harness", Test_harness.suite);
      ("codegen", Test_codegen.suite);
      ("analysis", Test_analysis.suite);
      ("parsweep", Test_parsweep.suite);
      ("obs", Test_obs.suite);
      ("extensions", Test_extensions.suite);
      ("hexabs", Test_hexabs.suite);
      (* keep last: serve tests run the server in spawned domains, and
         OCaml 5 forbids Unix.fork (the pool backend every earlier suite
         exercises) once a domain has been spawned *)
      ("serve", Test_serve.suite);
    ]
