(* Stencil definitions, problems, and the reference executor. *)

module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Grid = Hextime_stencil.Grid
module Reference = Hextime_stencil.Reference

let test_benchmark_facts () =
  Alcotest.(check int) "jacobi2d rank" 2 Stencil.(jacobi2d.rank);
  Alcotest.(check int) "jacobi2d order" 1 Stencil.(jacobi2d.order);
  Alcotest.(check int) "jacobi2d loads" 5 Stencil.(jacobi2d.loads);
  Alcotest.(check int) "heat3d loads" 7 Stencil.(heat3d.loads);
  Alcotest.(check int) "gradient loads" 4 Stencil.(gradient2d.loads);
  Alcotest.(check int) "gradient transcendentals" 1
    Stencil.(gradient2d.transcendentals);
  Alcotest.(check int) "order-2 variant" 2 Stencil.(jacobi2d_order2.order);
  Alcotest.(check int) "2d benchmark count" 4 (List.length Stencil.benchmarks_2d);
  Alcotest.(check int) "3d benchmark count" 2 (List.length Stencil.benchmarks_3d)

let test_find () =
  Alcotest.(check string) "find heat2d" "heat2d" Stencil.((find "heat2d").name);
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Stencil.find "nope"))

let test_make_validation () =
  Alcotest.check_raises "pointwise rejected"
    (Invalid_argument "Stencil.make: pointwise rule is not a stencil")
    (fun () ->
      ignore
        (Stencil.make ~name:"pt" ~rank:1
           (Stencil.Linear
              { taps = [ { offset = [| 0 |]; weight = 1.0 } ]; constant = 0.0 })));
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Stencil.make: offset rank mismatch") (fun () ->
      ignore
        (Stencil.make ~name:"bad" ~rank:2
           (Stencil.Linear
              { taps = [ { offset = [| 1 |]; weight = 1.0 } ]; constant = 0.0 })))

let test_apply_linear () =
  (* jacobi1d over constant field is the identity *)
  let v = Stencil.apply Stencil.jacobi1d (fun _ -> 3.0) in
  Alcotest.(check (float 1e-12)) "averaging preserves constant" 3.0 v

let test_apply_weights () =
  (* laplacian of a constant field is zero *)
  let v = Stencil.apply Stencil.laplacian2d (fun _ -> 1.0) in
  Alcotest.(check (float 1e-12)) "laplacian of constant" 0.0 v;
  (* heat update of constant field is the constant *)
  let h = Stencil.apply Stencil.heat3d (fun _ -> 2.0) in
  Alcotest.(check (float 1e-12)) "heat of constant" 2.0 h

let test_apply_gradient () =
  let read off =
    (* linear ramp in the first dimension: f = 2*i, so df/di = 2 *)
    2.0 *. float_of_int off.(0)
  in
  let v = Stencil.apply Stencil.gradient2d read in
  (* central difference: (f(+1) - f(-1)) = 4, dy = 0 -> sqrt(16) = 4 *)
  Alcotest.(check (float 1e-5)) "gradient magnitude" 4.0 v

let test_problem_validation () =
  Alcotest.check_raises "rank" (Invalid_argument "Problem.make: space rank mismatch")
    (fun () -> ignore (Problem.make Stencil.jacobi2d ~space:[| 8 |] ~time:1));
  Alcotest.check_raises "extent"
    (Invalid_argument "Problem.make: extent too small for stencil order")
    (fun () -> ignore (Problem.make Stencil.jacobi2d ~space:[| 2; 8 |] ~time:1));
  Alcotest.check_raises "time" (Invalid_argument "Problem.make: time must be >= 1")
    (fun () -> ignore (Problem.make Stencil.jacobi2d ~space:[| 8; 8 |] ~time:0))

let test_problem_counts () =
  let p = Problem.make Stencil.jacobi2d ~space:[| 10; 10 |] ~time:3 in
  Alcotest.(check int) "interior points" 64 (Problem.points_per_step p);
  Alcotest.(check int) "updates" 192 (Problem.total_updates p);
  Alcotest.(check (float 1e-6)) "flops" (192.0 *. 9.0) (Problem.total_flops p);
  Alcotest.(check string) "id" "jacobi2d:10x10xT3" (Problem.id p)

let test_paper_sizes () =
  Alcotest.(check int) "2D sizes" 10 (List.length Problem.paper_sizes_2d);
  Alcotest.(check int) "3D sizes" 12 (List.length Problem.paper_sizes_3d);
  List.iter
    (fun ((space : int array), t) ->
      Alcotest.(check bool) "3D constraint T <= S" true (t <= space.(0)))
    Problem.paper_sizes_3d

let test_reference_boundary_fixed () =
  let p = Problem.make Stencil.jacobi2d ~space:[| 6; 6 |] ~time:4 in
  let init = Reference.default_init p in
  let final = Reference.run p ~init in
  (* Dirichlet: boundary never changes *)
  Alcotest.(check (float 0.0)) "corner" (Grid.get2 init 0 0) (Grid.get2 final 0 0);
  Alcotest.(check (float 0.0)) "edge" (Grid.get2 init 0 3) (Grid.get2 final 0 3)

let test_reference_known_step () =
  (* one Jacobi-1D step on an impulse: the average spreads it *)
  let p = Problem.make Stencil.jacobi1d ~space:[| 5 |] ~time:1 in
  let init = Grid.create [| 5 |] in
  Grid.set1 init 2 3.0;
  let final = Reference.run p ~init in
  Alcotest.(check (float 1e-12)) "left neighbour" 1.0 (Grid.get1 final 1);
  Alcotest.(check (float 1e-12)) "centre" 1.0 (Grid.get1 final 2);
  Alcotest.(check (float 1e-12)) "right neighbour" 1.0 (Grid.get1 final 3);
  Alcotest.(check (float 1e-12)) "untouched boundary" 0.0 (Grid.get1 final 0)

let test_reference_history () =
  let p = Problem.make Stencil.heat2d ~space:[| 8; 8 |] ~time:3 in
  let init = Reference.default_init p in
  let hist = Reference.run_history p ~init in
  Alcotest.(check int) "history length" 4 (Array.length hist);
  Alcotest.(check bool) "first is init" true (Grid.equal hist.(0) init);
  let final = Reference.run p ~init in
  Alcotest.(check bool) "last equals run" true (Grid.equal hist.(3) final)

let test_heat_dissipation () =
  (* the heat stencil is a convex combination, so the max never grows *)
  let p = Problem.make Stencil.heat2d ~space:[| 12; 12 |] ~time:8 in
  let init = Reference.default_init p in
  let final = Reference.run p ~init in
  let max_of g =
    Array.fold_left max neg_infinity (Grid.unsafe_data g)
  in
  Alcotest.(check bool) "max does not grow" true (max_of final <= max_of init +. 1e-9)

let prop_constant_field_fixed_point =
  (* averaging stencils keep a constant field constant for any duration *)
  QCheck.Test.make ~name:"jacobi fixes constant fields" ~count:30
    QCheck.(pair (int_range 1 6) (float_range (-5.0) 5.0))
    (fun (t, v) ->
      let p = Problem.make Stencil.jacobi2d ~space:[| 7; 7 |] ~time:t in
      let init = Grid.create [| 7; 7 |] in
      Grid.fill init (fun _ -> v);
      let final = Reference.run p ~init in
      Grid.equal ~eps:1e-9 init final)

let suite =
  [
    Alcotest.test_case "benchmark facts" `Quick test_benchmark_facts;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "apply linear" `Quick test_apply_linear;
    Alcotest.test_case "apply weights" `Quick test_apply_weights;
    Alcotest.test_case "apply gradient" `Quick test_apply_gradient;
    Alcotest.test_case "problem validation" `Quick test_problem_validation;
    Alcotest.test_case "problem counts" `Quick test_problem_counts;
    Alcotest.test_case "paper sizes" `Quick test_paper_sizes;
    Alcotest.test_case "boundary fixed" `Quick test_reference_boundary_fixed;
    Alcotest.test_case "known step" `Quick test_reference_known_step;
    Alcotest.test_case "history" `Quick test_reference_history;
    Alcotest.test_case "heat dissipation" `Quick test_heat_dissipation;
    QCheck_alcotest.to_alcotest prop_constant_field_fixed_point;
  ]
