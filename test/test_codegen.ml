(* Golden tests for the pseudo-CUDA pretty-printer over the kernel IR.

   The expected strings are the full output of Ir_print for small
   configurations of each rank and both tile families — regenerated from
   the printer itself when the output format deliberately changes
   (`hextime codegen` dumps them).  Exact equality, not substrings: the
   printer is the user-facing view of the IR and silent format drift is a
   bug.  Also here: the weight-precision tests (tap weights must print
   with enough digits to round-trip float32). *)

module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Codegen = Hextime_tiling.Codegen
module Hexgeom = Hextime_tiling.Hexgeom

let get = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let problem_1d = Problem.make Stencil.jacobi1d ~space:[| 256 |] ~time:16
let config_1d = Config.make_exn ~t_t:4 ~t_s:[| 32 |] ~threads:[| 32 |]
let problem_2d = Problem.make Stencil.heat2d ~space:[| 1024; 1024 |] ~time:128
let config_2d = Config.make_exn ~t_t:8 ~t_s:[| 8; 64 |] ~threads:[| 256 |]
let problem_3d = Problem.make Stencil.heat3d ~space:[| 96; 96; 96 |] ~time:32
let config_3d = Config.make_exn ~t_t:4 ~t_s:[| 4; 8; 32 |] ~threads:[| 64 |]

let golden_1d_program =
  {|// host-side wavefront loop for jacobi1d:256xT16, configuration tT4-tS32-thr32
// N_w = 8 wavefronts of w = 4 blocks each
void run(const float *in, float *out)
{
  for (int band = 0; band < 4; ++band) {
    jacobi1d_yellow<<<4, 32>>>(in, out);   // T_sync per launch
    jacobi1d_green <<<4, 32>>>(in, out);
  }
  cudaDeviceSynchronize();
}

// yellow tile kernel for jacobi1d:256xT16, configuration tT4-tS32-thr32
// registers/thread (estimated): 27; shared memory: 74 words
__global__ void jacobi1d_yellow(const float *__restrict__ in, float *out)
{
  __shared__ float smem[2][37]; // M_tile = 2 * (32 + 4 + 1)
  const int tile = blockIdx.x;          // position in the wavefront
  const int tid  = threadIdx.x;         // 32 threads
  // global -> shared (ping half): m_i = 40 words, coalesced in runs of 32
  for (int i = tid; i < 40; i += 32) smem[0][stage(i)] = in[gaddr(tile, i)];
  __syncthreads();
  // hexagon rows, bottom to top (widths 34, 36, 36, 34)
  for (int r = 0; r < 4; ++r) {
    for (int p = tid; p < row_points(r); p += 32) {
      const int x = p;               // position in the row
      smem[(r + 1) & 1][next(r, p)] =
                 0.333333333f * smem[r & 1][x - 1]
             + 0.333333333f * smem[r & 1][x]
             + 0.333333333f * smem[r & 1][x + 1];
    }
    __syncthreads();                   // tau_sync per row
  }
  // shared -> global (ping half): m_o = 40 words, coalesced in runs of 32
  for (int i = tid; i < 40; i += 32) out[gaddr(tile, i)] = smem[0][stage(i)];
  __syncthreads();
}

// green tile kernel for jacobi1d:256xT16, configuration tT4-tS32-thr32
// registers/thread (estimated): 27; shared memory: 74 words
__global__ void jacobi1d_green(const float *__restrict__ in, float *out)
{
  __shared__ float smem[2][37]; // M_tile = 2 * (32 + 4 + 1)
  const int tile = blockIdx.x;          // position in the wavefront
  const int tid  = threadIdx.x;         // 32 threads
  // global -> shared (ping half): m_i = 40 words, coalesced in runs of 32
  for (int i = tid; i < 40; i += 32) smem[0][stage(i)] = in[gaddr(tile, i)];
  __syncthreads();
  // hexagon rows, bottom to top (widths 32, 34, 34, 32)
  for (int r = 0; r < 4; ++r) {
    for (int p = tid; p < row_points(r); p += 32) {
      const int x = p;               // position in the row
      smem[(r + 1) & 1][next(r, p)] =
                 0.333333333f * smem[r & 1][x - 1]
             + 0.333333333f * smem[r & 1][x]
             + 0.333333333f * smem[r & 1][x + 1];
    }
    __syncthreads();                   // tau_sync per row
  }
  // shared -> global (ping half): m_o = 40 words, coalesced in runs of 32
  for (int i = tid; i < 40; i += 32) out[gaddr(tile, i)] = smem[0][stage(i)];
  __syncthreads();
}
|}

let golden_2d_host =
  {|// host-side wavefront loop for heat2d:1024x1024xT128, configuration tT8-tS8x64-thr256
// N_w = 32 wavefronts of w = 43 blocks each
void run(const float *in, float *out)
{
  for (int band = 0; band < 16; ++band) {
    heat2d_yellow<<<43, 256>>>(in, out);   // T_sync per launch
    heat2d_green <<<43, 256>>>(in, out);
  }
  cudaDeviceSynchronize();
}
|}

let golden_2d_yellow =
  {|// yellow tile kernel for heat2d:1024x1024xT128, configuration tT8-tS8x64-thr256
// registers/thread (estimated): 38; shared memory: 2482 words
__global__ void heat2d_yellow(const float *__restrict__ in, float *out)
{
  __shared__ float smem[2][1241]; // M_tile = 2 * (8 + 8 + 1) * (64 + 8 + 1)
  const int tile = blockIdx.x;          // position in the wavefront
  const int tid  = threadIdx.x;         // 256 threads
  for (int q = 0; q < 17; ++q) {       // skewed inner chunks (sub-prisms)
    // global -> shared (ping half): m_i = 1536 words, coalesced in runs of 64
    for (int i = tid; i < 1536; i += 256) smem[0][stage(i)] = in[gaddr(tile, q, i)];
    __syncthreads();
    // hexagon rows, bottom to top (widths 10, 12, 14, 16, 16, 14, 12, 10)
    for (int r = 0; r < 8; ++r) {
      for (int p = tid; p < row_points(r); p += 256) {
        const int j = p % 64, x = p / 64; // inner x hexagon
        smem[(r + 1) & 1][next(r, p)] =
                   0.5f * smem[r & 1][x][j]
             + 0.125f * smem[r & 1][x - 1][j]
             + 0.125f * smem[r & 1][x + 1][j]
             + 0.125f * smem[r & 1][x][j - 1]
             + 0.125f * smem[r & 1][x][j + 1];
      }
      __syncthreads();                   // tau_sync per row
    }
    // shared -> global (ping half): m_o = 1536 words, coalesced in runs of 64
    for (int i = tid; i < 1536; i += 256) out[gaddr(tile, q, i)] = smem[0][stage(i)];
    __syncthreads();
  }
}
|}

let golden_3d_yellow =
  {|// yellow tile kernel for heat3d:96x96x96xT32, configuration tT4-tS4x8x32-thr64
// registers/thread (estimated): 101; shared memory: 8658 words
__global__ void heat3d_yellow(const float *__restrict__ in, float *out)
{
  __shared__ float smem[2][4329]; // M_tile = 2 * (4 + 4 + 1) * (8 + 4 + 1) * (32 + 4 + 1)
  const int tile = blockIdx.x;          // position in the wavefront
  const int tid  = threadIdx.x;         // 64 threads
  for (int q = 0; q < 40; ++q) {       // skewed inner chunks (sub-slabs)
    // global -> shared (ping half): m_i = 3072 words, coalesced in runs of 32
    for (int i = tid; i < 3072; i += 64) smem[0][stage(i)] = in[gaddr(tile, q, i)];
    __syncthreads();
    // hexagon rows, bottom to top (widths 6, 8, 8, 6)
    for (int r = 0; r < 4; ++r) {
      for (int p = tid; p < row_points(r); p += 64) {
        const int l = p % 32, j = (p / 32) % 8;
        smem[(r + 1) & 1][next(r, p)] =
                   0.25f * smem[r & 1][x][j][l]
             + 0.125f * smem[r & 1][x - 1][j][l]
             + 0.125f * smem[r & 1][x + 1][j][l]
             + 0.125f * smem[r & 1][x][j - 1][l]
             + 0.125f * smem[r & 1][x][j + 1][l]
             + 0.125f * smem[r & 1][x][j][l - 1]
             + 0.125f * smem[r & 1][x][j][l + 1];
      }
      __syncthreads();                   // tau_sync per row
    }
    // shared -> global (ping half): m_o = 3072 words, coalesced in runs of 32
    for (int i = tid; i < 3072; i += 64) out[gaddr(tile, q, i)] = smem[0][stage(i)];
    __syncthreads();
  }
}
|}

let check_golden what expected actual =
  Alcotest.(check string) what expected actual

let test_program_1d () =
  check_golden "jacobi1d rank-1 program"
    golden_1d_program
    (get (Codegen.program problem_1d config_1d))

let test_host_2d () =
  check_golden "heat2d rank-2 host loop" golden_2d_host
    (get (Codegen.host problem_2d config_2d))

let test_kernel_2d_yellow () =
  check_golden "heat2d rank-2 yellow kernel" golden_2d_yellow
    (get (Codegen.kernel problem_2d config_2d ~family:Hexgeom.Yellow))

let test_kernel_3d_yellow () =
  check_golden "heat3d rank-3 yellow kernel" golden_3d_yellow
    (get (Codegen.kernel problem_3d config_3d ~family:Hexgeom.Yellow))

(* The program is exactly the host loop followed by the yellow and green
   kernels — the same strings the per-piece entry points return. *)
let test_program_composition () =
  let host = get (Codegen.host problem_3d config_3d) in
  let ky = get (Codegen.kernel problem_3d config_3d ~family:Hexgeom.Yellow) in
  let kg = get (Codegen.kernel problem_3d config_3d ~family:Hexgeom.Green) in
  check_golden "program = host + yellow + green"
    (host ^ "\n" ^ ky ^ "\n" ^ kg)
    (get (Codegen.program problem_3d config_3d))

(* The two families of one configuration print identically except for the
   kernel names and the row widths (the yellow base is 2*order wider). *)
let test_families_differ_only_in_widths () =
  let g = get (Codegen.kernel problem_2d config_2d ~family:Hexgeom.Green) in
  let y = get (Codegen.kernel problem_2d config_2d ~family:Hexgeom.Yellow) in
  let normalize s =
    String.split_on_char '\n' s
    |> List.filter (fun l ->
           not
             (Test_util.contains l "widths"
             || Test_util.contains l "heat2d_"
             || Test_util.contains l "tile kernel for"))
    |> String.concat "\n"
  in
  Alcotest.(check string) "families share everything but names and widths"
    (normalize g) (normalize y)

(* --- weight precision (the %.6g -> %.9g fix) --------------------------- *)

(* A float32 value needs up to 9 significant decimal digits to round-trip;
   the printer uses %.9g.  Check bit-exactness through print/parse for
   every weight of every benchmark stencil. *)
let f32_bits x = Int32.bits_of_float x

let weights_of (st : Stencil.t) =
  match st.Stencil.rule with
  | Stencil.Linear { taps; constant } ->
      constant :: List.map (fun (t : Stencil.tap) -> t.Stencil.weight) taps
  | Stencil.Nonlinear _ -> []

let test_weight_roundtrip () =
  List.iter
    (fun (st : Stencil.t) ->
      List.iter
        (fun w ->
          let printed = Printf.sprintf "%.9g" w in
          Alcotest.(check int32)
            (Printf.sprintf "%s weight %s round-trips float32" st.Stencil.name
               printed)
            (f32_bits w)
            (f32_bits (float_of_string printed)))
        (weights_of st))
    Stencil.all_benchmarks

(* %.6g was not enough: 1/3 printed as 0.333333, which parses to a
   different float32 — the defect the fix removes. *)
let test_six_digits_insufficient () =
  let w = 1.0 /. 3.0 in
  let six = float_of_string (Printf.sprintf "%.6g" w) in
  Alcotest.(check bool) "%.6g loses float32 bits of 1/3" true
    (f32_bits six <> f32_bits w);
  let nine = float_of_string (Printf.sprintf "%.9g" w) in
  Alcotest.(check int32) "%.9g keeps them" (f32_bits w) (f32_bits nine)

let test_kernel_prints_full_precision () =
  let k = get (Codegen.kernel problem_1d config_1d ~family:Hexgeom.Green) in
  Alcotest.(check bool) "jacobi1d kernel prints 0.333333333f" true
    (Test_util.contains k "0.333333333f");
  Alcotest.(check bool) "and not the truncated 0.333333f" false
    (Test_util.contains k "0.333333f ")

let suite =
  [
    Alcotest.test_case "golden: rank-1 program (both families)" `Quick
      test_program_1d;
    Alcotest.test_case "golden: rank-2 host loop" `Quick test_host_2d;
    Alcotest.test_case "golden: rank-2 yellow kernel" `Quick
      test_kernel_2d_yellow;
    Alcotest.test_case "golden: rank-3 yellow kernel" `Quick
      test_kernel_3d_yellow;
    Alcotest.test_case "program is host + both kernels" `Quick
      test_program_composition;
    Alcotest.test_case "families differ only in names and widths" `Quick
      test_families_differ_only_in_widths;
    Alcotest.test_case "weights round-trip float32 via %.9g" `Quick
      test_weight_roundtrip;
    Alcotest.test_case "%.6g would truncate 1/3" `Quick
      test_six_digits_insufficient;
    Alcotest.test_case "kernel body prints full-precision weights" `Quick
      test_kernel_prints_full_precision;
  ]
