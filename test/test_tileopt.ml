(* Feasible-space enumeration, the baseline protocol, the runner, the
   optimizer and the selection strategies (Section 6). *)

module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module C = Hextime_tiling.Config
module Footprint = Hextime_tiling.Footprint
module Model = Hextime_core.Model
module Params = Hextime_core.Params
module Space = Hextime_tileopt.Space
module Baseline = Hextime_tileopt.Baseline
module Runner = Hextime_tileopt.Runner
module Optimizer = Hextime_tileopt.Optimizer
module Strategies = Hextime_tileopt.Strategies
module Amplgen = Hextime_tileopt.Amplgen

let arch = Gpu.Arch.gtx980

let params =
  Params.of_microbenchmarks arch ~l_word:3.0e-11 ~tau_sync:1.0e-9 ~t_sync:1.0e-6

let citer = 4.0e-8
let problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:64
let problem3d = P.make S.heat3d ~space:[| 96; 96; 96 |] ~time:32

let test_space_constraints () =
  let shapes = Space.shapes params problem in
  Alcotest.(check bool) "non-empty" true (List.length shapes > 100);
  List.iter
    (fun (s : Space.shape) ->
      Alcotest.(check bool) "tT even" true (s.t_t mod 2 = 0);
      Alcotest.(check bool) "inner warp multiple" true (s.t_s.(1) mod 32 = 0);
      Alcotest.(check bool) "fits problem" true
        (s.t_s.(0) <= 512 && s.t_s.(1) <= 512);
      let fp =
        Footprint.of_config ~order:1 ~space:[| 512; 512 |]
          (Space.to_config s ~threads:[| 32 |])
      in
      Alcotest.(check bool) "within 48KB cap" true
        (fp.Footprint.shared_words <= params.Params.shared_mem_per_block))
    shapes

let test_space_3d () =
  let shapes = Space.shapes params problem3d in
  Alcotest.(check bool) "3D space non-empty" true (List.length shapes > 50);
  List.iter
    (fun (s : Space.shape) ->
      Alcotest.(check int) "rank 3" 3 (Array.length s.t_s);
      Alcotest.(check bool) "inner multiple" true (s.t_s.(2) mod 32 = 0))
    shapes

let test_thread_candidates () =
  Alcotest.(check int) "ten thread counts (Section 5.1)" 10
    (List.length Space.thread_candidates)

let test_baseline_size_and_bias () =
  let shapes = Baseline.tile_shapes params problem in
  Alcotest.(check int) "85 shapes (Section 5.1)" 85 (List.length shapes);
  let points = Baseline.data_points params problem in
  Alcotest.(check int) "850 data points" 850 (List.length points);
  (* the selection is footprint-biased: most shapes above 60% of the cap *)
  let frac_large =
    let fp s =
      (Footprint.of_config ~order:1 ~space:[| 512; 512 |]
         (Space.to_config s ~threads:[| 32 |]))
        .Footprint.shared_words
    in
    let large =
      List.filter
        (fun s ->
          float_of_int (fp s)
          >= 0.6 *. float_of_int params.Params.shared_mem_per_block)
        shapes
    in
    float_of_int (List.length large) /. 85.0
  in
  Alcotest.(check bool) "footprint-maximising bias" true (frac_large > 0.5)

let test_runner () =
  let cfg = C.make_exn ~t_t:8 ~t_s:[| 8; 64 |] ~threads:[| 256 |] in
  match Runner.measure arch problem cfg with
  | Error e -> Alcotest.failf "runner failed: %s" e
  | Ok m ->
      Alcotest.(check bool) "positive time" true (m.Runner.time_s > 0.0);
      Alcotest.(check bool) "gflops consistent" true
        (abs_float
           (m.Runner.gflops -. Runner.gflops_of_time problem m.Runner.time_s)
        < 1e-9);
      Alcotest.(check bool) "k at least 1" true (m.Runner.resident_blocks >= 1)

let test_runner_rejects () =
  let cfg = C.make_exn ~t_t:8 ~t_s:[| 600; 64 |] ~threads:[| 256 |] in
  match Runner.measure arch problem cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized tile measured"

let test_measure_prices_once () =
  (* the runner compiles to two kernels (green + yellow) and the 5-run
     measurement protocol prices each exactly once *)
  let cfg = C.make_exn ~t_t:8 ~t_s:[| 8; 64 |] ~threads:[| 256 |] in
  let before = Gpu.Simulator.invocations () in
  (match Runner.measure arch problem cfg with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "measure: %s" e);
  Alcotest.(check int) "two kernels priced once each" 2
    (Gpu.Simulator.invocations () - before)

let test_golden_bit_identity () =
  (* measurements frozen before the priced-kernel refactor: pricing once
     and replaying jitter is an exact factoring, so these are bit-exact *)
  let problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:128 in
  List.iter
    (fun (tt, ts, thr, expect) ->
      let cfg = C.make_exn ~t_t:tt ~t_s:ts ~threads:[| thr |] in
      match Runner.measure arch problem cfg with
      | Ok m ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "frozen %d-%dx%d-%d" tt ts.(0) ts.(1) thr)
            expect m.Runner.time_s
      | Error e -> Alcotest.failf "golden t_t=%d: %s" tt e)
    [
      (16, [| 16; 64 |], 256, 2.21214327483539811e-03);
      (8, [| 24; 96 |], 128, 3.54076699895410248e-03);
      (2, [| 1; 32 |], 32, 4.08022578475355432e-02);
    ];
  (* and an infeasible one stays infeasible *)
  let cfg = C.make_exn ~t_t:32 ~t_s:[| 48; 128 |] ~threads:[| 512 |] in
  match Runner.measure arch problem cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "infeasible golden accepted"

let test_shapes_frozen_counts () =
  (* the unreachable-branch cleanup in Space.shapes must not change the
     enumerated set; counts frozen before the cleanup *)
  let mb = Hextime_harness.Microbench.params arch in
  List.iter
    (fun (st, space, time, expect) ->
      let p = P.make st ~space ~time in
      Alcotest.(check int) (P.id p) expect (List.length (Space.shapes mb p)))
    [
      (S.heat2d, [| 512; 512 |], 128, 1664);
      (S.heat3d, [| 96; 96; 96 |], 32, 244);
      (S.jacobi1d, [| 65536 |], 512, 544);
    ]

let evaluated = Optimizer.evaluate_space params ~citer problem

let test_optimizer_best_and_within () =
  Alcotest.(check bool) "space evaluated" true (List.length evaluated > 100);
  let b = Optimizer.best evaluated in
  List.iter
    (fun (e : Optimizer.evaluated) ->
      Alcotest.(check bool) "best is minimal" true
        (b.Optimizer.prediction.Model.talg
         <= e.Optimizer.prediction.Model.talg +. 1e-15))
    evaluated;
  let within = Optimizer.within_fraction ~frac:0.10 evaluated in
  Alcotest.(check bool) "within set non-empty" true (List.length within >= 1);
  Alcotest.(check bool) "within contains best" true
    (List.exists (fun e -> e.Optimizer.shape = b.Optimizer.shape) within);
  List.iter
    (fun (e : Optimizer.evaluated) ->
      Alcotest.(check bool) "within 10%" true
        (e.Optimizer.prediction.Model.talg
         <= 1.1 *. b.Optimizer.prediction.Model.talg))
    within;
  (* sorted ascending *)
  let rec sorted = function
    | (a : Optimizer.evaluated) :: (b :: _ as rest) ->
        a.Optimizer.prediction.Model.talg <= b.Optimizer.prediction.Model.talg
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted within);
  (* Section 6: the candidate set is small (paper: < 200 points) *)
  Alcotest.(check bool) "candidate set small" true
    (Optimizer.candidate_count ~frac:0.10 evaluated < 200)

let test_optimizer_empty () =
  Alcotest.check_raises "empty best" (Invalid_argument "Optimizer.best: empty space")
    (fun () -> ignore (Optimizer.best []))

let ctx = { Strategies.arch; params; citer; problem }

let test_strategies_ordering () =
  let get r = match r with Ok o -> o | Error e -> Alcotest.failf "strategy failed: %s" e in
  let hhc = get (Strategies.hhc_default ctx) in
  let top10 = get (Strategies.model_top10 ctx) in
  let baseline = get (Strategies.baseline_best ctx) in
  (* the paper's Figure 6 ordering: model-guided search beats the untuned
     compiler default by a wide margin *)
  Alcotest.(check bool) "top10 beats HHC by > 20%" true
    (top10.Strategies.measurement.Runner.gflops
     > 1.2 *. hhc.Strategies.measurement.Runner.gflops);
  (* and is at least competitive with the baseline sweep *)
  Alcotest.(check bool) "top10 >= 97% of baseline" true
    (top10.Strategies.measurement.Runner.gflops
     >= 0.97 *. baseline.Strategies.measurement.Runner.gflops);
  (* it explores far fewer configurations than exhaustive search would *)
  Alcotest.(check bool) "top10 explored > 0" true (top10.Strategies.explored > 0);
  Alcotest.(check bool) "model prediction recorded" true
    (top10.Strategies.predicted_s <> None)

let test_exhaustive_capped () =
  match Strategies.exhaustive ~max_configs:50 ctx with
  | Error e -> Alcotest.failf "exhaustive failed: %s" e
  | Ok o ->
      Alcotest.(check bool) "cap respected" true (o.Strategies.explored <= 50)

let test_ampl_emission () =
  let text = Amplgen.emit params ~citer problem in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (Test_util.contains text needle))
    [ "minimize Talg"; "param nSM := 16"; "cap_block"; "ceil(S1 /" ]

let prop_model_more_permissive_than_machine =
  (* the model deliberately ignores registers and threads, so anything the
     compiler+simulator accept, the model must also accept (the converse
     fails: thread-slot/register-limited configs are invisible to it) *)
  QCheck.Test.make ~name:"measure Ok => predict Ok" ~count:80
    QCheck.(
      quad (int_range 1 10) (int_range 1 24) (int_range 1 8) (int_range 0 9))
    (fun (tth, t_s1, ts2m, thr_idx) ->
      let threads = List.nth Space.thread_candidates thr_idx in
      match
        C.make ~t_t:(2 * tth) ~t_s:[| t_s1; 32 * ts2m |] ~threads:[| threads |]
      with
      | Error _ -> true
      | Ok cfg -> (
          match Runner.measure arch problem cfg with
          | Error _ -> true
          | Ok _ -> (
              match Model.predict params ~citer problem cfg with
              | Ok _ -> true
              | Error _ -> false)))

let suite =
  [
    Alcotest.test_case "space constraints" `Quick test_space_constraints;
    Alcotest.test_case "space 3D" `Quick test_space_3d;
    Alcotest.test_case "thread candidates" `Quick test_thread_candidates;
    Alcotest.test_case "baseline set (Section 5.1)" `Quick test_baseline_size_and_bias;
    Alcotest.test_case "runner" `Quick test_runner;
    Alcotest.test_case "runner rejects" `Quick test_runner_rejects;
    Alcotest.test_case "runner prices once" `Quick test_measure_prices_once;
    Alcotest.test_case "golden bit-identity" `Quick test_golden_bit_identity;
    Alcotest.test_case "shapes frozen counts" `Quick test_shapes_frozen_counts;
    Alcotest.test_case "optimizer best/within" `Quick test_optimizer_best_and_within;
    Alcotest.test_case "optimizer empty" `Quick test_optimizer_empty;
    Alcotest.test_case "strategy ordering" `Slow test_strategies_ordering;
    Alcotest.test_case "exhaustive capped" `Quick test_exhaustive_capped;
    Alcotest.test_case "AMPL emission" `Quick test_ampl_emission;
    QCheck_alcotest.to_alcotest prop_model_more_permissive_than_machine;
  ]
