(* Unit and property tests for the prelude: integer helpers, deterministic
   hashing, statistics, and table rendering. *)

module Ints = Hextime_prelude.Ints
module Det_hash = Hextime_prelude.Det_hash
module Stats = Hextime_prelude.Stats
module Tabulate = Hextime_prelude.Tabulate

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_ceil_div () =
  check_int "exact" 4 (Ints.ceil_div 8 2);
  check_int "round up" 5 (Ints.ceil_div 9 2);
  check_int "zero numerator" 0 (Ints.ceil_div 0 7);
  check_int "one" 1 (Ints.ceil_div 1 7)

let test_round_up_down () =
  check_int "up exact" 32 (Ints.round_up 32 32);
  check_int "up" 64 (Ints.round_up 33 32);
  check_int "down" 32 (Ints.round_down 63 32);
  check_int "down exact" 64 (Ints.round_down 64 32);
  check_int "up from zero" 0 (Ints.round_up 0 8)

let test_clamp () =
  check_int "below" 2 (Ints.clamp ~lo:2 ~hi:9 0);
  check_int "above" 9 (Ints.clamp ~lo:2 ~hi:9 100);
  check_int "inside" 5 (Ints.clamp ~lo:2 ~hi:9 5)

let test_pow () =
  check_int "2^10" 1024 (Ints.pow 2 10);
  check_int "x^0" 1 (Ints.pow 7 0);
  check_int "1^n" 1 (Ints.pow 1 12)

let test_range () =
  Alcotest.(check (list int)) "simple" [ 1; 2; 3 ] (Ints.range 1 3);
  Alcotest.(check (list int)) "step" [ 2; 4; 6 ] (Ints.range ~step:2 2 6);
  Alcotest.(check (list int)) "empty" [] (Ints.range 3 1)

let test_sum_by () =
  check_int "sum" 6 (Ints.sum_by (fun x -> x) [ 1; 2; 3 ]);
  check_int "empty" 0 (Ints.sum_by (fun x -> x) [])

let prop_ceil_div =
  QCheck.Test.make ~name:"ceil_div is least q with q*b >= a" ~count:500
    QCheck.(pair (int_bound 100_000) (int_range 1 1000))
    (fun (a, b) ->
      let q = Ints.ceil_div a b in
      (q * b) >= a && ((q - 1) * b) < a)

let prop_round_up =
  QCheck.Test.make ~name:"round_up is a multiple and minimal" ~count:500
    QCheck.(pair (int_bound 100_000) (int_range 1 512))
    (fun (a, m) ->
      let r = Ints.round_up a m in
      r mod m = 0 && r >= a && r - m < a)

let test_hash_deterministic () =
  let h1 = Det_hash.create "seed" |> fun h -> Det_hash.mix_int h 42 in
  let h2 = Det_hash.create "seed" |> fun h -> Det_hash.mix_int h 42 in
  Alcotest.(check int64)
    "same inputs, same digest" (Det_hash.to_int64 h1) (Det_hash.to_int64 h2)

let test_hash_sensitivity () =
  let base = Det_hash.create "seed" in
  let a = Det_hash.to_int64 (Det_hash.mix_int base 1) in
  let b = Det_hash.to_int64 (Det_hash.mix_int base 2) in
  Alcotest.(check bool) "different inputs differ" true (a <> b)

let prop_uniform_range =
  QCheck.Test.make ~name:"uniform in [0,1)" ~count:500 QCheck.int (fun i ->
      let u = Det_hash.uniform (Det_hash.mix_int (Det_hash.create "u") i) in
      u >= 0.0 && u < 1.0)

let prop_jitter_range =
  QCheck.Test.make ~name:"jitter within amplitude" ~count:500 QCheck.int
    (fun i ->
      let j =
        Det_hash.jitter
          (Det_hash.mix_int (Det_hash.create "j") i)
          ~amplitude:0.05
      in
      j >= 0.95 && j <= 1.05)

let test_uniform_spread () =
  (* crude avalanche check: mean of many uniforms is near 1/2 *)
  let n = 2000 in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    sum :=
      !sum +. Det_hash.uniform (Det_hash.mix_int (Det_hash.create "spread") i)
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 0.5" mean)
    true
    (abs_float (mean -. 0.5) < 0.03)

let test_mean_stddev () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "stddev of constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "stddev simple" 1.0 (Stats.stddev [ 1.0; 3.0 ]);
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive element") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "median" 3.0 (Stats.percentile 50.0 xs);
  check_float "min" 1.0 (Stats.percentile 0.0 xs);
  check_float "max" 5.0 (Stats.percentile 100.0 xs);
  check_float "interpolated" 1.5 (Stats.percentile 12.5 xs)

let test_rmse () =
  check_float "perfect" 0.0 (Stats.rmse_relative [ (1.0, 1.0); (2.0, 2.0) ]);
  (* single pair with 10% error *)
  check_float "ten percent" 0.1 (Stats.rmse_relative [ (1.1, 1.0) ]);
  check_float "mare" 0.1 (Stats.mean_abs_relative_error [ (1.1, 1.0); (0.9, 1.0) ])

let test_pearson () =
  let pairs = List.init 10 (fun i -> (float_of_int i, float_of_int (2 * i))) in
  check_float "perfect correlation" 1.0 (Stats.pearson pairs);
  let anti = List.init 10 (fun i -> (float_of_int i, float_of_int (-i))) in
  check_float "perfect anticorrelation" (-1.0) (Stats.pearson anti)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.0; 0.1; 0.9; 1.0 ] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples counted" 4 total

let prop_rmse_nonneg =
  QCheck.Test.make ~name:"rmse is non-negative" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (pair (float_bound_exclusive 100.0) (float_range 0.1 100.0)))
    (fun pairs -> Stats.rmse_relative pairs >= 0.0)

let test_tabulate_render () =
  let t =
    Tabulate.create ~title:"T" [ ("a", Tabulate.Left); ("b", Tabulate.Right) ]
  in
  let t = Tabulate.add_row t [ "x"; "1" ] in
  let s = Tabulate.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool)
    "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| x | 1 |"))

let test_tabulate_arity () =
  let t = Tabulate.create [ ("a", Tabulate.Left) ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Tabulate.add_row: arity mismatch") (fun () ->
      ignore (Tabulate.add_row t [ "x"; "y" ]))

let test_cells () =
  Alcotest.(check string) "zero" "0" (Tabulate.float_cell 0.0);
  Alcotest.(check string) "plain" "1.5" (Tabulate.float_cell 1.5);
  Alcotest.(check string) "seconds ms" "1.500 ms" (Tabulate.seconds_cell 1.5e-3);
  Alcotest.(check string) "seconds ns" "2.000 ns" (Tabulate.seconds_cell 2e-9)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_ceil_div; prop_round_up; prop_uniform_range; prop_jitter_range;
      prop_rmse_nonneg ]

module Mj = Hextime_prelude.Minijson

let test_minijson_roundtrip () =
  let doc =
    Mj.Obj
      [
        ("schema", Mj.Str "hextime-bench-v1");
        ("pi", Mj.Num 3.14159265358979312);
        ("count", Mj.Num 850.0);
        ("ok", Mj.Bool true);
        ("nothing", Mj.Null);
        ("xs", Mj.List [ Mj.Num 1.0; Mj.Str "two\n\"quoted\""; Mj.Obj [] ]);
        ("empty", Mj.List []);
      ]
  in
  match Mj.parse (Mj.render doc) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok doc' ->
      Alcotest.(check bool) "structurally equal" true (doc = doc');
      (* %.17g keeps every float bit-exact through the text form *)
      Alcotest.(check (float 0.0)) "float exact" 3.14159265358979312
        (Option.get (Option.bind (Mj.member "pi" doc') Mj.number))

let test_minijson_accessors () =
  let doc = Mj.Obj [ ("a", Mj.Num 2.0); ("b", Mj.Str "x") ] in
  Alcotest.(check (option (float 0.0))) "number" (Some 2.0)
    (Option.bind (Mj.member "a" doc) Mj.number);
  Alcotest.(check (option string)) "string" (Some "x")
    (Option.bind (Mj.member "b" doc) Mj.string);
  Alcotest.(check bool) "missing member" true (Mj.member "c" doc = None);
  Alcotest.(check bool) "wrong type" true
    (Option.bind (Mj.member "b" doc) Mj.number = None);
  Alcotest.(check bool) "member of non-object" true
    (Mj.member "a" (Mj.Num 1.0) = None)

let test_minijson_errors () =
  let bad s =
    match Mj.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "{";
  bad "{\"a\": }";
  bad "[1, 2,]";
  bad "\"unterminated";
  bad "{} trailing";
  bad "nul";
  (match Mj.parse "  [1, {\"k\": null}, false]  " with
  | Ok (Mj.List [ Mj.Num 1.0; Mj.Obj [ ("k", Mj.Null) ]; Mj.Bool false ]) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.failf "valid doc rejected: %s" e)

let suite =
  [
    Alcotest.test_case "ceil_div" `Quick test_ceil_div;
    Alcotest.test_case "round_up/down" `Quick test_round_up_down;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "sum_by" `Quick test_sum_by;
    Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
    Alcotest.test_case "hash sensitivity" `Quick test_hash_sensitivity;
    Alcotest.test_case "uniform spread" `Quick test_uniform_spread;
    Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "rmse" `Quick test_rmse;
    Alcotest.test_case "pearson" `Quick test_pearson;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "tabulate render" `Quick test_tabulate_render;
    Alcotest.test_case "tabulate arity" `Quick test_tabulate_arity;
    Alcotest.test_case "cells" `Quick test_cells;
    Alcotest.test_case "minijson roundtrip" `Quick test_minijson_roundtrip;
    Alcotest.test_case "minijson accessors" `Quick test_minijson_accessors;
    Alcotest.test_case "minijson errors" `Quick test_minijson_errors;
  ]
  @ qsuite
