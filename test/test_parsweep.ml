(* The parallel cached sweep engine, and the sweep-layer bugfix batch:
   subsample endpoint coverage, campaign feasible/rejected accounting, the
   binding-kernel occupancy report, and serial/parallel/cold/warm result
   identity. *)

module Parsweep = Hextime_parsweep.Parsweep
module Pool = Hextime_parsweep.Pool
module Dpool = Hextime_parsweep.Dpool
module Cache = Hextime_parsweep.Cache
module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Lower = Hextime_tiling.Lower
module Runner = Hextime_tileopt.Runner
module Baseline = Hextime_tileopt.Baseline
module H = Hextime_harness

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hextime-parsweep-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* --- Sweep.subsample ------------------------------------------------------ *)

let test_subsample_endpoints () =
  let xs = List.init 100 Fun.id in
  let sub = H.Sweep.subsample (Some 7) xs in
  Alcotest.(check int) "length" 7 (List.length sub);
  Alcotest.(check int) "first kept" 0 (List.hd sub);
  Alcotest.(check int) "last kept" 99 (List.nth sub 6);
  (* order-preserving and duplicate-free when len > n *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing" true (increasing sub)

let test_subsample_small_n () =
  let xs = List.init 10 Fun.id in
  Alcotest.(check (list int)) "n = 1 keeps the last element" [ 9 ]
    (H.Sweep.subsample (Some 1) xs);
  Alcotest.(check (list int)) "n = 2 keeps both endpoints" [ 0; 9 ]
    (H.Sweep.subsample (Some 2) xs)

let test_subsample_identity () =
  let xs = List.init 5 Fun.id in
  Alcotest.(check (list int)) "n >= len is the identity" xs
    (H.Sweep.subsample (Some 5) xs);
  Alcotest.(check (list int)) "n > len is the identity" xs
    (H.Sweep.subsample (Some 50) xs);
  Alcotest.(check (list int)) "no limit is the identity" xs
    (H.Sweep.subsample None xs)

let test_subsample_validation () =
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Sweep.subsample: limit must be positive") (fun () ->
      ignore (H.Sweep.subsample (Some 0) [ 1; 2; 3 ]))

(* --- Pool ----------------------------------------------------------------- *)

let ok = Alcotest.(result int string)

let test_pool_parallel_matches_serial () =
  let tasks = Array.init 50 (fun i -> i) in
  let f i = (i * i) + 7 in
  let serial, _ = Pool.map ~jobs:1 ~f tasks in
  let parallel, stats = Pool.map ~jobs:4 ~f tasks in
  Alcotest.(check (array ok)) "point-for-point identical" serial parallel;
  Alcotest.(check int) "all completed" 50 stats.Pool.completed;
  Alcotest.(check int) "no crashes" 0 stats.Pool.crashed

let test_pool_exception_becomes_error () =
  let f i = if i = 3 then failwith "boom" else i in
  let results, stats = Pool.map ~jobs:2 ~f (Array.init 6 Fun.id) in
  (match results.(3) with
  | Error msg ->
      Alcotest.(check bool) "message preserved" true
        (Test_util.contains msg "boom")
  | Ok _ -> Alcotest.fail "exception not surfaced");
  Array.iteri
    (fun i r -> if i <> 3 then Alcotest.(check ok) "others fine" (Ok i) r)
    results;
  (* a caught exception is a completed task, not a worker death *)
  Alcotest.(check int) "no crashes" 0 stats.Pool.crashed

let test_pool_killed_worker_retried () =
  let marker = Filename.temp_file "hextime-retry" ".marker" in
  Sys.remove marker;
  let f i =
    if i = 5 && not (Sys.file_exists marker) then begin
      close_out (open_out marker);
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      0 (* unreachable *)
    end
    else i * 10
  in
  let results, stats = Pool.map ~jobs:2 ~retries:1 ~f (Array.init 10 Fun.id) in
  Sys.remove marker;
  Array.iteri
    (fun i r -> Alcotest.(check ok) "retry recovered" (Ok (i * 10)) r)
    results;
  Alcotest.(check bool) "death observed" true (stats.Pool.crashed >= 1);
  Alcotest.(check bool) "task retried" true (stats.Pool.retried >= 1);
  Alcotest.(check int) "nothing abandoned" 0 stats.Pool.failed

let test_pool_retries_exhausted () =
  let f i =
    if i = 3 then begin
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      0
    end
    else i
  in
  let results, stats = Pool.map ~jobs:2 ~retries:1 ~f (Array.init 6 Fun.id) in
  (match results.(3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "always-crashing task reported Ok");
  Array.iteri
    (fun i r -> if i <> 3 then Alcotest.(check ok) "others fine" (Ok i) r)
    results;
  Alcotest.(check int) "one task abandoned" 1 stats.Pool.failed;
  Alcotest.(check bool) "both attempts crashed" true (stats.Pool.crashed >= 2)

let test_pool_timeout () =
  let f i =
    if i = 2 then Unix.sleepf 30.0;
    i
  in
  let results, stats =
    Pool.map ~jobs:2 ~timeout_s:0.4 ~retries:0 ~f (Array.init 4 Fun.id)
  in
  (match results.(2) with
  | Error msg ->
      Alcotest.(check bool) "timeout named" true
        (Test_util.contains msg "timed out")
  | Ok _ -> Alcotest.fail "hung task reported Ok");
  Array.iteri
    (fun i r -> if i <> 2 then Alcotest.(check ok) "others fine" (Ok i) r)
    results;
  Alcotest.(check int) "one task abandoned" 1 stats.Pool.failed

(* chunking: many points per fork-task envelope amortizes the marshal and
   scheduling overhead; results, ordering and fault isolation must be
   unchanged relative to the one-task-per-message protocol *)

let test_pool_explicit_chunking_identity () =
  let tasks = Array.init 100 Fun.id in
  let f i = (i * 3) + 1 in
  let serial, _ = Pool.map ~jobs:1 ~f tasks in
  let chunked, stats = Pool.map ~jobs:4 ~chunk:8 ~f tasks in
  Alcotest.(check (array ok)) "chunked results point-for-point identical"
    serial chunked;
  Alcotest.(check int) "all completed" 100 stats.Pool.completed;
  Alcotest.(check int) "no crashes" 0 stats.Pool.crashed

let test_pool_chunked_crash_retried_as_singletons () =
  let marker = Filename.temp_file "hextime-chunk-retry" ".marker" in
  Sys.remove marker;
  let f i =
    if i = 7 && not (Sys.file_exists marker) then begin
      close_out (open_out marker);
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      0 (* unreachable *)
    end
    else i * 2
  in
  let results, stats =
    Pool.map ~jobs:2 ~chunk:5 ~retries:1 ~f (Array.init 20 Fun.id)
  in
  Sys.remove marker;
  (* the whole chunk died with the worker, but every task in it — poison
     point included — recovers via singleton retries *)
  Array.iteri
    (fun i r -> Alcotest.(check ok) "retry recovered" (Ok (i * 2)) r)
    results;
  Alcotest.(check bool) "death observed" true (stats.Pool.crashed >= 1);
  Alcotest.(check bool) "chunk tasks retried" true (stats.Pool.retried >= 1);
  Alcotest.(check int) "nothing abandoned" 0 stats.Pool.failed

(* --- Pool observability ----------------------------------------------------- *)

(* each failure mode must carry the dead worker's flight-recorder tail: the
   persisted span ring survives SIGKILL, so the failure report can say what
   the worker was doing when it died *)

let test_pool_crash_report_carries_flight_recorder () =
  let f i =
    if i = 3 then begin
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      0
    end
    else i
  in
  let results, _ = Pool.map ~jobs:2 ~retries:0 ~f (Array.init 6 Fun.id) in
  match results.(3) with
  | Ok _ -> Alcotest.fail "crashing task reported Ok"
  | Error msg ->
      Alcotest.(check bool) "crash named" true
        (Test_util.contains msg "worker crashed");
      Alcotest.(check bool) "flight recorder attached" true
        (Test_util.contains msg "flight recorder");
      Alcotest.(check bool) "final span is the fatal task" true
        (Test_util.contains msg "pool.task")

let test_pool_timeout_report_carries_flight_recorder () =
  let f i =
    if i = 2 then Unix.sleepf 30.0;
    i
  in
  let results, _ =
    Pool.map ~jobs:2 ~timeout_s:0.4 ~retries:0 ~f (Array.init 4 Fun.id)
  in
  match results.(2) with
  | Ok _ -> Alcotest.fail "hung task reported Ok"
  | Error msg ->
      Alcotest.(check bool) "timeout named" true
        (Test_util.contains msg "timed out");
      Alcotest.(check bool) "flight recorder attached" true
        (Test_util.contains msg "flight recorder")

let test_pool_retry_exhaustion_report_carries_flight_recorder () =
  let f i =
    if i = 1 then begin
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      0
    end
    else i
  in
  let results, stats = Pool.map ~jobs:2 ~retries:2 ~f (Array.init 4 Fun.id) in
  Alcotest.(check bool) "every retry crashed" true (stats.Pool.crashed >= 3);
  match results.(1) with
  | Ok _ -> Alcotest.fail "always-crashing task reported Ok"
  | Error msg ->
      Alcotest.(check bool) "flight recorder attached after final retry" true
        (Test_util.contains msg "flight recorder")

let obs_work_counter = Hextime_obs.Metrics.counter "test.parsweep.work"

(* the fork-boundary fix: worker counter deltas are shipped back with each
   result and absorbed, so parent-side totals match the in-process path *)
let test_pool_counters_survive_fork () =
  let f _ =
    Hextime_obs.Metrics.incr obs_work_counter ~by:2;
    0
  in
  let count run =
    let before = Hextime_obs.Metrics.value obs_work_counter in
    run ();
    Hextime_obs.Metrics.value obs_work_counter - before
  in
  let serial =
    count (fun () -> ignore (Pool.map ~jobs:1 ~f (Array.init 25 Fun.id)))
  in
  let forked =
    count (fun () -> ignore (Pool.map ~jobs:3 ~f (Array.init 25 Fun.id)))
  in
  Alcotest.(check int) "in-process total" 50 serial;
  Alcotest.(check int) "forked total equals in-process total" serial forked

let test_pool_ships_worker_spans () =
  Hextime_obs.Trace.enable ();
  Fun.protect ~finally:(fun () ->
      Hextime_obs.Trace.disable ();
      Hextime_obs.Trace.reset ())
  @@ fun () ->
  Hextime_obs.Trace.reset ();
  let f i = Hextime_obs.Trace.with_span "test.span" (fun () -> i) in
  ignore (Pool.map ~jobs:2 ~f (Array.init 8 Fun.id));
  let spans =
    List.filter
      (fun e -> e.Hextime_obs.Trace.ev_name = "test.span")
      (Hextime_obs.Trace.events ())
  in
  Alcotest.(check int) "every worker span shipped to the parent" 8
    (List.length spans);
  let parent = Unix.getpid () in
  Alcotest.(check bool) "spans carry worker pids, not the parent's" true
    (List.for_all (fun e -> e.Hextime_obs.Trace.ev_pid <> parent) spans)

(* --- Cache ---------------------------------------------------------------- *)

let test_cache_roundtrip () =
  let c = Cache.create ~dir:(fresh_dir ()) () in
  Alcotest.(check (option int)) "miss on empty" None (Cache.get c ~key:"k");
  Cache.put c ~key:"k" 42;
  Alcotest.(check (option int)) "hit after put" (Some 42) (Cache.get c ~key:"k");
  Alcotest.(check (option int)) "other key misses" None (Cache.get c ~key:"k2");
  Alcotest.(check int) "one write" 1 (Cache.writes c);
  Alcotest.(check int) "one hit" 1 (Cache.hits c);
  Alcotest.(check int) "two misses" 2 (Cache.misses c)

let test_cache_corrupt_entry_is_a_miss () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  Cache.put c ~key:"k" 42;
  Array.iter
    (fun f ->
      let oc = open_out_bin (Filename.concat dir f) in
      output_string oc "not a marshalled entry";
      close_out oc)
    (Sys.readdir dir);
  Alcotest.(check (option int)) "corrupt entry misses" None
    (Cache.get c ~key:"k");
  (* and the slot is rewritable *)
  Cache.put c ~key:"k" 43;
  Alcotest.(check (option int)) "recovered" (Some 43) (Cache.get c ~key:"k")

let test_map_resumes_from_cache () =
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let exec = { Parsweep.serial with Parsweep.cache = Some cache } in
  let calls = ref 0 in
  let f i =
    incr calls;
    i * 3
  in
  let key i = Printf.sprintf "resume|%d" i in
  (* a partial sweep completes five points, then "crashes" *)
  let partial, s1 = Parsweep.map exec ~key ~f (List.init 5 Fun.id) in
  Alcotest.(check int) "partial computed" 5 s1.Parsweep.computed;
  Alcotest.(check (list ok)) "partial results"
    (List.init 5 (fun i -> Ok (i * 3)))
    partial;
  (* the restarted full sweep only executes the remaining points *)
  calls := 0;
  let full, s2 = Parsweep.map exec ~key ~f (List.init 12 Fun.id) in
  Alcotest.(check (list ok)) "full results"
    (List.init 12 (fun i -> Ok (i * 3)))
    full;
  Alcotest.(check int) "first five answered from cache" 5
    s2.Parsweep.cache_hits;
  Alcotest.(check int) "only the rest executed" 7 s2.Parsweep.computed;
  Alcotest.(check int) "f called once per missing point" 7 !calls

(* --- the sweep through the engine ----------------------------------------- *)

let experiment =
  {
    H.Experiments.arch = Gpu.Arch.gtx980;
    problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:128;
  }

let check_sweeps_equal label (a : H.Sweep.sweep) (b : H.Sweep.sweep) =
  Alcotest.(check int)
    (label ^ ": same population")
    (List.length a.H.Sweep.points)
    (List.length b.H.Sweep.points);
  Alcotest.(check int)
    (label ^ ": same model drops")
    a.H.Sweep.infeasible_model b.H.Sweep.infeasible_model;
  Alcotest.(check int)
    (label ^ ": same runner drops")
    a.H.Sweep.infeasible_runner b.H.Sweep.infeasible_runner;
  List.iter2
    (fun (p : H.Sweep.point) (q : H.Sweep.point) ->
      Alcotest.(check string)
        (label ^ ": same config")
        (Config.id p.H.Sweep.config)
        (Config.id q.H.Sweep.config);
      Alcotest.(check bool)
        (label ^ ": bit-identical prediction")
        true
        (p.H.Sweep.predicted = q.H.Sweep.predicted);
      Alcotest.(check bool)
        (label ^ ": bit-identical measurement")
        true
        (p.H.Sweep.measured = q.H.Sweep.measured))
    a.H.Sweep.points b.H.Sweep.points

let test_sweep_parallel_identical_to_serial () =
  let serial = H.Sweep.baseline experiment in
  let parallel =
    H.Sweep.baseline ~exec:{ Parsweep.serial with Parsweep.jobs = 3 }
      experiment
  in
  Alcotest.(check bool) "sweep non-trivial" true
    (List.length serial.H.Sweep.points > 100);
  check_sweeps_equal "parallel vs serial" serial parallel

let test_sweep_warm_cache_never_simulates () =
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let exec = { Parsweep.serial with Parsweep.cache = Some cache } in
  let cold, cold_stats = H.Sweep.run ~limit:60 ~exec experiment in
  Alcotest.(check int) "cold run computes everything" 0
    cold_stats.Parsweep.cache_hits;
  Alcotest.(check bool) "cold run executed points" true
    (cold_stats.Parsweep.computed > 0);
  (* warm run: every point must come from the cache, with zero simulator
     invocations in this process (micro-benchmark memos are warm by now) *)
  let before = Gpu.Simulator.invocations () in
  let warm, warm_stats = H.Sweep.run ~limit:60 ~exec experiment in
  Alcotest.(check int) "no simulator call on a warm cache" before
    (Gpu.Simulator.invocations ());
  Alcotest.(check int) "nothing recomputed" 0 warm_stats.Parsweep.computed;
  Alcotest.(check int) "everything from the cache"
    warm_stats.Parsweep.total warm_stats.Parsweep.cache_hits;
  check_sweeps_equal "warm vs cold" cold warm

(* --- campaign accounting --------------------------------------------------- *)

let test_campaign_accounts_for_every_configuration () =
  let e = H.Campaign.estimate H.Experiments.Ci in
  let enumerated =
    List.fold_left
      (fun acc (ex : H.Experiments.t) ->
        let params = H.Microbench.params ex.arch in
        acc + List.length (Baseline.data_points params ex.problem))
      0
      (H.Experiments.all H.Experiments.Ci)
  in
  (* feasible + rejected partition the enumeration: nothing double-counted,
     nothing silently dropped *)
  Alcotest.(check int) "feasible + rejected = enumerated" enumerated
    (e.H.Campaign.data_points + e.H.Campaign.rejected_points);
  Alcotest.(check (float 1e-9)) "only feasible points billed for compilation"
    (float_of_int e.H.Campaign.data_points *. 20.0 /. 3600.0)
    e.H.Campaign.compile_hours

(* --- the binding-kernel occupancy report ----------------------------------- *)

let test_runner_reports_binding_kernel () =
  let problem = P.make S.heat2d ~space:[| 2048; 2048 |] ~time:256 in
  let cfg = Config.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  let arch = Gpu.Arch.gtx980 in
  let m =
    match Runner.measure arch problem cfg with
    | Ok m -> m
    | Error e -> Alcotest.failf "measure: %s" e
  in
  let kernels =
    match Lower.compile problem cfg with
    | Ok c -> Lower.kernel_sequence c
    | Error e -> Alcotest.failf "compile: %s" e
  in
  let stats =
    match Gpu.Simulator.run_sequence ~jitter:false arch kernels with
    | Ok s -> s
    | Error e -> Alcotest.failf "run_sequence: %s" e
  in
  let binding =
    match stats.Gpu.Simulator.kernels with
    | [] -> Alcotest.fail "no kernels"
    | k :: rest ->
        List.fold_left
          (fun (acc : Gpu.Simulator.kernel_stats)
               (ks : Gpu.Simulator.kernel_stats) ->
            if ks.Gpu.Simulator.resident_blocks < acc.Gpu.Simulator.resident_blocks
            then ks
            else acc)
          k rest
  in
  Alcotest.(check int) "occupancy from the binding kernel"
    binding.Gpu.Simulator.resident_blocks m.Runner.resident_blocks;
  Alcotest.(check bool) "limit diagnosis from the same kernel" true
    (binding.Gpu.Simulator.limiting = m.Runner.limiting)

(* --- Dpool (the domains backend) -------------------------------------------- *)

let test_dpool_matches_serial () =
  let tasks = Array.init 50 (fun i -> i) in
  let f i = (i * i) + 7 in
  let serial, _ = Pool.map ~jobs:1 ~f tasks in
  let domains, stats = Dpool.map ~jobs:4 ~f tasks in
  Alcotest.(check (array ok)) "point-for-point identical" serial domains;
  Alcotest.(check int) "all completed" 50 stats.Pool.completed;
  Alcotest.(check int) "no crashes" 0 stats.Pool.crashed;
  Alcotest.(check int) "nothing abandoned" 0 stats.Pool.failed

let test_dpool_exception_becomes_error () =
  let f i = if i = 3 then failwith "boom" else i in
  let results, stats = Dpool.map ~jobs:2 ~f (Array.init 6 Fun.id) in
  (match results.(3) with
  | Error msg ->
      Alcotest.(check bool) "message preserved" true
        (Test_util.contains msg "boom")
  | Ok _ -> Alcotest.fail "exception not surfaced");
  Array.iteri
    (fun i r -> if i <> 3 then Alcotest.(check ok) "others fine" (Ok i) r)
    results;
  (* a caught exception is a completed task; domains can't crash a worker *)
  Alcotest.(check int) "no crashes" 0 stats.Pool.crashed

(* the Atomic-counter requirement: domain workers bump the same process-wide
   counters the serial path does, so serial == fork == domains totals hold *)
let test_dpool_counters_match_serial () =
  let f _ =
    Hextime_obs.Metrics.incr obs_work_counter ~by:2;
    0
  in
  let count run =
    let before = Hextime_obs.Metrics.value obs_work_counter in
    run ();
    Hextime_obs.Metrics.value obs_work_counter - before
  in
  let serial =
    count (fun () -> ignore (Pool.map ~jobs:1 ~f (Array.init 25 Fun.id)))
  in
  let domains =
    count (fun () -> ignore (Dpool.map ~jobs:3 ~f (Array.init 25 Fun.id)))
  in
  Alcotest.(check int) "in-process total" 50 serial;
  Alcotest.(check int) "domains total equals in-process total" serial domains

let test_sweep_domains_identical_to_serial () =
  let serial = H.Sweep.baseline experiment in
  let domains =
    H.Sweep.baseline
      ~exec:{ Parsweep.serial with Parsweep.jobs = 3; backend = `Domains }
      experiment
  in
  Alcotest.(check bool) "sweep non-trivial" true
    (List.length serial.H.Sweep.points > 100);
  check_sweeps_equal "domains vs serial" serial domains

(* --- incremental re-sweeps --------------------------------------------------- *)

(* the acceptance criterion for digest keying: an edit that leaves every
   pricing input unchanged (here: renaming the architecture) re-evaluates
   zero points on a warm cache *)
let test_pricing_neutral_rename_stays_warm () =
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let exec = { Parsweep.serial with Parsweep.cache = Some cache } in
  let cold, cold_stats = H.Sweep.run ~limit:40 ~exec experiment in
  Alcotest.(check bool) "cold run computed" true
    (cold_stats.Parsweep.computed > 0);
  let renamed =
    {
      experiment with
      H.Experiments.arch = { Gpu.Arch.gtx980 with Gpu.Arch.name = "gtx980-renamed" };
    }
  in
  let warm, warm_stats = H.Sweep.run ~limit:40 ~exec renamed in
  Alcotest.(check int) "rename re-prices nothing" 0 warm_stats.Parsweep.computed;
  Alcotest.(check int) "every point answered warm" warm_stats.Parsweep.total
    warm_stats.Parsweep.cache_hits;
  check_sweeps_equal "renamed warm vs cold" cold warm

(* --- cache hygiene ----------------------------------------------------------- *)

let test_cache_sweeps_stale_tmp_files () =
  let dir = fresh_dir () in
  (* a real dead pid: fork a child and reap it *)
  let dead_pid =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid
  in
  let write name =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc "half-written entry";
    close_out oc
  in
  let dead_tmp = Printf.sprintf "00000000deadbeef.bin.tmp.%d" dead_pid in
  let live_tmp = Printf.sprintf "00000000cafef00d.bin.tmp.%d" (Unix.getpid ()) in
  write dead_tmp;
  write live_tmp;
  write "0000000000bad1de.bin.tmp.notapid";
  let c = Cache.create ~dir () in
  let files = Array.to_list (Sys.readdir dir) in
  Alcotest.(check bool) "dead writer's temp removed" false
    (List.mem dead_tmp files);
  Alcotest.(check bool) "live writer's temp kept" true (List.mem live_tmp files);
  Alcotest.(check bool) "unparseable temp removed" false
    (List.mem "0000000000bad1de.bin.tmp.notapid" files);
  Cache.put c ~key:"k" 1;
  Alcotest.(check (option int)) "cache functional after the sweep" (Some 1)
    (Cache.get c ~key:"k")

let test_default_jobs_env_validation () =
  let with_env v f =
    let old = Sys.getenv_opt "HEXTIME_JOBS" in
    Unix.putenv "HEXTIME_JOBS" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "HEXTIME_JOBS" (Option.value old ~default:""))
      f
  in
  (* "" parses as no override, so this is the machine default *)
  let machine = with_env "" (fun () -> Pool.default_jobs ()) in
  Alcotest.(check bool) "machine default positive" true (machine >= 1);
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "HEXTIME_JOBS=%S falls back to the machine default" v)
        machine
        (with_env v (fun () -> Pool.default_jobs ())))
    [ "0"; "-3"; "garbage" ];
  Alcotest.(check int) "valid override honoured" 4
    (with_env "4" (fun () -> Pool.default_jobs ()))

(* --- cache round-trips under QCheck ------------------------------------------ *)

let copy_file src dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc bytes;
  close_out oc

let prop_cache_roundtrip_and_collision =
  QCheck.Test.make ~name:"round-trip + fabricated filename collisions" ~count:25
    QCheck.(pair (pair small_string small_string) (small_list small_int))
    (fun ((k1, k2), v) ->
      let c = Cache.create ~dir:(fresh_dir ()) () in
      Cache.put c ~key:k1 v;
      let roundtrip = (Cache.get c ~key:k1 : int list option) = Some v in
      let collision_safe =
        k1 = k2
        || begin
             (* simulate two keys hashing to the same filename: k1's entry
                lands where a put of k2 would; the stored key is verified on
                read, so the collision must read as a miss, never as k1's
                value *)
             copy_file (Cache.entry_path c k1) (Cache.entry_path c k2);
             (Cache.get c ~key:k2 : int list option) = None
           end
      in
      roundtrip && collision_safe)

let prop_cache_truncated_entry_is_a_miss =
  QCheck.Test.make ~name:"truncated entries miss, never crash" ~count:25
    QCheck.(pair small_string (int_bound 64))
    (fun (k, cut) ->
      let c = Cache.create ~dir:(fresh_dir ()) () in
      Cache.put c ~key:k [ 1; 2; 3 ];
      let path = Cache.entry_path c k in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let keep = min cut (max 0 (n - 1)) in
      let bytes = really_input_string ic keep in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      (Cache.get c ~key:k : int list option) = None)

let suite =
  [
    Alcotest.test_case "subsample endpoints" `Quick test_subsample_endpoints;
    Alcotest.test_case "subsample small n" `Quick test_subsample_small_n;
    Alcotest.test_case "subsample identity" `Quick test_subsample_identity;
    Alcotest.test_case "subsample validation" `Quick test_subsample_validation;
    Alcotest.test_case "pool parallel = serial" `Quick
      test_pool_parallel_matches_serial;
    Alcotest.test_case "pool exception -> Error" `Quick
      test_pool_exception_becomes_error;
    Alcotest.test_case "pool killed worker retried" `Quick
      test_pool_killed_worker_retried;
    Alcotest.test_case "pool retries exhausted" `Quick
      test_pool_retries_exhausted;
    Alcotest.test_case "pool timeout" `Quick test_pool_timeout;
    Alcotest.test_case "pool explicit chunking identity" `Quick
      test_pool_explicit_chunking_identity;
    Alcotest.test_case "pool chunked crash retried as singletons" `Quick
      test_pool_chunked_crash_retried_as_singletons;
    Alcotest.test_case "cache roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache corrupt entry" `Quick
      test_cache_corrupt_entry_is_a_miss;
    Alcotest.test_case "map resumes from cache" `Quick
      test_map_resumes_from_cache;
    (* forks a child for a dead pid, so it must run before any test that
       spawns domains: OCaml 5 forbids Unix.fork once domains exist *)
    Alcotest.test_case "stale write-temps swept" `Quick
      test_cache_sweeps_stale_tmp_files;
    Alcotest.test_case "sweep parallel = serial" `Quick
      test_sweep_parallel_identical_to_serial;
    Alcotest.test_case "warm cache never simulates" `Quick
      test_sweep_warm_cache_never_simulates;
    Alcotest.test_case "campaign accounts every configuration" `Quick
      test_campaign_accounts_for_every_configuration;
    Alcotest.test_case "runner reports binding kernel" `Quick
      test_runner_reports_binding_kernel;
    Alcotest.test_case "dpool = serial" `Quick test_dpool_matches_serial;
    Alcotest.test_case "dpool exception -> Error" `Quick
      test_dpool_exception_becomes_error;
    Alcotest.test_case "dpool counters = serial" `Quick
      test_dpool_counters_match_serial;
    Alcotest.test_case "sweep domains = serial" `Quick
      test_sweep_domains_identical_to_serial;
    Alcotest.test_case "pricing-neutral rename stays warm" `Quick
      test_pricing_neutral_rename_stays_warm;
    Alcotest.test_case "HEXTIME_JOBS validation" `Quick
      test_default_jobs_env_validation;
    QCheck_alcotest.to_alcotest prop_cache_roundtrip_and_collision;
    QCheck_alcotest.to_alcotest prop_cache_truncated_entry_is_a_miss;
  ]
