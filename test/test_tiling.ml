(* Config validation, footprints (the paper's M_tile / m_i / m_o formulas),
   register estimation, and lowering to GPU workloads. *)

module C = Hextime_tiling.Config
module F = Hextime_tiling.Footprint
module Regalloc = Hextime_tiling.Regalloc
module L = Hextime_tiling.Lower
module Hexgeom = Hextime_tiling.Hexgeom
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module Gpu = Hextime_gpu

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" e

let test_config_constraints () =
  (match C.make ~t_t:3 ~t_s:[| 4; 32 |] ~threads:[| 64 |] with
  | Error msg ->
      Alcotest.(check string) "odd tT" "t_t must be even (hexagonal tiling)" msg
  | Ok _ -> Alcotest.fail "odd t_t accepted");
  (match C.make ~t_t:4 ~t_s:[| 4; 33 |] ~threads:[| 64 |] with
  | Error msg ->
      Alcotest.(check string) "warp multiple"
        "innermost tile size must be a multiple of 32" msg
  | Ok _ -> Alcotest.fail "non-multiple inner accepted");
  (* 1D has no warp-multiple constraint *)
  (match C.make ~t_t:4 ~t_s:[| 5 |] ~threads:[| 64 |] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "1D config rejected: %s" e);
  (match C.make ~t_t:4 ~t_s:[| 0; 32 |] ~threads:[| 64 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero tile accepted")

let test_config_id_threads () =
  let c = C.make_exn ~t_t:8 ~t_s:[| 24; 64 |] ~threads:[| 32; 4 |] in
  Alcotest.(check string) "id" "tT8-tS24x64-thr32x4" (C.id c);
  Alcotest.(check int) "total threads" 128 (C.total_threads c);
  Alcotest.(check int) "rank" 2 (C.rank c)

let test_footprint_1d () =
  (* Equation 7: mi = mo = tS + 2 tT; M_tile = 2 (tS + tT + 1) *)
  let cfg = C.make_exn ~t_t:8 ~t_s:[| 16 |] ~threads:[| 32 |] in
  let fp = F.of_config ~order:1 ~space:[| 1024 |] cfg in
  Alcotest.(check int) "mi" (16 + (2 * 8)) fp.F.input_words;
  Alcotest.(check int) "mo = mi" fp.F.input_words fp.F.output_words;
  Alcotest.(check int) "Mtile" (2 * (16 + 8 + 1)) fp.F.shared_words;
  Alcotest.(check int) "chunks" 1 fp.F.chunks;
  Alcotest.(check int) "mio per tile" (2 * (16 + 16)) (F.io_words_per_tile fp)

let test_footprint_2d () =
  (* Equations 13, 18, 19 *)
  let cfg = C.make_exn ~t_t:8 ~t_s:[| 16; 64 |] ~threads:[| 128 |] in
  let fp = F.of_config ~order:1 ~space:[| 4096; 4096 |] cfg in
  Alcotest.(check int) "mi = tS2 (tS1 + 2 tT)" (64 * (16 + 16)) fp.F.input_words;
  Alcotest.(check int) "Mtile = 2 (tS1+tT+1)(tS2+tT+1)"
    (2 * (16 + 8 + 1) * (64 + 8 + 1))
    fp.F.shared_words;
  (* chunks = ceil((S2 + tT) / tS2) *)
  Alcotest.(check int) "chunks" ((4096 + 8 + 63) / 64) fp.F.chunks;
  Alcotest.(check int) "inner stride padded" (64 + 8 + 1) fp.F.inner_stride

let test_footprint_3d () =
  (* Equations 23, 24 *)
  let cfg = C.make_exn ~t_t:4 ~t_s:[| 4; 8; 32 |] ~threads:[| 128 |] in
  let fp = F.of_config ~order:1 ~space:[| 384; 384; 384 |] cfg in
  Alcotest.(check int) "mi = tS2 tS3 (tS1 + 2 tT)" (8 * 32 * (4 + 8))
    fp.F.input_words;
  (* Equation 23: ceil of the product of ratios *)
  let expected =
    int_of_float
      (ceil (float_of_int (384 + 4) /. 8.0 *. (float_of_int (384 + 4) /. 32.0)))
  in
  Alcotest.(check int) "Nsslabs" expected fp.F.chunks

let test_footprint_order_scaling () =
  let cfg = C.make_exn ~t_t:4 ~t_s:[| 8 |] ~threads:[| 32 |] in
  let o1 = F.of_config ~order:1 ~space:[| 256 |] cfg in
  let o2 = F.of_config ~order:2 ~space:[| 256 |] cfg in
  Alcotest.(check int) "order-1 mi" (8 + 8) o1.F.input_words;
  Alcotest.(check int) "order-2 mi" (8 + 16) o2.F.input_words;
  Alcotest.(check bool) "order grows Mtile" true
    (o2.F.shared_words > o1.F.shared_words)

let test_regalloc_monotone () =
  let r threads =
    Regalloc.per_thread ~stencil_loads:5 ~rank:2 ~max_row_points:2048 ~threads
  in
  Alcotest.(check bool) "fewer threads, more registers" true (r 64 > r 512);
  Alcotest.(check bool) "positive" true (r 1024 > 0);
  let small =
    Regalloc.per_thread ~stencil_loads:5 ~rank:2 ~max_row_points:64
      ~threads:256
  in
  Alcotest.(check bool) "small rows fit comfortably" true (small < 64)

let problem_2d = P.make S.heat2d ~space:[| 512; 512 |] ~time:64
let cfg_2d = C.make_exn ~t_t:8 ~t_s:[| 8; 64 |] ~threads:[| 128 |]

let test_lower_workload_rows () =
  let w = ok (L.workload problem_2d cfg_2d ~family:Hexgeom.Green) in
  (* rows per chunk: tT/2 widths, each twice, times the inner extent *)
  Alcotest.(check int) "row groups" 4 (List.length w.Gpu.Workload.rows);
  Alcotest.(check int) "rows total" 8 (Gpu.Workload.row_count w);
  (match w.Gpu.Workload.rows with
  | first :: _ ->
      Alcotest.(check int) "base row points" (8 * 64) first.Gpu.Workload.points;
      Alcotest.(check int) "pairs" 2 first.Gpu.Workload.repeats
  | [] -> Alcotest.fail "no rows");
  Alcotest.(check int) "threads" 128 w.Gpu.Workload.threads

let test_lower_families_differ () =
  let g = ok (L.workload problem_2d cfg_2d ~family:Hexgeom.Green) in
  let y = ok (L.workload problem_2d cfg_2d ~family:Hexgeom.Yellow) in
  let base rows =
    match rows with
    | (r : Gpu.Workload.row) :: _ -> r.points
    | [] -> 0
  in
  (* yellow base is 2*order wider, scaled by the inner extent *)
  Alcotest.(check int) "yellow wider"
    (base g.Gpu.Workload.rows + (2 * 64))
    (base y.Gpu.Workload.rows)

let test_lower_compile_counts () =
  let c = ok (L.compile problem_2d cfg_2d) in
  (* launches: ceil(T/tT) of each family *)
  Alcotest.(check int) "green launches" 8 c.L.green_launches;
  Alcotest.(check int) "yellow launches" 8 c.L.yellow_launches;
  Alcotest.(check int) "blocks per wavefront"
    (Hexgeom.wavefront_width ~order:1 ~t_s:8 ~t_t:8 ~space:512)
    c.L.blocks_per_wavefront;
  let seq = L.kernel_sequence c in
  Alcotest.(check int) "two kernels" 2 (List.length seq)

let test_lower_rejects () =
  (match L.compile problem_2d (C.make_exn ~t_t:4 ~t_s:[| 4 |] ~threads:[| 32 |]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rank mismatch accepted");
  match
    L.compile problem_2d (C.make_exn ~t_t:4 ~t_s:[| 600; 32 |] ~threads:[| 32 |])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized tile accepted"

let test_lower_io_matches_footprint () =
  let w = ok (L.workload problem_2d cfg_2d ~family:Hexgeom.Green) in
  let fp = F.of_config ~order:1 ~space:[| 512; 512 |] cfg_2d in
  Alcotest.(check int) "input words" fp.F.input_words
    w.Gpu.Workload.input.Gpu.Memory.words;
  Alcotest.(check int) "chunks" fp.F.chunks w.Gpu.Workload.chunks;
  Alcotest.(check int) "shared" fp.F.shared_words w.Gpu.Workload.shared_words

let prop_footprint_positive =
  QCheck.Test.make ~name:"footprints are positive and monotone in t_t"
    ~count:100
    QCheck.(triple (int_range 1 16) (int_range 1 8) (int_range 1 8))
    (fun (t_s1, tth, ts2m) ->
      let t_t = 2 * tth in
      let t_s2 = 32 * ts2m in
      let mk tt =
        F.of_config ~order:1 ~space:[| 4096; 4096 |]
          (C.make_exn ~t_t:tt ~t_s:[| t_s1; t_s2 |] ~threads:[| 64 |])
      in
      let a = mk t_t and b = mk (t_t + 2) in
      a.F.input_words > 0 && a.F.shared_words > 0
      && b.F.input_words > a.F.input_words
      && b.F.shared_words > a.F.shared_words)

let suite =
  [
    Alcotest.test_case "config constraints" `Quick test_config_constraints;
    Alcotest.test_case "config id/threads" `Quick test_config_id_threads;
    Alcotest.test_case "footprint 1D (eq 7)" `Quick test_footprint_1d;
    Alcotest.test_case "footprint 2D (eqs 13/18/19)" `Quick test_footprint_2d;
    Alcotest.test_case "footprint 3D (eqs 23/24)" `Quick test_footprint_3d;
    Alcotest.test_case "footprint order scaling" `Quick test_footprint_order_scaling;
    Alcotest.test_case "regalloc monotone" `Quick test_regalloc_monotone;
    Alcotest.test_case "lower rows" `Quick test_lower_workload_rows;
    Alcotest.test_case "lower families" `Quick test_lower_families_differ;
    Alcotest.test_case "lower counts" `Quick test_lower_compile_counts;
    Alcotest.test_case "lower rejects" `Quick test_lower_rejects;
    Alcotest.test_case "lower io = footprint" `Quick test_lower_io_matches_footprint;
    QCheck_alcotest.to_alcotest prop_footprint_positive;
  ]
