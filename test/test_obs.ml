(* hexscope: the metrics registry, the span tracer, Minijson's non-finite
   rendering, and the cost-attribution producers (the analytical model and
   the simulator), whose component sums must rebuild the predicted totals. *)

module Obs = Hextime_obs
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Attribution = Obs.Attribution
module Minijson = Hextime_prelude.Minijson
module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Lower = Hextime_tiling.Lower
module Model = Hextime_core.Model
module H = Hextime_harness
module Parsweep = Hextime_parsweep.Parsweep

(* tracing is process-global state; every test that enables it must leave
   it the way it found it, or an unrelated test's spans leak into ours *)
let with_tracing f =
  Trace.enable ();
  Fun.protect ~finally:(fun () -> Trace.disable ()) f

(* --- Metrics --------------------------------------------------------------- *)

let test_counter_gauge_histogram () =
  let c = Metrics.counter "test.obs.counter" in
  let base = Metrics.value c in
  Metrics.incr c;
  Metrics.incr c ~by:41;
  Alcotest.(check int) "counter accumulates" (base + 42) (Metrics.value c);
  Alcotest.(check bool) "handles are interned" true
    (Metrics.value (Metrics.counter "test.obs.counter") = base + 42);
  Metrics.set (Metrics.gauge "test.obs.gauge") 2.5;
  let h = Metrics.histogram "test.obs.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 3.9 ];
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int)) "counter in snapshot" (Some (base + 42))
    (Metrics.find_counter snap "test.obs.counter");
  Alcotest.(check (option (float 1e-12))) "gauge in snapshot" (Some 2.5)
    (List.assoc_opt "test.obs.gauge" snap.Metrics.snap_gauges);
  match List.assoc_opt "test.obs.hist" snap.Metrics.snap_histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
      Alcotest.(check int) "histogram count" 4 hs.Metrics.hs_count;
      Alcotest.(check (float 1e-12)) "histogram sum" 8.9 hs.Metrics.hs_sum;
      Alcotest.(check (float 1e-12)) "histogram min" 0.5 hs.Metrics.hs_min;
      Alcotest.(check (float 1e-12)) "histogram max" 3.9 hs.Metrics.hs_max;
      (* 1.5 lands in [1,2); 3.0 and 3.9 share [2,4) *)
      Alcotest.(check int) "log2 bucketing groups same-magnitude values" 3
        (List.length hs.Metrics.hs_buckets);
      Alcotest.(check int) "largest bucket holds two" 2
        (List.fold_left (fun acc (_, n) -> max acc n) 0 hs.Metrics.hs_buckets)

let test_merge_and_absorb () =
  (* literal snapshots: merge semantics without registry cross-talk *)
  let hist ~count ~sum ~mn ~mx ~buckets =
    {
      Metrics.hs_count = count;
      hs_sum = sum;
      hs_min = mn;
      hs_max = mx;
      hs_buckets = buckets;
    }
  in
  let a =
    {
      Metrics.snap_counters = [ ("only.a", 3); ("shared", 10) ];
      snap_gauges = [ ("g", 1.0) ];
      snap_histograms =
        [ ("h", hist ~count:1 ~sum:1.0 ~mn:1.0 ~mx:1.0 ~buckets:[ (64, 1) ]) ];
    }
  in
  let b =
    {
      Metrics.snap_counters = [ ("only.b", 5); ("shared", 32) ];
      snap_gauges = [ ("g", 9.0) ];
      snap_histograms =
        [
          ( "h",
            hist ~count:2 ~sum:6.0 ~mn:2.0 ~mx:4.0
              ~buckets:[ (65, 1); (66, 1) ] );
        ];
    }
  in
  let m = Metrics.merge a b in
  Alcotest.(check (option int)) "left-only counter kept" (Some 3)
    (Metrics.find_counter m "only.a");
  Alcotest.(check (option int)) "right-only counter kept" (Some 5)
    (Metrics.find_counter m "only.b");
  Alcotest.(check (option int)) "shared counters add" (Some 42)
    (Metrics.find_counter m "shared");
  Alcotest.(check (option (float 1e-12))) "gauge: right wins" (Some 9.0)
    (List.assoc_opt "g" m.Metrics.snap_gauges);
  (match List.assoc_opt "h" m.Metrics.snap_histograms with
  | None -> Alcotest.fail "merged histogram missing"
  | Some hs ->
      Alcotest.(check int) "histogram counts add" 3 hs.Metrics.hs_count;
      Alcotest.(check (float 1e-12)) "histogram sums add" 7.0 hs.Metrics.hs_sum;
      Alcotest.(check (float 1e-12)) "histogram min combines" 1.0
        hs.Metrics.hs_min;
      Alcotest.(check (float 1e-12)) "histogram max combines" 4.0
        hs.Metrics.hs_max;
      Alcotest.(check int) "bucket lists union" 3
        (List.length hs.Metrics.hs_buckets));
  (* absorb: a worker-style delta lands in the live registry *)
  let c = Metrics.counter "test.obs.absorb" in
  let base = Metrics.value c in
  Metrics.absorb
    {
      Metrics.empty with
      Metrics.snap_counters = [ ("test.obs.absorb", 7) ];
    };
  Alcotest.(check int) "absorb adds into live counters" (base + 7)
    (Metrics.value c)

(* --- Trace ----------------------------------------------------------------- *)

let test_trace_gating () =
  Alcotest.(check bool) "tracing starts disabled" false (Trace.enabled ());
  let before = Trace.num_events () in
  let forced = ref false in
  let r =
    Trace.with_span "test.obs.disabled"
      ~args:(fun () ->
        forced := true;
        [])
      (fun () -> 17)
  in
  Alcotest.(check int) "body still runs" 17 r;
  Alcotest.(check int) "no event recorded when disabled" before
    (Trace.num_events ());
  Alcotest.(check bool) "args thunk not forced when disabled" false !forced

let test_trace_records_and_exports () =
  with_tracing @@ fun () ->
  Trace.reset ();
  let r =
    Trace.with_span "test.obs.span" ~cat:"test"
      ~args:(fun () -> [ ("answer", "42") ])
      (fun () -> 42)
  in
  Alcotest.(check int) "body result" 42 r;
  Trace.instant "test.obs.instant";
  (match Trace.events () with
  | [ span; inst ] ->
      Alcotest.(check string) "span name" "test.obs.span" span.Trace.ev_name;
      Alcotest.(check string) "span phase" "X" span.Trace.ev_ph;
      Alcotest.(check bool) "span has a duration" true
        (span.Trace.ev_dur_us >= 0.0);
      Alcotest.(check int) "span pid is this process" (Unix.getpid ())
        span.Trace.ev_pid;
      Alcotest.(check string) "instant phase" "i" inst.Trace.ev_ph
  | evs -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d"
                            (List.length evs)));
  (* export -> parse: the Chrome trace shape survives a round-trip *)
  let rendered =
    Minijson.render
      (Trace.to_json ~extra:[ ("metrics", Metrics.to_json Metrics.empty) ]
         (Trace.events ()))
  in
  match Minijson.parse rendered with
  | Error e -> Alcotest.fail ("trace JSON does not re-parse: " ^ e)
  | Ok json -> (
      (match Minijson.member "traceEvents" json with
      | Some (Minijson.List evs) ->
          Alcotest.(check int) "both events exported" 2 (List.length evs);
          List.iter
            (fun ev ->
              Alcotest.(check bool) "every event carries name/ph/ts/pid" true
                (List.for_all
                   (fun k -> Minijson.member k ev <> None)
                   [ "name"; "ph"; "ts"; "pid" ]))
            evs
      | _ -> Alcotest.fail "no traceEvents array");
      match Minijson.member "metrics" json with
      | Some (Minijson.Obj _) -> Trace.reset ()
      | _ -> Alcotest.fail "extra top-level member lost")

let test_trace_absorb_preserves_worker_pid () =
  with_tracing @@ fun () ->
  Trace.reset ();
  let foreign =
    Trace.make ~ts_us:12.0 ~dur_us:3.0 ~ph:"X" "test.obs.foreign"
  in
  let foreign = { foreign with Trace.ev_pid = 424242 } in
  Trace.absorb [ foreign ];
  (match Trace.events () with
  | [ ev ] ->
      Alcotest.(check int) "absorbed event keeps its origin pid" 424242
        ev.Trace.ev_pid
  | _ -> Alcotest.fail "absorb should append exactly one event");
  Trace.reset ()

(* --- Minijson: non-finite floats and round-trips --------------------------- *)

let test_minijson_nonfinite () =
  let render v = String.trim (Minijson.render v) in
  Alcotest.(check string) "nan" "\"NaN\"" (render (Minijson.Num Float.nan));
  Alcotest.(check string) "+inf" "\"Infinity\""
    (render (Minijson.Num Float.infinity));
  Alcotest.(check string) "-inf" "\"-Infinity\""
    (render (Minijson.Num Float.neg_infinity));
  (* deterministic: embedded in a payload, rendering is parseable JSON *)
  let payload =
    Minijson.Obj
      [ ("ok", Minijson.Num 1.5); ("bad", Minijson.Num (0.0 /. 0.0)) ]
  in
  match Minijson.parse (Minijson.render payload) with
  | Error e -> Alcotest.fail ("non-finite payload does not re-parse: " ^ e)
  | Ok (Minijson.Obj fields) ->
      Alcotest.(check bool) "finite member survives" true
        (List.assoc_opt "ok" fields = Some (Minijson.Num 1.5));
      (* the documented asymmetry: non-finites come back as strings *)
      Alcotest.(check bool) "non-finite member comes back as a string" true
        (List.assoc_opt "bad" fields = Some (Minijson.Str "NaN"))
  | Ok _ -> Alcotest.fail "payload shape lost"

let test_minijson_roundtrip_nested_large () =
  let rec eq a b =
    match (a, b) with
    | Minijson.Num x, Minijson.Num y -> x = y
    | Minijson.List xs, Minijson.List ys ->
        List.length xs = List.length ys && List.for_all2 eq xs ys
    | Minijson.Obj xs, Minijson.Obj ys ->
        List.length xs = List.length ys
        && List.for_all2
             (fun (k1, v1) (k2, v2) -> k1 = k2 && eq v1 v2)
             xs ys
    | x, y -> x = y
  in
  let leaf i =
    Minijson.Obj
      [
        ("i", Minijson.Num (float_of_int i));
        ("x", Minijson.Num (1.0 /. float_of_int (i + 3)));
        ("s", Minijson.Str (Printf.sprintf "entry \"%d\"\nwith\tescapes" i));
        ("b", if i mod 2 = 0 then Minijson.Bool true else Minijson.Null);
      ]
  in
  let nested =
    (* ~1000 leaves under five levels of wrapping: exercises the printer's
       and parser's recursion and float round-tripping together *)
    let rec wrap d v =
      if d = 0 then v
      else wrap (d - 1) (Minijson.Obj [ (Printf.sprintf "level%d" d, v) ])
    in
    wrap 5 (Minijson.List (List.init 1000 leaf))
  in
  match Minijson.parse (Minijson.render nested) with
  | Error e -> Alcotest.fail ("large payload does not re-parse: " ^ e)
  | Ok back ->
      Alcotest.(check bool) "structurally identical after round-trip" true
        (eq nested back)

(* --- Attribution: the model -------------------------------------------------- *)

let heat2d_problem = P.make S.heat2d ~space:[| 2048; 2048 |] ~time:512

let test_model_attribution_sums () =
  let params = H.Microbench.params Gpu.Arch.gtx980 in
  let citer = H.Microbench.citer Gpu.Arch.gtx980 S.heat2d in
  let configs =
    [
      Config.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |];
      Config.make_exn ~t_t:2 ~t_s:[| 4; 32 |] ~threads:[| 32 |];
      Config.make_exn ~t_t:10 ~t_s:[| 30; 96 |] ~threads:[| 128 |];
      Config.make_exn ~t_t:4 ~t_s:[| 8; 64 |] ~threads:[| 64 |];
    ]
  in
  List.iter
    (fun variant ->
      List.iter
        (fun cfg ->
          match Model.attribution ~variant params ~citer heat2d_problem cfg with
          | Error msg -> Alcotest.fail ("attribution rejected config: " ^ msg)
          | Ok (pr, comps) ->
              let sum = Attribution.total comps in
              let rel = Float.abs (sum -. pr.Model.talg) /. pr.Model.talg in
              if rel > 1e-9 then
                Alcotest.fail
                  (Printf.sprintf
                     "components sum %.17g but talg %.17g (rel %.3e) for %s"
                     sum pr.Model.talg rel (Config.id cfg));
              Alcotest.(check bool) "no shared-memory time term" true
                (comps.Attribution.shared_mem = 0.0);
              Alcotest.(check bool) "launch term is positive" true
                (comps.Attribution.launch > 0.0))
        configs)
    [ Model.Refined; Model.Paper_verbatim ]

let test_model_attribution_matches_predict () =
  let params = H.Microbench.params Gpu.Arch.gtx980 in
  let citer = H.Microbench.citer Gpu.Arch.gtx980 S.heat2d in
  let cfg = Config.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  match
    ( Model.predict params ~citer heat2d_problem cfg,
      Model.attribution params ~citer heat2d_problem cfg )
  with
  | Ok pr, Ok (pr', _) ->
      Alcotest.(check bool) "attribution reuses the exact prediction" true
        (pr = pr')
  | Error e, _ | _, Error e -> Alcotest.fail e

(* --- Attribution: the simulator ---------------------------------------------- *)

let test_simulator_attribution_sums () =
  let cfg = Config.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  match Lower.compile heat2d_problem cfg with
  | Error e -> Alcotest.fail ("compile: " ^ e)
  | Ok compiled -> (
      match
        Gpu.Simulator.price_sequence Gpu.Arch.gtx980
          (Lower.kernel_sequence compiled)
      with
      | Error e -> Alcotest.fail ("price: " ^ e)
      | Ok priced ->
          Alcotest.(check bool) "both kernel families priced" true
            (List.length priced = 2);
          List.iter
            (fun ((p : Gpu.Simulator.priced), _count) ->
              List.iter
                (fun salt ->
                  let t = Gpu.Simulator.priced_time ~salt Gpu.Arch.gtx980 p in
                  let comps =
                    Gpu.Simulator.attribute_priced ~salt Gpu.Arch.gtx980 p
                  in
                  let sum = Attribution.total comps in
                  let rel = Float.abs (sum -. t) /. t in
                  if rel > 1e-9 then
                    Alcotest.fail
                      (Printf.sprintf
                         "salt %d: components sum %.17g but priced_time %.17g \
                          (rel %.3e)"
                         salt sum t rel))
                [ 0; 1; 2; 3; 4 ];
              (* jitter off: the jitter component must vanish exactly *)
              let plain =
                Gpu.Simulator.attribute_priced ~jitter:false ~salt:0
                  Gpu.Arch.gtx980 p
              in
              Alcotest.(check (float 0.0)) "no jitter term when disabled" 0.0
                plain.Attribution.jitter)
            priced)

let test_attribution_accumulator () =
  let acc = Attribution.create () in
  let c v = { Attribution.zero with Attribution.compute = v } in
  Attribution.record acc "small" (c 1.0);
  Attribution.record acc "big" (c 5.0);
  Attribution.record acc "medium" (c 2.0);
  Alcotest.(check (float 1e-12)) "totals add" 8.0
    (Attribution.total (Attribution.totals acc));
  (match Attribution.top_k acc 2 with
  | [ (l1, _); (l2, _) ] ->
      Alcotest.(check string) "largest first" "big" l1;
      Alcotest.(check string) "then next" "medium" l2
  | _ -> Alcotest.fail "top_k 2 should keep two entries");
  Alcotest.(check int) "entries keep insertion order" 3
    (List.length (Attribution.entries acc))

(* --- provably free: sweep output is identical with tracing on --------------- *)

let test_sweep_identical_under_tracing () =
  let experiment =
    {
      H.Experiments.arch = Gpu.Arch.gtx980;
      problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:128;
    }
  in
  let csv_of sweep = H.Export.sweep_csv sweep.H.Sweep.points in
  let plain = csv_of (H.Sweep.baseline ~limit:40 experiment) in
  let traced =
    with_tracing (fun () -> csv_of (H.Sweep.baseline ~limit:40 experiment))
  in
  Trace.reset ();
  Alcotest.(check string) "sweep CSV byte-identical with tracing enabled"
    plain traced

(* --- Ledger (hexwatch) ------------------------------------------------------ *)

module Ledger = Obs.Ledger

let mk_entry ?(kind = "validate") ?(labels = []) ?(metrics = []) ?(groups = [])
    ?snapshot () =
  Ledger.make ~labels ~metrics ~groups ?snapshot ~kind ~code_version:"test-v1"
    ()

let with_ledger_file f =
  let path = Filename.temp_file "hexwatch" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () -> f path

let append_exn path e =
  match Ledger.append ~path e with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("append: " ^ msg)

let load_exn path =
  match Ledger.load ~path with
  | Ok l -> l
  | Error msg -> Alcotest.fail ("load: " ^ msg)

let test_ledger_roundtrip () =
  with_ledger_file @@ fun path ->
  let e1 =
    mk_entry ~kind:"validate"
      ~labels:[ ("arch", "gtx980"); ("stencil", "heat2d") ]
      ~metrics:[ ("rmse_top", 0.08375); ("points_per_sec", 61234.5625) ]
      ~groups:[ ("gtx980/heat2d", [ ("rmse_all", 0.551); ("points", 850.0) ]) ]
      ~snapshot:(Minijson.Obj [ ("counters", Minijson.Obj []) ])
      ()
  in
  let e2 =
    mk_entry ~kind:"bench"
      ~metrics:[ ("cold_sweep_points_per_sec", 152345.0625) ]
      ()
  in
  append_exn path e1;
  append_exn path e2;
  let l = load_exn path in
  Alcotest.(check int) "no corrupt lines" 0 l.Ledger.corrupt_lines;
  Alcotest.(check int) "no unknown-schema records" 0 l.Ledger.unknown_schema;
  match l.Ledger.entries with
  | [ r1; r2 ] ->
      Alcotest.(check string) "kind" "validate" r1.Ledger.kind;
      Alcotest.(check string) "code version" "test-v1" r1.Ledger.code_version;
      Alcotest.(check (list (pair string string)))
        "labels" e1.Ledger.labels r1.Ledger.labels;
      (* %.17g rendering: floats survive the file bit-exactly *)
      Alcotest.(check (option (float 0.0)))
        "metric bit-exact" (Some 0.08375)
        (Ledger.metric r1 "rmse_top");
      Alcotest.(check (option (float 0.0)))
        "group metric bit-exact" (Some 0.551)
        (Ledger.group_metric r1 ~group:"gtx980/heat2d" "rmse_all");
      Alcotest.(check bool) "snapshot survives" true (r1.Ledger.snapshot <> None);
      Alcotest.(check (option (float 0.0)))
        "second entry metric" (Some 152345.0625)
        (Ledger.metric r2 "cold_sweep_points_per_sec");
      Alcotest.(check bool) "timestamps non-decreasing" true
        (r2.Ledger.time_unix >= r1.Ledger.time_unix)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)

let test_ledger_corrupt_tolerance () =
  with_ledger_file @@ fun path ->
  append_exn path (mk_entry ());
  (* garbage and a non-ledger JSON object in the middle *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "not json at all\n";
  output_string oc "{\"schema\":\"something-else\"}\n";
  close_out oc;
  append_exn path (mk_entry ~kind:"bench" ());
  (* a truncated trailing line: the crash-mid-append case *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"schema\":\"hexwatch-ledger\",\"version\":1,\"kind\":\"tr";
  close_out oc;
  let l = load_exn path in
  Alcotest.(check (list string))
    "both good entries survive in order" [ "validate"; "bench" ]
    (List.map (fun (e : Ledger.entry) -> e.Ledger.kind) l.Ledger.entries);
  Alcotest.(check int) "corrupt lines counted" 3 l.Ledger.corrupt_lines;
  Alcotest.(check int) "no unknown-schema records" 0 l.Ledger.unknown_schema

let test_ledger_unknown_schema () =
  with_ledger_file @@ fun path ->
  append_exn path (mk_entry ());
  (* a record from a future schema: well-formed, skipped, counted *)
  append_exn path { (mk_entry ~kind:"campaign" ()) with Ledger.schema = 99 };
  append_exn path (mk_entry ~kind:"bench" ());
  let l = load_exn path in
  Alcotest.(check (list string))
    "current-schema entries kept" [ "validate"; "bench" ]
    (List.map (fun (e : Ledger.entry) -> e.Ledger.kind) l.Ledger.entries);
  Alcotest.(check int) "unknown schema counted" 1 l.Ledger.unknown_schema;
  Alcotest.(check int) "not corrupt" 0 l.Ledger.corrupt_lines

let test_ledger_filter_latest () =
  let es =
    [
      mk_entry ~kind:"validate" ~labels:[ ("arch", "gtx980") ] ();
      mk_entry ~kind:"bench" ();
      mk_entry ~kind:"validate" ~labels:[ ("arch", "titanx") ] ();
      mk_entry ~kind:"tune" ~labels:[ ("arch", "gtx980") ] ();
    ]
  in
  Alcotest.(check int)
    "filter by kind" 2
    (List.length (Ledger.filter ~kind:"validate" es));
  Alcotest.(check int)
    "filter by label" 2
    (List.length (Ledger.filter ~label:("arch", "gtx980") es));
  Alcotest.(check (list string))
    "filter by kind and label" [ "validate" ]
    (List.map
       (fun (e : Ledger.entry) -> e.Ledger.kind)
       (Ledger.filter ~kind:"validate" ~label:("arch", "gtx980") es));
  Alcotest.(check (list string))
    "latest keeps tail in order" [ "validate"; "tune" ]
    (List.map
       (fun (e : Ledger.entry) -> e.Ledger.kind)
       (Ledger.latest 2 es));
  Alcotest.(check int) "latest larger than list" 4
    (List.length (Ledger.latest 10 es))

(* --- heartbeats are output-neutral ----------------------------------------- *)

let test_sweep_identical_with_progress () =
  let experiment =
    {
      H.Experiments.arch = Gpu.Arch.gtx980;
      problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:128;
    }
  in
  let csv_of sweep = H.Export.sweep_csv sweep.H.Sweep.points in
  let was_enabled = Obs.Progress.enabled () in
  Obs.Progress.disable ();
  let plain = csv_of (H.Sweep.baseline ~limit:40 experiment) in
  let with_progress =
    Obs.Progress.enable ();
    Fun.protect
      ~finally:(fun () ->
        if not was_enabled then Obs.Progress.disable ())
      (fun () -> csv_of (H.Sweep.baseline ~limit:40 experiment))
  in
  prerr_newline ();
  Alcotest.(check string) "sweep CSV byte-identical with heartbeats enabled"
    plain with_progress;
  (* the heartbeat published its gauges even though rendering is throttled *)
  let snap = Metrics.snapshot () in
  let gauge name = List.assoc_opt name snap.Metrics.snap_gauges in
  Alcotest.(check (option (float 0.0)))
    "points_done gauge" (Some 40.0)
    (gauge "sweep.points_done");
  Alcotest.(check (option (float 0.0)))
    "points_total gauge" (Some 40.0)
    (gauge "sweep.points_total")

(* the first-tick bugfix: a tick landing within the clock's granularity of
   the sweep start used to divide by a near-zero elapsed time and publish an
   infinite sweep.points_per_sec; and an unknown total (0) used to render
   [done * 100 / 0].  Both must stay finite / guarded. *)
let test_progress_first_tick_is_finite () =
  let was_enabled = Obs.Progress.enabled () in
  Obs.Progress.disable ();
  let t = Obs.Progress.create ~total:10 ~label:"hexwatch-test" () in
  Obs.Progress.tick t ~done_:5;
  let snap = Metrics.snapshot () in
  let gauge name = List.assoc_opt name snap.Metrics.snap_gauges in
  (match gauge "sweep.points_per_sec" with
  | None -> Alcotest.fail "rate gauge missing"
  | Some r ->
      Alcotest.(check bool) "rate finite" true (Float.is_finite r);
      Alcotest.(check (float 0.0)) "instant tick reports zero rate" 0.0 r);
  (match gauge "sweep.eta_seconds" with
  | None -> Alcotest.fail "eta gauge missing"
  | Some e ->
      Alcotest.(check bool) "eta finite and non-negative" true
        (Float.is_finite e && e >= 0.0));
  Obs.Progress.finish t;
  (* unknown total, rendering on: the bare-count path must not divide by
     [total = 0] *)
  Obs.Progress.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_enabled then Obs.Progress.disable ())
    (fun () ->
      let s = Obs.Progress.create ~label:"hexwatch-test-unknown" () in
      Obs.Progress.tick s ~done_:3;
      Obs.Progress.finish s;
      prerr_newline ())

(* --- quantiles over log2 histograms ---------------------------------------- *)

let test_histogram_quantiles () =
  let h = Metrics.histogram "test.obs.quantiles" in
  (* 100 observations near 1.5 and one far outlier: the median must stay
     in the dense bucket and only the extreme ranks may reach the tail *)
  for _ = 1 to 100 do
    Metrics.observe h 1.5
  done;
  Metrics.observe h 1000.0;
  let snap = Metrics.snapshot () in
  match List.assoc_opt "test.obs.quantiles" snap.Metrics.snap_histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
      let q p = Metrics.quantile hs p in
      Alcotest.(check (float 0.0)) "q=0 is exactly the min" 1.5 (q 0.0);
      Alcotest.(check (float 0.0)) "q=1 is exactly the max" 1000.0 (q 1.0);
      (* 1.5 lands in bucket [1,2): the estimate must not leave it *)
      Alcotest.(check bool) "p50 stays in the dense bucket" true
        (q 0.5 >= 1.5 && q 0.5 < 2.0);
      (* rank 100 of 101 tops out the dense bucket: the estimate may reach
         its upper edge but must not jump to the outlier's magnitude *)
      Alcotest.(check bool) "p99 rank still precedes the outlier" true
        (q 0.99 <= 2.0);
      Alcotest.(check bool) "quantiles are monotone" true
        (q 0.5 <= q 0.9 && q 0.9 <= q 0.99 && q 0.99 <= q 1.0);
      (* single observation: every quantile collapses to it *)
      let one =
        {
          Metrics.hs_count = 1;
          hs_sum = 3.0;
          hs_min = 3.0;
          hs_max = 3.0;
          hs_buckets = [ (66, 1) ];
        }
      in
      Alcotest.(check (float 0.0)) "singleton p50" 3.0
        (Metrics.quantile one 0.5);
      (* degenerate inputs answer NaN — consistently, never a crash and
         never an infinity leaked from the min/max sentinels *)
      let empty =
        {
          Metrics.hs_count = 0;
          hs_sum = 0.0;
          hs_min = 0.0;
          hs_max = 0.0;
          hs_buckets = [];
        }
      in
      Alcotest.(check bool) "empty histogram is NaN" true
        (Float.is_nan (Metrics.quantile empty 0.5));
      Alcotest.(check bool) "empty histogram q=0 is NaN too" true
        (Float.is_nan (Metrics.quantile empty 0.0));
      Alcotest.(check bool) "q out of range is NaN" true
        (Float.is_nan (Metrics.quantile hs 1.5));
      Alcotest.(check bool) "q NaN is NaN" true
        (Float.is_nan (Metrics.quantile hs Float.nan));
      (* and the JSON rendering of an empty histogram's quantiles is the
         deterministic string NaN, not a crash or a bare token *)
      let json = Minijson.render_compact (Minijson.Num (Metrics.quantile empty 0.5)) in
      Alcotest.(check string) "NaN renders as a string" "\"NaN\"" json

let test_quantiles_in_snapshot_json () =
  let h = Metrics.histogram "test.obs.quantjson" in
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004 ];
  let json = Metrics.to_json (Metrics.snapshot ()) in
  let hist_json =
    Option.bind (Minijson.member "histograms" json)
      (Minijson.member "test.obs.quantjson")
  in
  match hist_json with
  | None -> Alcotest.fail "histogram missing from metrics JSON"
  | Some hj ->
      List.iter
        (fun (label, _) ->
          match Option.bind (Minijson.member label hj) Minijson.number with
          | Some v ->
              Alcotest.(check bool)
                (label ^ " within [min, max]")
                true
                (v >= 0.001 && v <= 0.004)
          | None -> Alcotest.failf "%s missing from histogram JSON" label)
        Metrics.quantiles

(* --- OpenMetrics exposition (hexpulse) -------------------------------------- *)

module Openmetrics = Obs.Openmetrics

(* The full text a scraper sees for a known snapshot, byte for byte:
   counters with _total, gauges verbatim, log2 histogram re-rendered as
   cumulative le buckets closed by +Inf, # EOF terminator, dots and dashes
   sanitized to underscores. *)
let test_openmetrics_golden () =
  let hist =
    {
      Metrics.hs_count = 3;
      hs_sum = 0.75;
      hs_min = 0.1;
      hs_max = 0.4;
      hs_buckets = [ (Metrics.bucket_of 0.1, 2); (Metrics.bucket_of 0.4, 1) ];
    }
  in
  let snap =
    {
      Metrics.snap_counters = [ ("serve.requests", 3) ];
      snap_gauges = [ ("serve.drift_alarm", 0.0); ("weird-name.g", 1.5) ];
      snap_histograms = [ ("serve.warm_seconds", hist) ];
    }
  in
  let expected =
    "# TYPE serve_requests counter\n" ^ "serve_requests_total 3\n"
    ^ "# TYPE serve_drift_alarm gauge\n" ^ "serve_drift_alarm 0\n"
    ^ "# TYPE weird_name_g gauge\n" ^ "weird_name_g 1.5\n"
    ^ "# TYPE serve_warm_seconds histogram\n"
    ^ "serve_warm_seconds_bucket{le=\"0.125\"} 2\n"
    ^ "serve_warm_seconds_bucket{le=\"0.5\"} 3\n"
    ^ "serve_warm_seconds_bucket{le=\"+Inf\"} 3\n"
    ^ "serve_warm_seconds_sum 0.75\n" ^ "serve_warm_seconds_count 3\n"
    ^ "# EOF\n"
  in
  let rendered = Openmetrics.render snap in
  Alcotest.(check string) "golden exposition" expected rendered;
  match
    Openmetrics.validate
      ~require:[ "serve_requests"; "serve_drift_alarm"; "serve_warm_seconds" ]
      rendered
  with
  | Error e -> Alcotest.fail e
  | Ok { Openmetrics.families; samples } ->
      Alcotest.(check int) "families" 4 families;
      Alcotest.(check int) "samples" 8 samples

let test_openmetrics_label_escaping () =
  let nasty = "a\\b\"c\nd" in
  Alcotest.(check string) "escapes" "a\\\\b\\\"c\\nd"
    (Openmetrics.escape_label_value nasty);
  let text =
    "# TYPE x gauge\nx{path=\""
    ^ Openmetrics.escape_label_value nasty
    ^ "\"} 1\n# EOF\n"
  in
  match Openmetrics.parse text with
  | Error e -> Alcotest.fail e
  | Ok families -> (
      match Openmetrics.find families "x" with
      | None -> Alcotest.fail "family x missing"
      | Some f -> (
          match f.Openmetrics.f_samples with
          | [ s ] ->
              Alcotest.(check (list (pair string string)))
                "round-trips through the escapes"
                [ ("path", nasty) ]
                s.Openmetrics.s_labels
          | _ -> Alcotest.fail "expected exactly one sample"))

(* A live registry histogram survives the render -> parse -> validate
   round-trip, and the parsed cumulative series agrees with the registry's
   own counts. *)
let test_openmetrics_registry_roundtrip () =
  let h = Metrics.histogram "test.obs.omh" in
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.1; 100.0 ];
  let text = Openmetrics.render (Metrics.snapshot ()) in
  (match Openmetrics.validate text with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  match Openmetrics.parse text with
  | Error e -> Alcotest.fail e
  | Ok families -> (
      Alcotest.(check (option (float 0.0)))
        "count sample" (Some 5.0)
        (Openmetrics.value families "test_obs_omh_count");
      Alcotest.(check bool) "sum sample close" true
        (match Openmetrics.value families "test_obs_omh_sum" with
        | Some s -> Float.abs (s -. 100.107) < 1e-9
        | None -> false);
      match Openmetrics.find families "test_obs_omh" with
      | None -> Alcotest.fail "histogram family missing"
      | Some f ->
          let inf_bucket =
            List.find_opt
              (fun s ->
                s.Openmetrics.s_name = "test_obs_omh_bucket"
                && s.Openmetrics.s_labels = [ ("le", "+Inf") ])
              f.Openmetrics.f_samples
          in
          Alcotest.(check (option (float 0.0)))
            "+Inf bucket equals count" (Some 5.0)
            (Option.map (fun s -> s.Openmetrics.s_value) inf_bucket))

let test_openmetrics_rejects_malformed () =
  let broken what text =
    match Openmetrics.validate text with
    | Ok _ -> Alcotest.failf "%s passed validation" what
    | Error _ -> ()
  in
  broken "non-cumulative buckets"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"1\"} 5\n"
   ^ "h_bucket{le=\"2\"} 3\n" ^ "h_bucket{le=\"+Inf\"} 5\n" ^ "h_sum 1\n"
   ^ "h_count 5\n# EOF\n");
  broken "no +Inf closing bucket"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"1\"} 5\n" ^ "h_sum 1\n"
   ^ "h_count 5\n# EOF\n");
  broken "+Inf disagrees with count"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"+Inf\"} 4\n" ^ "h_sum 1\n"
   ^ "h_count 5\n# EOF\n");
  broken "negative counter"
    "# TYPE c counter\nc_total -1\n# EOF\n";
  broken "sample before any TYPE" "orphan 1\n# EOF\n";
  match Openmetrics.validate ~require:[ "absent_family" ] "# EOF\n" with
  | Ok _ -> Alcotest.fail "missing required family passed"
  | Error msg ->
      let contains ~needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "names the missing family" true
        (contains ~needle:"absent_family" msg)

(* --- rolling SLO windows (hexpulse) ------------------------------------------ *)

let test_slo_windows_roll_and_judge () =
  let spec =
    {
      Obs.Slo.window_s = 10.0;
      windows = 4;
      p99_us = Some 500.0;
      warm_ratio = Some 0.5;
      error_budget = 0.01;
    }
  in
  let t = Obs.Slo.create ~spec ~now:0.0 () in
  (* window [0,10): 4 warm fast answers, 1 cold fast, 1 error *)
  for i = 1 to 4 do
    Obs.Slo.observe t ~now:(float_of_int i) ~warm:true ~error:false
      ~latency_s:100e-6
  done;
  Obs.Slo.observe t ~now:5.0 ~warm:false ~error:false ~latency_s:200e-6;
  Obs.Slo.observe t ~now:6.0 ~warm:false ~error:true ~latency_s:0.01;
  Alcotest.(check int) "nothing closed yet" 0 (List.length (Obs.Slo.windows t));
  (* crossing the boundary closes [0,10) *)
  Obs.Slo.tick t ~now:10.5;
  (match Obs.Slo.windows t with
  | [ w ] ->
      Alcotest.(check int) "requests" 6 w.Obs.Slo.w_requests;
      Alcotest.(check int) "errors" 1 w.Obs.Slo.w_errors;
      Alcotest.(check int) "warm" 4 w.Obs.Slo.w_warm;
      Alcotest.(check int) "cold" 1 w.Obs.Slo.w_cold;
      Alcotest.(check (float 0.0)) "window bounds" 0.0 w.Obs.Slo.w_start;
      Alcotest.(check (float 0.0)) "window end" 10.0 w.Obs.Slo.w_end;
      (* p50 over {100us x4, 200us, 10ms}: rank answer stays in the 100us
         dense bucket region, far under the 500us objective; p99 reaches
         the 10ms outlier and violates it *)
      Alcotest.(check bool) "p50 below objective" true
        (w.Obs.Slo.w_p50_us < 500.0);
      Alcotest.(check bool) "p99 above objective" true
        (w.Obs.Slo.w_p99_us > 500.0);
      Alcotest.(check bool) "p99 verdict: violated" false w.Obs.Slo.w_p99_ok;
      (* warm ratio 4/6 >= 0.5 holds *)
      Alcotest.(check bool) "warm verdict: ok" true w.Obs.Slo.w_warm_ok;
      Alcotest.(check bool) "window_ok is the conjunction" false
        (Obs.Slo.window_ok w)
  | ws -> Alcotest.failf "expected 1 closed window, got %d" (List.length ws));
  Alcotest.(check int) "violated count" 1 (Obs.Slo.violated t);
  (* the verdict gauges describe the closed window *)
  let snap = Metrics.snapshot () in
  let gauge name = List.assoc_opt name snap.Metrics.snap_gauges in
  Alcotest.(check (option (float 0.0))) "p99_ok gauge" (Some 0.0)
    (gauge "slo.p99_ok");
  Alcotest.(check (option (float 0.0))) "warm_ok gauge" (Some 1.0)
    (gauge "slo.warm_ratio_ok");
  (* error rate 1/6 over budget 0.01 burns at ~16.7x *)
  (match gauge "slo.error_budget_burn" with
  | None -> Alcotest.fail "burn gauge missing"
  | Some burn ->
      Alcotest.(check bool) "budget burning" true
        (burn > 16.0 && burn < 17.0));
  (* an idle stretch longer than the whole ring: closes a ring of empty
     windows (NaN quantiles, no violations) and jumps to the present *)
  Obs.Slo.tick t ~now:1000.0;
  let ws = Obs.Slo.windows t in
  Alcotest.(check int) "ring is full" 4 (List.length ws);
  (match ws with
  | w :: _ ->
      Alcotest.(check int) "latest window is empty" 0 w.Obs.Slo.w_requests;
      Alcotest.(check bool) "empty p99 is NaN" true
        (Float.is_nan w.Obs.Slo.w_p99_us);
      Alcotest.(check bool) "empty window violates nothing" true
        (Obs.Slo.window_ok w)
  | [] -> Alcotest.fail "ring empty after idle tick");
  (* the pre-idle violated window has rolled out of the ring *)
  Alcotest.(check int) "violations aged out" 0 (Obs.Slo.violated t);
  (* observations after the jump land in a window anchored at the present *)
  Obs.Slo.observe t ~now:1001.0 ~warm:true ~error:false ~latency_s:50e-6;
  Obs.Slo.tick t ~now:1011.0;
  match Obs.Slo.windows t with
  | w :: _ ->
      Alcotest.(check int) "post-jump window caught it" 1
        w.Obs.Slo.w_requests
  | [] -> Alcotest.fail "no window after the jump"

(* --- hexlens: series extraction and changepoint alerts --------------------- *)

module Series = Obs.Series
module Alert = Obs.Alert

(* a hand-built series: judge's input is just the ordered values *)
let series_of ?(kind = "bench") ?(group = "ci") ?(metric = "serve_warm_p99_us")
    vs =
  {
    Series.s_kind = kind;
    s_group = group;
    s_metric = metric;
    s_points =
      List.mapi
        (fun i v ->
          {
            Series.p_time = float_of_int i;
            p_value = v;
            p_git_rev = "";
            p_code_version = "test-v1";
          })
        vs;
  }

(* a stationary noisy baseline: spread ~MAD, no trend *)
let noise8 = [ 100.0; 103.0; 97.0; 101.0; 99.0; 102.0; 98.0; 100.0 ]

let test_series_extract () =
  let bench v = mk_entry ~kind:"bench" ~labels:[ ("scale", "ci") ]
      ~metrics:[ ("cold_sweep_points_per_sec", v); ("unwatched_metric", 1.0) ]
      ()
  in
  let validate exp v =
    mk_entry ~kind:"validate" ~labels:[ ("experiment", exp) ]
      ~metrics:[ ("rmse_top", v) ] ()
  in
  let alert_rec =
    mk_entry ~kind:"alert" ~labels:[ ("scale", "ci") ]
      ~metrics:[ ("cold_sweep_points_per_sec", 1e9) ] ()
  in
  let entries =
    [
      bench 1.0;
      validate "a" 0.1;
      bench 2.0;
      validate "b" 0.3;
      alert_rec;
      validate "a" 0.2;
      bench 3.0;
    ]
  in
  let ss = Series.extract entries in
  let keys = List.map Series.key ss in
  (* first-appearance order; per-experiment validate series do not
     interleave; the alert record and the unwatched metric contribute
     nothing *)
  Alcotest.(check (list string))
    "series keys in first-appearance order"
    [
      "bench/ci:cold_sweep_points_per_sec";
      "validate/a:rmse_top";
      "validate/b:rmse_top";
    ]
    keys;
  let find k = List.find (fun s -> Series.key s = k) ss in
  Alcotest.(check (list (float 0.0)))
    "bench points oldest first (alert value excluded)" [ 1.0; 2.0; 3.0 ]
    (Array.to_list (Series.values (find "bench/ci:cold_sweep_points_per_sec")));
  Alcotest.(check (list (float 0.0)))
    "experiment-a series keeps only its own runs" [ 0.1; 0.2 ]
    (Array.to_list (Series.values (find "validate/a:rmse_top")));
  match Series.last (find "validate/a:rmse_top") with
  | Some p -> Alcotest.(check (float 0.0)) "last is newest" 0.2 p.Series.p_value
  | None -> Alcotest.fail "non-empty series has no last point"

let test_alert_quiet_on_noise () =
  let v = Alert.judge (series_of (noise8 @ [ 101.0; 99.0 ])) in
  Alcotest.(check bool) "judged (n >= min_samples)" true v.Alert.v_judged;
  Alcotest.(check bool) "stationary noise stays quiet" true
    (v.Alert.v_fired = None);
  Alcotest.(check (float 0.5)) "median near the level" 100.0 v.Alert.v_median

let test_alert_fires_on_step () =
  (* a sustained upward step in a latency metric: regression *)
  let v =
    Alert.judge (series_of (noise8 @ [ 200.0; 200.0; 200.0; 200.0 ]))
  in
  (match v.Alert.v_fired with
  | Some f ->
      Alcotest.(check string) "page_hinkley fires first" "page_hinkley"
        f.Alert.f_detector;
      Alcotest.(check string) "direction up" "up"
        (Alert.direction_to_string f.Alert.f_direction);
      Alcotest.(check bool) "up is bad for a _us metric" true
        f.Alert.f_regression;
      Alcotest.(check bool) "stat crossed the threshold" true
        (f.Alert.f_stat > f.Alert.f_threshold)
  | None -> Alcotest.fail "4-point step did not fire");
  Alcotest.(check bool) "classified as regression" true (Alert.regression v);
  Alcotest.(check bool) "not an improvement" false (Alert.improvement v)

let test_alert_single_outlier_quiet () =
  (* one wild point is winsorised to z=4: bounded excursion, no firing *)
  let v = Alert.judge (series_of (noise8 @ [ 5000.0 ])) in
  Alcotest.(check bool) "judged" true v.Alert.v_judged;
  Alcotest.(check bool) "single outlier stays quiet" true
    (v.Alert.v_fired = None);
  Alcotest.(check bool) "excursion bounded by the winsor cap" true
    (v.Alert.v_ph_up <= 4.0)

let test_alert_improvement_direction () =
  (* the same magnitude of step down in a latency metric: improvement,
     reported but never a gate failure *)
  let v =
    Alert.judge (series_of (noise8 @ [ 20.0; 20.0; 20.0; 20.0 ]))
  in
  Alcotest.(check bool) "fired" true (v.Alert.v_fired <> None);
  Alcotest.(check bool) "down is good for a _us metric" true
    (Alert.improvement v);
  Alcotest.(check bool) "not a regression" false (Alert.regression v);
  (* a throughput metric with the same step up is an improvement too *)
  let v2 =
    Alert.judge
      (series_of ~metric:"serve_requests_per_sec"
         (noise8 @ [ 200.0; 200.0; 200.0; 200.0 ]))
  in
  Alcotest.(check bool) "up is good for _per_sec" true (Alert.improvement v2);
  (* an unknown metric is Neutral: either direction is a regression *)
  let v3 =
    Alert.judge
      (series_of ~metric:"mystery" (noise8 @ [ 200.0; 200.0; 200.0; 200.0 ]))
  in
  Alcotest.(check bool) "neutral metrics regress in both directions" true
    (Alert.regression v3)

let test_alert_to_entry_and_scan_exclusion () =
  let fired =
    Alert.judge (series_of (noise8 @ [ 200.0; 200.0; 200.0; 200.0 ]))
  in
  let e = Alert.to_entry fired in
  Alcotest.(check string) "alert kind" "alert" e.Ledger.kind;
  Alcotest.(check string) "detector version" Alert.code_version
    e.Ledger.code_version;
  Alcotest.(check (option string))
    "series label" (Some "bench/ci:serve_warm_p99_us")
    (List.assoc_opt "series" e.Ledger.labels);
  Alcotest.(check (option string))
    "verdict label" (Some "regression")
    (List.assoc_opt "verdict" e.Ledger.labels);
  Alcotest.(check (option (float 0.0)))
    "firing metric" (Some 1.0) (Ledger.metric e "firing");
  (* it survives the ledger round-trip *)
  with_ledger_file (fun path ->
      append_exn path e;
      match (load_exn path).Ledger.entries with
      | [ r ] -> Alcotest.(check string) "round-trip kind" "alert" r.Ledger.kind
      | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
  (* a quiet verdict has no alert record *)
  (match Alert.to_entry (Alert.judge (series_of noise8)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "to_entry accepted a verdict that did not fire");
  (* scan never reads alert records back in: appending the alert to the
     scanned window must not change a single verdict statistic *)
  let base =
    List.map
      (fun v ->
        mk_entry ~kind:"bench" ~labels:[ ("scale", "ci") ]
          ~metrics:[ ("serve_warm_p99_us", v) ] ())
      (noise8 @ [ 200.0; 200.0; 200.0; 200.0 ])
  in
  let stats v =
    (v.Alert.v_n, v.Alert.v_ph_up, v.Alert.v_ewma_z, v.Alert.v_fired <> None)
  in
  let before = List.map stats (Alert.scan base) in
  let after = List.map stats (Alert.scan (base @ [ e ])) in
  Alcotest.(check bool) "alert records are not detector input" true
    (before = after)

(* --- ledger lifecycle: rotation and compaction ------------------------------ *)

let test_ledger_rotate () =
  with_ledger_file @@ fun path ->
  (* under every threshold: no-op *)
  append_exn path (mk_entry ());
  (match Ledger.rotate ~path ~max_bytes:1_000_000 () with
  | Ok None -> ()
  | Ok (Some d) -> Alcotest.failf "young small ledger rotated to %s" d
  | Error e -> Alcotest.fail e);
  (* size trigger *)
  (match Ledger.rotate ~path ~max_bytes:1 () with
  | Ok (Some dest) ->
      Alcotest.(check bool) "rotated file exists" true (Sys.file_exists dest);
      Alcotest.(check bool) "original gone" false (Sys.file_exists path);
      Sys.remove dest
  | Ok None -> Alcotest.fail "oversized ledger did not rotate"
  | Error e -> Alcotest.fail e);
  (* a missing ledger never rotates *)
  (match Ledger.rotate ~path ~max_bytes:1 () with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "missing file rotated"
  | Error e -> Alcotest.fail e);
  (* age trigger, judged from the first record's own timestamp *)
  append_exn path { (mk_entry ()) with Ledger.time_unix = 1000.0 };
  append_exn path (mk_entry ());
  (match Ledger.rotate ~path ~max_age_s:3600.0 ~now:2000.0 () with
  | Ok None -> ()
  | Ok (Some d) -> Alcotest.failf "young ledger rotated to %s" d
  | Error e -> Alcotest.fail e);
  match Ledger.rotate ~path ~max_age_s:3600.0 ~now:10_000.0 () with
  | Ok (Some dest) ->
      Alcotest.(check bool) "age-rotated file exists" true
        (Sys.file_exists dest);
      Sys.remove dest
  | Ok None -> Alcotest.fail "old ledger did not rotate"
  | Error e -> Alcotest.fail e

let test_ledger_compact () =
  with_ledger_file @@ fun path ->
  let validate v =
    mk_entry ~kind:"validate" ~labels:[ ("arch", "gtx980") ]
      ~metrics:[ ("rmse_top", v) ] ()
  in
  let audit req v =
    mk_entry ~kind:"audit"
      ~labels:[ ("req_id", req); ("key", "K") ]
      ~metrics:[ ("rel_err", v) ] ()
  in
  append_exn path (validate 1.0);
  append_exn path (mk_entry ~kind:"bench" ());
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "corrupt line\n";
  close_out oc;
  append_exn path (validate 2.0);
  append_exn path (audit "a" 0.1);
  append_exn path (audit "b" 0.2);
  append_exn path { (mk_entry ~kind:"future" ()) with Ledger.schema = 99 };
  (match Ledger.compact ~path () with
  | Ok (kept, dropped) ->
      (* kept: bench, validate(2.0), audit b, unknown-schema verbatim;
         dropped: validate(1.0), corrupt, audit a *)
      Alcotest.(check int) "kept lines" 4 kept;
      Alcotest.(check int) "dropped lines" 3 dropped
  | Error e -> Alcotest.fail e);
  let l = load_exn path in
  Alcotest.(check (list string))
    "latest per identity, order preserved" [ "bench"; "validate"; "audit" ]
    (List.map (fun (e : Ledger.entry) -> e.Ledger.kind) l.Ledger.entries);
  Alcotest.(check int) "unknown schema kept verbatim" 1 l.Ledger.unknown_schema;
  Alcotest.(check int) "corrupt line gone" 0 l.Ledger.corrupt_lines;
  let validate_e =
    List.find (fun (e : Ledger.entry) -> e.Ledger.kind = "validate")
      l.Ledger.entries
  in
  Alcotest.(check (option (float 0.0)))
    "the later duplicate won" (Some 2.0)
    (Ledger.metric validate_e "rmse_top");
  (* req_id is not part of the identity: one audit survives *)
  Alcotest.(check int) "audits deduped across req_ids" 1
    (List.length (Ledger.filter ~kind:"audit" l.Ledger.entries))

let test_slo_ring_wraparound () =
  (* the ring is reused many times across a long simulated uptime: the
     verdict gauges and ring-wide counts must describe the *current* ring,
     not history.  1s windows, capacity 4, 500 closed windows; every 10th
     window takes a 10ms outlier that violates the 500us p99 objective. *)
  let spec =
    {
      Obs.Slo.window_s = 1.0;
      windows = 4;
      p99_us = Some 500.0;
      warm_ratio = None;
      error_budget = 0.01;
    }
  in
  let t = Obs.Slo.create ~spec ~now:0.0 () in
  let total = 500 in
  for w = 0 to total - 1 do
    let base = float_of_int w in
    Obs.Slo.observe t ~now:(base +. 0.25) ~warm:true ~error:false
      ~latency_s:100e-6;
    Obs.Slo.observe t ~now:(base +. 0.5) ~warm:true ~error:false
      ~latency_s:(if w mod 10 = 9 then 0.01 else 120e-6)
  done;
  Obs.Slo.tick t ~now:(float_of_int total);
  let ws = Obs.Slo.windows t in
  Alcotest.(check int) "ring capped at capacity" 4 (List.length ws);
  (* newest first: windows 499 498 497 496; 499 took the outlier *)
  (match ws with
  | newest :: rest ->
      Alcotest.(check (float 0.0)) "newest window start" 499.0
        newest.Obs.Slo.w_start;
      Alcotest.(check int) "every window saw its 2 requests" 2
        newest.Obs.Slo.w_requests;
      Alcotest.(check bool) "outlier window violates p99" false
        newest.Obs.Slo.w_p99_ok;
      List.iter
        (fun w ->
          Alcotest.(check bool) "clean windows hold p99" true
            w.Obs.Slo.w_p99_ok)
        rest
  | [] -> Alcotest.fail "empty ring after long uptime");
  Alcotest.(check int) "violations count only the live ring" 1
    (Obs.Slo.violated t);
  (* gauges describe the current ring after ~125 full wraps *)
  let snap = Metrics.snapshot () in
  let gauge name = List.assoc_opt name snap.Metrics.snap_gauges in
  Alcotest.(check (option (float 0.0))) "windows gauge" (Some 4.0)
    (gauge "slo.windows");
  Alcotest.(check (option (float 0.0))) "violated gauge" (Some 1.0)
    (gauge "slo.windows_violated");
  Alcotest.(check (option (float 0.0)))
    "p99 verdict gauge tracks the last closed window" (Some 0.0)
    (gauge "slo.p99_ok");
  (* one more clean window: the verdict gauge flips back *)
  Obs.Slo.observe t
    ~now:(float_of_int total +. 0.5)
    ~warm:true ~error:false ~latency_s:100e-6;
  Obs.Slo.tick t ~now:(float_of_int total +. 1.5);
  let snap = Metrics.snapshot () in
  Alcotest.(check (option (float 0.0)))
    "verdict gauge recovers on the next clean window" (Some 1.0)
    (List.assoc_opt "slo.p99_ok" snap.Metrics.snap_gauges)

let test_slo_create_validates () =
  (match
     Obs.Slo.create
       ~spec:{ Obs.Slo.default_spec with Obs.Slo.window_s = 0.0 }
       ~now:0.0 ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window_s = 0 accepted");
  match
    Obs.Slo.create
      ~spec:{ Obs.Slo.default_spec with Obs.Slo.windows = 0 }
      ~now:0.0 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "windows = 0 accepted"

let suite =
  [
    Alcotest.test_case "counter, gauge, histogram" `Quick
      test_counter_gauge_histogram;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "quantiles exported in snapshot JSON" `Quick
      test_quantiles_in_snapshot_json;
    Alcotest.test_case "merge and absorb" `Quick test_merge_and_absorb;
    Alcotest.test_case "trace gating" `Quick test_trace_gating;
    Alcotest.test_case "trace records and exports" `Quick
      test_trace_records_and_exports;
    Alcotest.test_case "trace absorb keeps worker pid" `Quick
      test_trace_absorb_preserves_worker_pid;
    Alcotest.test_case "minijson non-finite floats" `Quick
      test_minijson_nonfinite;
    Alcotest.test_case "minijson nested/large round-trip" `Quick
      test_minijson_roundtrip_nested_large;
    Alcotest.test_case "model attribution sums to talg" `Quick
      test_model_attribution_sums;
    Alcotest.test_case "attribution reuses the prediction" `Quick
      test_model_attribution_matches_predict;
    Alcotest.test_case "simulator attribution sums to priced time" `Quick
      test_simulator_attribution_sums;
    Alcotest.test_case "attribution accumulator top-k" `Quick
      test_attribution_accumulator;
    Alcotest.test_case "sweep identical under tracing" `Quick
      test_sweep_identical_under_tracing;
    Alcotest.test_case "ledger round-trip" `Quick test_ledger_roundtrip;
    Alcotest.test_case "ledger corrupt-line tolerance" `Quick
      test_ledger_corrupt_tolerance;
    Alcotest.test_case "ledger unknown schema skipped" `Quick
      test_ledger_unknown_schema;
    Alcotest.test_case "ledger filter and latest" `Quick
      test_ledger_filter_latest;
    Alcotest.test_case "sweep identical with heartbeats" `Quick
      test_sweep_identical_with_progress;
    Alcotest.test_case "first heartbeat tick stays finite" `Quick
      test_progress_first_tick_is_finite;
    Alcotest.test_case "openmetrics golden exposition" `Quick
      test_openmetrics_golden;
    Alcotest.test_case "openmetrics label escaping" `Quick
      test_openmetrics_label_escaping;
    Alcotest.test_case "openmetrics registry round-trip" `Quick
      test_openmetrics_registry_roundtrip;
    Alcotest.test_case "openmetrics rejects malformed" `Quick
      test_openmetrics_rejects_malformed;
    Alcotest.test_case "slo windows roll and judge" `Quick
      test_slo_windows_roll_and_judge;
    Alcotest.test_case "slo create validates" `Quick test_slo_create_validates;
    Alcotest.test_case "hexlens series extraction" `Quick test_series_extract;
    Alcotest.test_case "hexlens quiet on stationary noise" `Quick
      test_alert_quiet_on_noise;
    Alcotest.test_case "hexlens fires on a sustained step" `Quick
      test_alert_fires_on_step;
    Alcotest.test_case "hexlens single outlier stays quiet" `Quick
      test_alert_single_outlier_quiet;
    Alcotest.test_case "hexlens direction and orientation" `Quick
      test_alert_improvement_direction;
    Alcotest.test_case "hexlens alert records round-trip, never re-scanned"
      `Quick test_alert_to_entry_and_scan_exclusion;
    Alcotest.test_case "ledger rotation by size and age" `Quick
      test_ledger_rotate;
    Alcotest.test_case "ledger compaction keeps latest per identity" `Quick
      test_ledger_compact;
    Alcotest.test_case "slo ring wrap-around over long uptime" `Quick
      test_slo_ring_wraparound;
  ]
