(* The analytical model (lib/core): parameter assembly and the T_alg
   equations, checked against hand-evaluated instances of the paper's
   formulas. *)

module Gpu = Hextime_gpu
module Params = Hextime_core.Params
module Model = Hextime_core.Model
module C = Hextime_tiling.Config
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem

(* fixed synthetic constants: keep hand calculations easy *)
let params =
  Params.of_microbenchmarks Gpu.Arch.gtx980 ~l_word:3.0e-11 ~tau_sync:1.0e-9
    ~t_sync:1.0e-6

let citer = 4.0e-8

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected model error: %s" e

let test_params () =
  Alcotest.(check (float 1e-9)) "L per GB" (3.0e-11 *. 1e9 /. 4.0)
    (Params.l_per_gb params);
  Alcotest.(check int) "nSM from arch" 16 params.Params.n_sm;
  Alcotest.check_raises "non-positive constant"
    (Invalid_argument "Params.of_microbenchmarks: non-positive constant")
    (fun () ->
      ignore
        (Params.of_microbenchmarks Gpu.Arch.gtx980 ~l_word:0.0 ~tau_sync:1e-9
           ~t_sync:1e-6))

let test_hyperthreading_factor () =
  (* 48KB block -> 96/48 = 2 *)
  Alcotest.(check int) "k=2 at cap" 2
    (Model.hyperthreading_factor params ~shared_words:12288);
  Alcotest.(check int) "k=6" 6
    (Model.hyperthreading_factor params ~shared_words:4000);
  Alcotest.(check int) "capped by MTBSM" 32
    (Model.hyperthreading_factor params ~shared_words:10)

let test_feasible () =
  let problem = P.make S.heat2d ~space:[| 1024; 1024 |] ~time:128 in
  (match
     Model.feasible params problem
       (C.make_exn ~t_t:8 ~t_s:[| 16; 64 |] ~threads:[| 128 |])
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "feasible rejected: %s" e);
  (* an over-capacity tile: Mtile = 2*(32+33)*(512+33) > 12288 *)
  match
    Model.feasible params problem
      (C.make_exn ~t_t:64 ~t_s:[| 32; 512 |] ~threads:[| 128 |])
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversized tile accepted"

(* Hand evaluation of the 1D model, k = 1 path (Equations 3-10), verbatim
   variant.  S = 1000, T = 100, tS = 20, tT = 10 with nV = 128:
     Nw      = 2 * ceil(100/10) = 20
     w       = ceil(1000 / 50) = 20
     mio     = 2 * (20 + 2*10) = 80 words
     m'      = 80 * 3e-11 + 2e-9 = 4.4e-9
     c       = 2 * Citer * sum_{d=0..4} ceil((20 + 2d) / 128) + 10 * tau
             = 2 * 4e-8 * 5 + 1e-8 = 4.1e-7
     Mtile   = 2 * (20 + 10 + 1) = 62 -> k = min(32, 24576/62) = 32,
               clamped by ceil(w / nSM) = ceil(20/16) = 2 -> k = 2
     Ttile   = m' + c + (k-1) max(m', c) = 4.4e-9 + 4.1e-7 + 4.1e-7
     rounds  = ceil(ceil(20/2)/16) = 1
     Talg    = 20 * (Ttile + Tsync) *)
let test_1d_hand_evaluation () =
  let problem = P.make S.jacobi1d ~space:[| 1000 |] ~time:100 in
  let cfg = C.make_exn ~t_t:10 ~t_s:[| 20 |] ~threads:[| 128 |] in
  let pr = ok (Model.predict ~variant:Model.Paper_verbatim params ~citer problem cfg) in
  Alcotest.(check int) "Nw" 20 pr.Model.n_wavefronts;
  Alcotest.(check int) "w" 20 pr.Model.wavefront_blocks;
  Alcotest.(check int) "mio" 80 pr.Model.io_words;
  Alcotest.(check int) "Mtile" 62 pr.Model.shared_words;
  Alcotest.(check int) "k clamped by blocks" 2 pr.Model.k;
  Alcotest.(check (float 1e-15)) "m'" 4.4e-9 pr.Model.m_transfer;
  Alcotest.(check (float 1e-12)) "c" 4.1e-7 pr.Model.c_compute;
  let ttile = 4.4e-9 +. 4.1e-7 +. 4.1e-7 in
  Alcotest.(check (float 1e-12)) "Ttile" ttile pr.Model.t_tile;
  Alcotest.(check int) "rounds" 1 pr.Model.sm_rounds;
  Alcotest.(check (float 1e-10)) "Talg" (20.0 *. (ttile +. 1.0e-6)) pr.Model.talg

(* 2D, k = 1 not reachable with tiny Mtile; force k = 2 with a 48KB tile.
   tS1 = 22, tS2 = 224, tT = 16: Mtile = 2*39*241 = 18798 > 12288 -> infeasible;
   use tS1 = 8, tS2 = 192, tT = 12: Mtile = 2*21*205 = 8610 -> k = 2 (24576/8610).
   chunks = ceil((512 + 12)/192) = 3; mio = 2*192*(8+24) = 12288 words. *)
let test_2d_structure () =
  let problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:48 in
  let cfg = C.make_exn ~t_t:12 ~t_s:[| 8; 192 |] ~threads:[| 256 |] in
  let pr = ok (Model.predict params ~citer problem cfg) in
  Alcotest.(check int) "Mtile" 8610 pr.Model.shared_words;
  Alcotest.(check int) "chunks" 3 pr.Model.chunks;
  Alcotest.(check int) "mio" 12288 pr.Model.io_words;
  Alcotest.(check int) "Nw" 8 pr.Model.n_wavefronts;
  (* w = ceil(512/28) = 19, k = min(2, ceil(19/16)=2) = 2 *)
  Alcotest.(check int) "k" 2 pr.Model.k;
  (* Equation 16, k>1: Ttile = m' + k max(m',c) chunks *)
  let expected =
    pr.Model.m_transfer
    +. (2.0 *. max pr.Model.m_transfer pr.Model.c_compute *. 3.0)
  in
  Alcotest.(check (float 1e-12)) "eq 16" expected pr.Model.t_tile

let test_3d_structure () =
  let problem = P.make S.heat3d ~space:[| 96; 96; 96 |] ~time:32 in
  let cfg = C.make_exn ~t_t:4 ~t_s:[| 4; 8; 32 |] ~threads:[| 128 |] in
  let pr = ok (Model.predict params ~citer problem cfg) in
  (* Equation 23: ceil((100/8) * (100/32)) = ceil(39.06) = 40 *)
  Alcotest.(check int) "sub-slabs" 40 pr.Model.chunks;
  (* Equation 24: mio = 2 * 8 * 32 * (4 + 8) = 6144 *)
  Alcotest.(check int) "mio" 6144 pr.Model.io_words;
  Alcotest.(check bool) "positive talg" true (pr.Model.talg > 0.0)

let test_variant_divergence_degenerate () =
  (* the verbatim widths undercount degenerate tiles by ~2x *)
  let problem = P.make S.jacobi2d ~space:[| 4096; 4096 |] ~time:512 in
  let cfg = C.make_exn ~t_t:2 ~t_s:[| 1; 256 |] ~threads:[| 256 |] in
  let v = ok (Model.predict ~variant:Model.Paper_verbatim params ~citer problem cfg) in
  let r = ok (Model.predict ~variant:Model.Refined params ~citer problem cfg) in
  Alcotest.(check bool) "verbatim undercounts degenerate shapes" true
    (r.Model.c_compute /. v.Model.c_compute > 1.5)

let test_variant_agreement_realistic () =
  (* on realistic tiles the two variants differ by only a few percent *)
  let problem = P.make S.jacobi2d ~space:[| 4096; 4096 |] ~time:512 in
  (* pitch 64 divides S1 and w = 64 fills exactly 2 rounds of k = 2, so the
     two variants' round accounting coincides and only the small width
     correction remains *)
  let cfg = C.make_exn ~t_t:32 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  let v = ok (Model.predict ~variant:Model.Paper_verbatim params ~citer problem cfg) in
  let r = ok (Model.predict ~variant:Model.Refined params ~citer problem cfg) in
  let ratio = r.Model.talg /. v.Model.talg in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f within [0.95, 1.15]" ratio)
    true
    (ratio > 0.95 && ratio < 1.15)

let test_invalid_inputs () =
  let problem = P.make S.heat2d ~space:[| 512; 512 |] ~time:48 in
  let cfg = C.make_exn ~t_t:12 ~t_s:[| 8; 192 |] ~threads:[| 256 |] in
  (match Model.predict params ~citer:(-1.0) problem cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative citer accepted");
  let problem1d = P.make S.jacobi1d ~space:[| 512 |] ~time:48 in
  match Model.predict params ~citer problem1d cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rank mismatch accepted"

let prop_model_ignores_threads =
  (* Section 7: threads-per-block is deliberately absent from the model *)
  QCheck.Test.make ~name:"prediction is thread-count invariant" ~count:60
    QCheck.(
      triple (int_range 1 8) (int_range 1 24) (int_range 0 8))
    (fun (tth, t_s1, thr_idx) ->
      let threads = List.nth [ 32; 64; 96; 128; 192; 256; 384; 512; 1024 ] thr_idx in
      let problem = P.make S.heat2d ~space:[| 2048; 2048 |] ~time:256 in
      let predict threads =
        match
          Model.predict params ~citer problem
            (C.make_exn ~t_t:(2 * tth) ~t_s:[| t_s1; 64 |] ~threads:[| threads |])
        with
        | Ok pr -> Some pr.Model.talg
        | Error _ -> None
      in
      match (predict threads, predict 128) with
      | Some a, Some b -> a = b
      | None, None -> true
      | _ -> false)

let prop_talg_monotone_in_time =
  QCheck.Test.make ~name:"Talg grows with T" ~count:60
    QCheck.(pair (int_range 1 10) (int_range 1 6))
    (fun (tscale, tth) ->
      let t_t = 2 * tth in
      let time = 32 * tscale in
      let talg time =
        let problem = P.make S.heat2d ~space:[| 1024; 1024 |] ~time in
        match
          Model.predict params ~citer problem
            (C.make_exn ~t_t ~t_s:[| 8; 64 |] ~threads:[| 128 |])
        with
        | Ok pr -> pr.Model.talg
        | Error e -> Alcotest.failf "predict: %s" e
      in
      talg time <= talg (2 * time))

let prop_talg_positive =
  QCheck.Test.make ~name:"Talg positive over the feasible space" ~count:100
    QCheck.(
      triple (int_range 1 8 (* tT/2 *)) (int_range 1 24) (int_range 1 6))
    (fun (tth, t_s1, ts2m) ->
      let cfg_r =
        C.make ~t_t:(2 * tth) ~t_s:[| t_s1; 32 * ts2m |] ~threads:[| 128 |]
      in
      match cfg_r with
      | Error _ -> QCheck.assume_fail ()
      | Ok cfg -> (
          let problem = P.make S.jacobi2d ~space:[| 2048; 2048 |] ~time:256 in
          match Model.predict params ~citer problem cfg with
          | Error _ -> true (* infeasible is fine *)
          | Ok pr ->
              pr.Model.talg > 0.0 && pr.Model.k >= 1
              && pr.Model.sm_rounds >= 1))

module Sens = Hextime_core.Sensitivity

let test_sensitivity_compute_bound () =
  let problem = P.make S.heat2d ~space:[| 4096; 4096 |] ~time:512 in
  let cfg = C.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  match Sens.analyze params ~citer problem cfg with
  | Error e -> Alcotest.failf "sensitivity: %s" e
  | Ok rows ->
      let get f =
        match List.find_opt (fun (r : Sens.row) -> r.Sens.factor = f) rows with
        | Some r -> r.Sens.elasticity
        | None -> Alcotest.fail "missing factor"
      in
      (* compute-bound tiles: Talg ~ C_iter, insensitive to L and T_sync *)
      Alcotest.(check bool) "C_iter elasticity near 1" true
        (abs_float (get Sens.C_iter -. 1.0) < 0.2);
      Alcotest.(check bool) "L negligible" true (abs_float (get Sens.L) < 0.1);
      Alcotest.(check bool) "T_sync negligible" true
        (abs_float (get Sens.T_sync) < 0.1)

let test_sensitivity_sorted_and_dominant () =
  let problem = P.make S.heat2d ~space:[| 4096; 4096 |] ~time:512 in
  let cfg = C.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  match Sens.analyze params ~citer problem cfg with
  | Error e -> Alcotest.failf "sensitivity: %s" e
  | Ok rows ->
      let magnitudes =
        List.map (fun (r : Sens.row) -> abs_float r.Sens.elasticity) rows
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a >= b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "sorted by magnitude" true (sorted magnitudes);
      Alcotest.(check bool) "dominant is head" true
        (Sens.dominant rows
        = (List.hd rows : Sens.row).Sens.factor)

let test_sensitivity_validation () =
  let problem = P.make S.heat2d ~space:[| 4096; 4096 |] ~time:512 in
  let cfg = C.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  match Sens.analyze ~epsilon:0.9 params ~citer problem cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad epsilon accepted"

let test_explain () =
  let problem = P.make S.heat2d ~space:[| 4096; 4096 |] ~time:512 in
  let cfg = C.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  match Model.explain params ~citer problem cfg with
  | Error e -> Alcotest.failf "explain: %s" e
  | Ok text ->
      List.iter
        (fun needle ->
          let n = String.length needle and h = String.length text in
          let rec go i =
            i + n <= h && (String.sub text i n = needle || go (i + 1))
          in
          Alcotest.(check bool) (Printf.sprintf "has %S" needle) true (go 0))
        [ "eq 3"; "eq 5"; "eq 11"; "T_alg"; "compute-bound" ]

(* Bit-identity of the Calc(Scalar) refactor: Model.predict routed through
   the arithmetic-signature functor must reproduce the frozen golden
   predictions (test/golden_model.ml, captured before the refactor) with
   every float bit and every discrete count identical. *)
let test_golden_bit_identity () =
  let module H = Hextime_harness in
  let module Baseline = Hextime_tileopt.Baseline in
  let regenerated =
    List.concat_map
      (fun (e : H.Experiments.t) ->
        let params = H.Microbench.params e.arch in
        let citer = H.Microbench.citer e.arch e.problem.P.stencil in
        let arr = Array.of_list (Baseline.data_points params e.problem) in
        let n = Array.length arr in
        let picks = [ 0; n / 3; n / 2; 2 * n / 3; n - 1 ] in
        List.concat_map
          (fun i ->
            let cfg = arr.(i) in
            List.filter_map
              (fun (vn, v) ->
                match Model.predict ~variant:v params ~citer e.problem cfg with
                | Error _ -> None
                | Ok pr ->
                    Some
                      (Printf.sprintf
                         "%s|%s|%s|%.17g|%.17g|%.17g|%.17g|%d|%d|%d|%d|%d|%d|%d"
                         (H.Experiments.id e) (C.id cfg) vn pr.Model.talg
                         pr.Model.t_tile pr.Model.m_transfer
                         pr.Model.c_compute pr.Model.k pr.Model.n_wavefronts
                         pr.Model.wavefront_blocks pr.Model.sm_rounds
                         pr.Model.shared_words pr.Model.io_words
                         pr.Model.chunks))
              [ ("refined", Model.Refined); ("verbatim", Model.Paper_verbatim) ])
          picks)
      (H.Experiments.all H.Experiments.Ci)
  in
  Alcotest.(check int)
    "golden line count"
    (List.length Golden_model.lines)
    (List.length regenerated);
  List.iteri
    (fun i (want, got) ->
      if want <> got then
        Alcotest.failf "golden line %d drifted:\n  want %s\n  got  %s" i want
          got)
    (List.combine Golden_model.lines regenerated)

let suite =
  [
    Alcotest.test_case "params" `Quick test_params;
    Alcotest.test_case "golden predictions bit-identical" `Slow
      test_golden_bit_identity;
    Alcotest.test_case "hyperthreading factor (eq 11)" `Quick test_hyperthreading_factor;
    Alcotest.test_case "feasibility (eq 31)" `Quick test_feasible;
    Alcotest.test_case "1D hand evaluation (eqs 3-12)" `Quick test_1d_hand_evaluation;
    Alcotest.test_case "2D structure (eqs 13-17)" `Quick test_2d_structure;
    Alcotest.test_case "3D structure (eqs 23-30)" `Quick test_3d_structure;
    Alcotest.test_case "variant: degenerate divergence" `Quick test_variant_divergence_degenerate;
    Alcotest.test_case "variant: realistic agreement" `Quick test_variant_agreement_realistic;
    Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
    Alcotest.test_case "explain derivation" `Quick test_explain;
    Alcotest.test_case "sensitivity compute-bound" `Quick test_sensitivity_compute_bound;
    Alcotest.test_case "sensitivity sorted" `Quick test_sensitivity_sorted_and_dominant;
    Alcotest.test_case "sensitivity validation" `Quick test_sensitivity_validation;
    QCheck_alcotest.to_alcotest prop_model_ignores_threads;
    QCheck_alcotest.to_alcotest prop_talg_monotone_in_time;
    QCheck_alcotest.to_alcotest prop_talg_positive;
  ]
