(* hexlint: seeded-bug tests and sweep cleanliness.

   Each test takes a kernel the lowering actually produced, plants exactly
   one defect by mutating the IR, and asserts that the pass responsible
   reports it while the other passes stay silent — the lint equivalent of
   mutation testing.  The final tests run the driver over every feasible
   baseline configuration of the CI-scale experiment grid and require zero
   findings: the lowered schedules conform to the model everywhere the
   validation sweep goes. *)

module Ir = Hextime_ir.Ir
module Hexlint = Hextime_analysis.Hexlint
module Arch = Hextime_gpu.Arch
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Lower = Hextime_tiling.Lower
module Hexgeom = Hextime_tiling.Hexgeom
module Model = Hextime_core.Model
module Baseline = Hextime_tileopt.Baseline
module H = Hextime_harness

let get = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let arch = Arch.gtx980
let problem = Problem.make Stencil.heat2d ~space:[| 1024; 1024 |] ~time:128
let config = Config.make_exn ~t_t:8 ~t_s:[| 8; 64 |] ~threads:[| 256 |]
let kernel () = get (Lower.ir_kernel problem config ~family:Hexgeom.Green)
let params = H.Microbench.params arch
let citer = H.Microbench.citer arch Stencil.heat2d

let priced_stride =
  let wl = get (Lower.workload problem config ~family:Hexgeom.Green) in
  wl.Hextime_gpu.Workload.row_stride

(* run the four kernel-level passes and return them labelled *)
let run_passes k =
  [
    ("races", Hexlint.check_races k);
    ("bounds", Hexlint.check_bounds k);
    ("banks", Hexlint.check_banks arch ~priced_stride k);
    ("resources", Hexlint.check_resources arch k);
  ]

let assert_only_pass ~expected ?(severity = Hexlint.Error) k =
  List.iter
    (fun (name, findings) ->
      if name = expected then begin
        Alcotest.(check bool)
          (Printf.sprintf "pass %s reports the planted defect" name)
          true (findings <> []);
        Alcotest.(check bool)
          (Printf.sprintf "pass %s reports the planted severity" name)
          true
          (List.exists (fun f -> f.Hexlint.severity = severity) findings)
      end
      else
        Alcotest.(check (list string))
          (Printf.sprintf "pass %s stays silent" name)
          []
          (List.map (fun f -> f.Hexlint.message) findings))
    (run_passes k)

(* rebuild a kernel with its per-chunk statement list rewritten *)
let with_chunk_body (k : Ir.kernel) f =
  let body =
    match k.Ir.body with
    | [ Ir.Chunk_loop { trips; body } ] ->
        [ Ir.Chunk_loop { trips; body = f body } ]
    | stmts -> f stmts
  in
  { k with Ir.body }

let test_clean_kernel_passes () =
  List.iter
    (fun (name, findings) ->
      Alcotest.(check (list string))
        (Printf.sprintf "pass %s is clean on the lowered kernel" name)
        []
        (List.map (fun f -> f.Hexlint.message) findings))
    (run_passes (kernel ()))

(* --- races ------------------------------------------------------------- *)

let test_seeded_missing_barrier () =
  (* drop the barrier after the first compute row: row 0 writes the pong
     half that row 1 reads, with no sync between the two thread
     partitions any more *)
  let dropped = ref false in
  let mutant =
    with_chunk_body (kernel ())
      (List.filter (fun s ->
           match s with
           | Ir.Sync when not !dropped ->
               dropped := true;
               false
           | _ -> true))
  in
  (* the first barrier is the one after the staged load: load writes the
     ping half that row 0 then reads *)
  assert_only_pass ~expected:"races" mutant

let test_seeded_redundant_barrier () =
  let duplicated = ref false in
  let mutant =
    with_chunk_body (kernel ())
      (List.concat_map (fun s ->
           match s with
           | Ir.Sync when not !duplicated ->
               duplicated := true;
               [ Ir.Sync; Ir.Sync ]
           | s -> [ s ]))
  in
  assert_only_pass ~expected:"races" ~severity:Hexlint.Warning mutant

let test_seeded_same_half_row () =
  let mutant =
    with_chunk_body (kernel ())
      (List.map (fun s ->
           match s with
           | Ir.Compute_row c when c.Ir.row.Ir.r = 0 ->
               Ir.Compute_row { c with Ir.writes = c.Ir.reads }
           | s -> s))
  in
  let findings = Hexlint.check_races mutant in
  Alcotest.(check bool) "intra-row same-half race reported" true
    (List.exists
       (fun f -> Test_util.contains f.Hexlint.message "same buffer half")
       findings)

(* --- bounds ------------------------------------------------------------ *)

let test_seeded_wide_tap () =
  let k = kernel () in
  let rule =
    match k.Ir.rule with
    | Ir.Linear { taps; constant } ->
        let taps =
          match taps with
          | t :: rest ->
              let offset = Array.copy t.Ir.offset in
              offset.(0) <- k.Ir.order + 1;
              { t with Ir.offset } :: rest
          | [] -> []
        in
        Ir.Linear { taps; constant }
    | r -> r
  in
  assert_only_pass ~expected:"bounds" { k with Ir.rule }

let test_seeded_shrunk_window () =
  (* shrink the dim-0 shared extent and keep the allocation consistent
     with the shrunken extents: B2 stays satisfied, the widest row no
     longer fits its halo (B3) *)
  let k = kernel () in
  let smem_ext = Array.copy k.Ir.smem_ext in
  smem_ext.(0) <- smem_ext.(0) - 2;
  let smem_words =
    2 * k.Ir.word_factor * Array.fold_left ( * ) 1 smem_ext
  in
  assert_only_pass ~expected:"bounds" { k with Ir.smem_ext; smem_words }

let test_seeded_inconsistent_allocation () =
  let k = kernel () in
  assert_only_pass ~expected:"bounds"
    { k with Ir.smem_words = k.Ir.smem_words - 1 }

(* --- banks ------------------------------------------------------------- *)

let test_seeded_conflicted_stride () =
  (* stride 32 = the bank count: 32-way serialisation, and it disagrees
     with the stride the simulator priced *)
  let mutant =
    with_chunk_body (kernel ())
      (List.map (fun s ->
           match s with
           | Ir.Compute_row c -> Ir.Compute_row { c with Ir.stride = 32 }
           | s -> s))
  in
  let findings = Hexlint.check_banks arch ~priced_stride mutant in
  Alcotest.(check bool) "stride disagreement is an error" true
    (List.exists
       (fun f ->
         f.Hexlint.severity = Hexlint.Error
         && Test_util.contains f.Hexlint.message "disagrees")
       findings);
  Alcotest.(check bool) "32-way conflict warning" true
    (List.exists
       (fun f ->
         f.Hexlint.severity = Hexlint.Warning
         && Test_util.contains f.Hexlint.message "32-way")
       findings);
  (* the other passes do not look at strides *)
  Alcotest.(check (list string)) "races silent" []
    (List.map (fun f -> f.Hexlint.message) (Hexlint.check_races mutant));
  Alcotest.(check (list string)) "bounds silent" []
    (List.map (fun f -> f.Hexlint.message) (Hexlint.check_bounds mutant))

let test_static_matches_dynamic_pricing () =
  (* the static degree formula must agree with Smem.conflict_factor for
     every stride a tile could plausibly have *)
  List.iter
    (fun stride ->
      let mutant =
        with_chunk_body (kernel ())
          (List.map (fun s ->
               match s with
               | Ir.Compute_row c -> Ir.Compute_row { c with Ir.stride }
               | s -> s))
      in
      let findings = Hexlint.check_banks arch ~priced_stride:stride mutant in
      Alcotest.(check (list string))
        (Printf.sprintf "no cost-model drift at stride %d" stride)
        []
        (List.filter_map
           (fun f ->
             if Test_util.contains f.Hexlint.message "drift" then
               Some f.Hexlint.message
             else None)
           findings))
    (List.init 128 (fun i -> i + 1))

(* --- resources --------------------------------------------------------- *)

let test_seeded_register_explosion () =
  assert_only_pass ~expected:"resources"
    { (kernel ()) with Ir.regs_per_thread = 100_000 }

let test_seeded_partial_warp () =
  assert_only_pass ~expected:"resources" ~severity:Hexlint.Warning
    { (kernel ()) with Ir.threads = 48 }

let test_seeded_oversized_allocation () =
  (* allocation beyond the per-block cap: resources rejects it; keep the
     extents consistent so bounds stays silent *)
  let k = kernel () in
  let smem_ext = Array.copy k.Ir.smem_ext in
  smem_ext.(1) <- smem_ext.(1) * 16;
  let smem_words =
    2 * k.Ir.word_factor * Array.fold_left ( * ) 1 smem_ext
  in
  assert_only_pass ~expected:"resources" { k with Ir.smem_ext; smem_words }

(* --- conformance -------------------------------------------------------- *)

let prediction () = get (Model.predict params ~citer problem config)
let program () = get (Lower.ir_program problem config)

let test_clean_conformance () =
  Alcotest.(check (list string)) "conformance clean on lowered program" []
    (List.map
       (fun f -> f.Hexlint.message)
       (Hexlint.check_conformance (prediction ()) (program ())))

let test_seeded_wrong_transfer () =
  let p = program () in
  let kernels =
    List.map
      (fun (k : Ir.kernel) ->
        if k.Ir.family = Ir.Green then
          with_chunk_body k
            (List.map (fun s ->
                 match s with
                 | Ir.Load_tile { words; run_length; dst } ->
                     Ir.Load_tile { words = words * 2; run_length; dst }
                 | s -> s))
        else k)
      p.Ir.kernels
  in
  let findings =
    Hexlint.check_conformance (prediction ()) { p with Ir.kernels }
  in
  Alcotest.(check bool) "io-word mismatch reported" true
    (List.exists
       (fun f -> Test_util.contains f.Hexlint.message "m_io")
       findings)

let test_seeded_missing_wavefront () =
  let p = program () in
  let host = { p.Ir.host with Ir.bands = p.Ir.host.Ir.bands - 1 } in
  let findings =
    Hexlint.check_conformance (prediction ()) { p with Ir.host }
  in
  Alcotest.(check bool) "missing launch round reported" true
    (List.exists
       (fun f -> Test_util.contains f.Hexlint.message "wavefront")
       findings)

let test_seeded_dropped_sync_breaks_conformance () =
  (* the model charges t_T + 2 barriers per chunk; removing one must be
     caught by the conformance count as well as the race detector *)
  let p = program () in
  let kernels =
    List.map
      (fun (k : Ir.kernel) ->
        if k.Ir.family = Ir.Green then
          let dropped = ref false in
          with_chunk_body k
            (List.filter (fun s ->
                 match s with
                 | Ir.Sync when not !dropped ->
                     dropped := true;
                     false
                 | _ -> true))
        else k)
      p.Ir.kernels
  in
  let findings =
    Hexlint.check_conformance (prediction ()) { p with Ir.kernels }
  in
  Alcotest.(check bool) "barrier count mismatch reported" true
    (List.exists
       (fun f -> Test_util.contains f.Hexlint.message "barriers per chunk")
       findings)

(* --- the driver over the CI-scale sweep --------------------------------- *)

let test_sweep_is_clean () =
  let linted = ref 0 in
  List.iter
    (fun (e : H.Experiments.t) ->
      let params = H.Microbench.params e.arch in
      let citer = H.Microbench.citer e.arch e.problem.Problem.stencil in
      List.iter
        (fun cfg ->
          match Hexlint.lint_config params ~arch:e.arch ~citer e.problem cfg with
          | Error _ -> () (* infeasible for this experiment: not lintable *)
          | Ok r ->
              incr linted;
              Alcotest.(check (list string))
                (Printf.sprintf "%s %s clean" r.Hexlint.problem_id
                   r.Hexlint.config_id)
                []
                (List.map (fun f -> f.Hexlint.message) r.Hexlint.findings))
        (Baseline.data_points params e.problem))
    (H.Experiments.all H.Experiments.Ci);
  Alcotest.(check bool) "swept a non-trivial space" true (!linted > 1000)

let test_sweep_counts_match_model () =
  (* the conformance identity, checked directly: IR per-chunk counts equal
     the prediction's fields on a sample of feasible configurations *)
  List.iter
    (fun (e : H.Experiments.t) ->
      let params = H.Microbench.params e.arch in
      let citer = H.Microbench.citer e.arch e.problem.Problem.stencil in
      let checked = ref 0 in
      List.iter
        (fun cfg ->
          if !checked < 25 then
            match
              ( Model.predict params ~citer e.problem cfg,
                Lower.ir_program e.problem cfg )
            with
            | Ok pr, Ok prog ->
                incr checked;
                List.iter
                  (fun (k : Ir.kernel) ->
                    Alcotest.(check int) "io words" pr.Model.io_words
                      (Ir.io_words_per_chunk k);
                    Alcotest.(check int) "shared words" pr.Model.shared_words
                      k.Ir.smem_words;
                    Alcotest.(check int) "chunks" pr.Model.chunks
                      (Ir.chunk_trips k);
                    Alcotest.(check int) "syncs per chunk" (cfg.Config.t_t + 2)
                      (Ir.syncs_per_chunk k))
                  prog.Ir.kernels
            | _ -> ())
        (Baseline.data_points params e.problem);
      Alcotest.(check bool)
        (Printf.sprintf "checked configurations for %s" (H.Experiments.id e))
        true (!checked > 0))
    (H.Experiments.all H.Experiments.Ci)

let test_render_json_shape () =
  let r = get (Hexlint.lint_config params ~arch ~citer problem config) in
  let json = Hexlint.render_json [ r ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true
        (Test_util.contains json needle))
    [
      "\"problem\": \"heat2d:1024x1024xT128\"";
      "\"config\": \"tT8-tS8x64-thr256\"";
      "\"arch\": \"gtx980\"";
      "\"errors\": 0";
      "\"findings\": []";
    ]

let suite =
  [
    Alcotest.test_case "clean kernel: all passes silent" `Quick
      test_clean_kernel_passes;
    Alcotest.test_case "seeded: dropped barrier -> races" `Quick
      test_seeded_missing_barrier;
    Alcotest.test_case "seeded: duplicated barrier -> races warning" `Quick
      test_seeded_redundant_barrier;
    Alcotest.test_case "seeded: same-half row -> races" `Quick
      test_seeded_same_half_row;
    Alcotest.test_case "seeded: tap beyond halo -> bounds" `Quick
      test_seeded_wide_tap;
    Alcotest.test_case "seeded: shrunken window -> bounds" `Quick
      test_seeded_shrunk_window;
    Alcotest.test_case "seeded: inconsistent allocation -> bounds" `Quick
      test_seeded_inconsistent_allocation;
    Alcotest.test_case "seeded: stride 32 -> banks" `Quick
      test_seeded_conflicted_stride;
    Alcotest.test_case "static bank model agrees with Smem pricing" `Quick
      test_static_matches_dynamic_pricing;
    Alcotest.test_case "seeded: register explosion -> resources" `Quick
      test_seeded_register_explosion;
    Alcotest.test_case "seeded: partial warp -> resources warning" `Quick
      test_seeded_partial_warp;
    Alcotest.test_case "seeded: oversized allocation -> resources" `Quick
      test_seeded_oversized_allocation;
    Alcotest.test_case "conformance clean on lowered program" `Quick
      test_clean_conformance;
    Alcotest.test_case "seeded: doubled load -> conformance" `Quick
      test_seeded_wrong_transfer;
    Alcotest.test_case "seeded: missing wavefront -> conformance" `Quick
      test_seeded_missing_wavefront;
    Alcotest.test_case "seeded: dropped barrier -> conformance count" `Quick
      test_seeded_dropped_sync_breaks_conformance;
    Alcotest.test_case "CI-scale sweep: zero findings" `Quick
      test_sweep_is_clean;
    Alcotest.test_case "CI-scale sweep: IR counts equal the model's" `Quick
      test_sweep_counts_match_model;
    Alcotest.test_case "json rendering" `Quick test_render_json_shape;
  ]
