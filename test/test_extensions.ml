(* The extension modules: pseudo-code emission, the naive (non-time-tiled)
   lowering, the local solver, CSV export and the ASCII scatter plot. *)

module Gpu = Hextime_gpu
module S = Hextime_stencil.Stencil
module P = Hextime_stencil.Problem
module C = Hextime_tiling.Config
module Codegen = Hextime_tiling.Codegen
module Naive = Hextime_tiling.Naive
module Hexgeom = Hextime_tiling.Hexgeom
module Params = Hextime_core.Params
module Model = Hextime_core.Model
module Descent = Hextime_tileopt.Descent
module Space = Hextime_tileopt.Space
module H = Hextime_harness

let arch = Gpu.Arch.gtx980

let params =
  Params.of_microbenchmarks arch ~l_word:3.0e-11 ~tau_sync:1.0e-9 ~t_sync:1.0e-6

let citer = 4.0e-8
let problem = P.make S.heat2d ~space:[| 1024; 1024 |] ~time:128
let cfg = C.make_exn ~t_t:8 ~t_s:[| 8; 64 |] ~threads:[| 256 |]

let ok = function Ok x -> x | Error e -> Alcotest.failf "error: %s" e

(* --- codegen ----------------------------------------------------------- *)

let test_codegen_kernel_structure () =
  let text = ok (Codegen.kernel problem cfg ~family:Hexgeom.Green) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "kernel has %S" needle) true
        (Test_util.contains text needle))
    [
      "__global__ void heat2d_green";
      "__shared__ float smem";
      "__syncthreads();";
      "for (int q = 0; q <";
      "for (int r = 0; r < 8";
      "0.125";
    ]

let test_codegen_host_structure () =
  let text = ok (Codegen.host problem cfg) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "host has %S" needle) true
        (Test_util.contains text needle))
    [ "heat2d_yellow<<<"; "heat2d_green <<<"; "cudaDeviceSynchronize" ]

let test_codegen_program_both_kernels () =
  let text = ok (Codegen.program problem cfg) in
  Alcotest.(check bool) "yellow kernel present" true
    (Test_util.contains text "__global__ void heat2d_yellow");
  Alcotest.(check bool) "green kernel present" true
    (Test_util.contains text "__global__ void heat2d_green")

let test_codegen_nonlinear_body () =
  let gproblem = P.make S.gradient2d ~space:[| 1024; 1024 |] ~time:64 in
  let text = ok (Codegen.kernel gproblem cfg ~family:Hexgeom.Green) in
  Alcotest.(check bool) "nonlinear body marked" true
    (Test_util.contains text "user_body")

let test_codegen_rejects () =
  match Codegen.program problem (C.make_exn ~t_t:4 ~t_s:[| 8 |] ~threads:[| 32 |]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rank mismatch accepted"

let test_codegen_3d () =
  let p3 = P.make S.heat3d ~space:[| 96; 96; 96 |] ~time:16 in
  let cfg3 = C.make_exn ~t_t:4 ~t_s:[| 4; 8; 32 |] ~threads:[| 128 |] in
  let text = ok (Codegen.kernel p3 cfg3 ~family:Hexgeom.Yellow) in
  Alcotest.(check bool) "3D indices" true (Test_util.contains text "const int l =");
  Alcotest.(check bool) "sub-slab loop" true (Test_util.contains text "sub-slabs")

(* --- naive lowering ----------------------------------------------------- *)

let test_naive_compile () =
  let kernel, launches =
    ok (Naive.compile problem ~block:[| 16; 64 |] ~threads:256)
  in
  Alcotest.(check int) "one launch per time step" 128 launches;
  (* 1024/16 * 1024/64 = 64 * 16 blocks *)
  Alcotest.(check int) "block count" 1024 (Gpu.Kernel.total_blocks kernel)

let test_naive_3d () =
  let p3 = P.make S.laplacian3d ~space:[| 96; 96; 96 |] ~time:8 in
  let kernel, launches = ok (Naive.compile p3 ~block:[| 8; 8; 32 |] ~threads:256) in
  Alcotest.(check int) "launches" 8 launches;
  Alcotest.(check int) "blocks" (12 * 12 * 3) (Gpu.Kernel.total_blocks kernel)

let test_naive_validation () =
  (match Naive.compile problem ~block:[| 16; 48 |] ~threads:256 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-warp-multiple block accepted");
  match Naive.compile problem ~block:[| 16 |] ~threads:256 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rank mismatch accepted"

let test_naive_is_memory_bound () =
  (* the motivation: tuned naive is far slower than tuned time tiling *)
  let naive = ok (Naive.best arch problem) in
  let ctx = { Hextime_tileopt.Strategies.arch; params; citer; problem } in
  let hhc = ok (Hextime_tileopt.Strategies.model_top10 ctx) in
  let speedup =
    naive.Naive.time_s
    /. hhc.Hextime_tileopt.Strategies.measurement.Hextime_tileopt.Runner.time_s
  in
  Alcotest.(check bool)
    (Printf.sprintf "time tiling speedup %.1fx > 3x" speedup)
    true (speedup > 3.0)

(* --- descent solver ------------------------------------------------------ *)

let test_descent_finds_good_point () =
  let sol = ok (Descent.solve ~restarts:6 params ~citer problem) in
  Alcotest.(check bool) "positive objective" true (sol.Descent.talg > 0.0);
  Alcotest.(check bool) "evaluations counted" true (sol.Descent.evaluations > 10);
  let gap = Descent.optimality_gap params ~citer problem sol in
  Alcotest.(check bool)
    (Printf.sprintf "gap %.1f%% below 30%%" (100.0 *. gap))
    true
    (gap >= -1e-9 && gap < 0.30)

let test_descent_verbatim_struggles_more () =
  (* not a strict theorem, but on this instance the rugged verbatim
     objective must not beat the smooth one's gap by a wide margin *)
  let smooth = ok (Descent.solve ~restarts:4 params ~citer problem) in
  let rugged =
    ok (Descent.solve ~variant:Model.Paper_verbatim ~restarts:4 params ~citer problem)
  in
  let gs = Descent.optimality_gap params ~citer problem smooth in
  let gr =
    Descent.optimality_gap ~variant:Model.Paper_verbatim params ~citer problem
      rugged
  in
  Alcotest.(check bool)
    (Printf.sprintf "verbatim gap %.1f%% >= smooth gap %.1f%% - 5%%"
       (100.0 *. gr) (100.0 *. gs))
    true
    (gr >= gs -. 0.05)

let test_descent_restart_validation () =
  match Descent.solve ~restarts:0 params ~citer problem with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero restarts accepted"

(* --- export -------------------------------------------------------------- *)

let sweep =
  (H.Sweep.baseline ~limit:40 { H.Experiments.arch; problem }).H.Sweep.points

let test_export_sweep_csv () =
  let csv = H.Export.sweep_csv sweep in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + one row per point"
    (1 + List.length sweep)
    (List.length lines);
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header fields" true
        (Test_util.contains header "predicted_s" && Test_util.contains header "measured_s")
  | [] -> Alcotest.fail "empty csv");
  (* every data row has the full column count *)
  List.iteri
    (fun i line ->
      if i > 0 then
        Alcotest.(check int)
          (Printf.sprintf "row %d arity" i)
          10
          (List.length (String.split_on_char ',' line)))
    lines

let test_export_scatter_csv () =
  let csv = H.Export.scatter_csv [ (1.0, 2.0); (3.0, 4.0) ] in
  Alcotest.(check bool) "rows present" true
    (Test_util.contains csv "1.000000e+00,2.000000e+00")

let test_export_write_file () =
  let path = Filename.temp_file "hextime" ".csv" in
  (match H.Export.write_file ~path "a,b\n1,2\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write failed: %s" e);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "a,b" line

let test_export_bad_path () =
  match H.Export.write_file ~path:"/nonexistent-dir/x.csv" "a" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad path accepted"

(* --- skewed (time-skewing wavefront) scheme -------------------------------- *)

let test_skewed_correctness () =
  List.iter
    (fun (st, sp, tm, cfg) ->
      let problem = P.make st ~space:sp ~time:tm in
      let init = Hextime_stencil.Reference.default_init problem in
      match Hextime_tiling.Skewed.verify problem cfg ~init with
      | Ok () -> ()
      | Error e -> Alcotest.failf "skewed %s: %s" st.S.name e)
    [
      (S.jacobi1d, [| 40 |], 10, C.make_exn ~t_t:4 ~t_s:[| 6 |] ~threads:[| 32 |]);
      (S.heat2d, [| 24; 32 |], 8, C.make_exn ~t_t:4 ~t_s:[| 5; 32 |] ~threads:[| 64 |]);
      (S.gradient2d, [| 20; 32 |], 6, C.make_exn ~t_t:2 ~t_s:[| 4; 32 |] ~threads:[| 32 |]);
      (S.heat3d, [| 12; 10; 32 |], 5, C.make_exn ~t_t:2 ~t_s:[| 4; 4; 32 |] ~threads:[| 32 |]);
      (S.jacobi2d_order2, [| 22; 32 |], 5, C.make_exn ~t_t:2 ~t_s:[| 5; 32 |] ~threads:[| 32 |]);
    ]

let test_skewed_wavefront_structure () =
  let widths =
    Hextime_tiling.Skewed.wavefront_widths ~order:1 ~t_s:8 ~t_t:4 ~space:100
      ~time:16
  in
  (* ramps up from 1 and back down to 1 *)
  Alcotest.(check int) "starts at one tile" 1 (List.hd widths);
  Alcotest.(check int) "ends at one tile" 1 (List.hd (List.rev widths));
  (* total tiles cover the skewed area *)
  Alcotest.(check bool) "many more wavefronts than hexagonal" true
    (List.length widths
    > Hextime_tiling.Hexgeom.num_wavefronts ~t_t:4 ~time:16)

let test_skewed_kernel_batching () =
  let p2 = P.make S.heat2d ~space:[| 256; 64 |] ~time:32 in
  let cfg2 = C.make_exn ~t_t:8 ~t_s:[| 16; 32 |] ~threads:[| 64 |] in
  let kernels = ok (Hextime_tiling.Skewed.compile_kernels p2 cfg2) in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 kernels in
  let widths =
    Hextime_tiling.Skewed.wavefront_widths ~order:1 ~t_s:16 ~t_t:8 ~space:256
      ~time:32
  in
  Alcotest.(check int) "batched launches cover all wavefronts"
    (List.length widths) total;
  (* batches preserve per-wavefront block totals *)
  let kernel_blocks =
    List.fold_left
      (fun a (k, n) -> a + (n * Gpu.Kernel.total_blocks k))
      0 kernels
  in
  Alcotest.(check int) "total tiles preserved"
    (List.fold_left ( + ) 0 widths)
    kernel_blocks

let test_skewed_slower_than_hexagonal () =
  let problem2 = P.make S.heat2d ~space:[| 2048; 2048 |] ~time:512 in
  let cfg2 = C.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  let hex = ok (Hextime_tileopt.Runner.measure arch problem2 cfg2) in
  let skew = ok (Hextime_tiling.Skewed.measure arch problem2 cfg2) in
  Alcotest.(check bool)
    (Printf.sprintf "skewed %.3fs >= hexagonal %.3fs" skew
       hex.Hextime_tileopt.Runner.time_s)
    true
    (skew >= hex.Hextime_tileopt.Runner.time_s *. 0.98)

(* --- overtile (redundant-computation) scheme -------------------------------- *)

let test_overtile_correctness () =
  List.iter
    (fun (st, sp, tm, cfg) ->
      let problem = P.make st ~space:sp ~time:tm in
      let init = Hextime_stencil.Reference.default_init problem in
      match Hextime_tiling.Overtile.verify problem cfg ~init with
      | Ok () -> ()
      | Error e -> Alcotest.failf "overtile %s: %s" st.S.name e)
    [
      (S.jacobi1d, [| 50 |], 9, C.make_exn ~t_t:4 ~t_s:[| 8 |] ~threads:[| 32 |]);
      (S.heat2d, [| 24; 32 |], 7, C.make_exn ~t_t:2 ~t_s:[| 6; 32 |] ~threads:[| 64 |]);
      (S.gradient2d, [| 20; 32 |], 5, C.make_exn ~t_t:4 ~t_s:[| 5; 32 |] ~threads:[| 32 |]);
      (S.heat3d, [| 12; 10; 32 |], 4, C.make_exn ~t_t:2 ~t_s:[| 4; 5; 32 |] ~threads:[| 32 |]);
      (S.jacobi2d_order2, [| 20; 32 |], 4, C.make_exn ~t_t:2 ~t_s:[| 5; 32 |] ~threads:[| 32 |]);
    ]

let test_overtile_redundancy () =
  (* redundancy grows with the time-tile depth and is > 1 whenever t_t > 1 *)
  let r tt = Hextime_tiling.Overtile.redundancy_factor ~order:1 ~t_s:[| 16; 64 |] ~t_t:tt in
  Alcotest.(check bool) "tT=2 modest" true (r 2 > 1.0 && r 2 < 1.2);
  Alcotest.(check bool) "monotone" true (r 8 > r 4 && r 4 > r 2);
  Alcotest.(check bool) "tT=8 substantial" true (r 8 > 1.5)

let test_overtile_fewer_launches () =
  let problem2 = P.make S.heat2d ~space:[| 1024; 1024 |] ~time:64 in
  let cfg2 = C.make_exn ~t_t:4 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  let kernels = ok (Hextime_tiling.Overtile.compile_kernels problem2 cfg2) in
  let launches = List.fold_left (fun a (_, n) -> a + n) 0 kernels in
  (* ceil(T / t_t) = 16 launches, half of hexagonal's 32 *)
  Alcotest.(check int) "one launch per band" 16 launches

let test_overtile_loses_at_deep_tiles () =
  (* the crossover: deep time tiles make redundant computation dominate *)
  let problem2 = P.make S.heat2d ~space:[| 4096; 4096 |] ~time:1024 in
  let cfg = C.make_exn ~t_t:12 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  let hex = ok (Hextime_tileopt.Runner.measure arch problem2 cfg) in
  let ot = ok (Hextime_tiling.Overtile.measure arch problem2 cfg) in
  Alcotest.(check bool)
    (Printf.sprintf "overtile %.3fs slower than hexagonal %.3fs at tT=12" ot
       hex.Hextime_tileopt.Runner.time_s)
    true
    (ot > 1.2 *. hex.Hextime_tileopt.Runner.time_s)

(* --- autotune -------------------------------------------------------------- *)

let test_autotune_improves_with_budget () =
  let small =
    ok (Hextime_tileopt.Autotune.search ~budget:30 ~seed:"t" arch params problem)
  in
  let large =
    ok (Hextime_tileopt.Autotune.search ~budget:300 ~seed:"t" arch params problem)
  in
  Alcotest.(check bool) "budget respected (small)" true
    (small.Hextime_tileopt.Autotune.measurements <= 30 + 12);
  Alcotest.(check bool) "larger budget no worse" true
    (large.Hextime_tileopt.Autotune.time_s
    <= small.Hextime_tileopt.Autotune.time_s +. 1e-12)

let test_autotune_deterministic () =
  let a = ok (Hextime_tileopt.Autotune.search ~budget:60 ~seed:"d" arch params problem) in
  let b = ok (Hextime_tileopt.Autotune.search ~budget:60 ~seed:"d" arch params problem) in
  Alcotest.(check (float 0.0)) "same seed, same result"
    a.Hextime_tileopt.Autotune.time_s b.Hextime_tileopt.Autotune.time_s

let test_autotune_validation () =
  match Hextime_tileopt.Autotune.search ~budget:5 arch params problem with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tiny budget accepted"

(* --- campaign -------------------------------------------------------------- *)

let test_campaign_ci_estimate () =
  let e = H.Campaign.estimate H.Experiments.Ci in
  Alcotest.(check bool) "points counted" true (e.H.Campaign.data_points > 1000);
  Alcotest.(check bool) "compile cost positive" true (e.H.Campaign.compile_hours > 0.0);
  Alcotest.(check bool) "run cost positive" true (e.H.Campaign.run_hours > 0.0);
  (* compile cost is exactly feasible points * 20s: rejected configurations
     must no longer inflate the compilation bill *)
  Alcotest.(check (float 1e-6)) "compile arithmetic"
    (float_of_int e.H.Campaign.data_points *. 20.0 /. 3600.0)
    e.H.Campaign.compile_hours;
  Alcotest.(check bool) "rejected counted separately" true
    (e.H.Campaign.rejected_points >= 0);
  let text = H.Campaign.render e in
  Alcotest.(check bool) "renders" true (Test_util.contains text "dedicated machine time");
  Alcotest.(check bool) "renders rejected count" true
    (Test_util.contains text "rejected")

let test_campaign_validation () =
  Alcotest.check_raises "runs < 1"
    (Invalid_argument "Campaign.estimate: runs < 1") (fun () ->
      ignore (H.Campaign.estimate ~runs_per_point:0 H.Experiments.Ci))

(* --- double precision ------------------------------------------------------ *)

let problem_f64 =
  P.make ~precision:Hextime_stencil.Problem.F64 S.heat2d
    ~space:[| 1024; 1024 |] ~time:128

let test_f64_footprints_double () =
  let fp32 = Hextime_tiling.Footprint.of_problem problem cfg in
  let fp64 = Hextime_tiling.Footprint.of_problem problem_f64 cfg in
  Alcotest.(check int) "input words double"
    (2 * fp32.Hextime_tiling.Footprint.input_words)
    fp64.Hextime_tiling.Footprint.input_words;
  Alcotest.(check int) "shared words double"
    (2 * fp32.Hextime_tiling.Footprint.shared_words)
    fp64.Hextime_tiling.Footprint.shared_words;
  Alcotest.(check int) "chunk structure unchanged"
    fp32.Hextime_tiling.Footprint.chunks fp64.Hextime_tiling.Footprint.chunks

let test_f64_citer_penalty () =
  let f32 = H.Microbench.citer arch S.heat2d in
  let f64 =
    H.Microbench.citer ~precision:Hextime_stencil.Problem.F64 arch S.heat2d
  in
  Alcotest.(check bool)
    (Printf.sprintf "F64 C_iter %.2e >> F32 %.2e" f64 f32)
    true
    (f64 > 3.0 *. f32)

let test_f64_model_and_measurement () =
  let citer64 =
    H.Microbench.citer ~precision:Hextime_stencil.Problem.F64 arch S.heat2d
  in
  (match Model.predict params ~citer:citer64 problem_f64 cfg with
  | Ok pr -> Alcotest.(check bool) "F64 prediction positive" true (pr.Model.talg > 0.0)
  | Error e -> Alcotest.failf "F64 predict: %s" e);
  let m32 = ok (Hextime_tileopt.Runner.measure arch problem cfg) in
  let m64 = ok (Hextime_tileopt.Runner.measure arch problem_f64 cfg) in
  Alcotest.(check bool)
    (Printf.sprintf "F64 %.1f GF/s well below F32 %.1f"
       m64.Hextime_tileopt.Runner.gflops m32.Hextime_tileopt.Runner.gflops)
    true
    (m64.Hextime_tileopt.Runner.gflops
    < 0.5 *. m32.Hextime_tileopt.Runner.gflops)

let test_f64_shrinks_feasible_space () =
  let s32 = Space.shapes params problem in
  let s64 = Space.shapes params problem_f64 in
  Alcotest.(check bool)
    (Printf.sprintf "F64 feasible %d < F32 %d" (List.length s64)
       (List.length s32))
    true
    (List.length s64 < List.length s32)

let test_f64_id_suffix () =
  Alcotest.(check string) "id carries precision" "heat2d:1024x1024xT128-f64"
    (P.id problem_f64)

(* --- glossary (Table 1) --------------------------------------------------- *)

let test_glossary_complete () =
  let g = Hextime_core.Glossary.table1 in
  Alcotest.(check bool) "all Table 1 rows present" true (List.length g >= 25);
  (* the elementary/composite split of the paper *)
  let elementary =
    List.filter
      (fun (e : Hextime_core.Glossary.entry) ->
        e.Hextime_core.Glossary.kind = Hextime_core.Glossary.Elementary)
      g
  in
  Alcotest.(check int) "13 elementary parameters" 13 (List.length elementary);
  (match Hextime_core.Glossary.find "C_iter" with
  | Some e ->
      Alcotest.(check bool) "C_iter is SH-composite" true
        (e.Hextime_core.Glossary.kind = Hextime_core.Glossary.Composite
        && List.length e.Hextime_core.Glossary.origin = 2)
  | None -> Alcotest.fail "C_iter missing");
  Alcotest.(check bool) "unknown symbol" true
    (Hextime_core.Glossary.find "nope" = None);
  let text = Hextime_core.Glossary.render () in
  Alcotest.(check bool) "renders" true (Test_util.contains text "tau_sync")

(* --- timeline -------------------------------------------------------------- *)

let test_timeline () =
  let compiled =
    ok (Hextime_tiling.Lower.compile problem cfg)
  in
  let tl = ok (Gpu.Timeline.of_kernel arch compiled.Hextime_tiling.Lower.green) in
  Alcotest.(check bool) "positive makespan" true (tl.Gpu.Timeline.makespan_s > 0.0);
  Alcotest.(check bool) "idle fraction in [0,1)" true
    (tl.Gpu.Timeline.idle_fraction >= 0.0 && tl.Gpu.Timeline.idle_fraction < 1.0);
  Alcotest.(check bool) "spans exist" true (tl.Gpu.Timeline.spans <> []);
  (* every span within the makespan *)
  List.iter
    (fun (s : Gpu.Timeline.span) ->
      Alcotest.(check bool) "span bounds" true
        (s.Gpu.Timeline.start_s >= 0.0
        && s.Gpu.Timeline.finish_s <= tl.Gpu.Timeline.makespan_s +. 1e-12))
    tl.Gpu.Timeline.spans;
  let text = Gpu.Timeline.render ~width:32 tl in
  Alcotest.(check bool) "gantt renders" true (Test_util.contains text "SM0")

let test_timeline_block_conservation () =
  let compiled = ok (Hextime_tiling.Lower.compile problem cfg) in
  let kernel = compiled.Hextime_tiling.Lower.green in
  let tl = ok (Gpu.Timeline.of_kernel arch kernel) in
  let scheduled =
    List.fold_left (fun a (s : Gpu.Timeline.span) -> a + s.Gpu.Timeline.blocks) 0
      tl.Gpu.Timeline.spans
  in
  Alcotest.(check int) "every block scheduled exactly once"
    (Gpu.Kernel.total_blocks kernel) scheduled

(* --- scatter plot --------------------------------------------------------- *)

let test_scatter_render () =
  let pairs = List.init 50 (fun i -> (float_of_int (i + 1), float_of_int (i + 2))) in
  let s = H.Scatter.render ~width:32 ~height:10 ~title:"t" pairs in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "title first" true (List.hd lines = "t");
  (* canvas rows plus title and footer *)
  Alcotest.(check bool) "row count" true (List.length lines >= 12);
  Alcotest.(check bool) "diagonal marked" true (Test_util.contains s "/");
  Alcotest.(check bool) "points plotted" true
    (Test_util.contains s "." || Test_util.contains s ":" || Test_util.contains s "*" || Test_util.contains s "#")

let test_scatter_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Scatter.render: no points")
    (fun () -> ignore (H.Scatter.render []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Scatter.render: non-positive coordinate") (fun () ->
      ignore (H.Scatter.render [ (0.0, 1.0) ]))

let prop_skewed_equals_reference =
  QCheck.Test.make ~name:"skewed tiled == reference (random 2D)" ~count:12
    QCheck.(
      quad (int_range 1 6) (int_range 1 3) (int_range 10 24) (int_range 1 6))
    (fun (t_s1, tth, space0, time) ->
      let cfg2 = C.make_exn ~t_t:(2 * tth) ~t_s:[| t_s1; 32 |] ~threads:[| 32 |] in
      let p2 = P.make S.heat2d ~space:[| space0; 32 |] ~time in
      let init = Hextime_stencil.Reference.default_init p2 in
      match Hextime_tiling.Skewed.verify p2 cfg2 ~init with
      | Ok () -> true
      | Error _ -> false)

let prop_overtile_equals_reference =
  QCheck.Test.make ~name:"overtile tiled == reference (random 2D)" ~count:12
    QCheck.(
      quad (int_range 2 8) (int_range 1 3) (int_range 10 24) (int_range 1 6))
    (fun (t_s1, tth, space0, time) ->
      let cfg2 = C.make_exn ~t_t:(2 * tth) ~t_s:[| t_s1; 32 |] ~threads:[| 32 |] in
      let p2 = P.make S.jacobi2d ~space:[| space0; 32 |] ~time in
      let init = Hextime_stencil.Reference.default_init p2 in
      match Hextime_tiling.Overtile.verify p2 cfg2 ~init with
      | Ok () -> true
      | Error _ -> false)

let prop_redundancy_formula =
  (* closed form vs direct summation *)
  QCheck.Test.make ~name:"redundancy factor >= 1 and monotone in t_t" ~count:50
    QCheck.(triple (int_range 1 2) (int_range 2 32) (int_range 1 8))
    (fun (order, ts, tth) ->
      let t_t = 2 * tth in
      let r tt = Hextime_tiling.Overtile.redundancy_factor ~order ~t_s:[| ts; 32 |] ~t_t:tt in
      r t_t >= 1.0 && r (t_t + 2) > r t_t)

let suite =
  [
    Alcotest.test_case "codegen kernel" `Quick test_codegen_kernel_structure;
    Alcotest.test_case "codegen host" `Quick test_codegen_host_structure;
    Alcotest.test_case "codegen program" `Quick test_codegen_program_both_kernels;
    Alcotest.test_case "codegen nonlinear" `Quick test_codegen_nonlinear_body;
    Alcotest.test_case "codegen rejects" `Quick test_codegen_rejects;
    Alcotest.test_case "codegen 3D" `Quick test_codegen_3d;
    Alcotest.test_case "naive compile" `Quick test_naive_compile;
    Alcotest.test_case "naive validation" `Quick test_naive_validation;
    Alcotest.test_case "naive 3D" `Quick test_naive_3d;
    Alcotest.test_case "naive memory-bound" `Slow test_naive_is_memory_bound;
    Alcotest.test_case "descent quality" `Quick test_descent_finds_good_point;
    Alcotest.test_case "descent variants" `Quick test_descent_verbatim_struggles_more;
    Alcotest.test_case "descent validation" `Quick test_descent_restart_validation;
    Alcotest.test_case "export sweep csv" `Quick test_export_sweep_csv;
    Alcotest.test_case "export scatter csv" `Quick test_export_scatter_csv;
    Alcotest.test_case "export write file" `Quick test_export_write_file;
    Alcotest.test_case "export bad path" `Quick test_export_bad_path;
    Alcotest.test_case "overtile correctness" `Quick test_overtile_correctness;
    Alcotest.test_case "overtile redundancy" `Quick test_overtile_redundancy;
    Alcotest.test_case "overtile launches" `Quick test_overtile_fewer_launches;
    Alcotest.test_case "overtile deep-tile loss" `Quick test_overtile_loses_at_deep_tiles;
    Alcotest.test_case "skewed correctness" `Quick test_skewed_correctness;
    Alcotest.test_case "skewed wavefronts" `Quick test_skewed_wavefront_structure;
    Alcotest.test_case "skewed batching" `Quick test_skewed_kernel_batching;
    Alcotest.test_case "skewed vs hexagonal" `Quick test_skewed_slower_than_hexagonal;
    Alcotest.test_case "autotune budget" `Slow test_autotune_improves_with_budget;
    Alcotest.test_case "autotune deterministic" `Quick test_autotune_deterministic;
    Alcotest.test_case "autotune validation" `Quick test_autotune_validation;
    Alcotest.test_case "campaign estimate" `Slow test_campaign_ci_estimate;
    Alcotest.test_case "campaign validation" `Quick test_campaign_validation;
    Alcotest.test_case "f64 footprints" `Quick test_f64_footprints_double;
    Alcotest.test_case "f64 citer penalty" `Quick test_f64_citer_penalty;
    Alcotest.test_case "f64 model/measurement" `Quick test_f64_model_and_measurement;
    Alcotest.test_case "f64 feasible space" `Quick test_f64_shrinks_feasible_space;
    Alcotest.test_case "f64 id" `Quick test_f64_id_suffix;
    Alcotest.test_case "glossary (Table 1)" `Quick test_glossary_complete;
    Alcotest.test_case "timeline" `Quick test_timeline;
    Alcotest.test_case "timeline conservation" `Quick test_timeline_block_conservation;
    Alcotest.test_case "scatter render" `Quick test_scatter_render;
    Alcotest.test_case "scatter validation" `Quick test_scatter_validation;
    QCheck_alcotest.to_alcotest prop_skewed_equals_reference;
    QCheck_alcotest.to_alcotest prop_overtile_equals_reference;
    QCheck_alcotest.to_alcotest prop_redundancy_formula;
  ]
