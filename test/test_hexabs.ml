(* hexabs: soundness of the abstract domains against the concrete model.

   The QCheck properties are the contract of the whole layer: for random
   boxes and random member configurations, every concrete Model result
   must lie inside the interval the abstract evaluation certified, and no
   box-level verdict may contradict a per-point check.  The deterministic
   tests pin the end-to-end guarantees the ISSUE acceptance criteria name:
   exact certificates with a small enumerated fraction, an exact
   branch-and-bound arg-min at a fraction of the concrete evaluations, and
   descent seeding from live boxes that does not change the solution. *)

module Hexabs = Hextime_analysis.Hexabs
module Hexlint = Hextime_analysis.Hexlint
module Space = Hextime_tileopt.Space
module Descent = Hextime_tileopt.Descent
module Model = Hextime_core.Model
module Arch = Hextime_gpu.Arch
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module H = Hextime_harness

let arch = Arch.gtx980
let stencil = Stencil.jacobi2d
let problem = Problem.make stencil ~space:[| 512; 512 |] ~time:128
let params = H.Microbench.params arch
let citer = H.Microbench.citer arch stencil

let problem3 = Problem.make Stencil.heat3d ~space:[| 96; 96; 96 |] ~time:32
let citer3 = H.Microbench.citer arch Stencil.heat3d

let lattice_of p =
  let tt, ts = Space.axes p in
  Hexabs.lattice ~tt ~ts

let l2 = lattice_of problem
let l3 = lattice_of problem3

(* --- random boxes and members ------------------------------------------- *)

let slice_gen n st =
  let a = QCheck.Gen.int_range 0 (n - 1) st in
  let b = QCheck.Gen.int_range 0 (n - 1) st in
  { Hexabs.lo = min a b; hi = max a b }

let box_gen l st =
  {
    Hexabs.b_tt = slice_gen (Array.length l.Hexabs.tt_axis) st;
    b_ts =
      Array.map (fun ax -> slice_gen (Array.length ax) st) l.Hexabs.ts_axes;
  }

let member_gen l b st =
  let pick (ax : int array) (s : Hexabs.slice) =
    ax.(QCheck.Gen.int_range s.Hexabs.lo s.Hexabs.hi st)
  in
  {
    Hexabs.p_tt = pick l.Hexabs.tt_axis b.Hexabs.b_tt;
    p_ts = Array.mapi (fun d s -> pick l.Hexabs.ts_axes.(d) s) b.Hexabs.b_ts;
  }

let box_and_member_arb l =
  QCheck.make
    ~print:(fun (b, (pt : Hexabs.point)) ->
      Printf.sprintf "box %s point tT%d-tS%s" (Hexabs.box_id l b)
        pt.Hexabs.p_tt
        (String.concat "x"
           (Array.to_list (Array.map string_of_int pt.Hexabs.p_ts))))
    (fun st ->
      let b = box_gen l st in
      (b, member_gen l b st))

(* --- QCheck properties --------------------------------------------------- *)

let prop_talg_within_bounds l citer problem =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "concrete Talg within interval bounds (%s)"
         (Problem.id problem))
    ~count:120 (box_and_member_arb l)
    (fun (b, pt) ->
      match Hexabs.point_talg params ~citer problem pt with
      | None -> true (* infeasible member: no concrete value to contain *)
      | Some t ->
          let lo, hi = Hexabs.talg_bounds params ~citer problem l b in
          lo <= t && t <= hi)

let prop_feasibility_sound l problem =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "box verdicts never contradict Model.feasible (%s)"
         (Problem.id problem))
    ~count:120 (box_and_member_arb l)
    (fun (b, pt) ->
      let concrete = Hexabs.point_feasible params problem pt in
      match Hexabs.feasible_box params problem l b with
      | Hexabs.Feasible -> concrete
      | Hexabs.Infeasible _ -> not concrete
      | Hexabs.Mixed _ -> true)

let prop_lint_clean_sound l citer problem =
  let noisy =
    List.filter
      (fun p -> p <> "bounds" && p <> "resources")
      Hexlint.pass_names
  in
  let taxis = Array.of_list Space.thread_candidates in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "Clean boxes produce no resources/bounds findings (%s)"
         (Problem.id problem))
    ~count:80
    (QCheck.pair (box_and_member_arb l)
       (QCheck.int_range 0 (Array.length taxis - 1)))
    (fun ((b, pt), ti) ->
      match
        Hexabs.lint_clean_box arch problem l b ~threads_axis:taxis
          ~threads:{ Hexabs.lo = ti; hi = ti }
      with
      | Hexabs.Dirty _ | Hexabs.Unresolved _ -> true
      | Hexabs.Clean -> (
          match
            Hextime_tiling.Config.make ~t_t:pt.Hexabs.p_tt ~t_s:pt.Hexabs.p_ts
              ~threads:[| taxis.(ti) |]
          with
          | Error _ -> true
          | Ok cfg -> (
              match
                Hexlint.lint_config ~skip:noisy params ~arch ~citer problem
                  cfg
              with
              | Error _ -> true (* not lowerable/predictable: nothing to lint *)
              | Ok r -> r.Hexlint.findings = [])))

let prop_stride_congruence l problem =
  let order = problem.Problem.stencil.Stencil.order in
  let wf = Problem.word_factor problem in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "stride congruence contains every member stride (%s)"
         (Problem.id problem))
    ~count:120 (box_and_member_arb l)
    (fun (b, pt) ->
      let c = Hexabs.stride_congruence problem l b in
      let r = Array.length pt.Hexabs.p_ts in
      let stride =
        ((pt.Hexabs.p_ts.(r - 1) + (order * pt.Hexabs.p_tt)) * wf) + 1
      in
      let in_class =
        if c.Hexabs.modulus = 0 then stride = c.Hexabs.residue
        else (stride - c.Hexabs.residue) mod c.Hexabs.modulus = 0
      in
      (* warp-multiple inner axis + even t_t: the class is provably odd,
         i.e. coprime to the 32 banks *)
      in_class && Hexabs.congruence_implies c ~modulus:2 ~residue:1)

(* --- certificate exactness ----------------------------------------------- *)

let check_certificate l problem () =
  let cert = Hexabs.prove params problem l in
  let points = Hexabs.members l (Hexabs.full_box l) in
  Alcotest.(check int)
    "total points" (List.length points) cert.Hexabs.cert_total_points;
  let feas = ref 0 in
  List.iter
    (fun (pt : Hexabs.point) ->
      let concrete = Hexabs.point_feasible params problem pt in
      if concrete then incr feas;
      match
        Hexabs.certificate_feasible cert l ~t_t:pt.Hexabs.p_tt
          ~t_s:pt.Hexabs.p_ts
      with
      | Some c when c = concrete -> ()
      | Some _ ->
          Alcotest.failf "certificate disagrees with Model.feasible at tT%d"
            pt.Hexabs.p_tt
      | None -> Alcotest.fail "lattice point missing from the certificate")
    points;
  Alcotest.(check int)
    "feasible point count" !feas cert.Hexabs.cert_feasible_points;
  (* acceptance criterion: the prover decides >= 75% of the lattice
     symbolically and only enumerates the rest *)
  let frac =
    float_of_int cert.Hexabs.cert_enumerated_points
    /. float_of_int cert.Hexabs.cert_total_points
  in
  Alcotest.(check bool)
    (Printf.sprintf "enumerated fraction %.1f%% <= 25%%" (100.0 *. frac))
    true (frac <= 0.25)

let check_infeasible_boxes_exclude_shapes () =
  let cert = Hexabs.prove params problem l2 in
  let shapes = Space.shapes params problem in
  List.iter
    (fun (r : Hexabs.region) ->
      match r.Hexabs.r_verdict with
      | Hexabs.Infeasible _ ->
          List.iter
            (fun (s : Space.shape) ->
              if
                Hexabs.contains l2 r.Hexabs.r_box ~t_t:s.Space.t_t
                  ~t_s:s.Space.t_s
                && Hexabs.point_feasible params problem
                     { Hexabs.p_tt = s.Space.t_t; p_ts = s.Space.t_s }
              then
                Alcotest.failf
                  "feasible shape %s inside a proven-infeasible box %s"
                  (Space.id s)
                  (Hexabs.box_id l2 r.Hexabs.r_box))
            shapes
      | _ -> ())
    cert.Hexabs.cert_regions

(* --- branch-and-bound ----------------------------------------------------- *)

let exhaustive_min citer problem =
  List.fold_left
    (fun (n, acc) (s : Space.shape) ->
      match
        Hexabs.point_talg params ~citer problem
          { Hexabs.p_tt = s.Space.t_t; p_ts = s.Space.t_s }
      with
      | Some t -> (n + 1, min acc t)
      | None -> (n, acc))
    (0, infinity)
    (Space.shapes params problem)

let check_bnb_exact_and_cheap l citer problem () =
  let evals, ex_min = exhaustive_min citer problem in
  match Hexabs.minimize params ~citer problem l with
  | Error msg -> Alcotest.failf "minimize failed: %s" msg
  | Ok r ->
      (* bit-exact: the singleton interval evaluation IS the scalar one *)
      Alcotest.(check (float 0.0))
        "arg-min Talg equals the exhaustive minimum" ex_min
        r.Hexabs.bnb_talg;
      Alcotest.(check bool)
        (Printf.sprintf "concrete evals %d at least 10x below exhaustive %d"
           r.Hexabs.bnb_evals_concrete evals)
        true
        (r.Hexabs.bnb_evals_concrete * 10 <= evals);
      Alcotest.(check bool)
        "live seed boxes reported" true
        (r.Hexabs.bnb_live <> []);
      (* the best point is inside some live box *)
      let pt = r.Hexabs.bnb_best in
      Alcotest.(check bool)
        "arg-min covered by a live box" true
        (List.exists
           (fun b ->
             Hexabs.contains l b ~t_t:pt.Hexabs.p_tt ~t_s:pt.Hexabs.p_ts)
           r.Hexabs.bnb_live)

(* --- descent seeding ------------------------------------------------------ *)

let check_descent_solution_unchanged citer problem () =
  let get = function
    | Ok v -> v
    | Error msg -> Alcotest.failf "solve failed: %s" msg
  in
  let uniform =
    get (Descent.solve ~seed_mode:`Uniform params ~citer problem)
  in
  let symbolic =
    get (Descent.solve ~seed_mode:`Symbolic params ~citer problem)
  in
  Alcotest.(check (float 0.0))
    "symbolic seeding returns the same solution Talg" uniform.Descent.talg
    symbolic.Descent.talg;
  (* seeded with the certified arg-min, descent can never end above it *)
  let _, ex_min = exhaustive_min citer problem in
  Alcotest.(check (float 0.0))
    "symbolic-seeded descent reaches the exhaustive minimum" ex_min
    symbolic.Descent.talg

(* --- metrics -------------------------------------------------------------- *)

let check_metrics_counters () =
  let module Metrics = Hextime_obs.Metrics in
  let value name = Metrics.value (Metrics.counter name) in
  let names =
    [
      "hexabs.boxes_proven_feasible";
      "hexabs.boxes_proven_infeasible";
      "hexabs.boxes_split";
      "hexabs.bnb.evals_bound";
      "hexabs.bnb.evals_concrete";
      "hexabs.bnb.boxes_pruned";
    ]
  in
  let before = List.map value names in
  ignore (Hexabs.prove params problem l2);
  (match Hexabs.minimize params ~citer problem l2 with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "minimize failed: %s" msg);
  List.iter2
    (fun name b ->
      Alcotest.(check bool)
        (Printf.sprintf "counter %s advanced" name)
        true
        (value name > b))
    names before

let suite =
  [
    QCheck_alcotest.to_alcotest (prop_talg_within_bounds l2 citer problem);
    QCheck_alcotest.to_alcotest (prop_talg_within_bounds l3 citer3 problem3);
    QCheck_alcotest.to_alcotest (prop_feasibility_sound l2 problem);
    QCheck_alcotest.to_alcotest (prop_feasibility_sound l3 problem3);
    QCheck_alcotest.to_alcotest (prop_lint_clean_sound l2 citer problem);
    QCheck_alcotest.to_alcotest (prop_stride_congruence l2 problem);
    QCheck_alcotest.to_alcotest (prop_stride_congruence l3 problem3);
    Alcotest.test_case "certificate exact, small enumeration (2D)" `Slow
      (check_certificate l2 problem);
    Alcotest.test_case "certificate exact, small enumeration (3D)" `Slow
      (check_certificate l3 problem3);
    Alcotest.test_case "no feasible shape in an infeasible box" `Slow
      check_infeasible_boxes_exclude_shapes;
    Alcotest.test_case "branch-and-bound exact with >=10x fewer evals (2D)"
      `Slow
      (check_bnb_exact_and_cheap l2 citer problem);
    Alcotest.test_case "branch-and-bound exact with >=10x fewer evals (3D)"
      `Slow
      (check_bnb_exact_and_cheap l3 citer3 problem3);
    Alcotest.test_case "descent solution unchanged under symbolic seeding"
      `Slow
      (check_descent_solution_unchanged citer problem);
    Alcotest.test_case "hexabs metrics counters advance" `Quick
      check_metrics_counters;
  ]
