(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section, adds the design-choice ablations called out in
   DESIGN.md, and micro-benchmarks the library's hot paths with Bechamel.

   Scale is controlled by the HEXTIME_SCALE environment variable
   (ci | quick | paper, default quick).  The `paper` scale runs the paper's
   full 128-experiment grid; `quick` runs a representative subset with
   identical code paths. *)

module Gpu = Hextime_gpu
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Reference = Hextime_stencil.Reference
module Config = Hextime_tiling.Config
module Exec_cpu = Hextime_tiling.Exec_cpu
module Lower = Hextime_tiling.Lower
module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner
module Optimizer = Hextime_tileopt.Optimizer
module H = Hextime_harness
module Parsweep = Hextime_parsweep.Parsweep
module Stats = Hextime_prelude.Stats
module Tabulate = Hextime_prelude.Tabulate

let scale =
  match Sys.getenv_opt "HEXTIME_SCALE" with
  | None -> H.Experiments.Quick
  | Some s -> (
      match H.Experiments.scale_of_string s with
      | Ok sc -> sc
      | Error msg ->
          prerr_endline ("HEXTIME_SCALE: " ^ msg);
          exit 2)

(* observability rides on env vars here (bechamel owns no CLI):
   HEXTIME_PROFILE=FILE writes a Chrome trace of the whole run,
   HEXTIME_METRICS=1 prints the metrics registry to stderr at exit *)
let () =
  (match Sys.getenv_opt "HEXTIME_PROFILE" with
  | Some path when path <> "" ->
      Hextime_obs.Trace.enable ();
      at_exit (fun () ->
          try
            Hextime_obs.Trace.write_file path
              ~extra:
                [
                  ( "metrics",
                    Hextime_obs.Metrics.to_json (Hextime_obs.Metrics.snapshot ())
                  );
                ]
              (Hextime_obs.Trace.events ());
            Printf.eprintf "hexscope: wrote %s (%d span events)\n%!" path
              (Hextime_obs.Trace.num_events ())
          with Sys_error msg -> Printf.eprintf "hexscope: %s\n%!" msg)
  | _ -> ());
  match Sys.getenv_opt "HEXTIME_METRICS" with
  | None | Some ("" | "0") -> ()
  | Some _ ->
      at_exit (fun () ->
          prerr_string
            (Hextime_obs.Metrics.render (Hextime_obs.Metrics.snapshot ())))

(* every sweep below runs through the parallel cached engine; jobs and the
   cache directory follow HEXTIME_JOBS / HEXTIME_CACHE_DIR *)
let exec = Parsweep.default ()
let sweep_points e = (H.Sweep.baseline ~exec e).H.Sweep.points

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let () =
  Printf.printf
    "hextime benchmark harness — PPoPP'17 reproduction (scale: %s)\n"
    (H.Experiments.scale_to_string scale)

(* --- Tables ------------------------------------------------------------- *)

let () =
  section "Table 1: model parameters";
  print_string (Hextime_core.Glossary.render ())

let () =
  section "Table 2: GPU configuration";
  Tabulate.print (H.Tables.table2 ());
  section "Table 3: micro-benchmarked timing constants";
  Tabulate.print (H.Tables.table3 ());
  print_endline
    "(paper, GTX 980 / Titan X: L = 7.36e-3 / 5.42e-3 s/GB; tau_sync = \
     7.96e-10 / 6.74e-10 s; T_sync = 9.24e-7 / 9.00e-7 s)";
  section "Table 4: C_iter per benchmark";
  Tabulate.print (H.Tables.table4 ());
  print_endline
    "(paper, GTX 980: jacobi2d 3.39e-8, heat2d 3.68e-8, laplacian2d 3.11e-8, \
     gradient2d 6.09e-8, heat3d 1.55e-7, laplacian3d 1.36e-7)"

(* --- Figure 3 / Section 5.3 --------------------------------------------- *)

let () =
  section "Figure 3: model validation (predicted vs measured)";
  let rows = H.Figures.fig3_data scale in
  print_string (H.Figures.render_fig3 rows);
  let tops =
    List.map (fun r -> r.H.Figures.summary.H.Validation.rmse_top) rows
  in
  let alls =
    List.map (fun r -> r.H.Figures.summary.H.Validation.rmse_all) rows
  in
  Printf.printf
    "summary: RMSE(top 20%% band) %.1f%%-%.1f%% (paper: < 10%%); RMSE(all) \
     %.0f%%-%.0f%% (paper: 45%%-200%%)\n"
    (100.0 *. Stats.minimum tops)
    (100.0 *. Stats.maximum tops)
    (100.0 *. Stats.minimum alls)
    (100.0 *. Stats.maximum alls);
  (* one representative scatter, rendered in ASCII like Figure 3's panels *)
  let experiment =
    {
      H.Experiments.arch = Gpu.Arch.gtx980;
      problem =
        Problem.make Stencil.heat2d
          ~space:(match scale with
                  | H.Experiments.Ci -> [| 1024; 1024 |]
                  | _ -> [| 8192; 8192 |])
          ~time:(match scale with H.Experiments.Ci -> 256 | _ -> 8192);
    }
  in
  let full = H.Sweep.baseline ~exec experiment in
  let sweep = full.H.Sweep.points in
  Format.printf "sweep: %d points kept, %a@." (List.length sweep)
    H.Sweep.pp_drops full;
  print_newline ();
  print_string
    (H.Scatter.render
       ~title:
         (Printf.sprintf
            "heat2d on gtx980 (%s): predicted (x) vs measured (y), log-log"
            (H.Experiments.id experiment))
       (H.Validation.scatter sweep));
  (match
     H.Export.write_file ~path:"fig3_heat2d_gtx980.csv"
       (H.Export.sweep_csv sweep)
   with
  | Ok () -> print_endline "wrote fig3_heat2d_gtx980.csv"
  | Error e -> print_endline ("csv export failed: " ^ e))

(* --- Accuracy across problem sizes ----------------------------------------- *)

let () =
  section "Model accuracy across problem sizes (heat2d on GTX 980)";
  let sizes =
    match scale with
    | H.Experiments.Ci -> [ ([| 1024; 1024 |], 256) ]
    | H.Experiments.Quick -> H.Experiments.sizes_2d H.Experiments.Quick
    | H.Experiments.Paper -> Hextime_stencil.Problem.paper_sizes_2d
  in
  let t =
    Tabulate.create
      [
        ("problem size", Tabulate.Left);
        ("RMSE all", Tabulate.Right);
        ("RMSE top 20%", Tabulate.Right);
        ("best GF/s", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t (space, time) ->
        let e =
          {
            H.Experiments.arch = Gpu.Arch.gtx980;
            problem = Problem.make Stencil.heat2d ~space ~time;
          }
        in
        match sweep_points e with
        | [] -> t
        | points ->
            let s = H.Validation.analyze points in
            Tabulate.add_row t
              [
                Problem.id e.H.Experiments.problem;
                Printf.sprintf "%.0f%%" (100.0 *. s.H.Validation.rmse_all);
                Printf.sprintf "%.1f%%" (100.0 *. s.H.Validation.rmse_top);
                Printf.sprintf "%.1f" s.H.Validation.best_gflops;
              ])
      t sizes
  in
  Tabulate.print t;
  print_endline
    "(the top-band accuracy is stable across the size grid — the model's \
     per-wavefront structure scales with T and S by construction)"

(* --- Figure 4 ------------------------------------------------------------ *)

let () =
  section "Figure 4: Talg surface, Heat2D on GTX 980 (tS1 = 8)";
  let space, time =
    match scale with
    | H.Experiments.Ci -> ([| 512; 512 |], 256)
    | H.Experiments.Quick | H.Experiments.Paper -> ([| 8192; 8192 |], 8192)
  in
  print_string (H.Figures.render_fig4 (H.Figures.fig4_data ~space ~time ()))

(* --- Figure 5 ------------------------------------------------------------ *)

let () =
  section "Figure 5: model-guided candidates vs baseline (Gradient2D)";
  let f = H.Figures.fig5_data ~scale () in
  print_string (H.Figures.render_fig5 ~max_rows:12 f);
  Printf.printf
    "(paper: baseline best 19.8 s vs model-guided 16.5 s, a 17%% improvement)\n"

(* --- Figure 6 ------------------------------------------------------------ *)

let () =
  section "Figure 6: average GFLOP/s per tile-size selection strategy";
  let rows = H.Figures.fig6_data ~max_configs:2000 scale in
  print_string (H.Figures.render_fig6 rows);
  (* aggregate improvements in the paper's terms *)
  let ratios name_a name_b =
    List.filter_map
      (fun r ->
        match
          ( List.assoc_opt name_a r.H.Figures.per_strategy,
            List.assoc_opt name_b r.H.Figures.per_strategy )
        with
        | Some a, Some b when (not (Float.is_nan a)) && not (Float.is_nan b) ->
            Some (a /. b)
        | _ -> None)
      rows
  in
  let top10 = "Within 10% of Talg_min" in
  match
    (ratios top10 "HHC", ratios top10 "Baseline", ratios top10 "Talg_min")
  with
  | (_ :: _ as vs_hhc), (_ :: _ as vs_base), (_ :: _ as vs_min) ->
      Printf.printf
        "model-guided vs HHC default: %+.0f%% (paper: +60%%); vs baseline: \
         %+.1f%% (paper: +9%%); vs bare Talg_min: %+.1f%%\n"
        (100.0 *. (Stats.geomean vs_hhc -. 1.0))
        (100.0 *. (Stats.geomean vs_base -. 1.0))
        (100.0 *. (Stats.geomean vs_min -. 1.0))
  | _ -> print_endline "insufficient data for strategy aggregates"

(* --- Section 6: candidate-set sizes -------------------------------------- *)

let () =
  section "Section 6: size of the within-10% candidate set";
  let t =
    Tabulate.create
      [
        ("experiment", Tabulate.Left);
        ("feasible shapes", Tabulate.Right);
        ("within 10%", Tabulate.Right);
        ("explored (capped)", Tabulate.Right);
      ]
  in
  let sizes =
    match scale with
    | H.Experiments.Ci -> [ ([| 512; 512 |], 128) ]
    | _ -> [ ([| 4096; 4096 |], 4096); ([| 8192; 8192 |], 8192) ]
  in
  let arch = Gpu.Arch.gtx980 in
  let params = H.Microbench.params arch in
  let t =
    List.fold_left
      (fun t stencil ->
        List.fold_left
          (fun t (space, time) ->
            let problem = Problem.make stencil ~space ~time in
            let citer = H.Microbench.citer arch stencil in
            let ev = Optimizer.evaluate_space params ~citer problem in
            let within = Optimizer.candidate_count ~frac:0.10 ev in
            Tabulate.add_row t
              [
                Problem.id problem;
                string_of_int (List.length ev);
                string_of_int within;
                string_of_int (min 200 within);
              ])
          t sizes)
      t
      [ Stencil.heat2d; Stencil.gradient2d ]
  in
  Tabulate.print t;
  print_endline
    "(paper: fewer than 200 points within 10% of Talg_min; our refined round \
     accounting flattens the landscape on some instances, so exploration is \
     capped at the 200 best-predicted shapes)"

(* --- Ablation: model variants -------------------------------------------- *)

let () =
  section "Ablation: refined vs verbatim model (DESIGN.md deviations)";
  let experiments =
    match scale with
    | H.Experiments.Ci -> [ (Stencil.heat2d, [| 1024; 1024 |], 256) ]
    | _ ->
        [
          (Stencil.heat2d, [| 8192; 8192 |], 8192);
          (Stencil.gradient2d, [| 4096; 4096 |], 4096);
          (Stencil.heat3d, [| 384; 384; 384 |], 128);
        ]
  in
  let arch = Gpu.Arch.gtx980 in
  let params = H.Microbench.params arch in
  let t =
    Tabulate.create
      [
        ("experiment", Tabulate.Left);
        ("RMSE top, refined", Tabulate.Right);
        ("RMSE top, verbatim", Tabulate.Right);
        ("RMSE all, refined", Tabulate.Right);
        ("RMSE all, verbatim", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t (stencil, space, time) ->
        let problem = Problem.make stencil ~space ~time in
        let citer = H.Microbench.citer arch stencil in
        let e = { H.Experiments.arch; problem } in
        let points = sweep_points e in
        let top = H.Sweep.top_performing ~within:0.2 points in
        let rmse variant pts =
          Stats.rmse_relative
            (List.filter_map
               (fun (p : H.Sweep.point) ->
                 match
                   Model.predict ~variant params ~citer problem p.H.Sweep.config
                 with
                 | Ok pr ->
                     Some (pr.Model.talg, p.H.Sweep.measured.Runner.time_s)
                 | Error _ -> None)
               pts)
        in
        let pct x = Printf.sprintf "%.1f%%" (100.0 *. x) in
        Tabulate.add_row t
          [
            Problem.id problem;
            pct (rmse Model.Refined top);
            pct (rmse Model.Paper_verbatim top);
            pct (rmse Model.Refined points);
            pct (rmse Model.Paper_verbatim points);
          ])
      t experiments
  in
  Tabulate.print t;
  print_endline
    "(the two discretisation corrections matter most inside the top band, \
     where Equation 2's double ceiling overcharges ragged rounds)"

(* --- Time-tiling benefit (Section 1/2 motivation) ------------------------ *)

let () =
  section "Time-tiling benefit: tuned naive vs model-guided HHC";
  let cases =
    match scale with
    | H.Experiments.Ci -> [ (Stencil.heat2d, [| 1024; 1024 |], 256) ]
    | _ ->
        [
          (Stencil.heat2d, [| 4096; 4096 |], 1024);
          (Stencil.laplacian3d, [| 384; 384; 384 |], 128);
        ]
  in
  let t =
    Tabulate.create
      [
        ("experiment", Tabulate.Left);
        ("naive GF/s", Tabulate.Right);
        ("HHC (model-guided) GF/s", Tabulate.Right);
        ("speedup", Tabulate.Right);
      ]
  in
  let arch = Gpu.Arch.gtx980 in
  let params = H.Microbench.params arch in
  let t =
    List.fold_left
      (fun t (stencil, space, time) ->
        let problem = Problem.make stencil ~space ~time in
        let citer = H.Microbench.citer arch stencil in
        let ctx = { Hextime_tileopt.Strategies.arch; params; citer; problem } in
        match
          ( Hextime_tiling.Naive.best arch problem,
            Hextime_tileopt.Strategies.model_top10 ctx )
        with
        | Ok naive, Ok hhc ->
            Tabulate.add_row t
              [
                Problem.id problem;
                Printf.sprintf "%.1f" naive.Hextime_tiling.Naive.gflops;
                Printf.sprintf "%.1f"
                  hhc.Hextime_tileopt.Strategies.measurement
                    .Hextime_tileopt.Runner.gflops;
                Printf.sprintf "%.1fx"
                  (naive.Hextime_tiling.Naive.time_s
                  /. hhc.Hextime_tileopt.Strategies.measurement
                       .Hextime_tileopt.Runner.time_s);
              ]
        | Error e, _ | _, Error e -> Tabulate.add_row t [ Problem.id problem; e; "-"; "-" ])
      t cases
  in
  Tabulate.print t;
  print_endline
    "(without reuse along time the kernel re-streams the array every step \
     and is memory-bound: the motivation for hexagonal time tiling)"

(* --- Solver vs enumeration (Section 6.1) --------------------------------- *)

let () =
  section "Section 6.1: local non-linear solver vs exhaustive enumeration";
  let cases =
    match scale with
    | H.Experiments.Ci -> [ (Stencil.heat2d, [| 1024; 1024 |], 256) ]
    | _ ->
        [
          (Stencil.heat2d, [| 8192; 8192 |], 8192);
          (Stencil.gradient2d, [| 4096; 4096 |], 4096);
          (Stencil.heat3d, [| 384; 384; 384 |], 128);
        ]
  in
  let arch = Gpu.Arch.gtx980 in
  let params = H.Microbench.params arch in
  let t =
    Tabulate.create
      [
        ("experiment", Tabulate.Left);
        ("objective", Tabulate.Left);
        ("solver gap", Tabulate.Right);
        ("model evals", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t (stencil, space, time) ->
        let problem = Problem.make stencil ~space ~time in
        let citer = H.Microbench.citer arch stencil in
        List.fold_left
          (fun t (label, variant, restarts) ->
            match
              Hextime_tileopt.Descent.solve ~variant ~restarts params ~citer
                problem
            with
            | Error e -> Tabulate.add_row t [ Problem.id problem; label; e; "-" ]
            | Ok sol ->
                let gap =
                  Hextime_tileopt.Descent.optimality_gap ~variant params ~citer
                    problem sol
                in
                Tabulate.add_row t
                  [
                    Problem.id problem;
                    label;
                    Printf.sprintf "%+.1f%%" (100.0 *. gap);
                    string_of_int sol.Hextime_tileopt.Descent.evaluations;
                  ])
          t
          [
            ("refined, 1 start", Model.Refined, 1);
            ("paper-verbatim, 1 start", Model.Paper_verbatim, 1);
            ("paper-verbatim, 8 starts", Model.Paper_verbatim, 8);
          ])
      t cases
  in
  Tabulate.print t;
  print_endline
    "(the paper found off-the-shelf NLP solvers 'somewhat disappointing' on \
     Equation 31; ceiling plateaus trap local search, which the verbatim \
     objective shows most clearly. Exhaustive enumeration stays the \
     production path.)"

(* --- Generality (Section 7): 1D and higher-order stencils ----------------- *)

let () =
  section "Section 7 (generality): validation beyond the paper's benchmarks";
  let cases =
    match scale with
    | H.Experiments.Ci ->
        [
          (Stencil.jacobi1d, [| 65536 |], 512);
          (Stencil.jacobi2d_order2, [| 1024; 1024 |], 256);
        ]
    | _ ->
        [
          (Stencil.jacobi1d, [| 1 lsl 22 |], 4096);
          (Stencil.jacobi2d_order2, [| 4096; 4096 |], 1024);
          (Stencil.heat3d_order2, [| 256; 256; 256 |], 64);
        ]
  in
  let arch = Gpu.Arch.gtx980 in
  let t =
    Tabulate.create
      [
        ("experiment", Tabulate.Left);
        ("points", Tabulate.Right);
        ("RMSE all", Tabulate.Right);
        ("RMSE top 20%", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t (stencil, space, time) ->
        let problem = Problem.make stencil ~space ~time in
        let e = { H.Experiments.arch; problem } in
        match sweep_points e with
        | [] -> Tabulate.add_row t [ Problem.id problem; "0"; "-"; "-" ]
        | points ->
            let s = H.Validation.analyze points in
            Tabulate.add_row t
              [
                Problem.id problem;
                string_of_int s.H.Validation.points;
                Printf.sprintf "%.0f%%" (100.0 *. s.H.Validation.rmse_all);
                Printf.sprintf "%.1f%%" (100.0 *. s.H.Validation.rmse_top);
              ])
      t cases
  in
  Tabulate.print t;
  print_endline
    "(the machinery generalises over rank and order; order-2 2D keeps the \
     top-band signature. 1D rows and order-2 3D tiles are so small that \
     even their best configurations are barrier- or transfer-latency-bound \
     — regimes the optimistic model does not price, and which the paper's \
     order-1 2D/3D evaluation never enters)"

(* --- Campaign cost (Section 8) -------------------------------------------- *)

let () =
  section "Section 8: cost of the experimental campaign";
  (* always priced at paper scale: that is the claim being checked *)
  print_string
    (H.Campaign.render (H.Campaign.estimate ~exec H.Experiments.Paper));
  print_endline
    "(paper: 'these took many weeks of dedicated machine time', with \
     compilation 'a significant fraction of the total')"

(* --- Section 7: threads-per-block is empirically predictable --------------- *)

let () =
  section "Section 7: best thread count is stable across top shapes";
  let stencil, space, time =
    match scale with
    | H.Experiments.Ci -> (Stencil.heat2d, [| 1024; 1024 |], 256)
    | _ -> (Stencil.heat2d, [| 4096; 4096 |], 1024)
  in
  let arch = Gpu.Arch.gtx980 in
  let problem = Problem.make stencil ~space ~time in
  let params = H.Microbench.params arch in
  let citer = H.Microbench.citer arch stencil in
  let space_eval = Optimizer.evaluate_space params ~citer problem in
  let top_shapes =
    List.filteri (fun i _ -> i < 6) (Optimizer.within_fraction ~frac:0.10 space_eval)
  in
  let t =
    Tabulate.create
      [
        ("shape", Tabulate.Left);
        ("best threads", Tabulate.Right);
        ("GF/s at best", Tabulate.Right);
        ("GF/s at 64 threads", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t (e : Optimizer.evaluated) ->
        let measure threads =
          match
            Config.make ~t_t:e.Optimizer.shape.Hextime_tileopt.Space.t_t
              ~t_s:e.Optimizer.shape.Hextime_tileopt.Space.t_s
              ~threads:[| threads |]
          with
          | Error _ -> None
          | Ok cfg -> (
              match Runner.measure arch problem cfg with
              | Ok m -> Some (threads, m.Runner.gflops)
              | Error _ -> None)
        in
        let results =
          List.filter_map measure Hextime_tileopt.Space.thread_candidates
        in
        match results with
        | [] -> t
        | first :: rest ->
            let bt, bg =
              List.fold_left
                (fun ((_, bg) as acc) ((_, g) as x) ->
                  if g > bg then x else acc)
                first rest
            in
            let low = match measure 64 with Some (_, g) -> g | None -> nan in
            Tabulate.add_row t
              [
                Hextime_tileopt.Space.id e.Optimizer.shape;
                string_of_int bt;
                Printf.sprintf "%.1f" bg;
                Printf.sprintf "%.1f" low;
              ])
      t top_shapes
  in
  Tabulate.print t;
  print_endline
    "(the paper: 'the values of this parameter that yielded the locally \
     best performance was easily predictable — empirically'; the same \
     256-512-thread plateau wins on every top shape, while small counts \
     forfeit more than half to exposed latency)"

(* --- Double precision (beyond the paper) ----------------------------------- *)

let () =
  section "Double precision (beyond the paper): FP32 vs FP64";
  let stencil = Stencil.heat2d in
  let space, time =
    match scale with
    | H.Experiments.Ci -> ([| 1024; 1024 |], 256)
    | _ -> ([| 4096; 4096 |], 1024)
  in
  let arch = Gpu.Arch.gtx980 in
  let params = H.Microbench.params arch in
  let t =
    Tabulate.create
      [
        ("precision", Tabulate.Left);
        ("C_iter", Tabulate.Right);
        ("feasible shapes", Tabulate.Right);
        ("tuned", Tabulate.Left);
        ("GFLOP/s", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t (label, precision) ->
        let problem =
          Hextime_stencil.Problem.make ~precision stencil ~space ~time
        in
        let citer = H.Microbench.citer ~precision arch stencil in
        let shapes = Hextime_tileopt.Space.shapes params problem in
        let ctx = { Hextime_tileopt.Strategies.arch; params; citer; problem } in
        match Hextime_tileopt.Strategies.model_top10 ctx with
        | Error e -> Tabulate.add_row t [ label; "-"; "-"; e; "-" ]
        | Ok o ->
            Tabulate.add_row t
              [
                label;
                Printf.sprintf "%.2e s" citer;
                string_of_int (List.length shapes);
                Config.id o.Hextime_tileopt.Strategies.config;
                Printf.sprintf "%.1f"
                  o.Hextime_tileopt.Strategies.measurement
                    .Hextime_tileopt.Runner.gflops;
              ])
      t
      [
        ("FP32", Hextime_stencil.Problem.F32);
        ("FP64", Hextime_stencil.Problem.F64);
      ]
  in
  Tabulate.print t;
  print_endline
    "(doubling the word size halves the feasible tile space and Maxwell's \
     FP64 units run at a fraction of FP32 throughput; the model adapts \
     through its measured C_iter and the footprint word factor alone)"

(* --- Generic autotuner comparison (Section 6.2 discussion) ---------------- *)

let () =
  section "Generic autotuner vs model-guided search (Section 6.2 discussion)";
  let stencil, space, time =
    match scale with
    | H.Experiments.Ci -> (Stencil.heat2d, [| 1024; 1024 |], 256)
    | _ -> (Stencil.heat2d, [| 4096; 4096 |], 4096)
  in
  let arch = Gpu.Arch.gtx980 in
  let problem = Problem.make stencil ~space ~time in
  let params = H.Microbench.params arch in
  let citer = H.Microbench.citer arch stencil in
  let curve =
    Hextime_tileopt.Autotune.budget_curve
      ~budgets:[ 25; 50; 100; 200; 400 ]
      arch params problem
  in
  let t =
    Tabulate.create
      [ ("searcher", Tabulate.Left); ("measurements", Tabulate.Right);
        ("best GFLOP/s", Tabulate.Right) ]
  in
  let t =
    List.fold_left
      (fun t (budget, gflops) ->
        Tabulate.add_row t
          [ "generic autotuner"; string_of_int budget;
            Printf.sprintf "%.1f" gflops ])
      t curve
  in
  let ctx = { Hextime_tileopt.Strategies.arch; params; citer; problem } in
  let t =
    match Hextime_tileopt.Strategies.model_optimal ctx with
    | Ok o ->
        Tabulate.add_row t
          [
            "model-guided (Talg_min + thread sweep)";
            string_of_int o.Hextime_tileopt.Strategies.explored;
            Printf.sprintf "%.1f"
              o.Hextime_tileopt.Strategies.measurement
                .Hextime_tileopt.Runner.gflops;
          ]
    | Error _ -> t
  in
  let t =
    match Hextime_tileopt.Strategies.model_top10 ctx with
    | Ok o ->
        Tabulate.add_row t
          [
            "model-guided (within-10% exploration)";
            string_of_int o.Hextime_tileopt.Strategies.explored;
            Printf.sprintf "%.1f"
              o.Hextime_tileopt.Strategies.measurement
                .Hextime_tileopt.Runner.gflops;
          ]
    | Error _ -> t
  in
  Tabulate.print t;
  print_endline
    "(the within-10% exploration matches the tuner's converged best; the \
     generic tuner needs no model but spends hundreds of executions — each \
     of which on real hardware is a compile + run cycle of tens of seconds \
     (Section 8) — while the bare predicted minimum is a mediocre single \
     point, exactly Figure 6's message)"

(* --- Hexagonal vs classic time skewing ------------------------------------ *)

let () =
  section "Why hexagonal: hexagonal tiling vs classic time skewing";
  let cases =
    match scale with
    | H.Experiments.Ci -> [ (Stencil.heat2d, [| 1024; 1024 |], 256) ]
    | _ ->
        [
          (Stencil.heat2d, [| 4096; 4096 |], 1024);
          (Stencil.jacobi2d, [| 8192; 8192 |], 2048);
        ]
  in
  let arch = Gpu.Arch.gtx980 in
  let params = H.Microbench.params arch in
  let t =
    Tabulate.create
      [
        ("experiment", Tabulate.Left);
        ("hexagonal GF/s", Tabulate.Right);
        ("time-skewed GF/s", Tabulate.Right);
        ("launches hex/skewed", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t (stencil, space, time) ->
        let problem = Problem.make stencil ~space ~time in
        let citer = H.Microbench.citer arch stencil in
        let ctx = { Hextime_tileopt.Strategies.arch; params; citer; problem } in
        match Hextime_tileopt.Strategies.model_top10 ctx with
        | Error e -> Tabulate.add_row t [ Problem.id problem; e; "-"; "-" ]
        | Ok best -> (
            let cfg = best.Hextime_tileopt.Strategies.config in
            match Hextime_tiling.Skewed.measure arch problem cfg with
            | Error e -> Tabulate.add_row t [ Problem.id problem; e; "-"; "-" ]
            | Ok skew_s ->
                let hex =
                  best.Hextime_tileopt.Strategies.measurement
                    .Hextime_tileopt.Runner.gflops
                in
                let order = 1 in
                let hex_l =
                  Hextime_tiling.Hexgeom.num_wavefronts ~t_t:cfg.Config.t_t
                    ~time
                in
                let skew_l =
                  List.length
                    (Hextime_tiling.Skewed.wavefront_widths ~order
                       ~t_s:cfg.Config.t_s.(0) ~t_t:cfg.Config.t_t
                       ~space:space.(0) ~time)
                in
                Tabulate.add_row t
                  [
                    Problem.id problem;
                    Printf.sprintf "%.1f" hex;
                    Printf.sprintf "%.1f" (Problem.total_flops problem /. skew_s /. 1e9);
                    Printf.sprintf "%d / %d" hex_l skew_l;
                  ]))
      t cases
  in
  Tabulate.print t;
  print_endline
    "(same tile volumes and inner chunking: the difference is schedule \
     structure — constant-width wavefronts and halo sharing vs ramping \
     45-degree wavefronts, cf. Section 2's discussion of time tiling)"

(* --- Hexagonal vs overlapped (ghost-zone) tiling --------------------------- *)

let () =
  section "Hexagonal vs overlapped tiling (redundant computation, Section 2)";
  let stencil, space, time =
    match scale with
    | H.Experiments.Ci -> (Stencil.heat2d, [| 1024; 1024 |], 256)
    | _ -> (Stencil.heat2d, [| 4096; 4096 |], 1024)
  in
  let arch = Gpu.Arch.gtx980 in
  let problem = Problem.make stencil ~space ~time in
  let t =
    Tabulate.create
      [
        ("tT", Tabulate.Right);
        ("redundancy", Tabulate.Right);
        ("overtile", Tabulate.Right);
        ("hexagonal", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t tt ->
        let cfg = Config.make_exn ~t_t:tt ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
        match
          ( Hextime_tiling.Overtile.measure arch problem cfg,
            Runner.measure arch problem cfg )
        with
        | Ok ot, Ok hex ->
            Tabulate.add_row t
              [
                string_of_int tt;
                Printf.sprintf "%.2fx"
                  (Hextime_tiling.Overtile.redundancy_factor ~order:1
                     ~t_s:[| 16; 64 |] ~t_t:tt);
                Tabulate.seconds_cell ot;
                Tabulate.seconds_cell hex.Runner.time_s;
              ]
        | Error e, _ | _, Error e ->
            Tabulate.add_row t [ string_of_int tt; "-"; e; "-" ])
      t [ 2; 4; 6; 8; 10; 12 ]
  in
  Tabulate.print t;
  print_endline
    "(shallow time tiles: the ghost-zone scheme's fewer launches win; deep \
     tiles: its redundant halo computation dominates and the hexagons pull \
     away — the Section 2 trade-off that motivates hexagonal tiling)"

(* --- Event-level cross-validation of the compute model -------------------- *)

let () =
  section "Cross-validation: warp-level event simulation vs closed form";
  let arch = Gpu.Arch.gtx980 in
  let body =
    { Gpu.Pointcost.flops = 10; loads = 5; transcendentals = 0; rank = 2; double = false }
  in
  let wl ~threads points repeats =
    Gpu.Workload.v ~label:"xval" ~threads ~shared_words:4000
      ~regs_per_thread:32 ~body
      ~rows:[ { Gpu.Workload.points; repeats } ]
      ~input:{ Gpu.Memory.words = 0; run_length = 32 }
      ~output:{ Gpu.Memory.words = 0; run_length = 32 }
      ~row_stride:73 ~chunks:1
  in
  let t =
    Tabulate.create
      [
        ("threads", Tabulate.Right);
        ("row points", Tabulate.Right);
        ("event / closed-form", Tabulate.Right);
        ("scheduler stall", Tabulate.Right);
      ]
  in
  let t =
    List.fold_left
      (fun t (threads, points) ->
        let w = wl ~threads points 8 in
        let st = Gpu.Eventsim.chunk_stats arch w in
        Tabulate.add_row t
          [
            string_of_int threads;
            string_of_int points;
            Printf.sprintf "%.2f" (Gpu.Eventsim.agreement arch w);
            Printf.sprintf "%.0f%%" (100.0 *. st.Gpu.Eventsim.stall_fraction);
          ])
      t
      [ (32, 512); (64, 1024); (128, 1024); (256, 1024); (256, 4096); (512, 2048); (1024, 8192) ]
  in
  Tabulate.print t;
  print_endline
    "(a cycle-by-cycle warp scheduler — latency hiding and barriers emerge \
     instead of being closed-form factors — reproduces the block compute \
     model within ~15%, evidencing the simulator substrate is self-consistent)"

(* --- Bechamel micro-benchmarks ------------------------------------------- *)

let () =
  section "Hot-path micro-benchmarks (Bechamel)";
  let open Bechamel in
  let arch = Gpu.Arch.gtx980 in
  let params = H.Microbench.params arch in
  let stencil = Stencil.heat2d in
  let citer = 4.3e-8 in
  let problem = Problem.make stencil ~space:[| 4096; 4096 |] ~time:1024 in
  let cfg = Config.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  let compiled =
    match Lower.compile problem cfg with Ok c -> c | Error e -> failwith e
  in
  let kernels = Lower.kernel_sequence compiled in
  let small = Problem.make stencil ~space:[| 48; 32 |] ~time:8 in
  let small_cfg = Config.make_exn ~t_t:4 ~t_s:[| 6; 32 |] ~threads:[| 64 |] in
  let small_init = Reference.default_init small in
  let tests =
    Test.make_grouped ~name:"hextime"
      [
        Test.make ~name:"model-predict (one config)"
          (Staged.stage (fun () ->
               ignore (Model.predict params ~citer problem cfg)));
        Test.make ~name:"lower (compile to kernels)"
          (Staged.stage (fun () -> ignore (Lower.compile problem cfg)));
        Test.make ~name:"simulate (measure, 5 runs)"
          (Staged.stage (fun () -> ignore (Gpu.Simulator.measure arch kernels)));
        Test.make ~name:"exec-cpu (48x32, T=8)"
          (Staged.stage (fun () ->
               ignore (Exec_cpu.run small small_cfg ~init:small_init)));
        Test.make ~name:"reference (48x32, T=8)"
          (Staged.stage (fun () ->
               ignore (Reference.run small ~init:small_init)));
      ]
  in
  let benchmark_cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let raw =
    Benchmark.all benchmark_cfg [ Toolkit.Instance.monotonic_clock ] tests
  in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let t =
    Tabulate.create
      [ ("benchmark", Tabulate.Left); ("time / run", Tabulate.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let cell =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> Tabulate.seconds_cell (est *. 1e-9)
        | _ -> "-"
      in
      rows := (name, cell) :: !rows)
    results;
  let t =
    List.fold_left
      (fun t (name, cell) -> Tabulate.add_row t [ name; cell ])
      t
      (List.sort compare !rows)
  in
  Tabulate.print t

(* ------------------------------------------------------------------ *)
(* hexabs: symbolic pruning statistics.  The certificate and the
   branch-and-bound run on the same fixed workload as the throughput
   section (heat2d 512x512 T=128 on GTX 980), so the pruned-vs-enumerated
   counts exported to BENCH_hextime.json stay comparable across runs. *)

let hexabs_stats =
  section "hexabs: symbolic feasibility and branch-and-bound pruning";
  let module Hexabs = Hextime_analysis.Hexabs in
  let module Space = Hextime_tileopt.Space in
  let arch = Gpu.Arch.gtx980 in
  let params = H.Microbench.params arch in
  let problem = Problem.make Stencil.heat2d ~space:[| 512; 512 |] ~time:128 in
  let citer = H.Microbench.citer arch Stencil.heat2d in
  let tt, ts = Space.axes problem in
  let l = Hexabs.lattice ~tt ~ts in
  let cert = Hexabs.prove params problem l in
  let exhaustive = List.length (Space.shapes params problem) in
  let t =
    Tabulate.create
      [ ("metric", Tabulate.Left); ("count", Tabulate.Right) ]
  in
  let row t k v = Tabulate.add_row t [ k; string_of_int v ] in
  let t = row t "lattice points" cert.Hexabs.cert_total_points in
  let t = row t "points proven symbolically" cert.Hexabs.cert_proven_points in
  let t = row t "points enumerated" cert.Hexabs.cert_enumerated_points in
  let t = row t "boxes proven feasible" cert.Hexabs.cert_boxes_feasible in
  let t = row t "boxes proven infeasible" cert.Hexabs.cert_boxes_infeasible in
  let t = row t "boxes enumerated" cert.Hexabs.cert_boxes_enumerated in
  let t = row t "splits" cert.Hexabs.cert_splits in
  match Hexabs.minimize params ~citer problem l with
  | Error msg ->
      Tabulate.print t;
      Printf.printf "branch-and-bound failed: %s\n" msg;
      (cert, None, exhaustive)
  | Ok bnb ->
      let t = row t "exhaustive sweep evaluations" exhaustive in
      let t = row t "b&b concrete evaluations" bnb.Hexabs.bnb_evals_concrete in
      let t = row t "b&b interval evaluations" bnb.Hexabs.bnb_evals_bound in
      let t = row t "b&b boxes pruned" bnb.Hexabs.bnb_boxes_pruned in
      let t = row t "b&b live seed boxes" (List.length bnb.Hexabs.bnb_live) in
      Tabulate.print t;
      Printf.printf
        "certificate decides %.1f%% of the lattice symbolically; \
         branch-and-bound reproduces the exhaustive arg-min with %dx fewer \
         concrete evaluations\n"
        (100.0
        *. float_of_int cert.Hexabs.cert_proven_points
        /. float_of_int cert.Hexabs.cert_total_points)
        (exhaustive / max 1 bnb.Hexabs.bnb_evals_concrete);
      (cert, Some bnb, exhaustive)

(* ------------------------------------------------------------------ *)
(* Throughput trajectory: machine-readable hot-path numbers, exported
   to BENCH_hextime.json so CI can compare a run against the committed
   baseline (see bench/README.md and `hextime bench-compare`).

   Three metrics, each chosen because a PR touching the simulator core
   moves it directly:
   - cold-sweep points/sec: a full serial model-baseline sweep of
     heat2d 512x512 T=128 with the sweep cache disabled — the paper's
     end-to-end unit of work;
   - price ns/kernel: one jitter-invariant kernel pricing
     ([Simulator.price_sequence] over a compiled config);
   - eventsim simulated cycles per wall second on a canonical chunk.

   All three take best-of-3 so a cold code path or a scheduler blip
   does not pollute the baseline.  The workload is fixed (it does NOT
   scale with HEXTIME_SCALE) so numbers stay comparable across runs. *)

let () =
  section "Throughput trajectory (BENCH_hextime.json)";
  let module Minijson = Hextime_prelude.Minijson in
  let arch = Gpu.Arch.gtx980 in
  let problem = Problem.make Stencil.heat2d ~space:[| 512; 512 |] ~time:128 in
  let e = { H.Experiments.arch; problem } in
  (* warm the memoised microbenchmark parameters so the timed region
     measures the sweep itself, not one-time calibration *)
  ignore (H.Microbench.params arch);
  ignore (H.Microbench.citer arch Stencil.heat2d);
  let best_of_3 f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      let t1 = Unix.gettimeofday () in
      best := min !best (t1 -. t0)
    done;
    !best
  in
  (* cold sweep: serial exec carries no cache, so every iteration
     re-prices and re-measures every point *)
  let n_points = ref 0 in
  let inv0 = Gpu.Simulator.invocations () in
  let sweep_s =
    best_of_3 (fun () ->
        let s = H.Sweep.baseline ~exec:Parsweep.serial e in
        n_points := List.length s.H.Sweep.points + H.Sweep.dropped s)
  in
  let sweep_pps = float_of_int !n_points /. sweep_s in
  let invocations_per_point =
    float_of_int (Gpu.Simulator.invocations () - inv0)
    /. (3.0 *. float_of_int !n_points)
  in
  (* the two parallel backends on the identical cache-less workload: the
     fork pool pays a fork + Marshal round-trip per point, the domains
     pool claims indices off an atomic counter and writes results by
     reference.  `hextime bench-compare` gates domains >= 2x fork. *)
  let par_jobs = Parsweep.Pool.default_jobs () in
  let fork_exec = { Parsweep.serial with jobs = par_jobs } in
  let domains_exec =
    { Parsweep.serial with jobs = par_jobs; backend = `Domains }
  in
  let fork_s =
    best_of_3 (fun () -> ignore (H.Sweep.baseline ~exec:fork_exec e))
  in
  let domains_s =
    best_of_3 (fun () -> ignore (H.Sweep.baseline ~exec:domains_exec e))
  in
  let fork_pps = float_of_int !n_points /. fork_s in
  let domains_pps = float_of_int !n_points /. domains_s in
  (* pricing: the jitter-invariant pass over one compiled config *)
  let cfg = Config.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  let compiled =
    match Lower.compile problem cfg with Ok c -> c | Error e -> failwith e
  in
  let kernels = Lower.kernel_sequence compiled in
  let price_reps = 20_000 in
  let price_s =
    best_of_3 (fun () ->
        for _ = 1 to price_reps do
          ignore (Gpu.Simulator.price_sequence arch kernels)
        done)
  in
  let price_ns =
    price_s /. float_of_int (price_reps * List.length kernels) *. 1e9
  in
  (* eventsim: simulated cycles per second of wall time on a canonical
     single-chunk workload (big enough to exercise the fast-forward) *)
  let body =
    {
      Gpu.Pointcost.flops = 10;
      loads = 5;
      transcendentals = 0;
      rank = 2;
      double = false;
    }
  in
  let w =
    Gpu.Workload.v ~label:"bench-eventsim" ~threads:256 ~shared_words:4000
      ~regs_per_thread:32 ~body
      ~rows:[ { Gpu.Workload.points = 4096; repeats = 16 } ]
      ~input:{ Gpu.Memory.words = 0; run_length = 32 }
      ~output:{ Gpu.Memory.words = 0; run_length = 32 }
      ~row_stride:73 ~chunks:1
  in
  let es_reps = 200 in
  let es_cycles = (Gpu.Eventsim.chunk_stats arch w).Gpu.Eventsim.cycles in
  let es_s =
    best_of_3 (fun () ->
        for _ = 1 to es_reps do
          ignore (Gpu.Eventsim.chunk_stats arch w)
        done)
  in
  let es_cps = es_cycles *. float_of_int es_reps /. es_s in
  (* hexserve warm path: requests/sec and exact client-side latency
     percentiles over one connection.  The server runs in a domain, so
     this must come after every fork-backend sweep above — OCaml 5
     forbids Unix.fork once a domain has been spawned.  The index holds
     the ci experiment grid; every ask below hits it warm. *)
  let module Serve = Hextime_serve in
  let serve_socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hextime-bench-%d.sock" (Unix.getpid ()))
  in
  let serve_index_path = Filename.temp_file "hextime-bench-index" ".json" in
  let index = Serve.Index.create () in
  List.iter
    (fun (ex : H.Experiments.t) ->
      match
        Serve.Advisor.solve ex.H.Experiments.arch ex.H.Experiments.problem
      with
      | Ok a ->
          Serve.Index.add index
            (Serve.Index.entry_of_answer ex.H.Experiments.arch
               ex.H.Experiments.problem a)
      | Error _ -> ())
    (H.Experiments.all H.Experiments.Ci);
  (match Serve.Index.save index ~path:serve_index_path with
  | Ok () -> ()
  | Error e -> failwith e);
  let serve_access_log = Filename.temp_file "hextime-bench-access" ".jsonl" in
  let srv =
    Domain.spawn (fun () ->
        Serve.Server.run ~index_path:serve_index_path ~exec:Parsweep.serial
          ~access_log_path:serve_access_log ~socket_path:serve_socket ())
  in
  let fd =
    match Serve.Client.connect ~attempts:200 ~socket_path:serve_socket () with
    | Ok fd -> fd
    | Error e -> failwith e
  in
  (* tail latencies are gate inputs (bench-compare holds warm p99 under
     1 ms) but a single-shot p99 is hostage to container noise, so each
     serve figure is the median of 3 independent rounds over the same
     warm connection *)
  let median3 a b c = a +. b +. c -. min a (min b c) -. max a (max b c) in
  let asks = 2000 in
  let ask_round () =
    let lat = Array.make asks 0.0 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to asks - 1 do
      let a = Unix.gettimeofday () in
      (match
         Serve.Client.ask fd ~arch:"gtx980" ~stencil:"heat2d"
           ~space:[| 512; 512 |] ~time:128
       with
      | Ok { Serve.Proto.source = Serve.Proto.Warm; _ } -> ()
      | Ok _ -> failwith "bench: warm ask answered cold"
      | Error e -> failwith e);
      lat.(i) <- (Unix.gettimeofday () -. a) *. 1e6
    done;
    let elapsed = Unix.gettimeofday () -. t0 in
    Array.sort compare lat;
    let pct p =
      lat.(min (asks - 1) (int_of_float (ceil (p *. float_of_int asks)) - 1))
    in
    (float_of_int asks /. elapsed, pct 0.50, pct 0.99)
  in
  let (rps1, p50_1, p99_1) = ask_round () in
  let (rps2, p50_2, p99_2) = ask_round () in
  let (rps3, p50_3, p99_3) = ask_round () in
  let serve_rps = median3 rps1 rps2 rps3 in
  let serve_p50 = median3 p50_1 p50_2 p50_3 in
  let serve_p99 = median3 p99_1 p99_2 p99_3 in
  (* one full OpenMetrics exposition per round-trip: render + frame cost of
     the hexpulse scrape path (the metrics frame serves the same payload
     GET /metrics does) *)
  let scrapes = 64 in
  let scrape_round () =
    let scrape_lat = Array.make scrapes 0.0 in
    for i = 0 to scrapes - 1 do
      let a = Unix.gettimeofday () in
      (match Serve.Client.metrics fd with
      | Ok text when String.length text > 0 -> ()
      | Ok _ -> failwith "bench: empty exposition"
      | Error e -> failwith e);
      scrape_lat.(i) <- (Unix.gettimeofday () -. a) *. 1e6
    done;
    Array.sort compare scrape_lat;
    scrape_lat.(scrapes / 2)
  in
  let serve_scrape_us =
    median3 (scrape_round ()) (scrape_round ()) (scrape_round ())
  in
  (match Serve.Client.shutdown fd with Ok () -> () | Error e -> failwith e);
  Serve.Client.close fd;
  ignore (Domain.join srv : Serve.Server.summary);
  Sys.remove serve_index_path;
  Sys.remove serve_access_log;
  (* the same cold sweep measured (same machine class, same best-of-3
     methodology) at the commit before the priced-kernel refactor; kept
     here so the exported file documents the trajectory, not just the
     present *)
  let pre_refactor_pps = 39492.6 in
  Printf.printf "cold sweep          %10.1f points/sec (%d points)\n" sweep_pps
    !n_points;
  Printf.printf "  vs pre-refactor   %10.2fx (%.1f points/sec then)\n"
    (sweep_pps /. pre_refactor_pps)
    pre_refactor_pps;
  Printf.printf "  simulator prices  %10.2f per point\n" invocations_per_point;
  Printf.printf "cold sweep, fork    %10.1f points/sec (%d jobs)\n" fork_pps
    par_jobs;
  Printf.printf "cold sweep, domains %10.1f points/sec (%d jobs, %.2fx fork)\n"
    domains_pps par_jobs (domains_pps /. fork_pps);
  Printf.printf "price               %10.1f ns/kernel\n" price_ns;
  Printf.printf "eventsim            %10.3e simulated cycles/sec\n" es_cps;
  Printf.printf
    "serve, warm asks    %10.1f requests/sec (%d asks x 3 rounds, 1 client)\n"
    serve_rps asks;
  Printf.printf
    "  warm p50 / p99    %10.1f / %.1f us round-trip (median of 3 rounds)\n"
    serve_p50 serve_p99;
  Printf.printf
    "  metrics scrape    %10.1f us median (%d scrapes x 3 rounds)\n"
    serve_scrape_us scrapes;
  let json =
    Minijson.Obj
      [
        ("schema", Minijson.Str "hextime-bench-v1");
        ("scale", Minijson.Str (H.Experiments.scale_to_string scale));
        ("cold_sweep_points_per_sec", Minijson.Num sweep_pps);
        ("fork_cold_sweep_points_per_sec", Minijson.Num fork_pps);
        ("domains_cold_sweep_points_per_sec", Minijson.Num domains_pps);
        ("sweep_jobs", Minijson.Num (float_of_int par_jobs));
        ("cold_sweep_points", Minijson.Num (float_of_int !n_points));
        ("simulator_prices_per_point", Minijson.Num invocations_per_point);
        ("price_ns_per_kernel", Minijson.Num price_ns);
        ("eventsim_cycles_per_sec", Minijson.Num es_cps);
        ("serve_requests_per_sec", Minijson.Num serve_rps);
        ("serve_warm_p50_us", Minijson.Num serve_p50);
        ("serve_warm_p99_us", Minijson.Num serve_p99);
        ("serve_metrics_scrape_us", Minijson.Num serve_scrape_us);
        ("pre_refactor_cold_sweep_points_per_sec", Minijson.Num pre_refactor_pps);
        ( "cold_sweep_speedup_vs_pre_refactor",
          Minijson.Num (sweep_pps /. pre_refactor_pps) );
      ]
  in
  (* hexabs: splice the symbolic-pruning counts measured above into the
     same exported file, so CI can watch pruned-vs-enumerated alongside
     throughput *)
  let hexabs_cert, hexabs_bnb, hexabs_exhaustive = hexabs_stats in
  let module Hexabs = Hextime_analysis.Hexabs in
  let num i = Minijson.Num (float_of_int i) in
  let hexabs_fields =
    [
      ("hexabs_lattice_points", num hexabs_cert.Hexabs.cert_total_points);
      ("hexabs_feasible_points", num hexabs_cert.Hexabs.cert_feasible_points);
      ("hexabs_proven_points", num hexabs_cert.Hexabs.cert_proven_points);
      ( "hexabs_enumerated_points",
        num hexabs_cert.Hexabs.cert_enumerated_points );
      ("hexabs_exhaustive_evals", num hexabs_exhaustive);
    ]
    @
    match hexabs_bnb with
    | None -> []
    | Some bnb ->
        [
          ("hexabs_bnb_evals_concrete", num bnb.Hexabs.bnb_evals_concrete);
          ("hexabs_bnb_evals_bound", num bnb.Hexabs.bnb_evals_bound);
          ("hexabs_bnb_boxes_pruned", num bnb.Hexabs.bnb_boxes_pruned);
          ("hexabs_bnb_live_boxes", num (List.length bnb.Hexabs.bnb_live));
          ( "hexabs_eval_reduction",
            Minijson.Num
              (float_of_int hexabs_exhaustive
              /. float_of_int (max 1 bnb.Hexabs.bnb_evals_concrete)) );
        ]
  in
  let json =
    match json with
    | Minijson.Obj fields -> Minijson.Obj (fields @ hexabs_fields)
    | other -> other
  in
  let oc = open_out "BENCH_hextime.json" in
  output_string oc (Minijson.render json);
  close_out oc;
  print_endline "\nwrote BENCH_hextime.json";
  (* hexwatch: the same figures go to the run ledger, so `hextime history`
     shows the throughput trajectory alongside the accuracy runs *)
  let ledger = Hextime_obs.Ledger.default_path () in
  match
    Hextime_obs.Ledger.append ~path:ledger
      (Hextime_obs.Ledger.make ~kind:"bench"
         ~code_version:H.Sweep.code_version
         ~labels:[ ("scale", H.Experiments.scale_to_string scale) ]
         ~metrics:
           [
             ("cold_sweep_points_per_sec", sweep_pps);
             ("fork_cold_sweep_points_per_sec", fork_pps);
             ("domains_cold_sweep_points_per_sec", domains_pps);
             ("cold_sweep_points", float_of_int !n_points);
             ("simulator_prices_per_point", invocations_per_point);
             ("price_ns_per_kernel", price_ns);
             ("eventsim_cycles_per_sec", es_cps);
             ("serve_requests_per_sec", serve_rps);
             ("serve_warm_p99_us", serve_p99);
             ("serve_metrics_scrape_us", serve_scrape_us);
           ]
         ~snapshot:
           (Hextime_obs.Metrics.to_json (Hextime_obs.Metrics.snapshot ()))
         ())
  with
  | Ok () -> Printf.printf "ledger: appended bench record to %s\n" ledger
  | Error msg -> Printf.eprintf "hexwatch: ledger: %s\n" msg

let () = print_endline "\nbench: done"
