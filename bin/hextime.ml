(* hextime: analytical time modeling and tile-size selection for GPGPU
   stencils (PPoPP'17 reproduction).

   Subcommands map one-to-one onto the paper's artifacts: the tables, the
   figures, single-configuration prediction, and model-guided tuning. *)

module Gpu = Hextime_gpu
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner
module Optimizer = Hextime_tileopt.Optimizer
module Strategies = Hextime_tileopt.Strategies
module Space = Hextime_tileopt.Space
module Amplgen = Hextime_tileopt.Amplgen
module H = Hextime_harness
module Parsweep = Hextime_parsweep.Parsweep
module Tabulate = Hextime_prelude.Tabulate
module Minijson = Hextime_prelude.Minijson
module Obs = Hextime_obs

open Cmdliner

let die fmt = Printf.ksprintf (fun msg -> `Error (false, msg)) fmt

(* --- shared argument parsing ------------------------------------------- *)

let arch_arg =
  let parse s =
    match Gpu.Arch.find s with
    | a -> Ok a
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown architecture %S (expected %s)" s
               (String.concat " | "
                  (List.map (fun (a : Gpu.Arch.t) -> a.name) Gpu.Arch.presets))))
  in
  let print ppf (a : Gpu.Arch.t) = Format.pp_print_string ppf a.name in
  Arg.(
    value
    & opt (conv (parse, print)) Gpu.Arch.gtx980
    & info [ "a"; "arch" ] ~docv:"ARCH" ~doc:"GPU architecture preset.")

let stencil_arg =
  let parse s =
    match Stencil.find s with
    | st -> Ok st
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown stencil %S (expected one of: %s)" s
               (String.concat ", "
                  (List.map (fun (st : Stencil.t) -> st.name)
                     Stencil.all_benchmarks))))
  in
  let print ppf (st : Stencil.t) = Format.pp_print_string ppf st.name in
  Arg.(
    value
    & opt (conv (parse, print)) Stencil.heat2d
    & info [ "s"; "stencil" ] ~docv:"STENCIL" ~doc:"Stencil benchmark name.")

let ints_of_string s =
  try Some (List.map int_of_string (String.split_on_char 'x' s))
  with Failure _ -> None

let dims_conv what =
  let parse s =
    match ints_of_string s with
    | Some (_ :: _ as xs) -> Ok (Array.of_list xs)
    | _ -> Error (`Msg (Printf.sprintf "bad %s %S (use e.g. 4096x4096)" what s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (String.concat "x" (Array.to_list (Array.map string_of_int a)))
  in
  Arg.conv (parse, print)

let space_arg =
  Arg.(
    value
    & opt (dims_conv "space size") [| 4096; 4096 |]
    & info [ "S"; "space" ] ~docv:"S1xS2[xS3]" ~doc:"Space extents.")

let time_arg =
  Arg.(
    value & opt int 1024
    & info [ "T"; "time" ] ~docv:"T" ~doc:"Number of time steps.")

let scale_arg =
  let parse s =
    match H.Experiments.scale_of_string s with
    | Ok sc -> Ok sc
    | Error e -> Error (`Msg e)
  in
  let print ppf sc =
    Format.pp_print_string ppf (H.Experiments.scale_to_string sc)
  in
  Arg.(
    value
    & opt (conv (parse, print)) H.Experiments.Ci
    & info [ "scale" ] ~docv:"ci|quick|paper"
        ~doc:"Experiment scale (problem-size grid).")

let problem_of stencil space time =
  match Problem.make stencil ~space ~time with
  | p -> Ok p
  | exception Invalid_argument msg -> Error msg

(* --- sweep execution (parallel cached engine) --------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt int (Parsweep.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker processes for sweeps (default: core count, overridable \
           with $(b,HEXTIME_JOBS)).  1 runs fully in-process; results are \
           identical either way.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "On-disk sweep cache directory (default: $(b,HEXTIME_CACHE_DIR), \
           else ~/.cache/hextime).  The cache also checkpoints running \
           sweeps: a killed sweep resumes from its last completed point.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the on-disk sweep cache entirely.")

let backend_arg =
  let parse = function
    | "fork" -> Ok `Fork
    | "domains" -> Ok `Domains
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown backend %S (expected fork|domains)" s))
  in
  let print ppf b =
    Format.pp_print_string ppf
      (match b with `Fork -> "fork" | `Domains -> "domains")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Fork
    & info [ "backend" ] ~docv:"fork|domains"
        ~doc:
          "Parallel sweep backend.  $(b,fork): worker processes with \
           per-task fault isolation, timeouts and retries.  $(b,domains): \
           worker domains of this process sharing the heap — much higher \
           point throughput, but a crashing task takes the process down.  \
           Results are identical either way.")

let timeout_arg =
  Arg.(
    value
    & opt float Parsweep.Pool.default_timeout_s
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock timeout per sweep task chunk before the worker is \
           killed and the chunk's tasks retried individually.  Enforced by \
           the $(b,fork) backend only; the $(b,domains) backend warns and \
           ignores it (shared-heap workers cannot be killed in isolation).")

let retries_arg =
  Arg.(
    value
    & opt int Parsweep.Pool.default_retries
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "How many times a crashed or timed-out task is retried (as a \
           singleton, isolating the poison point) before being reported \
           failed.  Fork backend only, like $(b,--timeout).")

let exec_of ?(backend = `Fork) ?(timeout_s = Parsweep.Pool.default_timeout_s)
    ?(retries = Parsweep.Pool.default_retries) jobs cache_dir no_cache =
  let e = Parsweep.default ~backend ~jobs ?cache_dir () in
  let e = { e with Parsweep.timeout_s; retries } in
  if no_cache then { e with Parsweep.cache = None } else e

(* --- observability (hexscope) ------------------------------------------- *)

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Enable span tracing and write a Chrome trace-event JSON \
           (openable in chrome://tracing or ui.perfetto.dev) to FILE on \
           exit, with the merged metrics snapshot embedded under \
           $(b,metrics).  Worker-process spans and counters are merged in \
           across the fork boundary.  Stdout is unaffected: sweep/CSV \
           output stays byte-identical with or without this flag.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the merged metrics snapshot to stderr on exit.")

(* Wrap a subcommand body with trace/metrics capture.  All hexscope output
   goes to the trace file or stderr, never stdout, so enabling it cannot
   perturb machine-consumed output. *)
let with_obs profile metrics k =
  (match profile with Some _ -> Obs.Trace.enable () | None -> ());
  let r = k () in
  (match profile with
  | None -> ()
  | Some path -> (
      let snap = Obs.Metrics.snapshot () in
      try
        Obs.Trace.write_file path
          ~extra:[ ("metrics", Obs.Metrics.to_json snap) ]
          (Obs.Trace.events ());
        Format.eprintf "hexscope: wrote %s (%d span events)@." path
          (Obs.Trace.num_events ())
      with Sys_error msg -> Format.eprintf "hexscope: %s@." msg));
  if metrics then prerr_string (Obs.Metrics.render (Obs.Metrics.snapshot ()));
  r

(* --- hexwatch (run ledger) ----------------------------------------------- *)

let ledger_arg =
  Arg.(
    value
    & opt string (Obs.Ledger.default_path ())
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "hexwatch run-ledger file (default: $(b,HEXTIME_LEDGER), else \
           hexwatch-ledger.jsonl).  Runs append one compact JSON record \
           each; browse the trajectory with $(b,hextime history).")

let no_ledger_arg =
  Arg.(
    value & flag
    & info [ "no-ledger" ] ~doc:"Do not record this run in the ledger.")

(* Recording is best-effort: a read-only checkout must not break a run. *)
let ledger_record ~ledger ~no_ledger entry =
  if not no_ledger then
    match Obs.Ledger.append ~path:ledger entry with
    | Ok () -> ()
    | Error msg -> Format.eprintf "hexwatch: ledger: %s@." msg

let sweep_stat_metrics ~elapsed_s (stats : Parsweep.stats) =
  let total = float_of_int stats.Parsweep.total in
  [
    ("points", total);
    ( "cache_hit_rate",
      if stats.Parsweep.total = 0 then 0.0
      else float_of_int stats.Parsweep.cache_hits /. total );
    ("points_per_sec", if elapsed_s > 0.0 then total /. elapsed_s else 0.0);
    ("elapsed_s", elapsed_s);
  ]

let metrics_snapshot () = Obs.Metrics.to_json (Obs.Metrics.snapshot ())

(* --- predict ------------------------------------------------------------ *)

let predict_cmd =
  let tile =
    Arg.(
      required
      & opt (some (dims_conv "tile sizes")) None
      & info [ "tile" ] ~docv:"tTxtS1[xtS2[xtS3]]"
          ~doc:"Tile sizes: time tile then one per space dimension.")
  in
  let threads =
    Arg.(
      value & opt int 256
      & info [ "threads" ] ~docv:"N" ~doc:"Threads per block.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the full derivation.")
  in
  let run arch stencil space time tile threads explain_flag =
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem -> (
        if Array.length tile < 2 then die "tile needs at least tT and tS1"
        else
          let t_t = tile.(0) in
          let t_s = Array.sub tile 1 (Array.length tile - 1) in
          match Config.make ~t_t ~t_s ~threads:[| threads |] with
          | Error msg -> die "invalid configuration: %s" msg
          | Ok cfg -> (
              let params = H.Microbench.params arch in
              let citer = H.Microbench.citer arch stencil in
              match Model.predict params ~citer problem cfg with
              | Error msg -> die "model: %s" msg
              | Ok pr ->
                  Format.printf "problem:    %a on %s@." Problem.pp problem
                    arch.Gpu.Arch.name;
                  Format.printf "config:     %a@." Config.pp cfg;
                  Format.printf "model:      %a@." Model.pp_prediction pr;
                  (if explain_flag then
                     match Model.explain params ~citer problem cfg with
                     | Ok text -> print_string text
                     | Error msg -> Format.printf "explain failed: %s@." msg);
                  (match Runner.measure arch problem cfg with
                  | Ok m ->
                      Format.printf
                        "simulated:  %.4e s (%.1f GFLOP/s, k=%d, %d regs \
                         spilled)@."
                        m.Runner.time_s m.Runner.gflops m.Runner.resident_blocks
                        m.Runner.spilled_regs;
                      Format.printf "model/simulated: %.2f@."
                        (pr.Model.talg /. m.Runner.time_s)
                  | Error msg ->
                      Format.printf "simulated:  rejected (%s)@." msg);
                  `Ok ()))
  in
  let term =
    Term.(
      ret (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ tile
           $ threads $ explain))
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Evaluate the analytical model on one configuration and compare \
          against the simulator.")
    term

(* --- tune --------------------------------------------------------------- *)

let tune_cmd =
  let frac =
    Arg.(
      value & opt float 0.10
      & info [ "frac" ] ~docv:"F"
          ~doc:"Keep shapes within F of the predicted minimum (paper: 0.10).")
  in
  let run arch stencil space time frac profile metrics ledger no_ledger =
    with_obs profile metrics @@ fun () ->
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem ->
        let t0 = Unix.gettimeofday () in
        let params = H.Microbench.params arch in
        let citer = H.Microbench.citer arch stencil in
        let space_eval = Optimizer.evaluate_space params ~citer problem in
        if space_eval = [] then die "empty feasible space"
        else begin
          let best = Optimizer.best space_eval in
          let cands = Optimizer.within_fraction ~frac space_eval in
          Format.printf "feasible shapes: %d; Talg_min = %.4e s at %a@."
            (List.length space_eval) best.Optimizer.prediction.Model.talg
            Space.pp best.Optimizer.shape;
          Format.printf "candidates within %.0f%%: %d@." (100.0 *. frac)
            (List.length cands);
          let ctx = { Strategies.arch; params; citer; problem } in
          match Strategies.model_top10 ctx with
          | Error msg -> die "tuning failed: %s" msg
          | Ok o ->
              Format.printf
                "recommended: %a  (%.4e s simulated, %.1f GFLOP/s, %d \
                 configurations executed)@."
                Config.pp o.Strategies.config
                o.Strategies.measurement.Runner.time_s
                o.Strategies.measurement.Runner.gflops o.Strategies.explored;
              (* hexwatch: how far the pure-model pick (the Talg arg-min,
                 no empirical exploration) lands from the tuned
                 recommendation — 0.0 means inside the frac band *)
              let argmin_metrics =
                match
                  match
                    Space.to_config best.Optimizer.shape ~threads:[| 256 |]
                  with
                  | cfg -> Runner.measure arch problem cfg
                  | exception Invalid_argument msg -> Error msg
                with
                | Error _ -> []
                | Ok am ->
                    let slowdown =
                      (am.Runner.time_s /. o.Strategies.measurement.Runner.time_s)
                      -. 1.0
                    in
                    let distance = Float.max 0.0 (slowdown -. frac) in
                    Format.printf
                      "model arg-min alone: %.4e s simulated (%+.1f%% vs \
                       tuned; band distance %.3f)@."
                      am.Runner.time_s (100.0 *. slowdown) distance;
                    [
                      ("argmin_time_s", am.Runner.time_s);
                      ("argmin_gflops", am.Runner.gflops);
                      ("argmin_band_distance", distance);
                    ]
              in
              ledger_record ~ledger ~no_ledger
                (Obs.Ledger.make ~kind:"tune"
                   ~code_version:H.Sweep.code_version
                   ~labels:
                     [
                       ("arch", arch.Gpu.Arch.name);
                       ("stencil", stencil.Stencil.name);
                       ("problem", Problem.id problem);
                     ]
                   ~metrics:
                     ([
                        ("feasible_shapes", float_of_int (List.length space_eval));
                        ("candidates", float_of_int (List.length cands));
                        ("explored", float_of_int o.Strategies.explored);
                        ("frac", frac);
                        ("talg_min", best.Optimizer.prediction.Model.talg);
                        ("tuned_time_s", o.Strategies.measurement.Runner.time_s);
                        ("tuned_gflops", o.Strategies.measurement.Runner.gflops);
                        ("elapsed_s", Unix.gettimeofday () -. t0);
                      ]
                     @ argmin_metrics)
                   ~snapshot:(metrics_snapshot ()) ());
              `Ok ()
        end
  in
  let term =
    Term.(
      ret
        (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ frac
       $ profile_arg $ metrics_arg $ ledger_arg $ no_ledger_arg))
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Model-guided tile-size selection (Section 6): enumerate the \
          feasible space, keep the within-10% candidates, explore them \
          empirically.")
    term

(* --- strategies ---------------------------------------------------------- *)

let strategies_cmd =
  let run arch stencil space time =
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem ->
        let params = H.Microbench.params arch in
        let citer = H.Microbench.citer arch stencil in
        let ctx = { Strategies.arch; params; citer; problem } in
        let t =
          Tabulate.create
            ~title:(Printf.sprintf "Strategies for %s on %s" (Problem.id problem) arch.Gpu.Arch.name)
            [
              ("strategy", Tabulate.Left);
              ("configuration", Tabulate.Left);
              ("time", Tabulate.Right);
              ("GFLOP/s", Tabulate.Right);
              ("explored", Tabulate.Right);
            ]
        in
        let t =
          List.fold_left
            (fun t (name, outcome) ->
              match outcome with
              | Ok (o : Strategies.outcome) ->
                  Tabulate.add_row t
                    [
                      name;
                      Config.id o.Strategies.config;
                      Tabulate.seconds_cell o.Strategies.measurement.Runner.time_s;
                      Printf.sprintf "%.1f" o.Strategies.measurement.Runner.gflops;
                      string_of_int o.Strategies.explored;
                    ]
              | Error msg -> Tabulate.add_row t [ name; "failed: " ^ msg; "-"; "-"; "-" ])
            t
            (Strategies.all ~max_configs:2000 ctx)
        in
        Tabulate.print t;
        `Ok ()
  in
  let term =
    Term.(ret (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg))
  in
  Cmd.v
    (Cmd.info "strategies"
       ~doc:"Compare the tile-size selection strategies of Figure 6 on one instance.")
    term

(* --- tables / figures ---------------------------------------------------- *)

let tables_cmd =
  let run () =
    print_string (Hextime_core.Glossary.render ());
    print_newline ();
    Tabulate.print (H.Tables.table2 ());
    print_newline ();
    Tabulate.print (H.Tables.table3 ());
    print_newline ();
    Tabulate.print (H.Tables.table4 ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the reproductions of Tables 2, 3 and 4.")
    Term.(ret (const run $ const ()))

let fig3_cmd =
  let limit =
    Arg.(
      value & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Subsample each sweep to N points.")
  in
  let run scale limit =
    print_string (H.Figures.render_fig3 (H.Figures.fig3_data ?limit scale));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Model validation (Figure 3 / Section 5.3).")
    Term.(ret (const run $ scale_arg $ limit))

let fig4_cmd =
  let run space time =
    print_string (H.Figures.render_fig4 (H.Figures.fig4_data ~space ~time ()));
    `Ok ()
  in
  let space =
    Arg.(
      value
      & opt (dims_conv "space size") [| 8192; 8192 |]
      & info [ "S"; "space" ] ~docv:"S1xS2" ~doc:"Space extents.")
  in
  let time =
    Arg.(value & opt int 8192 & info [ "T"; "time" ] ~docv:"T" ~doc:"Time steps.")
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Talg surface for Heat2D on GTX 980 (Figure 4).")
    Term.(ret (const run $ space $ time))

let fig5_cmd =
  let run scale =
    print_string (H.Figures.render_fig5 (H.Figures.fig5_data ~scale ()));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "fig5"
       ~doc:"Model-guided candidates vs the baseline for Gradient2D (Figure 5).")
    Term.(ret (const run $ scale_arg))

let fig6_cmd =
  let max_configs =
    Arg.(
      value & opt int 2000
      & info [ "max-configs" ] ~docv:"N"
          ~doc:"Stride-sample cap for the exhaustive strategy.")
  in
  let run scale max_configs =
    print_string (H.Figures.render_fig6 (H.Figures.fig6_data ~max_configs scale));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:"Average GFLOP/s per tile-size selection strategy (Figure 6).")
    Term.(ret (const run $ scale_arg $ max_configs))

(* --- validate ------------------------------------------------------------ *)

let validate_cmd =
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the sweep as CSV.")
  in
  let plot =
    Arg.(value & flag & info [ "plot" ] ~doc:"Render the ASCII scatter plot.")
  in
  let run arch stencil space time csv plot backend jobs timeout_s retries
      cache_dir no_cache profile metrics ledger no_ledger =
    with_obs profile metrics @@ fun () ->
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem ->
        let t0 = Unix.gettimeofday () in
        let e = { H.Experiments.arch; problem } in
        let full, stats =
          H.Sweep.run
            ~exec:(exec_of ~backend ~timeout_s ~retries jobs cache_dir no_cache)
            e
        in
        let elapsed_s = Unix.gettimeofday () -. t0 in
        let sweep = full.H.Sweep.points in
        if sweep = [] then die "no data point survived"
        else begin
          Format.printf "sweep: %a (%a)@." Parsweep.pp_stats stats
            H.Sweep.pp_drops full;
          let s = H.Validation.analyze sweep in
          Format.printf "%s: %a@." (H.Experiments.id e) H.Validation.pp_summary s;
          ledger_record ~ledger ~no_ledger
            (Obs.Ledger.make ~kind:"validate"
               ~code_version:H.Sweep.code_version
               ~labels:
                 [
                   ("experiment", H.Experiments.id e);
                   ("arch", arch.Gpu.Arch.name);
                   ("stencil", stencil.Stencil.name);
                   ("jobs", string_of_int jobs);
                 ]
               ~metrics:
                 (sweep_stat_metrics ~elapsed_s stats
                 @ List.filter
                     (fun (k, _) -> k <> "points")
                     (H.Validation.metrics s))
               ~groups:[ (H.Experiments.id e, H.Validation.metrics s) ]
               ~snapshot:(metrics_snapshot ()) ());
          if plot then
            print_string
              (H.Scatter.render ~title:"predicted (x) vs measured (y)"
                 (H.Validation.scatter sweep));
          match csv with
          | None -> `Ok ()
          | Some path -> (
              match H.Export.write_file ~path (H.Export.sweep_csv sweep) with
              | Ok () ->
                  Format.printf "wrote %s@." path;
                  `Ok ()
              | Error msg -> die "csv: %s" msg)
        end
  in
  let term =
    Term.(
      ret
        (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ csv $ plot
       $ backend_arg $ jobs_arg $ timeout_arg $ retries_arg $ cache_dir_arg
       $ no_cache_arg $ profile_arg $ metrics_arg $ ledger_arg $ no_ledger_arg))
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Run the 850-point baseline sweep for one experiment and report \
             the RMSE bands of Section 5.3.")
    term

(* --- sensitivity -------------------------------------------------------------- *)

let sensitivity_cmd =
  let tile =
    Arg.(
      required
      & opt (some (dims_conv "tile sizes")) None
      & info [ "tile" ] ~docv:"tTxtS1[xtS2[xtS3]]" ~doc:"Tile sizes.")
  in
  let threads =
    Arg.(value & opt int 256 & info [ "threads" ] ~docv:"N" ~doc:"Threads per block.")
  in
  let run arch stencil space time tile threads =
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem ->
        if Array.length tile < 2 then die "tile needs at least tT and tS1"
        else
          let t_t = tile.(0) in
          let t_s = Array.sub tile 1 (Array.length tile - 1) in
          (match Config.make ~t_t ~t_s ~threads:[| threads |] with
          | Error msg -> die "invalid configuration: %s" msg
          | Ok cfg -> (
              let params = H.Microbench.params arch in
              let citer = H.Microbench.citer arch stencil in
              match Hextime_core.Sensitivity.analyze params ~citer problem cfg with
              | Error msg -> die "sensitivity: %s" msg
              | Ok rows ->
                  let t =
                    Tabulate.create
                      ~title:
                        (Printf.sprintf "Talg sensitivity for %s / %s"
                           (Problem.id problem) (Config.id cfg))
                      [ ("parameter", Tabulate.Left); ("elasticity", Tabulate.Right) ]
                  in
                  Tabulate.print
                    (List.fold_left
                       (fun t (r : Hextime_core.Sensitivity.row) ->
                         Tabulate.add_row t
                           [
                             Hextime_core.Sensitivity.factor_name
                               r.Hextime_core.Sensitivity.factor;
                             Printf.sprintf "%+.2f"
                               r.Hextime_core.Sensitivity.elasticity;
                           ])
                       t rows);
                  `Ok ()))
  in
  let term =
    Term.(
      ret (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ tile
           $ threads))
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Which model parameter the prediction hinges on for a \
             configuration (elasticities of Talg).")
    term

(* --- trace ------------------------------------------------------------------ *)

let trace_cmd =
  let tile =
    Arg.(
      required
      & opt (some (dims_conv "tile sizes")) None
      & info [ "tile" ] ~docv:"tTxtS1[xtS2[xtS3]]" ~doc:"Tile sizes.")
  in
  let threads =
    Arg.(value & opt int 256 & info [ "threads" ] ~docv:"N" ~doc:"Threads per block.")
  in
  let run arch stencil space time tile threads =
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem ->
        if Array.length tile < 2 then die "tile needs at least tT and tS1"
        else
          let t_t = tile.(0) in
          let t_s = Array.sub tile 1 (Array.length tile - 1) in
          (match Config.make ~t_t ~t_s ~threads:[| threads |] with
          | Error msg -> die "invalid configuration: %s" msg
          | Ok cfg -> (
              match Hextime_tiling.Lower.compile problem cfg with
              | Error msg -> die "compile: %s" msg
              | Ok compiled -> (
                  match
                    Gpu.Timeline.of_kernel arch
                      compiled.Hextime_tiling.Lower.green
                  with
                  | Error msg -> die "trace: %s" msg
                  | Ok timeline ->
                      Format.printf
                        "one green wavefront kernel (%d blocks) on %s:@."
                        compiled.Hextime_tiling.Lower.blocks_per_wavefront
                        arch.Gpu.Arch.name;
                      print_string (Gpu.Timeline.render timeline);
                      `Ok ())))
  in
  let term =
    Term.(
      ret (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ tile
           $ threads))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Render the per-SM execution timeline of one wavefront kernel.")
    term

(* --- codegen --------------------------------------------------------------- *)

let codegen_cmd =
  let tile =
    Arg.(
      required
      & opt (some (dims_conv "tile sizes")) None
      & info [ "tile" ] ~docv:"tTxtS1[xtS2[xtS3]]" ~doc:"Tile sizes.")
  in
  let threads =
    Arg.(value & opt int 256 & info [ "threads" ] ~docv:"N" ~doc:"Threads per block.")
  in
  let run stencil space time tile threads =
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem ->
        if Array.length tile < 2 then die "tile needs at least tT and tS1"
        else
          let t_t = tile.(0) in
          let t_s = Array.sub tile 1 (Array.length tile - 1) in
          (match Config.make ~t_t ~t_s ~threads:[| threads |] with
          | Error msg -> die "invalid configuration: %s" msg
          | Ok cfg -> (
              match Hextime_tiling.Codegen.program problem cfg with
              | Ok text ->
                  print_string text;
                  `Ok ()
              | Error msg -> die "codegen: %s" msg))
  in
  let term =
    Term.(ret (const run $ stencil_arg $ space_arg $ time_arg $ tile $ threads))
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Emit the CUDA-like pseudo-code of a tiled schedule (what the \
             HHC compiler would generate).")
    term

(* --- lint ------------------------------------------------------------------- *)

let lint_cmd =
  let module Hexlint = Hextime_analysis.Hexlint in
  let tile =
    Arg.(
      value
      & opt (some (dims_conv "tile sizes")) None
      & info [ "tile" ] ~docv:"tTxtS1[xtS2[xtS3]]"
          ~doc:"Tile sizes of the single configuration to lint.")
  in
  let threads =
    Arg.(value & opt int 256 & info [ "threads" ] ~docv:"N" ~doc:"Threads per block.")
  in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Lint every feasible baseline configuration of every experiment \
             at the given $(b,--scale) instead of a single configuration.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"text|json" ~doc:"Output format.")
  in
  let fail_on =
    Arg.(
      value
      & opt (enum [ ("error", `Error); ("warning", `Warning) ]) `Error
      & info [ "fail-on" ] ~docv:"error|warning"
          ~doc:
            "Minimum severity that makes the exit status non-zero.  The \
             default $(b,error) means warning-only reports are informational.")
  in
  let symbolic =
    Arg.(
      value & flag
      & info [ "symbolic" ]
          ~doc:
            "With $(b,--sweep): prove whole sub-lattices free of resources \
             and bounds findings first (hexabs abstract domains) and skip \
             those passes on every configuration inside a proven-clean box.")
  in
  let fail_on_name = function `Error -> "error" | `Warning -> "warning" in
  let failing_of fail_on reports =
    List.filter
      (fun r ->
        match fail_on with
        | `Error -> Hexlint.error_count r > 0
        | `Warning -> r.Hexlint.findings <> [])
      reports
  in
  let finish fmt fail_on reports ~linted ~skipped =
    let dirty = List.filter (fun r -> r.Hexlint.findings <> []) reports in
    let failing = failing_of fail_on dirty in
    (match fmt with
    | `Json -> print_string (Hexlint.render_json dirty)
    | `Text ->
        print_string (Hexlint.render_sweep_text dirty);
        Printf.printf
          "linted %d configuration(s) (%d infeasible skipped): %s\n" linted
          skipped
          (if dirty = [] then "clean"
           else
             Printf.sprintf "%d with findings, %d at or above --fail-on=%s"
               (List.length dirty) (List.length failing)
               (fail_on_name fail_on)));
    if failing = [] then `Ok ()
    else
      die "lint: findings at or above --fail-on=%s in %d of %d \
           configuration(s)"
        (fail_on_name fail_on) (List.length failing) linted
  in
  let run arch stencil space time tile threads sweep scale fmt fail_on
      symbolic jobs cache_dir no_cache profile metrics =
    with_obs profile metrics @@ fun () ->
    if sweep then begin
      let module Hexabs = Hextime_analysis.Hexabs in
      let exec = exec_of jobs cache_dir no_cache in
      let experiments = H.Experiments.all scale in
      (* symbolic pre-pass: per experiment and per thread count, a disjoint
         cover of the tile lattice with box-level resources/bounds verdicts.
         Configurations inside a proven-clean box skip those two passes —
         the proof says they cannot produce findings there. *)
      let covers =
        if not symbolic then None
        else begin
          let tbl = Hashtbl.create 16 in
          List.iter
            (fun (e : H.Experiments.t) ->
              let tt, ts = Space.axes e.problem in
              let l = Hexabs.lattice ~tt ~ts in
              let taxis = Array.of_list Space.thread_candidates in
              let per_thread =
                List.mapi
                  (fun i t ->
                    let cover =
                      Hexabs.prove_clean e.arch e.problem l ~threads_axis:taxis
                        ~threads:{ Hexabs.lo = i; hi = i }
                    in
                    ( t,
                      List.filter_map
                        (function b, Hexabs.Clean -> Some b | _ -> None)
                        cover ))
                  Space.thread_candidates
              in
              Hashtbl.replace tbl (H.Experiments.id e) (l, per_thread))
            experiments;
          Some tbl
        end
      in
      let skip_for (e : H.Experiments.t) cfg =
        match covers with
        | None -> []
        | Some tbl -> (
            match Hashtbl.find_opt tbl (H.Experiments.id e) with
            | None -> []
            | Some (l, per_thread) -> (
                match
                  List.assoc_opt (Config.total_threads cfg) per_thread
                with
                | None -> []
                | Some clean ->
                    if
                      List.exists
                        (fun b ->
                          Hexabs.contains l b ~t_t:cfg.Config.t_t
                            ~t_s:cfg.Config.t_s)
                        clean
                    then [ "bounds"; "resources" ]
                    else []))
      in
      (* params/citer are computed per experiment in the parent, so forked
         workers inherit the warm micro-benchmark memos *)
      let tasks =
        List.concat_map
          (fun (e : H.Experiments.t) ->
            let params = H.Microbench.params e.arch in
            let citer = H.Microbench.citer e.arch e.problem.Problem.stencil in
            List.map
              (fun cfg -> (e, params, citer, cfg, skip_for e cfg))
              (Hextime_tileopt.Baseline.data_points params e.problem))
          experiments
      in
      (if symbolic then
         let proven =
           List.length (List.filter (fun (_, _, _, _, s) -> s <> []) tasks)
         in
         Format.eprintf
           "symbolic lint: resources+bounds proven clean box-wide for %d of \
            %d configuration(s); per-config passes skipped there@."
           proven (List.length tasks));
      let outcomes, stats =
        Parsweep.map exec
          ~key:(fun ((e : H.Experiments.t), _, _, cfg, skip) ->
            Printf.sprintf "lint|%s|%s|%s%s" H.Sweep.code_version
              (H.Experiments.id e) (Config.id cfg)
              (if skip = [] then "" else "|sym"))
          ~f:(fun ((e : H.Experiments.t), params, citer, cfg, skip) ->
            match
              Hexlint.lint_config ~skip params ~arch:e.arch ~citer e.problem
                cfg
            with
            | Ok r -> Some r
            | Error _ -> None)
          tasks
      in
      let linted = ref 0 and skipped = ref 0 in
      let reports =
        List.filter_map
          (function
            | Ok (Some r) ->
                incr linted;
                Some r
            | Ok None | Error _ ->
                incr skipped;
                None)
          outcomes
      in
      (* stderr: keeps --format json output machine-parseable *)
      Format.eprintf "lint sweep: %a@." Parsweep.pp_stats stats;
      finish fmt fail_on reports ~linted:!linted ~skipped:!skipped
    end
    else
      match tile with
      | None -> die "either --tile or --sweep is required"
      | Some tile -> (
          match problem_of stencil space time with
          | Error msg -> die "%s" msg
          | Ok problem ->
              if Array.length tile < 2 then die "tile needs at least tT and tS1"
              else
                let t_t = tile.(0) in
                let t_s = Array.sub tile 1 (Array.length tile - 1) in
                (match Config.make ~t_t ~t_s ~threads:[| threads |] with
                | Error msg -> die "invalid configuration: %s" msg
                | Ok cfg -> (
                    let params = H.Microbench.params arch in
                    let citer = H.Microbench.citer arch stencil in
                    match Hexlint.lint_config params ~arch ~citer problem cfg with
                    | Error msg -> die "lint: %s" msg
                    | Ok r ->
                        (match fmt with
                        | `Json -> print_string (Hexlint.render_json [ r ])
                        | `Text -> print_string (Hexlint.render_text r));
                        if failing_of fail_on [ r ] = [] then `Ok ()
                        else
                          die "lint: %d finding(s) at or above --fail-on=%s"
                            (List.length r.Hexlint.findings)
                            (fail_on_name fail_on))))
  in
  let term =
    Term.(
      ret
        (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ tile
       $ threads $ sweep $ scale_arg $ format $ fail_on $ symbolic $ jobs_arg
       $ cache_dir_arg $ no_cache_arg $ profile_arg $ metrics_arg))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the hexlint static-analysis passes (races, bounds, bank \
          conflicts, resources, model conformance) on the lowered kernel IR \
          of one configuration, or of the whole feasible baseline sweep with \
          $(b,--sweep).  Exits non-zero when findings at or above \
          $(b,--fail-on) (default: error) are present; with \
          $(b,--format)=json only configurations with findings are printed.  \
          $(b,--symbolic) proves sub-lattices clean before linting.")
    term

(* --- prove ------------------------------------------------------------------ *)

let prove_cmd =
  let module Hexabs = Hextime_analysis.Hexabs in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Certify every experiment at the given $(b,--scale) instead of a \
             single problem.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"text|json" ~doc:"Output format.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Cross-check the certificate point-for-point against exhaustive \
             enumeration and the branch-and-bound arg-min against the \
             exhaustive minimum; exit non-zero on any disagreement, or if \
             more than 25% of the lattice had to be enumerated.")
  in
  let slack =
    Arg.(
      value & opt float 0.25
      & info [ "slack" ] ~docv:"FRAC"
          ~doc:
            "Boxes whose certified lower bound is within this fraction of \
             the optimum survive as live descent-seed regions.")
  in
  let regions =
    Arg.(
      value & flag
      & info [ "regions" ]
          ~doc:
            "Print one line per certificate region in text mode (JSON output \
             always carries the region list).")
  in
  let run_one ~check ~slack ~label arch params ~citer problem =
    let tt, ts = Space.axes problem in
    let l = Hexabs.lattice ~tt ~ts in
    let cert = Hexabs.prove params problem l in
    let bnb = Hexabs.minimize ~slack params ~citer problem l in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
    let enum_frac =
      float_of_int cert.Hexabs.cert_enumerated_points
      /. float_of_int (max 1 cert.Hexabs.cert_total_points)
    in
    if check then begin
      let mism = ref 0 in
      List.iter
        (fun (pt : Hexabs.point) ->
          let concrete = Hexabs.point_feasible params problem pt in
          match
            Hexabs.certificate_feasible cert l ~t_t:pt.Hexabs.p_tt
              ~t_s:pt.Hexabs.p_ts
          with
          | Some c when c = concrete -> ()
          | _ -> incr mism)
        (Hexabs.members l (Hexabs.full_box l));
      if !mism > 0 then
        fail "certificate disagrees with enumeration at %d point(s)" !mism;
      if enum_frac > 0.25 then
        fail "prover enumerated %.1f%% of the lattice (budget 25%%)"
          (100.0 *. enum_frac);
      match bnb with
      | Error msg -> fail "branch-and-bound failed: %s" msg
      | Ok r ->
          let ex_min =
            List.fold_left
              (fun acc (s : Space.shape) ->
                match
                  Hexabs.point_talg params ~citer problem
                    { Hexabs.p_tt = s.Space.t_t; p_ts = s.Space.t_s }
                with
                | Some t -> min acc t
                | None -> acc)
              infinity
              (Space.shapes params problem)
          in
          if r.Hexabs.bnb_talg <> ex_min then
            fail
              "branch-and-bound minimum %.17g differs from the exhaustive \
               sweep's %.17g"
              r.Hexabs.bnb_talg ex_min
    end;
    ignore arch;
    (l, cert, bnb, enum_frac, List.rev !failures, label)
  in
  let region_json l (r : Hexabs.region) =
    let (ttlo, tthi), ranges = Hexabs.value_ranges l r.Hexabs.r_box in
    let pair (lo, hi) =
      Minijson.List [ Num (float_of_int lo); Num (float_of_int hi) ]
    in
    Minijson.Obj
      [
        ("t_t", pair (ttlo, tthi));
        ("t_s", Minijson.List (Array.to_list (Array.map pair ranges)));
        ("verdict", Str (Hexabs.verdict_name r.Hexabs.r_verdict));
        ( "constraint",
          match Hexabs.verdict_constraint r.Hexabs.r_verdict with
          | Some c -> Str c
          | None -> Null );
        ("points", Num (float_of_int r.Hexabs.r_points));
      ]
  in
  let result_json (l, cert, bnb, enum_frac, failures, label) =
    let n = float_of_int in
    let bnb_json =
      match bnb with
      | Error msg -> Minijson.Obj [ ("error", Str msg) ]
      | Ok (r : Hexabs.bnb) ->
          Minijson.Obj
            [
              ( "best",
                Str
                  (Space.id
                     {
                       Space.t_t = r.Hexabs.bnb_best.Hexabs.p_tt;
                       t_s = r.Hexabs.bnb_best.Hexabs.p_ts;
                     }) );
              ("talg", Num r.Hexabs.bnb_talg);
              ("evals_concrete", Num (n r.Hexabs.bnb_evals_concrete));
              ("evals_bound", Num (n r.Hexabs.bnb_evals_bound));
              ("boxes_pruned", Num (n r.Hexabs.bnb_boxes_pruned));
              ("boxes_visited", Num (n r.Hexabs.bnb_boxes_enumerated));
              ("live_boxes", Num (n (List.length r.Hexabs.bnb_live)));
            ]
    in
    Minijson.Obj
      [
        ("experiment", Str label);
        ("lattice_points", Num (n cert.Hexabs.cert_total_points));
        ("feasible_points", Num (n cert.Hexabs.cert_feasible_points));
        ("proven_points", Num (n cert.Hexabs.cert_proven_points));
        ("enumerated_points", Num (n cert.Hexabs.cert_enumerated_points));
        ("enumerated_fraction", Num enum_frac);
        ("boxes_feasible", Num (n cert.Hexabs.cert_boxes_feasible));
        ("boxes_infeasible", Num (n cert.Hexabs.cert_boxes_infeasible));
        ("boxes_enumerated", Num (n cert.Hexabs.cert_boxes_enumerated));
        ("splits", Num (n cert.Hexabs.cert_splits));
        ("bnb", bnb_json);
        ("check_failures", Minijson.List (List.map (fun m -> Minijson.Str m) failures));
        ("regions", Minijson.List (List.map (region_json l) cert.Hexabs.cert_regions));
      ]
  in
  let print_text ~check ~print_regions (l, cert, bnb, enum_frac, failures, label)
      =
    Printf.printf "%s: %d lattice points, %d feasible\n" label
      cert.Hexabs.cert_total_points cert.Hexabs.cert_feasible_points;
    Printf.printf
      "  certificate: %d feasible + %d infeasible boxes proven (%d points), \
       %d boxes enumerated (%d points, %.1f%% of lattice), %d splits\n"
      cert.Hexabs.cert_boxes_feasible cert.Hexabs.cert_boxes_infeasible
      cert.Hexabs.cert_proven_points cert.Hexabs.cert_boxes_enumerated
      cert.Hexabs.cert_enumerated_points
      (100.0 *. enum_frac)
      cert.Hexabs.cert_splits;
    (match bnb with
    | Error msg -> Printf.printf "  branch-and-bound: failed (%s)\n" msg
    | Ok r ->
        Printf.printf
          "  branch-and-bound: %s -> Talg %.4e s; %d concrete + %d interval \
           evaluation(s), %d boxes pruned, %d live seed box(es)\n"
          (Space.id
             {
               Space.t_t = r.Hexabs.bnb_best.Hexabs.p_tt;
               t_s = r.Hexabs.bnb_best.Hexabs.p_ts;
             })
          r.Hexabs.bnb_talg r.Hexabs.bnb_evals_concrete
          r.Hexabs.bnb_evals_bound r.Hexabs.bnb_boxes_pruned
          (List.length r.Hexabs.bnb_live));
    if print_regions then
      List.iter
        (fun (r : Hexabs.region) ->
          let (ttlo, tthi), ranges = Hexabs.value_ranges l r.Hexabs.r_box in
          Printf.printf "  region tT[%d,%d]%s: %s (%d points)%s\n" ttlo tthi
            (String.concat ""
               (Array.to_list
                  (Array.map
                     (fun (lo, hi) -> Printf.sprintf " tS[%d,%d]" lo hi)
                     ranges)))
            (Hexabs.verdict_name r.Hexabs.r_verdict)
            r.Hexabs.r_points
            (match Hexabs.verdict_constraint r.Hexabs.r_verdict with
            | Some c -> " — " ^ c
            | None -> ""))
        cert.Hexabs.cert_regions;
    if check then
      if failures = [] then Printf.printf "  check: PASS\n"
      else
        List.iter (fun m -> Printf.printf "  check: FAIL — %s\n" m) failures
  in
  let run arch stencil space time sweep scale fmt check slack regions profile
      metrics =
    with_obs profile metrics @@ fun () ->
    let inputs =
      if sweep then
        Ok
          (List.map
             (fun (e : H.Experiments.t) ->
               let params = H.Microbench.params e.arch in
               let citer =
                 H.Microbench.citer e.arch e.problem.Problem.stencil
               in
               (H.Experiments.id e, e.arch, params, citer, e.problem))
             (H.Experiments.all scale))
      else
        match problem_of stencil space time with
        | Error msg -> Error msg
        | Ok problem ->
            let params = H.Microbench.params arch in
            let citer = H.Microbench.citer arch stencil in
            Ok
              [
                ( Printf.sprintf "%s/%s" arch.Gpu.Arch.name
                    (Problem.id problem),
                  arch,
                  params,
                  citer,
                  problem );
              ]
    in
    match inputs with
    | Error msg -> die "%s" msg
    | Ok inputs ->
        let results =
          List.map
            (fun (label, arch, params, citer, problem) ->
              run_one ~check ~slack ~label arch params ~citer problem)
            inputs
        in
        (match fmt with
        | `Json ->
            print_string
              (Minijson.render (Minijson.List (List.map result_json results)))
        | `Text ->
            List.iter (print_text ~check ~print_regions:regions) results);
        let failed =
          List.concat_map (fun (_, _, _, _, fs, label) ->
              List.map (fun m -> (label, m)) fs)
            results
        in
        if failed = [] then `Ok ()
        else begin
          List.iter
            (fun (label, m) -> Format.eprintf "prove: %s: %s@." label m)
            failed;
          die "prove: %d check failure(s)" (List.length failed)
        end
  in
  let term =
    Term.(
      ret
        (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ sweep
       $ scale_arg $ format $ check $ slack $ regions $ profile_arg
       $ metrics_arg))
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Certify the feasible tile-space region with the hexabs abstract \
          domains (a disjoint box cover with per-box verdicts) and run the \
          interval branch-and-bound arg-min search, printing the \
          certificate and pruning statistics.  $(b,--check) cross-checks \
          both against exhaustive enumeration.")
    term

(* --- naive ------------------------------------------------------------------ *)

let naive_cmd =
  let run arch stencil space time =
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem -> (
        match Hextime_tiling.Naive.best arch problem with
        | Error msg -> die "naive: %s" msg
        | Ok t ->
            Format.printf
              "tuned naive (no time tiling): block %s, %d threads -> %.4e s \
               = %.1f GFLOP/s@."
              (String.concat "x"
                 (Array.to_list
                    (Array.map string_of_int t.Hextime_tiling.Naive.block)))
              t.Hextime_tiling.Naive.threads t.Hextime_tiling.Naive.time_s
              t.Hextime_tiling.Naive.gflops;
            let params = H.Microbench.params arch in
            let citer = H.Microbench.citer arch stencil in
            let ctx = { Strategies.arch; params; citer; problem } in
            (match Strategies.model_top10 ctx with
            | Ok o ->
                Format.printf
                  "model-guided HHC:            %s -> %.4e s = %.1f GFLOP/s \
                   (%.1fx faster)@."
                  (Config.id o.Strategies.config)
                  o.Strategies.measurement.Runner.time_s
                  o.Strategies.measurement.Runner.gflops
                  (t.Hextime_tiling.Naive.time_s
                  /. o.Strategies.measurement.Runner.time_s)
            | Error msg -> Format.printf "model-guided HHC failed: %s@." msg);
            `Ok ())
  in
  let term =
    Term.(ret (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg))
  in
  Cmd.v
    (Cmd.info "naive"
       ~doc:"Price a tuned naive (one-kernel-per-time-step) implementation \
             and compare with time-tiled HHC: the motivation of Section 1.")
    term

(* --- solve ------------------------------------------------------------------ *)

let solve_cmd =
  let restarts =
    Arg.(value & opt int 8 & info [ "restarts" ] ~docv:"N" ~doc:"Solver restarts.")
  in
  let run arch stencil space time restarts =
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem -> (
        let params = H.Microbench.params arch in
        let citer = H.Microbench.citer arch stencil in
        match Hextime_tileopt.Descent.solve ~restarts params ~citer problem with
        | Error msg -> die "solver: %s" msg
        | Ok sol ->
            let gap =
              Hextime_tileopt.Descent.optimality_gap params ~citer problem sol
            in
            Format.printf
              "local solver: %s predicted %.4e s (%d evaluations, %d \
               restarts); gap to exhaustive enumeration: %+.1f%%@."
              (Space.id sol.Hextime_tileopt.Descent.shape)
              sol.Hextime_tileopt.Descent.talg
              sol.Hextime_tileopt.Descent.evaluations restarts
              (100.0 *. gap);
            `Ok ())
  in
  let term =
    Term.(
      ret (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ restarts))
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Minimise Equation 31 with a multi-start local solver (the \
             Bonmin experiment of Section 6.1) and report its optimality gap.")
    term

(* --- ampl ----------------------------------------------------------------- *)

let ampl_cmd =
  let run arch stencil space time =
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem ->
        let params = H.Microbench.params arch in
        let citer = H.Microbench.citer arch stencil in
        print_string (Amplgen.emit params ~citer problem);
        `Ok ()
  in
  let term =
    Term.(ret (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg))
  in
  Cmd.v
    (Cmd.info "ampl"
       ~doc:"Emit Equation 31 as an AMPL model for external solvers (Section 6.1).")
    term

(* --- profile (hexscope attribution) ------------------------------------- *)

let profile_cmd =
  let tile =
    Arg.(
      value
      & opt (some (dims_conv "tile sizes")) None
      & info [ "tile" ] ~docv:"tTxtS1[xtS2[xtS3]]"
          ~doc:
            "Tile sizes to profile (default: the model-optimal shape for \
             this instance).")
  in
  let threads =
    Arg.(
      value & opt int 256
      & info [ "threads" ] ~docv:"N" ~doc:"Threads per block.")
  in
  let run arch stencil space time tile threads profile metrics =
    with_obs profile metrics @@ fun () ->
    match problem_of stencil space time with
    | Error msg -> die "%s" msg
    | Ok problem -> (
        let params = H.Microbench.params arch in
        let citer = H.Microbench.citer arch stencil in
        let cfg_result =
          match tile with
          | Some tile ->
              if Array.length tile < 2 then Error "tile needs at least tT and tS1"
              else
                Config.make ~t_t:tile.(0)
                  ~t_s:(Array.sub tile 1 (Array.length tile - 1))
                  ~threads:[| threads |]
          | None -> (
              match Optimizer.evaluate_space params ~citer problem with
              | [] -> Error "empty feasible space"
              | space_eval -> (
                  let best = Optimizer.best space_eval in
                  match
                    Space.to_config best.Optimizer.shape ~threads:[| threads |]
                  with
                  | cfg -> Ok cfg
                  | exception Invalid_argument msg -> Error msg))
        in
        match cfg_result with
        | Error msg -> die "%s" msg
        | Ok cfg -> (
            match Model.attribution params ~citer problem cfg with
            | Error msg -> die "model: %s" msg
            | Ok (pr, comps) -> (
                Format.printf "problem: %a on %s@." Problem.pp problem
                  arch.Gpu.Arch.name;
                Format.printf "config:  %a@." Config.pp cfg;
                Format.printf "model:   %a@.@." Model.pp_prediction pr;
                print_string
                  (Obs.Attribution.render_components
                     ~title:"Where does predicted Talg go (model, Section 5 terms)"
                     comps);
                let sum = Obs.Attribution.total comps in
                let rel = Float.abs (sum -. pr.Model.talg) /. pr.Model.talg in
                Printf.printf
                  "\nattribution sum %.17g s vs talg %.17g s (relative error \
                   %.3e)\n\n"
                  sum pr.Model.talg rel;
                (* simulator side: per-kernel attribution of one priced run *)
                match Hextime_tiling.Lower.compile problem cfg with
                | Error msg -> die "compile: %s" msg
                | Ok compiled -> (
                    let kernels =
                      Hextime_tiling.Lower.kernel_sequence compiled
                    in
                    match Gpu.Simulator.price_sequence arch kernels with
                    | Error msg -> die "simulator: %s" msg
                    | Ok priced ->
                        let acc = Obs.Attribution.create () in
                        List.iter
                          (fun ((p : Gpu.Simulator.priced), count) ->
                            let c =
                              Gpu.Simulator.attribute_priced ~salt:0 arch p
                            in
                            Obs.Attribution.record acc
                              (Printf.sprintf "%s x%d"
                                 p.Gpu.Simulator.kernel.Gpu.Kernel.label count)
                              (Obs.Attribution.scale (float_of_int count) c))
                          priced;
                        print_string
                          (Obs.Attribution.render_top_k
                             ~title:
                               "Where does simulated time go (per kernel, \
                                salt 0)"
                             acc 10);
                        let sim_total =
                          Obs.Attribution.total (Obs.Attribution.totals acc)
                        in
                        let replay =
                          (Gpu.Simulator.replay ~salt:0 arch priced)
                            .Gpu.Simulator.total_s
                        in
                        Printf.printf
                          "\nsimulator attribution sum %.17g s vs replay \
                           %.17g s (relative error %.3e)\n"
                          sim_total replay
                          (Float.abs (sim_total -. replay) /. replay);
                        `Ok ()))))
  in
  let term =
    Term.(
      ret
        (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ tile
       $ threads $ profile_arg $ metrics_arg))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Break one configuration's predicted time into the paper's \
          Section 5 components (compute, global memory, sync, launch) from \
          the analytical model, plus the per-kernel breakdown of the \
          simulator's priced run.  The component sums reconstruct the \
          predicted totals; the printed relative errors show how exactly.")
    term

(* --- trace-verify ----------------------------------------------------------- *)

let trace_verify_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace-event JSON to verify.")
  in
  let min_events =
    Arg.(
      value & opt int 1
      & info [ "min-events" ] ~docv:"N" ~doc:"Require at least N span events.")
  in
  let min_pids =
    Arg.(
      value & opt int 1
      & info [ "min-pids" ] ~docv:"N"
          ~doc:"Require events from at least N distinct process ids.")
  in
  let require_counters =
    Arg.(
      value & opt_all string []
      & info [ "require-counter" ] ~docv:"NAME"
          ~doc:"Require the embedded metrics snapshot to carry this counter \
                (repeatable).")
  in
  let run file min_events min_pids required =
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> die "trace-verify: %s" msg
    | contents -> (
        match Minijson.parse contents with
        | Error e -> die "trace-verify: %s" e
        | Ok json -> (
            match Minijson.member "traceEvents" json with
            | Some (Minijson.List events) -> (
                let pids = Hashtbl.create 8 in
                let well_formed =
                  List.for_all
                    (fun ev ->
                      match
                        ( Option.bind (Minijson.member "name" ev)
                            Minijson.string,
                          Option.bind (Minijson.member "ph" ev) Minijson.string,
                          Option.bind (Minijson.member "ts" ev) Minijson.number,
                          Option.bind (Minijson.member "pid" ev)
                            Minijson.number )
                      with
                      | Some _, Some _, Some _, Some pid ->
                          Hashtbl.replace pids pid ();
                          true
                      | _ -> false)
                    events
                in
                if not well_formed then
                  die "trace-verify: %s: event missing name/ph/ts/pid" file
                else if List.length events < min_events then
                  die "trace-verify: %s: %d events < required %d" file
                    (List.length events) min_events
                else if Hashtbl.length pids < min_pids then
                  die "trace-verify: %s: %d distinct pids < required %d" file
                    (Hashtbl.length pids) min_pids
                else
                  let counters =
                    match
                      Option.bind (Minijson.member "metrics" json)
                        (Minijson.member "counters")
                    with
                    | Some (Minijson.Obj fields) -> List.map fst fields
                    | _ -> []
                  in
                  match
                    List.filter
                      (fun name -> not (List.mem name counters))
                      required
                  with
                  | [] ->
                      Printf.printf
                        "trace-verify: ok — %d events, %d distinct pids, %d \
                         counters\n"
                        (List.length events) (Hashtbl.length pids)
                        (List.length counters);
                      `Ok ()
                  | missing ->
                      die "trace-verify: %s: missing counters: %s" file
                        (String.concat ", " missing))
            | _ -> die "trace-verify: %s: no traceEvents array" file))
  in
  Cmd.v
    (Cmd.info "trace-verify"
       ~doc:
         "Validate a trace file emitted by $(b,--profile): parseable JSON, \
          well-formed trace events, minimum event/worker counts, required \
          metric counters present.  Used by CI on the campaign trace \
          artifact.")
    Term.(ret (const run $ file $ min_events $ min_pids $ require_counters))

let doctor_cmd =
  let run () =
    let checks = ref [] in
    let check name f =
      let outcome = try f () with e -> Error (Printexc.to_string e) in
      checks := (name, outcome) :: !checks
    in
    check "hexagonal lattice partitions the plane" (fun () ->
        Hextime_tiling.Exec_cpu.coverage_check ~order:1 ~t_s:5 ~t_t:6
          ~space:64 ~time:13);
    check "hexagonal schedule is exact (heat2d)" (fun () ->
        let p = Problem.make Stencil.heat2d ~space:[| 24; 32 |] ~time:6 in
        Hextime_tiling.Exec_cpu.verify p
          (Config.make_exn ~t_t:2 ~t_s:[| 4; 32 |] ~threads:[| 32 |])
          ~init:(Hextime_stencil.Reference.default_init p));
    check "skewed schedule is exact" (fun () ->
        let p = Problem.make Stencil.heat2d ~space:[| 24; 32 |] ~time:6 in
        Hextime_tiling.Skewed.verify p
          (Config.make_exn ~t_t:2 ~t_s:[| 4; 32 |] ~threads:[| 32 |])
          ~init:(Hextime_stencil.Reference.default_init p));
    check "overtile schedule is exact" (fun () ->
        let p = Problem.make Stencil.heat2d ~space:[| 24; 32 |] ~time:6 in
        Hextime_tiling.Overtile.verify p
          (Config.make_exn ~t_t:2 ~t_s:[| 4; 32 |] ~threads:[| 32 |])
          ~init:(Hextime_stencil.Reference.default_init p));
    check "micro-benchmarks in range" (fun () ->
        let p = H.Microbench.params Gpu.Arch.gtx980 in
        if
          Hextime_core.Params.l_per_gb p > 1e-3
          && Hextime_core.Params.l_per_gb p < 5e-2
        then Ok ()
        else Error "L out of expected range");
    check "event simulation agrees with closed form" (fun () ->
        let body =
          {
            Gpu.Pointcost.flops = 10; loads = 5; transcendentals = 0;
            rank = 2; double = false;
          }
        in
        let w =
          Gpu.Workload.v ~label:"doctor" ~threads:256 ~shared_words:4000
            ~regs_per_thread:32 ~body
            ~rows:[ { Gpu.Workload.points = 1024; repeats = 4 } ]
            ~input:{ Gpu.Memory.words = 0; run_length = 32 }
            ~output:{ Gpu.Memory.words = 0; run_length = 32 }
            ~row_stride:73 ~chunks:1
        in
        let r = Gpu.Eventsim.agreement Gpu.Arch.gtx980 w in
        if r > 0.7 && r < 1.5 then Ok ()
        else Error (Printf.sprintf "agreement ratio %.2f" r));
    check "model/simulator top-band coherence" (fun () ->
        let p = Problem.make Stencil.heat2d ~space:[| 2048; 2048 |] ~time:256 in
        let params = H.Microbench.params Gpu.Arch.gtx980 in
        let citer = H.Microbench.citer Gpu.Arch.gtx980 Stencil.heat2d in
        let cfg = Config.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
        match
          ( Model.predict params ~citer p cfg,
            Runner.measure Gpu.Arch.gtx980 p cfg )
        with
        | Ok pr, Ok m ->
            let ratio = pr.Model.talg /. m.Runner.time_s in
            if ratio > 0.7 && ratio < 1.4 then Ok ()
            else Error (Printf.sprintf "model/simulated = %.2f" ratio)
        | Error e, _ | _, Error e -> Error e);
    check "trace exporter round-trips" (fun () ->
        let ev =
          Obs.Trace.make ~cat:"doctor" ~ph:"X" ~dur_us:12.5 ~ts_us:1.0
            ~args:[ ("check", "round-trip") ]
            "doctor.span"
        in
        let rendered = Minijson.render (Obs.Trace.to_json [ ev ]) in
        match Minijson.parse rendered with
        | Error e -> Error ("re-parse failed: " ^ e)
        | Ok json -> (
            match Minijson.member "traceEvents" json with
            | Some (Minijson.List [ parsed ]) -> (
                match
                  Option.bind (Minijson.member "name" parsed) Minijson.string
                with
                | Some "doctor.span" -> Ok ()
                | _ -> Error "event name lost in round-trip")
            | _ -> Error "traceEvents not a singleton list"));
    let failures = ref 0 in
    List.iter
      (fun (name, outcome) ->
        match outcome with
        | Ok () -> Printf.printf "  [ok]   %s\n" name
        | Error e ->
            incr failures;
            Printf.printf "  [FAIL] %s: %s\n" name e)
      (List.rev !checks);
    (* the checks above exercised the model and the simulator, so the
       metrics registry now holds a live smoke snapshot *)
    print_endline "observability:";
    print_string (Obs.Metrics.render (Obs.Metrics.snapshot ()));
    (let cache = Hextime_parsweep.Cache.create () in
     let dir = Hextime_parsweep.Cache.dir cache in
     match Sys.readdir dir with
     | entries ->
         let bytes =
           Array.fold_left
             (fun acc e ->
               match Unix.stat (Filename.concat dir e) with
               | { Unix.st_kind = Unix.S_REG; st_size; _ } -> acc + st_size
               | _ -> acc
               | exception Unix.Unix_error _ -> acc)
             0 entries
         in
         Printf.printf "  cache dir %s: %d entries, %d bytes\n" dir
           (Array.length entries) bytes
     | exception Sys_error _ ->
         Printf.printf "  cache dir %s: unreadable\n" dir);
    if !failures = 0 then begin
      print_endline "doctor: all checks passed";
      `Ok ()
    end
    else die "doctor: %d check(s) failed" !failures
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:"Run fast end-to-end self-checks of the geometry, executors, \
             micro-benchmarks, event simulation and model coherence.")
    Term.(ret (const run $ const ()))

let campaign_cmd =
  let run scale backend jobs cache_dir no_cache profile metrics ledger
      no_ledger =
    with_obs profile metrics @@ fun () ->
    let exec = exec_of ~backend jobs cache_dir no_cache in
    let t0 = Unix.gettimeofday () in
    let est = H.Campaign.estimate ~exec scale in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    print_string (H.Campaign.render est);
    ledger_record ~ledger ~no_ledger
      (Obs.Ledger.make ~kind:"campaign" ~code_version:H.Sweep.code_version
         ~labels:
           [
             ("scale", H.Experiments.scale_to_string scale);
             ("jobs", string_of_int jobs);
           ]
         ~metrics:
           [
             ("experiments", float_of_int est.H.Campaign.experiments);
             ("data_points", float_of_int est.H.Campaign.data_points);
             ("rejected_points", float_of_int est.H.Campaign.rejected_points);
             ("compile_hours", est.H.Campaign.compile_hours);
             ("run_hours", est.H.Campaign.run_hours);
             ("total_days", est.H.Campaign.total_days);
             ("elapsed_s", elapsed_s);
             ( "points_per_sec",
               if elapsed_s > 0.0 then
                 float_of_int
                   (est.H.Campaign.data_points + est.H.Campaign.rejected_points)
                 /. elapsed_s
               else 0.0 );
           ]
         ~snapshot:(metrics_snapshot ()) ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Price the paper's experimental campaign (Section 8): feasible \
          data points are billed for compilation and five measured runs; \
          rejected configurations are counted separately.")
    Term.(
      ret
        (const run $ scale_arg $ backend_arg $ jobs_arg $ cache_dir_arg
       $ no_cache_arg $ profile_arg $ metrics_arg $ ledger_arg $ no_ledger_arg))

let report_cmd =
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run scale out ledger no_ledger =
    let ledger = if no_ledger then None else Some ledger in
    match out with
    | None ->
        print_string (H.Report.markdown ?ledger scale);
        `Ok ()
    | Some path -> (
        match H.Report.write ?ledger ~path scale with
        | Ok () ->
            Format.printf "wrote %s@." path;
            `Ok ()
        | Error msg -> die "report: %s" msg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Generate the markdown paper-vs-measured reproduction report, \
          ending with a trend section over the hexwatch ledger when one is \
          present ($(b,--no-ledger) omits it).")
    Term.(ret (const run $ scale_arg $ out $ ledger_arg $ no_ledger_arg))

(* --- bench-compare ---------------------------------------------------------- *)

let bench_compare_cmd =
  let module Minijson = Hextime_prelude.Minijson in
  let baseline_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Baseline BENCH_hextime.json (the committed one).")
  in
  let current_arg =
    Arg.(
      value
      & opt string "BENCH_hextime.json"
      & info [ "current" ] ~docv:"FILE"
          ~doc:"Freshly produced BENCH_hextime.json to judge.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.15
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Allowed fractional regression of cold-sweep throughput before \
             the comparison fails (default 0.15).")
  in
  let load path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error msg
    | contents -> (
        match Minijson.parse contents with
        | Error e -> Error (path ^ ": " ^ e)
        | Ok json -> (
            match Option.bind (Minijson.member "schema" json) Minijson.string with
            | Some "hextime-bench-v1" -> Ok json
            | Some other ->
                Error (Printf.sprintf "%s: unknown schema %S" path other)
            | None -> Error (path ^ ": missing \"schema\" field")))
  in
  let field name json =
    Option.bind (Minijson.member name json) Minijson.number
  in
  let run baseline current tolerance =
    match (load baseline, load current) with
    | Error msg, _ | _, Error msg -> die "bench-compare: %s" msg
    | Ok base, Ok cur -> (
        (* informational deltas on every shared numeric metric *)
        let t =
          Tabulate.create
            [
              ("metric", Tabulate.Left);
              ("baseline", Tabulate.Right);
              ("current", Tabulate.Right);
              ("change", Tabulate.Right);
            ]
        in
        let metrics =
          [
            "cold_sweep_points_per_sec";
            "fork_cold_sweep_points_per_sec";
            "domains_cold_sweep_points_per_sec";
            "price_ns_per_kernel";
            "eventsim_cycles_per_sec";
            "simulator_prices_per_point";
            "serve_requests_per_sec";
            "serve_warm_p50_us";
            "serve_warm_p99_us";
            "serve_metrics_scrape_us";
          ]
        in
        let t =
          List.fold_left
            (fun t name ->
              match (field name base, field name cur) with
              | Some b, Some c ->
                  Tabulate.add_row t
                    [
                      name;
                      Printf.sprintf "%.4g" b;
                      Printf.sprintf "%.4g" c;
                      Printf.sprintf "%+.1f%%" (100.0 *. ((c /. b) -. 1.0));
                    ]
              | _ -> t)
            t metrics
        in
        Tabulate.print t;
        (* the gate: cold-sweep throughput must not regress beyond the
           tolerance band; the other metrics are reported but advisory *)
        let gate = "cold_sweep_points_per_sec" in
        (* in-file invariant, not a baseline delta: when the current file
           reports both backends, the domains pool must deliver at least
           twice the fork pool's cold-sweep throughput — that ratio is the
           whole point of the backend.  Old baselines without the fields
           are fine; a current file missing them is too (pre-domains
           bench binary judged by a newer CLI). *)
        let domains_gate () =
          match
            ( field "fork_cold_sweep_points_per_sec" cur,
              field "domains_cold_sweep_points_per_sec" cur )
          with
          | Some fork, Some domains when fork > 0.0 -> (
              (* with a single worker both backends degenerate to the
                 serial path, so the ratio is meaningless: only enforce
                 when the parallel sweeps actually fanned out *)
              match field "sweep_jobs" cur with
              | Some jobs when jobs >= 2.0 ->
                  if domains >= 2.0 *. fork then begin
                    Printf.printf
                      "bench-compare: ok — domains backend %.1f >= 2x fork \
                       %.1f\n"
                      domains fork;
                    `Ok ()
                  end
                  else
                    die
                      "bench-compare: domains backend too slow: %.1f points/s \
                       < 2x fork backend %.1f"
                      domains fork
              | _ ->
                  Printf.printf
                    "bench-compare: domains-vs-fork gate skipped (sweep_jobs \
                     < 2)\n";
                  `Ok ())
          | _ -> `Ok ()
        in
        (* in-file invariant: a warm answer from the tile-advisor index must
           come back in under a millisecond at the 99th percentile — that is
           the headline promise of the serving layer.  A current file
           without the field (pre-serve bench binary) passes untested. *)
        let serve_gate () =
          match field "serve_warm_p99_us" cur with
          | Some p99 when p99 > 1000.0 ->
              die "bench-compare: serve warm p99 too slow: %.1f us > 1000 us"
                p99
          | Some p99 -> (
              Printf.printf
                "bench-compare: ok — serve warm p99 %.1f us <= 1000 us\n" p99;
              (* and like the cold sweep, warm throughput must not regress
                 beyond the tolerance band vs the committed baseline (old
                 baselines without the field pass untested) *)
              match
                (field "serve_requests_per_sec" base,
                 field "serve_requests_per_sec" cur)
              with
              | Some b, Some c ->
                  let floor = b *. (1.0 -. tolerance) in
                  if c >= floor then begin
                    Printf.printf
                      "bench-compare: ok — serve_requests_per_sec %.1f vs \
                       baseline %.1f (floor %.1f)\n"
                      c b floor;
                    `Ok ()
                  end
                  else
                    die
                      "bench-compare: serve_requests_per_sec regressed beyond \
                       tolerance: %.1f < %.1f (baseline %.1f)"
                      c floor b
              | _ -> `Ok ())
          | None ->
              Printf.printf
                "bench-compare: serve gate skipped (no serve_warm_p99_us)\n";
              `Ok ()
        in
        match (field gate base, field gate cur) with
        | Some b, Some c ->
            let floor = b *. (1.0 -. tolerance) in
            if c >= floor then begin
              Printf.printf
                "bench-compare: ok — %s %.1f vs baseline %.1f (floor %.1f)\n" gate
                c b floor;
              match domains_gate () with
              | `Ok () -> serve_gate ()
              | `Error _ as e -> e
            end
            else
              die
                "bench-compare: %s regressed beyond tolerance: %.1f < %.1f \
                 (baseline %.1f, tolerance %.0f%%)"
                gate c floor b (100.0 *. tolerance)
        | _ -> die "bench-compare: both files must carry %S" gate)
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Compare a freshly generated BENCH_hextime.json against a committed \
          baseline and fail if cold-sweep throughput regressed beyond the \
          tolerance band.  Used by CI as the bench-regression gate.")
    Term.(ret (const run $ baseline_arg $ current_arg $ tolerance_arg))

(* --- history (hexwatch trend tables) ---------------------------------------- *)

let history_cmd =
  let kind =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Only entries of this kind (validate | campaign | tune | bench \
             | serve | audit — $(b,audit) rows are the serving drift \
             monitor's verdicts; useful columns: rel_err, in_band, \
             argmin_match).")
  in
  let last =
    Arg.(
      value & opt int 20
      & info [ "last" ] ~docv:"N"
          ~doc:"Show only the most recent N matching entries (0 = all).")
  in
  let format =
    Arg.(
      value
      & opt
          (enum
             [
               ("table", `Table);
               ("markdown", `Markdown);
               ("json", `Json);
               ("csv", `Csv);
             ])
          `Table
      & info [ "format" ] ~docv:"table|markdown|json|csv"
          ~doc:
            "Output format.  $(b,csv) emits RFC-4180 rows with full-seconds \
             ISO8601 timestamps and raw (unscaled) metric values, for \
             spreadsheets and external trend tooling.")
  in
  let since =
    Arg.(
      value
      & opt (some string) None
      & info [ "since" ] ~docv:"ISO8601|REV"
          ~doc:
            "Only entries from this point on: an ISO8601 date/time \
             ($(b,2026-08-01), $(b,2026-08-01T12:30:00), UTC) keeps \
             entries stamped at or after it; a git rev keeps the first \
             entry recorded at that rev and everything after.")
  in
  let columns =
    Arg.(
      value
      & opt (some string) None
      & info [ "columns" ] ~docv:"C1,C2,..."
          ~doc:
            "Comma-separated metric columns (default: rmse_top, rmse_all, \
             argmin_quality, points_per_sec, cache_hit_rate, \
             cold_sweep_points_per_sec).  A column renders only if some \
             entry carries it.")
  in
  let run ledger kind last format columns since =
    match Obs.Ledger.load ~path:ledger with
    | Error msg -> die "history: %s" msg
    | Ok { Obs.Ledger.entries; corrupt_lines; unknown_schema } -> (
        if corrupt_lines > 0 || unknown_schema > 0 then
          Format.eprintf
            "hexwatch: %s: skipped %d corrupt line(s) and %d record(s) with \
             an unknown schema version@."
            ledger corrupt_lines unknown_schema;
        let entries = Obs.Ledger.filter ?kind entries in
        let entries =
          match since with
          | None -> Ok entries
          | Some spec -> H.History.since spec entries
        in
        match entries with
        | Error msg -> die "history: %s" msg
        | Ok entries ->
            let entries =
              if last > 0 then Obs.Ledger.latest last entries else entries
            in
            if entries = [] then
              Format.eprintf "hexwatch: %s: no matching entries@." ledger;
            let columns = Option.map (String.split_on_char ',') columns in
            (match format with
            | `Table -> print_string (H.History.render ?columns entries)
            | `Markdown -> print_string (H.History.markdown ?columns entries)
            | `Json ->
                print_endline (Minijson.render (H.History.json entries))
            | `Csv -> print_string (H.History.csv ?columns entries));
            `Ok ())
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "Render the hexwatch run ledger as a trend table: one row per \
          recorded run (validate, campaign, tune, bench), oldest first, \
          with the accuracy and throughput metrics as columns.  Corrupt \
          ledger lines are skipped with a count on stderr, never fatal.")
    Term.(
      ret (const run $ ledger_arg $ kind $ last $ format $ columns $ since))

(* --- watch (hexlens regression observatory) --------------------------------- *)

let watch_cmd =
  let ci =
    Arg.(
      value & flag
      & info [ "ci" ]
          ~doc:
            "Gate mode: exit non-zero if any regression alert fires.  \
             Improvements (good-direction changepoints) never fail the \
             gate.")
  in
  let min_samples =
    Arg.(
      value
      & opt int Obs.Alert.default_spec.Obs.Alert.min_samples
      & info [ "min-samples" ] ~docv:"N"
          ~doc:"Series shorter than N are shown but never judged.")
  in
  let ph_lambda =
    Arg.(
      value
      & opt float Obs.Alert.default_spec.Obs.Alert.ph_lambda
      & info [ "ph-lambda" ] ~docv:"L"
          ~doc:
            "Page–Hinkley firing threshold, in winsorised robust z-units \
             accumulated over the series.")
  in
  let ewma_limit =
    Arg.(
      value
      & opt float Obs.Alert.default_spec.Obs.Alert.ewma_limit
      & info [ "ewma-limit" ] ~docv:"Z"
          ~doc:"|EWMA| of the robust z-scores that fires the slow-drift \
                detector.")
  in
  let rotate_mb =
    Arg.(
      value
      & opt (some float) None
      & info [ "rotate-mb" ] ~docv:"MB"
          ~doc:
            "Before scanning, rotate the ledger aside (to \
             $(i,FILE.YYYYMMDDTHHMMSSZ)) if it exceeds MB megabytes.")
  in
  let rotate_days =
    Arg.(
      value
      & opt (some float) None
      & info [ "rotate-days" ] ~docv:"D"
          ~doc:
            "Before scanning, rotate the ledger aside if its first record \
             is older than D days (judged from the record timestamps, not \
             the file mtime).")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Before scanning, rewrite the ledger keeping only the latest \
             record per (kind, label-set) identity (req_id excluded).  \
             Lossy for trends — use after rotation or once the window has \
             been mined.")
  in
  let run ledger no_ledger ci min_samples ph_lambda ewma_limit rotate_mb
      rotate_days compact =
    let spec =
      { Obs.Alert.default_spec with min_samples; ph_lambda; ewma_limit }
    in
    let lifecycle =
      let ( let* ) = Result.bind in
      let* () =
        if rotate_mb = None && rotate_days = None then Ok ()
        else
          let max_bytes =
            Option.map (fun mb -> int_of_float (mb *. 1048576.0)) rotate_mb
          in
          let max_age_s = Option.map (fun d -> d *. 86400.0) rotate_days in
          match Obs.Ledger.rotate ~path:ledger ?max_bytes ?max_age_s () with
          | Ok None -> Ok ()
          | Ok (Some dest) ->
              Format.eprintf "hexlens: rotated %s -> %s@." ledger dest;
              Ok ()
          | Error msg -> Error ("rotate: " ^ msg)
      in
      if not compact then Ok ()
      else if not (Sys.file_exists ledger) then Ok ()
      else
        match Obs.Ledger.compact ~path:ledger () with
        | Ok (kept, dropped) ->
            Format.eprintf "hexlens: compacted %s: kept %d, dropped %d@."
              ledger kept dropped;
            Ok ()
        | Error msg -> Error ("compact: " ^ msg)
    in
    match lifecycle with
    | Error msg -> die "watch: %s" msg
    | Ok () when not (Sys.file_exists ledger) ->
        (* a just-rotated (or never-written) ledger is an empty, quiet one *)
        Printf.printf "hexlens: %s: no ledger — 0 series, 0 alerts\n" ledger;
        `Ok ()
    | Ok () -> (
        match Obs.Ledger.load ~path:ledger with
        | Error msg -> die "watch: %s" msg
        | Ok { Obs.Ledger.entries; corrupt_lines; unknown_schema } ->
            if corrupt_lines > 0 || unknown_schema > 0 then
              Format.eprintf
                "hexwatch: %s: skipped %d corrupt line(s) and %d record(s) \
                 with an unknown schema version@."
                ledger corrupt_lines unknown_schema;
            let verdicts = Obs.Alert.scan ~spec entries in
            let tab =
              Tabulate.create
                [
                  ("series", Tabulate.Left);
                  ("n", Tabulate.Right);
                  ("median", Tabulate.Right);
                  ("mad sigma", Tabulate.Right);
                  ("last", Tabulate.Right);
                  ("ewma z", Tabulate.Right);
                  ("ph up", Tabulate.Right);
                  ("ph down", Tabulate.Right);
                  ("verdict", Tabulate.Left);
                ]
            in
            let verdict_cell (v : Obs.Alert.verdict) =
              match v.Obs.Alert.v_fired with
              | Some f ->
                  Printf.sprintf "%s %s %s"
                    (if f.Obs.Alert.f_regression then "ALERT" else "improved")
                    f.Obs.Alert.f_detector
                    (Obs.Alert.direction_to_string f.Obs.Alert.f_direction)
              | None ->
                  if v.Obs.Alert.v_judged then "ok"
                  else Printf.sprintf "thin (n<%d)" spec.Obs.Alert.min_samples
            in
            let tab =
              List.fold_left
                (fun tab (v : Obs.Alert.verdict) ->
                  Tabulate.add_row tab
                    [
                      v.Obs.Alert.v_key;
                      string_of_int v.Obs.Alert.v_n;
                      Tabulate.float_cell v.Obs.Alert.v_median;
                      Tabulate.float_cell v.Obs.Alert.v_mad_sigma;
                      Tabulate.float_cell v.Obs.Alert.v_last;
                      Printf.sprintf "%+.2f" v.Obs.Alert.v_ewma_z;
                      Printf.sprintf "%.2f" v.Obs.Alert.v_ph_up;
                      Printf.sprintf "%.2f" v.Obs.Alert.v_ph_down;
                      verdict_cell v;
                    ])
                tab verdicts
            in
            if verdicts <> [] then Tabulate.print tab;
            let judged =
              List.length
                (List.filter (fun v -> v.Obs.Alert.v_judged) verdicts)
            in
            let regressions = List.filter Obs.Alert.regression verdicts in
            let improvements = List.filter Obs.Alert.improvement verdicts in
            (* firing verdicts become ledger records themselves — the alert
               trail is provenance too (Series.extract skips them on the
               next scan, so alerts never feed back into detection) *)
            List.iter
              (fun v ->
                ledger_record ~ledger ~no_ledger (Obs.Alert.to_entry ~spec v))
              (regressions @ improvements);
            Printf.printf
              "hexlens: %d series (%d judged), %d regression alert(s), %d \
               improvement(s)\n"
              (List.length verdicts) judged
              (List.length regressions)
              (List.length improvements);
            if ci && regressions <> [] then
              die "watch --ci: %d regression alert(s) firing"
                (List.length regressions)
            else `Ok ())
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "hexlens: scan the run ledger for cross-run regressions.  Every \
          watched metric series (bench throughput, serve latency, accuracy, \
          audit verdicts) is judged by robust statistics — median/MAD \
          envelope, EWMA drift, and a two-sided Page–Hinkley changepoint \
          detector over winsorised robust z-scores — so one outlier run \
          stays quiet while a sustained shift fires.  Firing verdicts are \
          appended back to the ledger as $(b,alert) records (suppress with \
          $(b,--no-ledger)); $(b,--ci) turns regressions into a failing \
          exit for the CI trend gate.  $(b,--rotate-mb)/$(b,--rotate-days) \
          and $(b,--compact) manage the ledger's lifecycle first.")
    Term.(
      ret
        (const run $ ledger_arg $ no_ledger_arg $ ci $ min_samples $ ph_lambda
       $ ewma_limit $ rotate_mb $ rotate_days $ compact))

(* --- explain (hexlens attribution diffing) ----------------------------------- *)

let explain_cmd =
  let kind =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Only consider records of this kind (typically $(b,audit)).  \
             Default: every eligible record.")
  in
  let a_arg =
    Arg.(
      value & opt int 1
      & info [ "a" ] ~docv:"N"
          ~doc:
            "Baseline side: Nth-newest eligible record (0 = newest).  \
             Default 1: the run before the latest.")
  in
  let b_arg =
    Arg.(
      value & opt int 0
      & info [ "b" ] ~docv:"N"
          ~doc:"Comparison side: Nth-newest eligible record (default 0, \
                the latest).")
  in
  let label =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"K=V"
          ~doc:
            "Only consider records carrying this label, e.g. \
             $(b,stencil=heat2d) or $(b,key=...) to diff two runs of the \
             same experiment.")
  in
  let run ledger kind a b label =
    let label =
      match label with
      | None -> Ok None
      | Some s -> (
          match String.index_opt s '=' with
          | Some i ->
              Ok
                (Some
                   ( String.sub s 0 i,
                     String.sub s (i + 1) (String.length s - i - 1) ))
          | None -> Error s)
    in
    match label with
    | Error s -> die "explain: --label %S is not K=V" s
    | Ok label -> (
        match Obs.Ledger.load ~path:ledger with
        | Error msg -> die "explain: %s" msg
        | Ok { Obs.Ledger.entries; _ } ->
            let eligible =
              List.filter H.Explain.eligible
                (Obs.Ledger.filter ?kind ?label entries)
            in
            let arr = Array.of_list eligible in
            let n = Array.length arr in
            if n = 0 then
              die
                "explain: %s: no eligible records — need attr.* metrics or \
                 arch/stencil/space/time/config labels (serve audit \
                 records carry both)"
                ledger
            else if a < 0 || a >= n || b < 0 || b >= n then
              die "explain: only %d eligible record(s); --a %d / --b %d out \
                   of range"
                n a b
            else
              let pick i = arr.(n - 1 - i) in
              (match H.Explain.render ~a:(pick a) ~b:(pick b) with
              | Ok text ->
                  print_string text;
                  `Ok ()
              | Error msg -> die "explain: %s" msg))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "hexlens: diff two ledger records term by term through the \
          paper's Section-5 attribution.  Answers $(i,why) a prediction \
          moved: which component (compute, global-memory transfer, sync, \
          launch) dominates the delta, whether the max(m', c) decision \
          flipped between compute- and memory-bound, and whether the \
          chosen tile changed.  Components come from the record's stored \
          attr.* metrics (serve audits write them) or are recomputed from \
          its provenance labels via the analytical model; when both exist \
          they are cross-checked.")
    Term.(ret (const run $ ledger_arg $ kind $ a_arg $ b_arg $ label))

(* --- accuracy-compare (the accuracy regression gate) ------------------------ *)

let accuracy_compare_cmd =
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed ACCURACY_baseline.json to judge against.")
  in
  let write_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "write" ] ~docv:"FILE"
          ~doc:
            "Write the freshly collected figures to FILE — how the \
             committed baseline is (re)generated after an intended model \
             change.")
  in
  let tol name default what =
    Arg.(
      value & opt float default
      & info [ "tol-" ^ name ] ~docv:"D"
          ~doc:
            (Printf.sprintf
               "Allowed absolute %s of %s before the gate fails (default \
                %g)."
               what name default))
  in
  let tol_rmse_all = tol "rmse-all" 0.10 "increase" in
  let tol_rmse_top = tol "rmse-top" 0.02 "increase" in
  let tol_correlation = tol "correlation-top" 0.05 "decrease" in
  let tol_argmin = tol "argmin-quality" 0.05 "decrease" in
  let run scale baseline write t_all t_top t_corr t_argmin jobs cache_dir
      no_cache profile metrics =
    with_obs profile metrics @@ fun () ->
    if baseline = None && write = None then
      die "accuracy-compare: --baseline and/or --write is required"
    else
      let exec = exec_of jobs cache_dir no_cache in
      let current = H.Accuracy.collect ~exec scale in
      if current.H.Accuracy.rows = [] then
        die "accuracy-compare: no experiment produced data at this scale"
      else begin
        print_string (H.Accuracy.render_table current);
        let written =
          match write with
          | None -> Ok ()
          | Some path -> (
              match H.Accuracy.write ~path current with
              | Ok () ->
                  Format.printf "wrote %s@." path;
                  Ok ()
              | Error msg -> Error msg)
        in
        match written with
        | Error msg -> die "accuracy-compare: %s" msg
        | Ok () -> (
            match baseline with
            | None -> `Ok ()
            | Some path -> (
                match H.Accuracy.load ~path with
                | Error msg -> die "accuracy-compare: %s" msg
                | Ok base ->
                    if base.H.Accuracy.scale <> scale then
                      die
                        "accuracy-compare: baseline %s was collected at \
                         scale %s, not %s"
                        path
                        (H.Experiments.scale_to_string base.H.Accuracy.scale)
                        (H.Experiments.scale_to_string scale)
                    else begin
                      let tol =
                        {
                          H.Accuracy.rmse_all = t_all;
                          rmse_top = t_top;
                          correlation_top = t_corr;
                          argmin_quality = t_argmin;
                        }
                      in
                      let drifts =
                        H.Accuracy.compare ~tol ~baseline:base current
                      in
                      print_string (H.Accuracy.render_drifts drifts);
                      if drifts = [] then `Ok ()
                      else
                        die
                          "accuracy-compare: %d metric(s) drifted beyond \
                           tolerance (baseline %s)"
                          (List.length drifts) path
                    end))
      end
  in
  Cmd.v
    (Cmd.info "accuracy-compare"
       ~doc:
         "Re-collect the model-accuracy figures (RMSE bands, top-band \
          correlation, arg-min quality — Sections 5.3 and 6) for every \
          experiment at a scale and fail if any metric regressed beyond \
          tolerance against a committed baseline.  The accuracy twin of \
          $(b,bench-compare); used by CI as the accuracy-regression gate.")
    Term.(
      ret
        (const run $ scale_arg $ baseline_arg $ write_arg $ tol_rmse_all
       $ tol_rmse_top $ tol_correlation $ tol_argmin $ jobs_arg
       $ cache_dir_arg $ no_cache_arg $ profile_arg $ metrics_arg))

(* --- hexserve (index / serve / ask) ------------------------------------------ *)

module Serve = Hextime_serve

let socket_arg =
  Arg.(
    value
    & opt string "hextime.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the advisor serves on.")

let index_path_arg =
  Arg.(
    value
    & opt string "hextime-index.json"
    & info [ "index" ] ~docv:"FILE" ~doc:"Arg-min index snapshot file.")

let index_cmd =
  let run scale out backend jobs timeout_s retries cache_dir no_cache profile
      metrics ledger no_ledger =
    with_obs profile metrics @@ fun () ->
    let exec = exec_of ~backend ~timeout_s ~retries jobs cache_dir no_cache in
    let t0 = Unix.gettimeofday () in
    let experiments = H.Experiments.all scale in
    let outcomes, stats =
      Parsweep.map ~label:"index build" exec
        ~key:(fun (e : H.Experiments.t) ->
          Serve.Advisor.request_key e.H.Experiments.arch e.H.Experiments.problem)
        ~f:(fun (e : H.Experiments.t) ->
          Serve.Advisor.solve e.H.Experiments.arch e.H.Experiments.problem)
        experiments
    in
    let index = Serve.Index.create () in
    let failed = ref 0 in
    List.iter2
      (fun (e : H.Experiments.t) outcome ->
        match outcome with
        | Ok (Ok answer) ->
            Serve.Index.add index
              (Serve.Index.entry_of_answer e.H.Experiments.arch
                 e.H.Experiments.problem answer)
        | Ok (Error msg) | Error msg ->
            incr failed;
            Format.eprintf "hexserve: %s: %s@." (H.Experiments.id e) msg)
      experiments outcomes;
    let elapsed_s = Unix.gettimeofday () -. t0 in
    match Serve.Index.save index ~path:out with
    | Error msg -> die "index: %s" msg
    | Ok () ->
        Format.printf "sweep: %a@." Parsweep.pp_stats stats;
        Format.printf "indexed %d experiment(s) (%d failed) in %.2f s -> %s@."
          (Serve.Index.size index) !failed elapsed_s out;
        ledger_record ~ledger ~no_ledger
          (Obs.Ledger.make ~kind:"index" ~code_version:Serve.Advisor.code_version
             ~labels:
               [
                 ("scale", H.Experiments.scale_to_string scale);
                 ("output", out);
                 ("jobs", string_of_int jobs);
               ]
             ~metrics:
               (sweep_stat_metrics ~elapsed_s stats
               @ [
                   ("entries", float_of_int (Serve.Index.size index));
                   ("failed", float_of_int !failed);
                 ])
             ~snapshot:(metrics_snapshot ()) ());
        if !failed > 0 then die "index: %d experiment(s) failed" !failed
        else `Ok ()
  in
  let out =
    Arg.(
      value
      & opt string "hextime-index.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the index snapshot.")
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:
         "Precompute the arg-min index: solve the tile-advisory problem \
          for every experiment at a scale (through the parallel pool and \
          its disk cache) and write the digest-keyed snapshot that \
          $(b,hextime serve) answers warm queries from.")
    Term.(
      ret
        (const run $ scale_arg $ out $ backend_arg $ jobs_arg $ timeout_arg
       $ retries_arg $ cache_dir_arg $ no_cache_arg $ profile_arg
       $ metrics_arg $ ledger_arg $ no_ledger_arg))

let serve_cmd =
  let max_requests =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-requests" ] ~docv:"N"
          ~doc:
            "Exit after answering N ask requests (smoke tests and CI; \
             default: serve until $(b,shutdown)).")
  in
  let no_index =
    Arg.(
      value & flag
      & info [ "no-index" ]
          ~doc:
            "Serve without an index file: every first ask is a cold miss, \
             answers live only in memory.")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Also answer plain-HTTP $(b,GET /metrics) (OpenMetrics text) on \
             127.0.0.1:PORT.  0 picks an ephemeral port, reported on \
             stderr.")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one structured JSONL record per answered request \
             (req_id, key, warm/cold, latency, result digest or error).")
  in
  let slow_us =
    Arg.(
      value & opt float infinity
      & info [ "slow-us" ] ~docv:"US"
          ~doc:
            "Slow-query threshold: a cold solve slower than this logs its \
             Section-5 cost attribution in the access log (default: \
             never).")
  in
  let slo_window_s =
    Arg.(
      value & opt float 10.0
      & info [ "slo-window-s" ] ~docv:"SECONDS"
          ~doc:"Rolling SLO window duration.")
  in
  let slo_p99_us =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-p99-us" ] ~docv:"US"
          ~doc:
            "SLO: per-window p99 latency objective; violations show up in \
             the $(b,slo.p99_ok) and $(b,slo.windows_violated) gauges.")
  in
  let slo_warm_ratio =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-warm-ratio" ] ~docv:"R"
          ~doc:"SLO: per-window warm-hit ratio objective (0..1).")
  in
  let audit_rate =
    Arg.(
      value & opt int 0
      & info [ "audit-rate" ] ~docv:"N"
          ~doc:
            "Drift monitor: re-verify every Nth warm answer against the \
             exhaustive arg-min, off the request path (0 disables).  \
             Verdicts append $(b,audit) ledger records and drive the \
             $(b,serve.drift_alarm) gauge.")
  in
  let audit_cold =
    Arg.(
      value & flag
      & info [ "audit-cold" ]
          ~doc:"Drift monitor: also audit every cold-miss answer.")
  in
  let drift_min_ratio =
    Arg.(
      value & opt float 0.99
      & info [ "drift-min-ratio" ] ~docv:"R"
          ~doc:
            "Trip $(b,serve.drift_alarm) when the rolling audited in-band \
             ratio drops below R.")
  in
  let run socket index_path no_index max_requests metrics_port access_log
      slow_us slo_window_s slo_p99_us slo_warm_ratio audit_rate audit_cold
      drift_min_ratio backend jobs timeout_s retries cache_dir no_cache
      profile metrics ledger no_ledger =
    with_obs profile metrics @@ fun () ->
    let exec = exec_of ~backend ~timeout_s ~retries jobs cache_dir no_cache in
    let index_path = if no_index then None else Some index_path in
    let t0 = Unix.gettimeofday () in
    let on_ready () =
      Format.eprintf "hexserve: listening on %s (index: %s)@." socket
        (Option.value ~default:"none" index_path)
    in
    let on_http_port port =
      Format.eprintf "hexserve: metrics on http://127.0.0.1:%d/metrics@." port
    in
    let slo =
      {
        Obs.Slo.default_spec with
        Obs.Slo.window_s = slo_window_s;
        p99_us = slo_p99_us;
        warm_ratio = slo_warm_ratio;
      }
    in
    match
      Serve.Server.run ?index_path ~exec ?max_requests ~on_ready
        ?http_port:metrics_port ~on_http_port ?access_log_path:access_log
        ~slow_us ~slo ~audit_rate ~audit_cold ~drift_min_ratio
        ?ledger_path:(if no_ledger then None else Some ledger)
        ~socket_path:socket ()
    with
    | exception Unix.Unix_error (err, fn, arg) ->
        die "serve: %s(%s): %s" fn arg (Unix.error_message err)
    | summary ->
        let elapsed_s = Unix.gettimeofday () -. t0 in
        Format.printf
          "served %d request(s): %d warm, %d cold, %d error(s) in %.2f s@."
          summary.Serve.Server.requests summary.Serve.Server.warm_hits
          summary.Serve.Server.cold_misses summary.Serve.Server.errors
          elapsed_s;
        if summary.Serve.Server.audits > 0 then
          Format.printf "audited %d answer(s): %d out of band%s@."
            summary.Serve.Server.audits
            summary.Serve.Server.audits_out_of_band
            (if summary.Serve.Server.drift_alarm then
               " — DRIFT ALARM"
             else "");
        ledger_record ~ledger ~no_ledger
          (Obs.Ledger.make ~kind:"serve"
             ~code_version:Serve.Advisor.code_version
             ~labels:[ ("socket", socket) ]
             ~metrics:
               [
                 ("requests", float_of_int summary.Serve.Server.requests);
                 ("warm_hits", float_of_int summary.Serve.Server.warm_hits);
                 ("cold_misses", float_of_int summary.Serve.Server.cold_misses);
                 ("errors", float_of_int summary.Serve.Server.errors);
                 ("audits", float_of_int summary.Serve.Server.audits);
                 ( "audits_out_of_band",
                   float_of_int summary.Serve.Server.audits_out_of_band );
                 ( "drift_alarm",
                   if summary.Serve.Server.drift_alarm then 1.0 else 0.0 );
                 ("scrapes", float_of_int summary.Serve.Server.scrapes);
                 ("elapsed_s", elapsed_s);
                 ( "requests_per_sec",
                   if elapsed_s > 0.0 then
                     float_of_int summary.Serve.Server.requests /. elapsed_s
                   else 0.0 );
               ]
             ~snapshot:(metrics_snapshot ()) ());
        if summary.Serve.Server.drift_alarm then
          die
            "serve: drift alarm tripped (%d/%d audited answers out of band)"
            summary.Serve.Server.audits_out_of_band
            summary.Serve.Server.audits
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tile-advisor service on a Unix-domain socket: warm \
          queries are answered from the precomputed arg-min index in O(1); \
          concurrent cold misses are batched through the parallel pool, \
          answered exactly, and written back into the index.  hexpulse \
          telemetry — OpenMetrics scraping, a JSONL access log, rolling \
          SLO windows and the online drift monitor — hangs off the \
          $(b,--metrics-port), $(b,--access-log), $(b,--slo-*) and \
          $(b,--audit-*) flags.")
    Term.(
      ret
        (const run $ socket_arg $ index_path_arg $ no_index $ max_requests
       $ metrics_port $ access_log $ slow_us $ slo_window_s $ slo_p99_us
       $ slo_warm_ratio $ audit_rate $ audit_cold $ drift_min_ratio
       $ backend_arg $ jobs_arg $ timeout_arg $ retries_arg $ cache_dir_arg
       $ no_cache_arg $ profile_arg $ metrics_arg $ ledger_arg $ no_ledger_arg))

let ask_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"text|json" ~doc:"Output format.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Recompute the exhaustive-sweep arg-min in-process and fail \
             unless the served answer matches it bit-exactly (the \
             cold-path correctness oracle; slow).")
  in
  let wait =
    Arg.(
      value & opt float 5.0
      & info [ "wait" ] ~docv:"SECONDS"
          ~doc:"How long to keep retrying the connect while the server \
                starts up.")
  in
  let config_equal (a : Config.t) (b : Config.t) =
    a.Config.t_t = b.Config.t_t && a.Config.t_s = b.Config.t_s
    && a.Config.threads = b.Config.threads
  in
  let run arch stencil space time socket format check wait =
    let attempts = max 1 (int_of_float (wait /. 0.05)) in
    match Serve.Client.connect ~attempts ~socket_path:socket () with
    | Error msg -> die "ask: %s" msg
    | Ok fd -> (
        let reply =
          Fun.protect
            ~finally:(fun () -> Serve.Client.close fd)
            (fun () ->
              Serve.Client.ask fd ~arch:arch.Gpu.Arch.name
                ~stencil:stencil.Stencil.name ~space ~time)
        in
        match reply with
        | Error msg -> die "ask: %s" msg
        | Ok answer -> (
            let { Serve.Proto.source; entry; latency_us; req_id; server } =
              answer
            in
            (match format with
            | `Json ->
                (* passes the server-assigned req_id and the uptime_s /
                   index_entries / requests_in_flight vitals through
                   verbatim *)
                print_endline
                  (Minijson.render_compact
                     (Serve.Proto.reply_to_json (Serve.Proto.Answer answer)))
            | `Text ->
                Format.printf
                  "recommended: %a  (Talg %.4e s, %s answer, %.0f us \
                   server-side)@."
                  Config.pp entry.Serve.Index.e_config
                  entry.Serve.Index.e_talg
                  (Serve.Proto.source_to_string source)
                  latency_us;
                if req_id <> "" then
                  Format.printf "server: req %s%s@." req_id
                    (String.concat ""
                       (List.map
                          (fun (k, v) -> Printf.sprintf ", %s %.0f" k v)
                          server)));
            if not check then `Ok ()
            else
              match problem_of stencil space time with
              | Error msg -> die "check: %s" msg
              | Ok problem -> (
                  let params = H.Microbench.params arch in
                  let citer = H.Microbench.citer arch stencil in
                  let space_eval =
                    Optimizer.evaluate_space params ~citer problem
                  in
                  if space_eval = [] then die "check: empty feasible space"
                  else
                    let best = Optimizer.best space_eval in
                    match Serve.Advisor.config_of_shape best.Optimizer.shape with
                    | Error msg -> die "check: %s" msg
                    | Ok expected ->
                        let talg = best.Optimizer.prediction.Model.talg in
                        if
                          config_equal expected entry.Serve.Index.e_config
                          && talg = entry.Serve.Index.e_talg
                        then begin
                          Format.printf
                            "check: matches the exhaustive arg-min (%d \
                             feasible shapes)@."
                            (List.length space_eval);
                          `Ok ()
                        end
                        else
                          die
                            "check: served %s (Talg %.6e) but the exhaustive \
                             arg-min is %s (Talg %.6e)"
                            (Config.id entry.Serve.Index.e_config)
                            entry.Serve.Index.e_talg (Config.id expected) talg)))
  in
  Cmd.v
    (Cmd.info "ask"
       ~doc:
         "Query a running $(b,hextime serve) for the recommended tile \
          configuration of one problem instance.")
    Term.(
      ret
        (const run $ arch_arg $ stencil_arg $ space_arg $ time_arg $ socket_arg
       $ format $ check $ wait))

(* --- metrics-verify (scrape checker) ----------------------------------------- *)

(* Raw-Unix HTTP GET against the serve metrics endpoint, so CI needs no
   curl: one request, read to EOF, split the body off the headers. *)
let http_get_metrics ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      with
      | exception Unix.Unix_error (err, _, _) ->
          Error
            (Printf.sprintf "connect 127.0.0.1:%d: %s" port
               (Unix.error_message err))
      | () -> (
          let request =
            "GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: \
             close\r\n\r\n"
          in
          let payload = Bytes.of_string request in
          let len = Bytes.length payload in
          let off = ref 0 in
          while !off < len do
            off := !off + Unix.write fd payload !off (len - !off)
          done;
          let buf = Buffer.create 8192 in
          let chunk = Bytes.create 8192 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
          in
          drain ();
          let response = Buffer.contents buf in
          let split marker =
            let mlen = String.length marker in
            let rec find i =
              if i + mlen > String.length response then None
              else if String.sub response i mlen = marker then Some i
              else find (i + 1)
            in
            find 0
          in
          match split "\r\n\r\n" with
          | None -> Error "malformed HTTP response (no header terminator)"
          | Some i ->
              let headers = String.sub response 0 i in
              let body =
                String.sub response (i + 4) (String.length response - i - 4)
              in
              let status_ok =
                match String.index_opt headers ' ' with
                | Some j ->
                    String.length headers >= j + 4
                    && String.sub headers (j + 1) 3 = "200"
                | None -> false
              in
              if status_ok then Ok body
              else
                Error
                  (Printf.sprintf "HTTP status line: %s"
                     (match String.index_opt headers '\r' with
                     | Some j -> String.sub headers 0 j
                     | None -> headers))))

let required_serve_families =
  [
    "serve_requests";
    "serve_warm_hits";
    "serve_cold_misses";
    "serve_errors";
    "serve_warm_seconds";
    "serve_cold_seconds";
    "serve_uptime_s";
    "serve_index_entries";
    "serve_drift_alarm";
  ]

let metrics_verify_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Exposition file to check (instead of scraping --port).")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Scrape http://127.0.0.1:PORT/metrics (a running $(b,hextime \
             serve --metrics-port)).")
  in
  let extra_require =
    Arg.(
      value
      & opt (some string) None
      & info [ "require" ] ~docv:"F1,F2,..."
          ~doc:
            "Comma-separated metric families that must be present, in \
             addition to the serve built-ins.")
  in
  let expect_gauges =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "expect-gauge" ] ~docv:"NAME=VALUE"
          ~doc:
            "Fail unless the label-free sample NAME is present with this \
             exact value (repeatable) — e.g. \
             $(b,--expect-gauge serve_drift_alarm=0).")
  in
  let run file port extra_require expect_gauges =
    let text =
      match (file, port) with
      | Some _, Some _ -> Error "metrics-verify: pass FILE or --port, not both"
      | None, None -> Error "metrics-verify: pass an exposition FILE or --port"
      | Some path, None -> (
          match open_in_bin path with
          | exception Sys_error msg -> Error msg
          | ic ->
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> Ok (really_input_string ic (in_channel_length ic))))
      | None, Some port -> http_get_metrics ~port
    in
    match text with
    | Error msg -> die "metrics-verify: %s" msg
    | Ok text -> (
        let require =
          required_serve_families
          @
          match extra_require with
          | None -> []
          | Some list -> String.split_on_char ',' list
        in
        match Obs.Openmetrics.validate ~require text with
        | Error msg -> die "metrics-verify: %s" msg
        | Ok { Obs.Openmetrics.families; samples } -> (
            match Obs.Openmetrics.parse text with
            | Error msg -> die "metrics-verify: %s" msg
            | Ok parsed -> (
                let bad =
                  List.filter_map
                    (fun (name, expected) ->
                      match Obs.Openmetrics.value parsed name with
                      | None -> Some (name, "absent")
                      | Some v when v = expected -> None
                      | Some v -> Some (name, Printf.sprintf "%g" v))
                    expect_gauges
                in
                match bad with
                | [] ->
                    Format.printf
                      "metrics-verify: ok — %d families, %d samples%s@."
                      families samples
                      (if expect_gauges = [] then ""
                       else
                         Printf.sprintf ", %d expectation(s) met"
                           (List.length expect_gauges));
                    `Ok ()
                | bad ->
                    die "metrics-verify: %s"
                      (String.concat "; "
                         (List.map
                            (fun (name, got) ->
                              Printf.sprintf "expected %s, got %s" name got)
                            bad)))))
  in
  Cmd.v
    (Cmd.info "metrics-verify"
       ~doc:
         "Check an OpenMetrics exposition — a saved file or a live scrape \
          of $(b,hextime serve --metrics-port) — for format validity \
          (cumulative ordered histogram buckets closed by +Inf, \
          non-negative counters), the presence of the serving metric \
          families, and exact expected gauge values.  CI's scrape gate.")
    Term.(ret (const run $ file $ port $ extra_require $ expect_gauges))

(* --- dash (TTY serving dashboard) -------------------------------------------- *)

let dash_cmd =
  let watch =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECONDS"
          ~doc:"Redraw every SECONDS until interrupted.")
  in
  let fmt_f name families =
    match Obs.Openmetrics.value families name with
    | Some v when Float.is_integer v && Float.abs v < 1e15 ->
        Printf.sprintf "%.0f" v
    | Some v -> Printf.sprintf "%.3g" v
    | None -> "-"
  in
  let render_live families =
    let v = fmt_f in
    let b = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    line "hexserve — up %s s, %s index entries, %s in flight"
      (v "serve_uptime_s" families)
      (v "serve_index_entries" families)
      (v "serve_requests_in_flight" families);
    line "requests   %8s   warm %8s   cold %8s   errors %8s"
      (v "serve_requests_total" families)
      (v "serve_warm_hits_total" families)
      (v "serve_cold_misses_total" families)
      (v "serve_errors_total" families);
    line "warm p50   %8s us        p99 %8s us"
      (v "serve_warm_p50_us" families)
      (v "serve_warm_p99_us" families);
    line "slo window p50 %s us, p99 %s us, error rate %s, warm ratio %s"
      (v "slo_window_p50_us" families)
      (v "slo_window_p99_us" families)
      (v "slo_window_error_rate" families)
      (v "slo_window_warm_ratio" families);
    line "slo        budget burn %s, windows violated %s"
      (v "slo_error_budget_burn" families)
      (v "slo_windows_violated" families);
    line "drift      audits %s (%s out of band), in-band ratio %s, ALARM %s"
      (v "serve_audits_total" families)
      (v "serve_audits_out_of_band_total" families)
      (v "serve_audit_inband_ratio" families)
      (v "serve_drift_alarm" families);
    line "alerts     firing %s, fired %s time(s) this run"
      (v "alert_firing" families)
      (v "alert_fired_total" families);
    line "scrapes    %s http, %s access-log lines"
      (v "serve_http_scrapes_total" families)
      (v "serve_access_log_lines_total" families);
    Buffer.contents b
  in
  let render_ledger path =
    match Obs.Ledger.load ~path with
    | Error msg -> Error msg
    | Ok { Obs.Ledger.entries; _ } -> (
        let serve = Obs.Ledger.filter ~kind:"serve" entries in
        let audits = Obs.Ledger.filter ~kind:"audit" entries in
        let alerts = Obs.Ledger.filter ~kind:"alert" entries in
        match (serve, audits, alerts) with
        | [], [], [] -> Error (path ^ ": no serve, audit or alert records")
        | serve, audits, alerts ->
            let b = Buffer.create 1024 in
            let line fmt =
              Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
            in
            line "hexserve (offline — from ledger %s)" path;
            (match Obs.Ledger.latest 1 serve with
            | [ e ] ->
                let m name =
                  match Obs.Ledger.metric e name with
                  | Some v -> Printf.sprintf "%.0f" v
                  | None -> "-"
                in
                line
                  "last run:  %s requests (%s warm, %s cold, %s errors), %s \
                   audits (%s out of band), drift alarm %s"
                  (m "requests") (m "warm_hits") (m "cold_misses")
                  (m "errors") (m "audits") (m "audits_out_of_band")
                  (m "drift_alarm")
            | _ -> ());
            let oob =
              List.length
                (List.filter
                   (fun e -> Obs.Ledger.metric e "in_band" = Some 0.0)
                   audits)
            in
            if audits <> [] then
              line "audit records: %d total, %d out of band"
                (List.length audits) oob;
            (* hexlens panel: what `hextime watch` has concluded about the
               trends in this same ledger *)
            if alerts <> [] then begin
              let regressions =
                List.filter
                  (fun e ->
                    List.mem ("verdict", "regression") e.Obs.Ledger.labels)
                  alerts
              in
              line "alert records: %d total, %d regression(s)"
                (List.length alerts)
                (List.length regressions);
              List.iter
                (fun e ->
                  let l name =
                    Option.value ~default:"-"
                      (List.assoc_opt name e.Obs.Ledger.labels)
                  in
                  let stat =
                    match Obs.Ledger.metric e "stat" with
                    | Some v -> Printf.sprintf "%.2f" v
                    | None -> "-"
                  in
                  line "  %s %s: %s %s (stat %s)"
                    (H.History.timestamp e.Obs.Ledger.time_unix)
                    (l "series") (l "verdict") (l "detector") stat)
                (Obs.Ledger.latest 3 alerts)
            end;
            Ok (Buffer.contents b))
  in
  let draw socket ledger =
    match Serve.Client.connect ~socket_path:socket () with
    | Ok fd -> (
        let metrics =
          Fun.protect
            ~finally:(fun () -> Serve.Client.close fd)
            (fun () -> Serve.Client.metrics fd)
        in
        match metrics with
        | Error msg -> Error msg
        | Ok text -> (
            match Obs.Openmetrics.parse text with
            | Error msg -> Error msg
            | Ok families -> Ok (render_live families)))
    | Error _ -> render_ledger ledger
  in
  let run socket ledger watch =
    match watch with
    | None -> (
        match draw socket ledger with
        | Ok text ->
            print_string text;
            `Ok ()
        | Error msg -> die "dash: %s" msg)
    | Some interval ->
        let interval = Float.max 0.1 interval in
        let rec loop () =
          (* clear screen + home, like watch(1) *)
          print_string "\027[2J\027[H";
          (match draw socket ledger with
          | Ok text -> print_string text
          | Error msg -> Printf.printf "dash: %s\n" msg);
          Printf.printf "\n(every %.1fs — ctrl-c to quit)\n%!" interval;
          ignore (Unix.select [] [] [] interval);
          loop ()
        in
        loop ()
  in
  Cmd.v
    (Cmd.info "dash"
       ~doc:
         "One-screen serving dashboard: scrape a live $(b,hextime serve) \
          over the $(b,metrics) frame (vitals, latency quantiles, SLO \
          windows, drift monitor, live hexlens alert gauges) — or, when \
          the socket is down, summarize the last serve run, audit verdicts \
          and hexlens alert records from the hexwatch ledger.  \
          $(b,--watch) redraws continuously.")
    Term.(ret (const run $ socket_arg $ ledger_arg $ watch))

let main_cmd =
  let doc =
    "analytical time modeling and optimal tile-size selection for GPGPU \
     stencils (PPoPP'17 reproduction)"
  in
  Cmd.group
    (Cmd.info "hextime" ~version:"1.0.0" ~doc)
    [
      predict_cmd;
      profile_cmd;
      trace_verify_cmd;
      tune_cmd;
      strategies_cmd;
      sensitivity_cmd;
      trace_cmd;
      codegen_cmd;
      lint_cmd;
      prove_cmd;
      naive_cmd;
      solve_cmd;
      tables_cmd;
      fig3_cmd;
      fig4_cmd;
      fig5_cmd;
      fig6_cmd;
      validate_cmd;
      campaign_cmd;
      doctor_cmd;
      report_cmd;
      ampl_cmd;
      bench_compare_cmd;
      accuracy_compare_cmd;
      history_cmd;
      watch_cmd;
      explain_cmd;
      index_cmd;
      serve_cmd;
      ask_cmd;
      metrics_verify_cmd;
      dash_cmd;
    ]

let () =
  (* hexwatch heartbeats: on for interactive stderr, off when piped/CI,
     overridable with HEXTIME_PROGRESS=0|1.  Rendering goes to stderr
     only, so machine-consumed stdout stays byte-identical either way. *)
  Obs.Progress.auto_enable ();
  exit (Cmd.eval main_cmd)
