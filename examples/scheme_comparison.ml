(* Why hybrid-hexagonal tiling?  Four GPU schedules for the same stencil,
   priced on the same simulated machine (Section 2's design space):

   - naive:      one kernel per time step, no reuse along time;
   - skewed:     classic time skewing, 45-degree wavefronts of rectangles;
   - overtile:   overlapped tiles with ghost-zone redundant computation;
   - hexagonal:  the HHC scheme the paper models, with model-guided tiles.

   All four are executed/verified on the CPU against the same reference
   (naive trivially; the other three through their dependence-checked
   executors) before being priced.

   Run with: dune exec examples/scheme_comparison.exe *)

module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Reference = Hextime_stencil.Reference
module Config = Hextime_tiling.Config
module Exec_cpu = Hextime_tiling.Exec_cpu
module Skewed = Hextime_tiling.Skewed
module Overtile = Hextime_tiling.Overtile
module Naive = Hextime_tiling.Naive
module Gpu = Hextime_gpu
module Runner = Hextime_tileopt.Runner
module Strategies = Hextime_tileopt.Strategies
module Microbench = Hextime_harness.Microbench
module Tabulate = Hextime_prelude.Tabulate

let () =
  let stencil = Stencil.heat2d in

  (* --- all schemes agree with the reference on a small instance --------- *)
  let demo = Problem.make stencil ~space:[| 32; 32 |] ~time:8 in
  let init = Reference.default_init demo in
  let cfg = Config.make_exn ~t_t:4 ~t_s:[| 6; 32 |] ~threads:[| 64 |] in
  let check name = function
    | Ok () -> Printf.printf "  %-10s exact\n" name
    | Error e -> failwith (name ^ ": " ^ e)
  in
  print_endline "correctness (vs naive reference, dependence-checked):";
  check "hexagonal" (Exec_cpu.verify demo cfg ~init);
  check "skewed" (Skewed.verify demo cfg ~init);
  check "overtile" (Overtile.verify demo cfg ~init);

  (* --- performance at production size ------------------------------------ *)
  let arch = Gpu.Arch.gtx980 in
  let problem = Problem.make stencil ~space:[| 4096; 4096 |] ~time:1024 in
  let params = Microbench.params arch in
  let citer = Microbench.citer arch stencil in
  let gflops t = Problem.total_flops problem /. t /. 1e9 in

  let hex =
    let ctx = { Strategies.arch; params; citer; problem } in
    match Strategies.model_top10 ctx with
    | Ok o -> (Config.id o.Strategies.config, o.Strategies.measurement.Runner.time_s)
    | Error e -> failwith e
  in
  (* give the other schemes the same tuned tile sizes where applicable *)
  let tuned = Config.make_exn ~t_t:8 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  let skewed_t =
    match Skewed.measure arch problem tuned with Ok t -> t | Error e -> failwith e
  in
  let overtile_t =
    match Overtile.measure arch problem tuned with Ok t -> t | Error e -> failwith e
  in
  let naive =
    match Naive.best arch problem with Ok t -> t | Error e -> failwith e
  in
  Printf.printf "\nheat2d 4096^2, T = 1024, on %s:\n" arch.Gpu.Arch.name;
  let table =
    Tabulate.create
      [
        ("scheme", Tabulate.Left);
        ("configuration", Tabulate.Left);
        ("time", Tabulate.Right);
        ("GFLOP/s", Tabulate.Right);
      ]
  in
  let row name cfg t = [ name; cfg; Tabulate.seconds_cell t; Printf.sprintf "%.1f" (gflops t) ] in
  Tabulate.print
    (Tabulate.add_rows table
       [
         row "naive (no time tiling)"
           (String.concat "x"
              (Array.to_list (Array.map string_of_int naive.Naive.block)))
           naive.Naive.time_s;
         row "classic time skewing" (Config.id tuned) skewed_t;
         row "overtile (ghost zones)" (Config.id tuned) overtile_t;
         row "hexagonal (model-tuned)" (fst hex) (snd hex);
       ])
