(* Image-processing pipeline: iterative smoothing followed by gradient
   (edge) extraction — the signal/image workload family from the paper's
   introduction, and a case where two different stencils run back to back.

   The pipeline smooths a noisy synthetic "image" with a few Jacobi
   iterations, then computes the gradient magnitude, all through the tiled
   executor.  For deployment we let the model plan each stage separately:
   the gradient kernel's sqrt roughly doubles C_iter (Table 4), which the
   model picks up from the micro-benchmark and folds into its per-stage
   predictions and tile-size choices.

   Run with: dune exec examples/image_pipeline.exe *)

module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Grid = Hextime_stencil.Grid
module Exec_cpu = Hextime_tiling.Exec_cpu
module Config = Hextime_tiling.Config
module Gpu = Hextime_gpu
module Model = Hextime_core.Model
module Optimizer = Hextime_tileopt.Optimizer
module Space = Hextime_tileopt.Space
module Microbench = Hextime_harness.Microbench

(* deterministic "noise" from the point's coordinates *)
let synthetic_image n =
  let img = Grid.create [| n; n |] in
  let h = Hextime_prelude.Det_hash.create "image" in
  Grid.fill img (fun idx ->
      let base = if idx.(1) > n / 2 then 0.8 else 0.2 in
      let hh =
        Hextime_prelude.Det_hash.mix_int
          (Hextime_prelude.Det_hash.mix_int h idx.(0))
          idx.(1)
      in
      base +. (0.2 *. (Hextime_prelude.Det_hash.uniform hh -. 0.5)));
  img

let roughness g =
  (* mean absolute difference between horizontal neighbours *)
  let dims = Grid.dims g in
  let acc = ref 0.0 and cnt = ref 0 in
  for i = 0 to dims.(0) - 1 do
    for j = 0 to dims.(1) - 2 do
      acc := !acc +. abs_float (Grid.get2 g i j -. Grid.get2 g i (j + 1));
      incr cnt
    done
  done;
  !acc /. float_of_int !cnt

let () =
  let n = 64 in
  let image = synthetic_image n in
  Format.printf "input roughness:    %.4f@." (roughness image);

  (* stage 1: 8 Jacobi smoothing iterations, tiled *)
  let smooth_problem = Problem.make Stencil.jacobi2d ~space:[| n; n |] ~time:8 in
  let cfg = Config.make_exn ~t_t:4 ~t_s:[| 6; 32 |] ~threads:[| 64 |] in
  let smoothed = Exec_cpu.run smooth_problem cfg ~init:image in
  Format.printf "smoothed roughness: %.4f@." (roughness smoothed);
  assert (roughness smoothed < roughness image);

  (* stage 2: one gradient pass extracts the edge between the two halves *)
  let edge_problem = Problem.make Stencil.gradient2d ~space:[| n; n |] ~time:1 in
  let edges = Exec_cpu.run edge_problem cfg ~init:smoothed in
  let mid_edge = Grid.get2 edges (n / 2) (n / 2) in
  let flat = Grid.get2 edges (n / 2) (n / 4) in
  Format.printf "gradient at edge %.4f vs flat region %.4f@." mid_edge flat;
  assert (mid_edge > flat);

  (* deployment: per-stage tile-size selection at production resolution *)
  let arch = Gpu.Arch.titanx in
  let params = Microbench.params arch in
  Format.printf "@.per-stage predicted optima on %s (8192^2, T = 1024):@."
    arch.Gpu.Arch.name;
  List.iter
    (fun stencil ->
      let problem =
        Problem.make stencil ~space:[| 8192; 8192 |] ~time:1024
      in
      let citer = Microbench.citer arch stencil in
      let space_eval = Optimizer.evaluate_space params ~citer problem in
      let best = Optimizer.best space_eval in
      Format.printf "  %-12s C_iter = %.2e s -> %s (predicted %.3f s)@."
        stencil.Stencil.name citer
        (Space.id best.Optimizer.shape)
        best.Optimizer.prediction.Model.talg)
    [ Stencil.jacobi2d; Stencil.gradient2d ]
