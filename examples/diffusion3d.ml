(* 3D diffusion: the volumetric workload class (materials modelling,
   computational physics) from the paper's introduction.

   3D stencils are where tile-size selection gets genuinely hard: the
   shared-memory footprint 2*(tS1+tT+1)(tS2+tT+1)(tS3+tT+1) explodes with
   the time-tile depth, so the feasible region is a narrow sliver and the
   compute cost per point is ~4x the 2D case (Table 4).  This example
   integrates a small 3D heat problem exactly through the tiled executor,
   then lets the model navigate that sliver for a production-size volume on
   both machines and shows what the footprint constraint does to the chosen
   tiles.

   Run with: dune exec examples/diffusion3d.exe *)

module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Grid = Hextime_stencil.Grid
module Reference = Hextime_stencil.Reference
module Exec_cpu = Hextime_tiling.Exec_cpu
module Footprint = Hextime_tiling.Footprint
module Config = Hextime_tiling.Config
module Gpu = Hextime_gpu
module Model = Hextime_core.Model
module Space = Hextime_tileopt.Space
module Optimizer = Hextime_tileopt.Optimizer
module Strategies = Hextime_tileopt.Strategies
module Runner = Hextime_tileopt.Runner
module Microbench = Hextime_harness.Microbench

let () =
  let stencil = Stencil.heat3d in

  (* --- exactness on a small volume -------------------------------------- *)
  let demo = Problem.make stencil ~space:[| 14; 12; 32 |] ~time:6 in
  let init = Reference.default_init demo in
  let cfg = Config.make_exn ~t_t:2 ~t_s:[| 4; 4; 32 |] ~threads:[| 64 |] in
  (match Exec_cpu.verify demo cfg ~init with
  | Ok () -> print_endline "3D tiled execution: bit-identical to the reference"
  | Error e -> failwith e);

  (* --- the footprint wall ------------------------------------------------ *)
  let production = Problem.make stencil ~space:[| 384; 384; 384 |] ~time:256 in
  print_endline "\nshared-memory footprint vs time-tile depth (tS = 4x8x32):";
  List.iter
    (fun t_t ->
      let cfg = Config.make_exn ~t_t ~t_s:[| 4; 8; 32 |] ~threads:[| 256 |] in
      let fp = Footprint.of_config ~order:1 ~space:production.Problem.space cfg in
      Printf.printf "  tT = %2d -> M_tile = %5d words (%5.1f KB) %s\n" t_t
        fp.Footprint.shared_words
        (float_of_int fp.Footprint.shared_words *. 4.0 /. 1024.0)
        (if fp.Footprint.shared_words > 12288 then "  [over the 48 KB cap]"
         else ""))
    [ 2; 4; 6; 8; 10; 12 ];

  (* --- model-guided selection on both machines --------------------------- *)
  print_endline "\nmodel-guided tile selection, 384^3 volume, T = 256:";
  List.iter
    (fun arch ->
      let params = Microbench.params arch in
      let citer = Microbench.citer arch stencil in
      let shapes = Space.shapes params production in
      let ctx = { Strategies.arch; params; citer; problem = production } in
      match Strategies.model_top10 ctx with
      | Error e -> failwith e
      | Ok o ->
          Printf.printf
            "  %-7s %4d feasible shapes -> %s: %.3f s = %.1f GFLOP/s (k = %d)\n"
            arch.Gpu.Arch.name (List.length shapes)
            (Config.id o.Strategies.config)
            o.Strategies.measurement.Runner.time_s
            o.Strategies.measurement.Runner.gflops
            o.Strategies.measurement.Runner.resident_blocks)
    Gpu.Arch.presets
