(* Heat diffusion: the PDE workload that motivates the paper's introduction.

   A hot spot diffuses through a 2D plate (explicit finite differences,
   Dirichlet boundary).  We:
   - integrate the PDE with the hexagonally tiled executor and track the
     physics (peak temperature decays, total heat leaks through the fixed
     boundary, the profile stays within physical bounds);
   - cross-check the tiled integration against the naive reference;
   - then plan a production run: for the full-resolution plate, compare the
     time the analytical model predicts on both GPUs and report the tile
     sizes the model-guided optimizer selects for each.

   Run with: dune exec examples/heat_diffusion.exe *)

module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Grid = Hextime_stencil.Grid
module Reference = Hextime_stencil.Reference
module Exec_cpu = Hextime_tiling.Exec_cpu
module Config = Hextime_tiling.Config
module Gpu = Hextime_gpu
module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner
module Strategies = Hextime_tileopt.Strategies
module Microbench = Hextime_harness.Microbench
module Tabulate = Hextime_prelude.Tabulate

let grid_stats g =
  let data = Grid.unsafe_data g in
  let peak = Array.fold_left max neg_infinity data in
  let total = Array.fold_left ( +. ) 0.0 data in
  (peak, total)

let () =
  (* --- simulation at laptop scale -------------------------------------- *)
  let n = 96 in
  let stencil = Stencil.heat2d in
  let plate = Grid.create [| n; n |] in
  (* cold plate with a hot square in the centre *)
  Grid.fill plate (fun idx ->
      let hot d = abs (idx.(d) - (n / 2)) <= 4 in
      if hot 0 && hot 1 then 100.0 else 0.0);
  let peak0, total0 = grid_stats plate in
  Format.printf "initial plate: peak %.1f, total heat %.1f@." peak0 total0;

  let steps = 48 in
  let problem = Problem.make stencil ~space:[| n; n |] ~time:steps in
  let cfg = Config.make_exn ~t_t:6 ~t_s:[| 8; 32 |] ~threads:[| 64 |] in
  let final = Exec_cpu.run problem cfg ~init:plate in

  (* cross-check against the reference integrator *)
  let expected = Reference.run problem ~init:plate in
  assert (Grid.equal final expected);

  let peak, total = grid_stats final in
  Format.printf "after %d steps: peak %.2f, total heat %.1f@." steps peak total;
  assert (peak < peak0);
  (* diffusion spreads but cannot create heat, and the cold boundary absorbs *)
  assert (total <= total0 +. 1e-6);
  assert (peak > 0.0);
  Format.printf "physics checks passed (decay, conservation bound)@.";

  (* --- production planning --------------------------------------------- *)
  let production = Problem.make stencil ~space:[| 8192; 8192 |] ~time:4096 in
  Format.printf "@.production run %a:@." Problem.pp production;
  let table =
    Tabulate.create
      [
        ("GPU", Tabulate.Left);
        ("tile sizes", Tabulate.Left);
        ("predicted", Tabulate.Right);
        ("simulated", Tabulate.Right);
        ("GFLOP/s", Tabulate.Right);
      ]
  in
  let table =
    List.fold_left
      (fun table arch ->
        let params = Microbench.params arch in
        let citer = Microbench.citer arch stencil in
        let ctx = { Strategies.arch; params; citer; problem = production } in
        match Strategies.model_top10 ctx with
        | Error e -> failwith e
        | Ok o ->
            let predicted =
              match o.Strategies.predicted_s with
              | Some p -> Tabulate.seconds_cell p
              | None -> "-"
            in
            Tabulate.add_row table
              [
                arch.Gpu.Arch.name;
                Config.id o.Strategies.config;
                predicted;
                Tabulate.seconds_cell o.Strategies.measurement.Runner.time_s;
                Printf.sprintf "%.1f" o.Strategies.measurement.Runner.gflops;
              ])
      table Gpu.Arch.presets
  in
  Tabulate.print table
