(* Extending the library with a user-defined stencil (Section 7,
   "Generality": the model and the tiling generalise when the dependence
   pattern changes — slopes, footprints and widths scale with the order).

   We define a second-order 2D acoustic-kernel-style stencil from scratch
   through the public API, then get everything the built-in benchmarks get:
   - legality + exactness of the tiled schedule (the executor checks every
     dependence, with order-2 slopes);
   - a measured C_iter from the Table 4 micro-benchmark protocol;
   - model predictions and model-guided tile-size selection.

   Run with: dune exec examples/custom_stencil.exe *)

module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Reference = Hextime_stencil.Reference
module Exec_cpu = Hextime_tiling.Exec_cpu
module Config = Hextime_tiling.Config
module Gpu = Hextime_gpu
module Model = Hextime_core.Model
module Optimizer = Hextime_tileopt.Optimizer
module Space = Hextime_tileopt.Space
module Runner = Hextime_tileopt.Runner
module Microbench = Hextime_harness.Microbench

(* a 9-point, order-2 star: centre, +-1 and +-2 along each axis, with
   fourth-order-accurate Laplacian weights *)
let acoustic =
  let tap offset weight = { Stencil.offset; weight } in
  let axis d s dist =
    let off = [| 0; 0 |] in
    off.(d) <- s * dist;
    off
  in
  let c = 0.25 in
  let taps =
    tap [| 0; 0 |] (1.0 -. (2.5 *. c))
    :: List.concat_map
         (fun d ->
           [
             tap (axis d 1 1) (c *. 4.0 /. 3.0);
             tap (axis d (-1) 1) (c *. 4.0 /. 3.0);
             tap (axis d 1 2) (c *. -1.0 /. 12.0);
             tap (axis d (-1) 2) (c *. -1.0 /. 12.0);
           ])
         [ 0; 1 ]
  in
  Stencil.make ~name:"acoustic2d_o2" ~rank:2 ~flops:18
    (Stencil.Linear { taps; constant = 0.0 })

let () =
  Format.printf "defined %a@." Stencil.pp acoustic;
  assert (acoustic.Stencil.order = 2);

  (* correctness: the tiled schedule must match the reference exactly, with
     order-2 hexagon slopes and order-2 skewed inner chunks *)
  let demo = Problem.make acoustic ~space:[| 48; 64 |] ~time:10 in
  let init = Reference.default_init demo in
  let cfg = Config.make_exn ~t_t:4 ~t_s:[| 6; 32 |] ~threads:[| 64 |] in
  (match Exec_cpu.verify demo cfg ~init with
  | Ok () -> Format.printf "order-2 tiled execution: exact@."
  | Error e -> failwith e);

  (* the micro-benchmark protocol needs no changes for a custom stencil *)
  let arch = Gpu.Arch.gtx980 in
  let params = Microbench.params arch in
  let citer = Microbench.citer arch acoustic in
  Format.printf "measured C_iter on %s: %.3e s@." arch.Gpu.Arch.name citer;

  (* model-guided selection at production size; note how the order-2
     footprints shrink the feasible space relative to first-order stencils *)
  let production = Problem.make acoustic ~space:[| 4096; 4096 |] ~time:1024 in
  let space_eval = Optimizer.evaluate_space params ~citer production in
  let best = Optimizer.best space_eval in
  Format.printf "feasible shapes: %d; predicted optimum %s = %.3f s@."
    (List.length space_eval)
    (Space.id best.Optimizer.shape)
    best.Optimizer.prediction.Model.talg;
  let cands = Optimizer.within_fraction ~frac:0.10 space_eval in
  let measured =
    List.filter_map
      (fun (e : Optimizer.evaluated) ->
        List.filter_map
          (fun threads ->
            match
              Config.make ~t_t:e.Optimizer.shape.Space.t_t
                ~t_s:e.Optimizer.shape.Space.t_s ~threads:[| threads |]
            with
            | Error _ -> None
            | Ok cfg -> (
                match Runner.measure arch production cfg with
                | Ok m -> Some (cfg, m)
                | Error _ -> None))
          [ 256; 384; 512 ]
        |> function
        | [] -> None
        | xs ->
            Some
              (List.fold_left
                 (fun ((_, bm) as acc) ((_, m) as x) ->
                   if m.Runner.time_s < bm.Runner.time_s then x else acc)
                 (List.hd xs) (List.tl xs)))
      cands
  in
  match measured with
  | [] -> failwith "no candidate measured"
  | (cfg0, m0) :: rest ->
      let cfg, m =
        List.fold_left
          (fun ((_, bm) as acc) ((_, m) as x) ->
            if m.Runner.time_s < bm.Runner.time_s then x else acc)
          (cfg0, m0) rest
      in
      Format.printf
        "selected %s: %.3f s simulated (%.1f GFLOP/s) out of %d candidates@."
        (Config.id cfg) m.Runner.time_s m.Runner.gflops (List.length measured)
