(* Quickstart: the five-minute tour of the library.

   1. pick a stencil benchmark and a problem size;
   2. check that hexagonally tiled execution is exact (CPU executor);
   3. ask the analytical model for the execution time of a configuration;
   4. "measure" the same configuration on the GPU simulator;
   5. let the optimizer pick tile sizes.

   Run with: dune exec examples/quickstart.exe *)

module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Reference = Hextime_stencil.Reference
module Exec_cpu = Hextime_tiling.Exec_cpu
module Config = Hextime_tiling.Config
module Gpu = Hextime_gpu
module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner
module Strategies = Hextime_tileopt.Strategies
module Microbench = Hextime_harness.Microbench

let () =
  (* 1. a small heat-equation problem for the correctness demo *)
  let stencil = Stencil.heat2d in
  let demo = Problem.make stencil ~space:[| 64; 64 |] ~time:16 in
  let init = Reference.default_init demo in

  (* 2. execute the HHC tile schedule on the CPU and compare with the naive
     reference — the executor also checks every dependence *)
  let cfg = Config.make_exn ~t_t:4 ~t_s:[| 6; 32 |] ~threads:[| 64 |] in
  (match Exec_cpu.verify demo cfg ~init with
  | Ok () -> print_endline "tiled execution: bit-identical to the reference"
  | Error e -> failwith ("tiled execution diverged: " ^ e));

  (* 3 + 4. model vs simulator on a production-size instance *)
  let arch = Gpu.Arch.gtx980 in
  let production = Problem.make stencil ~space:[| 4096; 4096 |] ~time:2048 in
  let params = Microbench.params arch in
  let citer = Microbench.citer arch stencil in
  let cfg = Config.make_exn ~t_t:16 ~t_s:[| 16; 64 |] ~threads:[| 256 |] in
  (match Model.predict params ~citer production cfg with
  | Ok pr ->
      Format.printf "model:     Talg = %.4f s (k = %d, %d wavefronts)@."
        pr.Model.talg pr.Model.k pr.Model.n_wavefronts
  | Error e -> failwith e);
  (match Runner.measure arch production cfg with
  | Ok m ->
      Format.printf "simulator: %.4f s = %.1f GFLOP/s@." m.Runner.time_s
        m.Runner.gflops
  | Error e -> failwith e);

  (* 5. model-guided tile-size selection (the paper's Section 6 procedure) *)
  let ctx = { Strategies.arch; params; citer; problem = production } in
  match Strategies.model_top10 ctx with
  | Ok o ->
      Format.printf
        "tuned:     %s -> %.4f s = %.1f GFLOP/s (after executing %d \
         candidate configurations)@."
        (Config.id o.Strategies.config) o.Strategies.measurement.Runner.time_s
        o.Strategies.measurement.Runner.gflops o.Strategies.explored
  | Error e -> failwith e
