(** A generic empirical autotuner, for the comparison Section 6.2 raises:
    "Comparing against a generic autotuner (e.g., opentuner) could be
    interesting, but tuning without good domain knowledge will be
    difficult."

    The tuner knows nothing about the model: it searches the same
    configuration space (tile shapes x thread counts) using measured
    execution time only, with the standard generic recipe — a random
    sampling phase followed by greedy neighbourhood refinement — under a
    fixed measurement budget.  The bench compares its best-found
    performance per budget against the model-guided procedure, which spends
    its budget only inside the predicted within-10% set. *)

type outcome = {
  config : Hextime_tiling.Config.t;
  time_s : float;  (** best measured time found *)
  gflops : float;
  measurements : int;  (** executions actually spent *)
}

val search :
  ?budget:int ->
  ?seed:string ->
  Hextime_gpu.Arch.t ->
  Hextime_core.Params.t ->
  Hextime_stencil.Problem.t ->
  (outcome, string) result
(** Random exploration for the first 60% of [budget] (default 200
    measurements), greedy refinement of the incumbent for the rest.
    Deterministic for a given [seed]. *)

val budget_curve :
  budgets:int list ->
  Hextime_gpu.Arch.t ->
  Hextime_core.Params.t ->
  Hextime_stencil.Problem.t ->
  (int * float) list
(** Best GFLOP/s found at each measurement budget (independent runs). *)
