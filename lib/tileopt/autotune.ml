module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Params = Hextime_core.Params
module Det_hash = Hextime_prelude.Det_hash

type outcome = {
  config : Config.t;
  time_s : float;
  gflops : float;
  measurements : int;
}

let pick h xs =
  let n = List.length xs in
  List.nth xs (abs (Int64.to_int (Int64.rem (Det_hash.to_int64 h) (Int64.of_int n))))

let measure arch problem spent cfg =
  incr spent;
  match Runner.measure arch problem cfg with
  | Ok m -> Some m.Runner.time_s
  | Error _ -> None

(* thread-count neighbourhood within the candidate list *)
let thread_moves threads =
  let cands = Array.of_list Space.thread_candidates in
  let n = Array.length cands in
  let idx = ref None in
  Array.iteri (fun i t -> if t = threads then idx := Some i) cands;
  match !idx with
  | None -> [ cands.(0) ]
  | Some i ->
      List.filter_map
        (fun d ->
          let j = i + d in
          if j >= 0 && j < n then Some cands.(j) else None)
        [ -1; 1 ]

let neighbours (cfg : Config.t) =
  let rank = Config.rank cfg in
  let tile_moves =
    List.filter_map
      (fun (di, d) ->
        let t_t = if di = -1 then cfg.Config.t_t + d else cfg.Config.t_t in
        let t_s = Array.copy cfg.Config.t_s in
        if di >= 0 then
          t_s.(di) <-
            t_s.(di) + (if di = rank - 1 && rank > 1 then 32 * d else d);
        match Config.make ~t_t ~t_s ~threads:cfg.Config.threads with
        | Ok c -> Some c
        | Error _ -> None)
      (List.concat_map
         (fun di -> [ (di, -2); (di, -1); (di, 1); (di, 2) ])
         (List.init (rank + 1) (fun i -> i - 1)))
  in
  let thread_variants =
    List.filter_map
      (fun t ->
        match
          Config.make ~t_t:cfg.Config.t_t ~t_s:cfg.Config.t_s ~threads:[| t |]
        with
        | Ok c -> Some c
        | Error _ -> None)
      (thread_moves (Config.total_threads cfg))
  in
  tile_moves @ thread_variants

let search ?(budget = 200) ?(seed = "autotune") arch (params : Params.t)
    (problem : Problem.t) =
  if budget < 10 then Error "budget must be at least 10"
  else
    let shapes = Array.of_list (Space.shapes params problem) in
    if Array.length shapes = 0 then Error "empty configuration space"
    else begin
      let spent = ref 0 in
      let explore_budget = budget * 6 / 10 in
      let best = ref None in
      let consider cfg time =
        match !best with
        | Some (_, bt) when bt <= time -> ()
        | _ -> best := Some (cfg, time)
      in
      (* phase 1: uniform random sampling over shapes x threads *)
      let i = ref 0 in
      while !spent < explore_budget do
        incr i;
        let h = Det_hash.mix_int (Det_hash.create seed) !i in
        let shape =
          shapes.(abs
                    (Int64.to_int
                       (Int64.rem (Det_hash.to_int64 h)
                          (Int64.of_int (Array.length shapes)))))
        in
        let threads = pick (Det_hash.mix_int h 7) Space.thread_candidates in
        match
          Config.make ~t_t:shape.Space.t_t ~t_s:shape.Space.t_s
            ~threads:[| threads |]
        with
        | Error _ -> incr spent
        | Ok cfg -> (
            match measure arch problem spent cfg with
            | Some t -> consider cfg t
            | None -> ())
      done;
      (* phase 2: greedy refinement of the incumbent *)
      let rec refine () =
        if !spent >= budget then ()
        else
          match !best with
          | None -> ()
          | Some (cfg, bt) ->
              let improved =
                List.fold_left
                  (fun acc n ->
                    if !spent >= budget then acc
                    else
                      match measure arch problem spent n with
                      | Some t when t < bt -> (
                          match acc with
                          | Some (_, at) when at <= t -> acc
                          | _ -> Some (n, t))
                      | _ -> acc)
                  None (neighbours cfg)
              in
              (match improved with
              | Some (n, t) ->
                  best := Some (n, t);
                  refine ()
              | None -> ())
      in
      refine ();
      match !best with
      | None -> Error "no feasible configuration found within the budget"
      | Some (config, time_s) ->
          Ok
            {
              config;
              time_s;
              gflops = Problem.total_flops problem /. time_s /. 1e9;
              measurements = !spent;
            }
    end

let budget_curve ~budgets arch params problem =
  List.filter_map
    (fun budget ->
      match search ~budget ~seed:(Printf.sprintf "curve-%d" budget) arch params problem with
      | Ok o -> Some (budget, o.gflops)
      | Error _ -> None)
    budgets
