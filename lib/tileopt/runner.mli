(** Measured execution of a configuration: compile with the tiling engine,
    run on the GPU simulator with the paper's min-of-five protocol
    (Section 5.1), and report time and throughput. *)

type measurement = {
  time_s : float;  (** minimum over the measurement runs *)
  gflops : float;  (** useful stencil GFLOP/s at that time *)
  resident_blocks : int;
      (** achieved hyper-threading factor of the binding kernel — the
          kernel in the sequence with the fewest resident blocks *)
  spilled_regs : int;  (** per-thread registers spilled, worst kernel *)
  limiting : Hextime_gpu.Occupancy.limit;
      (** the binding kernel's occupancy limit, so the diagnosis always
          matches [resident_blocks] *)
}

val measure :
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  Hextime_tiling.Config.t ->
  (measurement, string) result
(** [Error] for configurations the compiler or the device rejects. *)

val gflops_of_time : Hextime_stencil.Problem.t -> float -> float
(** Useful throughput for the problem at a given execution time. *)
