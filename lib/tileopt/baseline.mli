(** The baseline experiment set of Section 5.1.

    The paper constructs, for every (stencil, problem size, machine)
    combination, 85 tile-size combinations that maximise the shared-memory
    footprint subject to the 48 KB per-block cap — plus points that leave
    room for hyper-threading — and crosses each with 10 thread counts,
    giving 850 data points per experiment.  These are the points used both
    for model validation (Figure 3) and as the "Baseline" selection strategy
    of Figure 6. *)

val tile_shapes :
  Hextime_core.Params.t -> Hextime_stencil.Problem.t -> Space.shape list
(** About 85 shapes: predominantly footprint-maximising, with a
    deterministic spread of smaller-footprint (higher hyper-threading)
    shapes. *)

val data_points :
  Hextime_core.Params.t ->
  Hextime_stencil.Problem.t ->
  Hextime_tiling.Config.t list
(** [tile_shapes] crossed with {!Space.thread_candidates} (about 850). *)
