module Config = Hextime_tiling.Config
module Problem = Hextime_stencil.Problem
module Stencil = Hextime_stencil.Stencil
module Model = Hextime_core.Model

type outcome = {
  strategy : string;
  config : Config.t;
  measurement : Runner.measurement;
  predicted_s : float option;
  explored : int;
}

type context = {
  arch : Hextime_gpu.Arch.t;
  params : Hextime_core.Params.t;
  citer : float;
  problem : Problem.t;
}

let measure_all ctx configs =
  List.filter_map
    (fun cfg ->
      match Runner.measure ctx.arch ctx.problem cfg with
      | Ok m -> Some (cfg, m)
      | Error _ -> None)
    configs

let best_measured = function
  | [] -> Error "no feasible configuration executed"
  | (cfg, m) :: rest ->
      let cfg, m =
        List.fold_left
          (fun ((_, bm) as acc) ((_, m) as x) ->
            if m.Runner.time_s < bm.Runner.time_s then x else acc)
          (cfg, m) rest
      in
      Ok (cfg, m)

let finish ~strategy ~predicted_s ~explored = function
  | Error _ as e -> e
  | Ok (config, measurement) ->
      Ok { strategy; config; measurement; predicted_s; explored }

let hhc_default ctx =
  (* PPCG/HHC defaults: shallow time tiling and generic space tiles — the
     untuned starting point Figure 6 labels "HHC" *)
  let rank = ctx.problem.Problem.stencil.Stencil.rank in
  let t_t, t_s =
    match rank with
    | 1 -> (8, [| 32 |])
    | 2 -> (12, [| 16; 64 |])
    | _ -> (4, [| 4; 4; 32 |])
  in
  let cfg = Config.make_exn ~t_t ~t_s ~threads:[| 256 |] in
  finish ~strategy:"HHC" ~predicted_s:None ~explored:1
    (best_measured (measure_all ctx [ cfg ]))

let baseline_best ctx =
  let configs = Baseline.data_points ctx.params ctx.problem in
  finish ~strategy:"Baseline" ~predicted_s:None ~explored:(List.length configs)
    (best_measured (measure_all ctx configs))

let evaluated ctx = Optimizer.evaluate_space ctx.params ~citer:ctx.citer ctx.problem

let thread_cross shapes =
  List.concat_map
    (fun (e : Optimizer.evaluated) ->
      List.filter_map
        (fun threads ->
          match
            Config.make ~t_t:e.shape.Space.t_t ~t_s:e.shape.Space.t_s
              ~threads:[| threads |]
          with
          | Ok c -> Some c
          | Error _ -> None)
        Space.thread_candidates)
    shapes

let model_optimal ctx =
  match evaluated ctx with
  | [] -> Error "empty feasible space"
  | space ->
      let b = Optimizer.best space in
      let configs = thread_cross [ b ] in
      finish ~strategy:"Talg_min" ~predicted_s:(Some b.prediction.Model.talg)
        ~explored:(List.length configs)
        (best_measured (measure_all ctx configs))

(* the paper reports fewer than 200 points within 10% of the predicted
   minimum; our refined model yields a flatter landscape on some instances,
   so we keep the exploration budget faithful by taking the 200
   best-predicted candidates *)
let candidate_budget = 200

let take n xs =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: tl -> go (n - 1) (x :: acc) tl
  in
  go n [] xs

let model_top10 ctx =
  match evaluated ctx with
  | [] -> Error "empty feasible space"
  | space ->
      let cands = take candidate_budget (Optimizer.within_fraction ~frac:0.10 space) in
      let b = Optimizer.best space in
      let configs = thread_cross cands in
      finish ~strategy:"Within 10% of Talg_min"
        ~predicted_s:(Some b.prediction.Model.talg)
        ~explored:(List.length configs)
        (best_measured (measure_all ctx configs))

let stride_sample n xs =
  let len = List.length xs in
  if len <= n then xs
  else
    let arr = Array.of_list xs in
    List.init n (fun i -> arr.(i * len / n))

let exhaustive ?(max_configs = 5000) ctx =
  match evaluated ctx with
  | [] -> Error "empty feasible space"
  | space ->
      let configs = stride_sample max_configs (thread_cross space) in
      finish ~strategy:"Exhaustive" ~predicted_s:None
        ~explored:(List.length configs)
        (best_measured (measure_all ctx configs))

let all ?max_configs ctx =
  [
    ("HHC", hhc_default ctx);
    ("Talg_min", model_optimal ctx);
    ("Baseline", baseline_best ctx);
    ("Within 10% of Talg_min", model_top10 ctx);
    ("Exhaustive", exhaustive ?max_configs ctx);
  ]
