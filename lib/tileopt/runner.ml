module Problem = Hextime_stencil.Problem
module Lower = Hextime_tiling.Lower
module Gpu = Hextime_gpu

type measurement = {
  time_s : float;
  gflops : float;
  resident_blocks : int;
  spilled_regs : int;
  limiting : Gpu.Occupancy.limit;
}

let gflops_of_time problem time_s =
  if time_s <= 0.0 then invalid_arg "Runner.gflops_of_time";
  Problem.total_flops problem /. time_s /. 1e9

let measure arch problem cfg =
  match Lower.compile problem cfg with
  | Error _ as e -> e
  | Ok compiled -> (
      let kernels = Lower.kernel_sequence compiled in
      match Gpu.Simulator.measure arch kernels with
      | Error _ as e -> e
      | Ok time_s -> (
          (* stats from a deterministic single run (identical structure) *)
          match Gpu.Simulator.run_sequence ~jitter:false arch kernels with
          | Error _ as e -> e
          | Ok stats ->
              let worst field =
                List.fold_left
                  (fun acc (ks : Gpu.Simulator.kernel_stats) ->
                    max acc (field ks))
                  0 stats.Gpu.Simulator.kernels
              in
              (* occupancy is reported from the binding kernel — the one
                 with the fewest resident blocks — and [limiting] from that
                 same kernel, so the diagnosis matches the number *)
              let binding =
                match stats.Gpu.Simulator.kernels with
                | [] -> None
                | ks :: rest ->
                    Some
                      (List.fold_left
                         (fun (acc : Gpu.Simulator.kernel_stats)
                              (ks : Gpu.Simulator.kernel_stats) ->
                           if ks.Gpu.Simulator.resident_blocks
                              < acc.Gpu.Simulator.resident_blocks
                           then ks
                           else acc)
                         ks rest)
              in
              let resident_blocks, limiting =
                match binding with
                | Some ks ->
                    ( ks.Gpu.Simulator.resident_blocks,
                      ks.Gpu.Simulator.limiting )
                | None -> (0, Gpu.Occupancy.Blocks)
              in
              Ok
                {
                  time_s;
                  gflops = gflops_of_time problem time_s;
                  resident_blocks;
                  spilled_regs = worst (fun ks -> ks.Gpu.Simulator.spilled_regs);
                  limiting;
                }))
