module Problem = Hextime_stencil.Problem
module Lower = Hextime_tiling.Lower
module Gpu = Hextime_gpu

type measurement = {
  time_s : float;
  gflops : float;
  resident_blocks : int;
  spilled_regs : int;
  limiting : Gpu.Occupancy.limit;
}

let gflops_of_time problem time_s =
  if time_s <= 0.0 then invalid_arg "Runner.gflops_of_time";
  Problem.total_flops problem /. time_s /. 1e9

let measure arch problem cfg =
  match Lower.compile problem cfg with
  | Error _ as e -> e
  | Ok compiled -> (
      let kernels = Lower.kernel_sequence compiled in
      (* price each kernel once; the min-of-five protocol and the occupancy
         report are both read off the priced representation *)
      match Gpu.Simulator.price_sequence arch kernels with
      | Error _ as e -> e
      | Ok priced -> (
          match Gpu.Simulator.measure_priced arch priced with
          | Error _ as e -> e
          | Ok time_s ->
              (* one pass: worst spill across kernels, and the binding
                 kernel — the one with the fewest resident blocks — whose
                 [limiting] is reported so the diagnosis matches the
                 number.  Occupancy is jitter-invariant, so this reads the
                 priced kernels directly instead of replaying a run. *)
              let worst_spill, binding =
                List.fold_left
                  (fun (spill, binding) ((p : Gpu.Simulator.priced), _) ->
                    let occ = p.Gpu.Simulator.occ in
                    let spill =
                      max spill occ.Gpu.Occupancy.regs_spilled_per_thread
                    in
                    let binding =
                      match binding with
                      | Some (b : Gpu.Occupancy.result)
                        when b.Gpu.Occupancy.blocks_per_sm
                             <= occ.Gpu.Occupancy.blocks_per_sm ->
                          binding
                      | _ -> Some occ
                    in
                    (spill, binding))
                  (0, None) priced
              in
              let resident_blocks, limiting =
                match binding with
                | Some occ ->
                    ( occ.Gpu.Occupancy.blocks_per_sm,
                      occ.Gpu.Occupancy.limiting )
                | None -> (0, Gpu.Occupancy.Blocks)
              in
              Ok
                {
                  time_s;
                  gflops = gflops_of_time problem time_s;
                  resident_blocks;
                  spilled_regs = worst_spill;
                  limiting;
                }))
