module Model = Hextime_core.Model
module Params = Hextime_core.Params
module Problem = Hextime_stencil.Problem
module Stencil = Hextime_stencil.Stencil
module Config = Hextime_tiling.Config
module Footprint = Hextime_tiling.Footprint
module Det_hash = Hextime_prelude.Det_hash
module Hexabs = Hextime_analysis.Hexabs

type solution = {
  shape : Space.shape;
  talg : float;
  evaluations : int;
  restarts : int;
}

(* per-coordinate step rules: t_t moves by 2 (parity), the hexagonal and
   middle dimensions by small integers, the innermost by whole warps *)
let neighbours rank (s : Space.shape) =
  let moved_tt = List.map (fun d -> { s with Space.t_t = s.Space.t_t + d }) [ -2; 2 ] in
  let move_dim i d =
    let t_s = Array.copy s.Space.t_s in
    t_s.(i) <- t_s.(i) + d;
    { s with Space.t_s = t_s }
  in
  let steps i =
    if i = rank - 1 && rank > 1 then [ -32; 32 ]
    else [ -2; -1; 1; 2 ]
  in
  moved_tt
  @ List.concat_map
      (fun i -> List.map (move_dim i) (steps i))
      (List.init rank (fun i -> i))

let evaluate ?variant params ~citer problem evals (s : Space.shape) =
  incr evals;
  match
    Config.make ~t_t:s.Space.t_t ~t_s:s.Space.t_s ~threads:[| 128 |]
  with
  | Error _ -> None
  | Ok cfg -> (
      match Model.predict ?variant params ~citer problem cfg with
      | Ok pr -> Some pr.Model.talg
      | Error _ -> None)

let descend ?variant params ~citer problem evals start =
  let rank = Array.length start.Space.t_s in
  let rec go current current_talg =
    let better =
      List.filter_map
        (fun n ->
          match evaluate ?variant params ~citer problem evals n with
          | Some t when t < current_talg -> Some (n, t)
          | _ -> None)
        (neighbours rank current)
    in
    match better with
    | [] -> (current, current_talg)
    | _ ->
        let n, t =
          List.fold_left
            (fun ((_, bt) as acc) ((_, t) as x) -> if t < bt then x else acc)
            (List.hd better) (List.tl better)
        in
        go n t
  in
  match evaluate ?variant params ~citer problem evals start with
  | None -> None
  | Some t -> Some (go start t)

let spread ~salt ~restarts shapes =
  let n = List.length shapes in
  if n = 0 then []
  else
    List.init restarts (fun i ->
        let h = Det_hash.create salt |> fun h -> Det_hash.mix_int h i in
        let idx =
          Int64.to_int (Int64.rem (Det_hash.to_int64 h) (Int64.of_int n))
          |> abs
        in
        List.nth shapes idx)

(* deterministic seed spread over the whole feasible space *)
let seeds params problem ~restarts =
  spread ~salt:"descent-seed" ~restarts (Space.shapes params problem)

(* seed spread drawn from the boxes Hexabs' branch-and-bound left alive:
   the certified arg-min first, then a deterministic spread over the live
   boxes' capacity-feasible members.  The live boxes all carry a lower
   bound within the pruner's slack of the optimum, so every restart lands
   in a provably promising region instead of a uniform draw. *)
let symbolic_seeds ?variant params ~citer problem ~restarts =
  let tt, ts = Space.axes problem in
  let l = Hexabs.lattice ~tt ~ts in
  match Hexabs.minimize ?variant params ~citer problem l with
  | Error _ -> None
  | Ok r ->
      let word_factor = Problem.word_factor problem in
      let order = problem.stencil.Stencil.order in
      let shared_limit = params.Params.shared_mem_per_block in
      let shape_of (pt : Hexabs.point) =
        { Space.t_t = pt.Hexabs.p_tt; t_s = pt.Hexabs.p_ts }
      in
      let fits (s : Space.shape) =
        Footprint.shared_words_of ~word_factor ~order ~t_t:s.Space.t_t
          s.Space.t_s
        <= shared_limit
      in
      let pool =
        List.concat_map (fun b -> Hexabs.members l b) r.Hexabs.bnb_live
        |> List.map shape_of |> List.filter fits
      in
      let best = shape_of r.Hexabs.bnb_best in
      Some (best :: spread ~salt:"descent-seed-live" ~restarts:(restarts - 1) pool)

let solve ?variant ?(restarts = 8) ?(seed_mode = `Symbolic) params ~citer
    (problem : Problem.t) =
  if restarts <= 0 then Error "restarts must be positive"
  else
    let evals = ref 0 in
    let seed_list =
      match seed_mode with
      | `Uniform -> seeds params problem ~restarts
      | `Symbolic -> (
          match symbolic_seeds ?variant params ~citer problem ~restarts with
          | Some s -> s
          | None -> seeds params problem ~restarts)
    in
    let outcomes =
      List.filter_map (descend ?variant params ~citer problem evals) seed_list
    in
    match outcomes with
    | [] -> Error "no feasible starting point"
    | o :: rest ->
        let shape, talg =
          List.fold_left
            (fun ((_, bt) as acc) ((_, t) as x) -> if t < bt then x else acc)
            o rest
        in
        Ok { shape; talg; evaluations = !evals; restarts }

let optimality_gap ?variant params ~citer problem (r : solution) =
  let shapes = Space.shapes params problem in
  let best =
    List.fold_left
      (fun acc shape ->
        match
          Model.predict ?variant params ~citer problem
            (Space.to_config shape ~threads:[| 128 |])
        with
        | Ok pr -> min acc pr.Model.talg
        | Error _ -> acc)
      infinity shapes
  in
  (r.talg -. best) /. best
