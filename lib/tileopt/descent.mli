(** A local non-linear solver for Equation 31, standing in for the paper's
    AMPL/Bonmin experiment (Section 6.1).

    The paper encoded the tile-size problem for off-the-shelf non-linear
    solvers and found the results "somewhat disappointing": the objective is
    non-convex, integer, and full of ceiling-induced plateaus, so heuristic
    solvers return good-but-suboptimal points while being unable to certify
    an optimum.  This module implements a multi-start coordinate descent of
    the same character: from a feasible shape it repeatedly tries
    neighbouring values in each coordinate (respecting the parity and
    warp-multiple constraints) and accepts improvements, restarting from a
    deterministic spread of seeds.

    The bench compares it against exhaustive enumeration to reproduce the
    paper's observation. *)

type solution = {
  shape : Space.shape;
  talg : float;  (** predicted time at the solver's solution *)
  evaluations : int;  (** model evaluations spent *)
  restarts : int;
}

val solve :
  ?variant:Hextime_core.Model.variant ->
  ?restarts:int ->
  ?seed_mode:[ `Uniform | `Symbolic ] ->
  Hextime_core.Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  (solution, string) result
(** Run the solver ([restarts] deterministic starts, default 8).  [variant]
    selects the objective: the default refined model is comparatively
    smooth; [Paper_verbatim] has the ceiling-induced plateaus the paper's
    solvers struggled with.

    [seed_mode] picks the restart spread.  [`Symbolic] (the default) runs
    {!Hextime_analysis.Hexabs.minimize} first and draws the seeds from
    the boxes its branch-and-bound left alive — the certified arg-min
    plus a deterministic spread over the near-optimal regions — falling
    back to [`Uniform] if the lattice has no feasible point.  [`Uniform]
    is the historical behaviour: a deterministic hash spread over all of
    {!Space.shapes}. *)

val optimality_gap :
  ?variant:Hextime_core.Model.variant ->
  Hextime_core.Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  solution ->
  float
(** [(solver - exhaustive_min) / exhaustive_min] on predicted time. *)
