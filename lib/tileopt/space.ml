module Ints = Hextime_prelude.Ints
module Problem = Hextime_stencil.Problem
module Stencil = Hextime_stencil.Stencil
module Config = Hextime_tiling.Config
module Footprint = Hextime_tiling.Footprint
module Params = Hextime_core.Params

type shape = { t_t : int; t_s : int array }

let thread_candidates = [ 32; 64; 96; 128; 160; 192; 256; 384; 512; 1024 ]

let t_t_candidates = Ints.range ~step:2 2 64

let hex_candidates ~limit =
  List.filter (fun s -> s <= limit) [ 1; 2; 3; 4; 6; 8; 10; 12; 16; 20; 24; 32; 40; 48; 64; 96; 128 ]

let mid_candidates ~limit =
  List.filter (fun s -> s <= limit) [ 1; 2; 4; 6; 8; 12; 16; 24; 32; 48; 64 ]

let inner_candidates ~limit =
  List.filter (fun s -> s <= limit) (List.map (fun i -> 32 * i) (Ints.range 1 16))

let to_config shape ~threads =
  Config.make_exn ~t_t:shape.t_t ~t_s:shape.t_s ~threads

let shapes (p : Params.t) (problem : Problem.t) =
  let stencil = problem.stencil in
  let rank = stencil.Stencil.rank in
  let space = problem.space in
  (* feasibility probe: the shared-memory footprint depends only on the
     shape, so ask Footprint for that single number instead of building a
     throwaway Config and full footprint for each of the thousands of
     candidates *)
  let word_factor = Problem.word_factor problem in
  let order = stencil.Stencil.order in
  let shared_limit = p.Params.shared_mem_per_block in
  let fits shape =
    Footprint.shared_words_of ~word_factor ~order ~t_t:shape.t_t shape.t_s
    <= shared_limit
  in
  let dims_candidates =
    match rank with
    | 1 -> [ [ hex_candidates ~limit:space.(0) ] ]
    | 2 ->
        [ [ hex_candidates ~limit:space.(0); inner_candidates ~limit:space.(1) ] ]
    | 3 ->
        [
          [
            hex_candidates ~limit:space.(0);
            mid_candidates ~limit:space.(1);
            inner_candidates ~limit:space.(2);
          ];
        ]
    | _ -> assert false
  in
  let rec product = function
    | [] -> [ [] ]
    | axis :: rest ->
        let tails = product rest in
        List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) axis
  in
  let tile_tuples =
    match dims_candidates with [ axes ] -> product axes | _ -> assert false
  in
  (* the filter below already bounds t_t by 2 * problem.time; no second
     check is needed inside the expansion *)
  List.concat_map
    (fun t_t ->
      List.filter_map
        (fun tup ->
          let shape = { t_t; t_s = Array.of_list tup } in
          if fits shape then Some shape else None)
        tile_tuples)
    (List.filter (fun t -> t <= 2 * problem.time) t_t_candidates)

let id s =
  Printf.sprintf "tT%d-tS%s" s.t_t
    (String.concat "x" (Array.to_list (Array.map string_of_int s.t_s)))

let pp ppf s = Format.pp_print_string ppf (id s)
