module Ints = Hextime_prelude.Ints
module Problem = Hextime_stencil.Problem
module Stencil = Hextime_stencil.Stencil
module Config = Hextime_tiling.Config
module Footprint = Hextime_tiling.Footprint
module Params = Hextime_core.Params

type shape = { t_t : int; t_s : int array }

let thread_candidates = [ 32; 64; 96; 128; 160; 192; 256; 384; 512; 1024 ]

let t_t_candidates = Ints.range ~step:2 2 64

let hex_candidates ~limit =
  List.filter (fun s -> s <= limit) [ 1; 2; 3; 4; 6; 8; 10; 12; 16; 20; 24; 32; 40; 48; 64; 96; 128 ]

let mid_candidates ~limit =
  List.filter (fun s -> s <= limit) [ 1; 2; 4; 6; 8; 12; 16; 24; 32; 48; 64 ]

let inner_candidates ~limit =
  List.filter (fun s -> s <= limit) (List.map (fun i -> 32 * i) (Ints.range 1 16))

let to_config shape ~threads =
  Config.make_exn ~t_t:shape.t_t ~t_s:shape.t_s ~threads

(* the product lattice the enumeration filters: t_t candidates bounded by
   2 * T, and per-dimension tile-size candidates bounded by the problem
   extent.  Exposed so Hexabs can prove facts about whole sub-lattices of
   exactly the space [shapes] enumerates. *)
let axes (problem : Problem.t) =
  let rank = problem.stencil.Stencil.rank in
  let space = problem.space in
  let tt =
    Array.of_list (List.filter (fun t -> t <= 2 * problem.time) t_t_candidates)
  in
  let ts =
    match rank with
    | 1 -> [| Array.of_list (hex_candidates ~limit:space.(0)) |]
    | 2 ->
        [|
          Array.of_list (hex_candidates ~limit:space.(0));
          Array.of_list (inner_candidates ~limit:space.(1));
        |]
    | 3 ->
        [|
          Array.of_list (hex_candidates ~limit:space.(0));
          Array.of_list (mid_candidates ~limit:space.(1));
          Array.of_list (inner_candidates ~limit:space.(2));
        |]
    | _ -> assert false
  in
  (tt, ts)

let shapes (p : Params.t) (problem : Problem.t) =
  (* feasibility probe: the shared-memory footprint depends only on the
     shape, so ask Footprint for that single number instead of building a
     throwaway Config and full footprint for each of the thousands of
     candidates *)
  let word_factor = Problem.word_factor problem in
  let order = problem.stencil.Stencil.order in
  let shared_limit = p.Params.shared_mem_per_block in
  let fits shape =
    Footprint.shared_words_of ~word_factor ~order ~t_t:shape.t_t shape.t_s
    <= shared_limit
  in
  let tt_axis, ts_axes = axes problem in
  let rec product = function
    | [] -> [ [] ]
    | axis :: rest ->
        let tails = product rest in
        List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) axis
  in
  let tile_tuples = product (Array.to_list (Array.map Array.to_list ts_axes)) in
  (* the axes already bound t_t by 2 * problem.time; no second check is
     needed inside the expansion *)
  List.concat_map
    (fun t_t ->
      List.filter_map
        (fun tup ->
          let shape = { t_t; t_s = Array.of_list tup } in
          if fits shape then Some shape else None)
        tile_tuples)
    (Array.to_list tt_axis)

let id s =
  Printf.sprintf "tT%d-tS%s" s.t_t
    (String.concat "x" (Array.to_list (Array.map string_of_int s.t_s)))

let pp ppf s = Format.pp_print_string ppf (id s)
