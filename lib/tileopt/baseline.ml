module Params = Hextime_core.Params
module Footprint = Hextime_tiling.Footprint
module Config = Hextime_tiling.Config
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem

(* exactly of_problem's shared_words field, without building a throwaway
   Config and the rest of the footprint for each of the ~1e3 shapes *)
let footprint_words (problem : Problem.t) (shape : Space.shape) =
  Footprint.shared_words_of
    ~word_factor:(Problem.word_factor problem)
    ~order:problem.Problem.stencil.Stencil.order ~t_t:shape.Space.t_t
    shape.Space.t_s

(* take [n] elements evenly spread over the list, keeping order *)
let spread n xs =
  let len = List.length xs in
  if len <= n then xs
  else
    let arr = Array.of_list xs in
    List.init n (fun i -> arr.(i * len / n))

let tile_shapes (p : Params.t) (problem : Problem.t) =
  let cap = p.Params.shared_mem_per_block in
  let with_fp =
    Space.shapes p problem
    |> List.map (fun s -> (s, footprint_words problem s))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let band lo hi =
    List.filter_map
      (fun (s, fp) ->
        let frac = float_of_int fp /. float_of_int cap in
        if frac > lo && frac <= hi then Some s else None)
      with_fp
  in
  (* Section 5.1: predominantly footprint-maximising shapes (the 48 KB
     per-block cap leaves hyper-threading factor two), plus a smaller set
     that leaves room for more resident blocks: 85 in total *)
  let large = spread 70 (band 0.8 1.0) in
  let mid = spread 10 (band 0.5 0.8) in
  let small = spread 5 (band 0.0 0.5) in
  let chosen = large @ mid @ small in
  (* backfill from the full ranking if a band was sparse *)
  let missing = 85 - List.length chosen in
  if missing <= 0 then chosen
  else
    let rest =
      List.filter (fun (s, _) -> not (List.mem s chosen)) with_fp
      |> List.map fst
    in
    chosen @ spread missing rest

let data_points p problem =
  tile_shapes p problem
  |> List.concat_map (fun shape ->
         List.filter_map
           (fun threads ->
             match
               Config.make ~t_t:shape.Space.t_t ~t_s:shape.Space.t_s
                 ~threads:[| threads |]
             with
             | Ok c -> Some c
             | Error _ -> None)
           Space.thread_candidates)
