(** Model-driven tile-size optimization (Section 6.1).

    The optimization problem of Equation 31 is non-linear, non-convex and
    integer; the paper found off-the-shelf solvers (Bonmin et al.)
    unsatisfying and instead evaluated the model exhaustively over the
    (small) feasible space, keeping every point within 10% of the predicted
    minimum for empirical exploration.  This module implements that
    procedure. *)

type evaluated = {
  shape : Space.shape;
  prediction : Hextime_core.Model.prediction;
}

val evaluate_space :
  Hextime_core.Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  evaluated list
(** Evaluate T_alg on every feasible shape.  Shapes the model rejects are
    dropped. *)

val best : evaluated list -> evaluated
(** Minimum predicted T_alg; raises [Invalid_argument] on the empty list. *)

val within_fraction : frac:float -> evaluated list -> evaluated list
(** All points with [talg <= (1 + frac) * talg_min], sorted by predicted
    time (the "within 10% of T_alg_min" candidate set; the paper reports
    fewer than 200 such points per instance). *)

val candidate_count : frac:float -> evaluated list -> int
