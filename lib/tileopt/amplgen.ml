module Params = Hextime_core.Params
module Problem = Hextime_stencil.Problem
module Stencil = Hextime_stencil.Stencil

let emit (p : Params.t) ~citer (problem : Problem.t) =
  if citer <= 0.0 then invalid_arg "Amplgen.emit: citer must be positive";
  let stencil = problem.Problem.stencil in
  let rank = stencil.Stencil.rank in
  let order = stencil.Stencil.order in
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# Tile-size selection for %s (Equation 31, PPoPP'17)\n"
    (Problem.id problem);
  pf "# machine: %s\n\n" p.Params.arch_name;
  pf "param nSM := %d;\n" p.Params.n_sm;
  pf "param nV := %d;\n" p.Params.n_vector;
  pf "param MSM := %d;        # words per SM\n" p.Params.shared_mem_per_sm;
  pf "param Mblock := %d;     # per-block cap, words\n"
    p.Params.shared_mem_per_block;
  pf "param MTBSM := %d;\n" p.Params.max_blocks_per_sm;
  pf "param L := %.6e;        # s per word\n" p.Params.l_word;
  pf "param tau := %.6e;      # tau_sync, s\n" p.Params.tau_sync;
  pf "param Tsync := %.6e;\n" p.Params.t_sync;
  pf "param Citer := %.6e;\n" citer;
  pf "param T := %d;\n" problem.Problem.time;
  Array.iteri (fun i s -> pf "param S%d := %d;\n" (i + 1) s) problem.Problem.space;
  pf "param order := %d;\n\n" order;
  pf "var tT integer >= 2;       # even: tT = 2 * tTh\n";
  pf "var tTh integer >= 1;\n";
  pf "var tS1 integer >= 1;\n";
  if rank >= 2 then (
    pf "var tS2c integer >= 1;     # tS2 = 32 * tS2c (full warps)\n";
    pf "var tS2 integer >= 32;\n");
  if rank >= 3 then pf "var tS3 integer >= 1;\n";
  pf "var k integer >= 1;\n";
  pf "var Nw >= 1;\nvar w >= 1;\nvar Mtile >= 1;\nvar mio >= 1;\n";
  pf "var mprime >= 0;\nvar c >= 0;\nvar Ttile >= 0;\n\n";
  pf "s.t. even_tT: tT = 2 * tTh;\n";
  if rank >= 2 then pf "s.t. warp_tS2: tS2 = 32 * tS2c;\n";
  pf "s.t. def_Nw: Nw = 2 * ceil(T / tT);\n";
  pf "s.t. def_w:  w = ceil(S1 / (2 * tS1 + order * tT));\n";
  (match rank with
  | 1 ->
      pf "s.t. def_mio: mio = 2 * (tS1 + 2 * order * tT);\n";
      pf "s.t. def_Mtile: Mtile = 2 * (tS1 + order * tT + 1);\n"
  | 2 ->
      pf "s.t. def_mio: mio = 2 * tS2 * (tS1 + 2 * order * tT);\n";
      pf
        "s.t. def_Mtile: Mtile = 2 * (tS1 + order * tT + 1) * (tS2 + order * \
         tT + 1);\n"
  | _ ->
      pf "s.t. def_mio: mio = 2 * tS2 * tS3 * (tS1 + 2 * order * tT);\n";
      pf
        "s.t. def_Mtile: Mtile = 2 * (tS1 + order * tT + 1) * (tS2 + order * \
         tT + 1) * (tS3 + order * tT + 1);\n");
  pf "s.t. def_mprime: mprime = mio * L + 2 * tau;\n";
  (let inner =
     match rank with 1 -> "1" | 2 -> "tS2" | _ -> "tS2 * tS3"
   in
   pf
     "s.t. def_c: c = 2 * Citer * sum {d in 0..(tTh - 1)} ceil((tS1 + order + \
      2 * order * d) * %s / nV) + tT * tau;\n"
     inner);
  (match rank with
  | 1 -> pf "s.t. def_Ttile: Ttile = mprime + c + (k - 1) * max(mprime, c);\n"
  | 2 ->
      pf
        "s.t. def_Ttile: Ttile = mprime + k * max(mprime, c) * ceil((S2 + tT) \
         / tS2);\n"
  | _ ->
      pf
        "s.t. def_Ttile: Ttile = mprime + k * max(mprime, c) * ceil(((S2 + \
         tT) / tS2) * ((S3 + tT) / tS3));\n");
  pf "\n# Equation 31 constraints\n";
  pf "s.t. cap_block: Mtile <= Mblock;\n";
  pf "s.t. cap_k: k <= MTBSM;\n";
  pf "s.t. cap_sm: k * Mtile <= MSM;\n";
  Array.iteri
    (fun i s ->
      pf "s.t. fit_%d: tS%d <= %d;\n" (i + 1) (i + 1) s)
    problem.Problem.space;
  pf "\nminimize Talg: Nw * (Tsync + Ttile * ceil(ceil(w / k) / nSM));\n";
  Buffer.contents b
