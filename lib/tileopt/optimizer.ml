module Model = Hextime_core.Model

type evaluated = { shape : Space.shape; prediction : Model.prediction }

let evaluate_space params ~citer problem =
  Space.shapes params problem
  |> List.filter_map (fun shape ->
         let cfg = Space.to_config shape ~threads:[| 128 |] in
         match Model.predict params ~citer problem cfg with
         | Ok prediction -> Some { shape; prediction }
         | Error _ -> None)

let best = function
  | [] -> invalid_arg "Optimizer.best: empty space"
  | e :: rest ->
      List.fold_left
        (fun acc x ->
          if x.prediction.Model.talg < acc.prediction.Model.talg then x
          else acc)
        e rest

let within_fraction ~frac evaluated =
  if frac < 0.0 then invalid_arg "Optimizer.within_fraction: negative frac";
  match evaluated with
  | [] -> []
  | _ ->
      let b = (best evaluated).prediction.Model.talg in
      evaluated
      |> List.filter (fun e -> e.prediction.Model.talg <= (1.0 +. frac) *. b)
      |> List.sort (fun a b ->
             Float.compare a.prediction.Model.talg b.prediction.Model.talg)

let candidate_count ~frac evaluated =
  List.length (within_fraction ~frac evaluated)
