(** Tile-size selection strategies compared in Section 6.2 / Figure 6.

    Every strategy returns the configuration it selects together with its
    measured performance and how many candidate executions it had to pay
    for — the point of the paper being that [Model_top10] reaches the best
    performance while exploring a small candidate set. *)

type outcome = {
  strategy : string;
  config : Hextime_tiling.Config.t;
  measurement : Runner.measurement;
  predicted_s : float option;  (** model's T_alg when the strategy used it *)
  explored : int;  (** number of configurations actually executed *)
}

type context = {
  arch : Hextime_gpu.Arch.t;
  params : Hextime_core.Params.t;
  citer : float;
  problem : Hextime_stencil.Problem.t;
}

val hhc_default : context -> (outcome, string) result
(** The HHC compiler's untuned default tile sizes (no search at all). *)

val baseline_best : context -> (outcome, string) result
(** Best of the ~850 baseline data points of Section 5.1 (footprint-
    maximising heuristic plus thread sweep). *)

val model_optimal : context -> (outcome, string) result
(** The shape minimising predicted T_alg, with only its thread count tuned
    empirically.  Figure 6 shows this alone is poor: the model's blind spots
    (registers, threads) matter at the very bottom of the objective. *)

val model_top10 : context -> (outcome, string) result
(** All shapes within 10% of the predicted minimum, crossed with thread
    candidates, executed, best kept (the paper's proposed procedure). *)

val exhaustive : ?max_configs:int -> context -> (outcome, string) result
(** Oracle: execute the whole feasible space (deterministically
    stride-sampled to [max_configs], default 5000 — the paper notes a truly
    exhaustive sweep is impractical even for them). *)

val all :
  ?max_configs:int -> context -> (string * (outcome, string) result) list
(** Every strategy, in Figure 6's order. *)
