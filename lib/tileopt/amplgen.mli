(** AMPL emission of the tile-size optimization problem (Equation 31).

    Section 6.1 reports encoding the problem in AMPL and handing it to
    non-linear solvers (Bonmin et al.) before settling on exhaustive
    enumeration.  This module reproduces that artifact: it renders the
    objective T_alg and the feasibility constraints for a concrete problem
    instance as an AMPL model, so the experiment can be repeated with any
    AMPL-compatible solver.  (We do not ship a solver; the enumeration in
    {!Optimizer} is the paper's — and our — production path.) *)

val emit :
  Hextime_core.Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  string
(** The AMPL model text for one problem instance.  Raises
    [Invalid_argument] for non-positive [citer]. *)
