(** Enumeration of the feasible tile-size space of Equation 31.

    A {!shape} is a tile-size tuple without thread counts: the model's
    objective T_alg does not depend on threads-per-block (a deliberate
    omission, Section 7), so optimization enumerates shapes and thread
    counts are chosen empirically afterwards ({!Strategies}). *)

type shape = { t_t : int; t_s : int array }

val shapes :
  Hextime_core.Params.t -> Hextime_stencil.Problem.t -> shape list
(** All shapes satisfying Equation 31's structural and capacity constraints:
    t_t even, innermost tile size a multiple of 32 (for rank >= 2), every
    tile within the problem extent, and M_tile within the per-block
    shared-memory cap.  The grid covers t_t up to 64, the hexagonal t_s up
    to 128 and inner sizes up to 512, which comfortably contains the
    capacity-feasible region for the architectures studied. *)

val axes : Hextime_stencil.Problem.t -> int array * int array array
(** [(t_t candidates, per-dimension tile-size candidates)] — the sorted
    product lattice that {!shapes} filters.  Every shape {!shapes} returns
    is a point of this lattice; the lattice additionally contains the
    capacity-infeasible points (shared-memory footprint over the per-block
    cap) that {!shapes} drops.  {!Hextime_analysis.Hexabs} proves facts
    about whole sub-boxes of exactly this lattice. *)

val to_config : shape -> threads:int array -> Hextime_tiling.Config.t
(** Attach thread counts; raises [Invalid_argument] if invalid. *)

val thread_candidates : int list
(** The 10 thread counts explored per tile shape (Section 5.1 explores 10
    values of n_thr per combination). *)

val id : shape -> string
val pp : Format.formatter -> shape -> unit
