(** Naive double-buffered reference executor.

    This is the semantic ground truth: every tiled execution schedule must
    produce bit-identical results (the update expression is evaluated with
    the same operation order, so exact equality is the right check). *)

val step : Stencil.t -> src:Grid.t -> dst:Grid.t -> unit
(** Apply one time step: interior points of [dst] receive the stencil update
    read from [src]; boundary points (within [order] of an edge) are copied
    unchanged (Dirichlet boundary). Extents of [src] and [dst] must match the
    stencil rank. *)

val run : Problem.t -> init:Grid.t -> Grid.t
(** Execute the whole problem from initial state [init] (extents must equal
    the problem's space extents) and return the final grid. *)

val run_history : Problem.t -> init:Grid.t -> Grid.t array
(** Like {!run} but returns all [time + 1] states, index 0 being [init].
    Intended for small correctness tests only. *)

val default_init : Problem.t -> Grid.t
(** A deterministic, non-trivial initial state (a mix of smooth waves and a
    point impulse) used across tests, examples and benchmarks. *)
