type precision = F32 | F64

type t = {
  stencil : Stencil.t;
  space : int array;
  time : int;
  precision : precision;
}

let make ?(precision = F32) stencil ~space ~time =
  if Array.length space <> stencil.Stencil.rank then
    invalid_arg "Problem.make: space rank mismatch";
  Array.iter
    (fun s ->
      if s < (2 * stencil.Stencil.order) + 1 then
        invalid_arg "Problem.make: extent too small for stencil order")
    space;
  if time < 1 then invalid_arg "Problem.make: time must be >= 1";
  { stencil; space = Array.copy space; time; precision }

let word_factor p = match p.precision with F32 -> 1 | F64 -> 2

let points_per_step p =
  let b = 2 * p.stencil.Stencil.order in
  Array.fold_left (fun acc s -> acc * (s - b)) 1 p.space

let total_updates p = points_per_step p * p.time

let total_flops p =
  float_of_int (total_updates p) *. float_of_int p.stencil.Stencil.flops

let id p =
  let dims =
    String.concat "x" (Array.to_list (Array.map string_of_int p.space))
  in
  Printf.sprintf "%s:%sxT%d%s" p.stencil.Stencil.name dims p.time
    (match p.precision with F32 -> "" | F64 -> "-f64")

let pp ppf p = Format.pp_print_string ppf (id p)

let mix_pricing h p =
  let module D = Hextime_prelude.Det_hash in
  let h = Stencil.mix_pricing h p.stencil in
  let h = Array.fold_left D.mix_int h p.space in
  let h = D.mix_int h p.time in
  D.mix_int h (match p.precision with F32 -> 0 | F64 -> 1)

let paper_sizes_2d =
  List.concat_map
    (fun s ->
      List.map (fun t -> ([| s; s |], t)) [ 1024; 2048; 4096; 8192; 16384 ])
    [ 4096; 8192 ]

let paper_sizes_3d =
  (* 3 space sizes x 5 T values restricted to T <= S (as stated in Section 5)
     gives exactly the paper's 12 combinations: 3 for 384^3, 4 for 512^3 and
     5 for 640^3. *)
  List.concat_map
    (fun s ->
      List.filter_map
        (fun t -> if t <= s then Some ([| s; s; s |], t) else None)
        [ 128; 256; 384; 512; 640 ])
    [ 384; 512; 640 ]
