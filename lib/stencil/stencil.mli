(** Stencil definitions: the update rule applied at every space point and
    time step (Equation 1 of the paper), together with the static facts the
    tiling engine, the analytical model and the GPU simulator need about it
    (dependence footprint, arithmetic cost, load count).

    All stencils here are Jacobi-style: the value at time [t] depends only on
    values at time [t - 1], which is the class the HHC compiler handles. *)

type tap = { offset : int array; weight : float }
(** One neighbourhood point: a relative space offset (length = rank) and its
    coefficient. *)

type rule =
  | Linear of { taps : tap list; constant : float }
      (** The convolutional form of Equation 1. *)
  | Nonlinear of {
      offsets : int array list;
      eval : (int array -> float) -> float;
          (** [eval read] computes the new value; [read off] returns the
              neighbour at relative offset [off] and time [t - 1].  [eval]
              must only read offsets listed in [offsets]. *)
    }
      (** Non-convolutional bodies such as the Gradient benchmark, whose
          update involves squares and a square root. *)

type t = private {
  name : string;
  rank : int;  (** number of space dimensions: 1, 2 or 3 *)
  order : int;  (** dependence radius: max |offset component| *)
  rule : rule;
  flops : int;  (** floating point operations per updated point *)
  loads : int;  (** distinct values read per updated point *)
  transcendentals : int;  (** sqrt/div-class operations per point (cost extra) *)
}

val make :
  name:string -> rank:int -> ?transcendentals:int -> ?flops:int -> rule -> t
(** Build a stencil; [order] and [loads] are derived from the rule, and
    [flops] defaults to the natural operation count of the rule (one multiply
    and one add per tap, plus the constant add if non-zero).  Raises
    [Invalid_argument] if any offset rank differs from [rank] or if the rule
    reads no points. *)

val offsets : t -> int array list
(** The dependence footprint (relative offsets read at time [t-1]). *)

val mix_pricing :
  Hextime_prelude.Det_hash.t -> t -> Hextime_prelude.Det_hash.t
(** Fold the stencil's pricing-relevant structure (rank, order, operation
    counts, and the rule's taps/offsets) into a digest state.  For
    [Linear] rules the name is {e excluded} — a renamed but structurally
    identical stencil digests the same; for [Nonlinear] rules the name is
    included, standing in for the opaque [eval] closure. *)

val apply : t -> (int array -> float) -> float
(** [apply s read] evaluates the update rule given a neighbour reader. *)

(** {1 The paper's benchmarks (Section 5)} *)

val jacobi1d : t
val jacobi2d : t
val heat2d : t
val laplacian2d : t
val gradient2d : t
val jacobi3d : t
val heat3d : t
val laplacian3d : t

(** {1 Higher-order extensions (Section 7, "Generality")} *)

val jacobi2d_order2 : t
val heat3d_order2 : t

val advection2d : t
(** First-order upwind advection: an asymmetric (half-cone) neighbourhood;
    the tiling treats it with its full dependence radius, which the
    executor's dependence checker confirms is safe. *)

val benchmarks_2d : t list
(** The four 2D benchmarks used in the paper's evaluation. *)

val benchmarks_3d : t list
(** The two 3D benchmarks used in the paper's evaluation. *)

val all_benchmarks : t list

val find : string -> t
(** Look up any built-in stencil by name; raises [Not_found]. *)

val pp : Format.formatter -> t -> unit
