type t = { dims : int array; data : float array }

let create dims =
  let rank = Array.length dims in
  if rank < 1 || rank > 3 then invalid_arg "Grid.create: rank must be 1..3";
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Grid.create: non-positive extent")
    dims;
  let size = Array.fold_left ( * ) 1 dims in
  { dims = Array.copy dims; data = Array.make size 0.0 }

let dims g = Array.copy g.dims
let rank g = Array.length g.dims
let size g = Array.length g.data

let require_rank g r op =
  if Array.length g.dims <> r then
    invalid_arg (Printf.sprintf "Grid.%s: grid has rank %d" op (Array.length g.dims))

let in_bounds g idx =
  Array.length idx = Array.length g.dims
  && Array.for_all2 (fun i d -> i >= 0 && i < d) idx g.dims
  [@@warning "-32"]

(* Array.for_all2 needs OCaml >= 4.11; fine on 5.1. *)

let linear_of_index g idx =
  if not (in_bounds g idx) then invalid_arg "Grid: index out of bounds";
  match g.dims, idx with
  | [| _ |], [| i |] -> i
  | [| _; n1 |], [| i0; i1 |] -> (i0 * n1) + i1
  | [| _; n1; n2 |], [| i0; i1; i2 |] -> (((i0 * n1) + i1) * n2) + i2
  | _ -> assert false

let get g idx = g.data.(linear_of_index g idx)
let set g idx v = g.data.(linear_of_index g idx) <- v

let get1 g i =
  require_rank g 1 "get1";
  g.data.(i)

let set1 g i v =
  require_rank g 1 "set1";
  g.data.(i) <- v

let get2 g i j =
  require_rank g 2 "get2";
  let n1 = g.dims.(1) in
  if i < 0 || i >= g.dims.(0) || j < 0 || j >= n1 then
    invalid_arg "Grid.get2: out of bounds";
  Array.unsafe_get g.data ((i * n1) + j)

let set2 g i j v =
  require_rank g 2 "set2";
  let n1 = g.dims.(1) in
  if i < 0 || i >= g.dims.(0) || j < 0 || j >= n1 then
    invalid_arg "Grid.set2: out of bounds";
  Array.unsafe_set g.data ((i * n1) + j) v

let get3 g i j k =
  require_rank g 3 "get3";
  let n1 = g.dims.(1) and n2 = g.dims.(2) in
  if
    i < 0 || i >= g.dims.(0) || j < 0 || j >= n1 || k < 0 || k >= n2
  then invalid_arg "Grid.get3: out of bounds";
  Array.unsafe_get g.data ((((i * n1) + j) * n2) + k)

let set3 g i j k v =
  require_rank g 3 "set3";
  let n1 = g.dims.(1) and n2 = g.dims.(2) in
  if
    i < 0 || i >= g.dims.(0) || j < 0 || j >= n1 || k < 0 || k >= n2
  then invalid_arg "Grid.set3: out of bounds";
  Array.unsafe_set g.data ((((i * n1) + j) * n2) + k) v

let iter_indices g f =
  match g.dims with
  | [| n |] ->
      for i = 0 to n - 1 do
        f [| i |]
      done
  | [| n0; n1 |] ->
      for i = 0 to n0 - 1 do
        for j = 0 to n1 - 1 do
          f [| i; j |]
        done
      done
  | [| n0; n1; n2 |] ->
      for i = 0 to n0 - 1 do
        for j = 0 to n1 - 1 do
          for k = 0 to n2 - 1 do
            f [| i; j; k |]
          done
        done
      done
  | _ -> assert false

let fill g f = iter_indices g (fun idx -> set g idx (f idx))
let copy g = { dims = Array.copy g.dims; data = Array.copy g.data }

let require_same_dims a b op =
  if a.dims <> b.dims then invalid_arg ("Grid." ^ op ^ ": extent mismatch")

let blit ~src ~dst =
  require_same_dims src dst "blit";
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let map2 f a b =
  require_same_dims a b "map2";
  { dims = Array.copy a.dims; data = Array.map2 f a.data b.data }

let max_abs_diff a b =
  require_same_dims a b "max_abs_diff";
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = abs_float (x -. b.data.(i)) in
      if d > !worst then worst := d)
    a.data;
  !worst

let equal ?(eps = 0.0) a b = a.dims = b.dims && max_abs_diff a b <= eps
let unsafe_data g = g.data
