(** A problem instance: which stencil, over which space extents, for how many
    time steps.  These are the "problem parameters" (class P) of Table 1. *)

type precision = F32 | F64
(** Element precision.  The paper's evaluation is single precision (4-byte
    words, the unit of M_SM and M_tile); double precision doubles every
    footprint and, on Maxwell-class machines, pays a large arithmetic
    throughput penalty. *)

type t = private {
  stencil : Stencil.t;
  space : int array;  (** S_1 .. S_k, one extent per space dimension *)
  time : int;  (** T, number of time steps *)
  precision : precision;
}

val make :
  ?precision:precision -> Stencil.t -> space:int array -> time:int -> t
(** [precision] defaults to [F32].  Raises [Invalid_argument] when the
    extents do not match the stencil rank, any extent is too small to
    contain one interior point, or [time < 1]. *)

val word_factor : t -> int
(** 4-byte words per element: 1 for [F32], 2 for [F64]. *)

val points_per_step : t -> int
(** Number of interior (updated) points per time step. *)

val total_updates : t -> int
(** Interior points times time steps. *)

val total_flops : t -> float
(** Floating-point operations for the whole computation, used for GFLOP/s. *)

val id : t -> string
(** A short stable identifier, e.g. ["heat2d:4096x4096xT2048"]. *)

val pp : Format.formatter -> t -> unit

val mix_pricing :
  Hextime_prelude.Det_hash.t -> t -> Hextime_prelude.Det_hash.t
(** Fold the instance's pricing inputs (stencil structure via
    {!Stencil.mix_pricing}, extents, time steps, precision) into a digest
    state — the problem component of the sweep cache's incremental keys. *)

(** {1 The paper's problem-size grids (Section 5)} *)

val paper_sizes_2d : (int array * int) list
(** The 10 (space, T) combinations used for every 2D benchmark: space
    4096^2 and 8192^2, T in 1024, 2048, 4096, 8192, 16384. *)

val paper_sizes_3d : (int array * int) list
(** The 12 (space, T) combinations for 3D benchmarks: space 384^3, 512^3,
    640^3 with T in 128, 256, 384, 512, 640 subject to T <= S (the paper
    explores 12 combinations in total). *)
