type tap = { offset : int array; weight : float }

type rule =
  | Linear of { taps : tap list; constant : float }
  | Nonlinear of {
      offsets : int array list;
      eval : (int array -> float) -> float;
    }

type t = {
  name : string;
  rank : int;
  order : int;
  rule : rule;
  flops : int;
  loads : int;
  transcendentals : int;
}

let rule_offsets = function
  | Linear { taps; _ } -> List.map (fun tap -> tap.offset) taps
  | Nonlinear { offsets; _ } -> offsets

let natural_flops = function
  | Linear { taps; constant } ->
      (* one multiply and one add per tap, minus the first add, plus the
         trailing constant add when present *)
      (2 * List.length taps) - 1 + (if constant <> 0.0 then 1 else 0)
  | Nonlinear { offsets; _ } ->
      (* conservative default; nonlinear stencils normally pass ~flops *)
      2 * List.length offsets

let make ~name ~rank ?(transcendentals = 0) ?flops rule =
  let offsets = rule_offsets rule in
  if offsets = [] then invalid_arg "Stencil.make: rule reads no points";
  List.iter
    (fun off ->
      if Array.length off <> rank then
        invalid_arg "Stencil.make: offset rank mismatch")
    offsets;
  let order =
    List.fold_left
      (fun acc off -> Array.fold_left (fun a c -> max a (abs c)) acc off)
      0 offsets
  in
  if order = 0 then invalid_arg "Stencil.make: pointwise rule is not a stencil";
  let flops = match flops with Some f -> f | None -> natural_flops rule in
  {
    name;
    rank;
    order;
    rule;
    flops;
    loads = List.length offsets;
    transcendentals;
  }

let offsets s = rule_offsets s.rule

(* Pricing digest: the structure the model and simulator price from —
   footprint, arithmetic counts and (for linear rules) the exact taps.
   The name is folded in only for [Nonlinear] rules, whose [eval] closure
   is opaque: there the name is the only available discriminator between
   two rules with identical offsets (changes to a built-in eval body are
   covered by the sweep's code-version tag instead). *)
let mix_pricing h s =
  let module D = Hextime_prelude.Det_hash in
  let mix_offset h off = Array.fold_left D.mix_int h off in
  let h = D.mix_int h s.rank in
  let h = D.mix_int h s.order in
  let h = D.mix_int h s.flops in
  let h = D.mix_int h s.loads in
  let h = D.mix_int h s.transcendentals in
  match s.rule with
  | Linear { taps; constant } ->
      let h = D.mix_int h 0 in
      let h = D.mix_float h constant in
      List.fold_left
        (fun h { offset; weight } -> D.mix_float (mix_offset h offset) weight)
        h taps
  | Nonlinear { offsets; _ } ->
      let h = D.mix_int h 1 in
      let h = D.mix_string h s.name in
      List.fold_left mix_offset h offsets

let apply s read =
  match s.rule with
  | Linear { taps; constant } ->
      List.fold_left
        (fun acc { offset; weight } -> acc +. (weight *. read offset))
        constant taps
  | Nonlinear { eval; _ } -> eval read

(* --- benchmark definitions ------------------------------------------- *)

let tap offset weight = { offset; weight }

let star1d w_center w_side =
  [ tap [| -1 |] w_side; tap [| 0 |] w_center; tap [| 1 |] w_side ]

let star2d w_center w_side =
  [
    tap [| 0; 0 |] w_center;
    tap [| -1; 0 |] w_side;
    tap [| 1; 0 |] w_side;
    tap [| 0; -1 |] w_side;
    tap [| 0; 1 |] w_side;
  ]

let star3d w_center w_side =
  [
    tap [| 0; 0; 0 |] w_center;
    tap [| -1; 0; 0 |] w_side;
    tap [| 1; 0; 0 |] w_side;
    tap [| 0; -1; 0 |] w_side;
    tap [| 0; 1; 0 |] w_side;
    tap [| 0; 0; -1 |] w_side;
    tap [| 0; 0; 1 |] w_side;
  ]

let jacobi1d =
  make ~name:"jacobi1d" ~rank:1
    (Linear { taps = star1d (1.0 /. 3.0) (1.0 /. 3.0); constant = 0.0 })

let jacobi2d =
  make ~name:"jacobi2d" ~rank:2
    (Linear { taps = star2d 0.2 0.2; constant = 0.0 })

(* Explicit heat equation: u + alpha * (laplacian u).  Slightly more work
   than Jacobi because the coefficients differ between centre and sides. *)
let heat_alpha = 0.125

let heat2d =
  make ~name:"heat2d" ~rank:2 ~flops:10
    (Linear
       { taps = star2d (1.0 -. (4.0 *. heat_alpha)) heat_alpha; constant = 0.0 })

let laplacian2d =
  make ~name:"laplacian2d" ~rank:2 ~flops:8
    (Linear { taps = star2d (-4.0) 1.0; constant = 0.0 })

let gradient2d =
  let offsets = [ [| -1; 0 |]; [| 1; 0 |]; [| 0; -1 |]; [| 0; 1 |] ] in
  let eval read =
    let dx = read [| 1; 0 |] -. read [| -1; 0 |] in
    let dy = read [| 0; 1 |] -. read [| 0; -1 |] in
    sqrt ((dx *. dx) +. (dy *. dy) +. 1e-12)
  in
  make ~name:"gradient2d" ~rank:2 ~flops:16 ~transcendentals:1
    (Nonlinear { offsets; eval })

let jacobi3d =
  make ~name:"jacobi3d" ~rank:3
    (Linear { taps = star3d (1.0 /. 7.0) (1.0 /. 7.0); constant = 0.0 })

let heat3d =
  make ~name:"heat3d" ~rank:3 ~flops:14
    (Linear
       { taps = star3d (1.0 -. (6.0 *. heat_alpha)) heat_alpha; constant = 0.0 })

let laplacian3d =
  make ~name:"laplacian3d" ~rank:3 ~flops:12
    (Linear { taps = star3d (-6.0) 1.0; constant = 0.0 })

let jacobi2d_order2 =
  let taps =
    [
      tap [| 0; 0 |] (1.0 /. 9.0);
      tap [| -1; 0 |] (1.0 /. 9.0);
      tap [| 1; 0 |] (1.0 /. 9.0);
      tap [| 0; -1 |] (1.0 /. 9.0);
      tap [| 0; 1 |] (1.0 /. 9.0);
      tap [| -2; 0 |] (1.0 /. 9.0);
      tap [| 2; 0 |] (1.0 /. 9.0);
      tap [| 0; -2 |] (1.0 /. 9.0);
      tap [| 0; 2 |] (1.0 /. 9.0);
    ]
  in
  make ~name:"jacobi2d_order2" ~rank:2 (Linear { taps; constant = 0.0 })

let heat3d_order2 =
  let a = heat_alpha /. 2.0 in
  let axis i sign dist =
    let off = [| 0; 0; 0 |] in
    off.(i) <- sign * dist;
    off
  in
  let taps =
    tap [| 0; 0; 0 |] (1.0 -. (12.0 *. a))
    :: List.concat_map
         (fun i ->
           [
             tap (axis i (-1) 1) a;
             tap (axis i 1 1) a;
             tap (axis i (-1) 2) a;
             tap (axis i 1 2) a;
           ])
         [ 0; 1; 2 ]
  in
  make ~name:"heat3d_order2" ~rank:3 ~flops:28 (Linear { taps; constant = 0.0 })

(* First-order upwind advection: an asymmetric neighbourhood (the wind blows
   from the low-index side).  Exercises the tiling engine's conservatism:
   the dependence radius is still 1, but only half the cone is used. *)
let advection2d =
  let cx = 0.4 and cy = 0.3 in
  let taps =
    [
      tap [| 0; 0 |] (1.0 -. cx -. cy);
      tap [| -1; 0 |] cx;
      tap [| 0; -1 |] cy;
    ]
  in
  make ~name:"advection2d" ~rank:2 ~flops:6 (Linear { taps; constant = 0.0 })

let benchmarks_2d = [ jacobi2d; heat2d; laplacian2d; gradient2d ]
let benchmarks_3d = [ heat3d; laplacian3d ]

let all_benchmarks =
  [ jacobi1d; jacobi3d; jacobi2d_order2; heat3d_order2; advection2d ]
  @ benchmarks_2d @ benchmarks_3d

let find name =
  match List.find_opt (fun s -> s.name = name) all_benchmarks with
  | Some s -> s
  | None -> raise Not_found

let pp ppf s =
  Format.fprintf ppf "%s (%dD, order %d, %d taps, %d flops/pt)" s.name s.rank
    s.order s.loads s.flops
