let step stencil ~src ~dst =
  let rank = Stencil.(stencil.rank) in
  if Grid.rank src <> rank || Grid.rank dst <> rank then
    invalid_arg "Reference.step: rank mismatch";
  if Grid.dims src <> Grid.dims dst then
    invalid_arg "Reference.step: extent mismatch";
  let order = Stencil.(stencil.order) in
  let dims = Grid.dims src in
  (* boundary points keep their previous value *)
  Grid.blit ~src ~dst;
  match rank with
  | 1 ->
      let n = dims.(0) in
      for i = order to n - 1 - order do
        let read off = Grid.get1 src (i + off.(0)) in
        Grid.set1 dst i (Stencil.apply stencil read)
      done
  | 2 ->
      let n0 = dims.(0) and n1 = dims.(1) in
      for i = order to n0 - 1 - order do
        for j = order to n1 - 1 - order do
          let read off = Grid.get2 src (i + off.(0)) (j + off.(1)) in
          Grid.set2 dst i j (Stencil.apply stencil read)
        done
      done
  | 3 ->
      let n0 = dims.(0) and n1 = dims.(1) and n2 = dims.(2) in
      for i = order to n0 - 1 - order do
        for j = order to n1 - 1 - order do
          for k = order to n2 - 1 - order do
            let read off =
              Grid.get3 src (i + off.(0)) (j + off.(1)) (k + off.(2))
            in
            Grid.set3 dst i j k (Stencil.apply stencil read)
          done
        done
      done
  | _ -> assert false

let check_init problem init =
  if Grid.dims init <> Problem.(problem.space) then
    invalid_arg "Reference: init extents do not match problem"

let run problem ~init =
  check_init problem init;
  let src = ref (Grid.copy init) in
  let dst = ref (Grid.create (Grid.dims init)) in
  for _ = 1 to Problem.(problem.time) do
    step Problem.(problem.stencil) ~src:!src ~dst:!dst;
    let tmp = !src in
    src := !dst;
    dst := tmp
  done;
  !src

let run_history problem ~init =
  check_init problem init;
  let time = Problem.(problem.time) in
  let states = Array.make (time + 1) init in
  states.(0) <- Grid.copy init;
  for t = 1 to time do
    let dst = Grid.create (Grid.dims init) in
    step Problem.(problem.stencil) ~src:states.(t - 1) ~dst;
    states.(t) <- dst
  done;
  states

let default_init problem =
  let g = Grid.create Problem.(problem.space) in
  let dims = Grid.dims g in
  let rank = Array.length dims in
  Grid.fill g (fun idx ->
      let wave =
        let acc = ref 0.0 in
        for d = 0 to rank - 1 do
          let x = float_of_int idx.(d) /. float_of_int dims.(d) in
          acc := !acc +. sin ((6.28318530717958648 *. x) +. float_of_int d)
        done;
        !acc
      in
      let centred =
        Array.for_all2 (fun i n -> i = n / 2) idx dims
      in
      (0.5 *. wave) +. (if centred then 10.0 else 0.0));
  g
