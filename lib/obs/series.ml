(* hexlens: per-metric, per-experiment time series over the run ledger.

   A series is the trajectory of one scalar metric for one experiment
   group: every ledger entry of the right kind that carries the metric
   contributes one point, in file (= time) order.  The extraction is the
   read side of the regression observatory — Alert runs its detectors
   over these, `hextime watch` renders them.

   Grouping: runs of the same kind can describe different experiments
   (validate records carry an "experiment" label, audit records a "key"
   digest, bench records a "scale").  The first of those labels present
   on an entry becomes the series group, so per-experiment trajectories
   never interleave. *)

type point = {
  p_time : float;
  p_value : float;
  p_git_rev : string;
  p_code_version : string;
}

type t = {
  s_kind : string;
  s_group : string;
  s_metric : string;
  s_points : point list;  (* oldest first *)
}

let key s = Printf.sprintf "%s/%s:%s" s.s_kind s.s_group s.s_metric

(* Label priority for the group discriminator.  "experiment" pins a
   validate/campaign record to its stencil×machine instance, "key" is the
   audit record's request digest, "scale" separates ci/quick/paper bench
   runs. *)
let group_labels = [ "experiment"; "key"; "scale" ]

let group_of (e : Ledger.entry) =
  let rec first = function
    | [] -> ""
    | l :: rest -> (
        match List.assoc_opt l e.Ledger.labels with
        | Some v -> v
        | None -> first rest)
  in
  first group_labels

(* The default watched set: the longitudinal claims of the paper (model
   accuracy, arg-min band membership) and the operational figures the
   gates care about (sweep throughput, serving latency).  Deliberately
   curated — every extra series is false-positive surface.  The fork- and
   domains-backend throughput variants stay out: bench-compare gates them
   per-run, and their run-to-run spread is a property of the container,
   not the code. *)
let default_watch =
  [
    ( "bench",
      [
        "cold_sweep_points_per_sec";
        "serve_requests_per_sec";
        "serve_warm_p99_us";
        "serve_metrics_scrape_us";
      ] );
    ( "validate",
      [
        "rmse_top";
        "rmse_all";
        "correlation_top";
        "argmin_quality";
        "argmin_in_band";
        "points_per_sec";
      ] );
    ( "campaign",
      [ "rmse_top"; "rmse_all"; "correlation_top"; "argmin_quality" ] );
    ("audit", [ "in_band"; "rel_err" ]);
    ("serve", [ "drift_alarm"; "requests_per_sec" ]);
  ]

let extract ?(watch = default_watch) entries =
  (* (kind, group, metric) -> points, newest first while building *)
  let tbl : (string * string * string, point list) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun (e : Ledger.entry) ->
      (* alert records are detector output, never detector input: scanning
         them back in would make repeated watch runs self-exciting *)
      if e.Ledger.kind <> "alert" then
        match List.assoc_opt e.Ledger.kind watch with
        | None -> ()
        | Some metrics ->
            let group = group_of e in
            List.iter
              (fun m ->
                match Ledger.metric e m with
                | None -> ()
                | Some v ->
                    let k = (e.Ledger.kind, group, m) in
                    let p =
                      {
                        p_time = e.Ledger.time_unix;
                        p_value = v;
                        p_git_rev = e.Ledger.git_rev;
                        p_code_version = e.Ledger.code_version;
                      }
                    in
                    (match Hashtbl.find_opt tbl k with
                    | None ->
                        order := k :: !order;
                        Hashtbl.replace tbl k [ p ]
                    | Some ps -> Hashtbl.replace tbl k (p :: ps)))
              metrics)
    entries;
  List.rev_map
    (fun ((kind, group, metric) as k) ->
      {
        s_kind = kind;
        s_group = group;
        s_metric = metric;
        s_points = List.rev (Hashtbl.find tbl k);
      })
    !order

let values s =
  Array.of_list (List.map (fun p -> p.p_value) s.s_points)

let length s = List.length s.s_points

let last s =
  match List.rev s.s_points with [] -> None | p :: _ -> Some p
