(** Process-wide metrics registry: named counters, gauges and log2-bucketed
    histograms.

    Counters are always on — incrementing one is a single lock-free
    [Atomic] add, so hot paths (simulator pricing, cache lookups, eventsim
    fast-forward) register their handles at module-load time and bump them
    unconditionally, from any domain.  The registry only pays for rendering
    when a [snapshot] is taken.

    The registry is domain-safe: counters are [Atomic]-backed and gauge
    sets, histogram observations, registration and snapshots serialise
    through one internal mutex, so the domains-based sweep pool
    ([Parsweep.Dpool]) produces exactly the totals the serial and forked
    paths produce.

    Snapshots are pure, marshal-safe data.  A forked worker calls [reset]
    when it starts serving (dropping counts inherited from the parent
    image), then ships [snapshot () ] back with each result; the
    coordinator [absorb]s them, which fixes the classic fork-loses-counters
    hole.  Domain workers need no such dance — they share the registry. *)

type counter
type gauge
type histogram

(** Find-or-create by name.  Handles are interned: two calls with the same
    name return the same live metric. *)
val counter : string -> counter

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val value : counter -> int
val set : gauge -> float -> unit

(** [observe h v] records [v] into the log2 bucket holding it (bucket edges
    at powers of two from 2^-64 to 2^64; out-of-range and non-finite values
    clamp to the edge buckets). *)
val observe : histogram -> float -> unit

(** {1 Bucket geometry}

    Shared by consumers that build histogram-shaped data outside the
    registry (per-window SLO accumulators) or re-render the buckets in
    another exposition format (OpenMetrics cumulative buckets). *)

val bucket_count : int
(** Number of log2 buckets ([129]). *)

val bucket_of : float -> int
(** Index of the bucket an observation lands in (edge buckets absorb
    out-of-range and non-finite values). *)

val bucket_upper : int -> float
(** Exclusive upper bound of bucket [i] ([2^(i-64)]); observations in
    bucket [i] satisfy [bucket_upper (i-1) <= v < bucket_upper i], modulo
    the edge-bucket clamping above. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (int * int) list;  (** (bucket index, count), sparse, sorted *)
}

type snapshot = {
  snap_counters : (string * int) list;   (** sorted by name *)
  snap_gauges : (string * float) list;   (** sorted by name; only set gauges *)
  snap_histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val empty : snapshot
val snapshot : unit -> snapshot

(** Zero every registered metric (handles stay valid). *)
val reset : unit -> unit

(** Pointwise combination: counters and histograms add; for gauges the
    right operand wins (a gauge is "last observed value"). *)
val merge : snapshot -> snapshot -> snapshot

(** Add a snapshot into the live registry (counters/histograms accumulate,
    gauges overwrite).  This is how the sweep coordinator folds worker
    snapshots back in. *)
val absorb : snapshot -> unit

val quantile : hist_snapshot -> float -> float
(** [quantile hs q] estimates the [q]-quantile ([0.0 <= q <= 1.0]) of the
    recorded observations from the log2 buckets: rank-based bucket walk
    with geometric interpolation inside the covering bucket, clamped to
    the exactly-known [hs_min, hs_max].  The relative error is bounded by
    the bucket ratio (2x).  [Float.nan] on an empty histogram or an
    out-of-range [q] — never an infinity leaked from the min/max
    sentinels; Minijson renders it deterministically as ["NaN"], so JSON
    consumers see a stable shape.  [q = 0.0] returns [hs_min] and
    [q = 1.0] returns [hs_max] exactly. *)

val quantiles : (string * float) list
(** The quantiles rendered by {!to_json} and {!render}:
    [("p50", 0.5); ("p90", 0.9); ("p99", 0.99)]. *)

val find_counter : snapshot -> string -> int option
val to_json : snapshot -> Hextime_prelude.Minijson.t

(** Human-readable one-metric-per-line dump (sorted, deterministic). *)
val render : snapshot -> string
