(** hexwatch: live sweep heartbeats.

    A long sweep (108k points at paper scale) used to be silent for its
    whole runtime.  The sweep engine now drives one {!t} per sweep:
    every completion {!tick}s it, and — throttled to {!interval_s} — the
    heartbeat publishes

    - {!Metrics} gauges ([sweep.points_done], [sweep.points_total],
      [sweep.points_per_sec], [sweep.eta_seconds], [pool.workers_alive],
      [pool.workers_busy]) — always, they are cheap and feed the ledger's
      final snapshot;
    - a one-line TTY status ([\r]-rewritten on stderr) — only when
      rendering is {!enabled};
    - an instant trace event ([hexwatch.heartbeat]) when tracing is on.

    Published rates and ETAs are always finite: ticks landing within the
    clock's granularity of the sweep start (instant warm-cache answers)
    report a rate of 0 rather than dividing by a near-zero elapsed time,
    and an unknown total (0) renders a bare count, never a percentage.

    Rendering is {b off unless stderr is a TTY} (overridable with
    [$HEXTIME_PROGRESS=1]/[0] or {!enable}/{!disable}), and always writes
    to stderr: stdout and CSV artifacts stay byte-identical with
    heartbeats on — CI [cmp]s them, as it does for [--profile]. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val auto_enable : unit -> unit
(** The CLI policy: enabled iff stderr is a TTY, with [$HEXTIME_PROGRESS]
    (["1"]/["0"]) taking precedence either way. *)

val interval_s : float
(** Minimum seconds between emissions (0.5). *)

type t

val create : ?total:int -> label:string -> unit -> t
(** [total = 0] (the default) renders a spinner-style count without an
    ETA. *)

val tick : ?workers_alive:int -> ?workers_busy:int -> t -> done_:int -> unit
(** Record progress; emits at most once per {!interval_s} (plus always on
    the final point when [total] is known). *)

val finish : t -> unit
(** Clear the status line (when one was rendered) and publish final
    gauges.  Idempotent. *)
