module Minijson = Hextime_prelude.Minijson

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : string;  (* "X" complete, "B"/"E" begin/end, "i" instant *)
  ev_ts_us : float;
  ev_dur_us : float;  (* meaningful for "X" only; 0 otherwise *)
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * string) list;
}

(* Wall-clock epoch captured at module load.  Forked workers inherit it, so
   parent and worker timestamps share one time base and a merged trace lays
   the workers out side by side in Perfetto. *)
let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let enabled_flag = ref false
let enable () = enabled_flag := true
let disable () = enabled_flag := false
let enabled () = !enabled_flag

(* Collected events, newest first.  The buffer is shared by every domain of
   the process (the domains-based sweep pool records spans concurrently), so
   all mutation goes through [buffer_mutex]; the tid column carries the
   recording domain so a merged trace lays domain workers out side by side
   exactly as forked workers are laid out by pid. *)
let buffer : event list ref = ref []
let count = ref 0
let buffer_mutex = Mutex.create ()

let make ?(cat = "hextime") ?(args = []) ?(ph = "X") ?(dur_us = 0.0) ~ts_us
    name =
  {
    ev_name = name;
    ev_cat = cat;
    ev_ph = ph;
    ev_ts_us = ts_us;
    ev_dur_us = dur_us;
    ev_pid = Unix.getpid ();
    ev_tid = (Domain.self () :> int);
    ev_args = args;
  }

let emit ev =
  Mutex.protect buffer_mutex @@ fun () ->
  buffer := ev :: !buffer;
  incr count

let events () = Mutex.protect buffer_mutex (fun () -> List.rev !buffer)
let num_events () = Mutex.protect buffer_mutex (fun () -> !count)

let recent n =
  let rec take k = function
    | [] -> []
    | x :: xs -> if k = 0 then [] else x :: take (k - 1) xs
  in
  Mutex.protect buffer_mutex (fun () -> List.rev (take n !buffer))

let drain () =
  Mutex.protect buffer_mutex @@ fun () ->
  let evs = List.rev !buffer in
  buffer := [];
  count := 0;
  evs

let reset () =
  Mutex.protect buffer_mutex @@ fun () ->
  buffer := [];
  count := 0

let absorb evs = List.iter emit evs

let with_span ?cat ?args name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      let t1 = now_us () in
      let args = match args with None -> [] | Some thunk -> thunk () in
      emit (make ?cat ~args ~ph:"X" ~dur_us:(t1 -. t0) ~ts_us:t0 name)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ?cat ?(args = []) name =
  if !enabled_flag then
    emit (make ?cat ~args ~ph:"i" ~ts_us:(now_us ()) name)

(* --- export --------------------------------------------------------------- *)

let json_of_event ev =
  let base =
    [
      ("name", Minijson.Str ev.ev_name);
      ("cat", Minijson.Str ev.ev_cat);
      ("ph", Minijson.Str ev.ev_ph);
      ("ts", Minijson.Num ev.ev_ts_us);
      ("pid", Minijson.Num (float_of_int ev.ev_pid));
      ("tid", Minijson.Num (float_of_int ev.ev_tid));
    ]
  in
  let dur = if ev.ev_ph = "X" then [ ("dur", Minijson.Num ev.ev_dur_us) ] else [] in
  let args =
    match ev.ev_args with
    | [] -> []
    | kvs ->
        [ ("args", Minijson.Obj (List.map (fun (k, v) -> (k, Minijson.Str v)) kvs)) ]
  in
  Minijson.Obj (base @ dur @ args)

let to_json ?(extra = []) evs =
  Minijson.Obj
    (("traceEvents", Minijson.List (List.map json_of_event evs))
     :: ("displayTimeUnit", Minijson.Str "ms")
     :: extra)

let write_file ?extra path evs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Minijson.render (to_json ?extra evs));
      output_char oc '\n')

let render_event ev =
  let args =
    match ev.ev_args with
    | [] -> ""
    | kvs ->
        " " ^ String.concat " " (List.map (fun (k, v) -> k ^ ":" ^ v) kvs)
  in
  if ev.ev_ph = "X" then
    Printf.sprintf "[pid %d +%.0fus %.0fus] %s%s" ev.ev_pid ev.ev_ts_us
      ev.ev_dur_us ev.ev_name args
  else
    Printf.sprintf "[pid %d +%.0fus %s] %s%s" ev.ev_pid ev.ev_ts_us ev.ev_ph
      ev.ev_name args
