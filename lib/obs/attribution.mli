(** Cost attribution: breakdown of predicted seconds into the paper's
    Section 5 components.

    A [components] value answers "where does the predicted time go" for one
    kernel or sweep point; the accumulator aggregates labelled entries into
    a top-k table.  Producers (the analytical model, the simulator) live in
    their own libraries and guarantee that the component sum reconstructs
    their predicted total; this module only aggregates and renders. *)

type components = {
  compute : float;      (** c: per-thread compute iterations *)
  global_mem : float;   (** m': global-memory transfer *)
  shared_mem : float;   (** shared-memory traffic (0 when folded into compute) *)
  sync : float;         (** tau_sync / T_sync barrier cost *)
  launch : float;       (** kernel-launch overhead *)
  jitter : float;       (** simulator salted-replay adjustment; may be negative *)
}

val zero : components
val total : components -> float
val add : components -> components -> components
val scale : float -> components -> components

(** Stable (name, value) listing in paper order. *)
val to_list : components -> (string * float) list

val components_to_json : components -> Hextime_prelude.Minijson.t

(** {1 Aggregation} *)

type t

val create : unit -> t

(** [record acc label c] appends a labelled entry (labels need not be
    unique; entries keep insertion order). *)
val record : t -> string -> components -> unit

val entries : t -> (string * components) list
val totals : t -> components

(** Entries sorted by descending total, truncated to [k] (stable for
    ties). *)
val top_k : t -> int -> (string * components) list

(** {1 Rendering} *)

val render_components : ?title:string -> components -> string
val render_top_k : ?title:string -> t -> int -> string
val to_json : t -> Hextime_prelude.Minijson.t
