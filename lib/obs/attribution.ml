module Minijson = Hextime_prelude.Minijson
module Tabulate = Hextime_prelude.Tabulate

type components = {
  compute : float;
  global_mem : float;
  shared_mem : float;
  sync : float;
  launch : float;
  jitter : float;
}

let zero =
  {
    compute = 0.0;
    global_mem = 0.0;
    shared_mem = 0.0;
    sync = 0.0;
    launch = 0.0;
    jitter = 0.0;
  }

let total c =
  c.compute +. c.global_mem +. c.shared_mem +. c.sync +. c.launch +. c.jitter

let add a b =
  {
    compute = a.compute +. b.compute;
    global_mem = a.global_mem +. b.global_mem;
    shared_mem = a.shared_mem +. b.shared_mem;
    sync = a.sync +. b.sync;
    launch = a.launch +. b.launch;
    jitter = a.jitter +. b.jitter;
  }

let scale k c =
  {
    compute = k *. c.compute;
    global_mem = k *. c.global_mem;
    shared_mem = k *. c.shared_mem;
    sync = k *. c.sync;
    launch = k *. c.launch;
    jitter = k *. c.jitter;
  }

(* Labels follow the paper's Section 5 terms: c (compute), m' (global
   memory transfer), shared-memory traffic, tau_sync/T_sync barrier cost,
   kernel-launch overhead; jitter is the simulator's salted replay
   adjustment and has no analytical counterpart. *)
let to_list c =
  [
    ("compute", c.compute);
    ("global_mem", c.global_mem);
    ("shared_mem", c.shared_mem);
    ("sync", c.sync);
    ("launch", c.launch);
    ("jitter", c.jitter);
  ]

let components_to_json c =
  Minijson.Obj (List.map (fun (k, v) -> (k, Minijson.Num v)) (to_list c))

(* --- accumulator ---------------------------------------------------------- *)

type t = { mutable entries : (string * components) list }
(* newest first; [entries] reverses back to insertion order *)

let create () = { entries = [] }

let record acc label c = acc.entries <- (label, c) :: acc.entries

let entries acc = List.rev acc.entries

let totals acc =
  List.fold_left (fun sum (_, c) -> add sum c) zero acc.entries

let top_k acc k =
  let sorted =
    List.stable_sort
      (fun (_, a) (_, b) -> Float.compare (total b) (total a))
      (entries acc)
  in
  let rec take n = function
    | [] -> []
    | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs
  in
  take k sorted

(* --- rendering ------------------------------------------------------------ *)

let pct part whole =
  if whole = 0.0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. part /. whole)

let render_components ?title c =
  let t = total c in
  let tbl =
    Tabulate.create ?title
      [ ("component", Tabulate.Left); ("seconds", Tabulate.Right);
        ("share", Tabulate.Right) ]
  in
  let tbl =
    List.fold_left
      (fun tbl (name, v) ->
        Tabulate.add_row tbl [ name; Tabulate.seconds_cell v; pct v t ])
      tbl (to_list c)
  in
  let tbl = Tabulate.add_row tbl [ "total"; Tabulate.seconds_cell t; "" ] in
  Tabulate.render tbl

let render_top_k ?title acc k =
  let grand = total (totals acc) in
  let tbl =
    Tabulate.create ?title
      [ ("where", Tabulate.Left); ("total", Tabulate.Right);
        ("share", Tabulate.Right); ("compute", Tabulate.Right);
        ("global", Tabulate.Right); ("shared", Tabulate.Right);
        ("sync", Tabulate.Right); ("launch", Tabulate.Right);
        ("jitter", Tabulate.Right) ]
  in
  let tbl =
    List.fold_left
      (fun tbl (label, c) ->
        Tabulate.add_row tbl
          [ label; Tabulate.seconds_cell (total c); pct (total c) grand;
            Tabulate.seconds_cell c.compute;
            Tabulate.seconds_cell c.global_mem;
            Tabulate.seconds_cell c.shared_mem;
            Tabulate.seconds_cell c.sync;
            Tabulate.seconds_cell c.launch;
            Tabulate.seconds_cell c.jitter ])
      tbl (top_k acc k)
  in
  Tabulate.render tbl

let to_json acc =
  Minijson.Obj
    [
      ( "entries",
        Minijson.List
          (List.map
             (fun (label, c) ->
               Minijson.Obj
                 [
                   ("label", Minijson.Str label);
                   ("components", components_to_json c);
                   ("total", Minijson.Num (total c));
                 ])
             (entries acc)) );
      ("totals", components_to_json (totals acc));
    ]
