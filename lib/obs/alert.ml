(* hexlens: robust changepoint detection over ledger series.

   Each series is judged by robust statistics — median/MAD envelope,
   EWMA of winsorised robust z-scores — and a two-sided Page–Hinkley
   changepoint detector.  All the statistics work in z-units of the
   series' own MAD sigma, capped at [winsor_z], so one wild outlier can
   contribute at most a bounded excursion: a detector fires only on a
   *sustained* shift (several consecutive deviant points), which is
   exactly the slow-drift signal the one-shot gates (bench-compare,
   accuracy-compare, the hexpulse drift alarm) cannot see.

   Direction matters: every watched metric has an orientation (lower
   latency good, higher throughput good), and only bad-direction
   changepoints are regressions that fire `hextime watch --ci`.
   Good-direction shifts are reported as improvements, never as
   failures. *)

(* Detector identity stamped into alert records: bump when the
   statistics or their defaults change meaning. *)
let code_version = "hexlens-v1"

type spec = {
  min_samples : int;
  winsor_z : float;
  ph_delta : float;
  ph_lambda : float;
  ewma_alpha : float;
  ewma_limit : float;
}

(* Defaults tuned against the committed ledger: its noisiest clean series
   peaks at a Page–Hinkley excursion of ~5.6, and a single winsorised
   point can add at most winsor_z - ph_delta = 3.5 — so lambda 10 cannot
   be crossed by one fresh CI-appended sample however wild, only by a
   sustained shift (the 4-record injected p99 step scores ~14).
   min_samples 8 keeps two-point validate series informational instead
   of judged. *)
let default_spec =
  {
    min_samples = 8;
    winsor_z = 4.0;
    ph_delta = 0.5;
    ph_lambda = 10.0;
    ewma_alpha = 0.3;
    ewma_limit = 3.0;
  }

type orientation = Higher_better | Lower_better | Neutral

(* Orientation by metric name: suffix/name rules covering the watched
   set and the obvious extensions.  Unknown metrics are Neutral — a
   changepoint in either direction is a regression. *)
let orientation_of metric =
  let has_suffix s suf =
    let ls = String.length s and lf = String.length suf in
    ls >= lf && String.sub s (ls - lf) lf = suf
  in
  let lower =
    [ "rmse_top"; "rmse_all"; "rel_err"; "drift_alarm"; "errors"; "elapsed_s" ]
  in
  let higher =
    [
      "correlation_top";
      "argmin_quality";
      "argmin_in_band";
      "in_band";
      "cache_hit_rate";
      "argmin_match";
    ]
  in
  if List.mem metric lower then Lower_better
  else if List.mem metric higher then Higher_better
  else if has_suffix metric "_us" || has_suffix metric "_ns_per_kernel" then
    Lower_better
  else if has_suffix metric "_per_sec" then Higher_better
  else Neutral

(* --- robust statistics ---------------------------------------------------- *)

let median a =
  let n = Array.length a in
  if n = 0 then Float.nan
  else begin
    let s = Array.copy a in
    Array.sort Float.compare s;
    if n mod 2 = 1 then s.(n / 2)
    else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))
  end

(* MAD scaled to be sigma-consistent under normal noise. *)
let mad_sigma a =
  let m = median a in
  1.4826 *. median (Array.map (fun x -> Float.abs (x -. m)) a)

(* A zero MAD (constant majority) would make every deviation infinite;
   fall back to a 5% relative floor so a genuinely flat series scores
   z = 0 everywhere and a flat-then-stepped one still caps at winsor_z. *)
let effective_sigma ~med ~mad =
  if mad > 0.0 then mad else Float.max (0.05 *. Float.abs med) 1e-9

type direction = Up | Down

type firing = {
  f_detector : string;  (* "page_hinkley" | "ewma" *)
  f_direction : direction;
  f_stat : float;  (* the statistic that crossed *)
  f_threshold : float;
  f_regression : bool;  (* bad direction for this metric's orientation *)
}

type verdict = {
  v_kind : string;
  v_group : string;
  v_metric : string;
  v_key : string;
  v_n : int;
  v_judged : bool;  (* n >= min_samples *)
  v_median : float;
  v_mad_sigma : float;
  v_last : float;
  v_ewma_z : float;
  v_ph_up : float;  (* max Page–Hinkley excursion, upward shift *)
  v_ph_down : float;
  v_fired : firing option;
}

let direction_to_string = function Up -> "up" | Down -> "down"

(* Max Page–Hinkley excursion for an upward mean shift over z-scores:
   m_t accumulates (z - delta), the excursion is m_t above its running
   minimum.  The downward test is the same on -z. *)
let ph_excursion ~delta z =
  let m = ref 0.0 and m_min = ref 0.0 and exc = ref 0.0 in
  Array.iter
    (fun zi ->
      m := !m +. zi -. delta;
      if !m -. !m_min > !exc then exc := !m -. !m_min;
      if !m < !m_min then m_min := !m)
    z;
  !exc

let ewma ~alpha z =
  let n = Array.length z in
  if n = 0 then 0.0
  else begin
    let e = ref z.(0) in
    for i = 1 to n - 1 do
      e := (alpha *. z.(i)) +. ((1.0 -. alpha) *. !e)
    done;
    !e
  end

let judge ?(spec = default_spec) (s : Series.t) =
  let xs = Series.values s in
  let n = Array.length xs in
  let med = median xs in
  let mad = mad_sigma xs in
  let sigma = effective_sigma ~med ~mad in
  let winsor z = Float.max (-.spec.winsor_z) (Float.min spec.winsor_z z) in
  let z = Array.map (fun x -> winsor ((x -. med) /. sigma)) xs in
  let ph_up = ph_excursion ~delta:spec.ph_delta z in
  let ph_down = ph_excursion ~delta:spec.ph_delta (Array.map Float.neg z) in
  let ewma_z = ewma ~alpha:spec.ewma_alpha z in
  let judged = n >= spec.min_samples in
  let fired =
    if not judged then None
    else
      let mk detector direction stat threshold =
        let regression =
          match (orientation_of s.Series.s_metric, direction) with
          | Neutral, _ -> true
          | Higher_better, Down | Lower_better, Up -> true
          | Higher_better, Up | Lower_better, Down -> false
        in
        Some
          {
            f_detector = detector;
            f_direction = direction;
            f_stat = stat;
            f_threshold = threshold;
            f_regression = regression;
          }
      in
      if ph_up > spec.ph_lambda || ph_down > spec.ph_lambda then
        if ph_up >= ph_down then mk "page_hinkley" Up ph_up spec.ph_lambda
        else mk "page_hinkley" Down ph_down spec.ph_lambda
      else if Float.abs ewma_z > spec.ewma_limit then
        mk "ewma"
          (if ewma_z > 0.0 then Up else Down)
          (Float.abs ewma_z) spec.ewma_limit
      else None
  in
  {
    v_kind = s.Series.s_kind;
    v_group = s.Series.s_group;
    v_metric = s.Series.s_metric;
    v_key = Series.key s;
    v_n = n;
    v_judged = judged;
    v_median = med;
    v_mad_sigma = sigma;
    v_last = (if n = 0 then Float.nan else xs.(n - 1));
    v_ewma_z = ewma_z;
    v_ph_up = ph_up;
    v_ph_down = ph_down;
    v_fired = fired;
  }

let regression v =
  match v.v_fired with Some f -> f.f_regression | None -> false

let improvement v =
  match v.v_fired with Some f -> not f.f_regression | None -> false

let scan ?spec ?watch entries =
  List.map (fun s -> judge ?spec s) (Series.extract ?watch entries)

(* --- alert records --------------------------------------------------------- *)

(* One provenance-stamped ledger record per firing verdict.  Labels carry
   the identity (series key, detector, direction), metrics the numbers a
   later reader needs to re-judge the firing; Ledger.make stamps time,
   git rev and our detector version. *)
let to_entry ?(spec = default_spec) v =
  match v.v_fired with
  | None -> invalid_arg "Alert.to_entry: verdict did not fire"
  | Some f ->
      Ledger.make ~kind:"alert" ~code_version
        ~labels:
          [
            ("series", v.v_key);
            ("source_kind", v.v_kind);
            ("group", v.v_group);
            ("metric", v.v_metric);
            ("detector", f.f_detector);
            ("direction", direction_to_string f.f_direction);
            ("verdict", (if f.f_regression then "regression" else "improvement"));
          ]
        ~metrics:
          [
            ("firing", 1.0);
            ("regression", if f.f_regression then 1.0 else 0.0);
            ("stat", f.f_stat);
            ("threshold", f.f_threshold);
            ("n", float_of_int v.v_n);
            ("median", v.v_median);
            ("mad_sigma", v.v_mad_sigma);
            ("last", v.v_last);
            ("ewma_z", v.v_ewma_z);
            ("ph_up", v.v_ph_up);
            ("ph_down", v.v_ph_down);
            ("min_samples", float_of_int spec.min_samples);
          ]
        ()

(* --- live alert gauges ----------------------------------------------------- *)

(* Fed by the serve drift monitor (and any future online detector): the
   number of currently-firing alert sources and a count of firings, so a
   scrape of a live server sees alert state without reading the ledger. *)
let firing_gauge = Metrics.gauge "alert.firing"
let fired_counter = Metrics.counter "alert.fired"

let live ~was_firing ~firing () =
  Metrics.set firing_gauge (if firing then 1.0 else 0.0);
  if firing && not was_firing then Metrics.incr fired_counter
