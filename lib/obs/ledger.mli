(** hexwatch: the persistent run ledger.

    Every substantive run — a validation sweep, a campaign estimate, a
    tuning session, a bench regeneration — appends one provenance-stamped
    record to an append-only JSONL file.  The ledger is what turns the
    repository's accuracy and throughput figures from printed-and-forgotten
    numbers into a trajectory: [hextime history] renders trends over it and
    CI uploads it as an artifact.

    Records are one compact JSON object per line
    ({!Hextime_prelude.Minijson.render_compact}), so the file survives
    partial writes: {!load} tolerates a corrupt or truncated trailing line
    (counted, not fatal) and skips records whose schema version it does not
    understand — an old binary reading a newer ledger degrades gracefully. *)

type entry = {
  schema : int;  (** {!schema_version} at write time *)
  kind : string;  (** "validate" | "campaign" | "tune" | "bench" | ... *)
  time_unix : float;  (** seconds since the epoch, at {!make} time *)
  code_version : string;
      (** the sweep-layer code version (see {!Hextime_harness}); ties a
          record to the model/simulator semantics that produced it *)
  git_rev : string;  (** short commit hash, [""] when not in a checkout *)
  labels : (string * string) list;
      (** free-form provenance: arch, scale, stencil, jobs ... *)
  metrics : (string * float) list;
      (** scalar run figures: rmse_top, points_per_sec, cache_hit_rate ... *)
  groups : (string * (string * float) list) list;
      (** named sub-records, e.g. one {!Hextime_harness} validation summary
          per stencil×machine experiment *)
  snapshot : Hextime_prelude.Minijson.t option;
      (** the final {!Metrics} snapshot of the run, if captured *)
}

val schema_version : int

val git_rev : unit -> string
(** Short [git rev-parse] of HEAD, or [""] outside a git checkout (the
    result is memoised; the subprocess runs at most once). *)

val make :
  ?labels:(string * string) list ->
  ?metrics:(string * float) list ->
  ?groups:(string * (string * float) list) list ->
  ?snapshot:Hextime_prelude.Minijson.t ->
  kind:string ->
  code_version:string ->
  unit ->
  entry
(** Build a record stamped with the current time and {!git_rev}. *)

val default_path : unit -> string
(** [$HEXTIME_LEDGER] when set, else ["hexwatch-ledger.jsonl"] in the
    working directory. *)

val to_json : entry -> Hextime_prelude.Minijson.t

val of_json : Hextime_prelude.Minijson.t -> (entry, string) result
(** [Error] on records that are not hexwatch entries at all; an [Ok] entry
    may still carry an unknown {!schema} (the caller decides — {!load}
    skips them). *)

val append : path:string -> entry -> (unit, string) result
(** Append one line; creates the file (and nothing else) if missing.  The
    line is written with a single [output_string] after the record is fully
    rendered, so concurrent appenders interleave at line granularity. *)

type loaded = {
  entries : entry list;  (** oldest first, in file order *)
  corrupt_lines : int;  (** unparseable or non-entry lines skipped *)
  unknown_schema : int;  (** well-formed entries from a different schema *)
}

val load : path:string -> (loaded, string) result
(** Read a whole ledger.  Only a missing/unreadable file is an [Error];
    damaged content degrades to counted skips.  Blank lines are ignored. *)

val filter :
  ?kind:string -> ?label:string * string -> entry list -> entry list
(** Keep entries matching the kind and/or carrying the given label pair. *)

val latest : int -> entry list -> entry list
(** The last [n] entries (oldest-first order preserved). *)

val metric : entry -> string -> float option
(** Scalar metric lookup. *)

val group_metric : entry -> group:string -> string -> float option
(** Metric lookup inside a named group. *)

(** {1 Lifecycle}

    An append-only ledger grows without bound; [hextime watch] exposes
    these as [--rotate-mb] / [--rotate-days] / [--compact]. *)

val rotate :
  path:string ->
  ?max_bytes:int ->
  ?max_age_s:float ->
  ?now:float ->
  unit ->
  (string option, string) result
(** Rename the ledger aside (to [path.YYYYMMDDTHHMMSSZ], suffixed [-N]
    on collision) when it exceeds [max_bytes] or its {e first record} is
    older than [max_age_s] — age is judged from the ledger's own
    timestamps, never the file mtime, so a fresh checkout does not
    rotate a young ledger.  Returns the rotated-to path, or [None] when
    no threshold tripped (including a missing file).  The next {!append}
    recreates [path] empty. *)

val compact :
  path:string -> ?drop_labels:string list -> unit -> (int * int, string) result
(** Rewrite the ledger keeping only the {e latest} record per (kind,
    label-set) identity, atomically (tmp file + rename).  [drop_labels]
    (default [["req_id"]]) names labels excluded from the identity —
    per-request ids would otherwise make every audit record unique.
    Records with an unknown schema version are kept verbatim (their
    identity cannot be judged); corrupt lines are dropped.  Returns
    (kept, dropped) line counts.  Compaction is deliberately lossy: it
    trades per-run history for one latest record per experiment, so run
    it only when the trend window has been mined (or rotated aside). *)
