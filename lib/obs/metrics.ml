module Minijson = Hextime_prelude.Minijson
module Tabulate = Hextime_prelude.Tabulate

(* --- live metric handles ------------------------------------------------- *)

(* Counters are Atomic-backed: the domains-based sweep pool (Parsweep.Dpool)
   runs [f] on several domains of one process, all bumping the same handles,
   and the serial == fork == domains totals contract requires every bump to
   land.  Gauges and histograms are multi-field updates, so they serialise
   through [registry_mutex] instead — they are off the per-point hot path
   (progress ticks, per-task latency). *)
type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; mutable g : float; mutable g_set : bool }

(* One lock for registration, gauge/histogram mutation and snapshotting.
   Counter increments stay lock-free. *)
let registry_mutex = Mutex.create ()

let locked f = Mutex.protect registry_mutex f

(* log2-bucketed: bucket [i] counts observations v with 2^(i-bucket_bias-1)
   <= v < 2^(i-bucket_bias); bucket 0 additionally holds everything at or
   below the smallest bound (including zero and negatives, which the hot
   paths never produce but a histogram must not crash on) *)
let bucket_bias = 64
let bucket_count = 129

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

(* Three registries, one per kind.  Names are expected to be unique across
   kinds; [snapshot] renders them in sorted order so output is
   deterministic.  Creation is find-or-create: modules may declare the same
   metric at toplevel without coordinating. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 8
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 8

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c

let gauge name =
  locked @@ fun () ->
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g = 0.0; g_set = false } in
      Hashtbl.add gauges name g;
      g

let histogram name =
  locked @@ fun () ->
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make bucket_count 0;
        }
      in
      Hashtbl.add histograms name h;
      h

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c by)
let value c = Atomic.get c.c

let set g v =
  locked @@ fun () ->
  g.g <- v;
  g.g_set <- true

let bucket_of v =
  if not (Float.is_finite v) || v <= 0.0 then 0
  else
    let _, e = Float.frexp v in
    (* v in [2^(e-1), 2^e) *)
    max 0 (min (bucket_count - 1) (e + bucket_bias))

(* Exclusive upper bound of bucket [i]: observations land in
   [bucket_upper (i-1), bucket_upper i).  The edge buckets additionally
   absorb whatever was clamped into them, so an exposition format on top
   of these bounds needs its own +Inf bucket (see Openmetrics). *)
let bucket_upper i = Float.ldexp 1.0 (i - bucket_bias)

let observe h v =
  locked @@ fun () ->
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

(* --- snapshots ------------------------------------------------------------ *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (int * int) list;  (* (bucket index, count), sparse *)
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_snapshot) list;
}

let sorted_by_name xs = List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let snapshot () =
  locked @@ fun () ->
  let cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c) :: acc) counters []
  in
  let gs =
    Hashtbl.fold
      (fun name g acc -> if g.g_set then (name, g.g) :: acc else acc)
      gauges []
  in
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        let buckets = ref [] in
        for i = bucket_count - 1 downto 0 do
          if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
        done;
        ( name,
          {
            hs_count = h.h_count;
            hs_sum = h.h_sum;
            hs_min = h.h_min;
            hs_max = h.h_max;
            hs_buckets = !buckets;
          } )
        :: acc)
      histograms []
  in
  {
    snap_counters = sorted_by_name cs;
    snap_gauges = sorted_by_name gs;
    snap_histograms = sorted_by_name hs;
  }

let empty =
  { snap_counters = []; snap_gauges = []; snap_histograms = [] }

let reset () =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.c 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.g <- 0.0;
      g.g_set <- false)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity;
      Array.fill h.h_buckets 0 bucket_count 0)
    histograms

(* merge two sorted association lists with a combining function *)
let merge_assoc combine xs ys =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | ((kx, vx) as x) :: xs', ((ky, vy) as y) :: ys' ->
        let c = String.compare kx ky in
        if c < 0 then go xs' ys (x :: acc)
        else if c > 0 then go xs ys' (y :: acc)
        else go xs' ys' ((kx, combine vx vy) :: acc)
  in
  go xs ys []

let merge_hist a b =
  let buckets =
    let rec go xs ys acc =
      match (xs, ys) with
      | [], rest | rest, [] -> List.rev_append acc rest
      | ((ix, cx) as x) :: xs', ((iy, cy) as y) :: ys' ->
          if ix < iy then go xs' ys (x :: acc)
          else if ix > iy then go xs ys' (y :: acc)
          else go xs' ys' ((ix, cx + cy) :: acc)
    in
    go a.hs_buckets b.hs_buckets []
  in
  {
    hs_count = a.hs_count + b.hs_count;
    hs_sum = a.hs_sum +. b.hs_sum;
    hs_min = Float.min a.hs_min b.hs_min;
    hs_max = Float.max a.hs_max b.hs_max;
    hs_buckets = buckets;
  }

let merge a b =
  {
    snap_counters = merge_assoc ( + ) a.snap_counters b.snap_counters;
    (* a gauge is "last observed value": the right operand wins *)
    snap_gauges = merge_assoc (fun _ y -> y) a.snap_gauges b.snap_gauges;
    snap_histograms = merge_assoc merge_hist a.snap_histograms b.snap_histograms;
  }

let absorb s =
  List.iter (fun (name, v) -> incr ~by:v (counter name)) s.snap_counters;
  List.iter (fun (name, v) -> set (gauge name) v) s.snap_gauges;
  List.iter
    (fun (name, hs) ->
      let h = histogram name in
      locked @@ fun () ->
      h.h_count <- h.h_count + hs.hs_count;
      h.h_sum <- h.h_sum +. hs.hs_sum;
      if hs.hs_min < h.h_min then h.h_min <- hs.hs_min;
      if hs.hs_max > h.h_max then h.h_max <- hs.hs_max;
      List.iter
        (fun (i, c) ->
          if i >= 0 && i < bucket_count then
            h.h_buckets.(i) <- h.h_buckets.(i) + c)
        hs.hs_buckets)
    s.snap_histograms

(* --- quantiles ------------------------------------------------------------ *)

(* Rank-based estimation over the log2 buckets.  Walk the sparse bucket
   list until the cumulative count covers rank q*(n-1)+1, then interpolate
   geometrically inside the covering bucket [2^(i-bias-1), 2^(i-bias)) —
   the midpoint rule on a log scale, which bounds the relative error by
   the bucket ratio (2x) and is exact for single-observation buckets
   clamped against hs_min/hs_max. *)
(* An empty histogram has no quantiles: every estimate is NaN, never a
   stray infinity leaked from the hs_min/hs_max sentinels (those are
   +inf/-inf before the first observation, and the q=0/q=1 shortcuts and
   the min/max clamp would otherwise surface them).  NaN survives
   Minijson deterministically (rendered as the string "NaN"), so empty
   histograms keep a stable JSON shape instead of dropping keys. *)
let quantile hs q =
  if hs.hs_count = 0 || not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    Float.nan
  else if q = 0.0 then hs.hs_min
  else if q = 1.0 then hs.hs_max
  else begin
    let n = hs.hs_count in
    let rank = (q *. float_of_int (n - 1)) +. 1.0 in
    let rec walk seen = function
      | [] -> hs.hs_max (* rounding: the rank fell off the end *)
      | (i, c) :: rest ->
          let seen' = seen + c in
          if float_of_int seen' >= rank then begin
            (* bucket i holds observations in [lo, hi); interpolate the
               within-bucket position on a log scale *)
            let lo, hi =
              if i = 0 then (hs.hs_min, Float.ldexp 1.0 (-bucket_bias))
              else
                ( Float.ldexp 1.0 (i - bucket_bias - 1),
                  Float.ldexp 1.0 (i - bucket_bias) )
            in
            let frac =
              (rank -. float_of_int seen) /. float_of_int c
            in
            let frac = Float.max 0.0 (Float.min 1.0 frac) in
            let v =
              if lo > 0.0 && Float.is_finite lo && hi > lo then
                exp (log lo +. (frac *. (log hi -. log lo)))
              else hi
            in
            (* the true extrema are known exactly: never report outside
               [hs_min, hs_max] *)
            Float.max hs.hs_min (Float.min hs.hs_max v)
          end
          else walk seen' rest
    in
    walk 0 hs.hs_buckets
  end

let quantiles = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

(* --- export --------------------------------------------------------------- *)

let bucket_label i =
  if i = 0 then "<=2^-64" else Printf.sprintf "<2^%d" (i - bucket_bias)

let to_json s =
  let num f = Minijson.Num f in
  Minijson.Obj
    [
      ( "counters",
        Minijson.Obj
          (List.map
             (fun (k, v) -> (k, num (float_of_int v)))
             s.snap_counters) );
      ( "gauges",
        Minijson.Obj (List.map (fun (k, v) -> (k, num v)) s.snap_gauges) );
      ( "histograms",
        Minijson.Obj
          (List.map
             (fun (k, hs) ->
               ( k,
                 Minijson.Obj
                   ([
                      ("count", num (float_of_int hs.hs_count));
                      ("sum", num hs.hs_sum);
                      ("min", num hs.hs_min);
                      ("max", num hs.hs_max);
                    ]
                   @ List.map
                       (fun (label, q) -> (label, num (quantile hs q)))
                       quantiles
                   @ [
                       ( "buckets",
                         Minijson.Obj
                           (List.map
                              (fun (i, c) ->
                                (bucket_label i, num (float_of_int c)))
                              hs.hs_buckets) );
                     ]) ))
             s.snap_histograms) );
    ]

let render s =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter (fun (k, v) -> pf "%-40s %d\n" k v) s.snap_counters;
  List.iter (fun (k, v) -> pf "%-40s %.6g\n" k v) s.snap_gauges;
  List.iter
    (fun (k, hs) ->
      if hs.hs_count = 0 then pf "%-40s (empty)\n" k
      else
        pf "%-40s n=%d mean=%s min=%s max=%s%s\n" k hs.hs_count
          (Tabulate.seconds_cell (hs.hs_sum /. float_of_int hs.hs_count))
          (Tabulate.seconds_cell hs.hs_min)
          (Tabulate.seconds_cell hs.hs_max)
          (String.concat ""
             (List.map
                (fun (label, q) ->
                  Printf.sprintf " %s=%s" label
                    (Tabulate.seconds_cell (quantile hs q)))
                quantiles)))
    s.snap_histograms;
  Buffer.contents buf

let find_counter s name = List.assoc_opt name s.snap_counters
