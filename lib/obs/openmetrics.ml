(* OpenMetrics / Prometheus text exposition over a Metrics snapshot.

   One renderer and one (deliberately small) parser live together so the
   `hextime metrics-verify` checker and the golden tests validate exactly
   what the server serves.  The output is compatible with both the
   Prometheus text format (0.0.4) and OpenMetrics: counters carry the
   `_total` suffix, histograms are rendered as cumulative `_bucket{le=...}`
   series closed by `+Inf` plus `_sum`/`_count`, and the document ends with
   `# EOF`. *)

(* --- rendering ------------------------------------------------------------- *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Registry names use dots as
   separators ("serve.warm_seconds"); anything outside the grammar maps to
   '_' so every registered metric is exposable. *)
let metric_name s =
  let ok_head c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_head c || (c >= '0' && c <= '9') in
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      let keep = if i = 0 then ok_head c || (c >= '0' && c <= '9') else ok c in
      if not keep then Bytes.set b i '_')
    b;
  let s' = Bytes.unsafe_to_string b in
  if s' = "" then "_"
  else if ok_head s'.[0] then s'
  else "_" ^ s'

(* Label values: backslash, double-quote and newline get backslash-escaped
   (the exposition format's only escapes). *)
let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Sample values.  Integral floats render without an exponent so counters
   stay greppable; +Inf/-Inf/NaN use the exposition spellings. *)
let value_str f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let render (s : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (k, v) ->
      let n = metric_name k in
      pf "# TYPE %s counter\n" n;
      pf "%s_total %d\n" n v)
    s.Metrics.snap_counters;
  List.iter
    (fun (k, v) ->
      let n = metric_name k in
      pf "# TYPE %s gauge\n" n;
      pf "%s %s\n" n (value_str v))
    s.Metrics.snap_gauges;
  List.iter
    (fun (k, (hs : Metrics.hist_snapshot)) ->
      let n = metric_name k in
      pf "# TYPE %s histogram\n" n;
      let cum = ref 0 in
      List.iter
        (fun (i, c) ->
          cum := !cum + c;
          pf "%s_bucket{le=\"%s\"} %d\n" n
            (value_str (Metrics.bucket_upper i))
            !cum)
        hs.Metrics.hs_buckets;
      pf "%s_bucket{le=\"+Inf\"} %d\n" n hs.Metrics.hs_count;
      pf "%s_sum %s\n" n (value_str hs.Metrics.hs_sum);
      pf "%s_count %d\n" n hs.Metrics.hs_count)
    s.Metrics.snap_histograms;
  pf "# EOF\n";
  Buffer.contents buf

(* --- parsing --------------------------------------------------------------- *)

type sample = {
  s_name : string;  (* full sample name, suffixes included *)
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  f_name : string;
  f_type : string;  (* "counter" | "gauge" | "histogram" | ... *)
  f_samples : sample list;  (* in document order *)
}

let parse_value s =
  match s with
  | "NaN" -> Some Float.nan
  | "+Inf" | "Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | s -> float_of_string_opt s

(* name{k="v",...} — unescapes the three label escapes. *)
let parse_labels s =
  let n = String.length s in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec go i acc =
    let i = skip_ws i in
    if i >= n then None
    else if s.[i] = '}' then if i = n - 1 then Some (List.rev acc) else None
    else begin
      (* label name up to '=' *)
      match String.index_from_opt s i '=' with
      | None -> None
      | Some eq ->
          let name = String.trim (String.sub s i (eq - i)) in
          if eq + 1 >= n || s.[eq + 1] <> '"' then None
          else begin
            (* scan the quoted value, honouring escapes *)
            let buf = Buffer.create 16 in
            let rec scan j =
              if j >= n then None
              else
                match s.[j] with
                | '"' -> Some j
                | '\\' when j + 1 < n ->
                    (match s.[j + 1] with
                    | 'n' -> Buffer.add_char buf '\n'
                    | '"' -> Buffer.add_char buf '"'
                    | '\\' -> Buffer.add_char buf '\\'
                    | c ->
                        Buffer.add_char buf '\\';
                        Buffer.add_char buf c);
                    scan (j + 2)
                | c ->
                    Buffer.add_char buf c;
                    scan (j + 1)
            in
            match scan (eq + 2) with
            | None -> None
            | Some close ->
                let acc = (name, Buffer.contents buf) :: acc in
                let i = skip_ws (close + 1) in
                if i < n && s.[i] = ',' then go (i + 1) acc
                else if i < n && s.[i] = '}' then
                  if i = n - 1 then Some (List.rev acc) else None
                else None
          end
    end
  in
  go 0 []

let parse_sample line =
  (* split "name[{labels}] value" at the first space outside braces *)
  let n = String.length line in
  match String.index_opt line '{' with
  | Some b -> (
      match String.rindex_opt line '}' with
      | None -> None
      | Some e when e > b && e + 1 < n && line.[e + 1] = ' ' -> (
          let name = String.sub line 0 b in
          let labels_s = String.sub line (b + 1) (e - b) in
          let value_s = String.trim (String.sub line (e + 2) (n - e - 2)) in
          match (parse_labels labels_s, parse_value value_s) with
          | Some labels, Some v ->
              Some { s_name = name; s_labels = labels; s_value = v }
          | _ -> None)
      | Some _ -> None)
  | None -> (
      match String.index_opt line ' ' with
      | None -> None
      | Some sp -> (
          let name = String.sub line 0 sp in
          let value_s = String.trim (String.sub line (sp + 1) (n - sp - 1)) in
          match parse_value value_s with
          | Some v -> Some { s_name = name; s_labels = []; s_value = v }
          | None -> None))

let belongs_to fam sample_name =
  sample_name = fam
  || List.exists
       (fun suffix -> sample_name = fam ^ suffix)
       [ "_total"; "_bucket"; "_sum"; "_count"; "_created" ]

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno families current = function
    | [] -> Ok (List.rev (match current with None -> families | Some f -> f :: families))
    | line :: rest -> (
        let lineno = lineno + 1 in
        let fail fmt =
          Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
        in
        match line with
        | "" -> go lineno families current rest
        | line when String.length line >= 7 && String.sub line 0 7 = "# TYPE " -> (
            match
              String.split_on_char ' '
                (String.trim (String.sub line 7 (String.length line - 7)))
            with
            | [ name; ty ] ->
                let families =
                  match current with None -> families | Some f -> f :: families
                in
                go lineno families
                  (Some { f_name = name; f_type = ty; f_samples = [] })
                  rest
            | _ -> fail "malformed TYPE line %S" line)
        | line when String.length line >= 1 && line.[0] = '#' ->
            (* HELP / UNIT / EOF / free comments *)
            go lineno families current rest
        | line -> (
            match parse_sample line with
            | None -> fail "malformed sample line %S" line
            | Some s -> (
                match current with
                | Some f when belongs_to f.f_name s.s_name ->
                    go lineno families
                      (Some { f with f_samples = f.f_samples @ [ s ] })
                      rest
                | Some f ->
                    fail "sample %S outside its family (current family %S)"
                      s.s_name f.f_name
                | None -> fail "sample %S before any TYPE line" s.s_name)))
  in
  go 0 [] None lines

(* --- lookups ---------------------------------------------------------------- *)

let find families name =
  List.find_opt (fun f -> f.f_name = name) families

let value families name =
  List.find_map
    (fun f ->
      List.find_map
        (fun s ->
          if s.s_name = name && s.s_labels = [] then Some s.s_value else None)
        f.f_samples)
    families

(* --- validation ------------------------------------------------------------- *)

type summary = { families : int; samples : int }

let validate_histogram f =
  let buckets =
    List.filter (fun s -> s.s_name = f.f_name ^ "_bucket") f.f_samples
  in
  let count =
    List.find_opt (fun s -> s.s_name = f.f_name ^ "_count") f.f_samples
  in
  let sum = List.find_opt (fun s -> s.s_name = f.f_name ^ "_sum") f.f_samples in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match (count, sum) with
  | None, _ -> err "histogram %s: missing _count" f.f_name
  | _, None -> err "histogram %s: missing _sum" f.f_name
  | Some count, Some _ -> (
      let les =
        List.map
          (fun s ->
            match List.assoc_opt "le" s.s_labels with
            | Some le -> Ok (le, s.s_value)
            | None -> err "histogram %s: bucket without le label" f.f_name)
          buckets
      in
      match List.find_opt Result.is_error les with
      | Some (Error e) -> Error e
      | Some (Ok _) | None -> (
          let les = List.filter_map Result.to_option les in
          (* cumulative and ordered: counts never decrease, bounds increase *)
          let rec check prev_le prev_cum = function
            | [] -> Ok ()
            | (le_s, cum) :: rest -> (
                match parse_value le_s with
                | None -> err "histogram %s: bad le %S" f.f_name le_s
                | Some le ->
                    if le <= prev_le then
                      err "histogram %s: le %S out of order" f.f_name le_s
                    else if cum < prev_cum then
                      err "histogram %s: bucket counts not cumulative (%g < %g)"
                        f.f_name cum prev_cum
                    else check le cum rest)
          in
          match check Float.neg_infinity 0.0 les with
          | Error e -> Error e
          | Ok () -> (
              match List.rev les with
              | [] -> err "histogram %s: no buckets" f.f_name
              | (last_le, last_cum) :: _ ->
                  if last_le <> "+Inf" then
                    err "histogram %s: last bucket is %S, not +Inf" f.f_name
                      last_le
                  else if last_cum <> count.s_value then
                    err "histogram %s: +Inf bucket %g <> _count %g" f.f_name
                      last_cum count.s_value
                  else Ok ())))

let validate ?(require = []) text =
  match parse text with
  | Error e -> Error e
  | Ok families -> (
      let missing =
        List.filter (fun r -> not (List.exists (fun f -> f.f_name = r) families)) require
      in
      if missing <> [] then
        Error
          (Printf.sprintf "missing required families: %s"
             (String.concat ", " missing))
      else
        let rec check = function
          | [] ->
              Ok
                {
                  families = List.length families;
                  samples =
                    List.fold_left
                      (fun acc f -> acc + List.length f.f_samples)
                      0 families;
                }
          | f :: rest -> (
              match f.f_type with
              | "histogram" -> (
                  match validate_histogram f with
                  | Error e -> Error e
                  | Ok () -> check rest)
              | "counter" -> (
                  match
                    List.find_opt
                      (fun s ->
                        s.s_name = f.f_name ^ "_total" && s.s_value < 0.0)
                      f.f_samples
                  with
                  | Some s ->
                      Error
                        (Printf.sprintf "counter %s: negative value %g"
                           f.f_name s.s_value)
                  | None -> check rest)
              | _ -> check rest)
        in
        check families)
