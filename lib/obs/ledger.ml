module Minijson = Hextime_prelude.Minijson

type entry = {
  schema : int;
  kind : string;
  time_unix : float;
  code_version : string;
  git_rev : string;
  labels : (string * string) list;
  metrics : (string * float) list;
  groups : (string * (string * float) list) list;
  snapshot : Minijson.t option;
}

let schema_version = 1

(* One subprocess per process lifetime: the rev cannot change under us, and
   ledger appends must stay cheap enough to hang off every CLI run. *)
let git_rev =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some rev -> rev
    | None ->
        let rev =
          match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
          | exception _ -> ""
          | ic ->
              let line = try input_line ic with End_of_file | Sys_error _ -> "" in
              let status = try Unix.close_process_in ic with _ -> Unix.WEXITED 1 in
              (match status with Unix.WEXITED 0 -> String.trim line | _ -> "")
        in
        memo := Some rev;
        rev

let make ?(labels = []) ?(metrics = []) ?(groups = []) ?snapshot ~kind
    ~code_version () =
  {
    schema = schema_version;
    kind;
    time_unix = Unix.time ();
    code_version;
    git_rev = git_rev ();
    labels;
    metrics;
    groups;
    snapshot;
  }

let default_path () =
  match Sys.getenv_opt "HEXTIME_LEDGER" with
  | Some p when p <> "" -> p
  | _ -> "hexwatch-ledger.jsonl"

let str_fields kvs = List.map (fun (k, v) -> (k, Minijson.Str v)) kvs
let num_fields kvs = List.map (fun (k, v) -> (k, Minijson.Num v)) kvs

let to_json e =
  Minijson.Obj
    ([
       ("schema", Minijson.Str "hexwatch-ledger");
       ("version", Minijson.Num (float_of_int e.schema));
       ("kind", Minijson.Str e.kind);
       ("time_unix", Minijson.Num e.time_unix);
       ("code_version", Minijson.Str e.code_version);
       ("git_rev", Minijson.Str e.git_rev);
       ("labels", Minijson.Obj (str_fields e.labels));
       ("metrics", Minijson.Obj (num_fields e.metrics));
       ( "groups",
         Minijson.Obj
           (List.map
              (fun (name, kvs) -> (name, Minijson.Obj (num_fields kvs)))
              e.groups) );
     ]
    @ match e.snapshot with None -> [] | Some s -> [ ("obs_metrics", s) ])

let of_json json =
  let str name = Option.bind (Minijson.member name json) Minijson.string in
  let num name = Option.bind (Minijson.member name json) Minijson.number in
  let obj_num_fields = function
    | Some (Minijson.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match Minijson.number v with Some f -> Some (k, f) | None -> None)
          fields
    | _ -> []
  in
  match (str "schema", num "version", str "kind") with
  | Some "hexwatch-ledger", Some version, Some kind ->
      Ok
        {
          schema = int_of_float version;
          kind;
          time_unix = Option.value ~default:0.0 (num "time_unix");
          code_version = Option.value ~default:"" (str "code_version");
          git_rev = Option.value ~default:"" (str "git_rev");
          labels =
            (match Minijson.member "labels" json with
            | Some (Minijson.Obj fields) ->
                List.filter_map
                  (fun (k, v) ->
                    match Minijson.string v with
                    | Some s -> Some (k, s)
                    | None -> None)
                  fields
            | _ -> []);
          metrics = obj_num_fields (Minijson.member "metrics" json);
          groups =
            (match Minijson.member "groups" json with
            | Some (Minijson.Obj fields) ->
                List.map
                  (fun (name, v) -> (name, obj_num_fields (Some v)))
                  fields
            | _ -> []);
          snapshot = Minijson.member "obs_metrics" json;
        }
  | _ -> Error "not a hexwatch ledger record"

let append ~path e =
  let line = Minijson.render_compact (to_json e) ^ "\n" in
  match open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path with
  | exception Sys_error msg -> Error msg
  | oc ->
      let r =
        try
          output_string oc line;
          Ok ()
        with Sys_error msg -> Error msg
      in
      close_out_noerr oc;
      r

type loaded = {
  entries : entry list;
  corrupt_lines : int;
  unknown_schema : int;
}

let load ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let entries = ref [] in
      let corrupt = ref 0 in
      let unknown = ref 0 in
      (try
         while true do
           match input_line ic with
           | "" -> ()
           | line -> (
               match Minijson.parse line with
               | Error _ -> incr corrupt
               | Ok json -> (
                   match of_json json with
                   | Error _ -> incr corrupt
                   | Ok e ->
                       if e.schema = schema_version then
                         entries := e :: !entries
                       else incr unknown))
         done
       with End_of_file -> ());
      close_in_noerr ic;
      Ok
        {
          entries = List.rev !entries;
          corrupt_lines = !corrupt;
          unknown_schema = !unknown;
        }

let filter ?kind ?label entries =
  List.filter
    (fun e ->
      (match kind with None -> true | Some k -> e.kind = k)
      && match label with None -> true | Some kv -> List.mem kv e.labels)
    entries

let latest n entries =
  let len = List.length entries in
  if len <= n then entries
  else List.filteri (fun i _ -> i >= len - n) entries

let metric e name = List.assoc_opt name e.metrics

let group_metric e ~group name =
  Option.bind (List.assoc_opt group e.groups) (List.assoc_opt name)

(* --- lifecycle: rotation and compaction ------------------------------------ *)

(* Age is judged from the ledger's own first record, not the file mtime:
   a freshly checked-out repository must not rotate a young ledger just
   because git set the timestamps. *)
let first_entry_time path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | "" -> scan ()
        | line -> (
            match Minijson.parse line with
            | Error _ -> scan ()
            | Ok json -> (
                match of_json json with
                | Error _ -> scan ()
                | Ok e -> Some e.time_unix))
      in
      let r = scan () in
      close_in_noerr ic;
      r

let rotation_stamp t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let rotate ~path ?max_bytes ?max_age_s ?now () =
  if not (Sys.file_exists path) then Ok None
  else
    let now = match now with Some t -> t | None -> Unix.time () in
    let size =
      match Unix.stat path with
      | { Unix.st_size; _ } -> st_size
      | exception Unix.Unix_error _ -> 0
    in
    let too_big =
      match max_bytes with Some b -> size > b | None -> false
    in
    let too_old =
      match max_age_s with
      | None -> false
      | Some a -> (
          match first_entry_time path with
          | None -> false
          | Some t0 -> now -. t0 > a)
    in
    if not (too_big || too_old) then Ok None
    else begin
      let base = path ^ "." ^ rotation_stamp now in
      let rec fresh dest n =
        if Sys.file_exists dest then fresh (Printf.sprintf "%s-%d" base n) (n + 1)
        else dest
      in
      let dest = fresh base 1 in
      match Sys.rename path dest with
      | () -> Ok (Some dest)
      | exception Sys_error msg -> Error msg
    end

(* Identity of a record for compaction: its kind plus every label except
   the per-record ones (req_id is unique per request, so keeping it would
   make every audit its own key and compaction a no-op). *)
let compaction_key ?(drop_labels = [ "req_id" ]) e =
  let labels =
    List.filter (fun (k, _) -> not (List.mem k drop_labels)) e.labels
  in
  let labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  e.kind ^ "|"
  ^ String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let compact ~path ?drop_labels () =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in_noerr ic;
      let lines = Array.of_list (List.rev !lines) in
      (* classify each line: Some key -> compactable entry; None -> kept
         verbatim (unknown schema we cannot re-render, or blank); corrupt
         lines are dropped outright *)
      let keep = Array.make (Array.length lines) false in
      let last : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let dropped = ref 0 in
      Array.iteri
        (fun i line ->
          if line = "" then ()
          else
            match Minijson.parse line with
            | Error _ -> incr dropped
            | Ok json -> (
                match of_json json with
                | Error _ -> incr dropped
                | Ok e ->
                    if e.schema <> schema_version then keep.(i) <- true
                    else begin
                      let key = compaction_key ?drop_labels e in
                      (match Hashtbl.find_opt last key with
                      | Some j ->
                          keep.(j) <- false;
                          incr dropped
                      | None -> ());
                      Hashtbl.replace last key i;
                      keep.(i) <- true
                    end))
        lines;
      let kept = ref 0 in
      let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
      (match open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
               0o644 tmp
       with
      | exception Sys_error msg -> Error msg
      | oc ->
          let r =
            try
              Array.iteri
                (fun i line ->
                  if keep.(i) then begin
                    incr kept;
                    output_string oc (line ^ "\n")
                  end)
                lines;
              Ok ()
            with Sys_error msg -> Error msg
          in
          close_out_noerr oc;
          (match r with
          | Error _ as e ->
              (try Sys.remove tmp with Sys_error _ -> ());
              e
          | Ok () -> (
              (* atomic swap: readers see the old or the new ledger,
                 never a half-written one *)
              match Sys.rename tmp path with
              | () -> Ok (!kept, !dropped)
              | exception Sys_error msg ->
                  (try Sys.remove tmp with Sys_error _ -> ());
                  Error msg)))
