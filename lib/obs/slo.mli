(** Rolling SLO windows over the serving path.

    A ring of fixed-duration windows: each answered request is recorded
    into the current window ([observe]); when the caller-supplied clock
    crosses a boundary ([tick], or the [observe] itself) the window
    closes, p50/p99 are estimated from per-window log2 latency buckets
    (same geometry and {!Metrics.quantile} estimator as the registry
    histograms), the spec is evaluated, and the verdicts are exported as
    [slo.*] gauges:

    - [slo.window_p50_us], [slo.window_p99_us], [slo.window_error_rate],
      [slo.window_warm_ratio] — the last {e closed} window;
    - [slo.p99_ok], [slo.warm_ratio_ok] — 1/0 verdicts for that window;
    - [slo.error_budget_burn] — window error rate over the allowed budget
      (>1 means the budget is burning faster than allowed);
    - [slo.windows_violated], [slo.windows] — ring-wide counts.

    Timestamps are always passed in; nothing here reads the clock. *)

type spec = {
  window_s : float;  (** window duration (default 10 s) *)
  windows : int;  (** ring capacity of closed windows (default 12) *)
  p99_us : float option;  (** SLO: window p99 latency at most this *)
  warm_ratio : float option;  (** SLO: warm-hit ratio at least this *)
  error_budget : float;
      (** allowed per-window error rate; burn = rate / budget (default 1e-3) *)
}

val default_spec : spec

type window = {
  w_start : float;
  w_end : float;
  w_requests : int;
  w_errors : int;
  w_warm : int;
  w_cold : int;
  w_p50_us : float;  (** NaN when the window saw no requests *)
  w_p99_us : float;
  w_error_rate : float;  (** NaN when empty *)
  w_warm_ratio : float;  (** NaN when empty *)
  w_p99_ok : bool;  (** true when no threshold is set or it held *)
  w_warm_ok : bool;
}

val window_ok : window -> bool

type t

val create : ?spec:spec -> now:float -> unit -> t
(** Raises [Invalid_argument] on a non-positive window duration or ring
    size. *)

val observe :
  t -> now:float -> warm:bool -> error:bool -> latency_s:float -> unit
(** Record one answered request (rolls windows first if [now] crossed a
    boundary).  Errors count toward the error rate; their latency is
    still recorded. *)

val tick : t -> now:float -> unit
(** Roll past-due windows without recording anything (the serving loop
    calls this every iteration so windows close during idle periods).  A
    gap longer than the whole ring closes one ring of empty windows and
    jumps to the present. *)

val windows : t -> window list
(** Closed windows, newest first, at most [spec.windows]. *)

val violated : t -> int
val spec : t -> spec
