(** hexlens: robust changepoint detection over ledger series.

    The judging side of the cross-run regression observatory: every
    {!Series} is scored by robust statistics — median/MAD envelope, EWMA
    of winsorised robust z-scores — and a two-sided Page–Hinkley
    changepoint detector.  All statistics are in z-units of the series'
    own MAD sigma, capped at [winsor_z], so a single wild outlier
    contributes a bounded excursion and only a {e sustained} shift
    (several consecutive deviant points) fires.

    Firing verdicts carry a direction, and the metric's orientation
    (latency down good, throughput up good) decides whether the shift is
    a regression — the only thing [hextime watch --ci] fails on — or an
    improvement, which is reported but never fatal. *)

val code_version : string
(** Detector identity stamped into alert records (["hexlens-v1"]). *)

type spec = {
  min_samples : int;  (** series shorter than this are never judged *)
  winsor_z : float;  (** robust z-score cap (outlier clamp) *)
  ph_delta : float;  (** Page–Hinkley per-point slack, z-units *)
  ph_lambda : float;  (** Page–Hinkley firing threshold *)
  ewma_alpha : float;  (** EWMA smoothing factor *)
  ewma_limit : float;  (** |EWMA z| firing threshold *)
}

val default_spec : spec
(** [{min_samples = 8; winsor_z = 4.0; ph_delta = 0.5; ph_lambda = 10.0;
    ewma_alpha = 0.3; ewma_limit = 3.0}] — tuned so no single fresh
    sample can lift the committed ledger's noisiest clean series
    (excursion ~5.6, one winsorised point adds at most 3.5) over lambda,
    while a 4-record injected step fires well above it. *)

type orientation = Higher_better | Lower_better | Neutral

val orientation_of : string -> orientation
(** Orientation by metric name ([*_per_sec] up-good, [*_us]/RMSE
    down-good, ...).  Unknown metrics are [Neutral]: both directions
    count as regressions. *)

val median : float array -> float
(** NaN on empty. *)

val mad_sigma : float array -> float
(** Median absolute deviation scaled by 1.4826 (sigma-consistent under
    normal noise). *)

val ph_excursion : delta:float -> float array -> float
(** Max Page–Hinkley excursion for an upward mean shift over z-scores;
    run on negated scores for the downward test. *)

val ewma : alpha:float -> float array -> float
(** Exponentially-weighted moving average, seeded at the first value;
    0 on empty. *)

type direction = Up | Down

val direction_to_string : direction -> string

type firing = {
  f_detector : string;  (** ["page_hinkley"] or ["ewma"] *)
  f_direction : direction;
  f_stat : float;  (** the statistic that crossed *)
  f_threshold : float;
  f_regression : bool;  (** bad direction for this metric's orientation *)
}

type verdict = {
  v_kind : string;
  v_group : string;
  v_metric : string;
  v_key : string;  (** {!Series.key} of the judged series *)
  v_n : int;
  v_judged : bool;  (** [n >= min_samples] *)
  v_median : float;
  v_mad_sigma : float;  (** the effective sigma actually used *)
  v_last : float;
  v_ewma_z : float;
  v_ph_up : float;
  v_ph_down : float;
  v_fired : firing option;
}

val judge : ?spec:spec -> Series.t -> verdict

val regression : verdict -> bool
(** Fired in the bad direction. *)

val improvement : verdict -> bool
(** Fired in the good direction. *)

val scan :
  ?spec:spec ->
  ?watch:(string * string list) list ->
  Ledger.entry list ->
  verdict list
(** {!Series.extract} then {!judge} — one verdict per watched series. *)

val to_entry : ?spec:spec -> verdict -> Ledger.entry
(** A provenance-stamped [kind = "alert"] ledger record for a firing
    verdict (labels: series/detector/direction/verdict; metrics: the
    statistics and thresholds).  @raise Invalid_argument if the verdict
    did not fire. *)

(** {1 Live alert gauges}

    Fed by online detectors (the serve drift monitor): [alert.firing]
    (1 while any live alert source is firing) and the [alert.fired]
    counter (transitions into the firing state), so a scrape sees alert
    state without reading the ledger. *)

val firing_gauge : Metrics.gauge
val fired_counter : Metrics.counter

val live : was_firing:bool -> firing:bool -> unit -> unit
(** Update the live gauges on a detector state transition. *)
