(** Span tracer exporting Chrome trace-event JSON (loadable in
    chrome://tracing or {{:https://ui.perfetto.dev}Perfetto}).

    Tracing is {b off by default}: [with_span] costs one [ref] read when
    disabled and argument thunks are only forced on the enabled path, so
    instrumented hot code stays free.  Event timestamps are microseconds
    since a wall-clock epoch captured at module load; forked workers
    inherit the epoch, so worker events [absorb]ed by the coordinator share
    its time base. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : string;      (** "X" complete, "B"/"E" begin/end, "i" instant *)
  ev_ts_us : float;    (** start, microseconds since epoch *)
  ev_dur_us : float;   (** duration for "X" events; 0 otherwise *)
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * string) list;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Microseconds since the trace epoch. *)
val now_us : unit -> float

(** Construct an event without recording it ([ev_pid] is the calling
    process).  Used by the pool's flight recorder, which keeps its own ring
    even when tracing is off. *)
val make :
  ?cat:string ->
  ?args:(string * string) list ->
  ?ph:string ->
  ?dur_us:float ->
  ts_us:float ->
  string ->
  event

(** Record an event unconditionally (no [enabled] check — callers that want
    gating use [with_span]/[instant]). *)
val emit : event -> unit

(** [with_span name f] runs [f] inside a complete ("X") span when tracing
    is enabled, otherwise just runs [f].  [args] is a thunk so building the
    key:value list costs nothing when disabled.  The span is recorded even
    if [f] raises. *)
val with_span :
  ?cat:string -> ?args:(unit -> (string * string) list) -> string ->
  (unit -> 'a) -> 'a

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

(** All recorded events, oldest first. *)
val events : unit -> event list

val num_events : unit -> int

(** Last [n] events, oldest first. *)
val recent : int -> event list

(** Return all events and clear the buffer. *)
val drain : unit -> event list

(** Clear the buffer (workers call this after fork to drop inherited
    events). *)
val reset : unit -> unit

(** Append events recorded elsewhere (e.g. marshalled back from a
    worker). *)
val absorb : event list -> unit

(** Chrome trace-event JSON: an object with a [traceEvents] array plus any
    [extra] top-level members (e.g. a merged metrics snapshot). *)
val to_json :
  ?extra:(string * Hextime_prelude.Minijson.t) list ->
  event list ->
  Hextime_prelude.Minijson.t

val write_file :
  ?extra:(string * Hextime_prelude.Minijson.t) list ->
  string -> event list -> unit

(** One-line human rendering, used by the pool flight recorder's failure
    reports. *)
val render_event : event -> string
