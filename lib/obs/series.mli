(** hexlens: per-metric, per-experiment time series over the run ledger.

    The read side of the cross-run regression observatory: turn a loaded
    {!Ledger} into ordered scalar series — one per (kind, experiment
    group, metric) — for the {!Alert} detectors and the [hextime watch]
    verdict table.  Extraction never reads the clock or the filesystem;
    it is a pure fold over already-loaded entries. *)

type point = {
  p_time : float;  (** the entry's [time_unix] *)
  p_value : float;
  p_git_rev : string;
  p_code_version : string;
}

type t = {
  s_kind : string;  (** ledger record kind the points came from *)
  s_group : string;
      (** experiment discriminator: the first of {!group_labels} present
          on the contributing entries, [""] when none is *)
  s_metric : string;
  s_points : point list;  (** oldest first, in ledger file order *)
}

val key : t -> string
(** Stable identity ["kind/group:metric"] — the [series] label on alert
    records and the row key of the watch table. *)

val group_labels : string list
(** Label priority for the group discriminator: ["experiment"], then
    ["key"] (audit request digest), then ["scale"]. *)

val default_watch : (string * string list) list
(** kind -> watched metric names.  Curated to the paper's longitudinal
    claims (accuracy, arg-min band) and the gated operational figures
    (sweep throughput, serving latency); every extra series is
    false-positive surface. *)

val extract : ?watch:(string * string list) list -> Ledger.entry list -> t list
(** Build every non-empty watched series, in first-appearance order.
    Entries of kind ["alert"] are never scanned — detector output must
    not become detector input. *)

val values : t -> float array
(** The point values, oldest first. *)

val length : t -> int

val last : t -> point option
(** The newest point. *)
