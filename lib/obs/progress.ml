module Ints = Hextime_prelude.Ints

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

let auto_enable () =
  match Sys.getenv_opt "HEXTIME_PROGRESS" with
  | Some "1" -> on := true
  | Some "0" -> on := false
  | _ -> on := (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

let interval_s = 0.5

let done_gauge = Metrics.gauge "sweep.points_done"
let total_gauge = Metrics.gauge "sweep.points_total"
let rate_gauge = Metrics.gauge "sweep.points_per_sec"
let eta_gauge = Metrics.gauge "sweep.eta_seconds"
let alive_gauge = Metrics.gauge "pool.workers_alive"
let busy_gauge = Metrics.gauge "pool.workers_busy"

type t = {
  label : string;
  total : int;
  started : float;
  mutable last_emit : float;
  mutable rendered : bool;  (* a status line is on screen *)
  mutable finished : bool;
}

let create ?(total = 0) ~label () =
  {
    label;
    total;
    started = Unix.gettimeofday ();
    last_emit = 0.0;
    rendered = false;
    finished = false;
  }

let publish t ~done_ ~alive ~busy ~rate ~eta =
  Metrics.set done_gauge (float_of_int done_);
  Metrics.set total_gauge (float_of_int t.total);
  Metrics.set rate_gauge rate;
  Metrics.set eta_gauge eta;
  Metrics.set alive_gauge (float_of_int alive);
  Metrics.set busy_gauge (float_of_int busy);
  if Trace.enabled () then
    Trace.instant ~cat:"hexwatch"
      ~args:
        [
          ("label", t.label);
          ("done", string_of_int done_);
          ("total", string_of_int t.total);
          ("points_per_sec", Printf.sprintf "%.1f" rate);
        ]
      "hexwatch.heartbeat"

let render t ~done_ ~alive ~busy ~rate ~eta =
  let eta_text =
    if eta <= 0.0 || not (Float.is_finite eta) then ""
    else if eta >= 3600.0 then Printf.sprintf ", eta %.1fh" (eta /. 3600.0)
    else if eta >= 60.0 then Printf.sprintf ", eta %.0fm" (eta /. 60.0)
    else Printf.sprintf ", eta %.0fs" eta
  in
  (* total = 0 means "unknown": render a bare count, never a n/0 percent *)
  let counts =
    if t.total > 0 then
      Printf.sprintf "%d/%d (%d%%)" done_ t.total
        (Ints.clamp ~lo:0 ~hi:100 (done_ * 100 / t.total))
    else string_of_int done_
  in
  let workers =
    if alive > 0 then Printf.sprintf ", workers %d/%d busy" busy alive else ""
  in
  (* \r + trailing pad: a shorter line fully overwrites a longer one *)
  Printf.eprintf "\r%s: %s points, %.0f/s%s%s    %!" t.label counts rate
    eta_text workers;
  t.rendered <- true

let tick ?(workers_alive = 0) ?(workers_busy = 0) t ~done_ =
  if not t.finished then begin
    let now = Unix.gettimeofday () in
    let last = done_ = t.total && t.total > 0 in
    if now -. t.last_emit >= interval_s || last then begin
      t.last_emit <- now;
      (* The first tick can land within the clock's granularity of [create]
         (a warm cache answers instantly), making elapsed zero or nearly so:
         done / elapsed then publishes an infinite or garbage
         sweep.points_per_sec gauge and a nonsense ETA.  Until a millisecond
         has passed there is no rate worth reporting — publish 0 and let the
         next throttled tick carry the real figure.  A clock step backwards
         (negative elapsed) is clamped the same way. *)
      let elapsed = now -. t.started in
      let rate =
        if elapsed < 1e-3 then 0.0
        else
          let r = float_of_int done_ /. elapsed in
          if Float.is_finite r then r else 0.0
      in
      let eta =
        if t.total > 0 && rate > 0.0 then
          let e = float_of_int (t.total - done_) /. rate in
          if Float.is_finite e then Float.max 0.0 e else 0.0
        else 0.0
      in
      publish t ~done_ ~alive:workers_alive ~busy:workers_busy ~rate ~eta;
      if !on then
        render t ~done_ ~alive:workers_alive ~busy:workers_busy ~rate ~eta
    end
  end

let finish t =
  if not t.finished then begin
    t.finished <- true;
    if t.rendered then Printf.eprintf "\r%s\r%!" (String.make 79 ' ')
  end
