(* Rolling SLO windows for the serving path.

   The server records every answered request into the current
   fixed-duration window; when the wall clock crosses a window boundary
   the window closes, its latency quantiles are estimated from per-window
   log2 buckets (the same geometry and estimator as Metrics histograms),
   the SLO spec is evaluated against it, and the verdicts land in slo.*
   gauges so a scrape sees the serving health of the last closed window
   plus the violation count and error-budget burn across the whole ring.

   Everything is driven by caller-supplied timestamps — nothing here reads
   the clock — so tests can roll windows deterministically. *)

type spec = {
  window_s : float;  (* window duration *)
  windows : int;  (* ring capacity of closed windows *)
  p99_us : float option;  (* SLO: window p99 latency at most this *)
  warm_ratio : float option;  (* SLO: warm hits / requests at least this *)
  error_budget : float;  (* allowed per-window error rate (burn = rate/budget) *)
}

let default_spec =
  {
    window_s = 10.0;
    windows = 12;
    p99_us = None;
    warm_ratio = None;
    error_budget = 1e-3;
  }

type window = {
  w_start : float;
  w_end : float;
  w_requests : int;
  w_errors : int;
  w_warm : int;
  w_cold : int;
  w_p50_us : float;  (* NaN when the window saw no requests *)
  w_p99_us : float;
  w_error_rate : float;  (* NaN when empty *)
  w_warm_ratio : float;  (* NaN when empty *)
  w_p99_ok : bool;  (* true when no threshold is set or it held *)
  w_warm_ok : bool;
}

let window_ok w = w.w_p99_ok && w.w_warm_ok

type t = {
  spec : spec;
  mutable cur_start : float;
  mutable requests : int;
  mutable errors : int;
  mutable warm : int;
  mutable cold : int;
  mutable lat_count : int;
  mutable lat_sum : float;
  mutable lat_min : float;
  mutable lat_max : float;
  lat_buckets : int array;
  mutable closed : window list;  (* newest first, length <= spec.windows *)
}

(* Gauges describing the last closed window and the ring.  Set on window
   close only: a scrape between closes sees the freshest complete window,
   never a half-filled one. *)
let g_p50 = Metrics.gauge "slo.window_p50_us"
let g_p99 = Metrics.gauge "slo.window_p99_us"
let g_error_rate = Metrics.gauge "slo.window_error_rate"
let g_warm_ratio = Metrics.gauge "slo.window_warm_ratio"
let g_p99_ok = Metrics.gauge "slo.p99_ok"
let g_warm_ok = Metrics.gauge "slo.warm_ratio_ok"
let g_burn = Metrics.gauge "slo.error_budget_burn"
let g_violated = Metrics.gauge "slo.windows_violated"
let g_windows = Metrics.gauge "slo.windows"

let create ?(spec = default_spec) ~now () =
  if spec.window_s <= 0.0 then invalid_arg "Slo.create: window_s must be > 0";
  if spec.windows <= 0 then invalid_arg "Slo.create: windows must be > 0";
  {
    spec;
    cur_start = now;
    requests = 0;
    errors = 0;
    warm = 0;
    cold = 0;
    lat_count = 0;
    lat_sum = 0.0;
    lat_min = infinity;
    lat_max = neg_infinity;
    lat_buckets = Array.make Metrics.bucket_count 0;
    closed = [];
  }

let hist_snapshot t : Metrics.hist_snapshot =
  let buckets = ref [] in
  for i = Metrics.bucket_count - 1 downto 0 do
    if t.lat_buckets.(i) > 0 then
      buckets := (i, t.lat_buckets.(i)) :: !buckets
  done;
  {
    Metrics.hs_count = t.lat_count;
    hs_sum = t.lat_sum;
    hs_min = t.lat_min;
    hs_max = t.lat_max;
    hs_buckets = !buckets;
  }

let rec take n = function
  | [] -> []
  | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs

let bool_gauge g b = Metrics.set g (if b then 1.0 else 0.0)

let close_window t =
  let hs = hist_snapshot t in
  let p50_us = Metrics.quantile hs 0.5 *. 1e6 in
  let p99_us = Metrics.quantile hs 0.99 *. 1e6 in
  let reqs = t.requests in
  let error_rate =
    if reqs = 0 then Float.nan
    else float_of_int t.errors /. float_of_int reqs
  in
  let warm_ratio =
    if reqs = 0 then Float.nan else float_of_int t.warm /. float_of_int reqs
  in
  (* NaN comparisons are false, so an empty window violates nothing *)
  let p99_ok =
    match t.spec.p99_us with None -> true | Some thr -> not (p99_us > thr)
  in
  let warm_ok =
    match t.spec.warm_ratio with
    | None -> true
    | Some thr -> not (warm_ratio < thr)
  in
  let w =
    {
      w_start = t.cur_start;
      w_end = t.cur_start +. t.spec.window_s;
      w_requests = reqs;
      w_errors = t.errors;
      w_warm = t.warm;
      w_cold = t.cold;
      w_p50_us = p50_us;
      w_p99_us = p99_us;
      w_error_rate = error_rate;
      w_warm_ratio = warm_ratio;
      w_p99_ok = p99_ok;
      w_warm_ok = warm_ok;
    }
  in
  t.closed <- take t.spec.windows (w :: t.closed);
  t.cur_start <- w.w_end;
  t.requests <- 0;
  t.errors <- 0;
  t.warm <- 0;
  t.cold <- 0;
  t.lat_count <- 0;
  t.lat_sum <- 0.0;
  t.lat_min <- infinity;
  t.lat_max <- neg_infinity;
  Array.fill t.lat_buckets 0 Metrics.bucket_count 0;
  (* export the closed window and the ring verdicts *)
  Metrics.set g_p50 w.w_p50_us;
  Metrics.set g_p99 w.w_p99_us;
  Metrics.set g_error_rate w.w_error_rate;
  Metrics.set g_warm_ratio w.w_warm_ratio;
  bool_gauge g_p99_ok w.w_p99_ok;
  bool_gauge g_warm_ok w.w_warm_ok;
  Metrics.set g_burn
    (if Float.is_nan w.w_error_rate then 0.0
     else w.w_error_rate /. t.spec.error_budget);
  Metrics.set g_violated
    (float_of_int
       (List.length (List.filter (fun w -> not (window_ok w)) t.closed)));
  Metrics.set g_windows (float_of_int (List.length t.closed))

let tick t ~now =
  let gap = now -. t.cur_start in
  if gap >= t.spec.window_s then begin
    let behind = int_of_float (gap /. t.spec.window_s) in
    if behind > t.spec.windows then begin
      (* long idle stretch: closing thousands of empty windows one by one
         buys nothing — close a ring's worth, then jump to the present *)
      for _ = 1 to t.spec.windows do
        close_window t
      done;
      let skipped =
        float_of_int (behind - t.spec.windows) *. t.spec.window_s
      in
      t.cur_start <- t.cur_start +. skipped
    end
    else
      for _ = 1 to behind do
        close_window t
      done
  end

let observe t ~now ~warm ~error ~latency_s =
  tick t ~now;
  t.requests <- t.requests + 1;
  if error then t.errors <- t.errors + 1
  else if warm then t.warm <- t.warm + 1
  else t.cold <- t.cold + 1;
  t.lat_count <- t.lat_count + 1;
  t.lat_sum <- t.lat_sum +. latency_s;
  if latency_s < t.lat_min then t.lat_min <- latency_s;
  if latency_s > t.lat_max then t.lat_max <- latency_s;
  let i = Metrics.bucket_of latency_s in
  t.lat_buckets.(i) <- t.lat_buckets.(i) + 1

let windows t = t.closed
let spec t = t.spec

let violated t =
  List.length (List.filter (fun w -> not (window_ok w)) t.closed)
