(** OpenMetrics / Prometheus text exposition over {!Metrics} snapshots.

    [render] turns a snapshot into the scrape payload `hextime serve`
    answers on `GET /metrics` and in the `metrics` wire frame: counters
    with the [_total] suffix, gauges verbatim, and log2 histograms as
    cumulative [_bucket{le="..."}] series closed by a [+Inf] bucket plus
    [_sum]/[_count], terminated by [# EOF].  Registry dots become
    underscores ([serve.warm_seconds] -> [serve_warm_seconds]).

    The same module carries a minimal parser and validator for the
    format, shared by [hextime metrics-verify] and the golden tests, so
    what is checked is exactly what is served. *)

val render : Metrics.snapshot -> string

val metric_name : string -> string
(** Sanitize a registry name into the exposition grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*] (every other character becomes ['_']). *)

val escape_label_value : string -> string
(** The exposition format's label-value escapes: backslash, double-quote
    and newline are backslash-escaped; everything else passes through. *)

val value_str : float -> string
(** Sample-value rendering ([NaN]/[+Inf]/[-Inf] spelled as the format
    requires; integral values without an exponent). *)

(** {1 Parsing and validation} *)

type sample = {
  s_name : string;  (** full sample name, suffixes included *)
  s_labels : (string * string) list;
  s_value : float;
}

type family = {
  f_name : string;
  f_type : string;  (** counter, gauge, histogram, ... *)
  f_samples : sample list;  (** in document order *)
}

val parse : string -> (family list, string) result

val find : family list -> string -> family option
val value : family list -> string -> float option
(** First label-free sample with that exact name, across families. *)

type summary = { families : int; samples : int }

val validate : ?require:string list -> string -> (summary, string) result
(** Parse, then check: every [require]d family is present, histogram
    bucket series are cumulative and ordered with a final [+Inf] bucket
    equal to [_count] and a [_sum] sample, counters are non-negative. *)
