(** Naive (non-time-tiled) GPU lowering: one kernel launch per time step,
    space tiled into rectangular blocks with a halo.

    This is the code every CUDA tutorial writes and the foil the paper's
    introduction argues against: without reuse along the time dimension the
    kernel re-streams the whole array from DRAM every step and is
    memory-bound.  Pricing it on the same simulator substrate lets the
    bench quantify the benefit of hexagonal time tiling — the motivation
    for the entire HHC tool chain (Section 2, "time tiling"). *)

val compile :
  Hextime_stencil.Problem.t ->
  block:int array ->
  threads:int ->
  (Hextime_gpu.Kernel.t * int, string) result
(** [compile problem ~block ~threads] is the per-time-step kernel and its
    launch count (= T).  [block] gives the space-tile extents (the innermost
    must be a multiple of 32, as for HHC tiles); the block loads its tile
    plus an [order]-deep halo into shared memory, computes one time step,
    and writes the tile back. *)

val default_blocks : rank:int -> int array list
(** A small grid of sensible block shapes per rank, used by {!best}. *)

type tuned = {
  block : int array;
  threads : int;
  time_s : float;  (** min-of-five simulated time *)
  gflops : float;
}

val best :
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  (tuned, string) result
(** Sweep {!default_blocks} x a few thread counts on the simulator and keep
    the fastest — an honestly tuned naive implementation. *)
