module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Grid = Hextime_stencil.Grid
module Reference = Hextime_stencil.Reference
module Gpu = Hextime_gpu
module Ints = Hextime_prelude.Ints

let core_points t_s = Array.fold_left ( * ) 1 t_s

let redundancy_factor ~order ~t_s ~t_t =
  if order < 1 || t_t < 1 then invalid_arg "Overtile.redundancy_factor";
  Array.iter (fun s -> if s < 1 then invalid_arg "Overtile.redundancy_factor") t_s;
  (* computed points: sum over levels of the shrinking trapezoid *)
  let level r =
    Array.fold_left (fun acc s -> acc * (s + (2 * order * (t_t - r)))) 1 t_s
  in
  let computed = List.fold_left (fun a r -> a + level r) 0 (Ints.range 1 t_t) in
  float_of_int computed /. float_of_int (t_t * core_points t_s)

let validate (problem : Problem.t) (cfg : Config.t) =
  if Config.rank cfg <> problem.Problem.stencil.Stencil.rank then
    Error "configuration rank /= problem rank"
  else if
    Array.exists2 (fun ts s -> ts > s) cfg.Config.t_s problem.Problem.space
  then Error "tile size exceeds problem extent"
  else Ok ()

(* --- simulator lowering -------------------------------------------------- *)

let workload (problem : Problem.t) (cfg : Config.t) =
  let stencil = problem.Problem.stencil in
  let rank = stencil.Stencil.rank in
  let order = stencil.Stencil.order in
  let t_t = cfg.Config.t_t and t_s = cfg.Config.t_s in
  let halo = 2 * order * t_t in
  let wf = Problem.word_factor problem in
  let staged =
    wf * Array.fold_left (fun acc s -> acc * (s + halo)) 1 t_s
  in
  let rows =
    List.map
      (fun r ->
        {
          Gpu.Workload.points =
            Array.fold_left
              (fun acc s -> acc * (s + (2 * order * (t_t - r))))
              1 t_s;
          repeats = 1;
        })
      (Ints.range 1 t_t)
  in
  let threads = Config.total_threads cfg in
  let max_row_points =
    match rows with r :: _ -> r.Gpu.Workload.points | [] -> 1
  in
  let regs =
    Regalloc.per_thread ~stencil_loads:stencil.Stencil.loads ~rank
      ~max_row_points ~threads
  in
  Gpu.Workload.v
    ~label:
      (Printf.sprintf "%s/%s/overtile" (Problem.id problem) (Config.id cfg))
    ~threads
    ~shared_words:
      (2 * wf * Array.fold_left (fun acc s -> acc * (s + halo + 1)) 1 t_s)
    ~regs_per_thread:regs
    ~body:
      {
        Gpu.Pointcost.flops = stencil.Stencil.flops;
        loads = stencil.Stencil.loads;
        transcendentals = stencil.Stencil.transcendentals;
        rank;
        double = problem.Problem.precision = Hextime_stencil.Problem.F64;
      }
    ~rows
    ~input:
      { Gpu.Memory.words = staged; run_length = (t_s.(rank - 1) + halo) * wf }
    ~output:
      {
        Gpu.Memory.words = wf * core_points t_s;
        run_length = t_s.(rank - 1) * wf;
      }
    ~row_stride:((t_s.(rank - 1) + halo) * wf + 1)
    ~chunks:1

let compile_kernels (problem : Problem.t) (cfg : Config.t) =
  match validate problem cfg with
  | Error _ as e -> e
  | Ok () ->
      let blocks =
        let acc = ref 1 in
        Array.iteri
          (fun d ts ->
            acc := !acc * Ints.ceil_div problem.Problem.space.(d) ts)
          cfg.Config.t_s;
        !acc
      in
      let w = workload problem cfg in
      let kernel =
        Gpu.Kernel.v ~label:(Gpu.Workload.(w.label)) ~blocks:[ (w, blocks) ]
      in
      Ok [ (kernel, Ints.ceil_div problem.Problem.time cfg.Config.t_t) ]

let measure arch problem cfg =
  match compile_kernels problem cfg with
  | Error _ as e -> e
  | Ok kernels -> Gpu.Simulator.measure arch kernels

(* --- CPU execution with per-level checking -------------------------------- *)

(* a small rank-generic dense box with clipped bounds *)
type box = { lo : int array; hi : int array (* exclusive *) }

let box_dims b = Array.map2 (fun h l -> h - l) b.hi b.lo
let box_size b = Array.fold_left ( * ) 1 (box_dims b)

let iter_box b f =
  let rank = Array.length b.lo in
  let idx = Array.copy b.lo in
  let rec go d =
    if d = rank then f idx
    else
      for i = b.lo.(d) to b.hi.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  if Array.exists2 (fun l h -> l >= h) b.lo b.hi then () else go 0

let linear_in b idx =
  let dims = box_dims b in
  let acc = ref 0 in
  Array.iteri (fun d i -> acc := (!acc * dims.(d)) + (i - b.lo.(d))) idx;
  !acc

let run (problem : Problem.t) (cfg : Config.t) ~init =
  (match validate problem cfg with
  | Error msg -> invalid_arg ("Overtile.run: " ^ msg)
  | Ok () -> ());
  if Grid.dims init <> problem.Problem.space then
    invalid_arg "Overtile.run: init extents mismatch";
  let stencil = problem.Problem.stencil in
  let rank = stencil.Stencil.rank in
  let order = stencil.Stencil.order in
  let space = problem.Problem.space in
  let t_t = cfg.Config.t_t and t_s = cfg.Config.t_s in
  let cells = Array.fold_left ( * ) 1 space in
  let strides =
    let s = Array.make rank 1 in
    for d = rank - 2 downto 0 do
      s.(d) <- s.(d + 1) * space.(d + 1)
    done;
    s
  in
  let glinear idx =
    let acc = ref 0 in
    Array.iteri (fun d i -> acc := !acc + (i * strides.(d))) idx;
    !acc
  in
  let is_boundary idx =
    let b = ref false in
    Array.iteri
      (fun d i -> if i < order || i >= space.(d) - order then b := true)
      idx;
    !b
  in
  let current = ref (Array.copy (Grid.unsafe_data init)) in
  let bands = Ints.ceil_div problem.Problem.time t_t in
  for band = 0 to bands - 1 do
    let depth = min t_t (problem.Problem.time - (band * t_t)) in
    (* per-level output buffers and write-once masks for this band *)
    let levels = Array.init depth (fun _ -> Array.make cells nan) in
    let masks = Array.init depth (fun _ -> Bytes.make cells '\000') in
    (* enumerate space tiles *)
    let tile_counts = Array.mapi (fun d ts -> Ints.ceil_div space.(d) ts) t_s in
    let tiles = { lo = Array.make rank 0; hi = tile_counts } in
    iter_box tiles (fun tile_idx ->
        let core =
          {
            lo = Array.mapi (fun d b -> b * t_s.(d)) tile_idx;
            hi =
              Array.mapi (fun d b -> min space.(d) ((b + 1) * t_s.(d))) tile_idx;
          }
        in
        let clipped_ext r =
          {
            lo = Array.map (fun l -> max 0 (l - (order * (depth - r)))) core.lo;
            hi =
              Array.mapi
                (fun d h -> min space.(d) (h + (order * (depth - r))))
                core.hi;
          }
        in
        let base = clipped_ext 0 in
        (* two local buffers over the base box *)
        let size = box_size base in
        let prev = Array.make size nan and next = Array.make size nan in
        iter_box base (fun idx ->
            prev.(linear_in base idx) <- !current.(glinear idx));
        let prev = ref prev and next = ref next in
        for r = 1 to depth do
          let region = clipped_ext r in
          iter_box region (fun idx ->
              let v =
                if is_boundary idx then !prev.(linear_in base idx)
                else
                  Stencil.apply stencil (fun off ->
                      let nbr = Array.mapi (fun d i -> i + off.(d)) idx in
                      !prev.(linear_in base nbr))
              in
              !next.(linear_in base idx) <- v;
              (* core writes land in the band's level buffers, write-once *)
              let in_core =
                let ok = ref true in
                Array.iteri
                  (fun d i -> if i < core.lo.(d) || i >= core.hi.(d) then ok := false)
                  idx;
                !ok
              in
              if in_core then begin
                let g = glinear idx in
                if Bytes.get masks.(r - 1) g = '\001' then
                  invalid_arg "Overtile.run: core written twice";
                levels.(r - 1).(g) <- v;
                Bytes.set masks.(r - 1) g '\001'
              end);
          (* carry non-recomputed points of the shrinking box forward *)
          iter_box base (fun idx ->
              let inside =
                let ok = ref true in
                Array.iteri
                  (fun d i ->
                    if i < region.lo.(d) || i >= region.hi.(d) then ok := false)
                  idx;
                !ok
              in
              if not inside then
                !next.(linear_in base idx) <- !prev.(linear_in base idx));
          let tmp = !prev in
          prev := !next;
          next := tmp
        done);
    (* every level must be fully covered by the tile cores *)
    Array.iter
      (fun mask ->
        if Bytes.exists (fun c -> c = '\000') mask then
          invalid_arg "Overtile.run: incomplete core coverage")
      masks;
    current := levels.(depth - 1)
  done;
  let out = Grid.create space in
  Array.blit !current 0 (Grid.unsafe_data out) 0 cells;
  out

let verify problem cfg ~init =
  match run problem cfg ~init with
  | exception Invalid_argument msg -> Error msg
  | tiled ->
      let expected = Reference.run problem ~init in
      if Grid.equal tiled expected then Ok ()
      else
        Error
          (Printf.sprintf
             "overtile result differs from reference (max diff %g)"
             (Grid.max_abs_diff tiled expected))
