module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Grid = Hextime_stencil.Grid
module Reference = Hextime_stencil.Reference
module Gpu = Hextime_gpu
module Ints = Hextime_prelude.Ints

(* Tile (a, b): time band t in [a*t_t + 1, (a+1)*t_t], skewed space
   s' = s + order * (t - 1) in [b*t_s, (b+1)*t_s). *)

let bands ~t_t ~time = Ints.ceil_div time t_t

let b_max ~order ~t_s ~space ~time = ((space - 1) + (order * (time - 1))) / t_s

let rows_of_tile ~order ~t_s ~t_t ~space ~time (a, b) =
  List.filter_map
    (fun r ->
      let t = (a * t_t) + r + 1 in
      if t > time then None
      else
        let shift = order * (t - 1) in
        let lo = max 0 ((b * t_s) - shift) in
        let hi = min (space - 1) ((((b + 1) * t_s) - 1) - shift) in
        if lo > hi then None else Some (t, lo, hi))
    (Ints.range 0 (t_t - 1))

let tiles_by_wavefront ~order ~t_s ~t_t ~space ~time =
  let amax = bands ~t_t ~time - 1 in
  let bmax = b_max ~order ~t_s ~space ~time in
  List.filter_map
    (fun w ->
      let tiles =
        List.filter_map
          (fun a ->
            let b = w - a in
            if b < 0 || b > bmax then None
            else
              match rows_of_tile ~order ~t_s ~t_t ~space ~time (a, b) with
              | [] -> None
              | rows -> Some ((a, b), rows))
          (Ints.range 0 amax)
      in
      if tiles = [] then None else Some tiles)
    (Ints.range 0 (amax + bmax))

let wavefront_widths ~order ~t_s ~t_t ~space ~time =
  if t_t < 2 || t_t mod 2 <> 0 then
    invalid_arg "Skewed: t_t must be even and >= 2";
  if t_s < 1 || space < 1 || time < 1 then invalid_arg "Skewed: bad extents";
  List.map List.length (tiles_by_wavefront ~order ~t_s ~t_t ~space ~time)

let validate (problem : Problem.t) (cfg : Config.t) =
  if Config.rank cfg <> problem.Problem.stencil.Stencil.rank then
    Error "configuration rank /= problem rank"
  else if Array.exists2 (fun ts s -> ts > s) cfg.Config.t_s problem.Problem.space
  then Error "tile size exceeds problem extent"
  else Ok ()

let workload (problem : Problem.t) (cfg : Config.t) =
  let stencil = problem.Problem.stencil in
  let rank = stencil.Stencil.rank in
  let order = stencil.Stencil.order in
  let t_t = cfg.Config.t_t and t_s0 = cfg.Config.t_s.(0) in
  let inner =
    Array.fold_left ( * ) 1 (Array.sub cfg.Config.t_s 1 (rank - 1))
  in
  let fp = Footprint.of_problem problem cfg in
  let wf = Problem.word_factor problem in
  (* a skewed rectangle reads an order-deep halo shifted across the band and
     writes the shifted union of its rows *)
  let input_words = (t_s0 + (order * (t_t + 1))) * inner * wf in
  let output_words = (t_s0 + (order * (t_t - 1)) + 1) * inner * wf in
  let rows = [ { Gpu.Workload.points = t_s0 * inner; repeats = t_t } ] in
  let threads = Config.total_threads cfg in
  let regs =
    Regalloc.per_thread ~stencil_loads:stencil.Stencil.loads ~rank
      ~max_row_points:(t_s0 * inner) ~threads
  in
  Gpu.Workload.v
    ~label:(Printf.sprintf "%s/%s/skewed" (Problem.id problem) (Config.id cfg))
    ~threads ~shared_words:fp.Footprint.shared_words ~regs_per_thread:regs
    ~body:
      {
        Gpu.Pointcost.flops = stencil.Stencil.flops;
        loads = stencil.Stencil.loads;
        transcendentals = stencil.Stencil.transcendentals;
        rank;
        double = problem.Problem.precision = Hextime_stencil.Problem.F64;
      }
    ~rows
    ~input:{ Gpu.Memory.words = input_words; run_length = cfg.Config.t_s.(rank - 1) }
    ~output:{ Gpu.Memory.words = output_words; run_length = cfg.Config.t_s.(rank - 1) }
    ~row_stride:fp.Footprint.inner_stride ~chunks:fp.Footprint.chunks

let compile_kernels (problem : Problem.t) (cfg : Config.t) =
  match validate problem cfg with
  | Error _ as e -> e
  | Ok () ->
      let order = problem.Problem.stencil.Stencil.order in
      let widths =
        wavefront_widths ~order ~t_s:cfg.Config.t_s.(0) ~t_t:cfg.Config.t_t
          ~space:problem.Problem.space.(0) ~time:problem.Problem.time
      in
      let w = workload problem cfg in
      (* batch runs of equal width into (kernel, count) pairs *)
      let rec batch acc = function
        | [] -> List.rev acc
        | width :: rest ->
            let same, rest' =
              let rec split n = function
                | x :: tl when x = width -> split (n + 1) tl
                | tl -> (n, tl)
              in
              split 1 rest
            in
            let kernel =
              Gpu.Kernel.v
                ~label:(Printf.sprintf "%s/w%d" (Gpu.Workload.(w.label)) width)
                ~blocks:[ (w, width) ]
            in
            batch ((kernel, same) :: acc) rest'
      in
      Ok (batch [] widths)

let run (problem : Problem.t) (cfg : Config.t) ~init =
  let order = problem.Problem.stencil.Stencil.order in
  let tiles =
    tiles_by_wavefront ~order ~t_s:cfg.Config.t_s.(0) ~t_t:cfg.Config.t_t
      ~space:problem.Problem.space.(0) ~time:problem.Problem.time
    |> List.concat_map (fun wf ->
           List.map
             (fun ((a, b), rows) ->
               (Printf.sprintf "skewed tile(a=%d,b=%d)" a b, rows))
             wf)
  in
  Exec_cpu.run_tile_schedule problem cfg ~init ~tiles

let verify problem cfg ~init =
  match run problem cfg ~init with
  | exception Exec_cpu.Dependence_violation msg -> Error msg
  | tiled ->
      let expected = Reference.run problem ~init in
      if Grid.equal tiled expected then Ok ()
      else
        Error
          (Printf.sprintf
             "skewed result differs from reference (max diff %g)"
             (Grid.max_abs_diff tiled expected))

let measure arch problem cfg =
  match compile_kernels problem cfg with
  | Error _ as e -> e
  | Ok kernels -> Gpu.Simulator.measure arch kernels
