(** Overlapped (ghost-zone) tiling with redundant computation — the
    Overtile/ghost-zone scheme the paper's related work contrasts hexagonal
    tiling against (Section 2: "Overtile uses redundant computation whereas
    hybrid-hexagonal tiling uses hexagonal tiles to avoid redundant
    computation", and [37]'s analytical ghost-zone model).

    Each thread block loads a tile extended by an [order * t_t]-deep halo in
    every space dimension, advances [t_t] time steps entirely in shared
    memory on a shrinking trapezoid, and writes back only its core.  Tiles
    are fully independent within a time band, so a band is ONE kernel launch
    ([ceil(T/t_t)] launches in total, versus hexagonal's [2 ceil(T/t_t)]) —
    but the halo work is recomputed by every neighbour, a redundancy factor
    of [prod_d (t_s_d + 2*order*t_t) / prod_d t_s_d] on the loads and a
    growing share of the compute as [t_t] deepens.  The bench measures where
    the trade crosses over against hexagonal tiling.

    Correctness is established with the same dependence-checked history as
    the other schemes: every core write of every intermediate time level is
    checked and compared against the naive reference. *)

val redundancy_factor :
  order:int -> t_s:int array -> t_t:int -> float
(** Computed points per tile divided by core points: 1.0 means no redundant
    work (only possible at t_t = 1). *)

val compile_kernels :
  Hextime_stencil.Problem.t ->
  Config.t ->
  ((Hextime_gpu.Kernel.t * int) list, string) result
(** One kernel per time band, launched [ceil(T/t_t)] times. *)

val verify :
  Hextime_stencil.Problem.t ->
  Config.t ->
  init:Hextime_stencil.Grid.t ->
  (unit, string) result
(** CPU execution of the overlapped schedule with per-level core checking
    against the naive reference. *)

val measure :
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  Config.t ->
  (float, string) result
(** Min-of-five simulated time. *)
