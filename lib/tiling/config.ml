type t = { t_t : int; t_s : int array; threads : int array }

let make ~t_t ~t_s ~threads =
  let rank = Array.length t_s in
  if rank < 1 || rank > 3 then Error "tile rank must be 1..3"
  else if t_t <= 0 then Error "t_t must be positive"
  else if t_t mod 2 <> 0 then Error "t_t must be even (hexagonal tiling)"
  else if Array.exists (fun s -> s <= 0) t_s then
    Error "tile sizes must be positive"
  else if rank > 1 && t_s.(rank - 1) mod 32 <> 0 then
    Error "innermost tile size must be a multiple of 32"
  else if Array.length threads < 1 then Error "need at least one thread dim"
  else if Array.exists (fun n -> n <= 0) threads then
    Error "thread counts must be positive"
  else Ok { t_t; t_s = Array.copy t_s; threads = Array.copy threads }

let make_exn ~t_t ~t_s ~threads =
  match make ~t_t ~t_s ~threads with
  | Ok c -> c
  | Error msg -> invalid_arg ("Config.make: " ^ msg)

let rank c = Array.length c.t_s
let total_threads c = Array.fold_left ( * ) 1 c.threads

let id c =
  let join a = String.concat "x" (Array.to_list (Array.map string_of_int a)) in
  Printf.sprintf "tT%d-tS%s-thr%s" c.t_t (join c.t_s) (join c.threads)

let pp ppf c = Format.pp_print_string ppf (id c)
let equal a b = a.t_t = b.t_t && a.t_s = b.t_s && a.threads = b.threads
let compare = Stdlib.compare
