(** Discrete hexagonal tiling geometry for the outer (time, s_0) plane
    (Section 3.1 / Figure 1 of the paper).

    The (1-based) time steps [1..T] and the space coordinate [s] of the
    hexagonally tiled dimension are partitioned into two staggered families
    of hexagons.  "Green" tiles have a base of [t_s] points; the "yellow"
    tiles between them are [2*order] points wider at the base so the two
    families exactly partition the plane (the paper idealises both families
    as congruent, which is what its width/footprint formulas express; the
    [+2*order] is the discretisation the idealisation drops).

    A tile of family [f], band [a], horizontal index [b] occupies rows
    [r = 0 .. t_t-1]:
    - green: time [a*t_t + r + 1], s in [b*pitch - d(r), b*pitch + t_s - 1 + d(r)]
    - yellow: time [a*t_t - t_t/2 + r + 1], shifted right by
      [t_s + order*t_t/2 - order], and wider by [2*order];
    where [d r = order * min r (t_t - 1 - r)] is the oblique-side depth.

    All quantities are parameterised by the stencil [order] (dependence
    radius); the paper treats order 1, for which [pitch = 2 t_s + t_t]
    (Equation 5) and [w_tile = t_s + t_t - 2] (Equation 4). *)

type family = Green | Yellow

type tile = { family : family; band : int; index : int }
(** [band] is the vertical position [a]; [index] the horizontal position
    [b]. *)

val family_to_string : family -> string

(** {1 Closed-form quantities (the model's view)} *)

val width_of_tile : order:int -> t_s:int -> t_t:int -> int
(** w_tile, Equation 4 generalised: [t_s + order * t_t - 2 * order]. *)

val pitch : order:int -> t_s:int -> t_t:int -> int
(** Horizontal period of one family: [2 t_s + order * t_t] (Equation 5). *)

val num_wavefronts : t_t:int -> time:int -> int
(** N_w, Equation 3: [2 * ceil (time / t_t)] (the paper drops epsilon). *)

val wavefront_width : order:int -> t_s:int -> t_t:int -> space:int -> int
(** w, Equation 5: [ceil (space / pitch)]. *)

val row_widths : order:int -> t_s:int -> t_t:int -> int list
(** Idealised per-row widths of a tile, bottom to top:
    [t_s, t_s + 2*order, ..., w_tile, w_tile, ..., t_s] ([t_t] entries).
    This is exactly the sequence summed in Equations 9, 15 and 27. *)

(** {1 Exact lattice (the executor's view)} *)

val rows : order:int -> t_s:int -> t_t:int -> tile -> (int * int * int) list
(** Unclipped rows of a tile as [(t, s_lo, s_hi)] (inclusive bounds), bottom
    to top. *)

val rows_clipped :
  order:int ->
  t_s:int ->
  t_t:int ->
  space:int ->
  time:int ->
  tile ->
  (int * int * int) list
(** Rows intersected with the iteration domain [1 <= t <= time],
    [0 <= s < space]; may be empty. *)

val wavefronts :
  order:int -> t_s:int -> t_t:int -> space:int -> time:int -> tile list list
(** The tiles of each wavefront in execution order (yellow band [a] before
    green band [a], increasing [a]); only tiles with a non-empty clipped
    extent appear, and empty wavefronts are dropped. *)
