module Ints = Hextime_prelude.Ints

type family = Green | Yellow
type tile = { family : family; band : int; index : int }

let family_to_string = function Green -> "green" | Yellow -> "yellow"

let check ~order ~t_s ~t_t =
  if order < 1 then invalid_arg "Hexgeom: order must be >= 1";
  if t_s < 1 then invalid_arg "Hexgeom: t_s must be >= 1";
  if t_t < 2 || t_t mod 2 <> 0 then
    invalid_arg "Hexgeom: t_t must be even and >= 2"

let width_of_tile ~order ~t_s ~t_t =
  check ~order ~t_s ~t_t;
  t_s + (order * t_t) - (2 * order)

let pitch ~order ~t_s ~t_t =
  check ~order ~t_s ~t_t;
  (2 * t_s) + (order * t_t)

let num_wavefronts ~t_t ~time =
  if time < 1 then invalid_arg "Hexgeom: time must be >= 1";
  2 * Ints.ceil_div time t_t

let wavefront_width ~order ~t_s ~t_t ~space =
  if space < 1 then invalid_arg "Hexgeom: space must be >= 1";
  Ints.ceil_div space (pitch ~order ~t_s ~t_t)

let depth ~order ~t_t r = order * min r (t_t - 1 - r)

let row_widths ~order ~t_s ~t_t =
  check ~order ~t_s ~t_t;
  List.map (fun r -> t_s + (2 * depth ~order ~t_t r)) (Ints.range 0 (t_t - 1))

let rows ~order ~t_s ~t_t tile =
  check ~order ~t_s ~t_t;
  let p = pitch ~order ~t_s ~t_t in
  let t_base, s_anchor, base_width =
    match tile.family with
    | Green -> (tile.band * t_t, tile.index * p, t_s)
    | Yellow ->
        ( (tile.band * t_t) - (t_t / 2),
          (tile.index * p) + t_s + (order * t_t / 2) - order,
          t_s + (2 * order) )
  in
  List.map
    (fun r ->
      let d = depth ~order ~t_t r in
      (t_base + r + 1, s_anchor - d, s_anchor + base_width - 1 + d))
    (Ints.range 0 (t_t - 1))

let rows_clipped ~order ~t_s ~t_t ~space ~time tile =
  rows ~order ~t_s ~t_t tile
  |> List.filter_map (fun (t, lo, hi) ->
         if t < 1 || t > time then None
         else
           let lo = max lo 0 and hi = min hi (space - 1) in
           if lo > hi then None else Some (t, lo, hi))

let wavefronts ~order ~t_s ~t_t ~space ~time =
  check ~order ~t_s ~t_t;
  let p = pitch ~order ~t_s ~t_t in
  let max_d = order * (t_t / 2) in
  let b_min = -(Ints.ceil_div (t_s + max_d) p) - 1 in
  let b_max = Ints.ceil_div (space + max_d) p + 1 in
  let tiles_of family band =
    List.filter_map
      (fun index ->
        let tile = { family; band; index } in
        if rows_clipped ~order ~t_s ~t_t ~space ~time tile = [] then None
        else Some tile)
      (Ints.range b_min b_max)
  in
  let last_band = Ints.ceil_div time t_t in
  List.concat_map
    (fun band -> [ tiles_of Yellow band; tiles_of Green band ])
    (Ints.range 0 last_band)
  |> List.filter (fun wf -> wf <> [])
