module Ints = Hextime_prelude.Ints
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Gpu = Hextime_gpu

type t = {
  green : Gpu.Kernel.t;
  yellow : Gpu.Kernel.t;
  green_launches : int;
  yellow_launches : int;
  footprint : Footprint.t;
  regs_per_thread : int;
  blocks_per_wavefront : int;
}

let validate (problem : Problem.t) (cfg : Config.t) =
  let rank = Array.length problem.space in
  if Config.rank cfg <> rank then Error "configuration rank /= problem rank"
  else if
    Array.exists2 (fun ts s -> ts > s) cfg.t_s problem.space
  then Error "tile size exceeds problem extent"
  else if cfg.t_t > 2 * problem.time then Error "time tile exceeds 2T"
  else Ok ()

(* Per-chunk compute rows: widths from the hexagonal cross-section scaled by
   the inner tile extents (Equations 9, 15, 27: row x computes x * prod(t_s
   inner) points). Equal-width rows come in pairs. *)
let rows_of ~order ~base (cfg : Config.t) =
  let rank = Config.rank cfg in
  let inner = Array.fold_left ( * ) 1 (Array.sub cfg.t_s 1 (rank - 1)) in
  List.map
    (fun d ->
      { Gpu.Workload.points = (base + (2 * order * d)) * inner; repeats = 2 })
    (Ints.range 0 ((cfg.t_t / 2) - 1))

(* [workload] with the validation already done and the footprint and the
   label prefix — both family-invariant — computed by the caller, so
   [compile] pays for them once, not per family *)
let workload_checked (problem : Problem.t) (cfg : Config.t) ~fp ~label_prefix
    ~family =
  let stencil = problem.stencil in
  let order = stencil.Stencil.order in
  let rank = stencil.Stencil.rank in
  let base =
    match family with
    | Hexgeom.Green -> cfg.t_s.(0)
    | Hexgeom.Yellow -> cfg.t_s.(0) + (2 * order)
  in
  let rows = rows_of ~order ~base cfg in
  let threads = Config.total_threads cfg in
  let max_row_points =
    List.fold_left
      (fun acc (r : Gpu.Workload.row) -> max acc r.points)
      1 rows
  in
  let regs =
    Regalloc.per_thread ~stencil_loads:stencil.Stencil.loads ~rank
      ~max_row_points ~threads
  in
  let body =
    {
      Gpu.Pointcost.flops = stencil.Stencil.flops;
      loads = stencil.Stencil.loads;
      transcendentals = stencil.Stencil.transcendentals;
      rank;
      double = problem.Problem.precision = Hextime_stencil.Problem.F64;
    }
  in
  let run_length = cfg.t_s.(rank - 1) in
  let family_name =
    match family with Hexgeom.Green -> "green" | Hexgeom.Yellow -> "yellow"
  in
  Gpu.Workload.v
    ~label:(label_prefix ^ family_name)
    ~threads ~shared_words:fp.Footprint.shared_words ~regs_per_thread:regs
    ~body ~rows
    ~input:{ Gpu.Memory.words = fp.Footprint.input_words; run_length }
    ~output:{ Gpu.Memory.words = fp.Footprint.output_words; run_length }
    ~row_stride:fp.Footprint.inner_stride ~chunks:fp.Footprint.chunks

let label_prefix_of (problem : Problem.t) (cfg : Config.t) =
  Printf.sprintf "%s/%s/" (Problem.id problem) (Config.id cfg)

let workload (problem : Problem.t) (cfg : Config.t) ~family =
  match validate problem cfg with
  | Error _ as e -> e
  | Ok () ->
      let fp = Footprint.of_problem problem cfg in
      Ok
        (workload_checked problem cfg ~fp
           ~label_prefix:(label_prefix_of problem cfg)
           ~family)

let compile (problem : Problem.t) (cfg : Config.t) =
  match validate problem cfg with
  | Error _ as e -> e
  | Ok () ->
      let fp = Footprint.of_problem problem cfg in
      let label_prefix = label_prefix_of problem cfg in
      let wg =
        workload_checked problem cfg ~fp ~label_prefix ~family:Hexgeom.Green
      in
      let wy =
        workload_checked problem cfg ~fp ~label_prefix ~family:Hexgeom.Yellow
      in
      let stencil = problem.stencil in
      let order = stencil.Stencil.order in
      let blocks =
        Hexgeom.wavefront_width ~order ~t_s:cfg.t_s.(0) ~t_t:cfg.t_t
          ~space:problem.space.(0)
      in
      let launches = Ints.ceil_div problem.time cfg.t_t in
      let green =
        Gpu.Kernel.v ~label:(Gpu.Workload.(wg.label)) ~blocks:[ (wg, blocks) ]
      in
      let yellow =
        Gpu.Kernel.v ~label:(Gpu.Workload.(wy.label)) ~blocks:[ (wy, blocks) ]
      in
      Ok
        {
          green;
          yellow;
          green_launches = launches;
          yellow_launches = launches;
          footprint = fp;
          regs_per_thread = Gpu.Workload.(wg.regs_per_thread);
          blocks_per_wavefront = blocks;
        }

let kernel_sequence t =
  [ (t.yellow, t.yellow_launches); (t.green, t.green_launches) ]

(* --- lowering to the typed kernel IR ----------------------------------- *)

module Ir = Hextime_ir.Ir

let ir_family = function Hexgeom.Green -> Ir.Green | Hexgeom.Yellow -> Ir.Yellow

let ir_rule (stencil : Stencil.t) =
  match stencil.Stencil.rule with
  | Stencil.Linear { taps; constant } ->
      Ir.Linear
        {
          taps =
            List.map
              (fun (t : Stencil.tap) ->
                { Ir.offset = Array.copy t.Stencil.offset; weight = t.Stencil.weight })
              taps;
          constant;
        }
  | Stencil.Nonlinear { offsets; _ } ->
      Ir.Opaque
        {
          offsets = List.map Array.copy offsets;
          note =
            "non-convolutional body (e.g. gradient): loads the offsets \
             below, then applies the user expression";
        }

(* The double-buffer half read at time step r; the write goes to the other
   half.  The staged input lands in Ping, which row 0 reads. *)
let read_half r = if r mod 2 = 0 then Ir.Ping else Ir.Pong

let ir_kernel (problem : Problem.t) (cfg : Config.t) ~family =
  match workload problem cfg ~family with
  | Error _ as e -> e
  | Ok w ->
      let stencil = problem.Problem.stencil in
      let rank = stencil.Stencil.rank in
      let order = stencil.Stencil.order in
      let fp = Footprint.of_problem problem cfg in
      let inner = Array.fold_left ( * ) 1 (Array.sub cfg.t_s 1 (rank - 1)) in
      let extra = match family with Hexgeom.Green -> 0 | Hexgeom.Yellow -> 2 * order in
      let widths = Hexgeom.row_widths ~order ~t_s:cfg.t_s.(0) ~t_t:cfg.t_t in
      let rows =
        List.mapi
          (fun r width ->
            { Ir.r; width; extra; points = (width + extra) * inner })
          widths
      in
      let run_length = cfg.t_s.(rank - 1) in
      let per_chunk =
        [
          Ir.Load_tile
            { words = fp.Footprint.input_words; run_length; dst = Ir.Ping };
          Ir.Sync;
        ]
        @ List.concat_map
            (fun (row : Ir.row) ->
              [
                Ir.Compute_row
                  {
                    Ir.row;
                    reads = read_half row.Ir.r;
                    writes = Ir.other_half (read_half row.Ir.r);
                    stride = fp.Footprint.inner_stride;
                  };
                Ir.Sync;
              ])
            rows
        @ [
            Ir.Store_tile
              {
                words = fp.Footprint.output_words;
                run_length;
                src = read_half cfg.t_t;
              };
            Ir.Sync;
          ]
      in
      let body =
        if fp.Footprint.chunks > 1 then
          [ Ir.Chunk_loop { trips = fp.Footprint.chunks; body = per_chunk } ]
        else per_chunk
      in
      let kernel =
        {
          Ir.name =
            Printf.sprintf "%s_%s" stencil.Stencil.name
              (Hexgeom.family_to_string family);
          family = ir_family family;
          problem_id = Problem.id problem;
          config_id = Config.id cfg;
          threads = w.Gpu.Workload.threads;
          regs_per_thread = w.Gpu.Workload.regs_per_thread;
          rank;
          order;
          word_factor = Problem.word_factor problem;
          t_t = cfg.t_t;
          t_s = Array.copy cfg.t_s;
          space = Array.copy problem.Problem.space;
          time = problem.Problem.time;
          smem_ext =
            Array.map (fun s -> s + (order * cfg.t_t) + 1) cfg.t_s;
          smem_words = fp.Footprint.shared_words;
          rule = ir_rule stencil;
          body;
        }
      in
      (match Ir.validate kernel with
      | Ok () -> Ok kernel
      | Error e -> Error (Printf.sprintf "lowered IR ill-formed: %s" e))

let ir_program (problem : Problem.t) (cfg : Config.t) =
  match
    ( compile problem cfg,
      ir_kernel problem cfg ~family:Hexgeom.Yellow,
      ir_kernel problem cfg ~family:Hexgeom.Green )
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
  | Ok compiled, Ok ky, Ok kg ->
      let launch (k : Ir.kernel) =
        {
          Ir.kernel_name = k.Ir.name;
          blocks = compiled.blocks_per_wavefront;
          threads = k.Ir.threads;
        }
      in
      Ok
        {
          Ir.host =
            {
              Ir.problem_id = Problem.id problem;
              config_id = Config.id cfg;
              bands = compiled.green_launches;
              per_band = [ launch ky; launch kg ];
              device_sync = true;
            };
          kernels = [ ky; kg ];
        }
