module Ints = Hextime_prelude.Ints
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Gpu = Hextime_gpu

type t = {
  green : Gpu.Kernel.t;
  yellow : Gpu.Kernel.t;
  green_launches : int;
  yellow_launches : int;
  footprint : Footprint.t;
  regs_per_thread : int;
  blocks_per_wavefront : int;
}

let validate (problem : Problem.t) (cfg : Config.t) =
  let rank = Array.length problem.space in
  if Config.rank cfg <> rank then Error "configuration rank /= problem rank"
  else if
    Array.exists2 (fun ts s -> ts > s) cfg.t_s problem.space
  then Error "tile size exceeds problem extent"
  else if cfg.t_t > 2 * problem.time then Error "time tile exceeds 2T"
  else Ok ()

(* Per-chunk compute rows: widths from the hexagonal cross-section scaled by
   the inner tile extents (Equations 9, 15, 27: row x computes x * prod(t_s
   inner) points). Equal-width rows come in pairs. *)
let rows_of ~order ~base (cfg : Config.t) =
  let rank = Config.rank cfg in
  let inner = Array.fold_left ( * ) 1 (Array.sub cfg.t_s 1 (rank - 1)) in
  List.map
    (fun d ->
      { Gpu.Workload.points = (base + (2 * order * d)) * inner; repeats = 2 })
    (Ints.range 0 ((cfg.t_t / 2) - 1))

let workload (problem : Problem.t) (cfg : Config.t) ~family =
  match validate problem cfg with
  | Error _ as e -> e
  | Ok () ->
      let stencil = problem.stencil in
      let order = stencil.Stencil.order in
      let rank = stencil.Stencil.rank in
      let base =
        match family with
        | Hexgeom.Green -> cfg.t_s.(0)
        | Hexgeom.Yellow -> cfg.t_s.(0) + (2 * order)
      in
      let fp = Footprint.of_problem problem cfg in
      let rows = rows_of ~order ~base cfg in
      let threads = Config.total_threads cfg in
      let max_row_points =
        List.fold_left
          (fun acc (r : Gpu.Workload.row) -> max acc r.points)
          1 rows
      in
      let regs =
        Regalloc.per_thread ~stencil_loads:stencil.Stencil.loads ~rank
          ~max_row_points ~threads
      in
      let body =
        {
          Gpu.Pointcost.flops = stencil.Stencil.flops;
          loads = stencil.Stencil.loads;
          transcendentals = stencil.Stencil.transcendentals;
          rank;
          double = problem.Problem.precision = Hextime_stencil.Problem.F64;
        }
      in
      let run_length = cfg.t_s.(rank - 1) in
      let family_name =
        match family with Hexgeom.Green -> "green" | Hexgeom.Yellow -> "yellow"
      in
      Ok
        (Gpu.Workload.v
           ~label:
             (Printf.sprintf "%s/%s/%s" (Problem.id problem) (Config.id cfg)
                family_name)
           ~threads ~shared_words:fp.Footprint.shared_words
           ~regs_per_thread:regs ~body ~rows
           ~input:{ Gpu.Memory.words = fp.Footprint.input_words; run_length }
           ~output:{ Gpu.Memory.words = fp.Footprint.output_words; run_length }
           ~row_stride:fp.Footprint.inner_stride ~chunks:fp.Footprint.chunks)

let compile (problem : Problem.t) (cfg : Config.t) =
  match
    ( workload problem cfg ~family:Hexgeom.Green,
      workload problem cfg ~family:Hexgeom.Yellow )
  with
  | Error e, _ | _, Error e -> Error e
  | Ok wg, Ok wy ->
      let stencil = problem.stencil in
      let order = stencil.Stencil.order in
      let blocks =
        Hexgeom.wavefront_width ~order ~t_s:cfg.t_s.(0) ~t_t:cfg.t_t
          ~space:problem.space.(0)
      in
      let launches = Ints.ceil_div problem.time cfg.t_t in
      let fp = Footprint.of_problem problem cfg in
      let green =
        Gpu.Kernel.v ~label:(Gpu.Workload.(wg.label)) ~blocks:[ (wg, blocks) ]
      in
      let yellow =
        Gpu.Kernel.v ~label:(Gpu.Workload.(wy.label)) ~blocks:[ (wy, blocks) ]
      in
      Ok
        {
          green;
          yellow;
          green_launches = launches;
          yellow_launches = launches;
          footprint = fp;
          regs_per_thread = Gpu.Workload.(wg.regs_per_thread);
          blocks_per_wavefront = blocks;
        }

let kernel_sequence t =
  [ (t.yellow, t.yellow_launches); (t.green, t.green_launches) ]
