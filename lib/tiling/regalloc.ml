module Ints = Hextime_prelude.Ints

let per_thread ~stencil_loads ~rank ~max_row_points ~threads =
  if threads <= 0 then invalid_arg "Regalloc.per_thread: threads <= 0";
  if max_row_points <= 0 then invalid_arg "Regalloc.per_thread: no points";
  (* fixed state: block/thread ids, bounds, base pointers *)
  let base = 14 in
  (* live stencil inputs and partial sums *)
  let body = 2 * stencil_loads in
  (* per-dimension addressing of the shared buffer *)
  let addressing = 3 * rank in
  (* unrolled points per thread per row: each keeps an address and a value *)
  let unroll = Ints.ceil_div max_row_points threads in
  base + body + addressing + (2 * unroll)
