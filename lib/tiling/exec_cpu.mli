(** CPU execution of the HHC tile schedule, with dependence checking.

    This executor walks tiles in exactly the order the generated GPU code
    would: wavefront by wavefront, and within a tile chunk-by-chunk (skewed
    inner cuts) and row-by-row.  Every read is checked against a
    "already computed" map, so an illegal schedule (a tile shape or ordering
    that violates a stencil dependence) raises {!Dependence_violation}
    instead of silently producing stale values; and the final grid is
    compared bit-for-bit against the naive reference by {!verify}.

    This is the correctness argument for the geometry in {!Hexgeom} and the
    chunking in {!Footprint} — the properties the HHC compiler guarantees by
    construction (Section 3). *)

exception Dependence_violation of string
(** Raised when the schedule reads a value that has not been computed yet;
    the message pinpoints the reading and missing coordinates. *)

val run :
  Hextime_stencil.Problem.t ->
  Config.t ->
  init:Hextime_stencil.Grid.t ->
  Hextime_stencil.Grid.t
(** Execute the tiled schedule and return the final state.  Raises
    {!Dependence_violation} on an illegal schedule, [Invalid_argument] on
    rank mismatch.  Intended for small problem instances (it keeps the full
    time history). *)

val verify :
  Hextime_stencil.Problem.t ->
  Config.t ->
  init:Hextime_stencil.Grid.t ->
  (unit, string) result
(** Run both the tiled schedule and the reference executor and require exact
    equality of the results. *)

val run_tile_schedule :
  Hextime_stencil.Problem.t ->
  Config.t ->
  init:Hextime_stencil.Grid.t ->
  tiles:(string * (int * int * int) list) list ->
  Hextime_stencil.Grid.t
(** Execute an arbitrary tile schedule: each tile is a label plus its
    clipped rows [(t, s_lo, s_hi)] in execution order; inner dimensions are
    chunked with the standard skewed cuts, and every read is dependence-
    checked exactly as in {!run}.  This is the engine {!run} (hexagonal) and
    {!Skewed} (rectangular time skewing) both drive. *)

val coverage_check :
  order:int -> t_s:int -> t_t:int -> space:int -> time:int -> (unit, string) result
(** Check that the hexagonal lattice covers every (t, s) point of the given
    1D iteration domain exactly once (the partition property the footprint
    formulas rely on). *)
