(** Classic time-skewed rectangular tiling with 45-degree wavefront
    execution — the "time skewing" scheme of Section 2 and the
    wavefront-parallel class the paper's Section 4.3 notes its model also
    covers.

    The outer (time, s_0) plane is tiled with rectangles in the skewed
    coordinates [(t, s_0 + order * (t - 1))]; a tile depends on its lower
    neighbour in each coordinate, so the antidiagonals [a + b = const] are
    independent and execute as one kernel each.  Two structural differences
    from hexagonal tiling drive the comparison the bench quantifies:

    - the wavefront count is roughly [T/t_T + (S + order*T)/t_S] instead of
      [2 T/t_T]: many more kernel launches, with a wavefront width that
      ramps up and down instead of being constant, idling SMs at the ends;
    - inner dimensions are chunked with the same skewed cuts as HHC, so the
      per-chunk compute is identical — the difference is pure schedule
      structure.

    Correctness is established exactly like HHC's: the dependence-checked
    executor replays the schedule against the naive reference. *)

val wavefront_widths :
  order:int -> t_s:int -> t_t:int -> space:int -> time:int -> int list
(** Number of tiles in each antidiagonal wavefront, in execution order;
    ramps up to a plateau and back down (the non-constant w(i) of
    Equation 2). *)

val compile_kernels :
  Hextime_stencil.Problem.t ->
  Config.t ->
  ((Hextime_gpu.Kernel.t * int) list, string) result
(** The launch sequence: consecutive wavefronts of equal width are batched
    into (kernel, count) pairs, in execution order. *)

val verify :
  Hextime_stencil.Problem.t ->
  Config.t ->
  init:Hextime_stencil.Grid.t ->
  (unit, string) result
(** Execute the skewed schedule on the CPU with dependence checking and
    require exact equality with the naive reference. *)

val measure :
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  Config.t ->
  (float, string) result
(** Min-of-five simulated time of the skewed schedule. *)
