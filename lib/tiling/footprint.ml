module Ints = Hextime_prelude.Ints

type t = {
  input_words : int;
  output_words : int;
  shared_words : int;
  chunks : int;
  inner_stride : int;
}

(* shared buffer: the hexagon's bounding extent per dimension, padded by
   one word in the inner dimension (Equation 19 and its 3D analogue).
   Exposed separately so the tile-space enumerator can probe feasibility
   without building a Config or a full footprint per candidate. *)
let shared_words_of ?(word_factor = 1) ~order ~t_t t_s =
  2
  * Array.fold_left ( * ) 1 (Array.map (fun s -> s + (order * t_t) + 1) t_s)
  * word_factor

let of_config ?(word_factor = 1) ~order ~space (cfg : Config.t) =
  let rank = Config.rank cfg in
  if Array.length space <> rank then
    invalid_arg "Footprint.of_config: rank mismatch";
  if order < 1 then invalid_arg "Footprint.of_config: order must be >= 1";
  if word_factor < 1 then
    invalid_arg "Footprint.of_config: word_factor must be >= 1";
  let t_t = cfg.t_t and t_s = cfg.t_s in
  (* cross-section of the hexagon's I/O in the (t, s0) plane: the base plus
     the two oblique sides (Equation 7 for order 1) *)
  let mi_cross = t_s.(0) + (2 * order * t_t) in
  let inner_product =
    Array.fold_left ( * ) 1 (Array.sub t_s 1 (rank - 1))
  in
  let m = mi_cross * inner_product in
  let shared_words = shared_words_of ~order ~t_t t_s in
  (* the skewed cuts are at order*t + s = const, so a tile's inner span is
     the extent plus order * t_t (Equation 23's S + tT, generalised) *)
  let skew_span d = space.(d) + (order * t_t) in
  let chunks =
    match rank with
    | 1 -> 1
    | 2 -> Ints.ceil_div (skew_span 1) t_s.(1)
    | 3 ->
        (* Equation 23: ceiling of the product of the per-dimension ratios *)
        let r d = float_of_int (skew_span d) /. float_of_int t_s.(d) in
        int_of_float (ceil (r 1 *. r 2))
    | _ -> assert false
  in
  let inner_stride = (t_s.(rank - 1) + (order * t_t)) * word_factor + 1 in
  {
    input_words = m * word_factor;
    output_words = m * word_factor;
    shared_words = shared_words * word_factor;
    chunks;
    inner_stride;
  }

let io_words_per_tile f = (f.input_words + f.output_words) * f.chunks

let of_problem (problem : Hextime_stencil.Problem.t) cfg =
  of_config
    ~word_factor:(Hextime_stencil.Problem.word_factor problem)
    ~order:problem.Hextime_stencil.Problem.stencil.Hextime_stencil.Stencil.order
    ~space:problem.Hextime_stencil.Problem.space cfg
