module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Gpu = Hextime_gpu
module Ints = Hextime_prelude.Ints

let compile (problem : Problem.t) ~block ~threads =
  let stencil = problem.Problem.stencil in
  let rank = stencil.Stencil.rank in
  let order = stencil.Stencil.order in
  if Array.length block <> rank then Error "block rank /= problem rank"
  else if Array.exists (fun b -> b <= 0) block then
    Error "block extents must be positive"
  else if block.(rank - 1) mod 32 <> 0 then
    Error "innermost block extent must be a multiple of 32"
  else if threads <= 0 then Error "threads must be positive"
  else if Array.exists2 (fun b s -> b > s) block problem.Problem.space then
    Error "block exceeds problem extent"
  else
    let wf = Problem.word_factor problem in
    let tile_points = Array.fold_left ( * ) 1 block in
    let halo = 2 * order in
    let staged =
      wf * Array.fold_left (fun acc b -> acc * (b + halo)) 1 block
    in
    let blocks =
      let acc = ref 1 in
      Array.iteri
        (fun i b -> acc := !acc * Ints.ceil_div problem.Problem.space.(i) b)
        block;
      !acc
    in
    let regs =
      Regalloc.per_thread ~stencil_loads:stencil.Stencil.loads ~rank
        ~max_row_points:tile_points ~threads
    in
    let body =
      {
        Gpu.Pointcost.flops = stencil.Stencil.flops;
        loads = stencil.Stencil.loads;
        transcendentals = stencil.Stencil.transcendentals;
        rank;
        double = problem.Problem.precision = Hextime_stencil.Problem.F64;
      }
    in
    let run_length = block.(rank - 1) in
    let w =
      Gpu.Workload.v
        ~label:(Printf.sprintf "%s/naive-%s" (Problem.id problem)
                  (String.concat "x" (Array.to_list (Array.map string_of_int block))))
        ~threads ~shared_words:staged ~regs_per_thread:regs ~body
        ~rows:[ { Gpu.Workload.points = tile_points; repeats = 1 } ]
        ~input:{ Gpu.Memory.words = staged; run_length }
        ~output:{ Gpu.Memory.words = wf * tile_points; run_length }
        ~row_stride:((block.(rank - 1) + halo) * wf + 1)
        ~chunks:1
    in
    Ok
      ( Gpu.Kernel.v ~label:(Gpu.Workload.(w.label)) ~blocks:[ (w, blocks) ],
        problem.Problem.time )

let default_blocks ~rank =
  match rank with
  | 1 -> [ [| 256 |]; [| 1024 |]; [| 4096 |] ]
  | 2 ->
      [
        [| 8; 32 |];
        [| 16; 64 |];
        [| 32; 32 |];
        [| 8; 128 |];
        [| 32; 64 |];
        [| 16; 128 |];
        [| 64; 64 |];
      ]
  | 3 ->
      [
        [| 4; 8; 32 |];
        [| 8; 8; 32 |];
        [| 4; 4; 64 |];
        [| 8; 16; 32 |];
        [| 2; 8; 64 |];
      ]
  | _ -> invalid_arg "Naive.default_blocks: rank must be 1..3"

type tuned = { block : int array; threads : int; time_s : float; gflops : float }

let best arch (problem : Problem.t) =
  let rank = problem.Problem.stencil.Stencil.rank in
  let candidates =
    List.concat_map
      (fun block ->
        List.filter_map
          (fun threads ->
            match compile problem ~block ~threads with
            | Error _ -> None
            | Ok (kernel, launches) -> (
                match Gpu.Simulator.measure arch [ (kernel, launches) ] with
                | Error _ -> None
                | Ok time_s ->
                    Some
                      {
                        block;
                        threads;
                        time_s;
                        gflops = Problem.total_flops problem /. time_s /. 1e9;
                      }))
          [ 128; 256; 512 ])
      (default_blocks ~rank)
  in
  match candidates with
  | [] -> Error "no naive configuration was feasible"
  | c :: rest ->
      Ok
        (List.fold_left
           (fun acc x -> if x.time_s < acc.time_s then x else acc)
           c rest)
