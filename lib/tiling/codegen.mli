(** CUDA-like pseudo-code emission for a tiled schedule.

    The HHC compiler's output is a CUDA program per (stencil, problem,
    tile-size) tuple; Section 8 notes that generating and compiling one
    program per data point dominated the authors' experiment time.  This
    module renders the typed kernel IR that {!Lower.ir_program} produces —
    the host loop over wavefront launches and the device kernel with its
    shared-memory staging, per-row compute and barriers — so a user can
    inspect exactly what a configuration executes.

    The output is *pseudo*-code: it type-checks nowhere and elides the
    index algebra of the hexagon boundaries, but every structural element
    the model reasons about (transfers, row loop, syncs, chunk loop)
    appears exactly once in the right place.  Since the IR is the source
    of truth, the same structure is what the hexlint passes
    ({!Hextime_analysis.Hexlint}) verify and cross-check against the
    analytical model. *)

val kernel :
  Hextime_stencil.Problem.t ->
  Config.t ->
  family:Hexgeom.family ->
  (string, string) result
(** The device kernel for one tile family. *)

val host : Hextime_stencil.Problem.t -> Config.t -> (string, string) result
(** The host-side launch loop (the wavefront sequence of Equation 2). *)

val program : Hextime_stencil.Problem.t -> Config.t -> (string, string) result
(** [host] plus both kernels. *)
