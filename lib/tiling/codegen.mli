(** CUDA-like pseudo-code emission for a tiled schedule.

    The HHC compiler's output is a CUDA program per (stencil, problem,
    tile-size) tuple; Section 8 notes that generating and compiling one
    program per data point dominated the authors' experiment time.  This
    module emits a readable pseudo-CUDA rendering of the schedule our
    {!Lower} produces — the host loop over wavefront launches and the device
    kernel with its shared-memory staging, per-row compute and barriers —
    so a user can inspect exactly what a configuration executes, and so the
    code structure the simulator prices is documented by construction.

    The output is *pseudo*-code: it type-checks nowhere and elides the
    index algebra of the hexagon boundaries, but every structural element
    the model reasons about (transfers, row loop, syncs, chunk loop) appears
    exactly once in the right place. *)

val kernel :
  Hextime_stencil.Problem.t ->
  Config.t ->
  family:Hexgeom.family ->
  (string, string) result
(** The device kernel for one tile family. *)

val host : Hextime_stencil.Problem.t -> Config.t -> (string, string) result
(** The host-side launch loop (the wavefront sequence of Equation 2). *)

val program : Hextime_stencil.Problem.t -> Config.t -> (string, string) result
(** [host] plus both kernels. *)
