(** Lowering: from (problem, tiling configuration) to the kernel sequence the
    GPU simulator prices.  This plays the role of the HHC compiler's code
    generator (Section 3.2): it fixes the wavefront structure, the per-block
    work (rows, chunks), the global traffic and the resource footprint.

    The program alternates yellow- and green-family kernels (Figure 1); all
    launches of one family have the same shape, so the sequence is returned
    as two kernels with launch counts. *)

type t = private {
  green : Hextime_gpu.Kernel.t;
  yellow : Hextime_gpu.Kernel.t;
  green_launches : int;
  yellow_launches : int;
  footprint : Footprint.t;
  regs_per_thread : int;
  blocks_per_wavefront : int;
}

val compile :
  Hextime_stencil.Problem.t -> Config.t -> (t, string) result
(** Fails when the configuration's rank does not match the problem, or a
    tile exceeds the problem extent. *)

val kernel_sequence : t -> (Hextime_gpu.Kernel.t * int) list
(** The launch sequence to hand to {!Hextime_gpu.Simulator.run_sequence}. *)

val workload :
  Hextime_stencil.Problem.t ->
  Config.t ->
  family:Hexgeom.family ->
  (Hextime_gpu.Workload.t, string) result
(** The per-block workload of one family; exposed for tests and reports. *)

val ir_kernel :
  Hextime_stencil.Problem.t ->
  Config.t ->
  family:Hexgeom.family ->
  (Hextime_ir.Ir.kernel, string) result
(** The typed kernel IR of one family's device kernel: staged loads, the
    per-row compute/barrier sequence over the double buffer, the staged
    store, wrapped in the skewed chunk loop when the footprint is chunked.
    This is what {!Codegen} prints and what the hexlint passes analyse. *)

val ir_program :
  Hextime_stencil.Problem.t ->
  Config.t ->
  (Hextime_ir.Ir.program, string) result
(** Both family kernels plus the host wavefront launch loop. *)
