module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Grid = Hextime_stencil.Grid
module Reference = Hextime_stencil.Reference
module Ints = Hextime_prelude.Ints

exception Dependence_violation of string

(* Full time history of the space grid, flattened, with a computed flag per
   point.  Time index 0 is the initial state. *)
type history = {
  space : int array;
  strides : int array;
  cells : int;  (** points per time level *)
  values : float array array;  (** values.(t).(linear point) *)
  ready : Bytes.t array;
}

let strides_of space =
  let rank = Array.length space in
  let strides = Array.make rank 1 in
  for d = rank - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * space.(d + 1)
  done;
  strides

let make_history ~space ~time ~(init : Grid.t) =
  let cells = Array.fold_left ( * ) 1 space in
  let values =
    Array.init (time + 1) (fun t ->
        if t = 0 then Array.copy (Grid.unsafe_data init)
        else Array.make cells nan)
  in
  let ready =
    Array.init (time + 1) (fun t ->
        Bytes.make cells (if t = 0 then '\001' else '\000'))
  in
  { space; strides = strides_of space; cells; values; ready }

let linear h idx =
  let acc = ref 0 in
  Array.iteri (fun d i -> acc := !acc + (i * h.strides.(d))) idx;
  !acc

let read h ~t idx ~ctx =
  let ok =
    Array.for_all2 (fun i n -> i >= 0 && i < n) idx h.space && t >= 0
  in
  if not ok then
    raise
      (Dependence_violation
         (Printf.sprintf "%s: read outside domain at t=%d" ctx t));
  let l = linear h idx in
  if Bytes.get h.ready.(t) l = '\000' then
    raise
      (Dependence_violation
         (Printf.sprintf "%s: read of uncomputed point t=%d idx=[%s]" ctx t
            (String.concat ";"
               (Array.to_list (Array.map string_of_int idx)))));
  h.values.(t).(l)

let write h ~t idx v ~ctx =
  let l = linear h idx in
  if Bytes.get h.ready.(t) l = '\001' then
    raise
      (Dependence_violation
         (Printf.sprintf "%s: point computed twice t=%d idx=[%s]" ctx t
            (String.concat ";"
               (Array.to_list (Array.map string_of_int idx)))));
  h.values.(t).(l) <- v;
  Bytes.set h.ready.(t) l '\001'

let is_boundary ~order ~space idx =
  let b = ref false in
  Array.iteri
    (fun d i -> if i < order || i >= space.(d) - order then b := true)
    idx;
  !b

(* update one point at time [t] from level [t-1] *)
let update_point h (stencil : Stencil.t) ~order ~t idx ~ctx =
  if is_boundary ~order ~space:h.space idx then
    write h ~t idx (read h ~t:(t - 1) idx ~ctx) ~ctx
  else
    let readv off =
      let nbr = Array.mapi (fun d i -> i + off.(d)) idx in
      read h ~t:(t - 1) nbr ~ctx
    in
    write h ~t idx (Stencil.apply stencil readv) ~ctx

(* Enumerate the inner (skewed-chunk) coordinates of one hexagon row at time
   [t] for chunk [q] along inner dimension extent [extent], tile size [ts]:
   the chunk holds points with q*ts <= order*t + s < (q+1)*ts. *)
let chunk_range ~order ~t ~ts ~extent q =
  let lo = max 0 ((q * ts) - (order * t)) in
  let hi = min (extent - 1) ((((q + 1) * ts) - 1) - (order * t)) in
  (lo, hi)

let chunk_count ~order ~time ~ts ~extent =
  (* largest q such that some 1 <= t <= time, 0 <= s < extent falls in it *)
  ((order * time) + extent - 1) / ts

let run_tile_schedule (problem : Problem.t) (cfg : Config.t) ~init ~tiles =
  let stencil = problem.stencil in
  let rank = stencil.Stencil.rank in
  if Config.rank cfg <> rank then invalid_arg "Exec_cpu.run: rank mismatch";
  if Grid.dims init <> problem.space then
    invalid_arg "Exec_cpu.run: init extents mismatch";
  let order = stencil.Stencil.order in
  let time = problem.time in
  let space = problem.space in
  let h = make_history ~space ~time ~init in
  let exec_tile (ctx, rows) =
    match rank with
    | 1 ->
        List.iter
          (fun (t, lo, hi) ->
            for s = lo to hi do
              update_point h stencil ~order ~t [| s |] ~ctx
            done)
          rows
    | 2 ->
        let ts1 = cfg.t_s.(1) and extent1 = space.(1) in
        let qmax = chunk_count ~order ~time ~ts:ts1 ~extent:extent1 in
        for q = 0 to qmax do
          List.iter
            (fun (t, lo, hi) ->
              let jlo, jhi = chunk_range ~order ~t ~ts:ts1 ~extent:extent1 q in
              for s0 = lo to hi do
                for s1 = jlo to jhi do
                  update_point h stencil ~order ~t [| s0; s1 |] ~ctx
                done
              done)
            rows
        done
    | 3 ->
        let ts1 = cfg.t_s.(1) and extent1 = space.(1) in
        let ts2 = cfg.t_s.(2) and extent2 = space.(2) in
        let q1max = chunk_count ~order ~time ~ts:ts1 ~extent:extent1 in
        let q2max = chunk_count ~order ~time ~ts:ts2 ~extent:extent2 in
        for q1 = 0 to q1max do
          for q2 = 0 to q2max do
            List.iter
              (fun (t, lo, hi) ->
                let jlo, jhi =
                  chunk_range ~order ~t ~ts:ts1 ~extent:extent1 q1
                in
                let klo, khi =
                  chunk_range ~order ~t ~ts:ts2 ~extent:extent2 q2
                in
                for s0 = lo to hi do
                  for s1 = jlo to jhi do
                    for s2 = klo to khi do
                      update_point h stencil ~order ~t [| s0; s1; s2 |] ~ctx
                    done
                  done
                done)
              rows
          done
        done
    | _ -> assert false
  in
  List.iter exec_tile tiles;
  (* every point of the final level must have been produced *)
  if Bytes.exists (fun c -> c = '\000') h.ready.(time) then
    raise
      (Dependence_violation
         "incomplete coverage: final time level has uncomputed points");
  let out = Grid.create space in
  Array.blit h.values.(time) 0 (Grid.unsafe_data out) 0 h.cells;
  out

let run (problem : Problem.t) (cfg : Config.t) ~init =
  let stencil = problem.stencil in
  let order = stencil.Stencil.order in
  if Config.rank cfg <> stencil.Stencil.rank then
    invalid_arg "Exec_cpu.run: rank mismatch";
  let t_t = cfg.t_t and t_s0 = cfg.t_s.(0) in
  let tiles =
    Hexgeom.wavefronts ~order ~t_s:t_s0 ~t_t ~space:problem.space.(0)
      ~time:problem.time
    |> List.concat_map (fun wf ->
           List.map
             (fun tile ->
               ( Printf.sprintf "%s %s tile(band=%d,idx=%d)"
                   (Problem.id problem)
                   (match tile.Hexgeom.family with
                   | Hexgeom.Green -> "green"
                   | Hexgeom.Yellow -> "yellow")
                   tile.Hexgeom.band tile.Hexgeom.index,
                 Hexgeom.rows_clipped ~order ~t_s:t_s0 ~t_t
                   ~space:problem.space.(0) ~time:problem.time tile ))
             wf)
  in
  run_tile_schedule problem cfg ~init ~tiles

let verify problem cfg ~init =
  match run problem cfg ~init with
  | exception Dependence_violation msg -> Error msg
  | tiled ->
      let expected = Reference.run problem ~init in
      if Grid.equal tiled expected then Ok ()
      else
        Error
          (Printf.sprintf "tiled result differs from reference (max diff %g)"
             (Grid.max_abs_diff tiled expected))

let coverage_check ~order ~t_s ~t_t ~space ~time =
  let seen = Array.make_matrix (time + 1) space 0 in
  let wavefronts = Hexgeom.wavefronts ~order ~t_s ~t_t ~space ~time in
  List.iter
    (fun wf ->
      List.iter
        (fun tile ->
          Hexgeom.rows_clipped ~order ~t_s ~t_t ~space ~time tile
          |> List.iter (fun (t, lo, hi) ->
                 for s = lo to hi do
                   seen.(t).(s) <- seen.(t).(s) + 1
                 done))
        wf)
    wavefronts;
  let problems = ref [] in
  for t = time downto 1 do
    for s = space - 1 downto 0 do
      if seen.(t).(s) <> 1 then
        problems :=
          Printf.sprintf "(t=%d, s=%d) covered %d times" t s seen.(t).(s)
          :: !problems
    done
  done;
  match !problems with
  | [] -> Ok ()
  | p :: _ ->
      Error
        (Printf.sprintf "%d coverage defects; first: %s" (List.length !problems)
           p)
