(** Register-demand estimation for HHC-generated tile code.

    The paper stresses (Sections 6.1 and 7) that register usage cannot be
    modelled analytically and is only known "post mortem" from nvcc; it is
    the main reason the model's feasible space must be explored empirically
    around the predicted optimum.  We mirror that architecture: this
    estimator plays the role of nvcc's allocator, the *simulator* consults
    it (spills hurt measured time), and the *model deliberately does not*.

    The estimate follows how HHC unrolls: each thread keeps its loop-carried
    stencil inputs and the addressing state for every point it computes per
    row, so demand grows with the per-thread unroll factor. *)

val per_thread :
  stencil_loads:int ->
  rank:int ->
  max_row_points:int ->
  threads:int ->
  int
(** Estimated registers per thread for a block of [threads] threads whose
    widest compute row has [max_row_points] points. *)
