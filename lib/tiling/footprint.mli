(** Memory footprints of HHC tiles (Equations 7, 13, 18, 19, 23, 24 of the
    paper), generalised over the stencil order.

    All word counts are in 4-byte words, matching M_SM in {!Hextime_gpu.Arch}.
    For ranks 2 and 3, quantities are per chunk (sub-prism / sub-slab): a
    thread block executes [chunks] of them in sequence. *)

type t = {
  input_words : int;  (** m_i: global->shared words per chunk *)
  output_words : int;  (** m_o: shared->global words per chunk *)
  shared_words : int;  (** M_tile: shared-memory footprint of a block *)
  chunks : int;  (** sub-prisms / sub-slabs per block (1 for 1D) *)
  inner_stride : int;  (** innermost stride of the shared array, in words *)
}

val shared_words_of : ?word_factor:int -> order:int -> t_t:int -> int array -> int
(** [shared_words_of ~order ~t_t t_s] is the shared-memory footprint
    (M_tile, Equation 19) of a tile shape alone — exactly the
    [shared_words] field [of_config] would report, without building a
    {!Config.t} or computing the rest of the footprint.  The tile-space
    enumerator uses it to probe thousands of candidate shapes cheaply. *)

val of_config :
  ?word_factor:int -> order:int -> space:int array -> Config.t -> t
(** [of_config ~order ~space cfg] computes the footprints for a stencil of
    the given dependence [order] on a problem with the given space extents.
    [word_factor] (default 1) is the 4-byte words per element — 2 for
    double precision, which doubles every word count here.  Raises
    [Invalid_argument] when ranks disagree. *)

val of_problem : Hextime_stencil.Problem.t -> Config.t -> t
(** [of_config] with order, extents and word factor taken from the
    problem. *)

val io_words_per_tile : t -> int
(** m_io aggregated over all chunks of a block (Equation 7 scaled). *)
