module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Gpu = Hextime_gpu

let family_name = function
  | Hexgeom.Green -> "green"
  | Hexgeom.Yellow -> "yellow"

let tap_expr rank (tap : Stencil.tap) =
  let idx d off =
    let base = [| "r"; "j"; "l" |].(d) in
    if off = 0 then base
    else if off > 0 then Printf.sprintf "%s + %d" base off
    else Printf.sprintf "%s - %d" base (-off)
  in
  let coords =
    String.concat "]["
      (List.init rank (fun d -> idx d tap.Stencil.offset.(d)))
  in
  Printf.sprintf "%.6gf * smem[%s]" tap.Stencil.weight coords

let body_expr (stencil : Stencil.t) =
  match stencil.Stencil.rule with
  | Stencil.Linear { taps; constant } ->
      let sum = String.concat "\n             + " (List.map (tap_expr stencil.Stencil.rank) taps) in
      if constant = 0.0 then sum else Printf.sprintf "%s + %.6gf" sum constant
  | Stencil.Nonlinear _ ->
      "/* non-convolutional body (e.g. gradient): loads the offsets below,\n\
      \              then applies the user expression */ user_body(smem, r, j, l)"

let kernel (problem : Problem.t) (cfg : Config.t) ~family =
  match Lower.workload problem cfg ~family with
  | Error _ as e -> e
  | Ok w ->
      let stencil = problem.Problem.stencil in
      let rank = stencil.Stencil.rank in
      let order = stencil.Stencil.order in
      let fp =
        Footprint.of_config ~order ~space:problem.Problem.space cfg
      in
      let b = Buffer.create 2048 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      pf "// %s tile kernel for %s, configuration %s\n" (family_name family)
        (Problem.id problem) (Config.id cfg);
      pf "// registers/thread (estimated): %d; shared memory: %d words\n"
        w.Gpu.Workload.regs_per_thread w.Gpu.Workload.shared_words;
      pf "__global__ void %s_%s(const float *__restrict__ in, float *out)\n"
        stencil.Stencil.name (family_name family);
      pf "{\n";
      pf "  __shared__ float smem[%d]; // M_tile = 2 * %s\n"
        w.Gpu.Workload.shared_words
        (String.concat " * "
           (Array.to_list
              (Array.map
                 (fun s -> Printf.sprintf "(%d + %d + 1)" s (order * cfg.Config.t_t))
                 cfg.Config.t_s)));
      pf "  const int tile = blockIdx.x;          // position in the wavefront\n";
      pf "  const int tid  = threadIdx.x;         // %d threads\n"
        w.Gpu.Workload.threads;
      if fp.Footprint.chunks > 1 then
        pf "  for (int q = 0; q < %d; ++q) {       // skewed inner chunks (sub-%s)\n"
          fp.Footprint.chunks
          (if rank = 2 then "prisms" else "slabs");
      let ind = if fp.Footprint.chunks > 1 then "    " else "  " in
      pf "%s// global -> shared: m_i = %d words, coalesced in runs of %d\n" ind
        fp.Footprint.input_words
        cfg.Config.t_s.(rank - 1);
      pf "%sfor (int i = tid; i < %d; i += %d) smem[stage(i)] = in[gaddr(tile%s, i)];\n"
        ind fp.Footprint.input_words w.Gpu.Workload.threads
        (if fp.Footprint.chunks > 1 then ", q" else "");
      pf "%s__syncthreads();\n" ind;
      pf "%s// hexagon rows, bottom to top (widths %s)\n" ind
        (let ws =
           Hexgeom.row_widths ~order ~t_s:cfg.Config.t_s.(0) ~t_t:cfg.Config.t_t
         in
         let base =
           match family with
           | Hexgeom.Green -> ws
           | Hexgeom.Yellow -> List.map (fun x -> x + (2 * order)) ws
         in
         String.concat ", " (List.map string_of_int base));
      pf "%sfor (int r = 0; r < %d; ++r) {\n" ind cfg.Config.t_t;
      pf "%s  for (int p = tid; p < row_points(r); p += %d) {\n" ind
        w.Gpu.Workload.threads;
      (match rank with
      | 1 -> pf "%s    // p is the position in the row\n" ind
      | 2 ->
          pf "%s    const int j = p %% %d, x = p / %d; // inner x hexagon\n" ind
            cfg.Config.t_s.(1) cfg.Config.t_s.(1)
      | _ ->
          pf "%s    const int l = p %% %d, j = (p / %d) %% %d;\n" ind
            cfg.Config.t_s.(2) cfg.Config.t_s.(2) cfg.Config.t_s.(1));
      pf "%s    smem[next(r, p)] =\n%s               %s;\n" ind ind
        (body_expr stencil);
      pf "%s  }\n" ind;
      pf "%s  __syncthreads();                   // tau_sync per row\n" ind;
      pf "%s}\n" ind;
      pf "%s// shared -> global: m_o = %d words\n" ind fp.Footprint.output_words;
      pf "%sfor (int i = tid; i < %d; i += %d) out[gaddr(tile%s, i)] = smem[stage(i)];\n"
        ind fp.Footprint.output_words w.Gpu.Workload.threads
        (if fp.Footprint.chunks > 1 then ", q" else "");
      pf "%s__syncthreads();\n" ind;
      if fp.Footprint.chunks > 1 then pf "  }\n";
      pf "}\n";
      Ok (Buffer.contents b)

let host (problem : Problem.t) (cfg : Config.t) =
  match Lower.compile problem cfg with
  | Error _ as e -> e
  | Ok compiled ->
      let stencil = problem.Problem.stencil in
      let b = Buffer.create 1024 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      pf "// host-side wavefront loop for %s, configuration %s\n"
        (Problem.id problem) (Config.id cfg);
      pf "// N_w = %d wavefronts of w = %d blocks each\n"
        (compiled.Lower.green_launches + compiled.Lower.yellow_launches)
        compiled.Lower.blocks_per_wavefront;
      pf "void run(const float *in, float *out)\n{\n";
      pf "  for (int band = 0; band < %d; ++band) {\n"
        compiled.Lower.green_launches;
      pf "    %s_yellow<<<%d, %d>>>(in, out);   // T_sync per launch\n"
        stencil.Stencil.name compiled.Lower.blocks_per_wavefront
        (Config.total_threads cfg);
      pf "    %s_green <<<%d, %d>>>(in, out);\n" stencil.Stencil.name
        compiled.Lower.blocks_per_wavefront (Config.total_threads cfg);
      pf "  }\n  cudaDeviceSynchronize();\n}\n";
      Ok (Buffer.contents b)

let program problem cfg =
  match
    ( host problem cfg,
      kernel problem cfg ~family:Hexgeom.Yellow,
      kernel problem cfg ~family:Hexgeom.Green )
  with
  | Ok h, Ok ky, Ok kg -> Ok (h ^ "\n" ^ ky ^ "\n" ^ kg)
  | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e) -> e
