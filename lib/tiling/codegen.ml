(* Pseudo-CUDA emission, now a thin wrapper: Lower produces the typed
   kernel IR and Ir_print renders it.  The printed strings are a view of
   the IR — the structure the model and the hexlint passes reason about is
   the IR itself. *)

module Ir_print = Hextime_ir.Ir_print

let kernel problem cfg ~family =
  Result.map Ir_print.kernel (Lower.ir_kernel problem cfg ~family)

let host problem cfg =
  Result.map
    (fun (p : Hextime_ir.Ir.program) -> Ir_print.host p.Hextime_ir.Ir.host)
    (Lower.ir_program problem cfg)

let program problem cfg =
  Result.map Ir_print.program (Lower.ir_program problem cfg)
