(** A tiling configuration: the compiler parameters of the HHC compiler that
    the paper's model predicts over and the optimizer selects.

    [t_t] is the time tile size, [t_s.(i)] the tile size along space
    dimension [i] ([t_s.(0)] is the hexagonally tiled dimension, the rest are
    time-skewed), and [threads] the threads-per-block counts per dimension
    (their product is the block's thread count). *)

type t = private { t_t : int; t_s : int array; threads : int array }

val make : t_t:int -> t_s:int array -> threads:int array -> (t, string) result
(** Validates the structural constraints of Section 6.1:
    - [t_t] even and positive (required by hybrid-hexagonal tiling);
    - every tile size positive;
    - the innermost space tile size a multiple of 32 when there is an inner
      dimension (full-warp coalescing; for 1D stencils there is no such
      constraint);
    - at least one thread, and thread counts positive. *)

val make_exn : t_t:int -> t_s:int array -> threads:int array -> t
(** Like {!make} but raises [Invalid_argument]. *)

val rank : t -> int
val total_threads : t -> int

val id : t -> string
(** Stable identifier, e.g. ["tT8-tS24x64-thr128"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
