type row = { points : int; repeats : int }

type t = {
  label : string;
  threads : int;
  shared_words : int;
  regs_per_thread : int;
  body : Pointcost.body;
  rows : row list;
  input : Memory.transfer;
  output : Memory.transfer;
  row_stride : int;
  chunks : int;
}

let v ~label ~threads ~shared_words ~regs_per_thread ~body ~rows ~input ~output
    ~row_stride ~chunks =
  if threads <= 0 then invalid_arg "Workload.v: threads <= 0";
  if shared_words < 0 then invalid_arg "Workload.v: shared_words < 0";
  if regs_per_thread < 0 then invalid_arg "Workload.v: regs_per_thread < 0";
  if chunks <= 0 then invalid_arg "Workload.v: chunks <= 0";
  if row_stride <= 0 then invalid_arg "Workload.v: row_stride <= 0";
  if rows = [] then invalid_arg "Workload.v: no rows";
  List.iter
    (fun r ->
      if r.points <= 0 || r.repeats <= 0 then
        invalid_arg "Workload.v: non-positive row")
    rows;
  if input.Memory.words < 0 || output.Memory.words < 0 then
    invalid_arg "Workload.v: negative transfer";
  {
    label;
    threads;
    shared_words;
    regs_per_thread;
    body;
    rows;
    input;
    output;
    row_stride;
    chunks;
  }

let points_per_chunk t =
  List.fold_left (fun acc r -> acc + (r.points * r.repeats)) 0 t.rows

let total_points t = points_per_chunk t * t.chunks
let row_count t = List.fold_left (fun acc r -> acc + r.repeats) 0 t.rows

let occupancy_request t =
  {
    Occupancy.threads = t.threads;
    shared_words = t.shared_words;
    regs_per_thread = t.regs_per_thread;
  }

let pp ppf t =
  Format.fprintf ppf
    "%s: %d thr, %d smem words, %d regs, %d rows x %d chunks, io %d+%d"
    t.label t.threads t.shared_words t.regs_per_thread (row_count t) t.chunks
    t.input.Memory.words t.output.Memory.words
