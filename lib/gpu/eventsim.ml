module Ints = Hextime_prelude.Ints

type stats = { cycles : float; issued : int; stall_fraction : float }

(* micro-architecture constants of the event model: a warp may issue [chain]
   consecutive independent instructions, then stalls [dep_latency] cycles on
   the dependency; chosen so that the canonical 8 warps saturate the 4
   schedulers (mirroring Compute.warps_for_full_hiding) *)
let chain = 8
let dep_latency = 8
let barrier_cycles = 41 (* sync + drain at residency 1, cf. Compute *)

type warp = {
  mutable instrs_left : int;  (** in the current row *)
  mutable ready_at : int;  (** cycle when it may issue again *)
  mutable run : int;  (** instructions issued since the last stall *)
}

let chunk_stats (arch : Arch.t) (w : Workload.t) =
  let schedulers = max 1 (arch.n_vector / arch.warp_size) in
  let warps_n = Ints.ceil_div w.threads arch.warp_size in
  let instrs_per_point =
    max 1 (int_of_float (Float.round (Pointcost.cycles w.body)))
  in
  let warps = Array.init warps_n (fun _ -> { instrs_left = 0; ready_at = 0; run = 0 }) in
  let clock = ref 0 in
  let issued = ref 0 in
  let slots = ref 0 in
  let run_row points =
    (* distribute the row's points warp-granularly: each warp-iteration
       covers up to warp_size points and costs instrs_per_point slots *)
    let warp_iterations = Ints.ceil_div points arch.warp_size in
    Array.iteri
      (fun i warp ->
        let mine =
          (warp_iterations / warps_n)
          + (if i < warp_iterations mod warps_n then 1 else 0)
        in
        warp.instrs_left <- mine * instrs_per_point;
        warp.ready_at <- !clock;
        warp.run <- 0)
      warps;
    let remaining () =
      Array.exists (fun warp -> warp.instrs_left > 0) warps
    in
    let rr = ref 0 in
    while remaining () do
      let issued_now = ref 0 in
      (* each scheduler picks one ready warp, round-robin start point *)
      let tried = ref 0 in
      while !issued_now < schedulers && !tried < warps_n do
        let warp = warps.((!rr + !tried) mod warps_n) in
        incr tried;
        if warp.instrs_left > 0 && warp.ready_at <= !clock then begin
          warp.instrs_left <- warp.instrs_left - 1;
          warp.run <- warp.run + 1;
          if warp.run >= chain then begin
            warp.run <- 0;
            warp.ready_at <- !clock + dep_latency
          end;
          incr issued_now;
          incr issued
        end
      done;
      rr := !rr + 1;
      slots := !slots + schedulers;
      clock := !clock + 1
    done;
    (* row barrier *)
    clock := !clock + barrier_cycles
  in
  List.iter
    (fun (row : Workload.row) ->
      for _ = 1 to row.repeats do
        run_row row.points
      done)
    w.rows;
  {
    cycles = float_of_int !clock;
    issued = !issued;
    stall_fraction =
      (if !slots = 0 then 0.0
       else 1.0 -. (float_of_int !issued /. float_of_int !slots));
  }

let chunk_seconds arch w =
  Arch.seconds_of_cycles arch (chunk_stats arch w).cycles

let agreement arch w =
  chunk_seconds arch w /. Compute.chunk_seconds arch w ~spilled_regs:0 ~resident:1
