module Ints = Hextime_prelude.Ints

type stats = { cycles : float; issued : int; stall_fraction : float }

(* How much of the event simulation is closed out analytically vs walked
   cycle by cycle — the observable payoff of the steady-state detector.
   Counted per [chunk_stats] call; the slow reference path counts every
   cycle as stepped. *)
let ff_counter = Hextime_obs.Metrics.counter "eventsim.fast_forward_cycles"
let stepped_counter = Hextime_obs.Metrics.counter "eventsim.stepped_cycles"

(* micro-architecture constants of the event model: a warp may issue [chain]
   consecutive independent instructions, then stalls [dep_latency] cycles on
   the dependency; chosen so that the canonical 8 warps saturate the 4
   schedulers (mirroring Compute.warps_for_full_hiding) *)
let chain = 8
let dep_latency = 8
let barrier_cycles = 41 (* sync + drain at residency 1, cf. Compute *)

(* cap on the steady-state detector: if no scheduler state recurs within
   this many cycles of a row (the transient is a few hundred to ~1300
   cycles across realistic warp counts), give up and finish the row cycle
   by cycle *)
let detect_horizon = 4096

type warp = {
  mutable instrs_left : int;  (** in the current row *)
  mutable ready_at : int;  (** cycle when it may issue again *)
  mutable run : int;  (** instructions issued since the last stall *)
}

(* The event loop shared by the fast and the reference path.

   The fast path exploits two structural facts, both exact:

   - Within a row the scheduler dynamics are a deterministic map on a
     bounded state: the round-robin cursor's residue, and per warp its run
     length, whether it is dry, and how far in the future its wake-up lies
     (the magnitude of an *expired* wake-up is irrelevant — the loop only
     tests [ready_at <= clock], and every stall rewrites [ready_at]
     absolutely).  The orbit is therefore eventually periodic; once a
     state recurs we close as many whole periods as fit before any warp's
     instruction budget interferes, in O(warps): clock, issue and slot
     counters, cursor and wake-ups all advance by exact multiples of the
     period.  Only the transient and the drain are simulated cycle by
     cycle.  Detection is kept cheap by packing the state into a small
     string and sampling only every [warps_n]-th cycle — the period is
     necessarily a multiple of [warps_n] because the cursor advances one
     warp per cycle.

   - A row's cost depends only on its point count: [run_row] resets every
     warp and the cursor on entry, and all comparisons are relative to the
     clock.  So within one workload each distinct [points] value is
     simulated once and its deltas replayed for every other occurrence
     (which also covers a row's [repeats]).

   Both shortcuts replay the reference dynamics exactly, so cycles, issued
   and stall_fraction are bit-identical to the retained slow path — the
   property tests assert this. *)
let chunk_stats_with ~fast (arch : Arch.t) (w : Workload.t) =
  let schedulers = max 1 (arch.n_vector / arch.warp_size) in
  let warps_n = Ints.ceil_div w.threads arch.warp_size in
  let instrs_per_point =
    max 1 (int_of_float (Float.round (Pointcost.cycles w.body)))
  in
  let warps = Array.init warps_n (fun _ -> { instrs_left = 0; ready_at = 0; run = 0 }) in
  let clock = ref 0 in
  let issued = ref 0 in
  let slots = ref 0 in
  let fast_forwarded = ref 0 in
  let run_row points =
    (* distribute the row's points warp-granularly: each warp-iteration
       covers up to warp_size points and costs instrs_per_point slots *)
    let warp_iterations = Ints.ceil_div points arch.warp_size in
    Array.iteri
      (fun i warp ->
        let mine =
          (warp_iterations / warps_n)
          + (if i < warp_iterations mod warps_n then 1 else 0)
        in
        warp.instrs_left <- mine * instrs_per_point;
        warp.ready_at <- !clock;
        warp.run <- 0)
      warps;
    let remaining () =
      Array.exists (fun warp -> warp.instrs_left > 0) warps
    in
    let rr = ref 0 in
    (* steady-state detector state: the packed signature below fits one
       byte per warp (run < chain <= 8, clamped wake-up distance <=
       dep_latency <= 8) *)
    let detecting = ref fast in
    let row_start = !clock in
    let seen = if fast then Hashtbl.create 97 else Hashtbl.create 0 in
    let signature () =
      String.init warps_n (fun i ->
          let warp = warps.(i) in
          let dry = if warp.instrs_left = 0 then 128 else 0 in
          let wait = max 0 (warp.ready_at - !clock) in
          Char.chr (dry lor (warp.run lsl 4) lor wait))
    in
    while remaining () do
      (if !detecting && !rr mod warps_n = 0 then
         let s = signature () in
         match Hashtbl.find_opt seen s with
         | Some (clock0, issued0, left0) ->
             let period = !clock - clock0 in
             let issued_per_period = !issued - issued0 in
             (* whole periods until some warp's budget could reach zero
                mid-period: k keeps every draining warp at >= 1
                instruction after the jump, so no [> 0] test changes
                inside the closed-out regime *)
             let k = ref max_int in
             Array.iteri
               (fun i warp ->
                 let d = left0.(i) - warp.instrs_left in
                 if d > 0 then k := min !k ((warp.instrs_left - 1) / d))
               warps;
             let k = if !k = max_int then 0 else !k in
             if k > 0 then begin
               clock := !clock + (k * period);
               fast_forwarded := !fast_forwarded + (k * period);
               issued := !issued + (k * issued_per_period);
               slots := !slots + (k * period * schedulers);
               rr := !rr + (k * period);
               Array.iteri
                 (fun i warp ->
                   let d = left0.(i) - warp.instrs_left in
                   warp.instrs_left <- warp.instrs_left - (k * d);
                   warp.ready_at <- warp.ready_at + (k * period))
                 warps
             end;
             (* what is left is drain; stop paying for detection *)
             detecting := false
         | None ->
             Hashtbl.add seen s
               (!clock, !issued, Array.map (fun warp -> warp.instrs_left) warps);
             if !clock - row_start > detect_horizon then detecting := false);
      let issued_now = ref 0 in
      (* each scheduler picks one ready warp, round-robin start point *)
      let tried = ref 0 in
      while !issued_now < schedulers && !tried < warps_n do
        let warp = warps.((!rr + !tried) mod warps_n) in
        incr tried;
        if warp.instrs_left > 0 && warp.ready_at <= !clock then begin
          warp.instrs_left <- warp.instrs_left - 1;
          warp.run <- warp.run + 1;
          if warp.run >= chain then begin
            warp.run <- 0;
            warp.ready_at <- !clock + dep_latency
          end;
          incr issued_now;
          incr issued
        end
      done;
      rr := !rr + 1;
      slots := !slots + schedulers;
      clock := !clock + 1
    done;
    (* row barrier *)
    clock := !clock + barrier_cycles
  in
  let row_memo = if fast then Hashtbl.create 8 else Hashtbl.create 0 in
  List.iter
    (fun (row : Workload.row) ->
      if fast then begin
        (* each distinct point count is simulated once per workload; every
           other occurrence — including this row's repeats — re-applies
           its deltas *)
        let c0 = !clock and i0 = !issued and s0 = !slots in
        let dc, di, ds =
          match Hashtbl.find_opt row_memo row.points with
          | Some ((dc, _, _) as d) ->
              fast_forwarded := !fast_forwarded + (row.repeats * dc);
              d
          | None ->
              run_row row.points;
              let dc = !clock - c0 in
              let d = (dc, !issued - i0, !slots - s0) in
              Hashtbl.add row_memo row.points d;
              fast_forwarded := !fast_forwarded + ((row.repeats - 1) * dc);
              d
        in
        clock := c0 + (row.repeats * dc);
        issued := i0 + (row.repeats * di);
        slots := s0 + (row.repeats * ds)
      end
      else
        for _ = 1 to row.repeats do
          run_row row.points
        done)
    w.rows;
  Hextime_obs.Metrics.incr ff_counter ~by:!fast_forwarded;
  Hextime_obs.Metrics.incr stepped_counter ~by:(!clock - !fast_forwarded);
  {
    cycles = float_of_int !clock;
    issued = !issued;
    stall_fraction =
      (if !slots = 0 then 0.0
       else 1.0 -. (float_of_int !issued /. float_of_int !slots));
  }

let chunk_stats arch w = chunk_stats_with ~fast:true arch w
let chunk_stats_slow arch w = chunk_stats_with ~fast:false arch w

let chunk_seconds arch w =
  Arch.seconds_of_cycles arch (chunk_stats arch w).cycles

let agreement arch w =
  chunk_seconds arch w /. Compute.chunk_seconds arch w ~spilled_regs:0 ~resident:1
