module Ints = Hextime_prelude.Ints
module Det_hash = Hextime_prelude.Det_hash
module Metrics = Hextime_obs.Metrics

type kernel_stats = {
  time_s : float;
  blocks : int;
  resident_blocks : int;
  limiting : Occupancy.limit;
  spilled_regs : int;
  io_s : float;
  compute_s : float;
}

type run_stats = {
  total_s : float;
  kernel_launches : int;
  kernels : kernel_stats list;
}

(* Instrumentation for the sweep-cache tests: every kernel pricing bumps
   the counter, so "a warm cache performs zero simulator invocations" is
   directly observable.  Since the priced-kernel refactor a pricing happens
   once per kernel, not once per measurement run: a min-of-five measurement
   is one pricing plus five jitter reapplications.  The counters live in the
   metrics registry so sweep workers can snapshot them back across the fork
   boundary and the coordinator's totals stay correct under --jobs N. *)
let price_counter = Metrics.counter "simulator.price"
let replay_counter = Metrics.counter "simulator.replay"
let invocations () = Metrics.value price_counter

let jitter_amplitude = 0.015

let jitter_factor (arch : Arch.t) label ~salt =
  Det_hash.create arch.name
  |> fun h ->
  Det_hash.mix_string h label
  |> fun h -> Det_hash.mix_int h salt |> Det_hash.jitter ~amplitude:jitter_amplitude

let block_cost arch ~resident (w : Workload.t) ~spilled_regs =
  let io =
    Memory.block_transfer_s arch ~concurrent_blocks:resident w.input
    +. Memory.block_transfer_s arch ~concurrent_blocks:resident w.output
  in
  let compute = Compute.chunk_seconds arch w ~spilled_regs ~resident in
  (io, compute)

(* Wall time for one SM to retire a queue of blocks.  The GPU's block
   scheduler streams blocks: as soon as a resident block retires the next
   one launches, so with k >= 2 resident blocks the IO of one chunk overlaps
   the compute of another and the SM's steady-state period per chunk is
   max(io, compute); the first chunk's transfer is exposed as pipeline fill.
   Without hyper-threading (k = 1) the phases of the block serialise — the
   truthful counterpart of Equations 10/12 and 16/28/29. *)
let queue_time ~resident costs =
  match costs with
  | [] -> 0.0
  | _ ->
      let total_io =
        List.fold_left
          (fun a ((io, _), chunks) -> a +. (io *. float_of_int chunks))
          0.0 costs
      in
      let total_comp =
        List.fold_left
          (fun a ((_, c), chunks) -> a +. (c *. float_of_int chunks))
          0.0 costs
      in
      if resident = 1 then total_io +. total_comp
      else
        let (io1, c1), _ = List.hd costs in
        max total_io total_comp +. min io1 c1

let infeasible (occ : Occupancy.result) (req : Occupancy.request) =
  let what =
    match occ.limiting with
    | Occupancy.Shared_memory ->
        Printf.sprintf "shared memory: block needs %d words" req.shared_words
    | Occupancy.Threads ->
        Printf.sprintf "threads: block needs %d threads" req.threads
    | Occupancy.Registers ->
        Printf.sprintf "registers: %d per thread" req.regs_per_thread
    | Occupancy.Blocks -> "block slots"
  in
  Printf.sprintf "no block fits on an SM (limited by %s)" what

let kernel_setup arch (k : Kernel.t) =
  let req = Kernel.max_request k in
  let occ = Occupancy.calculate arch req in
  if occ.blocks_per_sm = 0 then Error (infeasible occ req)
  else Ok (req, occ)

(* Average per-chunk (io, compute) over a kernel's block population from
   per-class costs computed exactly once, and the average chunk count;
   kernels are overwhelmingly uniform so this loses almost nothing and
   keeps the cost independent of block count. *)
let average_of_class_costs (k : Kernel.t) class_costs =
  let total = float_of_int (Kernel.total_blocks k) in
  List.fold_left
    (fun (aio, acomp, achunks) ((w : Workload.t), count, (io, comp)) ->
      let f = float_of_int count /. total in
      ( aio +. (io *. f),
        acomp +. (comp *. f),
        achunks +. (float_of_int w.chunks *. f) ))
    (0.0, 0.0, 0.0) class_costs

let class_costs arch ~resident ~spilled (k : Kernel.t) =
  List.map
    (fun ((w : Workload.t), count) ->
      (w, count, block_cost arch ~resident w ~spilled_regs:spilled))
    k.blocks

let average_costs arch ~resident ~spilled (k : Kernel.t) =
  average_of_class_costs k (class_costs arch ~resident ~spilled k)

let stats_of_time (k : Kernel.t) (occ : Occupancy.result) ~io ~comp
    ~chunks time_s =
  {
    time_s;
    blocks = Kernel.total_blocks k;
    resident_blocks = occ.blocks_per_sm;
    limiting = occ.limiting;
    spilled_regs = occ.regs_spilled_per_thread;
    io_s = io *. chunks;
    compute_s = comp *. chunks;
  }

(* --- the priced-kernel representation ----------------------------------- *)

(* Everything the simulator computes about a kernel is jitter-invariant:
   occupancy, per-class block costs, the averaged chunk costs and the
   round-synchronised body time.  [price] computes all of it exactly once;
   the salted entry points below are O(1) reapplications of a jitter factor
   to the priced body.  The measurement protocol (min of five salted runs)
   therefore costs one pricing, not five. *)
type priced = {
  kernel : Kernel.t;
  occ : Occupancy.result;
  avg_io : float;  (* averaged per-chunk transfer seconds *)
  avg_comp : float;  (* averaged per-chunk compute seconds *)
  avg_chunks : float;  (* averaged chunk count *)
  base_s : float;  (* launch overhead + body; the jitter-invariant time *)
  jitter_seed : Det_hash.t;
      (* the hash state over (architecture, label), so a salted replay only
         mixes in the salt *)
}

let price arch (k : Kernel.t) =
  Metrics.incr price_counter;
  match kernel_setup arch k with
  | Error _ as e -> e
  | Ok (_req, occ) ->
      let resident = occ.blocks_per_sm in
      let spilled = occ.regs_spilled_per_thread in
      let io, comp, chunks = average_costs arch ~resident ~spilled k in
      let blocks = Kernel.total_blocks k in
      (* Stencil blocks are near-uniform and the warp scheduler shares the
         SM fairly, so the [resident] co-resident blocks of a round finish
         together and the next round starts together: execution is
         round-synchronised.  The last round holds whatever is left. *)
      let cost j = ((io, comp), int_of_float (Float.round chunks) * j) in
      let round_time j =
        if j = 0 then 0.0 else queue_time ~resident:j [ cost j ]
      in
      let capacity = arch.n_sm * resident in
      let full_rounds = blocks / capacity in
      let remainder = blocks mod capacity in
      let body =
        (float_of_int full_rounds *. round_time resident)
        +. round_time (Ints.ceil_div remainder arch.n_sm)
      in
      Ok
        {
          kernel = k;
          occ;
          avg_io = io;
          avg_comp = comp;
          avg_chunks = chunks;
          base_s = arch.launch_overhead_s +. body;
          jitter_seed = Det_hash.mix_string (Det_hash.create arch.name) k.label;
        }

let priced_time ?(jitter = true) ~salt _arch p =
  (* Det_hash states are pure folds, so mixing the salt into the stored
     (architecture, label) state is the exact [jitter_factor] value *)
  let j =
    if jitter then
      Det_hash.jitter
        (Det_hash.mix_int p.jitter_seed salt)
        ~amplitude:jitter_amplitude
    else 1.0
  in
  p.base_s *. j

let priced_stats ?(jitter = true) ~salt arch p =
  stats_of_time p.kernel p.occ ~io:p.avg_io ~comp:p.avg_comp
    ~chunks:p.avg_chunks
    (priced_time ~jitter ~salt arch p)

(* Where does a priced kernel's time go?  Mirrors the round structure of
   [price] so the component sum reconstructs [priced_time] up to float
   rounding: per round the dominant max(io, compute) term is credited to
   its own side and the pipeline-fill term [min io comp] to the smaller
   side (it is that phase's exposed cost).  Shared-memory traffic is folded
   into compute by the cost model ([Compute.chunk_seconds] charges bank
   conflicts as compute cycles) and sync likewise, so those components are
   zero here — the analytical model's attribution is where they split out.
   The jitter component is the salted replay's deviation from the priced
   body and may be negative. *)
let attribute_priced ?(jitter = true) ~salt (arch : Arch.t) p =
  let resident = p.occ.Occupancy.blocks_per_sm in
  let io = p.avg_io and comp = p.avg_comp in
  let chunks = int_of_float (Float.round p.avg_chunks) in
  let round_parts j =
    if j = 0 then (0.0, 0.0)
    else
      let tio = io *. float_of_int (chunks * j) in
      let tcomp = comp *. float_of_int (chunks * j) in
      if resident = 1 then (tio, tcomp)
      else
        let fill = min io comp in
        let fio, fcomp = if io <= comp then (fill, 0.0) else (0.0, fill) in
        if tio >= tcomp then (tio +. fio, fcomp) else (fio, tcomp +. fcomp)
  in
  let blocks = Kernel.total_blocks p.kernel in
  let capacity = arch.n_sm * resident in
  let full_rounds = blocks / capacity in
  let remainder = blocks mod capacity in
  let rio_full, rcomp_full = round_parts resident in
  let rio_last, rcomp_last = round_parts (Ints.ceil_div remainder arch.n_sm) in
  let f = float_of_int full_rounds in
  let jf =
    if jitter then
      Det_hash.jitter
        (Det_hash.mix_int p.jitter_seed salt)
        ~amplitude:jitter_amplitude
    else 1.0
  in
  {
    Hextime_obs.Attribution.compute = (f *. rcomp_full) +. rcomp_last;
    global_mem = (f *. rio_full) +. rio_last;
    shared_mem = 0.0;
    sync = 0.0;
    launch = arch.launch_overhead_s;
    jitter = p.base_s *. (jf -. 1.0);
  }

let run_kernel_salted ?(jitter = true) ~salt arch (k : Kernel.t) =
  match price arch k with
  | Error _ as e -> e
  | Ok p -> Ok (priced_stats ~jitter ~salt arch p)

let run_kernel ?jitter arch k = run_kernel_salted ?jitter ~salt:0 arch k

let run_kernel_exact ?(jitter = true) arch (k : Kernel.t) =
  Metrics.incr price_counter;
  match kernel_setup arch k with
  | Error _ as e -> e
  | Ok (_req, occ) ->
      let resident = occ.blocks_per_sm in
      let spilled = occ.regs_spilled_per_thread in
      (* per-class (cost, chunks): computed once and shared between the
         dispatch below and the averaged stats *)
      let costs = class_costs arch ~resident ~spilled k in
      (* materialise per-block (cost, chunks) pairs *)
      let blocks =
        List.concat_map
          (fun ((w : Workload.t), count, cost) ->
            List.init count (fun _ -> (cost, w.chunks)))
          costs
      in
      (* greedy dispatch: each block goes to the least-loaded SM and retires
         at the SM's steady-state rate *)
      let service ((io, comp), chunks) =
        let per_chunk = if resident = 1 then io +. comp else max io comp in
        per_chunk *. float_of_int chunks
      in
      let sm_clock = Array.make arch.n_sm 0.0 in
      List.iter
        (fun b ->
          let best = ref 0 in
          for i = 1 to arch.n_sm - 1 do
            if sm_clock.(i) < sm_clock.(!best) then best := i
          done;
          sm_clock.(!best) <- sm_clock.(!best) +. service b)
        blocks;
      let fill =
        match (blocks, resident) with
        | _, 1 | [], _ -> 0.0
        | ((io, comp), _) :: _, _ -> min io comp
      in
      let makespan = Array.fold_left max 0.0 sm_clock +. fill in
      let io, comp, chunks = average_of_class_costs k costs in
      let j = if jitter then jitter_factor arch k.label ~salt:0 else 1.0 in
      let time = (arch.launch_overhead_s +. makespan) *. j in
      Ok (stats_of_time k occ ~io ~comp ~chunks time)

let price_sequence arch kernels =
  if kernels = [] then Error "empty kernel sequence"
  else if List.exists (fun (_, n) -> n <= 0) kernels then
    Error "non-positive kernel repeat count"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, count) :: rest -> (
          match price arch k with
          | Error _ as e -> e
          | Ok p -> go ((p, count) :: acc) rest)
    in
    go [] kernels

let replay ?(jitter = true) ~salt arch priced =
  Metrics.incr replay_counter;
  let rec go acc_time acc_stats launches = function
    | [] ->
        {
          total_s = acc_time;
          kernel_launches = launches;
          kernels = List.rev acc_stats;
        }
    | (p, count) :: rest ->
        let st = priced_stats ~jitter ~salt arch p in
        go
          (acc_time +. (st.time_s *. float_of_int count))
          (st :: acc_stats) (launches + count) rest
  in
  go 0.0 [] 0 priced

let replay_total ?(jitter = true) ~salt arch priced =
  Metrics.incr replay_counter;
  List.fold_left
    (fun acc (p, count) ->
      acc +. (priced_time ~jitter ~salt arch p *. float_of_int count))
    0.0 priced

let run_sequence_salted ?(jitter = true) ~salt arch kernels =
  match price_sequence arch kernels with
  | Error _ as e -> e
  | Ok priced -> Ok (replay ~jitter ~salt arch priced)

let run_sequence ?jitter arch kernels =
  run_sequence_salted ?jitter ~salt:0 arch kernels

let measure_priced ?(runs = 5) arch priced =
  if runs <= 0 then Error "measure: runs must be positive"
  else
    let rec go best salt =
      if salt >= runs then Ok best
      else go (min best (replay_total ~jitter:true ~salt arch priced)) (salt + 1)
    in
    go infinity 0

let measure ?(runs = 5) arch kernels =
  if runs <= 0 then Error "measure: runs must be positive"
  else
    match price_sequence arch kernels with
    | Error _ as e -> e
    | Ok priced -> measure_priced ~runs arch priced
