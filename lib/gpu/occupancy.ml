type request = { threads : int; shared_words : int; regs_per_thread : int }
type limit = Threads | Blocks | Shared_memory | Registers

type result = {
  blocks_per_sm : int;
  limiting : limit;
  regs_spilled_per_thread : int;
}

let calculate_uncached (arch : Arch.t) req =
  (* nvcc caps the registers a thread may keep; the excess is spilled and the
     capped value is what occupancy is computed from. *)
  let spilled = max 0 (req.regs_per_thread - arch.max_regs_per_thread) in
  let regs_held = min req.regs_per_thread arch.max_regs_per_thread in
  let candidates =
    [
      (Threads, arch.max_threads_per_sm / req.threads);
      (Blocks, arch.max_blocks_per_sm);
      ( Shared_memory,
        if req.shared_words = 0 then arch.max_blocks_per_sm
        else if req.shared_words > arch.shared_mem_per_block then 0
        else arch.shared_mem_per_sm / req.shared_words );
      ( Registers,
        if regs_held = 0 then arch.max_blocks_per_sm
        else arch.registers_per_sm / (regs_held * req.threads) );
    ]
  in
  let candidates =
    if req.threads > arch.max_threads_per_block then [ (Threads, 0) ]
    else candidates
  in
  let limiting, blocks =
    List.fold_left
      (fun (bl, bb) (l, b) -> if b < bb then (l, b) else (bl, bb))
      (Blocks, max_int) candidates
  in
  { blocks_per_sm = max 0 blocks; limiting; regs_spilled_per_thread = spilled }

(* The sweep asks about the same few dozen (arch, request) pairs thousands
   of times (one per kernel pricing), so the pure calculation is memoised.
   Arch.t and request are flat immutable records of scalars, so structural
   equality is exact; the hash must NOT be the generic one on the whole
   key, though — Hashtbl.hash stops after a few fields and would spend its
   entire budget inside Arch.t, hashing every request to the same bucket.
   Hash on the request fields (plus the architecture's name) and keep full
   structural equality for correctness.  Validation stays outside the memo
   so invalid requests raise identically whether or not they were seen. *)
module Memo = Hashtbl.Make (struct
  type t = Arch.t * request

  let equal = ( = )

  let hash ((arch : Arch.t), req) =
    Hashtbl.hash
      (arch.Arch.name, req.threads, req.shared_words, req.regs_per_thread)
end)

let memo : result Memo.t = Memo.create 64

(* The memo is shared by every domain of the process: the domains-based
   sweep pool (Parsweep.Dpool) prices points concurrently and an unguarded
   Hashtbl resize under concurrent [add]s corrupts the table.  The critical
   section is a lookup or a lookup+insert of a tiny record — contention is
   negligible next to the pricing work around it, and the worst duplicate
   work race (two domains both missing the same cold key) is resolved by
   both computing the identical pure result. *)
let memo_mutex = Mutex.create ()
let memo_hits = Hextime_obs.Metrics.counter "occupancy.memo_hit"
let memo_misses = Hextime_obs.Metrics.counter "occupancy.memo_miss"

let calculate (arch : Arch.t) req =
  if req.threads <= 0 then invalid_arg "Occupancy: threads must be positive";
  if req.shared_words < 0 || req.regs_per_thread < 0 then
    invalid_arg "Occupancy: negative resource request";
  let key = (arch, req) in
  let cached =
    Mutex.protect memo_mutex (fun () -> Memo.find_opt memo key)
  in
  match cached with
  | Some r ->
      Hextime_obs.Metrics.incr memo_hits;
      r
  | None ->
      Hextime_obs.Metrics.incr memo_misses;
      let r = calculate_uncached arch req in
      Mutex.protect memo_mutex (fun () ->
          if not (Memo.mem memo key) then Memo.add memo key r);
      r

let fits arch req = (calculate arch req).blocks_per_sm >= 1
