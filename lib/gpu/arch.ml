type t = {
  name : string;
  n_sm : int;
  n_vector : int;
  warp_size : int;
  shared_mem_per_sm : int;
  shared_mem_per_block : int;
  registers_per_sm : int;
  max_regs_per_thread : int;
  max_blocks_per_sm : int;
  max_threads_per_sm : int;
  max_threads_per_block : int;
  shared_banks : int;
  clock_ghz : float;
  dram_bandwidth_gbs : float;
  dram_efficiency : float;
  dram_latency_cycles : int;
  launch_overhead_s : float;
  sync_cycles : int;
}

let words_of_kb kb = kb * 1024 / 4

let gtx980 =
  {
    name = "gtx980";
    n_sm = 16;
    n_vector = 128;
    warp_size = 32;
    shared_mem_per_sm = words_of_kb 96;
    shared_mem_per_block = words_of_kb 48;
    registers_per_sm = 65536;
    max_regs_per_thread = 255;
    max_blocks_per_sm = 32;
    max_threads_per_sm = 2048;
    max_threads_per_block = 1024;
    shared_banks = 32;
    clock_ghz = 1.126;
    dram_bandwidth_gbs = 224.0;
    dram_efficiency = 0.60;
    dram_latency_cycles = 350;
    launch_overhead_s = 9.2e-7;
    sync_cycles = 1;
  }

let titanx =
  {
    gtx980 with
    name = "titanx";
    n_sm = 24;
    clock_ghz = 1.0;
    dram_bandwidth_gbs = 336.0;
    dram_efficiency = 0.55;
    launch_overhead_s = 9.0e-7;
  }

let presets = [ gtx980; titanx ]

let find name =
  match List.find_opt (fun a -> a.name = name) presets with
  | Some a -> a
  | None -> raise Not_found

(* Every field the simulator prices from — and deliberately NOT [name].
   The incremental sweep cache keys points by this digest, so renaming an
   architecture (or adding an unrelated preset) re-prices nothing, while
   touching any number a kernel's time depends on invalidates exactly the
   affected points. *)
let mix_pricing h a =
  let module D = Hextime_prelude.Det_hash in
  let h = D.mix_int h a.n_sm in
  let h = D.mix_int h a.n_vector in
  let h = D.mix_int h a.warp_size in
  let h = D.mix_int h a.shared_mem_per_sm in
  let h = D.mix_int h a.shared_mem_per_block in
  let h = D.mix_int h a.registers_per_sm in
  let h = D.mix_int h a.max_regs_per_thread in
  let h = D.mix_int h a.max_blocks_per_sm in
  let h = D.mix_int h a.max_threads_per_sm in
  let h = D.mix_int h a.max_threads_per_block in
  let h = D.mix_int h a.shared_banks in
  let h = D.mix_float h a.clock_ghz in
  let h = D.mix_float h a.dram_bandwidth_gbs in
  let h = D.mix_float h a.dram_efficiency in
  let h = D.mix_int h a.dram_latency_cycles in
  let h = D.mix_float h a.launch_overhead_s in
  D.mix_int h a.sync_cycles

let cycle_s a = 1e-9 /. a.clock_ghz
let seconds_of_cycles a c = c *. cycle_s a

let word_transfer_s a =
  4.0 /. (a.dram_bandwidth_gbs *. 1e9 *. a.dram_efficiency)

let pp ppf a =
  Format.fprintf ppf
    "%s: %d SMs x %d lanes @ %.3f GHz, %d KB smem/SM, %.0f GB/s" a.name a.n_sm
    a.n_vector a.clock_ghz (a.shared_mem_per_sm * 4 / 1024) a.dram_bandwidth_gbs
