type span = { sm : int; start_s : float; finish_s : float; blocks : int }

type t = {
  spans : span list;
  makespan_s : float;
  resident : int;
  idle_fraction : float;
}

let of_kernel (arch : Arch.t) (kernel : Kernel.t) =
  let req = Kernel.max_request kernel in
  let occ = Occupancy.calculate arch req in
  if occ.Occupancy.blocks_per_sm = 0 then
    Error "no block fits on an SM (infeasible configuration)"
  else
    let resident = occ.Occupancy.blocks_per_sm in
    let spilled = occ.Occupancy.regs_spilled_per_thread in
    (* per-block chunk costs, expanded in kernel order *)
    let blocks =
      List.concat_map
        (fun ((w : Workload.t), count) ->
          let io, comp =
            Simulator.block_cost arch ~resident w ~spilled_regs:spilled
          in
          List.init count (fun _ -> (io, comp, w.Workload.chunks)))
        kernel.Kernel.blocks
    in
    (* round-synchronised dispatch, mirroring the fast path: rounds of up to
       [resident] blocks per SM, all SMs in lockstep per round *)
    let sm_clock = Array.make arch.n_sm 0.0 in
    let spans = ref [] in
    let rec rounds remaining =
      match remaining with
      | [] -> ()
      | _ ->
          let per_round = arch.n_sm * resident in
          let rec take n acc rest =
            if n = 0 then (List.rev acc, rest)
            else
              match rest with
              | [] -> (List.rev acc, [])
              | x :: tl -> take (n - 1) (x :: acc) tl
          in
          let this_round, rest = take per_round [] remaining in
          (* distribute the round's blocks over SMs round-robin *)
          let per_sm = Array.make arch.n_sm [] in
          List.iteri
            (fun i b -> per_sm.(i mod arch.n_sm) <- b :: per_sm.(i mod arch.n_sm))
            this_round;
          let round_start = Array.fold_left max 0.0 sm_clock in
          Array.iteri
            (fun sm bs ->
              match bs with
              | [] -> ()
              | _ ->
                  let j = List.length bs in
                  let io_tot =
                    List.fold_left
                      (fun a (io, _, ch) -> a +. (io *. float_of_int ch))
                      0.0 bs
                  in
                  let comp_tot =
                    List.fold_left
                      (fun a (_, c, ch) -> a +. (c *. float_of_int ch))
                      0.0 bs
                  in
                  let duration =
                    if j = 1 && resident = 1 then io_tot +. comp_tot
                    else if j = 1 then io_tot +. comp_tot
                    else
                      let io1, c1, _ = List.hd bs in
                      max io_tot comp_tot +. min io1 c1
                  in
                  let finish = round_start +. duration in
                  spans :=
                    { sm; start_s = round_start; finish_s = finish; blocks = j }
                    :: !spans;
                  sm_clock.(sm) <- finish)
            per_sm;
          rounds rest
    in
    rounds blocks;
    let makespan = Array.fold_left max 0.0 sm_clock in
    let busy =
      List.fold_left (fun a s -> a +. (s.finish_s -. s.start_s)) 0.0 !spans
    in
    let idle_fraction =
      if makespan <= 0.0 then 0.0
      else 1.0 -. (busy /. (float_of_int arch.n_sm *. makespan))
    in
    Ok
      {
        spans = List.rev !spans;
        makespan_s = makespan;
        resident;
        idle_fraction;
      }

let render ?(width = 64) t =
  if width < 8 then invalid_arg "Timeline.render: width too small";
  let b = Buffer.create 2048 in
  let sms =
    List.sort_uniq compare (List.map (fun s -> s.sm) t.spans)
  in
  Printf.ksprintf (Buffer.add_string b)
    "kernel timeline: makespan %.3e s, k = %d resident, %.1f%% SM idle\n"
    t.makespan_s t.resident (100.0 *. t.idle_fraction);
  let cell time =
    if t.makespan_s <= 0.0 then 0
    else
      min (width - 1)
        (int_of_float (time /. t.makespan_s *. float_of_int (width - 1)))
  in
  List.iter
    (fun sm ->
      let lane = Bytes.make width '.' in
      List.iter
        (fun s ->
          if s.sm = sm then
            for i = cell s.start_s to cell s.finish_s do
              Bytes.set lane i '#'
            done)
        t.spans;
      Printf.ksprintf (Buffer.add_string b) "  SM%-3d |%s|\n" sm
        (Bytes.to_string lane))
    sms;
  Buffer.contents b
