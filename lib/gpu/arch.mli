(** GPU architecture descriptions.

    These are the elementary hardware (EH) parameters of Table 1, extended
    with the physical quantities the execution simulator needs (clock,
    DRAM bandwidth and latency, issue behaviour).  Table 2 of the paper is
    the restriction of {!gtx980} and {!titanx} to the EH rows.

    Shared-memory quantities are expressed in 4-byte words, matching the
    paper's convention for [M_SM] and [M_tile]. *)

type t = {
  name : string;
  n_sm : int;  (** nSM: number of streaming multiprocessors *)
  n_vector : int;  (** nV: vector units (lanes) per SM *)
  warp_size : int;  (** threads per warp *)
  shared_mem_per_sm : int;  (** M_SM, in words *)
  shared_mem_per_block : int;  (** per-thread-block cap, in words (48 KB) *)
  registers_per_sm : int;  (** R_SM *)
  max_regs_per_thread : int;  (** nvcc hard cap before spilling *)
  max_blocks_per_sm : int;  (** MTB_SM *)
  max_threads_per_sm : int;
  max_threads_per_block : int;
  shared_banks : int;
  clock_ghz : float;  (** SM clock *)
  dram_bandwidth_gbs : float;  (** peak DRAM bandwidth *)
  dram_efficiency : float;  (** achievable fraction of peak for streaming *)
  dram_latency_cycles : int;  (** first-word latency *)
  launch_overhead_s : float;  (** host-side kernel launch / sync (T_sync) *)
  sync_cycles : int;  (** amortised __syncthreads cost (tau_sync) *)
}

val gtx980 : t
(** NVIDIA GTX 980 (Maxwell GM204): 16 SMs, 224 GB/s. *)

val titanx : t
(** NVIDIA GTX Titan X (Maxwell GM200): 24 SMs, 336 GB/s, lower clock. *)

val presets : t list
val find : string -> t
(** Look up a preset by name; raises [Not_found]. *)

val mix_pricing : Hextime_prelude.Det_hash.t -> t -> Hextime_prelude.Det_hash.t
(** Fold every pricing-relevant field — everything except [name] — into a
    digest state.  Two architectures with equal digests price every kernel
    identically, so the sweep cache keys points by this (a renamed preset
    is a warm cache hit; a changed clock or bandwidth is not). *)

val cycle_s : t -> float
(** Duration of one SM cycle in seconds. *)

val seconds_of_cycles : t -> float -> float

val word_transfer_s : t -> float
(** Streaming cost of one 4-byte word at achievable bandwidth, whole device
    (this is what the L micro-benchmark of Table 3 observes). *)

val pp : Format.formatter -> t -> unit
