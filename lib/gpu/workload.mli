(** The work one thread block performs, as handed to the simulator.

    This is the meeting point between the tiling engine and the GPU
    simulator: the tiling engine lowers a tile (hexagon, prism slice or slab
    slice) into a [t]; the simulator prices it.  A block executes [chunks]
    identical chunks in sequence (the sub-prisms / sub-slabs of Sections 4.2
    and 4.3); each chunk loads [input], computes the [rows] in order with a
    barrier after each, and stores [output]. *)

type row = {
  points : int;  (** stencil points computed in parallel in this row *)
  repeats : int;  (** how many consecutive rows share this width *)
}

type t = {
  label : string;  (** for traces and deterministic jitter *)
  threads : int;  (** threads per block (the n_thr compiler parameter) *)
  shared_words : int;  (** shared-memory footprint per block (M_tile) *)
  regs_per_thread : int;  (** estimated register demand per thread *)
  body : Pointcost.body;  (** per-point loop-body facts *)
  rows : row list;  (** one chunk's compute rows, in dependence order *)
  input : Memory.transfer;  (** global->shared traffic per chunk *)
  output : Memory.transfer;  (** shared->global traffic per chunk *)
  row_stride : int;  (** shared-array inner stride (bank behaviour) *)
  chunks : int;  (** sequential chunks executed by this block *)
}

val v :
  label:string ->
  threads:int ->
  shared_words:int ->
  regs_per_thread:int ->
  body:Pointcost.body ->
  rows:row list ->
  input:Memory.transfer ->
  output:Memory.transfer ->
  row_stride:int ->
  chunks:int ->
  t
(** Smart constructor; validates positivity of all counts. *)

val points_per_chunk : t -> int
(** Total stencil points computed in one chunk. *)

val total_points : t -> int
val row_count : t -> int

val occupancy_request : t -> Occupancy.request

val pp : Format.formatter -> t -> unit
