module Ints = Hextime_prelude.Ints

let warps_for arch ~threads = Ints.ceil_div threads (arch : Arch.t).warp_size

let usable_lanes (arch : Arch.t) ~threads = min threads arch.n_vector

let lane_iterations arch ~threads ~points =
  if points <= 0 then invalid_arg "Compute.lane_iterations";
  Ints.ceil_div points (usable_lanes arch ~threads)

(* Full latency hiding needs roughly 8 resident warps per scheduler; fewer
   warps leave pipeline bubbles. *)
let warps_for_full_hiding = 8

let latency_hiding_factor arch ~threads =
  let w = warps_for arch ~threads in
  if w >= warps_for_full_hiding then 1.0
  else 1.0 +. (0.15 *. float_of_int (warps_for_full_hiding - w))

let divergence_factor (arch : Arch.t) ~threads =
  (* warp-granular issue: 48 threads occupy 2 warps' worth of lanes *)
  float_of_int (Ints.round_up threads arch.warp_size) /. float_of_int threads

let per_point_seconds arch (w : Workload.t) ~spilled_regs =
  let base = Pointcost.seconds arch w.body in
  let conflicts = Smem.conflict_factor arch ~row_stride:w.row_stride in
  let spill =
    if spilled_regs = 0 then 0.0
    else
      (* each spilled register is reloaded/stored around every point update *)
      Memory.spill_traffic_s arch ~words:(float_of_int spilled_regs *. 0.5)
  in
  (base *. conflicts) +. spill

(* a __syncthreads barrier drains the SM's pipelines; other resident blocks
   can fill the bubble, so the exposed stall shrinks with residency *)
let barrier_drain_cycles = 40.0

let row_seconds arch (w : Workload.t) ~spilled_regs ~resident ~points =
  if resident < 1 then invalid_arg "Compute.row_seconds: resident < 1";
  let iters = lane_iterations arch ~threads:w.threads ~points in
  let per_point = per_point_seconds arch w ~spilled_regs in
  let stretch =
    latency_hiding_factor arch ~threads:w.threads
    *. divergence_factor arch ~threads:w.threads
  in
  let barrier =
    float_of_int arch.sync_cycles
    +. (barrier_drain_cycles /. float_of_int resident)
  in
  (float_of_int iters *. per_point *. stretch)
  +. Arch.seconds_of_cycles arch barrier

(* The per-row fold, with everything row-invariant hoisted: only the lane
   iteration count depends on the row, so the point cost, the hiding and
   divergence stretch and the barrier are computed once per chunk instead
   of once per row.  The per-row expression is kept verbatim from
   [row_seconds] so the sum is bit-identical to folding it directly. *)
let chunk_seconds arch (w : Workload.t) ~spilled_regs ~resident =
  if resident < 1 then invalid_arg "Compute.row_seconds: resident < 1";
  let per_point = per_point_seconds arch w ~spilled_regs in
  let stretch =
    latency_hiding_factor arch ~threads:w.threads
    *. divergence_factor arch ~threads:w.threads
  in
  let barrier_s =
    Arch.seconds_of_cycles arch
      (float_of_int arch.sync_cycles
      +. (barrier_drain_cycles /. float_of_int resident))
  in
  List.fold_left
    (fun acc (r : Workload.row) ->
      let iters = lane_iterations arch ~threads:w.threads ~points:r.points in
      acc
      +. float_of_int r.repeats
         *. ((float_of_int iters *. per_point *. stretch) +. barrier_s))
    0.0 w.rows
