(** A warp-level discrete-event simulation of one thread block's compute
    phase — an *independent* estimator used to validate the closed-form
    timing in {!Compute}.

    Where {!Compute} prices a row as [ceil(points/lanes) * per_point *
    penalties], this module actually schedules warps cycle by cycle: each
    warp owns a share of the row's points, turns them into an instruction
    stream (the per-point issue-slot count comes from {!Pointcost}), issues
    at most one instruction per scheduler per cycle, stalls on a dependency
    latency after every chain of independent instructions, and meets the
    whole block at a barrier after every row.  Latency hiding, warp
    granularity and barrier costs *emerge* from the event loop instead of
    being closed-form factors, so agreement between the two estimators is
    meaningful evidence that the closed form (and hence the simulator that
    the paper's claims are validated against) is self-consistent. *)

type stats = {
  cycles : float;  (** simulated cycles for one chunk's compute phase *)
  issued : int;  (** total warp-instructions issued *)
  stall_fraction : float;  (** scheduler slots idle / total slots *)
}

val chunk_stats : Arch.t -> Workload.t -> stats
(** Event-simulate one chunk of the workload with a single resident block.
    Uses two exact shortcuts — steady-state fast-forward inside a row and
    delta reuse across a row's repeats — so its cost is dominated by each
    row's warm-up and drain, not its length.  Bit-identical to
    {!chunk_stats_slow}. *)

val chunk_stats_slow : Arch.t -> Workload.t -> stats
(** The retained cycle-by-cycle reference loop.  The property tests assert
    [chunk_stats] and [chunk_stats_slow] agree exactly on every field. *)

val chunk_seconds : Arch.t -> Workload.t -> float
(** [chunk_stats] converted at the architecture's clock. *)

val agreement : Arch.t -> Workload.t -> float
(** Ratio of the event-simulated chunk time to {!Compute.chunk_seconds} at
    residency 1 — close to 1.0 when the closed form is faithful. *)
