(** Intrinsic per-point compute cost.

    This is the simulator's ground-truth counterpart of the paper's C_iter:
    the pipelined time, per vector lane, to produce one stencil point when
    all inputs are in shared memory.  The paper measures C_iter empirically
    (Section 5.2, Table 4) because it folds together issue latency, pipeline
    structure, addressing and bank behaviour; here we *define* the truth with
    an explicit linear cost model over the loop-body facts, and the harness's
    micro-benchmark then re-measures it through the simulator exactly as the
    paper does on hardware. *)

type body = {
  flops : int;  (** arithmetic operations per point *)
  loads : int;  (** shared-memory reads per point *)
  transcendentals : int;  (** sqrt/div-class operations per point *)
  rank : int;  (** space dimensionality of the stencil (1, 2 or 3) *)
  double : bool;  (** double precision: Maxwell-class GPUs execute FP64
                      arithmetic at a small fraction of FP32 throughput *)
}

val cycles : body -> float
(** Per-point pipelined cost in SM cycles, excluding bank conflicts and
    divergence (charged separately by {!Compute}).  Includes the heavy
    addressing/control overhead of 3D tiles that makes the paper's 3D C_iter
    values roughly four times the 2D ones (Table 4). *)

val seconds : Arch.t -> body -> float
(** [cycles] converted at the architecture's clock. *)
