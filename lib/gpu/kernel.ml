type t = { label : string; blocks : (Workload.t * int) list }

let v ~label ~blocks =
  if blocks = [] then invalid_arg "Kernel.v: no blocks";
  List.iter
    (fun (_, count) -> if count <= 0 then invalid_arg "Kernel.v: count <= 0")
    blocks;
  { label; blocks }

let total_blocks k = List.fold_left (fun acc (_, c) -> acc + c) 0 k.blocks

let total_points k =
  List.fold_left
    (fun acc (w, c) -> acc + (Workload.total_points w * c))
    0 k.blocks

let max_request k =
  List.fold_left
    (fun (acc : Occupancy.request) ((w : Workload.t), _) ->
      {
        Occupancy.threads = max acc.threads w.threads;
        shared_words = max acc.shared_words w.shared_words;
        regs_per_thread = max acc.regs_per_thread w.regs_per_thread;
      })
    { Occupancy.threads = 1; shared_words = 0; regs_per_thread = 0 }
    k.blocks

let pp ppf k =
  Format.fprintf ppf "kernel %s: %d blocks (%d shapes)" k.label
    (total_blocks k) (List.length k.blocks)
