(** Timing of the compute phase of a chunk.

    The paper's optimistic model (Equations 9, 15, 27) assumes every row
    costs [ceil(points / nV) * C_iter + tau_sync] — full lane utilisation,
    no divergence, no conflicts, perfect latency hiding.  The simulator's
    ground truth here charges for what real code pays:

    - a block can use at most [min(threads, nV)] lanes per issue round;
    - threads are scheduled warp-granular, so a thread count that is not a
      multiple of the warp size wastes lanes;
    - too few resident warps fail to hide pipeline latency;
    - shared-memory bank conflicts scale with the tile's inner stride;
    - registers spilled by the compiler add DRAM-backed traffic per point. *)

val row_seconds :
  Arch.t -> Workload.t -> spilled_regs:int -> resident:int -> points:int -> float
(** Time for one compute row of [points] points, including the trailing
    intra-block synchronisation.  [resident] is the number of co-resident
    blocks on the SM: the barrier's pipeline-drain bubble is filled by other
    blocks when there are any, so low residency pays more per row — one of
    the reasons Section 7 finds footprint-maximising (low-k) tiles
    suboptimal. *)

val chunk_seconds :
  Arch.t -> Workload.t -> spilled_regs:int -> resident:int -> float
(** Time for all rows of one chunk (no global traffic). *)

val lane_iterations : Arch.t -> threads:int -> points:int -> int
(** Number of issue rounds needed for a row: [ceil (points / usable_lanes)].
    Exposed for tests. *)

val latency_hiding_factor : Arch.t -> threads:int -> float
(** Penalty ([>= 1.0]) applied when a block has too few warps to hide
    arithmetic and shared-memory latency.  Exposed for tests. *)
