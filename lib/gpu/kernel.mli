(** A kernel call: a population of thread blocks launched together.

    One kernel executes one wavefront of tiles (Section 3.1): all blocks are
    independent and the GPU schedules them freely over the SMs.  Blocks with
    identical shape are grouped with a count so a kernel's cost can be
    computed without materialising every block. *)

type t = private { label : string; blocks : (Workload.t * int) list }

val v : label:string -> blocks:(Workload.t * int) list -> t
(** Validates that at least one block is present and counts are positive. *)

val total_blocks : t -> int
val total_points : t -> int

val max_request : t -> Occupancy.request
(** The most demanding resource request across block shapes; residency on an
    SM is limited by it (the HHC runtime launches one grid, so all blocks
    reserve identical resources). *)

val pp : Format.formatter -> t -> unit
