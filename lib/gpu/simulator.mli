(** The execution simulator: prices kernel sequences on an architecture.

    This stands in for the physical GTX 980 / Titan X of the paper's
    evaluation.  It shares the first-order cost structure of the analytical
    model (wavefront kernels -> rounds of resident blocks per SM -> per-chunk
    global traffic + row-by-row compute) but additionally charges for the
    second-order effects the model is deliberately optimistic about:
    occupancy limits, register spills, bank conflicts, warp-granularity,
    latency hiding, DRAM congestion and per-kernel launch overhead, plus a
    deterministic sub-2% timing jitter derived from the workload identity
    (real measurements are noisy; Section 5.1 takes the minimum of five
    runs, and so does our measurement harness).

    The core is the {e priced-kernel representation}: {!price} computes
    everything jitter-invariant about a kernel exactly once (occupancy,
    averaged chunk costs, the round-synchronised body time), and every
    salted run — including the min-of-five measurement protocol — is a
    constant-time reapplication of a jitter factor to the priced body.

    Two pricing paths are provided: a closed-form steady-state path whose
    cost is independent of the block count, and an exact list-scheduling
    path used to validate the closed form on small kernels. *)

type kernel_stats = {
  time_s : float;
  blocks : int;
  resident_blocks : int;  (** the achieved hyper-threading factor k *)
  limiting : Occupancy.limit;
  spilled_regs : int;  (** per-thread registers spilled, worst shape *)
  io_s : float;  (** aggregate per-block global-traffic time *)
  compute_s : float;  (** aggregate per-block compute time *)
}

type run_stats = {
  total_s : float;
  kernel_launches : int;
  kernels : kernel_stats list;  (** one entry per distinct kernel *)
}

val invocations : unit -> int
(** Number of kernel pricings performed by this process since start.
    Instrumentation for the sweep-cache tests: a warm-cache sweep must
    answer every point without touching the simulator, and a cold sweep
    must price each kernel of a point exactly once (not once per
    measurement run).  Forked sweep workers count in their own process,
    not the parent's. *)

val block_cost :
  Arch.t -> resident:int -> Workload.t -> spilled_regs:int -> float * float
(** [(io_s, compute_s)] for one chunk of one block when [resident] blocks
    per SM are active. Exposed for tests. *)

(** {1 The priced-kernel representation} *)

type priced = {
  kernel : Kernel.t;
  occ : Occupancy.result;
  avg_io : float;  (** averaged per-chunk transfer seconds *)
  avg_comp : float;  (** averaged per-chunk compute seconds *)
  avg_chunks : float;  (** averaged chunk count *)
  base_s : float;
      (** launch overhead + round-synchronised body: the full
          jitter-invariant execution time *)
  jitter_seed : Hextime_prelude.Det_hash.t;
      (** hash state over (architecture name, kernel label): a salted
          replay only mixes in the salt *)
}

val price : Arch.t -> Kernel.t -> (priced, string) result
(** Compute everything jitter-invariant about one kernel call, exactly
    once.  [Error] when no block fits on an SM (infeasible configuration).
    Bumps the {!invocations} counter. *)

val priced_time : ?jitter:bool -> salt:int -> Arch.t -> priced -> float
(** One salted execution time of a priced kernel: the priced body times a
    deterministic jitter factor.  O(1); performs no pricing. *)

val priced_stats : ?jitter:bool -> salt:int -> Arch.t -> priced -> kernel_stats
(** Full per-kernel stats of one salted execution of a priced kernel.
    O(1); performs no pricing. *)

val attribute_priced :
  ?jitter:bool -> salt:int -> Arch.t -> priced ->
  Hextime_obs.Attribution.components
(** Breakdown of one salted execution of a priced kernel: per round the
    dominant max(io, compute) term is credited to its own side and the
    pipeline-fill term to the smaller side, so the component sum equals
    {!priced_time} for the same salt up to float rounding.  [shared_mem]
    and [sync] are zero here — the simulator's cost model folds both into
    compute cycles; the analytical model's attribution splits them out.
    [jitter] is the salted replay's deviation from the priced body and may
    be negative. *)

val price_sequence :
  Arch.t -> (Kernel.t * int) list -> ((priced * int) list, string) result
(** Price a program once: each kernel is priced exactly once regardless of
    its launch count or of how many salted runs are later replayed. *)

val replay : ?jitter:bool -> salt:int -> Arch.t -> (priced * int) list -> run_stats
(** One salted run of a priced program.  Performs no pricing. *)

val measure_priced :
  ?runs:int -> Arch.t -> (priced * int) list -> (float, string) result
(** The measurement protocol on an already-priced program: minimum over
    [runs] jitter reapplications.  Performs no pricing. *)

(** {1 Convenience entry points} *)

val run_kernel :
  ?jitter:bool -> Arch.t -> Kernel.t -> (kernel_stats, string) result
(** Price one kernel call (including launch overhead).  [Error] is returned
    when no block fits on an SM (infeasible configuration).  [jitter]
    defaults to [true]. *)

val run_kernel_salted :
  ?jitter:bool -> salt:int -> Arch.t -> Kernel.t -> (kernel_stats, string) result
(** [run_kernel] with an explicit jitter salt (the measurement run index). *)

val run_kernel_exact :
  ?jitter:bool ->
  Arch.t ->
  Kernel.t ->
  (kernel_stats, string) result
(** Alternative scheduling policy: materialises every block and dispatches
    each to the least-loaded SM as slots free up (pure streaming, no round
    synchronisation).  Because real blocks are near-uniform this brackets
    the round-synchronised closed form from below; the tests assert the two
    agree within a round's slack.  Intended for kernels with at most a few
    thousand blocks. *)

val run_sequence :
  ?jitter:bool ->
  Arch.t ->
  (Kernel.t * int) list ->
  (run_stats, string) result
(** Price a program: each kernel is launched [count] times (the wavefronts
    of Equation 2; all launches of one kernel cost the same, so the cost is
    computed once and scaled). *)

val run_sequence_salted :
  ?jitter:bool ->
  salt:int ->
  Arch.t ->
  (Kernel.t * int) list ->
  (run_stats, string) result
(** [run_sequence] with an explicit jitter salt.  Exposed so tests can
    check the priced replay against per-salt pricing from scratch. *)

val measure :
  ?runs:int -> Arch.t -> (Kernel.t * int) list -> (float, string) result
(** The paper's measurement protocol (Section 5.1): execute [runs] times
    (default 5) with run-dependent jitter and report the minimum time.
    Since the priced-kernel refactor this prices each kernel once and
    replays the jitter [runs] times. *)
