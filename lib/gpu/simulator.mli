(** The execution simulator: prices kernel sequences on an architecture.

    This stands in for the physical GTX 980 / Titan X of the paper's
    evaluation.  It shares the first-order cost structure of the analytical
    model (wavefront kernels -> rounds of resident blocks per SM -> per-chunk
    global traffic + row-by-row compute) but additionally charges for the
    second-order effects the model is deliberately optimistic about:
    occupancy limits, register spills, bank conflicts, warp-granularity,
    latency hiding, DRAM congestion and per-kernel launch overhead, plus a
    deterministic sub-2% timing jitter derived from the workload identity
    (real measurements are noisy; Section 5.1 takes the minimum of five
    runs, and so does our measurement harness).

    Two paths are provided: a closed-form steady-state path whose cost is
    independent of the block count, and an exact list-scheduling path used
    to validate the closed form on small kernels. *)

type kernel_stats = {
  time_s : float;
  blocks : int;
  resident_blocks : int;  (** the achieved hyper-threading factor k *)
  limiting : Occupancy.limit;
  spilled_regs : int;  (** per-thread registers spilled, worst shape *)
  io_s : float;  (** aggregate per-block global-traffic time *)
  compute_s : float;  (** aggregate per-block compute time *)
}

type run_stats = {
  total_s : float;
  kernel_launches : int;
  kernels : kernel_stats list;  (** one entry per distinct kernel *)
}

val invocations : unit -> int
(** Number of kernel pricings performed by this process since start.
    Instrumentation for the sweep-cache tests: a warm-cache sweep must
    answer every point without touching the simulator.  Forked sweep
    workers count in their own process, not the parent's. *)

val block_cost :
  Arch.t -> resident:int -> Workload.t -> spilled_regs:int -> float * float
(** [(io_s, compute_s)] for one chunk of one block when [resident] blocks
    per SM are active. Exposed for tests. *)

val run_kernel :
  ?jitter:bool -> Arch.t -> Kernel.t -> (kernel_stats, string) result
(** Price one kernel call (including launch overhead).  [Error] is returned
    when no block fits on an SM (infeasible configuration).  [jitter]
    defaults to [true]. *)

val run_kernel_exact :
  ?jitter:bool ->
  Arch.t ->
  Kernel.t ->
  (kernel_stats, string) result
(** Alternative scheduling policy: materialises every block and dispatches
    each to the least-loaded SM as slots free up (pure streaming, no round
    synchronisation).  Because real blocks are near-uniform this brackets
    the round-synchronised closed form from below; the tests assert the two
    agree within a round's slack.  Intended for kernels with at most a few
    thousand blocks. *)

val run_sequence :
  ?jitter:bool ->
  Arch.t ->
  (Kernel.t * int) list ->
  (run_stats, string) result
(** Price a program: each kernel is launched [count] times (the wavefronts
    of Equation 2; all launches of one kernel cost the same, so the cost is
    computed once and scaled). *)

val measure :
  ?runs:int -> Arch.t -> (Kernel.t * int) list -> (float, string) result
(** The paper's measurement protocol (Section 5.1): execute [runs] times
    (default 5) with run-dependent jitter and report the minimum time. *)
