let conflict_factor (arch : Arch.t) ~row_stride =
  if row_stride <= 0 then invalid_arg "Smem.conflict_factor: stride <= 0";
  let banks = arch.shared_banks in
  (* Column accesses with stride s touch banks {i*s mod banks}; the conflict
     degree is banks / gcd-period of that orbit = gcd(s, banks). The row-major
     streaming accesses are conflict-free, and columns are only a fraction of
     traffic, so we damp the raw degree. *)
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let degree = gcd row_stride banks in
  if degree = 1 then 1.0
  else
    (* a conflict of degree d serialises d ways on roughly a quarter of the
       stencil's shared accesses *)
    1.0 +. (0.25 *. float_of_int (degree - 1))
