(** Global-memory (DRAM) timing for thread-block transfers.

    The paper's model charges [m_io * L] per tile with a single constant L
    measured by micro-benchmark.  The simulator's ground truth is richer:
    a fixed first-word latency, bandwidth shared across the SMs that are
    actively loading, a coalescing efficiency that depends on the contiguous
    run length of the accesses, and congestion when many resident blocks per
    SM stream at once. *)

type transfer = {
  words : int;  (** words moved (read or write) *)
  run_length : int;  (** contiguous words per access run (coalescing) *)
}

val coalescing_factor : Arch.t -> run_length:int -> float
(** Multiplicative traffic expansion ([>= 1.0]): short runs waste part of
    each 32-word transaction. A run length that is a multiple of the warp
    size is perfectly coalesced. *)

val block_transfer_s :
  Arch.t -> concurrent_blocks:int -> transfer -> float
(** Time for one thread block to move [transfer] when [concurrent_blocks]
    blocks per SM are streaming on every SM (>= 1).  Includes the first-word
    latency once per transfer. *)

val spill_traffic_s : Arch.t -> words:float -> float
(** Time cost of register-spill traffic (local memory), charged at a
    cache-unfriendly fraction of streaming bandwidth. *)
