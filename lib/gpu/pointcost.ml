type body = {
  flops : int;
  loads : int;
  transcendentals : int;
  rank : int;
  double : bool;
}

(* Calibration constants, in cycles.  Chosen so that the simulator's C_iter
   micro-benchmark lands in the regime of Table 4: ~30-45 cycles/point for
   first-order 2D stencils, ~1.8x that for the sqrt-based Gradient, and
   ~150-180 cycles/point for 3D stencils (whose unrolled shared-memory
   addressing and control overhead dominate). *)
let issue_base = 3.0
let cycles_per_flop = 3.2
let cycles_per_load = 1.2
let cycles_per_transcendental = 10.0

(* Maxwell executes FP64 at 1/32 the FP32 rate; amortised against the
   non-arithmetic work we charge a 16x multiplier on the arithmetic terms
   and 2x on loads (two words per element through the banks). *)
let double_flop_multiplier = 16.0
let double_load_multiplier = 2.0

let addressing_overhead = function
  | 1 -> 0.0
  | 2 -> 2.0
  | 3 -> 100.0
  | _ -> invalid_arg "Pointcost: rank must be 1..3"

let cycles b =
  if b.flops < 0 || b.loads < 0 || b.transcendentals < 0 then
    invalid_arg "Pointcost.cycles: negative operation count";
  let fmul = if b.double then double_flop_multiplier else 1.0 in
  let lmul = if b.double then double_load_multiplier else 1.0 in
  issue_base
  +. (float_of_int b.flops *. cycles_per_flop *. fmul)
  +. (float_of_int b.loads *. cycles_per_load *. lmul)
  +. (float_of_int b.transcendentals *. cycles_per_transcendental *. fmul)
  +. addressing_overhead b.rank

let seconds arch b = Arch.seconds_of_cycles arch (cycles b)
