(** Shared-memory bank behaviour.

    Shared memory is divided into [Arch.shared_banks] word-wide banks; a warp
    whose lanes hit the same bank at different addresses serialises.  For the
    row-parallel stencil code HHC emits, the access pattern per warp is a
    contiguous run of words starting at the row offset, so the conflict
    degree is governed by the shared-array row stride modulo the bank count.
    The paper's model deliberately ignores this (Section 7); the simulator
    charges for it, which is one of the reasons tile sizes whose inner extent
    is not a multiple of 32 underperform their prediction. *)

val conflict_factor : Arch.t -> row_stride:int -> float
(** Multiplicative slowdown ([>= 1.0]) on shared-memory access for a 2D/3D
    shared array with the given row stride in words.  Strides that are
    multiples of the bank count are worst (all lanes of a column access
    collide); odd strides are conflict-free. Raises [Invalid_argument] if the
    stride is not positive. *)
