(** Thread-block occupancy: how many blocks of a given resource footprint can
    be resident on one SM at once.  This is the simulator's ground truth for
    the paper's hyper-threading factor k (Equation 11), extended with the
    limits the paper's model deliberately omits (thread slots, block slots,
    register file). *)

type request = {
  threads : int;  (** threads per block *)
  shared_words : int;  (** shared memory per block, 4-byte words *)
  regs_per_thread : int;
}

type limit = Threads | Blocks | Shared_memory | Registers

type result = {
  blocks_per_sm : int;  (** 0 when the block cannot run at all *)
  limiting : limit;  (** the binding constraint *)
  regs_spilled_per_thread : int;
      (** registers demanded beyond the per-thread hard cap; the compiler
          would spill these to local (DRAM-backed) memory *)
}

val calculate : Arch.t -> request -> result
(** Raises [Invalid_argument] for non-positive thread counts or negative
    resources.  Valid results are memoised per (architecture, request)
    pair: the sweep's request space is tiny and the pricing hot path asks
    about the same requests thousands of times.  The memo is mutex-guarded,
    so concurrent calls from the domains-based sweep pool are safe and
    share warm entries. *)

val fits : Arch.t -> request -> bool
(** Whether at least one block can be resident. *)
