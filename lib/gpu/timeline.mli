(** Execution timelines: what the simulator's scheduler actually did with a
    kernel, per SM, rendered as an ASCII Gantt chart.

    Useful for inspecting why a configuration behaves as it does — e.g.
    seeing the ragged final round that Equation 2's double ceiling
    overcharges, or an SM left idle by a wavefront narrower than the
    machine. *)

type span = {
  sm : int;
  start_s : float;
  finish_s : float;
  blocks : int;  (** blocks retired in this residency round *)
}

type t = {
  spans : span list;
  makespan_s : float;
  resident : int;  (** hyper-threading factor used *)
  idle_fraction : float;  (** aggregate SM idle time / (nSM * makespan) *)
}

val of_kernel : Arch.t -> Kernel.t -> (t, string) result
(** Replay the round-synchronised schedule of one kernel (without jitter or
    launch overhead) and record each SM's rounds. *)

val render : ?width:int -> t -> string
(** ASCII Gantt: one lane per SM, `#` busy, `.` idle (default width 64). *)
