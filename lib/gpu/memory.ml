module Ints = Hextime_prelude.Ints

type transfer = { words : int; run_length : int }

let coalescing_factor (arch : Arch.t) ~run_length =
  if run_length <= 0 then invalid_arg "Memory.coalescing_factor";
  let w = arch.warp_size in
  if run_length >= w then
    (* long runs: only the ragged tail of each run is padding *)
    let waste = float_of_int (Ints.round_up run_length w - run_length) in
    1.0 +. (waste /. float_of_int run_length)
  else (float_of_int w /. float_of_int run_length *. 0.5) +. 0.5

(* congestion: resident blocks beyond the first that stream concurrently get
   diminishing shares of the SM's bandwidth slice *)
let congestion concurrent_blocks =
  1.0 +. (0.30 *. float_of_int (max 0 (concurrent_blocks - 1)))

(* every contiguous run is a separate burst of transactions; issuing it
   costs a few cycles of address setup in the load/store pipeline *)
let run_issue_cycles = 20.0

let block_transfer_s (arch : Arch.t) ~concurrent_blocks t =
  if concurrent_blocks < 1 then invalid_arg "Memory.block_transfer_s";
  if t.words < 0 then invalid_arg "Memory.block_transfer_s: negative words";
  if t.words = 0 then 0.0
  else
    let per_word =
      (* the device bandwidth is partitioned across SMs; a single block sees
         its SM's slice, degraded by coalescing waste and congestion *)
      Arch.word_transfer_s arch *. float_of_int arch.n_sm
      *. coalescing_factor arch ~run_length:t.run_length
      *. congestion concurrent_blocks
    in
    let runs = float_of_int (Ints.ceil_div t.words t.run_length) in
    let latency =
      Arch.seconds_of_cycles arch
        (float_of_int arch.dram_latency_cycles +. (runs *. run_issue_cycles))
    in
    latency +. (float_of_int t.words *. per_word)

let spill_traffic_s arch ~words =
  if words < 0.0 then invalid_arg "Memory.spill_traffic_s";
  (* local-memory traffic is scattered; charge 4x the streaming word cost on
     the SM's bandwidth slice *)
  words *. Arch.word_transfer_s arch *. float_of_int arch.n_sm *. 4.0
