(** Typed kernel IR for lowered hexagonal-tiling schedules.

    {!Hextime_tiling.Lower} produces this IR; the pseudo-CUDA printer
    ({!Ir_print}) and the hexlint static-analysis passes
    ({!Hextime_analysis.Hexlint}) consume it.  The IR captures exactly the
    structural elements the analytical model prices: staged shared-memory
    transfers, per-row compute with stencil tap offsets, barriers, and the
    skewed inner-chunk loop.

    The record types are deliberately public (not abstract): the
    seeded-bug tests mutate otherwise-valid kernels to plant specific
    defects and assert each lint pass catches its own. *)

type family = Green | Yellow

val family_name : family -> string

(** The double buffer: every time step reads one half and writes the
    other, which is what makes the intra-row compute race-free. *)
type half = Ping | Pong

val other_half : half -> half
val half_name : half -> string
val half_index : half -> int

type tap = { offset : int array; weight : float }

type rule =
  | Linear of { taps : tap list; constant : float }
      (** convolutional body: sum of weighted taps *)
  | Opaque of { offsets : int array list; note : string }
      (** non-convolutional body (e.g. gradient): known read offsets,
          opaque arithmetic *)

val rule_offsets : rule -> int array list

type row = {
  r : int;  (** time step within the tile, [0, t_t) *)
  width : int;
      (** idealised (Equation 4) dim-0 width the shared window is sized
          for *)
  extra : int;
      (** exact-lattice family stagger: [2*order] for yellow, 0 for green;
          adds compute points without widening the buffer window (the
          convention {!Hextime_core.Model} documents) *)
  points : int;  (** (width + extra) * inner tile extents *)
}

type compute = { row : row; reads : half; writes : half; stride : int }

type stmt =
  | Load_tile of { words : int; run_length : int; dst : half }
  | Store_tile of { words : int; run_length : int; src : half }
  | Sync
  | Compute_row of compute
  | Chunk_loop of { trips : int; body : stmt list }

type kernel = {
  name : string;
  family : family;
  problem_id : string;
  config_id : string;
  threads : int;
  regs_per_thread : int;
  rank : int;
  order : int;
  word_factor : int;
  t_t : int;
  t_s : int array;
  space : int array;
  time : int;
  smem_ext : int array;
      (** per-dimension padded extents in elements: [t_s.(d) + order*t_t + 1] *)
  smem_words : int;
      (** total allocation, words: [2 * word_factor * prod smem_ext] *)
  rule : rule;
  body : stmt list;
}

type launch = { kernel_name : string; blocks : int; threads : int }

type host = {
  problem_id : string;
  config_id : string;
  bands : int;
  per_band : launch list;
  device_sync : bool;
}

type program = { host : host; kernels : kernel list }

val validate : kernel -> (unit, string) result
(** Basic well-formedness: ranks agree, counts positive, chunk loops not
    nested.  Deeper invariants (barrier placement, bounds, conformance)
    are the lint passes' job, so that planted defects remain expressible. *)

val chunk_view : kernel -> int * stmt list
(** [(trips, body)] of the per-chunk statement sequence; [(1, body)] when
    the kernel has no chunk loop. *)

val chunk_trips : kernel -> int
val io_words_per_chunk : kernel -> int
val load_words_per_chunk : kernel -> int
val store_words_per_chunk : kernel -> int
val syncs_per_chunk : kernel -> int
val rows : kernel -> row list
val points_per_chunk : kernel -> int
val total_points : kernel -> int

val unrolled : ?iterations:int -> kernel -> stmt list
(** Flattened statement sequence with the chunk loop unrolled up to
    [iterations] times (default 2), exposing back-edge hazards. *)

val pp_stmt : Format.formatter -> stmt -> unit
val pp_kernel : Format.formatter -> kernel -> unit
