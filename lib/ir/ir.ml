(* Typed kernel IR for the lowered hexagonal schedules.

   Lowering produces values of this IR and everything downstream — the
   pseudo-CUDA printer, the hexlint static-analysis passes, the
   model-conformance cross-check — consumes it.  Strings are no longer the
   source of truth for the generated code's structure. *)

type family = Green | Yellow

let family_name = function Green -> "green" | Yellow -> "yellow"

type half = Ping | Pong

let other_half = function Ping -> Pong | Pong -> Ping
let half_name = function Ping -> "ping" | Pong -> "pong"
let half_index = function Ping -> 0 | Pong -> 1

type tap = { offset : int array; weight : float }

type rule =
  | Linear of { taps : tap list; constant : float }
  | Opaque of { offsets : int array list; note : string }

let rule_offsets = function
  | Linear { taps; _ } -> List.map (fun t -> t.offset) taps
  | Opaque { offsets; _ } -> offsets

(* One hexagon row.  [width] is the idealised (Equation 4) dim-0 width the
   shared-memory window is sized for; [extra] is the exact-lattice family
   stagger (2*order for yellow tiles, 0 for green) which adds compute points
   but is absorbed at the tile boundary rather than widening the buffer
   window — the same convention Model.compute_time documents. *)
type row = { r : int; width : int; extra : int; points : int }

(* one hexagon row's compute: every thread handles points p = tid +
   k*threads, reading the stencil taps from [reads] and writing [writes];
   [stride] is the padded inner row stride of the shared buffer *)
type compute = { row : row; reads : half; writes : half; stride : int }

type stmt =
  | Load_tile of { words : int; run_length : int; dst : half }
      (* global -> shared staging, thread-strided, coalesced in runs *)
  | Store_tile of { words : int; run_length : int; src : half }
      (* shared -> global write-back *)
  | Sync (* __syncthreads() *)
  | Compute_row of compute
  | Chunk_loop of { trips : int; body : stmt list }
      (* skewed inner chunks (sub-prisms / sub-slabs); no nesting *)

type kernel = {
  name : string;
  family : family;
  problem_id : string;
  config_id : string;
  threads : int;
  regs_per_thread : int;
  rank : int;
  order : int;
  word_factor : int;
  t_t : int;
  t_s : int array;
  space : int array;
  time : int;
  smem_ext : int array; (* per-dimension padded extents, in elements *)
  smem_words : int; (* total allocation: 2 * word_factor * prod smem_ext *)
  rule : rule;
  body : stmt list;
}

type launch = { kernel_name : string; blocks : int; threads : int }

type host = {
  problem_id : string;
  config_id : string;
  bands : int; (* outer wavefront bands; each band launches [per_band] *)
  per_band : launch list;
  device_sync : bool;
}

type program = { host : host; kernels : kernel list }

(* --- well-formedness --------------------------------------------------- *)

let validate (k : kernel) =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if k.rank < 1 || k.rank > 3 then err "rank %d outside 1..3" k.rank
  else if Array.length k.t_s <> k.rank then err "t_s rank mismatch"
  else if Array.length k.space <> k.rank then err "space rank mismatch"
  else if Array.length k.smem_ext <> k.rank then err "smem_ext rank mismatch"
  else if k.threads <= 0 then err "threads <= 0"
  else if k.order < 1 then err "order < 1"
  else if k.word_factor < 1 then err "word_factor < 1"
  else if k.smem_words <= 0 then err "smem_words <= 0"
  else if k.t_t < 2 then err "t_t < 2"
  else
    let rec check_stmts ~nested = function
      | [] -> Ok ()
      | s :: rest -> (
          match s with
          | Chunk_loop { trips; body } ->
              if nested then err "nested chunk loops"
              else if trips <= 0 then err "chunk trips <= 0"
              else (
                match check_stmts ~nested:true body with
                | Error _ as e -> e
                | Ok () -> check_stmts ~nested rest)
          | Load_tile { words; run_length; _ }
          | Store_tile { words; run_length; _ } ->
              if words <= 0 then err "transfer of <= 0 words"
              else if run_length <= 0 then err "run_length <= 0"
              else check_stmts ~nested rest
          | Compute_row { row; stride; _ } ->
              if row.points <= 0 then err "row %d has no points" row.r
              else if row.width <= 0 then err "row %d has no width" row.r
              else if stride <= 0 then err "row %d stride <= 0" row.r
              else check_stmts ~nested rest
          | Sync -> check_stmts ~nested rest)
    in
    check_stmts ~nested:false k.body

(* --- structural counting ----------------------------------------------- *)

(* the per-chunk statement sequence and how many times it runs *)
let chunk_view (k : kernel) =
  match k.body with
  | [ Chunk_loop { trips; body } ] -> (trips, body)
  | body -> (1, body)

let chunk_trips k = fst (chunk_view k)

let fold_chunk f acc k = List.fold_left f acc (snd (chunk_view k))

let io_words_per_chunk k =
  fold_chunk
    (fun acc -> function
      | Load_tile { words; _ } | Store_tile { words; _ } -> acc + words
      | _ -> acc)
    0 k

let load_words_per_chunk k =
  fold_chunk
    (fun acc -> function Load_tile { words; _ } -> acc + words | _ -> acc)
    0 k

let store_words_per_chunk k =
  fold_chunk
    (fun acc -> function Store_tile { words; _ } -> acc + words | _ -> acc)
    0 k

let syncs_per_chunk k =
  fold_chunk (fun acc -> function Sync -> acc + 1 | _ -> acc) 0 k

let rows k =
  List.rev
    (fold_chunk
       (fun acc -> function Compute_row c -> c.row :: acc | _ -> acc)
       [] k)

let points_per_chunk k =
  List.fold_left (fun acc (r : row) -> acc + r.points) 0 (rows k)

let total_points k = chunk_trips k * points_per_chunk k

(* Flatten the kernel body for sequential analyses (e.g. the race detector):
   the chunk loop is unrolled [iterations] times (capped by its trip count)
   so back-edge hazards between consecutive chunk iterations are visible. *)
let unrolled ?(iterations = 2) (k : kernel) =
  List.concat_map
    (function
      | Chunk_loop { trips; body } ->
          List.concat (List.init (min trips iterations) (fun _ -> body))
      | s -> [ s ])
    k.body

let pp_stmt ppf = function
  | Load_tile { words; run_length; dst } ->
      Format.fprintf ppf "load %d words (runs of %d) -> %s" words run_length
        (half_name dst)
  | Store_tile { words; run_length; src } ->
      Format.fprintf ppf "store %d words (runs of %d) <- %s" words run_length
        (half_name src)
  | Sync -> Format.fprintf ppf "sync"
  | Compute_row { row; reads; writes; _ } ->
      Format.fprintf ppf "row %d (%d points) %s -> %s" row.r row.points
        (half_name reads) (half_name writes)
  | Chunk_loop { trips; body } ->
      Format.fprintf ppf "chunks x%d (%d stmts)" trips (List.length body)

let pp_kernel ppf k =
  Format.fprintf ppf "%s: %d thr, %d smem words, %d chunks x %d rows" k.name
    k.threads k.smem_words (chunk_trips k) (List.length (rows k))
