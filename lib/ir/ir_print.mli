(** Pseudo-CUDA pretty-printer over {!Ir}.

    The printed text is a rendering of the IR, not the source of truth:
    lowering produces {!Ir.kernel} values and this module only formats
    them.  The output is pseudo-code (it elides the hexagon boundary index
    algebra behind [stage]/[gaddr]/[next] helpers) but every structural
    element the analytical model prices — staged transfers, the row loop,
    barriers, the chunk loop, the double-buffer halves — appears exactly
    once in the right place.

    Stencil tap weights print with [%.9g], which round-trips every float32
    value exactly (the generated kernels compute in [float]). *)

val kernel : Ir.kernel -> string
val host : Ir.host -> string
val program : Ir.program -> string
