(* Pseudo-CUDA pretty-printer over the kernel IR.

   This is a *view* of the IR, not the source of truth: the structure the
   simulator and the analytical model price lives in Ir.kernel, and this
   module only renders it.  The output is pseudo-code — it type-checks
   nowhere and elides the hexagon boundary index algebra — but every
   structural element (transfers, row loop, syncs, chunk loop, buffer
   halves) appears exactly once in the right place.

   Stencil weights are printed with %.9g: 9 significant decimal digits
   round-trip every float32 value exactly (the generated kernels compute in
   float), where the previous %.6g truncated e.g. 1/3 to a different
   float32. *)

let dim_names = [| "x"; "j"; "l" |]

let tap_index rank (offset : int array) =
  let idx d off =
    let base = dim_names.(d) in
    if off = 0 then base
    else if off > 0 then Printf.sprintf "%s + %d" base off
    else Printf.sprintf "%s - %d" base (-off)
  in
  String.concat "][" (List.init rank (fun d -> idx d offset.(d)))

let tap_expr rank ~read_half (tap : Ir.tap) =
  Printf.sprintf "%.9gf * smem[%s][%s]" tap.Ir.weight read_half
    (tap_index rank tap.Ir.offset)

let body_expr rank ~read_half (rule : Ir.rule) =
  match rule with
  | Ir.Linear { taps; constant } ->
      let sum =
        String.concat "\n             + "
          (List.map (tap_expr rank ~read_half) taps)
      in
      if constant = 0.0 then sum
      else Printf.sprintf "%s + %.9gf" sum constant
  | Ir.Opaque { note; _ } ->
      Printf.sprintf
        "/* %s */ user_body(smem[%s], %s)" note read_half
        (String.concat ", "
           (List.init rank (fun d -> dim_names.(d))))

(* Recognise the canonical row sequence [Compute r; Sync; Compute r+1; ...]
   so it can be rendered as a for-loop; anything else (e.g. a seeded-bug
   mutant) falls back to unrolled per-row rendering. *)
let take_row_run stmts =
  let rec go acc expect = function
    | Ir.Compute_row c :: Ir.Sync :: rest
      when (match expect with None -> true | Some r -> c.row.Ir.r = r) ->
        go (c :: acc) (Some (c.row.Ir.r + 1)) rest
    | rest -> (List.rev acc, rest)
  in
  go [] None stmts

let kernel (k : Ir.kernel) =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "// %s tile kernel for %s, configuration %s\n"
    (Ir.family_name k.family) k.problem_id k.config_id;
  pf "// registers/thread (estimated): %d; shared memory: %d words\n"
    k.regs_per_thread k.smem_words;
  pf "__global__ void %s(const float *__restrict__ in, float *out)\n" k.name;
  pf "{\n";
  pf "  __shared__ float smem[2][%d]; // M_tile = 2 * %s\n" (k.smem_words / 2)
    (String.concat " * "
       (Array.to_list
          (Array.map
             (fun s -> Printf.sprintf "(%d + %d + 1)" s (k.order * k.t_t))
             k.t_s)));
  pf "  const int tile = blockIdx.x;          // position in the wavefront\n";
  pf "  const int tid  = threadIdx.x;         // %d threads\n" k.threads;
  let gaddr in_chunk = if in_chunk then "tile, q" else "tile" in
  let rec seq ind ~in_chunk stmts =
    match stmts with
    | [] -> ()
    | Ir.Chunk_loop { trips; body } :: rest ->
        pf "%sfor (int q = 0; q < %d; ++q) {       // skewed inner chunks (sub-%s)\n"
          ind trips
          (if k.rank = 2 then "prisms" else "slabs");
        seq (ind ^ "  ") ~in_chunk:true body;
        pf "%s}\n" ind;
        seq ind ~in_chunk rest
    | Ir.Load_tile { words; run_length; dst } :: rest ->
        pf "%s// global -> shared (%s half): m_i = %d words, coalesced in runs of %d\n"
          ind (Ir.half_name dst) words run_length;
        pf "%sfor (int i = tid; i < %d; i += %d) smem[%d][stage(i)] = in[gaddr(%s, i)];\n"
          ind words k.threads (Ir.half_index dst) (gaddr in_chunk);
        seq ind ~in_chunk rest
    | Ir.Store_tile { words; run_length; src } :: rest ->
        pf "%s// shared -> global (%s half): m_o = %d words, coalesced in runs of %d\n"
          ind (Ir.half_name src) words run_length;
        pf "%sfor (int i = tid; i < %d; i += %d) out[gaddr(%s, i)] = smem[%d][stage(i)];\n"
          ind words k.threads (gaddr in_chunk) (Ir.half_index src);
        seq ind ~in_chunk rest
    | Ir.Sync :: rest ->
        pf "%s__syncthreads();\n" ind;
        seq ind ~in_chunk rest
    | Ir.Compute_row _ :: _ -> (
        match take_row_run stmts with
        | (_ :: _ :: _ as run), rest ->
            (* canonical shape: render as the row loop *)
            let first = List.hd run in
            let last = List.nth run (List.length run - 1) in
            pf "%s// hexagon rows, bottom to top (widths %s)\n" ind
              (String.concat ", "
                 (List.map
                    (fun (c : Ir.compute) ->
                      string_of_int (c.row.Ir.width + c.row.Ir.extra))
                    run));
            pf "%sfor (int r = %d; r < %d; ++r) {\n" ind first.Ir.row.Ir.r
              (last.Ir.row.Ir.r + 1);
            pf "%s  for (int p = tid; p < row_points(r); p += %d) {\n" ind
              k.threads;
            (match k.rank with
            | 1 -> pf "%s    const int x = p;               // position in the row\n" ind
            | 2 ->
                pf "%s    const int j = p %% %d, x = p / %d; // inner x hexagon\n"
                  ind k.t_s.(1) k.t_s.(1)
            | _ ->
                pf "%s    const int l = p %% %d, j = (p / %d) %% %d;\n" ind
                  k.t_s.(2) k.t_s.(2) k.t_s.(1));
            pf "%s    smem[(r + 1) & 1][next(r, p)] =\n%s               %s;\n"
              ind ind
              (body_expr k.rank ~read_half:"r & 1" k.rule);
            pf "%s  }\n" ind;
            pf "%s  __syncthreads();                   // tau_sync per row\n"
              ind;
            pf "%s}\n" ind;
            seq ind ~in_chunk rest
        | _ -> (
            (* irregular (mutated) sequence: render the row standalone *)
            match stmts with
            | Ir.Compute_row { row; reads; writes; _ } :: rest ->
                pf "%s// row %d (%d points): read %s, write %s\n" ind row.Ir.r
                  row.Ir.points (Ir.half_name reads) (Ir.half_name writes);
                pf "%sfor (int p = tid; p < %d; p += %d) smem[%d][next(%d, p)] = %s;\n"
                  ind row.Ir.points k.threads (Ir.half_index writes) row.Ir.r
                  (match k.rule with
                  | Ir.Linear _ -> "body(p)"
                  | Ir.Opaque _ -> "user_body(p)");
                seq ind ~in_chunk rest
            | _ -> assert false))
  in
  seq "  " ~in_chunk:false k.body;
  pf "}\n";
  Buffer.contents b

let host (h : Ir.host) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "// host-side wavefront loop for %s, configuration %s\n" h.problem_id
    h.config_id;
  let blocks =
    match h.per_band with l :: _ -> l.Ir.blocks | [] -> 0
  in
  pf "// N_w = %d wavefronts of w = %d blocks each\n"
    (h.bands * List.length h.per_band)
    blocks;
  pf "void run(const float *in, float *out)\n{\n";
  pf "  for (int band = 0; band < %d; ++band) {\n" h.bands;
  let width =
    List.fold_left
      (fun acc (l : Ir.launch) -> max acc (String.length l.kernel_name))
      0 h.per_band
  in
  List.iteri
    (fun i (l : Ir.launch) ->
      pf "    %-*s<<<%d, %d>>>(in, out);%s\n" width l.Ir.kernel_name
        l.Ir.blocks l.Ir.threads
        (if i = 0 then "   // T_sync per launch" else ""))
    h.per_band;
  pf "  }\n";
  if h.device_sync then pf "  cudaDeviceSynchronize();\n";
  pf "}\n";
  Buffer.contents b

let program (p : Ir.program) =
  String.concat "\n" (host p.host :: List.map kernel p.kernels)
