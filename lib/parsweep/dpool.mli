(** Domains-based worker pool: run a pure function over an array of tasks
    on [N] domains of this process, sharing the heap.

    This is the fork pool's high-throughput sibling.  {!Pool} buys fault
    isolation (a crashing or runaway task cannot take the sweep down) at
    the price of a fork per worker and a [Marshal] round-trip per result;
    for the simulator's microsecond-scale points that marshalling tax
    dominates.  Here workers are [Domain.spawn]ed into the same address
    space: tasks are claimed off one atomic counter, results are written
    by reference into their output slot, and the warm state the sweep
    depends on — the {!Hextime_gpu.Occupancy} memo, the
    {!Hextime_obs.Metrics} registry, the trace buffer — is shared live
    rather than snapshotted and merged, all three being domain-safe.

    The trade-offs, explicitly:

    - {b No fault isolation.}  An exception in [f] is still caught and
      returned as [Error], but a segfault, OOM-kill or infinite loop
      takes the whole process with it.  [timeout_s] and [retries] are
      accepted for signature parity with {!Pool.map} and {e ignored} —
      there is no safe way to kill a domain.  Passing a non-default
      value prints a one-time warning to stderr rather than silently
      dropping the request.  Sweeps of untrusted or experimental model
      code should stay on the fork backend.
    - {b Shared mutable state must be domain-safe.}  Everything the
      harness's [f] touches is (memo mutex, atomic counters, mutexed
      trace buffer); new global state reachable from a sweep must follow
      suit.

    Determinism: identical to the other paths — results land at their
    task index, [f] is deterministic, so serial, fork and domains runs
    return bit-identical results (CI [cmp]s the CSVs).

    [on_result] and [on_progress] are serialised under one internal
    mutex (they feed the cache and the progress tracker, which are not
    domain-safe) and may be called from any worker domain.  Stats:
    [completed] counts every executed task; [crashed], [retried] and
    [failed] are always 0 on this backend. *)

val map :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?on_result:(int -> 'b Pool.outcome -> unit) ->
  ?on_progress:(done_:int -> alive:int -> busy:int -> unit) ->
  f:('a -> 'b) ->
  'a array ->
  'b Pool.outcome array * Pool.stats
(** [map ~f tasks] evaluates [f] on every task across [jobs] domains
    (default {!Pool.default_jobs}; the calling domain works too, so
    [jobs] domains run in total).  [jobs <= 1] or fewer than two tasks
    runs in-process with no spawning, semantics identical to
    {!Pool.map}'s in-process path. *)
