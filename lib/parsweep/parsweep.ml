module Cache = Cache
module Pool = Pool
module Dpool = Dpool

type backend = [ `Fork | `Domains ]

type exec = {
  jobs : int;
  cache : Cache.t option;
  timeout_s : float;
  retries : int;
  backend : backend;
}

let serial =
  {
    jobs = 1;
    cache = None;
    timeout_s = Pool.default_timeout_s;
    retries = Pool.default_retries;
    backend = `Fork;
  }

let default ?(backend = `Fork) ?jobs ?cache_dir () =
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  { serial with jobs; cache = Some (Cache.create ?dir:cache_dir ()); backend }

type stats = {
  total : int;
  cache_hits : int;
  computed : int;
  crashed : int;
  retried : int;
  failed : int;
}

let map ?label exec ~key ~f tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  (* keys exist only to address the cache; without one, don't pay for
     formatting them *)
  let keys =
    match exec.cache with None -> [||] | Some _ -> Array.map key arr
  in
  let results = Array.make n None in
  let hits = ref 0 in
  (match exec.cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i k ->
          match Cache.get c ~key:k with
          | Some v ->
              results.(i) <- Some (Ok v);
              incr hits
          | None -> ())
        keys);
  let todo = ref [] in
  for i = n - 1 downto 0 do
    match results.(i) with None -> todo := i :: !todo | Some _ -> ()
  done;
  let todo = Array.of_list !todo in
  let on_result j r =
    match (exec.cache, r) with
    | Some c, Ok v -> Cache.put c ~key:keys.(todo.(j)) v
    | _ -> ()
  in
  (* hexwatch heartbeat: one progress tracker per sweep, spanning cache
     hits and computed points alike, so the status line and the
     sweep.points_* gauges always describe the whole sweep *)
  let progress =
    match label with
    | None -> None
    | Some label -> Some (Hextime_obs.Progress.create ~total:n ~label ())
  in
  (match progress with
  | Some p when !hits > 0 -> Hextime_obs.Progress.tick p ~done_:!hits
  | _ -> ());
  let on_progress ~done_ ~alive ~busy =
    match progress with
    | None -> ()
    | Some p ->
        Hextime_obs.Progress.tick p ~done_:(!hits + done_)
          ~workers_alive:alive ~workers_busy:busy
  in
  let misses = Array.map (fun i -> arr.(i)) todo in
  let outcomes, pstats =
    match exec.backend with
    | `Fork ->
        Pool.map ~jobs:exec.jobs ~timeout_s:exec.timeout_s
          ~retries:exec.retries ~on_result ~on_progress ~f misses
    | `Domains ->
        Dpool.map ~jobs:exec.jobs ~timeout_s:exec.timeout_s
          ~retries:exec.retries ~on_result ~on_progress ~f misses
  in
  (match progress with
  | Some p -> Hextime_obs.Progress.finish p
  | None -> ());
  Array.iteri (fun j r -> results.(todo.(j)) <- Some r) outcomes;
  let out =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> Error "parsweep: missing result")
         results)
  in
  ( out,
    {
      total = n;
      cache_hits = !hits;
      computed = pstats.Pool.completed;
      crashed = pstats.Pool.crashed;
      retried = pstats.Pool.retried;
      failed = pstats.Pool.failed;
    } )

let pp_stats ppf s =
  Format.fprintf ppf "%d points: %d cached, %d computed" s.total s.cache_hits
    s.computed;
  if s.retried > 0 then Format.fprintf ppf ", %d retried" s.retried;
  if s.failed > 0 then Format.fprintf ppf ", %d failed" s.failed
