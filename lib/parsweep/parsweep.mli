(** The parallel cached sweep engine.

    The paper's tile-size selection rests on exhaustively evaluating ~850
    configurations per experiment (Section 7), and the repository sweeps
    tens of thousands of configurations through the execution simulator in
    CI.  This module makes that cheap: an execution context bundling a
    {!Pool} of forked workers with an on-disk {!Cache}, behind a single
    order-preserving {!map}.

    Layering: {!Cache} knows nothing about processes, {!Pool} knows
    nothing about persistence; [map] consults the cache in the parent,
    fans the misses out to the pool, and persists each computed result
    from the parent as it arrives (the pool's [on_result] hook), so a
    killed sweep resumes from its last completed point.

    Determinism: tasks are keyed and collected by index, the cache stores
    marshalled values (bit-exact floats), and the workers run the same
    deterministic code the serial path runs — so serial, parallel, cold
    and warm runs all return identical results.  [{ serial with jobs }]
    differs from [serial] only in wall-clock. *)

module Cache = Cache
module Pool = Pool
module Dpool = Dpool

type backend = [ `Fork | `Domains ]
(** How cache misses are executed in parallel.  [`Fork]: worker processes
    ({!Pool}) with per-task fault isolation, timeouts and retries —
    robust, but pays a [Marshal] round-trip per result.  [`Domains]:
    worker domains of this process ({!Dpool}) sharing the heap and the
    occupancy memo — results pass by reference, an order of magnitude
    cheaper per point, but a runaway or crashing task takes the process
    down ([timeout_s]/[retries] are ignored).  Identical results either
    way; [jobs <= 1] runs in-process regardless. *)

type exec = {
  jobs : int;  (** workers; [<= 1] runs in-process *)
  cache : Cache.t option;  (** [None] disables memoisation *)
  timeout_s : float;  (** per-task wall-clock bound ([`Fork] only) *)
  retries : int;  (** re-executions after a worker death ([`Fork] only) *)
  backend : backend;
}

val serial : exec
(** One in-process job, no cache: byte-for-byte the behaviour the
    harness had before the engine existed.  Library entry points taking
    [?exec] default to this. *)

val default : ?backend:backend -> ?jobs:int -> ?cache_dir:string -> unit -> exec
(** The CLI default: [jobs] from {!Pool.default_jobs} (the [$HEXTIME_JOBS]
    override, else all cores), a cache at [cache_dir] (default
    {!Cache.default_dir}, which honours [$HEXTIME_CACHE_DIR]), and the
    [`Fork] backend unless overridden. *)

type stats = {
  total : int;
  cache_hits : int;  (** tasks answered from the cache, no execution *)
  computed : int;  (** tasks actually executed *)
  crashed : int;
  retried : int;
  failed : int;  (** tasks abandoned after exhausting retries *)
}

val map :
  ?label:string ->
  exec ->
  key:('a -> string) ->
  f:('a -> 'b) ->
  'a list ->
  ('b, string) result list * stats
(** [map exec ~key ~f tasks]: results in task order.  [key] must
    determine [f]'s result completely (include a code-version tag — see
    {!Cache}); cached values are returned without executing [f].  [Error]
    marks engine-level failures only (task crashed/timed out beyond
    [retries]); domain-level rejection should live inside ['b].  Only [Ok]
    results are persisted.

    [label] turns on the hexwatch heartbeat for this sweep: a
    {!Hextime_obs.Progress} tracker spanning every task (cache hits
    included) publishes points-done/rate/ETA gauges and — when progress
    rendering is enabled — a [\r]-status line on stderr.  Omitting it
    keeps the sweep silent, exactly as before. *)

val pp_stats : Format.formatter -> stats -> unit
(** e.g. ["850 points: 840 cached, 10 computed"], appending retry/failure
    counts only when non-zero. *)
