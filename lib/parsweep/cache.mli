(** Persistent on-disk memoisation of sweep results.

    Re-running a sweep — across CI runs, across [hextime] invocations, or
    after a crash mid-campaign — should not re-simulate configurations that
    have already been priced.  Each completed point is persisted as one
    small file under a cache directory, written atomically (temp file +
    rename) so concurrent sweeps sharing a directory never observe a
    half-written entry.  Because entries are written as results complete,
    the cache doubles as the sweep checkpoint: killing a campaign and
    restarting it skips every point that finished before the kill.

    Entries are keyed by an arbitrary string; callers are expected to build
    keys that determine the value completely — for sweep results that is a
    code-version tag plus a digest of the point's pricing inputs (see
    {!Hextime_harness.Sweep.code_version}), so pricing-neutral edits stay
    warm hits.  The key is stored inside the
    entry and verified on read, so filename-hash collisions degrade to
    cache misses, never to wrong results.

    Values cross the filesystem via [Marshal]; {!get} is therefore only
    type-safe when every key namespace is read and written at a single
    value type.  Prefix keys with the value kind (["point|"], ["measure|"],
    ["lint|"]) and a code-version tag, and bump the tag whenever the value
    type or the semantics producing it change. *)

type t

val default_dir : unit -> string
(** [$HEXTIME_CACHE_DIR] if set and non-empty, else
    [$XDG_CACHE_HOME/hextime], else [$HOME/.cache/hextime], else a
    directory under the system temp dir. *)

val create : ?dir:string -> unit -> t
(** Open (creating directories as needed) a cache rooted at [dir],
    defaulting to {!default_dir}.  Hit/miss/write counters start at zero.
    Stale write-temp files (["*.tmp.<pid>"] left behind by a writer that
    was SIGKILLed between write and rename — the fork pool kills timed-out
    workers exactly that way) are swept here: a temp whose pid is no
    longer alive is removed; temps of live writers are left alone. *)

val dir : t -> string

val entry_path : t -> string -> string
(** [entry_path t key] is the file a [put] of [key] renames into place —
    exposed so tests can fabricate filename-hash collisions and damaged
    entries without reverse-engineering the hash. *)

val get : t -> key:string -> 'a option
(** Look the key up; [None] on absence, key mismatch (hash collision) or an
    unreadable/corrupt entry — a damaged cache can cost time, never
    correctness.  Counts one hit or one miss. *)

val put : t -> key:string -> 'a -> unit
(** Persist atomically.  I/O failures are swallowed (the sweep result is
    already in memory; losing a cache write must not fail a campaign). *)

val hits : t -> int
val misses : t -> int
val writes : t -> int
