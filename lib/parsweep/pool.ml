module Metrics = Hextime_obs.Metrics
module Trace = Hextime_obs.Trace

type 'b outcome = ('b, string) result

type stats = {
  completed : int;
  crashed : int;
  retried : int;
  failed : int;
}

let zero = { completed = 0; crashed = 0; retried = 0; failed = 0 }

(* Parent-side pool metrics.  The task-latency histogram is observed where
   the result is recorded, so it covers both the forked and the in-process
   path. *)
let tasks_counter = Metrics.counter "pool.tasks"
let crash_counter = Metrics.counter "pool.worker_deaths"
let retry_counter = Metrics.counter "pool.retries"
let timeout_counter = Metrics.counter "pool.timeouts"
let failure_counter = Metrics.counter "pool.failures"
let task_hist = Metrics.histogram "pool.task_seconds"

(* Everything a worker sends back per chunk: one (index, outcome, seconds)
   triple per task executed, plus the chunk's metrics delta and span
   events.  The worker resets its registry at serve start (dropping state
   inherited through the fork) and again after each snapshot, so absorbing
   every envelope leaves the coordinator's totals exactly as if the work
   had run in-process — this is the fix for fork-boundary counter loss.
   Batching several tasks per envelope amortizes the dominant fork-backend
   cost — one Marshal round-trip and one registry snapshot per point — over
   the whole chunk. *)
type 'b envelope = {
  env_results : (int * 'b outcome * float) list;
      (* (task index, outcome, task seconds measured in the worker) *)
  env_metrics : Metrics.snapshot;
  env_spans : Trace.event list;
}

(* --- crash flight recorder ----------------------------------------------- *)

(* Each worker keeps a ring of its last [flight_limit] span events and
   persists it to a per-pid file before starting and after finishing every
   task.  A worker that is SIGKILLed (timeout) or dies mid-task leaves the
   file behind; the parent folds its rendered tail into the failure
   report, so "what was that worker doing" survives the kill. *)
let flight_limit = 32

let flight_path dir pid = Filename.concat dir (Printf.sprintf "%d.flight" pid)

let persist_flight dir (events : Trace.event list) =
  let path = flight_path dir (Unix.getpid ()) in
  let tmp = path ^ ".tmp" in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
      let ok = try Marshal.to_channel oc events []; true with _ -> false in
      close_out_noerr oc;
      if ok then (try Sys.rename tmp path with Sys_error _ -> ())
      else (try Sys.remove tmp with Sys_error _ -> ())

let read_flight dir pid : Trace.event list =
  match open_in_bin (flight_path dir pid) with
  | exception Sys_error _ -> []
  | ic ->
      let evs =
        try (Marshal.from_channel ic : Trace.event list) with _ -> []
      in
      close_in_noerr ic;
      evs

let remove_flight dir pid =
  try Sys.remove (flight_path dir pid) with Sys_error _ -> ()

let flight_report dir pid =
  match read_flight dir pid with
  | [] -> ""
  | evs ->
      Printf.sprintf "\nflight recorder (worker %d, last %d events):\n  %s"
        pid (List.length evs)
        (String.concat "\n  " (List.map Trace.render_event evs))

(* Both pools (fork here, domains in Dpool) size themselves through this
   one function, so $HEXTIME_JOBS is parsed exactly once and 0/negative
   values are rejected in exactly one place — the old version parsed the
   string twice (once in the guard, once in the branch body). *)
let default_jobs () =
  match Option.bind (Sys.getenv_opt "HEXTIME_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> max 1 (Domain.recommended_domain_count ())

(* Shared with Dpool and Parsweep.serial so "the caller left the
   fault-isolation knobs alone" is decidable in one place. *)
let default_timeout_s = 600.0
let default_retries = 1

type worker = {
  pid : int;
  to_child : out_channel;
  from_fd : Unix.file_descr;
  from_child : in_channel;
  mutable task : int list;  (* chunk currently executing, [] when idle *)
  mutable started : float;  (* assignment time, for the timeout check *)
}

(* Spawn one worker.  [peers] are the currently-live workers: the child
   inherits their pipe ends across the fork and must close them, otherwise
   the parent can never observe EOF on a crashed sibling. *)
let spawn ~flight ~peers f (tasks : 'a array) =
  flush stdout;
  flush stderr;
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      List.iter
        (fun w ->
          (try Unix.close (Unix.descr_of_out_channel w.to_child)
           with Unix.Unix_error _ | Sys_error _ -> ());
          try Unix.close w.from_fd with Unix.Unix_error _ -> ())
        peers;
      Unix.close task_w;
      Unix.close res_r;
      let ic = Unix.in_channel_of_descr task_r in
      let oc = Unix.out_channel_of_descr res_w in
      (* drop metric counts and spans inherited through the fork: each
         envelope must carry only this worker's own delta, or the
         coordinator would double-count its pre-fork state *)
      Metrics.reset ();
      Trace.reset ();
      let ring = ref [] in
      let push ev =
        let rec take k = function
          | [] -> []
          | x :: xs -> if k = 0 then [] else x :: take (k - 1) xs
        in
        ring := take flight_limit (ev :: !ring)
      in
      let rec serve () =
        match (Marshal.from_channel ic : int list) with
        | exception _ -> Unix._exit 0
        | [] -> Unix._exit 0
        | chunk ->
            let spans_acc = ref [] in
            let results =
              List.map
                (fun i ->
                  let t0 = Trace.now_us () in
                  push
                    (Trace.make ~cat:"pool" ~ph:"B" ~ts_us:t0
                       ~args:[ ("index", string_of_int i) ]
                       "pool.task");
                  persist_flight flight (List.rev !ring);
                  let r : 'b outcome =
                    try Ok (f tasks.(i))
                    with e -> Error (Printexc.to_string e)
                  in
                  let t1 = Trace.now_us () in
                  let task_ev =
                    Trace.make ~cat:"pool" ~ph:"X" ~ts_us:t0
                      ~dur_us:(t1 -. t0)
                      ~args:[ ("index", string_of_int i) ]
                      "pool.task"
                  in
                  if Trace.enabled () then Trace.emit task_ev;
                  let spans = Trace.drain () in
                  List.iter push
                    (match spans with [] -> [ task_ev ] | evs -> evs);
                  spans_acc := List.rev_append spans !spans_acc;
                  persist_flight flight (List.rev !ring);
                  (i, r, (t1 -. t0) /. 1e6))
                chunk
            in
            let env =
              {
                env_results = results;
                env_metrics = Metrics.snapshot ();
                env_spans = List.rev !spans_acc;
              }
            in
            Metrics.reset ();
            Marshal.to_channel oc env [];
            flush oc;
            serve ()
      in
      serve ()
  | pid ->
      Unix.close task_r;
      Unix.close res_w;
      {
        pid;
        to_child = Unix.out_channel_of_descr task_w;
        from_fd = res_r;
        from_child = Unix.in_channel_of_descr res_r;
        task = [];
        started = 0.0;
      }

let in_process ~on_result ~on_progress ~f tasks results =
  let completed = ref 0 in
  Array.iteri
    (fun i t ->
      let t0 = Unix.gettimeofday () in
      let r = try Ok (f t) with e -> Error (Printexc.to_string e) in
      Metrics.incr tasks_counter;
      Metrics.observe task_hist (Unix.gettimeofday () -. t0);
      results.(i) <- r;
      incr completed;
      on_result i r;
      on_progress ~done_:!completed ~alive:0 ~busy:0)
    tasks;
  (results, { zero with completed = !completed })

(* Chunk sizing: large enough to amortize the per-envelope Marshal
   round-trip and metrics snapshot, small enough that every worker gets
   several assignment rounds (load balance) and a mid-chunk death loses
   little work.  Retries always run as singleton chunks, so a poison task
   only ever re-kills a chunk of one. *)
let default_chunk ~jobs n = max 1 (min 64 (n / (jobs * 4)))

let map ?jobs ?chunk ?(timeout_s = default_timeout_s)
    ?(retries = default_retries)
    ?(on_result = fun _ _ -> ())
    ?(on_progress = fun ~done_:_ ~alive:_ ~busy:_ -> ()) ~f (tasks : 'a array)
    =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let chunk =
    match chunk with Some c -> max 1 c | None -> default_chunk ~jobs n
  in
  let results : 'b outcome array =
    Array.make n (Error "parsweep: not executed")
  in
  if n = 0 then (results, zero)
  else if jobs <= 1 || n = 1 then
    in_process ~on_result ~on_progress ~f tasks results
  else begin
    (* a write to a just-died worker must surface as EPIPE, not kill us *)
    let prev_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let flight =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hextime-flight-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir flight 0o700
     with Unix.Unix_error (Unix.EEXIST, _, _) | Unix.Unix_error _ -> ());
    Fun.protect ~finally:(fun () ->
        (match prev_sigpipe with
        | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
        | None -> ());
        (try
           Array.iter
             (fun f -> try Sys.remove (Filename.concat flight f) with Sys_error _ -> ())
             (Sys.readdir flight)
         with Sys_error _ -> ());
        try Unix.rmdir flight with Unix.Unix_error _ -> ())
    @@ fun () ->
    let attempts = Array.make n 0 in
    let next = ref 0 in
    let requeue = Queue.create () in
    let take_chunk () =
      (* requeued tasks ran on a worker that died: re-execute them alone so
         a poison task cannot take innocent chunk-mates down twice *)
      match Queue.take_opt requeue with
      | Some i -> [ i ]
      | None ->
          if !next < n then begin
            let k = min chunk (n - !next) in
            let c = List.init k (fun j -> !next + j) in
            next := !next + k;
            c
          end
          else []
    in
    let done_count = ref 0 in
    let completed = ref 0 in
    let crashed = ref 0 in
    let retried = ref 0 in
    let failed = ref 0 in
    let workers = ref [] in
    let remove w = workers := List.filter (fun x -> x.pid <> w.pid) !workers in
    let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> () in
    let stop_worker w =
      (try
         Marshal.to_channel w.to_child ([] : int list) [];
         flush w.to_child
       with Sys_error _ | Unix.Unix_error _ -> ());
      close_out_noerr w.to_child;
      close_in_noerr w.from_child;
      reap w.pid;
      remove_flight flight w.pid
    in
    let kill_worker w =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap w.pid;
      close_out_noerr w.to_child;
      close_in_noerr w.from_child
    in
    let assign w =
      match take_chunk () with
      | [] ->
          remove w;
          stop_worker w
      | c -> (
          List.iter (fun i -> attempts.(i) <- attempts.(i) + 1) c;
          w.task <- c;
          w.started <- Unix.gettimeofday ();
          try
            Marshal.to_channel w.to_child c [];
            flush w.to_child
          with Sys_error _ | Unix.Unix_error _ ->
            (* already dead: its result pipe reports EOF on the next
               select round and the chunk is retried there *)
            ())
    in
    let record i r =
      results.(i) <- r;
      incr done_count;
      on_result i r;
      on_progress ~done_:!done_count ~alive:(List.length !workers)
        ~busy:
          (List.length (List.filter (fun w -> w.task <> []) !workers))
    in
    let handle_death w reason =
      incr crashed;
      Metrics.incr crash_counter;
      let in_flight = w.task in
      w.task <- [];
      (* the flight report must be rendered before remove_flight below *)
      let report = lazy (flight_report flight w.pid) in
      List.iter
        (fun i ->
          if attempts.(i) <= retries then begin
            incr retried;
            Metrics.incr retry_counter;
            Queue.add i requeue
          end
          else begin
            incr failed;
            Metrics.incr failure_counter;
            (* fold the dead worker's persisted span tail into the report:
               the last thing it was doing survives the kill *)
            record i (Error (reason ^ Lazy.force report))
          end)
        in_flight;
      remove_flight flight w.pid;
      remove w;
      kill_worker w;
      if Queue.length requeue > 0 || !next < n then begin
        let nw = spawn ~flight ~peers:!workers f tasks in
        workers := nw :: !workers;
        assign nw
      end
    in
    for _ = 1 to min jobs n do
      let w = spawn ~flight ~peers:!workers f tasks in
      workers := w :: !workers
    done;
    List.iter assign !workers;
    while !done_count < n do
      let busy = List.filter (fun w -> w.task <> []) !workers in
      if busy = [] then
        (* every worker died without a task in flight (or assignment raced
           a death): push the remaining work onto a fresh worker *)
        match take_chunk () with
        | [] ->
            (* nobody busy and nothing pending: every unrecorded slot kept
               its initial [Error]; stop rather than spin *)
            done_count := n
        | c ->
            List.iter (fun i -> Queue.add i requeue) c;
            let w = spawn ~flight ~peers:!workers f tasks in
            workers := w :: !workers;
            assign w
      else begin
        let now = Unix.gettimeofday () in
        let slack =
          List.fold_left
            (fun acc w -> Float.min acc (timeout_s -. (now -. w.started)))
            1.0 busy
        in
        let readable, _, _ =
          try Unix.select (List.map (fun w -> w.from_fd) busy) [] []
                (Float.max 0.01 (Float.min 1.0 slack))
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.from_fd = fd) !workers with
            | None -> () (* worker was retired while draining this round *)
            | Some w -> (
                match (Marshal.from_channel w.from_child : 'b envelope) with
                | exception _ -> handle_death w "parsweep: worker crashed"
                | env ->
                    Metrics.absorb env.env_metrics;
                    Trace.absorb env.env_spans;
                    List.iter
                      (fun (i, r, secs) ->
                        Metrics.incr tasks_counter;
                        Metrics.observe task_hist secs;
                        incr completed;
                        record i r)
                      env.env_results;
                    w.task <- [];
                    assign w))
          readable;
        let now = Unix.gettimeofday () in
        List.iter
          (fun w ->
            match w.task with
            | _ :: _ when now -. w.started > timeout_s ->
                Metrics.incr timeout_counter;
                handle_death w
                  (Printf.sprintf "parsweep: worker timed out after %.0fs"
                     timeout_s)
            | _ -> ())
          !workers
      end
    done;
    List.iter stop_worker !workers;
    workers := [];
    ( results,
      {
        completed = !completed;
        crashed = !crashed;
        retried = !retried;
        failed = !failed;
      } )
  end
