type 'b outcome = ('b, string) result

type stats = {
  completed : int;
  crashed : int;
  retried : int;
  failed : int;
}

let zero = { completed = 0; crashed = 0; retried = 0; failed = 0 }

let default_jobs () =
  match Sys.getenv_opt "HEXTIME_JOBS" with
  | Some s when (match int_of_string_opt s with Some n -> n >= 1 | None -> false)
    ->
      int_of_string s
  | _ -> max 1 (Domain.recommended_domain_count ())

type worker = {
  pid : int;
  to_child : out_channel;
  from_fd : Unix.file_descr;
  from_child : in_channel;
  mutable task : int option;  (* index currently executing, if any *)
  mutable started : float;  (* assignment time, for the timeout check *)
}

(* Spawn one worker.  [peers] are the currently-live workers: the child
   inherits their pipe ends across the fork and must close them, otherwise
   the parent can never observe EOF on a crashed sibling. *)
let spawn ~peers f (tasks : 'a array) =
  flush stdout;
  flush stderr;
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      List.iter
        (fun w ->
          (try Unix.close (Unix.descr_of_out_channel w.to_child)
           with Unix.Unix_error _ | Sys_error _ -> ());
          try Unix.close w.from_fd with Unix.Unix_error _ -> ())
        peers;
      Unix.close task_w;
      Unix.close res_r;
      let ic = Unix.in_channel_of_descr task_r in
      let oc = Unix.out_channel_of_descr res_w in
      let rec serve () =
        match (Marshal.from_channel ic : int) with
        | exception _ -> Unix._exit 0
        | i when i < 0 -> Unix._exit 0
        | i ->
            let r : 'b outcome =
              try Ok (f tasks.(i)) with e -> Error (Printexc.to_string e)
            in
            Marshal.to_channel oc (i, r) [];
            flush oc;
            serve ()
      in
      serve ()
  | pid ->
      Unix.close task_r;
      Unix.close res_w;
      {
        pid;
        to_child = Unix.out_channel_of_descr task_w;
        from_fd = res_r;
        from_child = Unix.in_channel_of_descr res_r;
        task = None;
        started = 0.0;
      }

let in_process ~on_result ~f tasks results =
  let completed = ref 0 in
  Array.iteri
    (fun i t ->
      let r = try Ok (f t) with e -> Error (Printexc.to_string e) in
      results.(i) <- r;
      incr completed;
      on_result i r)
    tasks;
  (results, { zero with completed = !completed })

let map ?jobs ?(timeout_s = 600.0) ?(retries = 1) ?(on_result = fun _ _ -> ())
    ~f (tasks : 'a array) =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let results : 'b outcome array =
    Array.make n (Error "parsweep: not executed")
  in
  if n = 0 then (results, zero)
  else if jobs <= 1 || n = 1 then in_process ~on_result ~f tasks results
  else begin
    (* a write to a just-died worker must surface as EPIPE, not kill us *)
    let prev_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    Fun.protect ~finally:(fun () ->
        match prev_sigpipe with
        | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
        | None -> ())
    @@ fun () ->
    let attempts = Array.make n 0 in
    let next = ref 0 in
    let requeue = Queue.create () in
    let take_task () =
      match Queue.take_opt requeue with
      | Some i -> Some i
      | None ->
          if !next < n then begin
            let i = !next in
            incr next;
            Some i
          end
          else None
    in
    let done_count = ref 0 in
    let completed = ref 0 in
    let crashed = ref 0 in
    let retried = ref 0 in
    let failed = ref 0 in
    let workers = ref [] in
    let remove w = workers := List.filter (fun x -> x.pid <> w.pid) !workers in
    let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> () in
    let stop_worker w =
      (try
         Marshal.to_channel w.to_child (-1) [];
         flush w.to_child
       with Sys_error _ | Unix.Unix_error _ -> ());
      close_out_noerr w.to_child;
      close_in_noerr w.from_child;
      reap w.pid
    in
    let kill_worker w =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap w.pid;
      close_out_noerr w.to_child;
      close_in_noerr w.from_child
    in
    let assign w =
      match take_task () with
      | None ->
          remove w;
          stop_worker w
      | Some i -> (
          attempts.(i) <- attempts.(i) + 1;
          w.task <- Some i;
          w.started <- Unix.gettimeofday ();
          try
            Marshal.to_channel w.to_child i [];
            flush w.to_child
          with Sys_error _ | Unix.Unix_error _ ->
            (* already dead: its result pipe reports EOF on the next
               select round and the task is retried there *)
            ())
    in
    let record i r =
      results.(i) <- r;
      incr done_count;
      on_result i r
    in
    let handle_death w reason =
      incr crashed;
      (match w.task with
      | None -> ()
      | Some i ->
          w.task <- None;
          if attempts.(i) <= retries then begin
            incr retried;
            Queue.add i requeue
          end
          else begin
            incr failed;
            record i (Error reason)
          end);
      remove w;
      kill_worker w;
      if Queue.length requeue > 0 || !next < n then begin
        let nw = spawn ~peers:!workers f tasks in
        workers := nw :: !workers;
        assign nw
      end
    in
    for _ = 1 to min jobs n do
      let w = spawn ~peers:!workers f tasks in
      workers := w :: !workers
    done;
    List.iter assign !workers;
    while !done_count < n do
      let busy = List.filter (fun w -> w.task <> None) !workers in
      if busy = [] then
        (* every worker died without a task in flight (or assignment raced
           a death): push the remaining work onto a fresh worker *)
        match take_task () with
        | None ->
            (* nobody busy and nothing pending: every unrecorded slot kept
               its initial [Error]; stop rather than spin *)
            done_count := n
        | Some i ->
            Queue.add i requeue;
            let w = spawn ~peers:!workers f tasks in
            workers := w :: !workers;
            assign w
      else begin
        let now = Unix.gettimeofday () in
        let slack =
          List.fold_left
            (fun acc w -> Float.min acc (timeout_s -. (now -. w.started)))
            1.0 busy
        in
        let readable, _, _ =
          try Unix.select (List.map (fun w -> w.from_fd) busy) [] []
                (Float.max 0.01 (Float.min 1.0 slack))
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.from_fd = fd) !workers with
            | None -> () (* worker was retired while draining this round *)
            | Some w -> (
                match (Marshal.from_channel w.from_child : int * 'b outcome) with
                | exception _ -> handle_death w "parsweep: worker crashed"
                | i, r ->
                    incr completed;
                    record i r;
                    w.task <- None;
                    assign w))
          readable;
        let now = Unix.gettimeofday () in
        List.iter
          (fun w ->
            match w.task with
            | Some _ when now -. w.started > timeout_s ->
                handle_death w
                  (Printf.sprintf "parsweep: worker timed out after %.0fs"
                     timeout_s)
            | _ -> ())
          !workers
      end
    done;
    List.iter stop_worker !workers;
    workers := [];
    ( results,
      {
        completed = !completed;
        crashed = !crashed;
        retried = !retried;
        failed = !failed;
      } )
  end
