module Det_hash = Hextime_prelude.Det_hash
module Metrics = Hextime_obs.Metrics

(* the record fields below are per-cache-instance; these registry counters
   are the process-wide view the metrics snapshot reports *)
let hit_counter = Metrics.counter "cache.hit"
let miss_counter = Metrics.counter "cache.miss"
let write_counter = Metrics.counter "cache.write"

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
}

let default_dir () =
  match Sys.getenv_opt "HEXTIME_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "hextime"
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some h when h <> "" ->
              Filename.concat (Filename.concat h ".cache") "hextime"
          | _ -> Filename.concat (Filename.get_temp_dir_name ()) "hextime-cache"))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* [put] writes through "<entry>.tmp.<pid>" then renames.  A writer that is
   SIGKILLed between the two (the fork pool kills timed-out workers with
   exactly that signal) leaks its temp file forever — no code path ever
   looked at them again.  Sweep them when a cache is opened: a temp file
   whose embedded pid no longer exists belongs to a dead writer and can
   never be renamed, so it is garbage.  [kill pid 0] probes existence
   without signalling; EPERM means the pid is alive but owned by someone
   else, so only ESRCH (and a pid that doesn't parse) condemns the file.
   A racing live writer is never touched, and losing the race to remove a
   file some other opener already swept is fine. *)
let sweep_stale_tmp dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.iter
    (fun name ->
      match String.rindex_opt name '.' with
      | None -> ()
      | Some dot ->
          let stem = String.sub name 0 dot in
          let suffix = String.sub name (dot + 1) (String.length name - dot - 1) in
          if Filename.check_suffix stem ".tmp" then begin
            let dead =
              match int_of_string_opt suffix with
              | None -> true (* ".tmp.garbage": no live writer can own it *)
              | Some pid when pid <= 0 -> true
              | Some pid -> (
                  match Unix.kill pid 0 with
                  | () -> false
                  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
                  | exception Unix.Unix_error (_, _, _) -> false)
            in
            if dead then
              try Sys.remove (Filename.concat dir name) with Sys_error _ -> ()
          end)
    entries

let create ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  mkdir_p dir;
  sweep_stale_tmp dir;
  { dir; hits = 0; misses = 0; writes = 0 }

let dir t = t.dir

let path_of t key =
  let h =
    Det_hash.to_int64 (Det_hash.mix_string (Det_hash.create "hextime-cache") key)
  in
  Filename.concat t.dir (Printf.sprintf "%016Lx.bin" h)

let entry_path = path_of

let get (type a) t ~key : a option =
  match open_in_bin (path_of t key) with
  | exception Sys_error _ ->
      t.misses <- t.misses + 1;
      Metrics.incr miss_counter;
      None
  | ic ->
      (* Only the failures a damaged entry can actually produce are a miss:
         Marshal raises [Failure] on corrupt bytes, [End_of_file] on
         truncation, and the read can hit [Sys_error].  The old catch-all
         also swallowed [Out_of_memory] and [Stack_overflow], silently
         re-pricing a point the machine was too loaded to deserialise —
         those must propagate. *)
      let entry : (string * a) option =
        try Some (Marshal.from_channel ic)
        with Failure _ | End_of_file | Sys_error _ -> None
      in
      close_in_noerr ic;
      (match entry with
      | Some (k, v) when String.equal k key ->
          t.hits <- t.hits + 1;
          Metrics.incr hit_counter;
          Some v
      | Some _ | None ->
          t.misses <- t.misses + 1;
          Metrics.incr miss_counter;
          None)

let put t ~key v =
  let path = path_of t key in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
      let written =
        try
          Marshal.to_channel oc (key, v) [];
          true
        with _ -> false
      in
      close_out_noerr oc;
      if written then begin
        match Sys.rename tmp path with
        | () ->
            t.writes <- t.writes + 1;
            Metrics.incr write_counter
        | exception Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())
      end
      else try Sys.remove tmp with Sys_error _ -> ()

let hits t = t.hits
let misses t = t.misses
let writes t = t.writes
