module Det_hash = Hextime_prelude.Det_hash
module Metrics = Hextime_obs.Metrics

(* the record fields below are per-cache-instance; these registry counters
   are the process-wide view the metrics snapshot reports *)
let hit_counter = Metrics.counter "cache.hit"
let miss_counter = Metrics.counter "cache.miss"
let write_counter = Metrics.counter "cache.write"

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
}

let default_dir () =
  match Sys.getenv_opt "HEXTIME_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "hextime"
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some h when h <> "" ->
              Filename.concat (Filename.concat h ".cache") "hextime"
          | _ -> Filename.concat (Filename.get_temp_dir_name ()) "hextime-cache"))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  mkdir_p dir;
  { dir; hits = 0; misses = 0; writes = 0 }

let dir t = t.dir

let path_of t key =
  let h =
    Det_hash.to_int64 (Det_hash.mix_string (Det_hash.create "hextime-cache") key)
  in
  Filename.concat t.dir (Printf.sprintf "%016Lx.bin" h)

let get (type a) t ~key : a option =
  match open_in_bin (path_of t key) with
  | exception Sys_error _ ->
      t.misses <- t.misses + 1;
      Metrics.incr miss_counter;
      None
  | ic ->
      let entry : (string * a) option =
        try Some (Marshal.from_channel ic) with _ -> None
      in
      close_in_noerr ic;
      (match entry with
      | Some (k, v) when String.equal k key ->
          t.hits <- t.hits + 1;
          Metrics.incr hit_counter;
          Some v
      | Some _ | None ->
          t.misses <- t.misses + 1;
          Metrics.incr miss_counter;
          None)

let put t ~key v =
  let path = path_of t key in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
      let written =
        try
          Marshal.to_channel oc (key, v) [];
          true
        with _ -> false
      in
      close_out_noerr oc;
      if written then begin
        match Sys.rename tmp path with
        | () ->
            t.writes <- t.writes + 1;
            Metrics.incr write_counter
        | exception Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())
      end
      else try Sys.remove tmp with Sys_error _ -> ()

let hits t = t.hits
let misses t = t.misses
let writes t = t.writes
