module Metrics = Hextime_obs.Metrics
module Trace = Hextime_obs.Trace

(* These names intentionally collide with the fork pool's: Metrics handles
   are interned by name, so both backends bump the same live counters and
   the "pool.tasks" total a sweep reports is backend-independent. *)
let tasks_counter = Metrics.counter "pool.tasks"
let task_hist = Metrics.histogram "pool.task_seconds"

let in_process ~on_result ~on_progress ~f (tasks : 'a array) results =
  let completed = ref 0 in
  Array.iteri
    (fun i t ->
      let t0 = Unix.gettimeofday () in
      let r = try Ok (f t) with e -> Error (Printexc.to_string e) in
      Metrics.incr tasks_counter;
      Metrics.observe task_hist (Unix.gettimeofday () -. t0);
      results.(i) <- r;
      incr completed;
      on_result i r;
      on_progress ~done_:!completed ~alive:0 ~busy:0)
    tasks;
  (results, { Pool.completed = !completed; crashed = 0; retried = 0; failed = 0 })

(* No per-task timeout or retry on this backend: workers share the heap,
   so the only way to stop a runaway task would be to kill the whole
   process.  The parameters are accepted for signature parity with
   {!Pool.map} — but silently dropping an {e explicit} fault-isolation
   request is a trap, so the first map that receives non-default values
   says so on stderr (once per process; domain-safe via the exchange). *)
let options_warned = Atomic.make false

let warn_ignored_options ~timeout_s ~retries =
  if
    (timeout_s <> Pool.default_timeout_s || retries <> Pool.default_retries)
    && not (Atomic.exchange options_warned true)
  then
    prerr_endline
      "hextime: warning: timeout/retries are ignored by the domains backend \
       (domain workers share the heap, so a runaway task cannot be killed \
       in isolation); use the fork backend to enforce them"

let map ?jobs ?(timeout_s = Pool.default_timeout_s)
    ?(retries = Pool.default_retries) ?(on_result = fun _ _ -> ())
    ?(on_progress = fun ~done_:_ ~alive:_ ~busy:_ -> ()) ~f (tasks : 'a array)
    =
  warn_ignored_options ~timeout_s ~retries;
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let results : 'b Pool.outcome array =
    Array.make n (Error "parsweep: not executed")
  in
  if n = 0 then
    (results, { Pool.completed = 0; crashed = 0; retried = 0; failed = 0 })
  else if jobs <= 1 || n = 1 then in_process ~on_result ~on_progress ~f tasks results
  else begin
    let jobs = min jobs n in
    (* Work distribution is one atomic counter: each worker claims the next
       unclaimed index.  Results land at their task index — every slot is
       written by exactly one domain, so the array needs no lock.  Only the
       recording callbacks do: [on_result] persists to the (single) cache
       and [on_progress] drives one progress tracker, neither of which is
       domain-safe, so both run under [record_mutex] along with the
       completion count they observe. *)
    let next = Atomic.make 0 in
    let done_count = ref 0 in
    let record_mutex = Mutex.create () in
    let completed = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = Unix.gettimeofday () in
          let ts_us = Trace.now_us () in
          let r = try Ok (f tasks.(i)) with e -> Error (Printexc.to_string e) in
          let dt = Unix.gettimeofday () -. t0 in
          if Trace.enabled () then
            Trace.emit
              (Trace.make ~cat:"pool" ~ph:"X" ~ts_us ~dur_us:(dt *. 1e6)
                 ~args:[ ("index", string_of_int i) ]
                 "pool.task");
          Metrics.incr tasks_counter;
          Metrics.observe task_hist dt;
          results.(i) <- r;
          ignore (Atomic.fetch_and_add completed 1);
          Mutex.protect record_mutex (fun () ->
              incr done_count;
              on_result i r;
              (* in-flight = claimed but not yet recorded, capped at the
                 domain count (claims past [n] are refused loop exits) *)
              let claimed = min n (Atomic.get next) in
              let busy = max 0 (min jobs (claimed - !done_count)) in
              on_progress ~done_:!done_count ~alive:jobs ~busy);
          loop ()
        end
      in
      loop ()
    in
    let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is the jobs-th worker, not an idle coordinator *)
    worker ();
    List.iter Domain.join others;
    ( results,
      {
        Pool.completed = Atomic.get completed;
        crashed = 0;
        retried = 0;
        failed = 0;
      } )
  end
