(** Fork-based worker pool: run a pure function over an array of tasks on
    [N] worker processes with per-worker fault isolation.

    Workers are [Unix.fork] children; they inherit the task array (and
    everything the closure captures — memoized micro-benchmark tables
    included) through the fork, so only task {e indices} travel parent to
    worker and only marshalled results travel back.  The parent hands out
    {e chunks} of consecutive indices over a pipe and collects one result
    envelope per chunk in a [select] loop, so fast workers are never idle
    behind slow ones and at most one message is ever in flight per pipe.
    Chunking amortizes the per-message cost (a [Marshal] round-trip plus a
    metrics-registry snapshot) over several tasks — for micro-task sweeps
    this is the difference between the fork backend running at a few
    thousand points per second and keeping up with the serial engine.

    Fault isolation: an exception inside [f] is caught in the worker and
    returned as [Error]; a worker that dies (crash, OOM-kill, [exit]) or
    exceeds the per-chunk timeout is reaped, every task of its in-flight
    chunk is retried up to [retries] times — {e as singleton chunks}, so a
    poison task cannot take innocent chunk-mates down twice — and only a
    task whose every attempt died is recorded as [Error].  One pathological
    configuration cannot take down a campaign, and the other results are
    unaffected.

    Determinism: results land in the output array at their task index, so
    the collected output is ordered exactly as the input regardless of
    completion order.  With a deterministic [f] the output is bit-identical
    to an in-process run.

    Observability: each worker result is an envelope additionally carrying
    the task's {!Hextime_obs.Metrics} snapshot delta and its
    {!Hextime_obs.Trace} span events; the parent absorbs both, so counters
    bumped inside [f] (simulator pricings, occupancy memo hits, ...) and
    spans recorded there survive the fork boundary and aggregate correctly
    under any [jobs].  Workers also persist a ring of their last span
    events to a per-pid flight-recorder file around every task; when a
    worker is killed (crash or timeout) and its task exhausts its retries,
    the recorded [Error] report embeds the rendered tail — what the worker
    was last doing. *)

type 'b outcome = ('b, string) result

type stats = {
  completed : int;  (** tasks that produced a result ([Ok] or caught [Error]) *)
  crashed : int;  (** worker deaths observed (crash or timeout) *)
  retried : int;  (** task re-executions after a worker death *)
  failed : int;  (** tasks abandoned after exhausting retries *)
}

val default_jobs : unit -> int
(** [$HEXTIME_JOBS] if set to a positive integer, else the machine's
    recommended parallelism ([Domain.recommended_domain_count]).
    Non-numeric, zero and negative values fall back to the machine
    default.  {!Dpool} sizes itself through this same function, so the
    two backends always agree on the job count. *)

val default_timeout_s : float
(** The [timeout_s] default (600s).  Shared with {!Dpool} so the domains
    backend can tell an explicit fault-isolation request apart from the
    untouched default. *)

val default_retries : int
(** The [retries] default (1). *)

val map :
  ?jobs:int ->
  ?chunk:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?on_result:(int -> 'b outcome -> unit) ->
  ?on_progress:(done_:int -> alive:int -> busy:int -> unit) ->
  f:('a -> 'b) ->
  'a array ->
  'b outcome array * stats
(** [map ~f tasks] evaluates [f] on every task.  [jobs] defaults to
    {!default_jobs}; [jobs <= 1] (or fewer than two tasks) runs in-process
    with identical semantics — exceptions still become [Error] — and no
    forking.  [chunk] is the number of tasks batched per worker message
    (default [max 1 (min 64 (n / (jobs * 4)))]: small inputs degrade to
    one task per message, large sweeps amortize the marshalling overhead
    while still giving every worker several assignment rounds).  Results
    land at their task index whatever the chunking, so output is
    bit-identical to a serial run for a deterministic [f].  [timeout_s]
    (default 600) bounds one {e chunk}'s wall-clock in a worker; [retries]
    (default 1) bounds re-executions of each task after a worker death.
    [on_result] is called in the {e parent}, in completion order, as each
    result is recorded — the hook the cache layer uses to persist points
    incrementally so an interrupted sweep can resume.  [on_progress] is
    called in the parent after every recorded result with the running
    completion count and the pool's worker liveness ([alive] live workers
    of which [busy] have a chunk in flight; both 0 on the in-process
    path) — the hexwatch heartbeat hook. *)
