(** Deterministic hashing for reproducible micro-variation.

    The GPU simulator needs small, repeatable "noise" (e.g. DRAM timing
    jitter) without any runtime randomness: the same (architecture, stencil,
    configuration) triple must always simulate to the same time.  We derive
    such variation from a splitmix64-style integer mix of the inputs. *)

type t
(** A hash state; cheap to copy, never mutated. *)

val create : string -> t
(** [create seed] builds a state from an arbitrary string seed. *)

val mix_int : t -> int -> t
(** Fold an integer into the state. *)

val mix_string : t -> string -> t
(** Fold a string into the state. *)

val mix_float : t -> float -> t
(** Fold a float (by bit pattern) into the state. *)

val to_int64 : t -> int64
(** Extract the 64-bit digest. *)

val uniform : t -> float
(** [uniform h] is a deterministic value in [0, 1) derived from [h]. *)

val jitter : t -> amplitude:float -> float
(** [jitter h ~amplitude] is a deterministic multiplicative factor in
    [1 - amplitude, 1 + amplitude]; amplitude must be in [0, 1). *)
