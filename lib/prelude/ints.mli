(** Small integer helpers shared across the code base.

    All divisions here are defined for positive divisors only; each function
    asserts its precondition so misuse fails fast rather than silently
    producing a wrong tile count. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceiling (a / b)] for [b > 0] and [a >= 0]. *)

val round_up : int -> int -> int
(** [round_up a m] is the smallest multiple of [m] that is [>= a], [m > 0]. *)

val round_down : int -> int -> int
(** [round_down a m] is the largest multiple of [m] that is [<= a], [m > 0]. *)

val is_multiple : int -> int -> bool
(** [is_multiple a m] is [true] iff [m] divides [a]. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] restricts [x] to the inclusive range [lo, hi]. *)

val pow : int -> int -> int
(** [pow b e] is [b] raised to [e >= 0], without overflow checking. *)

val range : ?step:int -> int -> int -> int list
(** [range ?step lo hi] is [lo; lo+step; ...] up to and including [hi]
    (default [step] 1, which must be positive). *)

val sum_by : ('a -> int) -> 'a list -> int
(** [sum_by f xs] is the sum of [f x] over [xs]. *)
