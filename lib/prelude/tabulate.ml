type align = Left | Right

type t = {
  title : string option;
  headers : (string * align) list;
  rows : string list list; (* stored reversed *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tabulate.add_row: arity mismatch";
  { t with rows = row :: t.rows }

let add_rows t rows = List.fold_left add_row t rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let render_cells cells =
    let padded =
      List.map2
        (fun (cell, align) width -> pad align width cell)
        (List.combine cells aligns)
        widths
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (render_cells headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_cells row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let float_cell ?(digits = 4) x =
  let a = abs_float x in
  if x = 0.0 then "0"
  else if a >= 1e6 || a < 1e-3 then Printf.sprintf "%.*e" (digits - 1) x
  else Printf.sprintf "%.*g" digits x

let seconds_cell s =
  let a = abs_float s in
  if a >= 1.0 then Printf.sprintf "%.3f s" s
  else if a >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else if a >= 1e-6 then Printf.sprintf "%.3f us" (s *. 1e6)
  else Printf.sprintf "%.3f ns" (s *. 1e9)
