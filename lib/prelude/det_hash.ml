type t = int64

(* splitmix64 finalizer: good avalanche behaviour, trivially portable. *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mix_int h i = mix64 (Int64.add h (Int64.of_int i))

let mix_string h s =
  let acc = ref h in
  String.iter (fun c -> acc := mix_int !acc (Char.code c)) s;
  mix64 !acc

let mix_float h f = mix_int h (Int64.to_int (Int64.bits_of_float f))
let create seed = mix_string 0x5DEECE66DL seed
let to_int64 h = mix64 h

let uniform h =
  let bits = Int64.shift_right_logical (mix64 h) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let jitter h ~amplitude =
  assert (amplitude >= 0.0 && amplitude < 1.0);
  1.0 +. (amplitude *. ((2.0 *. uniform h) -. 1.0))
