(** Summary statistics used by the validation harness (Section 5.3 of the
    paper): root-mean-square error between predicted and measured times,
    correlation of the scatter in Figure 3, and simple aggregates. *)

val mean : float list -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; raises [Invalid_argument] on the empty
    list or any non-positive element. *)

val stddev : float list -> float
(** Population standard deviation; raises [Invalid_argument] on empty. *)

val minimum : float list -> float
(** Smallest element; raises [Invalid_argument] on empty. *)

val maximum : float list -> float
(** Largest element; raises [Invalid_argument] on empty. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile ([0 <= p <= 100]) using linear
    interpolation between closest ranks. Raises [Invalid_argument] on empty. *)

val rmse_relative : (float * float) list -> float
(** [rmse_relative pairs] where each pair is (predicted, measured) is the
    root mean square of the relative errors (pred - meas) / meas, as used in
    the paper's "RMSE below 10%" claim. Measured values must be positive. *)

val mean_abs_relative_error : (float * float) list -> float
(** Mean of |pred - meas| / meas over the pairs. *)

val pearson : (float * float) list -> float
(** Pearson correlation coefficient of the pairs; requires at least two
    pairs with non-zero variance in each coordinate. *)

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] buckets [xs] into [bins] equal-width bins over
    [min, max]; each cell is (lo, hi, count). *)
