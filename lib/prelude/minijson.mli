(** A minimal JSON reader/writer for the repo's machine-readable artifacts
    (bench baselines, report payloads).

    Deliberately tiny: objects, arrays, strings, numbers, booleans and
    null — no streaming, no options, no dependency.  Numbers are floats;
    [render] prints them with enough digits ([%.17g]) to round-trip
    exactly, so a written baseline compares bit-for-bit after [parse]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val render : t -> string
(** Render with two-space indentation and a trailing newline.  Non-finite
    numbers have no JSON literal and are rendered deterministically as the
    strings ["NaN"], ["Infinity"] and ["-Infinity"] (so they parse back as
    [Str], never as invalid bare [nan]/[inf] tokens). *)

val render_compact : t -> string
(** Like {!render} but on a single line with no trailing newline — one
    record per line for JSONL artifacts (the hexwatch run ledger).  The
    number and string encodings are identical to {!render}'s, so compact
    output round-trips through {!parse} just the same. *)

val render_number : float -> string
(** {!render}'s number encoding alone: integral values without an
    exponent, [%.17g] otherwise, non-finite values as the quoted strings
    above.  For callers that stream JSON into a buffer themselves (the
    serving access log) and must stay byte-identical with {!render}. *)

val add_escaped : Buffer.t -> string -> unit
(** {!render}'s string-content escaping alone, appended to a buffer
    (quotes not included). *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries the offset and reason.
    Rejects trailing garbage. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val number : t -> float option
(** The payload of a [Num]. *)

val string : t -> string option
(** The payload of a [Str]. *)
