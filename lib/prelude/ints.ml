let ceil_div a b =
  assert (b > 0);
  assert (a >= 0);
  (a + b - 1) / b

let round_up a m =
  assert (m > 0);
  ceil_div a m * m

let round_down a m =
  assert (m > 0);
  a / m * m

let is_multiple a m = m <> 0 && a mod m = 0

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let pow b e =
  assert (e >= 0);
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let range ?(step = 1) lo hi =
  assert (step > 0);
  let rec go acc x = if x > hi then List.rev acc else go (x :: acc) (x + step) in
  go [] lo

let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs
