(** Plain-text table rendering for experiment reports.

    Every table and figure reproduction prints through this module so the
    bench output has one consistent look. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ?title columns] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> t
(** Append a row; raises [Invalid_argument] if the arity differs from the
    header. *)

val add_rows : t -> string list list -> t

val render : t -> string
(** Render with column separators and a header rule. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a newline. *)

val float_cell : ?digits:int -> float -> string
(** Format a float for a cell, defaulting to 4 significant digits, with
    scientific notation for very small/large magnitudes. *)

val seconds_cell : float -> string
(** Format a duration in seconds with an adaptive unit (s, ms, us, ns). *)
