type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- rendering ---------------------------------------------------------- *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

(* JSON has no literal for non-finite numbers; emitting %g's "nan"/"inf"
   would make the document unparseable.  Encode them as the strings JSON
   tooling conventionally uses (they parse back as [Str], which callers
   that care can detect). *)
let render_number f =
  if Float.is_nan f then "\"NaN\""
  else if f = Float.infinity then "\"Infinity\""
  else if f = Float.neg_infinity then "\"-Infinity\""
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let render v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make n ' ') in
  let rec go n = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (render_number f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (n + 2);
            go (n + 2) item)
          items;
        Buffer.add_char buf '\n';
        indent n;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (n + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (n + 2) item)
          fields;
        Buffer.add_char buf '\n';
        indent n;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Single-line rendering for line-oriented formats (JSONL): same escaping
   and number formatting as [render], no indentation, no trailing
   newline — a record must occupy exactly one line of the ledger. *)
let render_compact v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (render_number f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go item)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some ('"' | '\\' | '/') ->
              Buffer.add_char buf s.[!pos];
              advance ();
              go ()
          | Some 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* ASCII range only; the writer never emits more *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else fail "non-ASCII \\u escape unsupported";
              pos := !pos + 5;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match float_of_string_opt str with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" str)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "minijson: %s at offset %d" msg at)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let number = function Num f -> Some f | _ -> None
let string = function Str s -> Some s | _ -> None
