let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = require_nonempty "Stats.mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = require_nonempty "Stats.geomean" xs in
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element"
        else acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  let xs = require_nonempty "Stats.stddev" xs in
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
  sqrt var

let minimum xs =
  let xs = require_nonempty "Stats.minimum" xs in
  List.fold_left min infinity xs

let maximum xs =
  let xs = require_nonempty "Stats.maximum" xs in
  List.fold_left max neg_infinity xs

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let xs = require_nonempty "Stats.percentile" xs in
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let rel_errors pairs =
  List.map
    (fun (pred, meas) ->
      if meas <= 0.0 then invalid_arg "Stats: non-positive measured value";
      (pred -. meas) /. meas)
    pairs

let rmse_relative pairs =
  match pairs with
  | [] -> invalid_arg "Stats.rmse_relative: empty list"
  | _ ->
      let errs = rel_errors pairs in
      sqrt (mean (List.map (fun e -> e *. e) errs))

let mean_abs_relative_error pairs =
  match pairs with
  | [] -> invalid_arg "Stats.mean_abs_relative_error: empty list"
  | _ -> mean (List.map abs_float (rel_errors pairs))

let pearson pairs =
  if List.length pairs < 2 then invalid_arg "Stats.pearson: need >= 2 pairs";
  let xs = List.map fst pairs and ys = List.map snd pairs in
  let mx = mean xs and my = mean ys in
  let cov =
    mean (List.map (fun (x, y) -> (x -. mx) *. (y -. my)) pairs)
  in
  let sx = stddev xs and sy = stddev ys in
  if sx = 0.0 || sy = 0.0 then invalid_arg "Stats.pearson: zero variance";
  cov /. (sx *. sy)

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let xs = require_nonempty "Stats.histogram" xs in
  let lo = minimum xs and hi = maximum xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let cells =
    Array.init bins (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), 0))
  in
  List.iter
    (fun x ->
      let i =
        Ints.clamp ~lo:0 ~hi:(bins - 1) (int_of_float ((x -. lo) /. width))
      in
      let blo, bhi, c = cells.(i) in
      cells.(i) <- (blo, bhi, c + 1))
    xs;
  cells
