(** Sensitivity of the predicted time to each model parameter.

    The paper argues (Sections 1 and 7) that a small set of parameters
    captures first-order behaviour while others can be safely ignored.
    This module makes that quantitative for any configuration: it perturbs
    each measured constant and machine parameter by a relative epsilon and
    reports the induced relative change of T_alg — which parameter the
    prediction actually hinges on (C_iter for compute-bound tiles, L for
    transfer-bound ones, T_sync for launch-bound degenerate tilings). *)

type factor =
  | L  (** global-memory word cost *)
  | Tau_sync
  | T_sync
  | C_iter
  | N_sm
  | N_vector

val factor_name : factor -> string

type row = {
  factor : factor;
  elasticity : float;
      (** d(log T_alg) / d(log parameter): +1.0 means a 1% increase of the
          parameter grows the prediction by 1% *)
}

val analyze :
  ?epsilon:float ->
  Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  Hextime_tiling.Config.t ->
  (row list, string) result
(** Central finite differences with relative [epsilon] (default 0.05) on
    the continuous parameters, one-step perturbation on the integer ones.
    Rows are sorted by decreasing |elasticity|. *)

val dominant : row list -> factor
(** The factor with the largest |elasticity|; raises on empty. *)
