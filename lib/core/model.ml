module Ints = Hextime_prelude.Ints
module Problem = Hextime_stencil.Problem
module Stencil = Hextime_stencil.Stencil
module Config = Hextime_tiling.Config
module Footprint = Hextime_tiling.Footprint
module Hexgeom = Hextime_tiling.Hexgeom

type prediction = {
  talg : float;
  t_tile : float;
  m_transfer : float;
  c_compute : float;
  k : int;
  n_wavefronts : int;
  wavefront_blocks : int;
  sm_rounds : int;
  shared_words : int;
  io_words : int;
  chunks : int;
}

let hyperthreading_factor (p : Params.t) ~shared_words =
  if shared_words <= 0 then p.max_blocks_per_sm
  else min p.max_blocks_per_sm (p.shared_mem_per_sm / shared_words)

let footprint_of (problem : Problem.t) (cfg : Config.t) =
  Footprint.of_problem problem cfg

let feasible (p : Params.t) (problem : Problem.t) (cfg : Config.t) =
  if Config.rank cfg <> problem.stencil.Stencil.rank then
    Error "configuration rank /= problem rank"
  else
    let fp = footprint_of problem cfg in
    if fp.Footprint.shared_words > p.shared_mem_per_block then
      Error
        (Printf.sprintf "M_tile = %d words exceeds per-block cap of %d"
           fp.Footprint.shared_words p.shared_mem_per_block)
    else if Array.exists2 (fun ts s -> ts > s) cfg.t_s problem.space then
      Error "tile size exceeds problem extent"
    else Ok ()

type variant = Refined | Paper_verbatim

(* c: Equations 9 / 15 / 27.  The hexagon rows come in equal-width pairs
   (factor 2); each row of x points over the inner extents costs
   ceil(x * inner / nV) * C_iter, plus one synchronisation per row.

   [Paper_verbatim] sums the widths of Equation 4's idealised hexagon,
   starting at x = t_s.  The two staggered tile families are not congruent
   in the exact lattice: one family's base is wider by 2*order, so the
   verbatim sum undercounts the computation by a factor (pitch - 2*order) /
   pitch — negligible for realistic tiles but a spurious 2x at degenerate
   shapes (t_s = 1, t_t = 2), which would hand the optimizer a false
   minimum.  [Family_averaged] (the default) therefore uses the mean width
   of the two families, x + order. *)
let compute_time ?(variant = Refined) (p : Params.t) ~citer ~order
    (cfg : Config.t) =
  let rank = Config.rank cfg in
  let inner = Array.fold_left ( * ) 1 (Array.sub cfg.t_s 1 (rank - 1)) in
  let base =
    match variant with
    | Paper_verbatim -> cfg.t_s.(0)
    | Refined -> cfg.t_s.(0) + order
  in
  let sum =
    List.fold_left
      (fun acc d ->
        let x = base + (2 * order * d) in
        acc + Ints.ceil_div (x * inner) p.n_vector)
      0
      (Ints.range 0 ((cfg.t_t / 2) - 1))
  in
  (2.0 *. citer *. float_of_int sum)
  +. (float_of_int cfg.t_t *. p.tau_sync)

let predict ?variant (p : Params.t) ~citer (problem : Problem.t) (cfg : Config.t) =
  match feasible p problem cfg with
  | Error _ as e -> e
  | Ok () ->
      if citer <= 0.0 then Error "citer must be positive"
      else
        let order = problem.stencil.Stencil.order in
        let fp = footprint_of problem cfg in
        let mio = fp.Footprint.input_words + fp.Footprint.output_words in
        (* m': Equations 8 / 14 / 25 *)
        let m_transfer =
          (float_of_int mio *. p.l_word) +. (2.0 *. p.tau_sync)
        in
        let c_compute = compute_time ?variant:(Option.map Fun.id variant) p ~citer ~order cfg in
        let wavefront_blocks =
          Hexgeom.wavefront_width ~order ~t_s:cfg.t_s.(0) ~t_t:cfg.t_t
            ~space:problem.space.(0)
        in
        (* Equation 11 bounds k by resources; a wavefront of w blocks can
           additionally keep at most ceil(w / nSM) blocks per SM resident
           (the paper's derivation assumes w >> k * nSM, where the clamp is
           inactive) *)
        let k =
          max 1
            (min
               (hyperthreading_factor p ~shared_words:fp.Footprint.shared_words)
               (Ints.ceil_div wavefront_blocks p.n_sm))
        in
        let chunks = fp.Footprint.chunks in
        (* T_tile(j): Equations 10/12 (1D) and 16/28/29 (2D/3D) at
           hyper-threading factor j *)
        let t_tile_at j =
          let cf = float_of_int chunks in
          match (Config.rank cfg, j) with
          | 1, 1 -> m_transfer +. c_compute (* Equation 10 *)
          | 1, _ ->
              (* Equation 12 *)
              m_transfer +. c_compute
              +. (float_of_int (j - 1) *. max m_transfer c_compute)
          | _, 1 -> (m_transfer +. c_compute) *. cf (* Equations 16 / 28 *)
          | _, _ ->
              (* Equations 16 / 29 *)
              m_transfer
              +. (float_of_int j *. max m_transfer c_compute *. cf)
        in
        let t_tile = t_tile_at k in
        let n_wavefronts =
          Hexgeom.num_wavefronts ~t_t:cfg.t_t ~time:problem.time
        in
        let sm_rounds =
          Ints.ceil_div (Ints.ceil_div wavefront_blocks k) p.n_sm
        in
        (* Per-wavefront tile time.  Paper_verbatim applies Equation 2's
           double ceiling, which charges the ragged final round as a full
           k-deep round; Refined charges the final round at its actual
           depth, which matters once k exceeds 2 (see the bench ablation). *)
        let per_wavefront =
          match Option.value variant ~default:Refined with
          | Paper_verbatim -> t_tile *. float_of_int sm_rounds
          | Refined ->
              let capacity = k * p.n_sm in
              let full = wavefront_blocks / capacity in
              let remainder = wavefront_blocks mod capacity in
              let last =
                if remainder = 0 then 0.0
                else t_tile_at (Ints.ceil_div remainder p.n_sm)
              in
              (float_of_int full *. t_tile) +. last
        in
        (* Equations 6 / 17 / 30 *)
        let talg =
          float_of_int n_wavefronts *. (per_wavefront +. p.t_sync)
        in
        Ok
          {
            talg;
            t_tile;
            m_transfer;
            c_compute;
            k;
            n_wavefronts;
            wavefront_blocks;
            sm_rounds;
            shared_words = fp.Footprint.shared_words;
            io_words = mio;
            chunks;
          }

(* --- cost attribution ----------------------------------------------------- *)

(* Decompose talg into the paper's Section 5 component terms.  Every
   combinator in [predict] is linear in (m', c) once the max(m', c) branch
   decisions are fixed, so we mirror those decisions to obtain coefficients
   (a, b) with T_tile(j) = a m' + b c, fold them through the per-wavefront
   form, and then split m' and c themselves into their traffic and barrier
   parts (m' = m_io L + 2 tau_sync; c = 2 C_iter sum + t_T tau_sync).  The
   resulting components rebuild talg exactly up to float rounding — the
   profile test asserts 1e-9 relative — without re-deriving any equation.
   Shared-memory traffic has no time term of its own in the model (M_tile
   only bounds k via Equation 11), so that component is zero here;
   [Simulator.attribute_priced] is the measured-side counterpart. *)
let attribution_of_prediction ?(variant = Refined) (p : Params.t) ~rank ~t_t
    (pr : prediction) =
  let m' = pr.m_transfer and c = pr.c_compute in
  let cf = float_of_int pr.chunks in
  (* (a, b) with T_tile(j) = a m' + b c, mirroring t_tile_at's branches —
     including that OCaml's [max] keeps the left operand on ties *)
  let coeffs j =
    match (rank, j) with
    | 1, 1 -> (1.0, 1.0)
    | 1, _ ->
        if m' >= c then (float_of_int j, 1.0) else (1.0, float_of_int j)
    | _, 1 -> (cf, cf)
    | _, _ ->
        if m' >= c then (1.0 +. (float_of_int j *. cf), 0.0)
        else (1.0, float_of_int j *. cf)
  in
  let a, b =
    match variant with
    | Paper_verbatim ->
        let ak, bk = coeffs pr.k in
        let r = float_of_int pr.sm_rounds in
        (r *. ak, r *. bk)
    | Refined ->
        let capacity = pr.k * p.n_sm in
        let full = float_of_int (pr.wavefront_blocks / capacity) in
        let remainder = pr.wavefront_blocks mod capacity in
        let al, bl =
          if remainder = 0 then (0.0, 0.0)
          else coeffs (Ints.ceil_div remainder p.n_sm)
        in
        let ak, bk = coeffs pr.k in
        ((full *. ak) +. al, (full *. bk) +. bl)
  in
  let nw = float_of_int pr.n_wavefronts in
  let sync_in_m = 2.0 *. p.tau_sync in
  let sync_in_c = float_of_int t_t *. p.tau_sync in
  {
    Hextime_obs.Attribution.compute = nw *. b *. (c -. sync_in_c);
    global_mem = nw *. a *. (m' -. sync_in_m);
    shared_mem = 0.0;
    sync = nw *. ((a *. sync_in_m) +. (b *. sync_in_c));
    launch = nw *. p.t_sync;
    jitter = 0.0;
  }

let attribution ?variant (p : Params.t) ~citer (problem : Problem.t)
    (cfg : Config.t) =
  match predict ?variant p ~citer problem cfg with
  | Error _ as e -> e
  | Ok pr ->
      Ok
        (pr, attribution_of_prediction ?variant p ~rank:(Config.rank cfg) ~t_t:cfg.t_t pr)

type schedule_counts = {
  sched_io_words : int;
  sched_shared_words : int;
  sched_chunks : int;
  sched_syncs_per_chunk : int;
  sched_wavefronts : int;
  sched_wavefront_blocks : int;
}

(* The model charges tau_sync once per compute row (Equations 9/15/27) and
   twice per chunk for the staging barriers (Equations 8/14/25), so any
   schedule it prices must execute exactly t_T + 2 barriers per chunk. *)
let scheduled_counts pr ~t_t =
  {
    sched_io_words = pr.io_words;
    sched_shared_words = pr.shared_words;
    sched_chunks = pr.chunks;
    sched_syncs_per_chunk = t_t + 2;
    sched_wavefronts = pr.n_wavefronts;
    sched_wavefront_blocks = pr.wavefront_blocks;
  }

let pp_prediction ppf pr =
  Format.fprintf ppf
    "Talg=%.4es (Ttile=%.3es, m'=%.3es, c=%.3es, k=%d, Nw=%d, w=%d, rounds=%d, \
     Mtile=%dw, mio=%dw, chunks=%d)"
    pr.talg pr.t_tile pr.m_transfer pr.c_compute pr.k pr.n_wavefronts
    pr.wavefront_blocks pr.sm_rounds pr.shared_words pr.io_words pr.chunks

let explain (p : Params.t) ~citer (problem : Problem.t) (cfg : Config.t) =
  match predict p ~citer problem cfg with
  | Error _ as e -> e
  | Ok pr ->
      let order = problem.stencil.Stencil.order in
      let b = Buffer.create 1024 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      pf "T_alg derivation for %s, %s on %s\n" (Problem.id problem)
        (Config.id cfg) p.arch_name;
      pf "  eq 3   N_w   = 2 * ceil(T / t_T) = 2 * ceil(%d / %d) = %d\n"
        problem.time cfg.t_t pr.n_wavefronts;
      pf "  eq 5   w     = ceil(S1 / (2 t_S1 + %d t_T)) = ceil(%d / %d) = %d\n"
        order problem.space.(0)
        ((2 * cfg.t_s.(0)) + (order * cfg.t_t))
        pr.wavefront_blocks;
      pf "  eq 7+  m_io  = %d words  ->  m' = m_io L + 2 tau = %.3e s\n"
        pr.io_words pr.m_transfer;
      pf "  eq 9+  c     = 2 C_iter sum ceil(x_r * inner / n_V) + t_T tau = %.3e s\n"
        pr.c_compute;
      pf "         M_tile = %d words (cap %d); chunks = %d\n" pr.shared_words
        p.shared_mem_per_block pr.chunks;
      pf "  eq 11  k     = min(MTB_SM, M_SM / M_tile, ceil(w / n_SM)) = %d\n"
        pr.k;
      pf "  eq 12/16/29  T_tile(k) = %.3e s\n" pr.t_tile;
      pf "  eq 2   rounds = ceil(ceil(w / k) / n_SM) = %d\n" pr.sm_rounds;
      pf "  eq 6/17/30   T_alg = N_w (per-wavefront + T_sync) = %.4e s\n"
        pr.talg;
      pf "  dominant term: %s-bound (m' %s c)\n"
        (if pr.m_transfer > pr.c_compute then "transfer" else "compute")
        (if pr.m_transfer > pr.c_compute then ">" else "<=");
      Ok (Buffer.contents b)
