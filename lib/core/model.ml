module Ints = Hextime_prelude.Ints
module Problem = Hextime_stencil.Problem
module Stencil = Hextime_stencil.Stencil
module Config = Hextime_tiling.Config
module Footprint = Hextime_tiling.Footprint
module Hexgeom = Hextime_tiling.Hexgeom

type prediction = {
  talg : float;
  t_tile : float;
  m_transfer : float;
  c_compute : float;
  k : int;
  n_wavefronts : int;
  wavefront_blocks : int;
  sm_rounds : int;
  shared_words : int;
  io_words : int;
  chunks : int;
}

let hyperthreading_factor (p : Params.t) ~shared_words =
  if shared_words <= 0 then p.max_blocks_per_sm
  else min p.max_blocks_per_sm (p.shared_mem_per_sm / shared_words)

let footprint_of (problem : Problem.t) (cfg : Config.t) =
  Footprint.of_problem problem cfg

let feasible (p : Params.t) (problem : Problem.t) (cfg : Config.t) =
  if Config.rank cfg <> problem.stencil.Stencil.rank then
    Error "configuration rank /= problem rank"
  else
    let fp = footprint_of problem cfg in
    if fp.Footprint.shared_words > p.shared_mem_per_block then
      Error
        (Printf.sprintf "M_tile = %d words exceeds per-block cap of %d"
           fp.Footprint.shared_words p.shared_mem_per_block)
    else if Array.exists2 (fun ts s -> ts > s) cfg.t_s problem.space then
      Error "tile size exceeds problem extent"
    else Ok ()

type variant = Refined | Paper_verbatim

(* The whole term structure of Equations 3-30, written once against the
   arithmetic signature.  [Calc (Arith.Scalar)] is today's concrete
   evaluation — the scalar operations are the same primitives the inline
   code used, applied to the same expression trees in the same order, so
   the floats are bit-identical (the golden test freezes them).
   [Calc (Arith.Interval)] evaluates the same terms over boxes of
   (t_T, t_S) and returns certified enclosures; Hexabs builds its
   feasibility certificates and branch-and-bound pruner on top.

   The footprint and wavefront geometry (Footprint.of_problem,
   Hexgeom.wavefront_width / num_wavefronts) are restated here in the
   generic arithmetic rather than called, because their closed forms must
   be evaluated over abstract operands; the conformance tests pin the two
   sides together. *)
module Calc (A : Arith.S) = struct
  type terms = {
    c_talg : A.float_t;
    c_t_tile : A.float_t;
    c_m_transfer : A.float_t;
    c_c_compute : A.float_t;
    c_k : A.int_t;
    c_n_wavefronts : A.int_t;
    c_wavefront_blocks : A.int_t;
    c_sm_rounds : A.int_t;
    c_shared_words : A.int_t;
    c_io_words : A.int_t;
    c_chunks : A.int_t;
  }

  open A

  let product arr lo len =
    let acc = ref (int 1) in
    for i = lo to Stdlib.( + ) lo (Stdlib.( - ) len 1) do
      acc := !acc * arr.(i)
    done;
    !acc

  let evaluate ?(variant = Refined) (p : Params.t) ~citer ~order ~word_factor
      ~(space : int array) ~time ~(t_t : A.int_t) ~(t_s : A.int_t array) =
    let rank = Array.length t_s in
    let inner = product t_s 1 (Stdlib.( - ) rank 1) in
    (* Footprint.of_problem's fields, restated generically *)
    let mi_cross = t_s.(0) + (int (Stdlib.( * ) 2 order) * t_t) in
    let m = mi_cross * inner in
    let io_words = (m * int word_factor) + (m * int word_factor) in
    let shared_words =
      int 2
      * product (Array.map (fun s -> s + (int order * t_t) + int 1) t_s) 0 rank
      * int word_factor
    in
    let skew_span d = int space.(d) + (int order * t_t) in
    let chunks =
      match rank with
      | 1 -> int 1
      | 2 -> ceil_div (skew_span 1) t_s.(1)
      | 3 ->
          let r d = fdiv (to_float (skew_span d)) (to_float t_s.(d)) in
          fceil_to_int (r 1 *. r 2)
      | _ -> invalid_arg "Model.Calc: rank must be 1..3"
    in
    (* m': Equations 8 / 14 / 25 *)
    let m_transfer =
      (to_float io_words *. float p.l_word) +. (float 2.0 *. float p.tau_sync)
    in
    (* c: Equations 9 / 15 / 27.  The hexagon rows come in equal-width
       pairs (factor 2); each row of x points over the inner extents costs
       ceil(x * inner / nV) * C_iter, plus one synchronisation per row.

       [Paper_verbatim] sums the widths of Equation 4's idealised hexagon,
       starting at x = t_s.  The two staggered tile families are not
       congruent in the exact lattice: one family's base is wider by
       2*order, so the verbatim sum undercounts the computation by a factor
       (pitch - 2*order) / pitch — negligible for realistic tiles but a
       spurious 2x at degenerate shapes (t_s = 1, t_t = 2), which would
       hand the optimizer a false minimum.  [Refined] (the default)
       therefore uses the mean width of the two families, x + order. *)
    let base =
      match variant with
      | Paper_verbatim -> t_s.(0)
      | Refined -> t_s.(0) + int order
    in
    let sum =
      sum_terms
        ~terms:(tdiv t_t (int 2))
        (fun d ->
          let x = base + int (Stdlib.( * ) (Stdlib.( * ) 2 order) d) in
          ceil_div (x * inner) (int p.n_vector))
    in
    let c_compute =
      (float 2.0 *. float citer *. to_float sum)
      +. (to_float t_t *. float p.tau_sync)
    in
    (* Equation 5: w = ceil(S1 / pitch), pitch = 2 t_S1 + order t_T *)
    let wavefront_blocks =
      ceil_div (int space.(0)) ((int 2 * t_s.(0)) + (int order * t_t))
    in
    (* Equation 11 bounds k by resources; a wavefront of w blocks can
       additionally keep at most ceil(w / nSM) blocks per SM resident (the
       paper's derivation assumes w >> k * nSM, where the clamp is
       inactive).  shared_words >= 2 always, so hyperthreading_factor's
       zero-guard is dead here. *)
    let k =
      imax (int 1)
        (imin
           (imin (int p.max_blocks_per_sm)
              (tdiv (int p.shared_mem_per_sm) shared_words))
           (ceil_div wavefront_blocks (int p.n_sm)))
    in
    (* T_tile(j): Equations 10/12 (1D) and 16/28/29 (2D/3D) at
       hyper-threading factor j *)
    let cf = to_float chunks in
    let t_tile_at j =
      if Stdlib.( = ) rank 1 then
        if_eq j 1
          ~then_:(fun () -> m_transfer +. c_compute (* Equation 10 *))
          ~else_:(fun j ->
            (* Equation 12 *)
            m_transfer +. c_compute
            +. (to_float (j - int 1) *. fmax m_transfer c_compute))
      else
        if_eq j 1
          ~then_:(fun () ->
            (m_transfer +. c_compute) *. cf (* Equations 16 / 28 *))
          ~else_:(fun j ->
            (* Equations 16 / 29 *)
            m_transfer +. (to_float j *. fmax m_transfer c_compute *. cf))
    in
    let t_tile = t_tile_at k in
    (* Equation 3 *)
    let n_wavefronts = int 2 * ceil_div (int time) t_t in
    let sm_rounds = ceil_div (ceil_div wavefront_blocks k) (int p.n_sm) in
    (* Per-wavefront tile time.  Paper_verbatim applies Equation 2's
       double ceiling, which charges the ragged final round as a full
       k-deep round; Refined charges the final round at its actual depth,
       which matters once k exceeds 2 (see the bench ablation). *)
    let per_wavefront =
      match variant with
      | Paper_verbatim -> t_tile *. to_float sm_rounds
      | Refined ->
          let capacity = k * int p.n_sm in
          let full = tdiv wavefront_blocks capacity in
          let remainder = trem wavefront_blocks capacity in
          let last =
            if_eq remainder 0
              ~then_:(fun () -> float 0.0)
              ~else_:(fun r -> t_tile_at (ceil_div r (int p.n_sm)))
          in
          (to_float full *. t_tile) +. last
    in
    (* Equations 6 / 17 / 30 *)
    let c_talg = to_float n_wavefronts *. (per_wavefront +. float p.t_sync) in
    {
      c_talg;
      c_t_tile = t_tile;
      c_m_transfer = m_transfer;
      c_c_compute = c_compute;
      c_k = k;
      c_n_wavefronts = n_wavefronts;
      c_wavefront_blocks = wavefront_blocks;
      c_sm_rounds = sm_rounds;
      c_shared_words = shared_words;
      c_io_words = io_words;
      c_chunks = chunks;
    }
end

module Scalar_calc = Calc (Arith.Scalar)

let predict ?variant (p : Params.t) ~citer (problem : Problem.t) (cfg : Config.t) =
  match feasible p problem cfg with
  | Error _ as e -> e
  | Ok () ->
      if citer <= 0.0 then Error "citer must be positive"
      else
        let order = problem.stencil.Stencil.order in
        let t =
          Scalar_calc.evaluate ?variant p ~citer ~order
            ~word_factor:(Problem.word_factor problem) ~space:problem.space
            ~time:problem.time ~t_t:cfg.t_t ~t_s:cfg.t_s
        in
        Ok
          {
            talg = t.Scalar_calc.c_talg;
            t_tile = t.Scalar_calc.c_t_tile;
            m_transfer = t.Scalar_calc.c_m_transfer;
            c_compute = t.Scalar_calc.c_c_compute;
            k = t.Scalar_calc.c_k;
            n_wavefronts = t.Scalar_calc.c_n_wavefronts;
            wavefront_blocks = t.Scalar_calc.c_wavefront_blocks;
            sm_rounds = t.Scalar_calc.c_sm_rounds;
            shared_words = t.Scalar_calc.c_shared_words;
            io_words = t.Scalar_calc.c_io_words;
            chunks = t.Scalar_calc.c_chunks;
          }

(* --- cost attribution ----------------------------------------------------- *)

(* Decompose talg into the paper's Section 5 component terms.  Every
   combinator in [predict] is linear in (m', c) once the max(m', c) branch
   decisions are fixed, so we mirror those decisions to obtain coefficients
   (a, b) with T_tile(j) = a m' + b c, fold them through the per-wavefront
   form, and then split m' and c themselves into their traffic and barrier
   parts (m' = m_io L + 2 tau_sync; c = 2 C_iter sum + t_T tau_sync).  The
   resulting components rebuild talg exactly up to float rounding — the
   profile test asserts 1e-9 relative — without re-deriving any equation.
   Shared-memory traffic has no time term of its own in the model (M_tile
   only bounds k via Equation 11), so that component is zero here;
   [Simulator.attribute_priced] is the measured-side counterpart. *)
let attribution_of_prediction ?(variant = Refined) (p : Params.t) ~rank ~t_t
    (pr : prediction) =
  let m' = pr.m_transfer and c = pr.c_compute in
  let cf = float_of_int pr.chunks in
  (* (a, b) with T_tile(j) = a m' + b c, mirroring t_tile_at's branches —
     including that OCaml's [max] keeps the left operand on ties *)
  let coeffs j =
    match (rank, j) with
    | 1, 1 -> (1.0, 1.0)
    | 1, _ ->
        if m' >= c then (float_of_int j, 1.0) else (1.0, float_of_int j)
    | _, 1 -> (cf, cf)
    | _, _ ->
        if m' >= c then (1.0 +. (float_of_int j *. cf), 0.0)
        else (1.0, float_of_int j *. cf)
  in
  let a, b =
    match variant with
    | Paper_verbatim ->
        let ak, bk = coeffs pr.k in
        let r = float_of_int pr.sm_rounds in
        (r *. ak, r *. bk)
    | Refined ->
        let capacity = pr.k * p.n_sm in
        let full = float_of_int (pr.wavefront_blocks / capacity) in
        let remainder = pr.wavefront_blocks mod capacity in
        let al, bl =
          if remainder = 0 then (0.0, 0.0)
          else coeffs (Ints.ceil_div remainder p.n_sm)
        in
        let ak, bk = coeffs pr.k in
        ((full *. ak) +. al, (full *. bk) +. bl)
  in
  let nw = float_of_int pr.n_wavefronts in
  let sync_in_m = 2.0 *. p.tau_sync in
  let sync_in_c = float_of_int t_t *. p.tau_sync in
  {
    Hextime_obs.Attribution.compute = nw *. b *. (c -. sync_in_c);
    global_mem = nw *. a *. (m' -. sync_in_m);
    shared_mem = 0.0;
    sync = nw *. ((a *. sync_in_m) +. (b *. sync_in_c));
    launch = nw *. p.t_sync;
    jitter = 0.0;
  }

let attribution ?variant (p : Params.t) ~citer (problem : Problem.t)
    (cfg : Config.t) =
  match predict ?variant p ~citer problem cfg with
  | Error _ as e -> e
  | Ok pr ->
      Ok
        (pr, attribution_of_prediction ?variant p ~rank:(Config.rank cfg) ~t_t:cfg.t_t pr)

type schedule_counts = {
  sched_io_words : int;
  sched_shared_words : int;
  sched_chunks : int;
  sched_syncs_per_chunk : int;
  sched_wavefronts : int;
  sched_wavefront_blocks : int;
}

(* The model charges tau_sync once per compute row (Equations 9/15/27) and
   twice per chunk for the staging barriers (Equations 8/14/25), so any
   schedule it prices must execute exactly t_T + 2 barriers per chunk. *)
let scheduled_counts pr ~t_t =
  {
    sched_io_words = pr.io_words;
    sched_shared_words = pr.shared_words;
    sched_chunks = pr.chunks;
    sched_syncs_per_chunk = t_t + 2;
    sched_wavefronts = pr.n_wavefronts;
    sched_wavefront_blocks = pr.wavefront_blocks;
  }

let pp_prediction ppf pr =
  Format.fprintf ppf
    "Talg=%.4es (Ttile=%.3es, m'=%.3es, c=%.3es, k=%d, Nw=%d, w=%d, rounds=%d, \
     Mtile=%dw, mio=%dw, chunks=%d)"
    pr.talg pr.t_tile pr.m_transfer pr.c_compute pr.k pr.n_wavefronts
    pr.wavefront_blocks pr.sm_rounds pr.shared_words pr.io_words pr.chunks

let explain (p : Params.t) ~citer (problem : Problem.t) (cfg : Config.t) =
  match predict p ~citer problem cfg with
  | Error _ as e -> e
  | Ok pr ->
      let order = problem.stencil.Stencil.order in
      let b = Buffer.create 1024 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      pf "T_alg derivation for %s, %s on %s\n" (Problem.id problem)
        (Config.id cfg) p.arch_name;
      pf "  eq 3   N_w   = 2 * ceil(T / t_T) = 2 * ceil(%d / %d) = %d\n"
        problem.time cfg.t_t pr.n_wavefronts;
      pf "  eq 5   w     = ceil(S1 / (2 t_S1 + %d t_T)) = ceil(%d / %d) = %d\n"
        order problem.space.(0)
        ((2 * cfg.t_s.(0)) + (order * cfg.t_t))
        pr.wavefront_blocks;
      pf "  eq 7+  m_io  = %d words  ->  m' = m_io L + 2 tau = %.3e s\n"
        pr.io_words pr.m_transfer;
      pf "  eq 9+  c     = 2 C_iter sum ceil(x_r * inner / n_V) + t_T tau = %.3e s\n"
        pr.c_compute;
      pf "         M_tile = %d words (cap %d); chunks = %d\n" pr.shared_words
        p.shared_mem_per_block pr.chunks;
      pf "  eq 11  k     = min(MTB_SM, M_SM / M_tile, ceil(w / n_SM)) = %d\n"
        pr.k;
      pf "  eq 12/16/29  T_tile(k) = %.3e s\n" pr.t_tile;
      pf "  eq 2   rounds = ceil(ceil(w / k) / n_SM) = %d\n" pr.sm_rounds;
      pf "  eq 6/17/30   T_alg = N_w (per-wavefront + T_sync) = %.4e s\n"
        pr.talg;
      pf "  dominant term: %s-bound (m' %s c)\n"
        (if pr.m_transfer > pr.c_compute then "transfer" else "compute")
        (if pr.m_transfer > pr.c_compute then ">" else "<=");
      Ok (Buffer.contents b)
