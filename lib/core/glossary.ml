type origin = Software | Hardware | Problem_class
type kind = Elementary | Composite

type entry = {
  name : string;
  kind : kind;
  origin : origin list;
  description : string;
  where : string;
}

let e name origin description where =
  { name; kind = Elementary; origin; description; where }

let c name origin description where =
  { name; kind = Composite; origin; description; where }

let table1 =
  [
    e "S_i" [ Problem_class ] "i-th space dimension" "Problem.space";
    e "T" [ Problem_class ] "time dimension" "Problem.time";
    e "t_Si" [ Software ] "tile size along the i-th space dimension"
      "Config.t_s";
    e "t_T" [ Software ] "tile size along the time dimension" "Config.t_t";
    e "n_thr,i" [ Software ]
      "number of threads per threadblock in the i-th dimension"
      "Config.threads";
    e "n_SM" [ Hardware ] "number of SMs in the device" "Arch.n_sm";
    e "n_V" [ Hardware ] "number of vector units per SM" "Arch.n_vector";
    e "R_SM" [ Hardware ] "number of registers per SM" "Arch.registers_per_sm";
    e "M_SM" [ Hardware ] "size of shared memory per SM"
      "Arch.shared_mem_per_sm";
    e "MTB_SM" [ Hardware ] "max threadblocks per SM" "Arch.max_blocks_per_sm";
    e "L" [ Hardware ] "time per word of global memory access"
      "Params.l_word (micro-benchmarked)";
    e "tau_sync" [ Hardware ] "time for a single synchronization"
      "Params.tau_sync (micro-benchmarked)";
    e "T_sync" [ Hardware ] "time for a host-GPU synchronization"
      "Params.t_sync (micro-benchmarked)";
    c "N_w" [ Software ] "number of wavefronts" "Hexgeom.num_wavefronts";
    c "m_i" [ Software ]
      "input memory footprint of a tile (read from global memory)"
      "Footprint.input_words";
    c "m_o" [ Software ]
      "output memory footprint of a tile (written to global memory)"
      "Footprint.output_words";
    c "m'" [ Software ] "time for global<->shared data transfer for a tile"
      "Model.prediction.m_transfer";
    c "c" [ Software ] "time to perform the computation in a tile"
      "Model.prediction.c_compute";
    c "k" [ Software ] "hyper-threading factor (threadblocks per SM)"
      "Model.hyperthreading_factor";
    c "T_tile(k)" [ Software ] "time to compute a tile with k-way hyper-threading"
      "Model.prediction.t_tile";
    c "w(i)" [ Software ] "width of the i-th wavefront (threadblocks per call)"
      "Hexgeom.wavefront_width";
    c "w_tile" [ Software ] "width of (number of iterations in) a tile"
      "Hexgeom.width_of_tile";
    c "R_tile" [ Software ]
      "registers needed per tile (unknowable pre-compilation; the model \
       omits it, the simulator estimates it)"
      "Regalloc.per_thread";
    c "M_tile" [ Software ] "shared memory needed per tile"
      "Footprint.shared_words";
    c "M_io" [ Software ] "I/O volume per tile (global<->shared)"
      "Footprint.io_words_per_tile";
    c "C_iter" [ Software; Hardware ]
      "(optimized) execution time of one iteration"
      "Microbench.citer (micro-benchmarked)";
    c "T_alg" [ Software; Hardware; Problem_class ]
      "total execution time of the stencil" "Model.prediction.talg";
  ]

let find name = List.find_opt (fun entry -> entry.name = name) table1

let origin_string origin =
  String.concat "+"
    (List.map
       (function Software -> "S" | Hardware -> "H" | Problem_class -> "P")
       origin)

let kind_string = function Elementary -> "E" | Composite -> "C"

let render () =
  let open Hextime_prelude.Tabulate in
  let t =
    create ~title:"Table 1: the execution time model parameters"
      [
        ("Name", Left);
        ("Type", Left);
        ("Description", Left);
        ("Implemented by", Left);
      ]
  in
  render
    (add_rows t
       (List.map
          (fun entry ->
            [
              entry.name;
              kind_string entry.kind ^ origin_string entry.origin;
              entry.description;
              entry.where;
            ])
          table1))
