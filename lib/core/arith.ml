module type S = sig
  type int_t
  type float_t

  val int : int -> int_t
  val float : float -> float_t
  val ( + ) : int_t -> int_t -> int_t
  val ( - ) : int_t -> int_t -> int_t
  val ( * ) : int_t -> int_t -> int_t
  val ceil_div : int_t -> int_t -> int_t
  val tdiv : int_t -> int_t -> int_t
  val trem : int_t -> int_t -> int_t
  val imin : int_t -> int_t -> int_t
  val imax : int_t -> int_t -> int_t
  val to_float : int_t -> float_t
  val ( +. ) : float_t -> float_t -> float_t
  val ( *. ) : float_t -> float_t -> float_t
  val fdiv : float_t -> float_t -> float_t
  val fmax : float_t -> float_t -> float_t
  val fceil_to_int : float_t -> int_t
  val sum_terms : terms:int_t -> (int -> int_t) -> int_t

  val if_eq :
    int_t -> int -> then_:(unit -> float_t) -> else_:(int_t -> float_t) ->
    float_t
end

module Scalar = struct
  type int_t = int
  type float_t = float

  let int n = n
  let float x = x
  let ( + ) = Stdlib.( + )
  let ( - ) = Stdlib.( - )
  let ( * ) = Stdlib.( * )
  let ceil_div = Hextime_prelude.Ints.ceil_div
  let tdiv = Stdlib.( / )
  let trem a b = Stdlib.(a mod b)
  let imin = Stdlib.min
  let imax = Stdlib.max
  let to_float = float_of_int
  let ( +. ) = Stdlib.( +. )
  let ( *. ) = Stdlib.( *. )
  let fdiv = Stdlib.( /. )
  let fmax (a : float) b = Stdlib.max a b
  let fceil_to_int x = int_of_float (ceil x)

  let sum_terms ~terms f =
    let rec go acc d =
      if Stdlib.(d >= terms) then acc else go (Stdlib.( + ) acc (f d)) (succ d)
    in
    go 0 0

  let if_eq v n ~then_ ~else_ = if Stdlib.(v = n) then then_ () else else_ v
end

module Int_interval = struct
  type t = { ilo : int; ihi : int }

  let v lo hi =
    if lo > hi then invalid_arg "Arith.Int_interval.v: lo > hi";
    { ilo = lo; ihi = hi }

  let singleton n = { ilo = n; ihi = n }
  let hull a b = { ilo = min a.ilo b.ilo; ihi = max a.ihi b.ihi }
  let mem x t = t.ilo <= x && x <= t.ihi
end

module Float_interval = struct
  type t = { flo : float; fhi : float }

  let v lo hi =
    if not (lo <= hi) then invalid_arg "Arith.Float_interval.v: lo > hi";
    { flo = lo; fhi = hi }

  let singleton x = { flo = x; fhi = x }
  let hull a b = { flo = min a.flo b.flo; fhi = max a.fhi b.fhi }
  let mem x t = t.flo <= x && x <= t.fhi
end

module Interval = struct
  type int_t = Int_interval.t
  type float_t = Float_interval.t

  open Int_interval
  open Float_interval

  let nonneg what (a : int_t) =
    if a.ilo < 0 then
      invalid_arg (Printf.sprintf "Arith.Interval.%s: negative operand" what)

  let pos what (a : int_t) =
    if a.ilo <= 0 then
      invalid_arg (Printf.sprintf "Arith.Interval.%s: non-positive operand" what)

  let int n = Int_interval.singleton n
  let float x = Float_interval.singleton x
  let ( + ) a b = { ilo = Stdlib.(a.ilo + b.ilo); ihi = Stdlib.(a.ihi + b.ihi) }
  let ( - ) a b = { ilo = Stdlib.(a.ilo - b.ihi); ihi = Stdlib.(a.ihi - b.ilo) }

  let ( * ) a b =
    let p1 = Stdlib.(a.ilo * b.ilo)
    and p2 = Stdlib.(a.ilo * b.ihi)
    and p3 = Stdlib.(a.ihi * b.ilo)
    and p4 = Stdlib.(a.ihi * b.ihi) in
    { ilo = min (min p1 p2) (min p3 p4); ihi = max (max p1 p2) (max p3 p4) }

  (* ceil_div is monotone increasing in the dividend and decreasing in the
     divisor (both non-negative / positive), so the extreme quotients sit
     at opposite corners *)
  let ceil_div a b =
    nonneg "ceil_div" a;
    pos "ceil_div" b;
    {
      ilo = Hextime_prelude.Ints.ceil_div a.ilo b.ihi;
      ihi = Hextime_prelude.Ints.ceil_div a.ihi b.ilo;
    }

  let tdiv a b =
    nonneg "tdiv" a;
    pos "tdiv" b;
    { ilo = Stdlib.(a.ilo / b.ihi); ihi = Stdlib.(a.ihi / b.ilo) }

  (* a mod b over a box.  Exact when the divisor is a single value and the
     dividend range stays inside one quotient block; otherwise the sound
     coarse enclosure [0, min a_hi (b_hi - 1)]. *)
  let trem a b =
    nonneg "trem" a;
    pos "trem" b;
    if Stdlib.(b.ilo = b.ihi) then begin
      let m = b.ilo in
      if Stdlib.(a.ilo / m = a.ihi / m) then
        { ilo = Stdlib.(a.ilo mod m); ihi = Stdlib.(a.ihi mod m) }
      else { ilo = 0; ihi = min a.ihi Stdlib.(m - 1) }
    end
    else { ilo = 0; ihi = min a.ihi Stdlib.(b.ihi - 1) }

  let imin a b = { ilo = min a.ilo b.ilo; ihi = min a.ihi b.ihi }
  let imax a b = { ilo = max a.ilo b.ilo; ihi = max a.ihi b.ihi }
  let to_float a = { flo = float_of_int a.ilo; fhi = float_of_int a.ihi }

  (* every float the model feeds these operations is non-negative (times,
     counts, latencies), so endpoint-wise evaluation is the exact hull;
     the assertions keep the instance honest if a term ever changes sign *)
  let fnonneg what (a : float_t) =
    if Stdlib.(a.flo < 0.0) then
      invalid_arg (Printf.sprintf "Arith.Interval.%s: negative operand" what)

  let ( +. ) a b =
    { flo = Stdlib.(a.flo +. b.flo); fhi = Stdlib.(a.fhi +. b.fhi) }

  let ( *. ) a b =
    fnonneg "( *. )" a;
    fnonneg "( *. )" b;
    { flo = Stdlib.(a.flo *. b.flo); fhi = Stdlib.(a.fhi *. b.fhi) }

  let fdiv a b =
    fnonneg "fdiv" a;
    if Stdlib.(b.flo <= 0.0) then
      invalid_arg "Arith.Interval.fdiv: non-positive divisor";
    { flo = Stdlib.(a.flo /. b.fhi); fhi = Stdlib.(a.fhi /. b.flo) }

  let fmax a b = { flo = max a.flo b.flo; fhi = max a.fhi b.fhi }

  let fceil_to_int a =
    fnonneg "fceil_to_int" a;
    { ilo = int_of_float (ceil a.flo); ihi = int_of_float (ceil a.fhi) }

  (* the trip count is abstract but each term is non-negative, so the
     tightest enclosure sums lower endpoints over the fewest trips and
     upper endpoints over the most *)
  let sum_terms ~terms f =
    nonneg "sum_terms" terms;
    let lo = ref 0 and hi = ref 0 in
    for d = 0 to Stdlib.(terms.ihi - 1) do
      let t = f d in
      nonneg "sum_terms(term)" t;
      if Stdlib.(d < terms.ilo) then lo := Stdlib.(!lo + t.ilo);
      hi := Stdlib.(!hi + t.ihi)
    done;
    { ilo = !lo; ihi = !hi }

  let if_eq v n ~then_ ~else_ =
    if Stdlib.(v.ilo = n && v.ihi = n) then then_ ()
    else if Stdlib.(n < v.ilo || n > v.ihi) then else_ v
    else
      (* the box straddles the test: hull both branches, refining the else
         operand when [n] sits at an endpoint (the model only compares
         against the bottom of a count's range) *)
      let refined =
        if Stdlib.(v.ilo = n) then { v with ilo = Stdlib.(n + 1) }
        else if Stdlib.(v.ihi = n) then { v with ihi = Stdlib.(n - 1) }
        else v
      in
      Float_interval.hull (then_ ()) (else_ refined)
end
