(** Arithmetic signatures for evaluating the model's term structure under
    different interpretations.

    {!Model.Calc} is a functor over {!S}: instantiated with {!Scalar} it
    reproduces today's concrete evaluation bit for bit (the scalar
    operations are the plain [int]/[float] primitives, applied to the same
    expression trees in the same order); instantiated with {!Interval} it
    evaluates the same terms over boxes of inputs and returns certified
    enclosures.

    Soundness of the interval instance does not require outward rounding:
    every float operation the model uses ([+.], [*.], [/.], [max], [ceil],
    [float_of_int]) is deterministic and monotone in each argument under
    round-to-nearest, so evaluating the endpoints with the {e same} float
    operations bounds every concrete float evaluation the scalar instance
    can produce inside the box.  The enclosure is on the model's computed
    floats, not on real arithmetic — which is exactly what the certificate
    needs, because the sweep and the optimizer consume the computed
    floats. *)

module type S = sig
  type int_t
  type float_t

  val int : int -> int_t
  (** Inject a concrete integer constant. *)

  val float : float -> float_t
  (** Inject a concrete float constant. *)

  val ( + ) : int_t -> int_t -> int_t
  val ( - ) : int_t -> int_t -> int_t
  val ( * ) : int_t -> int_t -> int_t

  val ceil_div : int_t -> int_t -> int_t
  (** [ceil_div a b] with [a >= 0], [b > 0] (the model's only division
      pattern; {!Hextime_prelude.Ints.ceil_div} on scalars). *)

  val tdiv : int_t -> int_t -> int_t
  (** Truncating division, both operands non-negative, divisor positive. *)

  val trem : int_t -> int_t -> int_t
  (** Remainder, both operands non-negative, divisor positive. *)

  val imin : int_t -> int_t -> int_t
  val imax : int_t -> int_t -> int_t

  val to_float : int_t -> float_t
  (** [float_of_int]; exact for the magnitudes the model produces. *)

  val ( +. ) : float_t -> float_t -> float_t
  val ( *. ) : float_t -> float_t -> float_t

  val fdiv : float_t -> float_t -> float_t
  (** Float division, both operands positive (the rank-3 chunk ratio). *)

  val fmax : float_t -> float_t -> float_t

  val fceil_to_int : float_t -> int_t
  (** [int_of_float (ceil x)] with [x >= 0]. *)

  val sum_terms : terms:int_t -> (int -> int_t) -> int_t
  (** [sum_terms ~terms f] is [f 0 + f 1 + ... + f (terms - 1)], where
      every [f d] is non-negative.  The trip count itself may be abstract:
      the interval instance sums the lower endpoints over the fewest trips
      and the upper endpoints over the most. *)

  val if_eq :
    int_t -> int -> then_:(unit -> float_t) -> else_:(int_t -> float_t) ->
    float_t
  (** [if_eq v n ~then_ ~else_] is the model's [if v = n] branch.  The
      scalar instance picks a branch; the interval instance picks a branch
      when the comparison is decided over the whole box, and otherwise
      returns the hull of both branches, passing [else_] the operand
      refined to exclude [n] when [n] is an endpoint. *)
end

module Scalar : S with type int_t = int and type float_t = float
(** The concrete instance: plain machine arithmetic.  {!Model.predict}
    evaluates through this instance, which is what makes the refactor
    bit-identical — the operations are the same primitives the inline code
    used, applied in the same order. *)

(** Closed integer intervals. *)
module Int_interval : sig
  type t = { ilo : int; ihi : int }

  val v : int -> int -> t
  (** [v lo hi]; raises [Invalid_argument] if [lo > hi]. *)

  val singleton : int -> t
  val hull : t -> t -> t
  val mem : int -> t -> bool
end

(** Closed float intervals. *)
module Float_interval : sig
  type t = { flo : float; fhi : float }

  val v : float -> float -> t
  val singleton : float -> t
  val hull : t -> t -> t
  val mem : float -> t -> bool
end

module Interval :
  S with type int_t = Int_interval.t and type float_t = Float_interval.t
(** The abstract instance: every operation returns an enclosure of the
    scalar instance's results over all inputs drawn from the operand
    intervals (under the non-negativity preconditions stated in {!S},
    which the model's terms satisfy and the operations assert). *)
