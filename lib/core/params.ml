type t = {
  arch_name : string;
  n_sm : int;
  n_vector : int;
  shared_mem_per_sm : int;
  shared_mem_per_block : int;
  max_blocks_per_sm : int;
  l_word : float;
  tau_sync : float;
  t_sync : float;
}

let of_microbenchmarks (arch : Hextime_gpu.Arch.t) ~l_word ~tau_sync ~t_sync =
  if l_word <= 0.0 || tau_sync <= 0.0 || t_sync <= 0.0 then
    invalid_arg "Params.of_microbenchmarks: non-positive constant";
  {
    arch_name = arch.name;
    n_sm = arch.n_sm;
    n_vector = arch.n_vector;
    shared_mem_per_sm = arch.shared_mem_per_sm;
    shared_mem_per_block = arch.shared_mem_per_block;
    max_blocks_per_sm = arch.max_blocks_per_sm;
    l_word;
    tau_sync;
    t_sync;
  }

let l_per_gb t = t.l_word *. 1e9 /. 4.0

let pp ppf t =
  Format.fprintf ppf
    "%s: L=%.3e s/word, tau_sync=%.3e s, T_sync=%.3e s (%d SMs, nV=%d)"
    t.arch_name t.l_word t.tau_sync t.t_sync t.n_sm t.n_vector
