type t = {
  arch_name : string;
  n_sm : int;
  n_vector : int;
  shared_mem_per_sm : int;
  shared_mem_per_block : int;
  max_blocks_per_sm : int;
  l_word : float;
  tau_sync : float;
  t_sync : float;
}

let of_microbenchmarks (arch : Hextime_gpu.Arch.t) ~l_word ~tau_sync ~t_sync =
  if l_word <= 0.0 || tau_sync <= 0.0 || t_sync <= 0.0 then
    invalid_arg "Params.of_microbenchmarks: non-positive constant";
  {
    arch_name = arch.name;
    n_sm = arch.n_sm;
    n_vector = arch.n_vector;
    shared_mem_per_sm = arch.shared_mem_per_sm;
    shared_mem_per_block = arch.shared_mem_per_block;
    max_blocks_per_sm = arch.max_blocks_per_sm;
    l_word;
    tau_sync;
    t_sync;
  }

(* Pricing digest: everything but [arch_name], mirroring Arch.mix_pricing —
   the analytical model reads only these numbers, so a renamed architecture
   producing the same measured constants digests identically. *)
let mix_pricing h t =
  let module D = Hextime_prelude.Det_hash in
  let h = D.mix_int h t.n_sm in
  let h = D.mix_int h t.n_vector in
  let h = D.mix_int h t.shared_mem_per_sm in
  let h = D.mix_int h t.shared_mem_per_block in
  let h = D.mix_int h t.max_blocks_per_sm in
  let h = D.mix_float h t.l_word in
  let h = D.mix_float h t.tau_sync in
  D.mix_float h t.t_sync

let l_per_gb t = t.l_word *. 1e9 /. 4.0

let pp ppf t =
  Format.fprintf ppf
    "%s: L=%.3e s/word, tau_sync=%.3e s, T_sync=%.3e s (%d SMs, nV=%d)"
    t.arch_name t.l_word t.tau_sync t.t_sync t.n_sm t.n_vector
