module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Arch = Hextime_gpu.Arch

type factor = L | Tau_sync | T_sync | C_iter | N_sm | N_vector

let factor_name = function
  | L -> "L"
  | Tau_sync -> "tau_sync"
  | T_sync -> "T_sync"
  | C_iter -> "C_iter"
  | N_sm -> "n_SM"
  | N_vector -> "n_V"

type row = { factor : factor; elasticity : float }

let all_factors = [ C_iter; L; T_sync; Tau_sync; N_sm; N_vector ]

let predict_with (p : Params.t) ~citer problem cfg =
  match Model.predict p ~citer problem cfg with
  | Ok pr -> Some pr.Model.talg
  | Error _ -> None

(* rebuild the parameter set with one constant scaled; the integer machine
   parameters go through a scaled architecture copy *)
let scaled (p : Params.t) factor s =
  let arch = Arch.find p.Params.arch_name in
  let rebuilt ?(arch = arch) ?(l = p.Params.l_word) ?(tau = p.Params.tau_sync)
      ?(tsync = p.Params.t_sync) () =
    Params.of_microbenchmarks arch ~l_word:l ~tau_sync:tau ~t_sync:tsync
  in
  match factor with
  | L -> rebuilt ~l:(p.Params.l_word *. s) ()
  | Tau_sync -> rebuilt ~tau:(p.Params.tau_sync *. s) ()
  | T_sync -> rebuilt ~tsync:(p.Params.t_sync *. s) ()
  | C_iter -> rebuilt () (* handled through the citer argument *)
  | N_sm ->
      rebuilt
        ~arch:
          { arch with Arch.n_sm = max 1 (int_of_float (float_of_int arch.Arch.n_sm *. s)) }
        ()
  | N_vector ->
      rebuilt
        ~arch:
          {
            arch with
            Arch.n_vector =
              max 32 (32 * (int_of_float (float_of_int arch.Arch.n_vector *. s) / 32));
          }
        ()

let analyze ?(epsilon = 0.05) (p : Params.t) ~citer problem cfg =
  if epsilon <= 0.0 || epsilon >= 0.5 then
    Error "epsilon must be in (0, 0.5)"
  else
    match predict_with p ~citer problem cfg with
    | None -> Error "configuration rejected by the model"
    | Some base ->
        let elasticity factor =
          let up_scale = 1.0 +. epsilon and down_scale = 1.0 -. epsilon in
          let evaluate s =
            match factor with
            | C_iter -> predict_with p ~citer:(citer *. s) problem cfg
            | _ -> predict_with (scaled p factor s) ~citer problem cfg
          in
          match (evaluate up_scale, evaluate down_scale) with
          | Some up, Some down ->
              Some
                {
                  factor;
                  elasticity = (up -. down) /. base /. (2.0 *. epsilon);
                }
          | _ -> None
        in
        let rows = List.filter_map elasticity all_factors in
        Ok
          (List.sort
             (fun a b ->
               Float.compare (abs_float b.elasticity) (abs_float a.elasticity))
             rows)

let dominant = function
  | [] -> invalid_arg "Sensitivity.dominant: empty"
  | r :: _ -> r.factor
