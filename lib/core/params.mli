(** The model's machine parameters (Table 1).

    The elementary hardware parameters (nSM, nV, M_SM, MTB_SM) come from the
    architecture description (Table 2); the timing constants L, tau_sync and
    T_sync cannot be read off a spec sheet and are measured by
    micro-benchmarks (Section 5.2, Table 3).  [of_microbenchmarks] assembles
    a parameter set from both sources. *)

type t = private {
  arch_name : string;
  n_sm : int;  (** nSM *)
  n_vector : int;  (** nV *)
  shared_mem_per_sm : int;  (** M_SM, words *)
  shared_mem_per_block : int;  (** per-block cap, words *)
  max_blocks_per_sm : int;  (** MTB_SM *)
  l_word : float;  (** L: seconds per 4-byte word of global traffic *)
  tau_sync : float;  (** per-synchronisation cost, seconds *)
  t_sync : float;  (** host-GPU synchronisation / launch cost, seconds *)
}

val of_microbenchmarks :
  Hextime_gpu.Arch.t -> l_word:float -> tau_sync:float -> t_sync:float -> t
(** Validates positivity of the measured constants. *)

val mix_pricing :
  Hextime_prelude.Det_hash.t -> t -> Hextime_prelude.Det_hash.t
(** Fold every field the model computes from — everything but [arch_name]
    — into a digest state; the sweep cache's incremental keys are built
    from this (see {!Hextime_gpu.Arch.mix_pricing}). *)

val l_per_gb : t -> float
(** L expressed in seconds per gigabyte, the unit of Table 3. *)

val pp : Format.formatter -> t -> unit
